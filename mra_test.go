package mra

import (
	"strings"
	"testing"
)

// openBeerDB builds the paper's running example through the public API.
func openBeerDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	db.MustCreateRelation("beer",
		Col("name", String), Col("brewery", String), Col("alcperc", Float))
	db.MustCreateRelation("brewery",
		Col("name", String), Col("city", String), Col("country", String))
	if err := db.InsertValues("beer",
		[]any{"pils", "guineken", 5.0},
		[]any{"pils", "brolsch", 5.2},
		[]any{"bock", "guineken", 6.5},
		[]any{"stout", "guinness", 4.2},
	); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertValues("brewery",
		[]any{"guineken", "amsterdam", "netherlands"},
		[]any{"brolsch", "enschede", "netherlands"},
		[]any{"guinness", "dublin", "ireland"},
	); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateRelationAndInsert(t *testing.T) {
	db := openBeerDB(t)
	if got := db.Relations(); len(got) != 2 || got[0] != "beer" {
		t.Errorf("Relations = %v", got)
	}
	if db.Cardinality("beer") != 4 || db.Cardinality("brewery") != 3 {
		t.Error("cardinalities after insert")
	}
	if db.LogicalTime() != 2 {
		t.Errorf("two committed inserts, logical time = %d", db.LogicalTime())
	}
	if err := db.CreateRelation("empty"); err == nil {
		t.Error("relation without columns must fail")
	}
	if err := db.CreateRelation("beer", Col("x", Int)); err == nil {
		t.Error("duplicate relation must fail")
	}
	if err := db.InsertValues("wine", []any{1}); err == nil {
		t.Error("insert into unknown relation must fail")
	}
	if err := db.InsertValues("beer", []any{"x"}); err == nil {
		t.Error("arity mismatch must fail")
	}
	if err := db.InsertValues("beer", []any{"x", "y", struct{}{}}); err == nil {
		t.Error("unsupported Go value must fail")
	}
	if err := db.DropRelation("brewery"); err != nil {
		t.Fatal(err)
	}
	if len(db.Relations()) != 1 {
		t.Error("drop must remove the relation")
	}
	if _, ok := db.Catalog().RelationSchema("beer"); !ok {
		t.Error("catalog lookup")
	}
	if len(db.History()) != 2 {
		t.Errorf("history = %v", db.History())
	}
	mustPanic(t, func() { db.MustCreateRelation("beer", Col("x", Int)) })
	mustPanic(t, func() { db.MustExecXRA("insert(nosuch, [(1)])") })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestQueryXRAAndSQLAgree(t *testing.T) {
	db := openBeerDB(t)
	// The paper's Example 3.1 through both front-ends.
	xra, err := db.QueryXRA("project[%1](select[%6 = 'netherlands'](join[%2 = %4](beer, brewery)))")
	if err != nil {
		t.Fatal(err)
	}
	sql, err := db.QuerySQL(`SELECT beer.name FROM beer, brewery
		WHERE beer.brewery = brewery.name AND brewery.country = 'netherlands'`)
	if err != nil {
		t.Fatal(err)
	}
	if xra.Len() != 3 || sql.Len() != 3 {
		t.Fatalf("lens = %d, %d", xra.Len(), sql.Len())
	}
	if xra.Multiplicity("pils") != 2 || sql.Multiplicity("pils") != 2 {
		t.Error("duplicates must be preserved by both front-ends")
	}
	// Optimisation must not change results.
	db.Optimize = false
	plain, err := db.QueryXRA("project[%1](select[%6 = 'netherlands'](join[%2 = %4](beer, brewery)))")
	if err != nil {
		t.Fatal(err)
	}
	db.Optimize = true
	if plain.Len() != xra.Len() {
		t.Error("optimisation changed the result size")
	}
	// Errors.
	if _, err := db.QueryXRA("select[%9 = 1](beer)"); err == nil {
		t.Error("invalid expression must fail validation")
	}
	if _, err := db.QueryXRA("select[%1 =](beer)"); err == nil {
		t.Error("syntax errors must surface")
	}
	if _, err := db.QuerySQL("SELECT nosuch FROM beer"); err == nil {
		t.Error("SQL name errors must surface")
	}
	if _, err := db.QuerySQL("DELETE FROM beer"); err == nil {
		t.Error("QuerySQL must reject DML")
	}
}

func TestResultAccessors(t *testing.T) {
	db := openBeerDB(t)
	res, err := db.QuerySQL("SELECT brewery, COUNT(*) AS beers FROM beer GROUP BY brewery")
	if err != nil {
		t.Fatal(err)
	}
	if cols := res.Columns(); len(cols) != 2 || cols[0] != "brewery" || cols[1] != "beers" {
		t.Errorf("Columns = %v", cols)
	}
	if res.Len() != 3 || res.DistinctLen() != 3 {
		t.Errorf("Len = %d, DistinctLen = %d", res.Len(), res.DistinctLen())
	}
	rows := res.Rows()
	if len(rows) != 3 || len(rows[0]) != 2 {
		t.Errorf("Rows = %v", rows)
	}
	if res.Multiplicity("guineken", 2) != 1 {
		t.Errorf("Multiplicity lookup failed: %s", res)
	}
	if res.Multiplicity(struct{}{}) != 0 {
		t.Error("unconvertible values have multiplicity 0")
	}
	dr := res.DistinctRows()
	if len(dr) != 3 || dr[0].Count != 1 {
		t.Errorf("DistinctRows = %v", dr)
	}
	table := res.Table()
	if !strings.Contains(table, "brewery") || !strings.Contains(table, "(3 rows)") {
		t.Errorf("Table = %q", table)
	}
	if !strings.HasPrefix(res.String(), "{") {
		t.Errorf("String = %q", res.String())
	}
	// Unnamed computed columns get positional names.
	anon, err := db.QueryXRA("xproject[%3 * 2](beer)")
	if err != nil {
		t.Fatal(err)
	}
	if cols := anon.Columns(); cols[0] != "col1" {
		t.Errorf("anonymous column name = %v", cols)
	}
}

func TestExecXRAScriptsAndTransactions(t *testing.T) {
	db := openBeerDB(t)
	results, err := db.ExecXRA(`
		-- Example 4.1: raise guineken's percentages by 10%.
		update(beer, select[%2 = 'guineken'](beer), (%1, %2, %3 * 1.1));
		?select[%2 = 'guineken'](beer);
		begin
			strong = select[%3 >= 6](beer);
			?project[%1](strong);
			delete(beer, strong);
		end;
		?beer;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("query outputs = %d", len(results))
	}
	if results[0].Len() != 2 {
		t.Errorf("guineken beers = %d", results[0].Len())
	}
	// strong after update: bock 7.15 and... pils 5.5? no, >= 6 keeps bock and tripel-less set → bock only? alcperc values: 5.5, 5.2, 7.15, 4.2 → only bock.
	if results[1].Len() != 1 {
		t.Errorf("strong beers = %d: %s", results[1].Len(), results[1])
	}
	if results[2].Len() != 3 {
		t.Errorf("remaining beers = %d", results[2].Len())
	}
	// A failing script aborts only the failing transaction.
	before := db.Cardinality("beer")
	_, err = db.ExecXRA("begin delete(beer, beer); insert(beer, nosuch); end")
	if err == nil {
		t.Fatal("failing transaction must error")
	}
	if db.Cardinality("beer") != before {
		t.Error("failed transaction must leave the database unchanged")
	}
	// Parse errors surface.
	if _, err := db.ExecXRA("insert(beer"); err != nil {
		if !strings.Contains(err.Error(), "xra:") {
			t.Errorf("parse error format: %v", err)
		}
	} else {
		t.Error("parse errors must surface")
	}
}

func TestExecSQLScript(t *testing.T) {
	db := openBeerDB(t)
	results, err := db.ExecSQL(`
		INSERT INTO beer VALUES ('radler', 'brolsch', 2.0);
		UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'guineken';
		DELETE FROM beer WHERE brewery = 'guinness';
		SELECT brewery, COUNT(*) FROM beer GROUP BY brewery;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Multiplicity("brolsch", int64(2)) != 1 {
		t.Errorf("brolsch group = %s", results[0])
	}
	if db.Cardinality("beer") != 4 {
		t.Errorf("|beer| = %d", db.Cardinality("beer"))
	}
	// SQL scripts run as one transaction: a failing statement rolls back all.
	before := db.Cardinality("beer")
	_, err = db.ExecSQL(`DELETE FROM beer; INSERT INTO beer VALUES ('x', 'y', 'not a float', 4)`)
	if err == nil {
		t.Fatal("bad script must fail")
	}
	if db.Cardinality("beer") != before {
		t.Error("failed SQL script must leave the database unchanged")
	}
	if _, err := db.ExecSQL("SELECT nosuch FROM beer"); err == nil {
		t.Error("compile errors must surface")
	}
}

func TestExplicitTransactions(t *testing.T) {
	db := openBeerDB(t)
	tx := db.Begin()
	if err := tx.ExecSQL("DELETE FROM beer WHERE brewery = 'guinness'"); err != nil {
		t.Fatal(err)
	}
	if err := tx.ExecXRA("?beer"); err != nil {
		t.Fatal(err)
	}
	res, err := tx.Query("select[%2 = 'guinness'](beer)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Error("transaction must see its own delete")
	}
	if db.Cardinality("beer") != 4 {
		t.Error("uncommitted changes must be invisible outside")
	}
	if outs := tx.Outputs(); len(outs) != 1 || outs[0].Len() != 3 {
		t.Errorf("outputs = %v", outs)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.Cardinality("beer") != 3 {
		t.Error("committed delete must be visible")
	}

	// Abort path and error paths.
	tx2 := db.Begin()
	if err := tx2.ExecXRA("delete(beer, beer)"); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()
	if db.Cardinality("beer") != 3 {
		t.Error("aborted delete must not apply")
	}
	tx3 := db.Begin()
	if err := tx3.ExecXRA("insert(beer"); err == nil {
		t.Error("XRA parse error must surface")
	}
	if err := tx3.ExecSQL("DELETE FROM wine"); err == nil {
		t.Error("SQL compile error must surface")
	}
	if _, err := tx3.Query("select[%1 =](beer)"); err == nil {
		t.Error("query parse error must surface")
	}
	if _, err := tx3.Query("nosuch"); err == nil {
		t.Error("unknown relation must surface")
	}
	tx3.Abort()
}

func TestExplain(t *testing.T) {
	db := openBeerDB(t)
	ex, err := db.Explain("select[%2 = %4 and %6 = 'netherlands'](product(beer, brewery))")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Logical, "product(") {
		t.Errorf("original plan = %s", ex.Logical)
	}
	if !strings.Contains(ex.Optimised, "join[") {
		t.Errorf("optimised plan = %s", ex.Optimised)
	}
	if len(ex.Rules) == 0 {
		t.Error("expected at least one applied rule")
	}
	if !strings.Contains(ex.Physical, "HashJoin") {
		t.Errorf("physical plan must show the hash join:\n%s", ex.Physical)
	}
	if _, err := db.Explain("select[%1 =](beer)"); err == nil {
		t.Error("parse errors must surface")
	}
	if _, err := db.Explain("select[%9 = 1](beer)"); err == nil {
		t.Error("validation errors must surface")
	}
}
