package mra

import (
	"strings"
	"testing"
)

// statsDB builds a relation with known shape: 1000 rows, key column with 50
// distinct values, payload column 0..999.
func statsDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustCreateRelation("fact", Col("key", Int), Col("payload", Int))
	rows := make([][]any, 0, 1000)
	for i := 0; i < 1000; i++ {
		rows = append(rows, []any{i % 50, i})
	}
	if err := db.InsertValues("fact", rows...); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestAnalyzeAndRelationStats exercises the public statistics facade: ANALYZE
// builds a summary whose row count is exact and whose per-column NDV is
// within sketch tolerance, and incremental maintenance keeps it alive across
// committed inserts.
func TestAnalyzeAndRelationStats(t *testing.T) {
	db := statsDB(t)
	if _, ok := db.RelationStats("fact"); ok {
		t.Fatal("statistics present before ANALYZE")
	}
	if err := db.Analyze("fact"); err != nil {
		t.Fatal(err)
	}
	st, ok := db.RelationStats("fact")
	if !ok {
		t.Fatal("no statistics after ANALYZE")
	}
	if st.Rows != 1000 {
		t.Errorf("Rows = %d, want 1000", st.Rows)
	}
	if len(st.Columns) != 2 {
		t.Fatalf("Columns = %d, want 2", len(st.Columns))
	}
	key := st.Columns[0]
	if key.Name != "key" || key.NDV < 45 || key.NDV > 55 {
		t.Errorf("key column = %+v, want ndv~50", key)
	}
	if key.Min != "0" || key.Max != "49" {
		t.Errorf("key range = [%s .. %s], want [0 .. 49]", key.Min, key.Max)
	}
	if key.HistogramBuckets == 0 {
		t.Errorf("key column has no histogram")
	}

	// A committed insert maintains the summary incrementally (no re-ANALYZE).
	db.MustExecXRA("insert(fact, [(999, 12345)])")
	st2, ok := db.RelationStats("fact")
	if !ok {
		t.Fatal("statistics dropped by incremental insert")
	}
	if st2.Rows != 1001 {
		t.Errorf("Rows after insert = %d, want 1001", st2.Rows)
	}
	if st2.Columns[0].Max != "999" {
		t.Errorf("key max after insert = %s, want 999", st2.Columns[0].Max)
	}
	if st2.Version <= st.Version {
		t.Errorf("version did not advance: %d -> %d", st.Version, st2.Version)
	}
}

// TestAnalyzeStatementForms runs ANALYZE through both language front-ends:
// the XRA statement analyze(R) and the SQL statement ANALYZE [rel].
func TestAnalyzeStatementForms(t *testing.T) {
	t.Run("xra", func(t *testing.T) {
		db := statsDB(t)
		if _, err := db.ExecXRA("analyze(fact);"); err != nil {
			t.Fatal(err)
		}
		if st, ok := db.RelationStats("fact"); !ok || st.Rows != 1000 {
			t.Fatalf("RelationStats after analyze(fact) = %+v, %v", st, ok)
		}
	})
	t.Run("sql-named", func(t *testing.T) {
		db := statsDB(t)
		if _, err := db.ExecSQL("ANALYZE fact"); err != nil {
			t.Fatal(err)
		}
		if _, ok := db.RelationStats("fact"); !ok {
			t.Fatal("no statistics after ANALYZE fact")
		}
	})
	t.Run("sql-bare", func(t *testing.T) {
		db := statsDB(t)
		db.MustCreateRelation("dim", Col("key", Int))
		if err := db.InsertValues("dim", []any{1}, []any{2}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.ExecSQL("ANALYZE"); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"fact", "dim"} {
			if _, ok := db.RelationStats(name); !ok {
				t.Errorf("bare ANALYZE skipped %q", name)
			}
		}
	})
	t.Run("sql-unknown", func(t *testing.T) {
		db := statsDB(t)
		if _, err := db.ExecSQL("ANALYZE nosuch"); err == nil {
			t.Fatal("ANALYZE of unknown table did not fail")
		}
	})
}

// TestAnalyzeInvalidatedByWholesaleReplace pins the invalidation contract:
// DDL drops summaries, and the replacement forms (which rewrite the relation
// wholesale rather than through deltas) drop rather than corrupt them.
func TestAnalyzeInvalidatedByWholesaleReplace(t *testing.T) {
	db := statsDB(t)
	if err := db.Analyze("fact"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropRelation("fact"); err != nil {
		t.Fatal(err)
	}
	db.MustCreateRelation("fact", Col("key", Int), Col("payload", Int))
	if _, ok := db.RelationStats("fact"); ok {
		t.Fatal("statistics survived drop+recreate of the relation")
	}
}

// TestExplainShowsNDVAfterAnalyze checks the explain integration: once a
// relation is analyzed, scans render their distinct-tuple estimate and the
// planner's filter estimates come from the histogram rather than the flat
// 0.25 selectivity guess.
func TestExplainShowsNDVAfterAnalyze(t *testing.T) {
	db := statsDB(t)
	if err := db.Analyze("fact"); err != nil {
		t.Fatal(err)
	}
	// A projection of fact onto its key column holds 1000 occurrences of 50
	// distinct tuples, so its scan renders the distinct-tuple estimate.
	db.MustCreateRelation("keys", Col("key", Int))
	db.MustExecXRA("insert(keys, project[%1](fact))")
	exDup, err := db.Explain("select[%1 = 7](keys)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exDup.Physical, "Scan keys  (est=1000 rows, ndv=50)") {
		t.Errorf("duplicate-heavy scan does not render ndv:\n%s", exDup.Physical)
	}

	ex, err := db.Explain("select[%1 = 7](fact)")
	if err != nil {
		t.Fatal(err)
	}
	// 1000 rows over ~50 distinct keys: the histogram estimates ~20 rows for
	// an equality, far from the flat-guess 250.  Allow sketch slack.
	if !strings.Contains(ex.Physical, "act=20") {
		t.Errorf("filter actuals missing:\n%s", ex.Physical)
	}
	for _, bad := range []string{"(est~250 rows", "(est~251 rows"} {
		if strings.Contains(ex.Physical, bad) {
			t.Errorf("filter estimate still the flat 0.25 guess:\n%s", ex.Physical)
		}
	}
}
