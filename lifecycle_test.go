package mra

import (
	"context"
	"errors"
	"strings"
	"testing"

	"mra/internal/plan"
)

// TestQueryCancellation checks the lifecycle context rides the whole public
// stack — front-end, transaction, engine, plan — on both query languages: a
// cancelled context aborts the query with context.Canceled and the database
// stays usable.
func TestQueryCancellation(t *testing.T) {
	db := openBeerDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryXRAContext(ctx, "select[true](beer)"); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryXRAContext: err = %v, want context.Canceled", err)
	}
	if _, err := db.QuerySQLContext(ctx, "SELECT name FROM beer"); !errors.Is(err, context.Canceled) {
		t.Errorf("QuerySQLContext: err = %v, want context.Canceled", err)
	}
	if _, err := db.QuerySQLContext(ctx, "SELECT name FROM beer ORDER BY name"); !errors.Is(err, context.Canceled) {
		t.Errorf("QuerySQLContext ordered: err = %v, want context.Canceled", err)
	}
	if _, err := db.ExecXRAContext(ctx, "begin select[true](beer); end;"); !errors.Is(err, context.Canceled) {
		t.Errorf("ExecXRAContext: err = %v, want context.Canceled", err)
	}
	// The database survives cancelled queries untouched.
	r, err := db.QueryXRA("beer")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 4 {
		t.Errorf("beer cardinality after cancellations = %d, want 4", r.Len())
	}
}

// TestQueryMemoryLimit checks SetMemoryLimit reaches the plan layer: a join
// under a tiny budget fails with plan.ErrMemoryBudget, lifting the budget
// restores service, and writes from the failed query never commit.
func TestQueryMemoryLimit(t *testing.T) {
	db := openBeerDB(t)
	db.SetMemoryLimit(64)
	if got := db.MemoryLimit(); got != 64 {
		t.Fatalf("MemoryLimit = %d, want 64", got)
	}
	_, err := db.QueryXRA("join[%2 = %4](beer, brewery)")
	if !errors.Is(err, plan.ErrMemoryBudget) {
		t.Fatalf("tiny budget: err = %v, want plan.ErrMemoryBudget", err)
	}
	if !strings.Contains(err.Error(), "limit") {
		t.Errorf("budget error %q carries no usage detail", err)
	}
	db.SetMemoryLimit(0)
	r, err := db.QueryXRA("join[%2 = %4](beer, brewery)")
	if err != nil {
		t.Fatalf("unlimited: %v", err)
	}
	if r.Len() != 4 {
		t.Errorf("join cardinality = %d, want 4", r.Len())
	}
}
