// Command optimizer walks through the rewrite engine on the synthetic join
// workload: it shows the equivalence-based rewrites (Theorem 3.1 as
// join-introduction, Theorem 3.2 as selection/projection pushdown, the
// Example 3.2 projection push-in below a group-by), the cost model's ranking
// of original vs. rewritten plans, and the measured effect on intermediate
// result sizes.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"mra"
)

func main() {
	db := mra.Open()
	db.MustCreateRelation("fact",
		mra.Col("key", mra.Int), mra.Col("payload", mra.Int))
	db.MustCreateRelation("dim",
		mra.Col("key", mra.Int), mra.Col("attr", mra.Int))

	// A modest star-schema workload: 4000 fact rows over 200 dimension keys.
	const factRows, dimRows = 4000, 200
	facts := make([][]any, 0, factRows)
	for i := 0; i < factRows; i++ {
		facts = append(facts, []any{i % dimRows, i})
	}
	dims := make([][]any, 0, dimRows)
	for k := 0; k < dimRows; k++ {
		dims = append(dims, []any{k, k * 10})
	}
	if err := db.InsertValues("fact", facts...); err != nil {
		log.Fatal(err)
	}
	if err := db.InsertValues("dim", dims...); err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		name string
		xra  string
	}{
		{
			name: "selection over a product (Theorem 3.1 read backwards)",
			xra:  "select[%1 = %3 and %4 >= 1500](product(fact, dim))",
		},
		{
			name: "selection above a join (pushdown, Theorem 3.2 family)",
			xra:  "select[%4 >= 1500](join[%1 = %3](fact, dim))",
		},
		{
			name: "aggregate over a wide join (Example 3.2 projection push-in)",
			xra:  "groupby[(%4), SUM, %2](join[%1 = %3](fact, dim))",
		},
		{
			name: "double duplicate elimination",
			xra:  "unique(unique(project[%1](fact)))",
		},
	}

	for _, q := range queries {
		fmt.Println("==", q.name)
		ex, err := db.Explain(q.xra)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  original :", ex.Logical)
		fmt.Println("  optimised:", ex.Optimised)
		fmt.Println("  rules    :", ex.Rules)
		fmt.Println("  physical :")
		for _, line := range strings.Split(ex.Physical, "\n") {
			fmt.Println("    " + line)
		}

		// Measure both plans end to end.
		db.Optimize = false
		t0 := time.Now()
		slow, err := db.QueryXRA(q.xra)
		if err != nil {
			log.Fatal(err)
		}
		naive := time.Since(t0)

		db.Optimize = true
		t0 = time.Now()
		fast, err := db.QueryXRA(q.xra)
		if err != nil {
			log.Fatal(err)
		}
		optimised := time.Since(t0)

		if slow.String() != fast.String() {
			log.Fatalf("optimisation changed the result of %q", q.xra)
		}
		fmt.Printf("  result   : %d tuples; naive %v, optimised %v (identical results)\n\n",
			fast.Len(), naive, optimised)
	}
}
