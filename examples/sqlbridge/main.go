// Command sqlbridge demonstrates the algebra as a formal background for SQL:
// it runs a small order-management workload entirely through the SQL
// front-end, prints the algebra expression each query compiles to, and shows
// where bag semantics matters (duplicate rows in projections, aggregates over
// duplicates).
package main

import (
	"fmt"
	"log"

	"mra"
)

func main() {
	db := mra.Open()
	db.MustCreateRelation("customer",
		mra.Col("id", mra.Int), mra.Col("name", mra.String), mra.Col("city", mra.String))
	db.MustCreateRelation("orders",
		mra.Col("id", mra.Int), mra.Col("customer", mra.Int), mra.Col("product", mra.String), mra.Col("amount", mra.Float))

	must(db.InsertValues("customer",
		[]any{1, "alice", "amsterdam"},
		[]any{2, "bob", "enschede"},
		[]any{3, "carol", "amsterdam"},
	))
	must(db.InsertValues("orders",
		[]any{100, 1, "pils", 24.0},
		[]any{101, 1, "pils", 24.0}, // a genuine duplicate order line (same product, same amount)
		[]any{102, 2, "bock", 36.5},
		[]any{103, 3, "stout", 18.0},
		[]any{104, 3, "pils", 24.0},
	))

	queries := []string{
		// Duplicate-preserving projection: two identical order lines for alice.
		"SELECT product, amount FROM orders WHERE customer = 1",
		// Join through the comma syntax with a WHERE clause.
		`SELECT customer.name, orders.product FROM customer, orders
		 WHERE customer.id = orders.customer AND customer.city = 'amsterdam'`,
		// Explicit JOIN ... ON with aggregation per city: the aggregate runs
		// over the multi-set, so the duplicate order lines both count.
		`SELECT city, SUM(amount) AS turnover FROM customer
		 JOIN orders ON customer.id = orders.customer GROUP BY city`,
		// HAVING over the aggregate.
		`SELECT customer.name, COUNT(*) AS lines FROM customer
		 JOIN orders ON customer.id = orders.customer
		 GROUP BY customer.name HAVING COUNT(*) >= 2`,
		// DISTINCT is the explicit duplicate-elimination operator δ.
		"SELECT DISTINCT product FROM orders",
	}

	for _, q := range queries {
		fmt.Println("SQL:   ", oneLine(q))
		res, err := db.QuerySQL(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Table())
	}

	// DML through SQL, executed as one atomic program.
	fmt.Println("Applying: 10% discount on pils orders, then dropping orders below 20.")
	if _, err := db.ExecSQL(`
		UPDATE orders SET amount = amount * 0.9 WHERE product = 'pils';
		DELETE FROM orders WHERE amount < 20;
		SELECT product, SUM(amount) AS total FROM orders GROUP BY product;
	`); err != nil {
		log.Fatal(err)
	}
	res, err := db.QuerySQL("SELECT product, SUM(amount) AS total FROM orders GROUP BY product")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table())
	fmt.Printf("database logical time: %d\n", db.LogicalTime())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func oneLine(s string) string {
	out := make([]byte, 0, len(s))
	space := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\n' || c == '\t' || c == ' ' {
			space = true
			continue
		}
		if space && len(out) > 0 {
			out = append(out, ' ')
		}
		space = false
		out = append(out, c)
	}
	return string(out)
}
