// Command quickstart is the smallest end-to-end walk through the public API:
// create relations, load tuples, run a bag-semantics query through the XRA and
// SQL front-ends, and update the database inside a transaction.
package main

import (
	"fmt"
	"log"

	"mra"
)

func main() {
	db := mra.Open()

	// The paper's running example: beer(name, brewery, alcperc) and
	// brewery(name, city, country).
	db.MustCreateRelation("beer",
		mra.Col("name", mra.String), mra.Col("brewery", mra.String), mra.Col("alcperc", mra.Float))
	db.MustCreateRelation("brewery",
		mra.Col("name", mra.String), mra.Col("city", mra.String), mra.Col("country", mra.String))

	if err := db.InsertValues("beer",
		[]any{"pils", "guineken", 5.0},
		[]any{"pils", "brolsch", 5.2},
		[]any{"bock", "guineken", 6.5},
		[]any{"stout", "guinness", 4.2},
	); err != nil {
		log.Fatal(err)
	}
	if err := db.InsertValues("brewery",
		[]any{"guineken", "amsterdam", "netherlands"},
		[]any{"brolsch", "enschede", "netherlands"},
		[]any{"guinness", "dublin", "ireland"},
	); err != nil {
		log.Fatal(err)
	}

	// Example 3.1: names of beers brewed in the Netherlands.  Bag semantics
	// keeps the duplicate "pils".
	res, err := db.QueryXRA("project[%1](select[%6 = 'netherlands'](join[%2 = %4](beer, brewery)))")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Dutch beers (XRA, duplicates preserved):")
	fmt.Println(res.Table())

	// The same query through the SQL front-end.
	res, err = db.QuerySQL(`SELECT beer.name FROM beer, brewery
		WHERE beer.brewery = brewery.name AND brewery.country = 'netherlands'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Dutch beers (SQL):")
	fmt.Println(res.Table())

	// Example 4.1: raise guineken's alcohol percentages by 10% inside a
	// transaction, then inspect the result.
	tx := db.Begin()
	if err := tx.ExecSQL("UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'guineken'"); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	res, err = db.QuerySQL("SELECT brewery, AVG(alcperc) AS avg_alc FROM beer GROUP BY brewery")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Average strength per brewery after the update:")
	fmt.Println(res.Table())
	fmt.Printf("logical time: %d (one committed transition per updating transaction)\n", db.LogicalTime())
}
