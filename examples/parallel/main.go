// Command parallel demonstrates the morsel-driven parallel runtime on a
// skewed-key workload, and why work-stealing beats the static
// one-slice-per-worker scheduler it replaced.
//
// The workload is a star-schema join whose fact keys follow a Zipf
// distribution: a handful of hot keys carry most of the probe work.  Under
// static scheduling every worker walks the WHOLE fact arena and keeps the
// 1/W of it whose hash lands in its range — so the gang pays W passes over
// the data, and whichever worker owns the hot range finishes last while the
// others idle.  Under morsel scheduling the workers share one queue of
// fixed-size entry ranges: the gang collectively visits every entry exactly
// once, and a worker bogged down in a hot range simply stops claiming while
// the others drain the rest.  Bag semantics make any disjoint split of a
// scan exact — multiplicities sum across partitions — which is what lets
// the queue rebalance freely.
//
// On a single hardware thread (like CI containers) the stealing itself
// cannot shorten the critical path, but the pass-count reduction already
// shows: morsel w4 runs measurably faster than static w4.  On multi-core
// hardware the rebalancing compounds with it.
package main

import (
	"fmt"
	"log"
	"time"

	"mra/internal/algebra"
	"mra/internal/eval"
	"mra/internal/scalar"
	"mra/internal/value"
	"mra/internal/workload"
)

func main() {
	// A Zipf-skewed join workload: 20000 fact rows over 100 dimension keys,
	// exponent 1.4 — key 0 alone draws a large share of the rows.
	fact, dim := workload.JoinPair(workload.JoinConfig{
		LeftTuples: 20000, RightTuples: 100, KeyRange: 100, Skew: 1.4, Seed: 7,
	})
	src := eval.MapSource{"fact": fact, "dim": dim}
	fmt.Printf("fact: %d rows (%d distinct), dim: %d rows — Zipf(1.4) keys\n\n",
		fact.Cardinality(), fact.DistinctCount(), dim.Cardinality())

	// Two shapes the planner parallelises: a scan pipeline (σ then π) and a
	// hash join probing the skewed side against a shared build table.
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(1<<14)))
	queries := []struct {
		name string
		expr algebra.Expr
	}{
		{"pipeline σ/π over skewed scan",
			algebra.NewProject([]int{0}, algebra.NewSelect(pred, algebra.NewRel("fact")))},
		{"hash join, skewed probe side",
			algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim"))},
	}

	// Three engines over identical plans: serial, 4 workers with morsel
	// stealing (the default), and 4 workers with the legacy static slices
	// (kept behind a planner knob exactly for comparisons like this one).
	engines := []struct {
		name string
		mk   func() *eval.Engine
	}{
		{"serial       ", func() *eval.Engine { return &eval.Engine{} }},
		{"w4 morsel    ", func() *eval.Engine { return &eval.Engine{Workers: 4} }},
		{"w4 static    ", func() *eval.Engine { return &eval.Engine{Workers: 4, StaticSlices: true} }},
	}

	const reps = 20
	for _, q := range queries {
		fmt.Printf("== %s ==\n", q.name)
		var serialCard uint64
		var morsel, static time.Duration
		for _, eng := range engines {
			// Warm up once, then time reps evaluations.
			if _, err := eng.mk().Eval(q.expr, src); err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			var card uint64
			for i := 0; i < reps; i++ {
				res, err := eng.mk().Eval(q.expr, src)
				if err != nil {
					log.Fatal(err)
				}
				card = res.Cardinality()
			}
			elapsed := time.Since(start) / reps
			switch eng.name {
			case "serial       ":
				serialCard = card
			case "w4 morsel    ":
				morsel = elapsed
			case "w4 static    ":
				static = elapsed
			}
			// The three schedulers must agree exactly — multiplicities
			// included — or the exchange would be broken.
			if card != serialCard {
				log.Fatalf("%s: cardinality %d differs from serial %d", eng.name, card, serialCard)
			}
			fmt.Printf("  %s %10v   (|result| = %d)\n", eng.name, elapsed, card)
		}
		fmt.Printf("  morsel / static = %.2fx  (< 1 means stealing won)\n\n",
			float64(morsel)/float64(static))
	}

	fmt.Println("Why morsel wins even before multi-core rebalancing: static slicing")
	fmt.Println("scans the full arena once per worker (W passes, cheap hash filter per")
	fmt.Println("entry); morsel claims visit every entry exactly once across the gang.")
	fmt.Println("The pipeline shows it cleanly; the join's probe-side gain is smaller")
	fmt.Println("on one hardware thread (output hashing dominates there) and grows with")
	fmt.Println("real cores — BENCH_morsel.json records both series for this box.")
}
