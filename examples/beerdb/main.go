// Command beerdb reproduces every worked example of the paper on a generated
// beer database: Example 3.1 (duplicate-preserving projection), Example 3.2
// (aggregation with and without projection push-in, including the set-
// semantics counter-example), and Example 4.1 (the update statement), plus the
// Theorem 3.1–3.3 equivalences checked on the actual data.
package main

import (
	"fmt"
	"log"

	"mra"
)

func main() {
	db := mra.Open()
	db.MustCreateRelation("beer",
		mra.Col("name", mra.String), mra.Col("brewery", mra.String), mra.Col("alcperc", mra.Float))
	db.MustCreateRelation("brewery",
		mra.Col("name", mra.String), mra.Col("city", mra.String), mra.Col("country", mra.String))

	// A small hand-written instance in which two Dutch breweries brew a beer
	// with the same name and the same strength, so that the set-semantics
	// pitfall of Example 3.2 is visible.
	must(db.InsertValues("beer",
		[]any{"pils", "guineken", 5.0},
		[]any{"blond", "brolsch", 5.0},
		[]any{"bock", "guineken", 6.5},
		[]any{"stout", "guinness", 4.2},
		[]any{"tripel", "westmalle", 9.5},
	))
	must(db.InsertValues("brewery",
		[]any{"guineken", "amsterdam", "netherlands"},
		[]any{"brolsch", "enschede", "netherlands"},
		[]any{"guinness", "dublin", "ireland"},
		[]any{"westmalle", "malle", "belgium"},
	))

	fmt.Println("== Example 3.1: beers brewed in the Netherlands ==")
	show(db, "project[%1](select[%6 = 'netherlands'](join[%2 = %4](beer, brewery)))")

	fmt.Println("== Example 3.2: average strength per country ==")
	fmt.Println("-- without the inner projection:")
	show(db, "groupby[(%6), AVG, %3](join[%2 = %4](beer, brewery))")
	fmt.Println("-- with the inner projection (identical under bag semantics):")
	show(db, "groupby[(%2), AVG, %1](project[%3, %6](join[%2 = %4](beer, brewery)))")
	fmt.Println("-- the same query through SQL, as printed in the paper:")
	sqlShow(db, `SELECT country, AVG(alcperc) FROM beer, brewery
	             WHERE beer.brewery = brewery.name GROUP BY country`)

	fmt.Println("== Theorem 3.1: E1 ∩ E2 = E1 − (E1 − E2) ==")
	compare(db,
		"intersect(select[%2 = 'guineken'](beer), select[%3 >= 5](beer))",
		"diff(select[%2 = 'guineken'](beer), diff(select[%2 = 'guineken'](beer), select[%3 >= 5](beer)))")

	fmt.Println("== Theorem 3.1: E1 ⋈ E2 = σ(E1 × E2) ==")
	compare(db,
		"join[%2 = %4](beer, brewery)",
		"select[%2 = %4](product(beer, brewery))")

	fmt.Println("== Theorem 3.2: σ and π distribute over ⊎; δ does not ==")
	compare(db,
		"select[%3 > 5](union(beer, beer))",
		"union(select[%3 > 5](beer), select[%3 > 5](beer))")
	compare(db,
		"project[%2](union(beer, beer))",
		"union(project[%2](beer), project[%2](beer))")
	left := mustQuery(db, "unique(union(beer, beer))")
	right := mustQuery(db, "union(unique(beer), unique(beer))")
	fmt.Printf("δ(E⊎E) has %d tuples, δE ⊎ δE has %d — NOT equal, as the paper notes\n\n",
		left.Len(), right.Len())

	fmt.Println("== Example 4.1: update(beer, σ_brewery='guineken' beer, (name, brewery, alcperc*1.1)) ==")
	if _, err := db.ExecXRA("update(beer, select[%2 = 'guineken'](beer), (%1, %2, %3 * 1.1))"); err != nil {
		log.Fatal(err)
	}
	show(db, "select[%2 = 'guineken'](beer)")

	fmt.Println("== Section 5 extension: transitive closure over a supplier graph ==")
	db.MustCreateRelation("supplies", mra.Col("from", mra.String), mra.Col("to", mra.String))
	must(db.InsertValues("supplies",
		[]any{"farm", "maltery"},
		[]any{"maltery", "guineken"},
		[]any{"guineken", "cafe"},
	))
	show(db, "tclose(supplies)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustQuery(db *mra.DB, expr string) *mra.Result {
	r, err := db.QueryXRA(expr)
	if err != nil {
		log.Fatalf("%s: %v", expr, err)
	}
	return r
}

func show(db *mra.DB, expr string) {
	fmt.Println(mustQuery(db, expr).Table())
}

func sqlShow(db *mra.DB, sql string) {
	r, err := db.QuerySQL(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Table())
}

func compare(db *mra.DB, a, b string) {
	ra, rb := mustQuery(db, a), mustQuery(db, b)
	equal := ra.String() == rb.String()
	fmt.Printf("equal=%v  (%d tuples)\n\n", equal, ra.Len())
	if !equal {
		log.Fatalf("equivalence violated:\n%s\n%s", a, b)
	}
}
