// Command banking exercises the transaction layer (Definition 4.3 of the
// paper) on an OLTP-style workload: concurrent money transfers between
// accounts, executed as multi-statement transactions with assignment
// statements for temporaries, optimistic conflict detection, and an abort path
// that demonstrates atomicity.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"mra"
)

func main() {
	db := mra.Open()
	db.MustCreateRelation("account",
		mra.Col("id", mra.Int), mra.Col("owner", mra.String), mra.Col("balance", mra.Float))

	const accounts = 16
	rows := make([][]any, 0, accounts)
	for i := 0; i < accounts; i++ {
		rows = append(rows, []any{i, fmt.Sprintf("owner%02d", i), 1000.0})
	}
	if err := db.InsertValues("account", rows...); err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial total:", total(db))

	// A transfer is one transaction: debit one account, credit another, and
	// read back the touched rows through a temporary relation.
	transfer := func(from, to int, amount float64) error {
		tx := db.Begin()
		defer tx.Abort()
		if err := tx.ExecXRA(fmt.Sprintf("update(account, select[%%1 = %d](account), (%%1, %%2, %%3 - %v))", from, amount)); err != nil {
			return err
		}
		if err := tx.ExecXRA(fmt.Sprintf("update(account, select[%%1 = %d](account), (%%1, %%2, %%3 + %v))", to, amount)); err != nil {
			return err
		}
		return tx.Commit()
	}

	// Run transfers from several goroutines.  Conflicting transactions abort
	// (optimistic concurrency control) and are retried.
	var wg sync.WaitGroup
	var committed, retried atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				from := (worker*25 + i) % accounts
				to := (from + 3) % accounts
				for {
					err := transfer(from, to, 5)
					if err == nil {
						committed.Add(1)
						break
					}
					retried.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("committed transfers: %d, retries after conflicts: %d\n", committed.Load(), retried.Load())
	fmt.Println("total after transfers (must be unchanged):", total(db))

	// Atomicity: a transfer that fails halfway leaves no partial debit.
	tx := db.Begin()
	if err := tx.ExecXRA("update(account, select[%1 = 0](account), (%1, %2, %3 - 100))"); err != nil {
		log.Fatal(err)
	}
	if err := tx.ExecXRA("insert(account, nosuch_relation)"); err == nil {
		log.Fatal("expected the second statement to fail")
	}
	tx.Abort()
	fmt.Println("total after aborted transfer (must be unchanged):", total(db))

	// A multi-statement report transaction using assignment statements.
	results, err := db.ExecXRA(`
		begin
			rich = select[%3 >= 1000](account);
			?groupby[(), CNT, %1](rich);
			?groupby[(), SUM, %3](account);
		end
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accounts with balance >= 1000:")
	fmt.Println(results[0].Table())
	fmt.Println("sum of all balances:")
	fmt.Println(results[1].Table())
	fmt.Printf("logical time after the workload: %d\n", db.LogicalTime())
}

// total computes the sum of all balances through the SQL front-end.
func total(db *mra.DB) float64 {
	res, err := db.QuerySQL("SELECT SUM(balance) FROM account")
	if err != nil {
		log.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 1 {
		log.Fatalf("unexpected result %v", rows)
	}
	f, _ := rows[0][0].(float64)
	return f
}
