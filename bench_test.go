package mra

// This file contains one testing.B benchmark group per experiment of
// EXPERIMENTS.md (E1–E10).  The paper has no measured tables of its own (it
// is a formal paper); each benchmark quantifies one of its theorems, worked
// examples, or explicit practical claims.  `go test -bench=. -benchmem` at the
// repository root regenerates every series; cmd/mrabench prints the same
// series as tab-separated tables with correctness checks attached.

import (
	"fmt"
	"testing"

	"mra/internal/algebra"
	"mra/internal/eval"
	"mra/internal/multiset"
	"mra/internal/rewrite"
	"mra/internal/scalar"
	"mra/internal/setalg"
	"mra/internal/stmt"
	"mra/internal/storage"
	"mra/internal/txn"
	"mra/internal/value"
	"mra/internal/workload"
	"mra/internal/xraparse"
)

// mustEval evaluates with the physical engine, failing the benchmark on error.
func mustEval(b *testing.B, e algebra.Expr, src eval.Source) *multiset.Relation {
	b.Helper()
	r, err := (&eval.Engine{}).Eval(e, src)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// ---------------------------------------------------------------------------
// E1 — Theorem 3.1: native operators vs their derived forms.
// ---------------------------------------------------------------------------

func benchmarkE1Pair(b *testing.B, n int, native, derived algebra.Expr, src eval.Source) {
	b.Run(fmt.Sprintf("native/n=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEval(b, native, src)
		}
	})
	b.Run(fmt.Sprintf("derived/n=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEval(b, derived, src)
		}
	})
}

func BenchmarkE1_IntersectNativeVsDerived(b *testing.B) {
	for _, n := range []int{500, 2000} {
		left := workload.Duplicated(workload.DuplicationConfig{DistinctTuples: n, DuplicationFactor: 2, Seed: 1})
		right := workload.Duplicated(workload.DuplicationConfig{DistinctTuples: n, DuplicationFactor: 3, Seed: 2})
		src := eval.MapSource{"a": left, "b": right}
		a, c := algebra.NewRel("a"), algebra.NewRel("b")
		benchmarkE1Pair(b, n,
			algebra.NewIntersect(a, c),
			algebra.NewDifference(a, algebra.NewDifference(a, c)), src)
	}
}

func BenchmarkE1_JoinNativeVsSigmaProduct(b *testing.B) {
	for _, n := range []int{500, 2000} {
		fact, dim := workload.JoinPair(workload.JoinConfig{LeftTuples: n, RightTuples: n / 10, Seed: 3})
		src := eval.MapSource{"fact": fact, "dim": dim}
		cond := scalar.Eq(0, 2)
		benchmarkE1Pair(b, n,
			algebra.NewJoin(cond, algebra.NewRel("fact"), algebra.NewRel("dim")),
			algebra.NewSelect(cond, algebra.NewProduct(algebra.NewRel("fact"), algebra.NewRel("dim"))), src)
	}
}

// ---------------------------------------------------------------------------
// E2 — Theorem 3.2: distribution of σ and π over ⊎.
// ---------------------------------------------------------------------------

func BenchmarkE2_SelectionPushdownOverUnion(b *testing.B) {
	r1 := workload.Duplicated(workload.DuplicationConfig{DistinctTuples: 5000, DuplicationFactor: 2, Seed: 4})
	r2 := workload.Duplicated(workload.DuplicationConfig{DistinctTuples: 5000, DuplicationFactor: 2, Seed: 5})
	src := eval.MapSource{"e1": r1, "e2": r2}
	pred := scalar.NewCompare(value.CmpLt, scalar.NewAttr(1), scalar.NewConst(value.NewInt(1<<15)))
	e1, e2 := algebra.NewRel("e1"), algebra.NewRel("e2")
	whole := algebra.NewSelect(pred, algebra.NewUnion(e1, e2))
	pushed := algebra.NewUnion(algebra.NewSelect(pred, e1), algebra.NewSelect(pred, e2))
	b.Run("sigma-over-union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEval(b, whole, src)
		}
	})
	b.Run("union-of-sigmas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEval(b, pushed, src)
		}
	})
}

func BenchmarkE2_ProjectionPushdownOverUnion(b *testing.B) {
	r1 := workload.Duplicated(workload.DuplicationConfig{DistinctTuples: 5000, DuplicationFactor: 2, Seed: 6})
	r2 := workload.Duplicated(workload.DuplicationConfig{DistinctTuples: 5000, DuplicationFactor: 2, Seed: 7})
	src := eval.MapSource{"e1": r1, "e2": r2}
	e1, e2 := algebra.NewRel("e1"), algebra.NewRel("e2")
	whole := algebra.NewProject([]int{0}, algebra.NewUnion(e1, e2))
	pushed := algebra.NewUnion(algebra.NewProject([]int{0}, e1), algebra.NewProject([]int{0}, e2))
	b.Run("pi-over-union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEval(b, whole, src)
		}
	})
	b.Run("union-of-pis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEval(b, pushed, src)
		}
	})
}

// ---------------------------------------------------------------------------
// E3 — Theorem 3.3: associativity and join-order cost asymmetry.
// ---------------------------------------------------------------------------

func BenchmarkE3_JoinAssociativity(b *testing.B) {
	fact, dim := workload.JoinPair(workload.JoinConfig{LeftTuples: 4000, RightTuples: 200, Seed: 8})
	_, dim2 := workload.JoinPair(workload.JoinConfig{LeftTuples: 10, RightTuples: 200, Seed: 9})
	src := eval.MapSource{"fact": fact, "dim": dim, "dim2": dim2}
	f, d1, d2 := algebra.NewRel("fact"), algebra.NewRel("dim"), algebra.NewRel("dim2")
	leftDeep := algebra.NewJoin(scalar.Eq(2, 4), algebra.NewJoin(scalar.Eq(0, 2), f, d1), d2)
	rightDeep := algebra.NewJoin(scalar.Eq(0, 2), f, algebra.NewJoin(scalar.Eq(0, 2), d1, d2))
	b.Run("left-deep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEval(b, leftDeep, src)
		}
	})
	b.Run("right-deep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEval(b, rightDeep, src)
		}
	})
}

// ---------------------------------------------------------------------------
// E4 — Example 3.1: the Dutch-beers query, through the algebra, XRA and SQL.
// ---------------------------------------------------------------------------

func openBeerBench(b *testing.B, breweries int) *DB {
	b.Helper()
	beer, brewery := workload.Beers(workload.BeerConfig{
		Breweries: breweries, BeersPerBrewery: 20, DuplicateNames: true, DiscreteAlcohol: true, Seed: 10})
	db := Open()
	db.MustCreateRelation("beer", Col("name", String), Col("brewery", String), Col("alcperc", Float))
	db.MustCreateRelation("brewery", Col("name", String), Col("city", String), Col("country", String))
	rows := make([][]any, 0, beer.Cardinality())
	for _, t := range beer.Tuples() {
		rows = append(rows, []any{t.At(0).Str(), t.At(1).Str(), t.At(2).Float()})
	}
	if err := db.InsertValues("beer", rows...); err != nil {
		b.Fatal(err)
	}
	rows = rows[:0]
	for _, t := range brewery.Tuples() {
		rows = append(rows, []any{t.At(0).Str(), t.At(1).Str(), t.At(2).Str()})
	}
	if err := db.InsertValues("brewery", rows...); err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkE4_BeerQuery(b *testing.B) {
	const xra = "project[%1](select[%6 = 'netherlands'](join[%2 = %4](beer, brewery)))"
	const sql = `SELECT beer.name FROM beer, brewery
		WHERE beer.brewery = brewery.name AND brewery.country = 'netherlands'`
	for _, breweries := range []int{50, 200} {
		db := openBeerBench(b, breweries)
		b.Run(fmt.Sprintf("xra/breweries=%d", breweries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.QueryXRA(xra); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sql/breweries=%d", breweries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.QuerySQL(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE4_ParseOnly(b *testing.B) {
	const xra = "project[%1](select[%6 = 'netherlands'](join[%2 = %4](beer, brewery)))"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := xraparse.ParseExpression(xra); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E5 — Example 3.2: aggregation with and without projection push-in, under bag
// and set semantics.
// ---------------------------------------------------------------------------

func BenchmarkE5_AggregateProjectionPushIn(b *testing.B) {
	beer, brewery := workload.Beers(workload.BeerConfig{
		Breweries: 200, BeersPerBrewery: 20, DuplicateNames: true, DiscreteAlcohol: true, Seed: 11})
	src := eval.MapSource{"beer": beer, "brewery": brewery}
	join := algebra.NewJoin(scalar.Eq(1, 3), algebra.NewRel("beer"), algebra.NewRel("brewery"))
	direct := algebra.NewGroupBy([]int{5}, algebra.AggAvg, 2, join)
	pushed := algebra.NewGroupBy([]int{1}, algebra.AggAvg, 0, algebra.NewProject([]int{2, 5}, join))
	b.Run("bag-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEval(b, direct, src)
		}
	})
	b.Run("bag-pushed-projection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEval(b, pushed, src)
		}
	})
	b.Run("set-semantics-pushed-projection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (setalg.Engine{}).Eval(pushed, src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E6 — Example 4.1: the update statement.
// ---------------------------------------------------------------------------

func BenchmarkE6_UpdateStatement(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		db := storage.NewDatabase()
		if err := db.CreateRelation(workload.AccountsSchema()); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Apply(map[string]*multiset.Relation{"account": workload.Accounts(n, 12)}); err != nil {
			b.Fatal(err)
		}
		mgr := txn.NewManager(db)
		update := stmt.Update{
			Target: "account",
			Selection: algebra.NewSelect(
				scalar.NewCompare(value.CmpLt, scalar.NewAttr(0), scalar.NewConst(value.NewInt(int64(n/2)))),
				algebra.NewRel("account")),
			Items: []scalar.Expr{
				scalar.NewAttr(0), scalar.NewAttr(1),
				scalar.NewArith(value.OpMul, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(1.1))),
			},
		}
		b.Run(fmt.Sprintf("accounts=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mgr.Run(stmt.Program{update}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E7 — the duplicate-removal cost motivation of Section 1.
// ---------------------------------------------------------------------------

func BenchmarkE7_DuplicateRemovalCost(b *testing.B) {
	for _, dup := range []int{1, 4, 16, 64} {
		r := workload.Duplicated(workload.DuplicationConfig{DistinctTuples: 2000, DuplicationFactor: dup, Seed: 13})
		src := eval.MapSource{"r": r}
		proj := algebra.NewProject([]int{1}, algebra.NewRel("r"))
		b.Run(fmt.Sprintf("bag-projection/dup=%d", dup), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEval(b, proj, src)
			}
		})
		b.Run(fmt.Sprintf("set-projection/dup=%d", dup), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (setalg.Engine{}).Eval(proj, src); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("explicit-delta/dup=%d", dup), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEval(b, algebra.NewUnique(proj), src)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E8 — transactions: commit/abort throughput with atomicity.
// ---------------------------------------------------------------------------

func BenchmarkE8_TransactionThroughput(b *testing.B) {
	db := storage.NewDatabase()
	if err := db.CreateRelation(workload.AccountsSchema()); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Apply(map[string]*multiset.Relation{"account": workload.Accounts(500, 14)}); err != nil {
		b.Fatal(err)
	}
	mgr := txn.NewManager(db)
	items := []scalar.Expr{
		scalar.NewAttr(0), scalar.NewAttr(1),
		scalar.NewArith(value.OpAdd, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(1))),
	}
	b.Run("commit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sel := algebra.NewSelect(
				scalar.NewCompare(value.CmpEq, scalar.NewAttr(0), scalar.NewConst(value.NewInt(int64(i%500)))),
				algebra.NewRel("account"))
			if _, err := mgr.Run(stmt.Program{stmt.Update{Target: "account", Selection: sel, Items: items}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("abort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tx := mgr.Begin()
			sel := algebra.NewSelect(
				scalar.NewCompare(value.CmpEq, scalar.NewAttr(0), scalar.NewConst(value.NewInt(int64(i%500)))),
				algebra.NewRel("account"))
			if err := tx.Exec(stmt.Update{Target: "account", Selection: sel, Items: items}); err != nil {
				b.Fatal(err)
			}
			tx.Abort()
		}
	})
	b.Run("read-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mgr.Run(stmt.Program{stmt.Query{Source: algebra.NewGroupBy(nil, algebra.AggCount, 0, algebra.NewRel("account"))}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E9 — optimizer ablation: reference evaluator vs physical plans, naive vs
// rewritten.
// ---------------------------------------------------------------------------

func BenchmarkE9_OptimizerAblation(b *testing.B) {
	fact, dim := workload.JoinPair(workload.JoinConfig{LeftTuples: 2000, RightTuples: 100, Seed: 15})
	src := eval.MapSource{"fact": fact, "dim": dim}
	cat := src.Catalog()
	query := algebra.NewSelect(
		scalar.NewAnd(scalar.Eq(0, 2),
			scalar.NewCompare(value.CmpGe, scalar.NewAttr(3), scalar.NewConst(value.NewInt(50)))),
		algebra.NewProduct(algebra.NewRel("fact"), algebra.NewRel("dim")))
	optimised, _ := rewrite.NewRewriter().Rewrite(query, cat)
	b.Run("reference-evaluator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (eval.Reference{}).Eval(query, src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("physical-naive-plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEval(b, query, src)
		}
	})
	b.Run("physical-rewritten-plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustEval(b, optimised, src)
		}
	})
	b.Run("rewrite-time-itself", func(b *testing.B) {
		rw := rewrite.NewRewriter()
		for i := 0; i < b.N; i++ {
			rw.Rewrite(query, cat)
		}
	})
}

// ---------------------------------------------------------------------------
// E10 — the transitive-closure extension of Section 5.
// ---------------------------------------------------------------------------

func BenchmarkE10_TransitiveClosure(b *testing.B) {
	for _, nodes := range []int{32, 128} {
		g := workload.Graph(workload.GraphConfig{Nodes: nodes, OutDegree: 2, Seed: 16})
		src := eval.MapSource{"edge": g}
		tc := algebra.NewTClose(algebra.NewRel("edge"))
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustEval(b, tc, src)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Exec — the partitioned parallel runtime: the E1 join and E2 pushdown shapes
// swept over gang widths.  workers=1 is the serial planner (no exchanges);
// wider gangs insert Partition/Merge exchange operators.  On a single
// hardware thread the wider gangs only measure the exchange overhead; the
// speedup needs real cores.
// ---------------------------------------------------------------------------

func BenchmarkExec_ParallelWorkers(b *testing.B) {
	fact, dim := workload.JoinPair(workload.JoinConfig{LeftTuples: 2000, RightTuples: 200, Seed: 3})
	jsrc := eval.MapSource{"fact": fact, "dim": dim}
	join := algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim"))

	ssrc := eval.MapSource{
		"e1": workload.Duplicated(workload.DuplicationConfig{DistinctTuples: 5000, DuplicationFactor: 2, Seed: 4}),
		"e2": workload.Duplicated(workload.DuplicationConfig{DistinctTuples: 5000, DuplicationFactor: 2, Seed: 5}),
	}
	sigma := algebra.NewSelect(
		scalar.NewCompare(value.CmpLt, scalar.NewAttr(1), scalar.NewConst(value.NewInt(1<<15))),
		algebra.NewUnion(algebra.NewRel("e1"), algebra.NewRel("e2")))

	for _, w := range []int{1, 2, 4, 8} {
		eng := &eval.Engine{Workers: w}
		b.Run(fmt.Sprintf("join/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Eval(join, jsrc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sigma-union/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Eval(sigma, ssrc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
