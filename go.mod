module mra

go 1.24
