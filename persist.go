package mra

import (
	"io"
	"os"

	"mra/internal/dump"
)

// Dump writes the database's current state (every relation with its schema
// and tuple multiplicities) to the writer in the textual dump format of
// internal/dump.  The dump captures exactly the database state D_t; it does
// not include the transition history.
func (db *DB) Dump(w io.Writer) error { return dump.Write(db.store, w) }

// SaveFile dumps the database to a file, creating or truncating it.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.Dump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Restore reads a dump and returns a new database holding its contents.  The
// restored database starts its own logical time.
func Restore(r io.Reader) (*DB, error) {
	db := Open()
	if err := dump.ReadInto(db.store, r); err != nil {
		return nil, err
	}
	return db, nil
}

// LoadFile restores a database from a dump file written by SaveFile.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Restore(f)
}
