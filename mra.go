// Package mra is a multi-set (bag) extended relational algebra engine: a Go
// implementation of "A Multi-Set Extended Relational Algebra — A Formal
// Approach to a Practical Issue" (Grefen & de By, ICDE 1994).
//
// The package offers, on top of an in-memory multi-set storage engine:
//
//   - the full extended relational algebra of the paper (union, difference,
//     product, selection, projection, intersection, join, arithmetic
//     projection, duplicate elimination, group-by with any list of
//     CNT/SUM/AVG/MIN/MAX aggregates computed in one pass, and the
//     transitive-closure extension);
//   - statements, programs and transactions (insert, delete, update,
//     assignment, query; atomic commit/abort with logical time);
//   - an XRA textual front-end (the PRISMA/DB-style algebra language) and a
//     SQL front-end that translates a SQL subset onto the algebra;
//   - a rewrite engine implementing the paper's expression equivalences for
//     query optimisation.
//
// # Quick start
//
//	db := mra.Open()
//	db.MustCreateRelation("beer", mra.Col("name", mra.String), mra.Col("brewery", mra.String), mra.Col("alcperc", mra.Float))
//	db.MustExecXRA(`insert(beer, [('pils', 'heineken', 5.0), ('bock', 'heineken', 6.5)])`)
//	res, err := db.QuerySQL(`SELECT brewery, AVG(alcperc) FROM beer GROUP BY brewery`)
//	fmt.Println(res.Table())
package mra

import (
	"context"
	"errors"
	"fmt"

	"mra/internal/algebra"
	"mra/internal/eval"
	"mra/internal/exec"
	"mra/internal/multiset"
	"mra/internal/plan"
	"mra/internal/rewrite"
	"mra/internal/schema"
	"mra/internal/sqlfront"
	"mra/internal/stmt"
	"mra/internal/storage"
	"mra/internal/txn"
	"mra/internal/value"
	"mra/internal/xraparse"
)

// Type is the domain of a column.
type Type = value.Kind

// The supported column domains.
const (
	Int    = value.KindInt
	Float  = value.KindFloat
	String = value.KindString
	Bool   = value.KindBool
)

// Column describes one attribute of a relation schema.
type Column struct {
	// Name is the attribute name.
	Name string
	// Type is the attribute domain.
	Type Type
}

// Col is a shorthand Column constructor.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// DB is a multi-set relational database: an in-memory storage engine, a
// transaction manager, the physical evaluator, and the rewrite engine.
type DB struct {
	store    *storage.Database
	manager  *txn.Manager
	rewriter *rewrite.Rewriter
	// workers is the parallelism degree of the physical engine; see
	// SetWorkers.
	workers int
	// memLimit is the per-query memory budget in bytes; see SetMemoryLimit.
	memLimit int64
	// Optimize controls whether queries are rewritten before evaluation.  It
	// defaults to true.
	Optimize bool
}

// Open returns an empty database.
func Open() *DB {
	store := storage.NewDatabase()
	return &DB{
		store:    store,
		manager:  txn.NewManager(store),
		rewriter: rewrite.NewRewriter(),
		workers:  1,
		Optimize: true,
	}
}

// SetWorkers configures the parallel worker count of the physical engine for
// subsequent queries and transactions.  At 1 — the default — plans execute
// serially; above 1 the planner inserts Partition/Merge exchange operators
// around large pipelines, hash joins and grouped aggregates, and the plan
// runs partitioned across that many workers.  A count below 1 auto-detects
// from the machine.  Reconfiguration applies to queries and transactions
// started afterwards.
func (db *DB) SetWorkers(n int) {
	db.workers = exec.Resolve(n)
	db.manager.SetWorkers(db.workers)
}

// Workers returns the configured parallel worker count.
func (db *DB) Workers() int { return db.workers }

// SetMemoryLimit configures the per-query memory budget in bytes for
// subsequent queries and transactions: a query whose operator-internal state
// (hash-join build tables, group tables, sorts) would exceed the budget fails
// with an error wrapping plan.ErrMemoryBudget instead of exhausting the
// process.  Zero — the default — disables enforcement.
func (db *DB) SetMemoryLimit(n int64) {
	if n < 0 {
		n = 0
	}
	db.memLimit = n
	db.manager.SetMemoryLimit(n)
}

// MemoryLimit returns the configured per-query memory budget in bytes (zero
// when unenforced).
func (db *DB) MemoryLimit() int64 { return db.memLimit }

// engine builds a physical evaluator with the database's configuration.
func (db *DB) engine() *eval.Engine {
	return &eval.Engine{Workers: db.workers, MemoryLimit: db.memLimit}
}

// CreateRelation declares a new empty relation.
func (db *DB) CreateRelation(name string, cols ...Column) error {
	if len(cols) == 0 {
		return errors.New("mra: a relation needs at least one column")
	}
	attrs := make([]schema.Attribute, len(cols))
	for i, c := range cols {
		attrs[i] = schema.Attribute{Name: c.Name, Type: c.Type}
	}
	return db.store.CreateRelation(schema.NewRelation(name, attrs...))
}

// MustCreateRelation is CreateRelation panicking on error; it is intended for
// examples and tests.
func (db *DB) MustCreateRelation(name string, cols ...Column) {
	if err := db.CreateRelation(name, cols...); err != nil {
		panic(err)
	}
}

// DropRelation removes a relation and its contents.
func (db *DB) DropRelation(name string) error { return db.store.DropRelation(name) }

// Relations returns the names of all relations, sorted.
func (db *DB) Relations() []string { return db.store.Names() }

// LogicalTime returns the database's logical time: the number of committed
// updating transactions (Definition 2.6 of the paper).
func (db *DB) LogicalTime() uint64 { return db.store.LogicalTime() }

// Cardinality returns the number of tuples (counting duplicates) in a
// relation.
func (db *DB) Cardinality(name string) uint64 { return db.store.Cardinality(name) }

// Catalog exposes the database schema for expression validation.
func (db *DB) Catalog() algebra.Catalog { return db.store }

// InsertValues adds rows to a relation directly, without going through a
// front-end.  Each row must match the relation's arity; values are Go
// int64/int, float64, string or bool.
func (db *DB) InsertValues(relation string, rows ...[]any) error {
	rel, ok := db.store.RelationSchema(relation)
	if !ok {
		return fmt.Errorf("mra: unknown relation %q", relation)
	}
	converted := make([][]value.Value, len(rows))
	for i, row := range rows {
		if len(row) != rel.Arity() {
			return fmt.Errorf("mra: row %d has %d values, relation %q has %d columns", i+1, len(row), relation, rel.Arity())
		}
		vals := make([]value.Value, len(row))
		for j, v := range row {
			cv, err := convertValue(v)
			if err != nil {
				return fmt.Errorf("mra: row %d column %d: %w", i+1, j+1, err)
			}
			vals[j] = cv
		}
		converted[i] = vals
	}
	lit := algebra.Literal{Rel: rel.Rename(""), Rows: converted}
	_, err := db.manager.Run(stmt.Program{stmt.Insert{Target: relation, Source: lit}})
	return err
}

// convertValue maps a native Go value onto an atomic value.
func convertValue(v any) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.Null, nil
	case int:
		return value.NewInt(int64(x)), nil
	case int64:
		return value.NewInt(x), nil
	case float64:
		return value.NewFloat(x), nil
	case string:
		return value.NewString(x), nil
	case bool:
		return value.NewBool(x), nil
	case value.Value:
		return x, nil
	default:
		return value.Null, fmt.Errorf("unsupported value type %T", v)
	}
}

// prepare optionally rewrites an expression for execution.
func (db *DB) prepare(e algebra.Expr) algebra.Expr {
	if !db.Optimize {
		return e
	}
	out, _ := db.rewriter.Rewrite(e, db.store)
	return out
}

// QueryExpr validates, optionally optimises, and evaluates an algebra
// expression, returning its result.
func (db *DB) QueryExpr(e algebra.Expr) (*Result, error) {
	return db.QueryExprContext(context.Background(), e)
}

// QueryExprContext is QueryExpr under a lifecycle context: execution polls ctx
// at amortised checkpoints and fails with ctx.Err() once it is cancelled or
// past its deadline.  A Background context adds no cost over QueryExpr.
func (db *DB) QueryExprContext(ctx context.Context, e algebra.Expr) (*Result, error) {
	if err := algebra.Validate(e, db.store); err != nil {
		return nil, err
	}
	plan := db.prepare(e)
	tx := db.manager.Begin().WithContext(ctx)
	defer tx.Abort()
	rel, err := db.engine().EvalContext(ctx, plan, tx)
	if err != nil {
		return nil, err
	}
	return &Result{rel: rel}, nil
}

// QueryXRA parses an XRA expression and evaluates it.
func (db *DB) QueryXRA(expr string) (*Result, error) {
	return db.QueryXRAContext(context.Background(), expr)
}

// QueryXRAContext is QueryXRA under a lifecycle context (see
// QueryExprContext).
func (db *DB) QueryXRAContext(ctx context.Context, expr string) (*Result, error) {
	e, err := xraparse.ParseExpression(expr)
	if err != nil {
		return nil, err
	}
	return db.QueryExprContext(ctx, e)
}

// QuerySQL compiles a SQL SELECT statement onto the algebra and evaluates it.
// ORDER BY, LIMIT and OFFSET — which have no counterpart in the unordered bag
// algebra — are presentation modifiers: an ORDER BY query executes through a
// physical Sort operator rooting the plan (so keys may be arbitrary
// expressions, carried as hidden sort columns when they are not output
// columns), and LIMIT/OFFSET window the ordered occurrences.
func (db *DB) QuerySQL(sql string) (*Result, error) {
	return db.QuerySQLContext(context.Background(), sql)
}

// QuerySQLContext is QuerySQL under a lifecycle context (see
// QueryExprContext).
func (db *DB) QuerySQLContext(ctx context.Context, sql string) (*Result, error) {
	q, err := sqlfront.CompileQuery(sql, db.store)
	if err != nil {
		return nil, err
	}
	if len(q.Mods.Order) > 0 {
		return db.queryOrdered(ctx, q)
	}
	res, err := db.QueryExprContext(ctx, q.Expr)
	if err != nil {
		return nil, err
	}
	return res.withModifiers(q.Mods), nil
}

// queryOrdered evaluates an ORDER BY query through the physical Sort
// operator: the plan is rooted with a Sort over the resolved keys, the root
// stream's emission order is captured as the presentation order, and the
// window and hidden-column modifiers are applied to it.
func (db *DB) queryOrdered(ctx context.Context, q sqlfront.Query) (*Result, error) {
	if err := algebra.Validate(q.Expr, db.store); err != nil {
		return nil, err
	}
	planned := db.prepare(q.Expr)
	keys := make([]plan.SortKey, len(q.Mods.Order))
	for i, k := range q.Mods.Order {
		keys[i] = plan.SortKey{Col: k.Col, Desc: k.Desc}
	}
	tx := db.manager.Begin().WithContext(ctx)
	defer tx.Abort()
	ordered, rel, err := db.engine().EvalOrderedContext(ctx, planned, tx, keys)
	if err != nil {
		return nil, err
	}
	res := &Result{rel: rel, ordered: ordered}
	return res.withModifiers(q.Mods), nil
}

// Explain describes how the database would execute an XRA expression: the
// parsed logical expression, the rewritten (optimised) one with the applied
// rule names, and the compiled physical plan with its operator choices and
// cardinality estimates.
type Explain struct {
	// Logical is the parsed expression in algebra syntax.
	Logical string
	// Optimised is the expression after rewriting.
	Optimised string
	// Rules names the applied rewrite rules, in order.
	Rules []string
	// Physical is the multi-line rendering of the physical operator tree the
	// planner executed: every operator carries its estimated output
	// cardinality (est=, exact; est~, approximate), its distinct-tuple
	// estimate (ndv=) where the planner knows one differing from the row
	// estimate, and — for non-leaf operators — the number of tuples it
	// actually emitted (act=).  Join nesting shows the order the cost-based
	// enumerator chose, not necessarily the written order.
	Physical string
	// Workers is the parallelism degree the plan was compiled for (1 when
	// serial).
	Workers int
}

// Explain compiles an XRA expression through the rewriter and the physical
// planner, then executes the plan once to annotate every operator with the
// tuple count it actually emitted.  The query's result is discarded; the
// database is left unchanged.
func (db *DB) Explain(expr string) (*Explain, error) {
	e, err := xraparse.ParseExpression(expr)
	if err != nil {
		return nil, err
	}
	if err := algebra.Validate(e, db.store); err != nil {
		return nil, err
	}
	opt, trace := db.rewriter.Rewrite(e, db.store)
	names := make([]string, len(trace))
	for i, a := range trace {
		names[i] = a.Rule
	}
	planned := opt
	if !db.Optimize {
		planned = e
	}
	phys, err := (&plan.Planner{Cards: db.store, Workers: db.workers}).Plan(planned, db.store)
	if err != nil {
		return nil, err
	}
	// Execute the plan once against a snapshot to collect per-operator
	// actuals; rendering falls back to estimates only if execution fails.
	rendered := phys.String()
	tx := db.manager.Begin()
	var st plan.Stats
	if _, err := phys.ExecuteStats(tx, &st); err == nil {
		rendered = phys.Render(&st)
	}
	tx.Abort()
	return &Explain{
		Logical:   e.String(),
		Optimised: opt.String(),
		Rules:     names,
		Physical:  rendered,
		Workers:   db.workers,
	}, nil
}

// ColumnStats is the public summary of one column's optimizer statistics.
type ColumnStats struct {
	// Name is the column's attribute name (may be empty).
	Name string
	// NDV is the estimated number of distinct non-null values; zero when the
	// column holds only nulls.
	NDV uint64
	// NullFraction is the fraction of rows with a null in this column.
	NullFraction float64
	// Min and Max render the observed value range; both empty when the
	// column holds only nulls.
	Min, Max string
	// HistogramBuckets is the number of equi-depth histogram buckets kept
	// for the column (zero when the column has too few distinct values for a
	// histogram to add information).
	HistogramBuckets int
}

// RelationStats is the public summary of one relation's optimizer statistics
// — the ANALYZE-built, incrementally maintained input of the planner's cost
// model.
type RelationStats struct {
	// Relation is the relation's name.
	Relation string
	// Rows is the exact row count (with multiplicities) at the summary's
	// version.
	Rows uint64
	// DistinctTuples estimates the number of distinct tuples.
	DistinctTuples uint64
	// Version is the database version the summary describes.
	Version uint64
	// Columns holds the per-column summaries in schema order.
	Columns []ColumnStats
}

// Analyze (re)builds optimizer statistics for the named relation — or for
// every relation when name is empty — from its current instance.  Committed
// write deltas maintain the summaries incrementally from then on; wholesale
// replacements (DDL, Replace) drop them until the next Analyze.
func (db *DB) Analyze(name string) error {
	if name == "" {
		return db.store.AnalyzeAll()
	}
	_, err := db.store.Analyze(name)
	return err
}

// RelationStats returns the current statistics summary of a relation, or
// false when the relation was never analyzed (or its summary was invalidated
// by a wholesale replacement).
func (db *DB) RelationStats(name string) (RelationStats, bool) {
	t, ok := db.store.TableStats(name)
	if !ok {
		return RelationStats{}, false
	}
	s, ok := db.store.RelationSchema(name)
	if !ok {
		return RelationStats{}, false
	}
	out := RelationStats{
		Relation:       s.Name(),
		Rows:           uint64(t.Rows() + 0.5),
		DistinctTuples: uint64(t.DistinctTuples() + 0.5),
		Version:        t.Version(),
		Columns:        make([]ColumnStats, t.Cols()),
	}
	for c := 0; c < t.Cols(); c++ {
		cs := ColumnStats{NullFraction: t.NullFraction(c)}
		if c < s.Arity() {
			cs.Name = s.Attribute(c).Name
		}
		if ndv, ok := t.NDV(c); ok {
			cs.NDV = uint64(ndv + 0.5)
		}
		if min, max, ok := t.Range(c); ok {
			cs.Min, cs.Max = min.String(), max.String()
		}
		if h := t.Histogram(c); h != nil {
			_, _, counts := h.Buckets()
			cs.HistogramBuckets = len(counts)
		}
		out.Columns[c] = cs
	}
	return out, true
}

// ExecProgram runs an extended relational algebra program as one transaction
// and returns the query statement outputs.
func (db *DB) ExecProgram(p stmt.Program) ([]*Result, error) {
	return db.ExecProgramContext(context.Background(), p)
}

// ExecProgramContext is ExecProgram under a lifecycle context: the
// transaction aborts, leaving the database unchanged, as soon as a statement
// fails with ctx.Err().
func (db *DB) ExecProgramContext(ctx context.Context, p stmt.Program) ([]*Result, error) {
	outs, err := db.manager.RunContext(ctx, p)
	if err != nil {
		return nil, err
	}
	return wrapResults(outs), nil
}

// ExecXRA parses an XRA script and executes it.  Each `begin ... end` block
// runs as one transaction; bare statements run as single-statement
// transactions.  It returns the outputs of all query statements, in order.
func (db *DB) ExecXRA(script string) ([]*Result, error) {
	return db.ExecXRAContext(context.Background(), script)
}

// ExecXRAContext is ExecXRA under a lifecycle context: a cancelled or expired
// context aborts the running transaction (already committed transactions of
// the script stay committed) and returns ctx.Err().
func (db *DB) ExecXRAContext(ctx context.Context, script string) ([]*Result, error) {
	txs, err := xraparse.ParseScript(script)
	if err != nil {
		return nil, err
	}
	var results []*Result
	for _, t := range txs {
		outs, err := db.manager.RunContext(ctx, t.Program)
		if err != nil {
			return results, err
		}
		results = append(results, wrapResults(outs)...)
	}
	return results, nil
}

// MustExecXRA is ExecXRA panicking on error; it is intended for examples and
// tests.
func (db *DB) MustExecXRA(script string) []*Result {
	rs, err := db.ExecXRA(script)
	if err != nil {
		panic(err)
	}
	return rs
}

// ExecSQL compiles a SQL script (semicolon-separated statements) into one
// program and runs it as a single transaction.  ORDER BY / LIMIT clauses of
// SELECT statements are applied to the corresponding results.
func (db *DB) ExecSQL(script string) ([]*Result, error) {
	return db.ExecSQLContext(context.Background(), script)
}

// ExecSQLContext is ExecSQL under a lifecycle context (see
// ExecProgramContext).
func (db *DB) ExecSQLContext(ctx context.Context, script string) ([]*Result, error) {
	prog, mods, err := sqlfront.CompileScript(script, db.store)
	if err != nil {
		return nil, err
	}
	results, err := db.ExecProgramContext(ctx, prog)
	if err != nil {
		return results, err
	}
	for i := range results {
		if i < len(mods) {
			results[i] = results[i].withModifiers(mods[i])
		}
	}
	return results, nil
}

// Begin opens an explicit transaction with the database's default options.
func (db *DB) Begin() *Tx { return &Tx{inner: db.manager.Begin(), db: db} }

// TxOptions configures one explicit transaction; the zero value inherits the
// database defaults.  Serving-layer sessions use per-transaction options so
// one session's settings never leak into another's.
type TxOptions struct {
	// Workers is the parallelism degree of this transaction's evaluation
	// engine; at or below zero the database default applies.
	Workers int
	// MemoryLimit is the per-query memory budget in bytes: zero inherits the
	// database default, negative disables enforcement for this transaction.
	MemoryLimit int64
	// Serializable extends commit validation from the delta write set to the
	// keys the transaction observed: it aborts with a conflict when any key
	// contained in a relation it read was touched by a concurrent committer,
	// trading write skew for aborts.  Readers of untouched keys never abort;
	// concurrent inserts of fresh keys are phantoms this validation admits.
	Serializable bool
}

// BeginTx opens an explicit transaction with per-transaction options.
func (db *DB) BeginTx(opts TxOptions) *Tx {
	return &Tx{
		inner: db.manager.BeginTx(txn.TxOptions{
			Workers:      opts.Workers,
			MemoryLimit:  opts.MemoryLimit,
			Serializable: opts.Serializable,
		}),
		db: db,
	}
}

// WithContext sets the transaction's lifecycle context and returns the same
// transaction: subsequent query evaluations poll ctx and fail with ctx.Err()
// once it is cancelled or past its deadline.
func (t *Tx) WithContext(ctx context.Context) *Tx {
	t.inner.WithContext(ctx)
	return t
}

// History returns the committed single-step transitions of the database.
func (db *DB) History() []storage.Transition { return db.store.History() }

// Tx is an explicit transaction handle exposing the statement-level API.
type Tx struct {
	inner *txn.Tx
	db    *DB
}

// ExecXRA parses a single XRA statement and executes it inside the
// transaction.
func (t *Tx) ExecXRA(statement string) error {
	s, err := xraparse.ParseStatement(statement)
	if err != nil {
		return err
	}
	return t.inner.Exec(s)
}

// ExecSQL compiles a single SQL statement and executes it inside the
// transaction.
func (t *Tx) ExecSQL(sql string) error {
	s, err := sqlfront.CompileStatement(sql, t.inner.Catalog())
	if err != nil {
		return err
	}
	return t.inner.Exec(s)
}

// Exec executes an already-built statement inside the transaction.
func (t *Tx) Exec(s stmt.Statement) error { return t.inner.Exec(s) }

// ExecSQLScript compiles a SQL script (semicolon-separated statements) against
// the transaction's intermediate state and executes it inside the
// transaction, returning the results of the script's query statements with
// their ORDER BY / LIMIT modifiers applied.  On a statement error the results
// produced so far are returned alongside the error; the transaction is left
// active so the caller decides between rollback and recovery.
func (t *Tx) ExecSQLScript(script string) ([]*Result, error) {
	prog, mods, err := sqlfront.CompileScript(script, t.inner.Catalog())
	if err != nil {
		return nil, err
	}
	before := len(t.inner.Outputs())
	execErr := t.inner.Run(prog)
	results := wrapResults(t.inner.Outputs()[before:])
	for i := range results {
		if i < len(mods) {
			results[i] = results[i].withModifiers(mods[i])
		}
	}
	return results, execErr
}

// ExecXRAScript parses an XRA script and executes its statements inside the
// transaction.  Explicit `begin ... end` blocks are rejected — the bracket is
// this transaction itself — and like ExecSQLScript, partial results accompany
// a statement error with the transaction left active.
func (t *Tx) ExecXRAScript(script string) ([]*Result, error) {
	txs, err := xraparse.ParseScript(script)
	if err != nil {
		return nil, err
	}
	before := len(t.inner.Outputs())
	var execErr error
	for _, parsed := range txs {
		if parsed.Explicit {
			execErr = errors.New("mra: begin/end blocks are not allowed inside an open transaction")
			break
		}
		if execErr = t.inner.Run(parsed.Program); execErr != nil {
			break
		}
	}
	return wrapResults(t.inner.Outputs()[before:]), execErr
}

// Query evaluates an XRA expression against the transaction's intermediate
// state (including its own uncommitted changes and temporaries).
func (t *Tx) Query(expr string) (*Result, error) {
	e, err := xraparse.ParseExpression(expr)
	if err != nil {
		return nil, err
	}
	rel, err := t.inner.Evaluate(e)
	if err != nil {
		return nil, err
	}
	return &Result{rel: rel}, nil
}

// Outputs returns the results of the query statements executed so far.
func (t *Tx) Outputs() []*Result { return wrapResults(t.inner.Outputs()) }

// Active reports whether the transaction still accepts statements (it has
// neither committed nor aborted).
func (t *Tx) Active() bool { return t.inner.State() == txn.StateActive }

// Commit installs the transaction's effects as the next database state.
func (t *Tx) Commit() error { return t.inner.Commit() }

// Abort discards the transaction's effects.
func (t *Tx) Abort() { t.inner.Abort() }

// wrapResults converts raw relations into public results.
func wrapResults(rels []*multiset.Relation) []*Result {
	out := make([]*Result, len(rels))
	for i, r := range rels {
		out[i] = &Result{rel: r}
	}
	return out
}
