// Command mrabench regenerates the experiment series documented in
// EXPERIMENTS.md (E1–E10).  Each experiment prints one table of measurements
// to stdout; -run selects a subset by experiment id.
//
// The paper itself contains no measured tables or figures (it is a formal
// paper); the experiments quantify its theorems, worked examples and explicit
// practical claims on this implementation.  See EXPERIMENTS.md for the
// mapping.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"mra/internal/algebra"
	"mra/internal/eval"
	"mra/internal/multiset"
	"mra/internal/rewrite"
	"mra/internal/scalar"
	"mra/internal/setalg"
	"mra/internal/stmt"
	"mra/internal/storage"
	"mra/internal/txn"
	"mra/internal/value"
	"mra/internal/workload"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids to run (e.g. E1,E5,E7) or 'all'")
	jsonLabel := flag.String("json", "", "instead of the experiment tables, run the E1/E2 benchmark set and write machine-readable BENCH_<label>.json")
	benchSet := flag.String("set", "main", "with -json: which benchmark series to run — 'main' (E1/E2/E11/E12 defaults), 'vec' (columnar vs row-batch A/B over E11/E12 shapes), 'joins' (E13 join-order enumerator vs written order), or 'all'")
	compare := flag.String("compare", "", "with -json: compare the fresh series against a committed BENCH_<label>.json baseline and exit non-zero on regression")
	maxRatio := flag.Float64("maxratio", 2.0, "with -compare: maximum allowed ns/op ratio (measured / baseline) before the run counts as a regression")
	flag.IntVar(&workers, "workers", 1, "parallel worker count for the physical engine (1 = serial); applies to the experiments and the main -json series")
	flag.IntVar(&morselSize, "morsel", 0, "morsel size for parallel scans (0 = cost-model sizing); applies wherever -workers enables parallel plans")
	flag.Parse()

	if *jsonLabel != "" {
		out, err := writeBenchJSON(*jsonLabel, *benchSet)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *compare != "" {
			if err := compareBaseline(out, *compare, *maxRatio); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	if *compare != "" {
		fmt.Fprintln(os.Stderr, "-compare requires -json")
		os.Exit(1)
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(strings.ToUpper(*run), ",") {
		selected[strings.TrimSpace(id)] = true
	}
	want := func(id string) bool { return selected["ALL"] || selected[id] }

	experiments := []struct {
		id   string
		name string
		fn   func()
	}{
		{"E1", "Theorem 3.1: native vs derived intersection and join", e1},
		{"E2", "Theorem 3.2: selection/projection distribution over union", e2},
		{"E3", "Theorem 3.3: join associativity and order cost", e3},
		{"E4", "Example 3.1: the Dutch-beers query at scale", e4},
		{"E5", "Example 3.2: aggregate projection push-in, bag vs set semantics", e5},
		{"E6", "Example 4.1: update statement throughput", e6},
		{"E7", "Duplicate-removal cost (bag vs set operators)", e7},
		{"E8", "Transaction atomicity and throughput", e8},
		{"E9", "Optimizer ablation: rewritten vs naive plans", e9},
		{"E10", "Transitive-closure extension scaling", e10},
	}
	for _, e := range experiments {
		if !want(e.id) {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.name)
		e.fn()
		fmt.Println()
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "nothing selected")
	}
}

// workers is the -workers flag: the parallelism degree of the physical
// engine used by the experiments and the main -json benchmark series.
var workers = 1

// morselSize is the -morsel flag: the morsel size of parallel scans, zero
// meaning the planner's cost-model sizing.
var morselSize = 0

// timeIt measures a single evaluation.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// evalMust evaluates an expression with the physical engine at the configured
// worker count and morsel size.
func evalMust(e algebra.Expr, src eval.Source) *multiset.Relation {
	r, err := (&eval.Engine{Workers: workers, MorselSize: morselSize}).Eval(e, src)
	if err != nil {
		panic(err)
	}
	return r
}

func header(cols ...string) { fmt.Println(strings.Join(cols, "\t")) }

func e1() {
	header("rows/side", "intersect_native", "intersect_derived", "join_native", "join_as_sigma_product", "equal")
	for _, n := range []int{200, 1000, 4000} {
		fact, dim := workload.JoinPair(workload.JoinConfig{LeftTuples: n, RightTuples: n / 2, Seed: 1})
		src := eval.MapSource{"a": fact, "b": fact.Clone(), "fact": fact, "dim": dim}
		a, b := algebra.NewRel("a"), algebra.NewRel("b")

		var nativeI, derivedI, nativeJ, sigmaJ *multiset.Relation
		tNI := timeIt(func() { nativeI = evalMust(algebra.NewIntersect(a, b), src) })
		tDI := timeIt(func() {
			derivedI = evalMust(algebra.NewDifference(a, algebra.NewDifference(a, b)), src)
		})
		joinCond := scalar.Eq(0, 2)
		tNJ := timeIt(func() {
			nativeJ = evalMust(algebra.NewJoin(joinCond, algebra.NewRel("fact"), algebra.NewRel("dim")), src)
		})
		tSJ := timeIt(func() {
			sigmaJ = evalMust(algebra.NewSelect(joinCond, algebra.NewProduct(algebra.NewRel("fact"), algebra.NewRel("dim"))), src)
		})
		equal := nativeI.Equal(derivedI) && nativeJ.Equal(sigmaJ)
		fmt.Printf("%d\t%v\t%v\t%v\t%v\t%v\n", n, tNI, tDI, tNJ, tSJ, equal)
	}
}

func e2() {
	header("rows/side", "sigma_over_union", "union_of_sigmas", "pi_over_union", "union_of_pis", "results_equal", "delta_distributes")
	for _, n := range []int{1000, 10000} {
		r1 := workload.Duplicated(workload.DuplicationConfig{DistinctTuples: n, DuplicationFactor: 2, Seed: 1})
		r2 := workload.Duplicated(workload.DuplicationConfig{DistinctTuples: n, DuplicationFactor: 2, Seed: 2})
		src := eval.MapSource{"e1": r1, "e2": r2}
		pred := scalar.NewCompare(value.CmpLt, scalar.NewAttr(1), scalar.NewConst(value.NewInt(1<<15)))
		e1r, e2r := algebra.NewRel("e1"), algebra.NewRel("e2")

		var a, b, c, d *multiset.Relation
		t1 := timeIt(func() { a = evalMust(algebra.NewSelect(pred, algebra.NewUnion(e1r, e2r)), src) })
		t2 := timeIt(func() {
			b = evalMust(algebra.NewUnion(algebra.NewSelect(pred, e1r), algebra.NewSelect(pred, e2r)), src)
		})
		t3 := timeIt(func() { c = evalMust(algebra.NewProject([]int{0}, algebra.NewUnion(e1r, e2r)), src) })
		t4 := timeIt(func() {
			d = evalMust(algebra.NewUnion(algebra.NewProject([]int{0}, e1r), algebra.NewProject([]int{0}, e2r)), src)
		})
		deltaLeft := evalMust(algebra.NewUnique(algebra.NewUnion(e1r, e1r)), src)
		deltaRight := evalMust(algebra.NewUnion(algebra.NewUnique(e1r), algebra.NewUnique(e1r)), src)
		fmt.Printf("%d\t%v\t%v\t%v\t%v\t%v\t%v\n", n, t1, t2, t3, t4,
			a.Equal(b) && c.Equal(d), deltaLeft.Equal(deltaRight))
	}
}

func e3() {
	header("fact_rows", "(fact⋈dim)⋈dim2", "fact⋈(dim⋈dim2)", "equal")
	for _, n := range []int{2000, 8000} {
		fact, dim := workload.JoinPair(workload.JoinConfig{LeftTuples: n, RightTuples: 200, Seed: 3})
		_, dim2 := workload.JoinPair(workload.JoinConfig{LeftTuples: 10, RightTuples: 200, Seed: 4})
		src := eval.MapSource{"fact": fact, "dim": dim, "dim2": dim2}
		f, d1, d2 := algebra.NewRel("fact"), algebra.NewRel("dim"), algebra.NewRel("dim2")

		var left, right *multiset.Relation
		tl := timeIt(func() {
			left = evalMust(algebra.NewJoin(scalar.Eq(2, 4), algebra.NewJoin(scalar.Eq(0, 2), f, d1), d2), src)
		})
		tr := timeIt(func() {
			right = evalMust(algebra.NewJoin(scalar.Eq(0, 2), f, algebra.NewJoin(scalar.Eq(0, 2), d1, d2)), src)
		})
		fmt.Printf("%d\t%v\t%v\t%v\n", n, tl, tr, left.Equal(right))
	}
}

func e4() {
	header("breweries", "beers", "algebra_time", "result_tuples", "duplicates_present")
	for _, b := range []int{20, 100, 400} {
		beer, brewery := workload.Beers(workload.BeerConfig{Breweries: b, BeersPerBrewery: 20, DuplicateNames: true, Seed: 5})
		src := eval.MapSource{"beer": beer, "brewery": brewery}
		expr := algebra.NewProject([]int{0},
			algebra.NewSelect(
				scalar.NewCompare(value.CmpEq, scalar.NewAttr(5), scalar.NewConst(value.NewString("netherlands"))),
				algebra.NewJoin(scalar.Eq(1, 3), algebra.NewRel("beer"), algebra.NewRel("brewery"))))
		var res *multiset.Relation
		t := timeIt(func() { res = evalMust(expr, src) })
		fmt.Printf("%d\t%d\t%v\t%d\t%v\n", b, beer.Cardinality(), t, res.Cardinality(),
			res.Cardinality() > uint64(res.DistinctCount()))
	}
}

func e5() {
	header("beers", "bag_direct", "bag_pushed", "bag_equal", "set_pushed_matches_bag(expected_false)", "intermediate_direct", "intermediate_pushed")
	for _, b := range []int{50, 200} {
		beer, brewery := workload.Beers(workload.BeerConfig{Breweries: b, BeersPerBrewery: 20, DuplicateNames: true, DiscreteAlcohol: true, Seed: 6})
		src := eval.MapSource{"beer": beer, "brewery": brewery}
		join := algebra.NewJoin(scalar.Eq(1, 3), algebra.NewRel("beer"), algebra.NewRel("brewery"))
		direct := algebra.NewGroupBy([]int{5}, algebra.AggAvg, 2, join)
		pushed := algebra.NewGroupBy([]int{1}, algebra.AggAvg, 0, algebra.NewProject([]int{2, 5}, join))

		engDirect := &eval.Engine{CollectStats: true}
		engPushed := &eval.Engine{CollectStats: true}
		var rd, rp *multiset.Relation
		td := timeIt(func() {
			var err error
			rd, err = engDirect.Eval(direct, src)
			if err != nil {
				panic(err)
			}
		})
		tp := timeIt(func() {
			var err error
			rp, err = engPushed.Eval(pushed, src)
			if err != nil {
				panic(err)
			}
		})
		setRes, err := (setalg.Engine{}).Eval(pushed, src)
		if err != nil {
			panic(err)
		}
		// Floating-point sums accumulate in map order, so compare the per-group
		// averages with a tolerance rather than bit-exactly.
		fmt.Printf("%d\t%v\t%v\t%v\t%v\t%d\t%d\n",
			beer.Cardinality(), td, tp, avgsMatch(rd, rp, 1e-9), avgsMatch(rd, setRes, 1e-9),
			engDirect.Stats.IntermediateTuples, engPushed.Stats.IntermediateTuples)
	}
}

// avgsMatch compares two (group, average) relations group-wise with an
// absolute tolerance.
func avgsMatch(a, b *multiset.Relation, tol float64) bool {
	collect := func(r *multiset.Relation) map[string]float64 {
		m := make(map[string]float64)
		for _, t := range r.Tuples() {
			m[t.At(0).Str()] = t.At(1).Float()
		}
		return m
	}
	ma, mb := collect(a), collect(b)
	if len(ma) != len(mb) {
		return false
	}
	for k, va := range ma {
		vb, ok := mb[k]
		if !ok || va-vb > tol || vb-va > tol {
			return false
		}
	}
	return true
}

func e6() {
	header("accounts", "updates", "total_time", "per_update")
	for _, n := range []int{100, 1000} {
		db := storage.NewDatabase()
		if err := db.CreateRelation(workload.AccountsSchema()); err != nil {
			panic(err)
		}
		if _, err := db.Apply(map[string]*multiset.Relation{"account": workload.Accounts(n, 7)}); err != nil {
			panic(err)
		}
		mgr := txn.NewManager(db)
		const updates = 50
		items := []scalar.Expr{
			scalar.NewAttr(0), scalar.NewAttr(1),
			scalar.NewArith(value.OpMul, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(1.01))),
		}
		total := timeIt(func() {
			for i := 0; i < updates; i++ {
				sel := algebra.NewSelect(
					scalar.NewCompare(value.CmpLt, scalar.NewAttr(0), scalar.NewConst(value.NewInt(int64(n/2)))),
					algebra.NewRel("account"))
				if _, err := mgr.Run(stmt.Program{stmt.Update{Target: "account", Selection: sel, Items: items}}); err != nil {
					panic(err)
				}
			}
		})
		fmt.Printf("%d\t%d\t%v\t%v\n", n, updates, total, total/updates)
	}
}

func e7() {
	header("dup_factor", "distinct", "total", "bag_project", "set_project(dedup)", "set/bag_ratio")
	for _, dup := range []int{1, 2, 4, 8, 16, 32, 64} {
		r := workload.Duplicated(workload.DuplicationConfig{DistinctTuples: 2000, DuplicationFactor: dup, Seed: 8})
		src := eval.MapSource{"r": r}
		proj := algebra.NewProject([]int{1}, algebra.NewRel("r"))
		var bagTime, setTime time.Duration
		bagTime = timeIt(func() { evalMust(proj, src) })
		setTime = timeIt(func() {
			if _, err := (setalg.Engine{}).Eval(proj, src); err != nil {
				panic(err)
			}
		})
		ratio := float64(setTime) / float64(bagTime)
		fmt.Printf("%d\t%d\t%d\t%v\t%v\t%.2f\n", dup, r.DistinctCount(), r.Cardinality(), bagTime, setTime, ratio)
	}
}

func e8() {
	header("accounts", "transactions", "committed", "aborted_by_conflict", "atomicity_held", "throughput_tx_per_s")
	n := 200
	db := storage.NewDatabase()
	if err := db.CreateRelation(workload.AccountsSchema()); err != nil {
		panic(err)
	}
	if _, err := db.Apply(map[string]*multiset.Relation{"account": workload.Accounts(n, 9)}); err != nil {
		panic(err)
	}
	mgr := txn.NewManager(db)
	const txCount = 200
	committed, aborted := 0, 0
	items := []scalar.Expr{
		scalar.NewAttr(0), scalar.NewAttr(1),
		scalar.NewArith(value.OpAdd, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(1))),
	}
	start := time.Now()
	for i := 0; i < txCount; i++ {
		tx := mgr.Begin()
		sel := algebra.NewSelect(
			scalar.NewCompare(value.CmpEq, scalar.NewAttr(0), scalar.NewConst(value.NewInt(int64(i%n)))),
			algebra.NewRel("account"))
		if err := tx.Exec(stmt.Update{Target: "account", Selection: sel, Items: items}); err != nil {
			panic(err)
		}
		if i%10 == 9 {
			// Force an abort: the database state must remain exactly D_t.
			tx.Abort()
			aborted++
			continue
		}
		if err := tx.Commit(); err != nil {
			aborted++
			continue
		}
		committed++
	}
	elapsed := time.Since(start)
	// Atomicity check: total balance equals initial total plus one unit per
	// committed transaction (aborted transactions must have left no trace).
	sum := sumBalances(db)
	initial := sumOf(workload.Accounts(n, 9))
	atomic := int(sum-initial+0.5) == committed
	fmt.Printf("%d\t%d\t%d\t%d\t%v\t%.0f\n", n, txCount, committed, aborted, atomic,
		float64(txCount)/elapsed.Seconds())
}

func sumBalances(db *storage.Database) float64 {
	r, _ := db.Relation("account")
	return sumOf(r)
}

func sumOf(r *multiset.Relation) float64 {
	total := 0.0
	for _, t := range r.Tuples() {
		total += t.At(2).Float()
	}
	return total
}

func e9() {
	header("query", "reference_eval", "physical_naive_plan", "physical_optimised_plan", "speedup_vs_naive_plan", "results_equal")
	fact, dim := workload.JoinPair(workload.JoinConfig{LeftTuples: 3000, RightTuples: 150, Seed: 10})
	src := eval.MapSource{"fact": fact, "dim": dim}
	cat := src.Catalog()
	rw := rewrite.NewRewriter()
	queries := map[string]algebra.Expr{
		"sigma_product": algebra.NewSelect(
			scalar.NewAnd(scalar.Eq(0, 2), scalar.NewCompare(value.CmpGe, scalar.NewAttr(3), scalar.NewConst(value.NewInt(50)))),
			algebra.NewProduct(algebra.NewRel("fact"), algebra.NewRel("dim"))),
		"groupby_wide_join": algebra.NewGroupBy([]int{3}, algebra.AggSum, 1,
			algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim"))),
		"selection_cascade": algebra.NewSelect(
			scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(100))),
			algebra.NewSelect(
				scalar.NewCompare(value.CmpLt, scalar.NewAttr(0), scalar.NewConst(value.NewInt(100))),
				algebra.NewRel("fact"))),
	}
	for name, q := range queries {
		var reference, naive, optimised *multiset.Relation
		tRef := timeIt(func() {
			var err error
			reference, err = (eval.Reference{}).Eval(q, src)
			if err != nil {
				panic(err)
			}
		})
		tn := timeIt(func() { naive = evalMust(q, src) })
		opt, _ := rw.Rewrite(q, cat)
		to := timeIt(func() { optimised = evalMust(opt, src) })
		speedup := float64(tn) / float64(to)
		fmt.Printf("%s\t%v\t%v\t%v\t%.2fx\t%v\n", name, tRef, tn, to, speedup,
			naive.Equal(optimised) && reference.Equal(naive))
	}
}

func e10() {
	header("nodes", "edges", "closure_pairs", "time")
	for _, nodes := range []int{32, 64, 128, 256} {
		g := workload.Graph(workload.GraphConfig{Nodes: nodes, OutDegree: 2, Seed: 11})
		src := eval.MapSource{"edge": g}
		var res *multiset.Relation
		t := timeIt(func() { res = evalMust(algebra.NewTClose(algebra.NewRel("edge")), src) })
		fmt.Printf("%d\t%d\t%d\t%v\n", nodes, g.Cardinality(), res.Cardinality(), t)
	}
}

// benchResult is one benchmark series entry of a BENCH_<label>.json file.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchFile is the schema of a BENCH_<label>.json baseline.
type benchFile struct {
	Label      string        `json:"label"`
	Source     string        `json:"source"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// compareBaseline checks a fresh benchmark series against a committed
// baseline file: any benchmark whose ns/op exceeds maxRatio times its
// baseline value counts as a regression.  Benchmarks absent from the
// baseline are ignored, so the set can grow without breaking CI.
func compareBaseline(fresh benchFile, baselinePath string, maxRatio float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var baseline benchFile
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("compare: %s: %w", baselinePath, err)
	}
	base := make(map[string]benchResult, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	var regressions []string
	for _, b := range fresh.Benchmarks {
		ref, ok := base[b.Name]
		if !ok || ref.NsPerOp <= 0 {
			continue
		}
		ratio := b.NsPerOp / ref.NsPerOp
		fmt.Fprintf(os.Stderr, "compare %s: %.2fx baseline (%.0f vs %.0f ns/op)\n", b.Name, ratio, b.NsPerOp, ref.NsPerOp)
		if ratio > maxRatio {
			regressions = append(regressions, fmt.Sprintf("%s: %.2fx > %.2fx", b.Name, ratio, maxRatio))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("compare: ns/op regression versus %s:\n  %s", baselinePath, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "compare: all benchmarks within %.1fx of %s\n", maxRatio, baselinePath)
	return nil
}

// parallelWorkers is the gang width of the parallel E1/E2 benchmark
// variants: the `.../parallel-wN` series entries, measured alongside the main
// (serial unless -workers says otherwise) series.  Their names are absent
// from the serial baselines, so -compare ignores them; compare them against
// the same-named serial entries by hand or in the run's stderr summary.
const parallelWorkers = 4

// writeBenchJSON runs a benchmark series set through testing.Benchmark and
// writes it as BENCH_<label>.json, the machine-readable baseline future
// performance PRs are compared against.  The 'main' set covers the E1/E2
// operator shapes, the E11 skewed-scheduler set (including the
// morsel-parallel hash-build A/B) and the E12 aggregate workloads; it runs at
// the -workers count (default serial), and shapes the planner can parallelise
// are additionally measured as `/parallel-w4` variants, with `-static`
// (legacy scan scheduler), `-onephase` (legacy key-partitioned aggregate) and
// `-serialbuild` (single-threaded join build) baselines beside the defaults.
// The 'vec' set measures the E11/E12 shapes serially through the batch-native
// engine twice — `/batch-cols` on the columnar selection-vector loops and
// `/batch-rows` on the legacy row-at-a-time batch loops — a within-file A/B
// free of gang-scheduling noise that doubles as the stable series the ci-vec
// gate pins.  The 'joins' set measures the E13 multi-join shapes serially
// through the cost-based join-order enumerator (`/reorder`) and the written
// order (`/written`, Engine.NoJoinReorder) over ANALYZE-grade statistics — the
// A/B the ci-join gate pins.  It returns the series it measured so callers can
// compare it against a committed baseline.
func writeBenchJSON(label, set string) (benchFile, error) {
	if set != "main" && set != "vec" && set != "joins" && set != "all" {
		return benchFile{}, fmt.Errorf("unknown -set %q (want main, vec, joins or all)", set)
	}
	evalLoopEng := func(expr algebra.Expr, src eval.Source, eng eval.Engine) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := eng
				if _, err := e.Eval(expr, src); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	evalLoopW := func(expr algebra.Expr, src eval.Source, w int) func(b *testing.B) {
		return evalLoopEng(expr, src, eval.Engine{Workers: w, MorselSize: morselSize})
	}
	evalLoop := func(expr algebra.Expr, src eval.Source) func(b *testing.B) {
		return evalLoopW(expr, src, workers)
	}

	var cases []struct {
		name string
		fn   func(b *testing.B)
	}
	add := func(name string, fn func(b *testing.B)) {
		cases = append(cases, struct {
			name string
			fn   func(b *testing.B)
		}{name, fn})
	}
	if set == "main" || set == "all" {
		mainSeries(add, evalLoop, evalLoopW, evalLoopEng)
	}
	if set == "vec" || set == "all" {
		vecSeries(add, evalLoopEng)
	}
	if set == "joins" || set == "all" {
		joinSeries(add, evalLoopEng)
	}

	out := benchFile{
		Label:     label,
		Source:    "mrabench -json",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, c := range cases {
		r := testing.Benchmark(c.fn)
		if r.N == 0 {
			// b.Fatal inside the closure aborts the benchmark goroutine and
			// testing.Benchmark returns a zero result; surface the case name
			// instead of letting NaN ns/op poison the JSON.
			return benchFile{}, fmt.Errorf("benchmark %s failed (evaluation error); baseline not written", c.name)
		}
		out.Benchmarks = append(out.Benchmarks, benchResult{
			Name:        c.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%s\t%d iters\t%.0f ns/op\t%d B/op\t%d allocs/op\n",
			c.name, r.N, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	summariseRatios(out)

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return benchFile{}, err
	}
	name := fmt.Sprintf("BENCH_%s.json", label)
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		return benchFile{}, err
	}
	fmt.Printf("wrote %s\n", name)
	return out, nil
}

// benchCase adders shared by the series builders.
type addFunc = func(name string, fn func(b *testing.B))
type loopEngFunc = func(expr algebra.Expr, src eval.Source, eng eval.Engine) func(b *testing.B)

// mainSeries registers the 'main' benchmark set: E1/E2 operator shapes, the
// E11 skewed-scheduler and parallel-build workloads, and the E12 aggregate
// workloads.
func mainSeries(add addFunc,
	evalLoop func(algebra.Expr, eval.Source) func(b *testing.B),
	evalLoopW func(algebra.Expr, eval.Source, int) func(b *testing.B),
	evalLoopEng loopEngFunc) {
	// addParallel measures the same shape serially and as a parallel variant.
	addParallel := func(name string, expr algebra.Expr, src eval.Source) {
		add(name, evalLoop(expr, src))
		add(fmt.Sprintf("%s/parallel-w%d", name, parallelWorkers), evalLoopW(expr, src, parallelWorkers))
	}

	// E1 — Theorem 3.1: native operators vs their derived forms.
	for _, n := range []int{500, 2000} {
		left := workload.Duplicated(workload.DuplicationConfig{DistinctTuples: n, DuplicationFactor: 2, Seed: 1})
		right := workload.Duplicated(workload.DuplicationConfig{DistinctTuples: n, DuplicationFactor: 3, Seed: 2})
		isrc := eval.MapSource{"a": left, "b": right}
		a, c := algebra.NewRel("a"), algebra.NewRel("b")
		add(fmt.Sprintf("E1_IntersectNativeVsDerived/native/n=%d", n),
			evalLoop(algebra.NewIntersect(a, c), isrc))
		add(fmt.Sprintf("E1_IntersectNativeVsDerived/derived/n=%d", n),
			evalLoop(algebra.NewDifference(a, algebra.NewDifference(a, c)), isrc))

		fact, dim := workload.JoinPair(workload.JoinConfig{LeftTuples: n, RightTuples: n / 10, Seed: 3})
		jsrc := eval.MapSource{"fact": fact, "dim": dim}
		cond := scalar.Eq(0, 2)
		join := algebra.NewJoin(cond, algebra.NewRel("fact"), algebra.NewRel("dim"))
		sigma := algebra.NewSelect(cond, algebra.NewProduct(algebra.NewRel("fact"), algebra.NewRel("dim")))
		if n >= 2000 {
			// Only the large join clears the planner's parallel threshold; the
			// small one would plan serial and measure the same thing twice.
			addParallel(fmt.Sprintf("E1_JoinNativeVsSigmaProduct/native/n=%d", n), join, jsrc)
			addParallel(fmt.Sprintf("E1_JoinNativeVsSigmaProduct/derived/n=%d", n), sigma, jsrc)
		} else {
			add(fmt.Sprintf("E1_JoinNativeVsSigmaProduct/native/n=%d", n), evalLoop(join, jsrc))
			add(fmt.Sprintf("E1_JoinNativeVsSigmaProduct/derived/n=%d", n), evalLoop(sigma, jsrc))
		}
	}

	// E2 — Theorem 3.2: distribution of σ and π over ⊎.  Workloads use the
	// same seeds as the corresponding root bench_test.go benchmarks (4/5 for
	// the selection pair, 6/7 for the projection pair) so the JSON series is
	// directly comparable to `go test -bench E2`.
	e1r, e2r := algebra.NewRel("e1"), algebra.NewRel("e2")
	ssrc := eval.MapSource{
		"e1": workload.Duplicated(workload.DuplicationConfig{DistinctTuples: 5000, DuplicationFactor: 2, Seed: 4}),
		"e2": workload.Duplicated(workload.DuplicationConfig{DistinctTuples: 5000, DuplicationFactor: 2, Seed: 5}),
	}
	pred := scalar.NewCompare(value.CmpLt, scalar.NewAttr(1), scalar.NewConst(value.NewInt(1<<15)))
	addParallel("E2_SelectionPushdownOverUnion/sigma-over-union",
		algebra.NewSelect(pred, algebra.NewUnion(e1r, e2r)), ssrc)
	addParallel("E2_SelectionPushdownOverUnion/union-of-sigmas",
		algebra.NewUnion(algebra.NewSelect(pred, e1r), algebra.NewSelect(pred, e2r)), ssrc)
	psrc := eval.MapSource{
		"e1": workload.Duplicated(workload.DuplicationConfig{DistinctTuples: 5000, DuplicationFactor: 2, Seed: 6}),
		"e2": workload.Duplicated(workload.DuplicationConfig{DistinctTuples: 5000, DuplicationFactor: 2, Seed: 7}),
	}
	addParallel("E2_ProjectionPushdownOverUnion/pi-over-union",
		algebra.NewProject([]int{0}, algebra.NewUnion(e1r, e2r)), psrc)
	addParallel("E2_ProjectionPushdownOverUnion/union-of-pis",
		algebra.NewUnion(algebra.NewProject([]int{0}, e1r), algebra.NewProject([]int{0}, e2r)), psrc)

	// addScheduler measures one shape three ways: serial, through the
	// 4-worker morsel scheduler, and through the legacy static-slice
	// scheduler (the pre-morsel gang, kept behind a planner knob exactly for
	// this comparison).
	addScheduler := func(name string, expr algebra.Expr, src eval.Source) {
		add(name, evalLoop(expr, src))
		add(fmt.Sprintf("%s/parallel-w%d", name, parallelWorkers),
			evalLoopEng(expr, src, eval.Engine{Workers: parallelWorkers, MorselSize: morselSize}))
		add(fmt.Sprintf("%s/parallel-w%d-static", name, parallelWorkers),
			evalLoopEng(expr, src, eval.Engine{Workers: parallelWorkers, StaticSlices: true}))
	}

	// E11 — skewed-key workloads: Zipf-distributed fact keys concentrate the
	// filter and probe work on a few hot keys.  The static scheduler pays one
	// full filtering pass per worker and leaves hot hash ranges in a single
	// worker's slice; the morsel scheduler visits every entry once across the
	// gang and rebalances hot ranges dynamically.
	skFact, skDim := workload.JoinPair(workload.JoinConfig{
		LeftTuples: 20000, RightTuples: 100, KeyRange: 100, Skew: 1.4, Seed: 11})
	sksrc := eval.MapSource{"fact": skFact, "dim": skDim}
	skPred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(1<<14)))
	addScheduler("E11_SkewedScanPipeline/sigma-pi-zipf",
		algebra.NewProject([]int{0}, algebra.NewSelect(skPred, algebra.NewRel("fact"))), sksrc)
	addScheduler("E11_SkewedJoin/zipf-probe",
		algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim")), sksrc)

	// addAggPhases measures one aggregate shape three ways: serial, through
	// the two-phase partial/merge exchange (the parallel default), and
	// through the legacy one-phase key-partitioned exchange (kept behind
	// Planner.OnePhaseAgg exactly for this comparison; global aggregates plan
	// serial under it, so their onephase entry measures the serial fallback).
	addAggPhases := func(name string, expr algebra.Expr, src eval.Source) {
		add(name, evalLoop(expr, src))
		add(fmt.Sprintf("%s/parallel-w%d", name, parallelWorkers),
			evalLoopEng(expr, src, eval.Engine{Workers: parallelWorkers, MorselSize: morselSize}))
		add(fmt.Sprintf("%s/parallel-w%d-onephase", name, parallelWorkers),
			evalLoopEng(expr, src, eval.Engine{Workers: parallelWorkers, OnePhaseAgg: true}))
	}

	// E12 — aggregate workloads for the decomposable two-phase subsystem:
	// grouped aggregation at low and high group cardinality, Zipf-skewed
	// group keys (hot groups whose streams serialise behind one worker under
	// the one-phase key partition), multi-aggregate grouping, and global
	// aggregates (parallel only via partial-state merging).
	loAgg, _ := workload.JoinPair(workload.JoinConfig{LeftTuples: 20000, RightTuples: 16, KeyRange: 16, Seed: 20})
	hiAgg, _ := workload.JoinPair(workload.JoinConfig{LeftTuples: 20000, RightTuples: 100, KeyRange: 10000, Seed: 21})
	zipfAgg, _ := workload.JoinPair(workload.JoinConfig{LeftTuples: 20000, RightTuples: 100, KeyRange: 100, Skew: 1.4, Seed: 22})
	// ANALYZE-grade statistics let the planner read the true grouping-key NDV:
	// the high-card workload now plans one-phase even at workers=4 (per-worker
	// partial tables would approach the input size), so its /parallel-w4 and
	// /parallel-w4-onephase entries measure the same shape by design.
	asrc := eval.AnalyzeSource(eval.MapSource{"lo": loAgg, "hi": hiAgg, "zipf": zipfAgg})
	addAggPhases("E12_GroupedAgg/low-card-sum",
		algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("lo")), asrc)
	addAggPhases("E12_GroupedAgg/high-card-sum",
		algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("hi")), asrc)
	addAggPhases("E12_GroupedAgg/zipf-sum",
		algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("zipf")), asrc)
	addAggPhases("E12_MultiAgg/zipf-cnt-sum-max",
		algebra.NewGroupByMulti([]int{0}, []algebra.AggSpec{
			{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggSum, Col: 1}, {Fn: algebra.AggMax, Col: 1},
		}, algebra.NewRel("zipf")), asrc)
	addAggPhases("E12_GlobalAgg/zipf-cnt-sum-min",
		algebra.NewGroupByMulti(nil, []algebra.AggSpec{
			{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggSum, Col: 1}, {Fn: algebra.AggMin, Col: 1},
		}, algebra.NewRel("zipf")), asrc)

	// E11 — morsel-parallel hash build: a join whose build side is large
	// enough (8000 rows ≥ the 4096-row default of BuildParallelThreshold)
	// that the parallel planner builds the shared table with a worker gang.
	// The `-serialbuild` variant disables the gang build (threshold pushed
	// past any estimate) so the build phase runs single-threaded under the
	// same parallel probe, isolating the build speedup.
	bFact, bDim := workload.JoinPair(workload.JoinConfig{
		LeftTuples: 20000, RightTuples: 8000, KeyRange: 8000, Seed: 12})
	bsrc := eval.MapSource{"bfact": bFact, "bdim": bDim}
	bigJoin := algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("bfact"), algebra.NewRel("bdim"))
	add("E11_ParallelBuildJoin/big-build", evalLoop(bigJoin, bsrc))
	add(fmt.Sprintf("E11_ParallelBuildJoin/big-build/parallel-w%d", parallelWorkers),
		evalLoopW(bigJoin, bsrc, parallelWorkers))
	add(fmt.Sprintf("E11_ParallelBuildJoin/big-build/parallel-w%d-serialbuild", parallelWorkers),
		evalLoopEng(bigJoin, bsrc, eval.Engine{Workers: parallelWorkers, MorselSize: morselSize,
			BuildParallelThreshold: 1e18}))
}

// vecSeries registers the 'vec' benchmark set: every E11/E12 shape measured
// serially through the batch-native engine on the columnar selection-vector
// loops (`/batch-cols`, Planner.SerialBatches) and on the legacy
// row-at-a-time batch loops (`/batch-rows`, Planner.RowBatches) — the
// within-file A/B for the vectorised operator kernels, and the stable serial
// series the ci-vec benchmark gate compares against BENCH_vec.json.
func vecSeries(add addFunc, evalLoopEng loopEngFunc) {
	addVec := func(name string, expr algebra.Expr, src eval.Source) {
		add(name+"/batch-cols", evalLoopEng(expr, src, eval.Engine{SerialBatches: true}))
		add(name+"/batch-rows", evalLoopEng(expr, src, eval.Engine{SerialBatches: true, RowBatches: true}))
	}

	skFact, skDim := workload.JoinPair(workload.JoinConfig{
		LeftTuples: 20000, RightTuples: 100, KeyRange: 100, Skew: 1.4, Seed: 11})
	sksrc := eval.MapSource{"fact": skFact, "dim": skDim}
	skPred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(1<<14)))
	addVec("E11_SkewedScanPipeline/sigma-pi-zipf",
		algebra.NewProject([]int{0}, algebra.NewSelect(skPred, algebra.NewRel("fact"))), sksrc)
	addVec("E11_SkewedJoin/zipf-probe",
		algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim")), sksrc)

	loAgg, _ := workload.JoinPair(workload.JoinConfig{LeftTuples: 20000, RightTuples: 16, KeyRange: 16, Seed: 20})
	zipfAgg, _ := workload.JoinPair(workload.JoinConfig{LeftTuples: 20000, RightTuples: 100, KeyRange: 100, Skew: 1.4, Seed: 22})
	asrc := eval.MapSource{"lo": loAgg, "zipf": zipfAgg}
	addVec("E12_GroupedAgg/low-card-sum",
		algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("lo")), asrc)
	// Aggregation over a projection: the projected batches arrive columnar
	// (shared column slices), so the aggregate's update loop reads vectors
	// directly — the row-batch baseline materialises one projected tuple per
	// input row instead.
	addVec("E12_GroupedAgg/low-card-sum-over-pi",
		algebra.NewGroupBy([]int{1}, algebra.AggSum, 0,
			algebra.NewProject([]int{1, 0}, algebra.NewRel("lo"))), asrc)
	addVec("E12_MultiAgg/zipf-cnt-sum-max",
		algebra.NewGroupByMulti([]int{0}, []algebra.AggSpec{
			{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggSum, Col: 1}, {Fn: algebra.AggMax, Col: 1},
		}, algebra.NewRel("zipf")), asrc)
	addVec("E12_GlobalAgg/zipf-cnt-sum-min",
		algebra.NewGroupByMulti(nil, []algebra.AggSpec{
			{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggSum, Col: 1}, {Fn: algebra.AggMin, Col: 1},
		}, algebra.NewRel("zipf")), asrc)
}

// joinSeries registers the 'joins' benchmark set: the E13 multi-join shapes —
// a star written dimensions-first, a chain written big-relation-first, and a
// triangle cycle — each measured serially through the cost-based join-order
// enumerator (`/reorder`) and through the written order (`/written`,
// Engine.NoJoinReorder).  Every source carries ANALYZE-grade statistics so the
// enumerator's cardinality estimates come from the sketches and histograms,
// and the engines run serial so the A/B is free of gang-scheduling noise and
// stable enough for the ci-join gate.
func joinSeries(add addFunc, evalLoopEng loopEngFunc) {
	addJoinOrder := func(name string, expr algebra.Expr, src eval.Source) {
		add(name+"/reorder", evalLoopEng(expr, src, eval.Engine{}))
		add(name+"/written", evalLoopEng(expr, src, eval.Engine{NoJoinReorder: true}))
	}

	// Star, written worst-first: the three 60-row dimensions are
	// cross-multiplied (216000 rows) before the 20000-row fact table joins.
	// The enumerator starts from the fact table instead and keeps every
	// intermediate at fact size.
	starFact, starDims := workload.Star(workload.StarConfig{Seed: 13})
	starSrc := eval.MapSource{"fact": starFact}
	for i, d := range starDims {
		starSrc[fmt.Sprintf("d%d", i+1)] = d
	}
	starWritten := algebra.NewJoin(
		scalar.NewAnd(scalar.Eq(0, 6), scalar.NewAnd(scalar.Eq(2, 7), scalar.Eq(4, 8))),
		algebra.NewProduct(algebra.NewProduct(algebra.NewRel("d1"), algebra.NewRel("d2")), algebra.NewRel("d3")),
		algebra.NewRel("fact"))
	addJoinOrder("E13_MultiJoin/star", starWritten, eval.AnalyzeSource(starSrc))

	// Chain, written big-first: the head joins its fan-out link first
	// (100000-row intermediate) before the selective tail links prune the
	// stream; the enumerator joins the tiny selective tail (8/200 rows) first
	// and touches the 20000-row head in a single final probe.
	chainRels := workload.Chain(workload.ChainConfig{Seed: 14})
	chainSrc := eval.MapSource{"head": chainRels[0]}
	for i, r := range chainRels[1:] {
		chainSrc[fmt.Sprintf("link%d", i+1)] = r
	}
	chainWritten := algebra.Expr(algebra.NewRel("head"))
	for k := 1; k < len(chainRels); k++ {
		chainWritten = algebra.NewJoin(scalar.Eq(2*k-1, 2*k), chainWritten, algebra.NewRel(fmt.Sprintf("link%d", k)))
	}
	addJoinOrder("E13_MultiJoin/chain", chainWritten, eval.AnalyzeSource(chainSrc))

	// Cycle: the triangle query over a random edge relation, written as a
	// three-edge chain with the closing predicate as a selection on top — the
	// shape the planner's flattener folds into the DP search as an extra join
	// conjunct.  The cycle is symmetric, so this mainly pins the enumerator's
	// overhead on a query it cannot improve.
	edges := workload.Graph(workload.GraphConfig{Nodes: 500, OutDegree: 4, Seed: 15})
	cycleSrc := eval.MapSource{"edge": edges}
	cycle := algebra.NewSelect(scalar.Eq(5, 0),
		algebra.NewJoin(scalar.Eq(3, 4),
			algebra.NewJoin(scalar.Eq(1, 2), algebra.NewRel("edge"), algebra.NewRel("edge")),
			algebra.NewRel("edge")))
	addJoinOrder("E13_MultiJoin/cycle-triangle", cycle, eval.AnalyzeSource(cycleSrc))
}

// summariseRatios prints the within-run comparisons to stderr: parallel
// variants against their serial counterparts (ratio < 1 means the gang won),
// the morsel scheduler against the static-slice baseline, the two-phase
// aggregate against one-phase, the gang join build against the serial build,
// and the columnar batch loops against the row-at-a-time baseline.
func summariseRatios(out benchFile) {
	byName := make(map[string]benchResult, len(out.Benchmarks))
	for _, b := range out.Benchmarks {
		byName[b.Name] = b
	}
	msuffix := fmt.Sprintf("/parallel-w%d", parallelWorkers)
	ssuffix := msuffix + "-static"
	osuffix := msuffix + "-onephase"
	bsuffix := msuffix + "-serialbuild"
	for _, b := range out.Benchmarks {
		if serialName, ok := strings.CutSuffix(b.Name, osuffix); ok {
			if twoPhase, ok := byName[serialName+msuffix]; ok && b.NsPerOp > 0 {
				fmt.Fprintf(os.Stderr, "twophase-vs-onephase w=%d %s: %.2fx (%.0f vs %.0f ns/op)\n",
					parallelWorkers, serialName, twoPhase.NsPerOp/b.NsPerOp, twoPhase.NsPerOp, b.NsPerOp)
			}
			continue
		}
		if serialName, ok := strings.CutSuffix(b.Name, bsuffix); ok {
			if parBuild, ok := byName[serialName+msuffix]; ok && b.NsPerOp > 0 {
				fmt.Fprintf(os.Stderr, "parbuild-vs-serialbuild w=%d %s: %.2fx (%.0f vs %.0f ns/op)\n",
					parallelWorkers, serialName, parBuild.NsPerOp/b.NsPerOp, parBuild.NsPerOp, b.NsPerOp)
			}
			continue
		}
		if serialName, ok := strings.CutSuffix(b.Name, ssuffix); ok {
			if base, ok := byName[serialName]; ok && base.NsPerOp > 0 {
				fmt.Fprintf(os.Stderr, "static w=%d %s: %.2fx serial (%.0f vs %.0f ns/op)\n",
					parallelWorkers, serialName, b.NsPerOp/base.NsPerOp, b.NsPerOp, base.NsPerOp)
			}
			if morsel, ok := byName[serialName+msuffix]; ok && b.NsPerOp > 0 {
				fmt.Fprintf(os.Stderr, "morsel-vs-static w=%d %s: %.2fx (%.0f vs %.0f ns/op)\n",
					parallelWorkers, serialName, morsel.NsPerOp/b.NsPerOp, morsel.NsPerOp, b.NsPerOp)
			}
			continue
		}
		if serialName, ok := strings.CutSuffix(b.Name, msuffix); ok {
			if base, ok := byName[serialName]; ok && base.NsPerOp > 0 {
				fmt.Fprintf(os.Stderr, "parallel w=%d %s: %.2fx serial (%.0f vs %.0f ns/op)\n",
					parallelWorkers, serialName, b.NsPerOp/base.NsPerOp, b.NsPerOp, base.NsPerOp)
			}
			continue
		}
		if rowsName, ok := strings.CutSuffix(b.Name, "/batch-rows"); ok {
			if cols, ok := byName[rowsName+"/batch-cols"]; ok && b.NsPerOp > 0 {
				fmt.Fprintf(os.Stderr, "cols-vs-rows %s: %.2fx (%.0f vs %.0f ns/op)\n",
					rowsName, cols.NsPerOp/b.NsPerOp, cols.NsPerOp, b.NsPerOp)
			}
			continue
		}
		if writtenName, ok := strings.CutSuffix(b.Name, "/written"); ok {
			if reorder, ok := byName[writtenName+"/reorder"]; ok && b.NsPerOp > 0 {
				fmt.Fprintf(os.Stderr, "reorder-vs-written %s: %.2fx (%.0f vs %.0f ns/op)\n",
					writtenName, reorder.NsPerOp/b.NsPerOp, reorder.NsPerOp, b.NsPerOp)
			}
		}
	}
}
