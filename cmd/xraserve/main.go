// Command xraserve is the network front-end of the engine: it serves the
// line/JSON transaction protocol over TCP and the same request shape over
// HTTP, with one MVCC snapshot-isolation session per connection.
//
// Quick start:
//
//	xraserve -addr :7744 -http :7745 -accounts 1024
//	curl -s localhost:7745/query -d 'select count(*) from account'
//	printf 'begin\nupdate account set balance = balance + 1 where id = 0;\ncommit\n' | nc localhost 7744
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listeners close, idle
// sessions are cut (their open transactions aborted), and in-flight
// statements drain within -drain before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mra"
	"mra/internal/server"
	"mra/internal/workload"
)

func main() {
	addr := flag.String("addr", ":7744", "TCP listen address for the line/JSON protocol")
	httpAddr := flag.String("http", "", "HTTP listen address for POST /query and GET /healthz (empty disables)")
	maxSessions := flag.Int("max-sessions", 64, "maximum concurrent TCP sessions; extra connections are refused")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "close sessions idle longer than this (aborting open transactions)")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "per-response write deadline so stalled clients cannot wedge sessions")
	stmtTimeout := flag.Duration("statement-timeout", 0, "initial per-statement deadline of new sessions (0 disables; sessions override with \\set timeout)")
	memLimit := flag.Int64("memlimit", 0, "initial per-query memory budget in bytes (0 disables; sessions override with \\set memlimit)")
	workers := flag.Int("workers", 0, "initial per-session parallelism degree (0/1 serial; sessions override with \\set workers)")
	xra := flag.Bool("xra", false, "new sessions speak XRA instead of SQL (sessions override with \\lang)")
	accounts := flag.Int("accounts", 0, "preload the banking demo schema with this many accounts")
	seed := flag.Int64("seed", 1, "random seed for -accounts data")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for draining in-flight statements")
	flag.Parse()

	db := mra.Open()
	if *accounts > 0 {
		db.MustCreateRelation("account",
			mra.Col("id", mra.Int), mra.Col("owner", mra.String), mra.Col("balance", mra.Float))
		if err := db.InsertValues("account", workload.AccountRows(*accounts, *seed)...); err != nil {
			fmt.Fprintln(os.Stderr, "seeding accounts:", err)
			os.Exit(1)
		}
		fmt.Printf("seeded account relation with %d rows\n", *accounts)
	}

	srv := server.New(db, server.Config{
		MaxSessions:      *maxSessions,
		IdleTimeout:      *idleTimeout,
		WriteTimeout:     *writeTimeout,
		StatementTimeout: *stmtTimeout,
		MemoryLimit:      *memLimit,
		Workers:          *workers,
		XRA:              *xra,
	})

	errc := make(chan error, 2)
	go func() {
		fmt.Printf("xraserve: TCP on %s\n", *addr)
		errc <- srv.ListenAndServe(*addr)
	}()
	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.HTTPHandler()}
		go func() {
			fmt.Printf("xraserve: HTTP on %s\n", *httpAddr)
			errc <- httpSrv.ListenAndServe()
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("xraserve: %s, draining (budget %s)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if httpSrv != nil {
			httpSrv.Shutdown(ctx)
		}
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "xraserve: drain cut short:", err)
		}
	case err := <-errc:
		if err != nil && err != server.ErrServerClosed && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "xraserve:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("xraserve: served %d statements across %d sessions (refused %d)\n",
		srv.Statements(), srv.ActiveSessions(), srv.Refused())
}
