// Command xrabench-serve benchmarks the serving layer end to end: it starts
// an in-process xraserve over a seeded banking database (or targets an
// already-running server via -addr), drives the weighted open-loop
// transaction mix from concurrent TCP clients, and reports throughput and
// commit-latency percentiles.
//
// With -json LABEL it writes machine-readable BENCH_<LABEL>.json; with
// -compare LABEL it additionally gates the fresh run against the committed
// baseline, failing when baseline_tps/fresh_tps exceeds -maxratio.  The gate
// is deliberately generous: single-threaded CI machines make serving-layer
// throughput noisy, so the gate catches collapses, not percentage creep.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"mra"
	"mra/internal/loadgen"
	"mra/internal/server"
	"mra/internal/workload"
)

// benchFile is the committed benchmark artifact: the run's environment and
// configuration alongside the measured report, so later comparisons know what
// they are comparing against.
type benchFile struct {
	Label      string         `json:"label"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	NumCPU     int            `json:"num_cpu"`
	Clients    int            `json:"clients"`
	DurationMS int64          `json:"duration_ms"`
	ThinkMS    int64          `json:"think_ms"`
	Accounts   int            `json:"accounts"`
	Hot        int            `json:"hot"`
	Seed       int64          `json:"seed"`
	Report     loadgen.Report `json:"report"`
}

func main() {
	addr := flag.String("addr", "", "target an already-running xraserve instead of an in-process server")
	clients := flag.Int("clients", 8, "concurrent client sessions")
	duration := flag.Duration("duration", 2*time.Second, "measured run length")
	think := flag.Duration("think", 0, "mean per-client think time between transactions (0 = saturation)")
	accounts := flag.Int("accounts", 1024, "account rows seeded for the in-process server")
	hot := flag.Int("hot", 8, "size of the hotspot account set")
	analytics := flag.Int("analytics", 50, "weight of the read-only analytics kind")
	transfer := flag.Int("transfer", 35, "weight of the uniform transfer kind")
	hotspot := flag.Int("hotspot", 15, "weight of the conflict-heavy hotspot kind")
	seed := flag.Int64("seed", 1, "random seed for data and client streams")
	retries := flag.Int("retries", 10, "conflict retries per transaction")
	workers := flag.Int("workers", 0, "per-session parallelism degree of the in-process server")
	replay := flag.String("replay", "", "replay the transactions of this script file instead of the synthetic bank mix")
	jsonLabel := flag.String("json", "", "write machine-readable BENCH_<label>.json")
	compare := flag.String("compare", "", "compare against committed BENCH_<label>.json and exit non-zero on regression")
	maxRatio := flag.Float64("maxratio", 3.0, "with -compare: maximum allowed baseline_tps/fresh_tps ratio")
	flag.Parse()

	mix := loadgen.BankMix(*accounts, *hot, *analytics, *transfer, *hotspot)
	if *replay != "" {
		text, err := os.ReadFile(*replay)
		if err != nil {
			fatal(err)
		}
		txs, err := loadgen.ParseReplay(string(text))
		if err != nil {
			fatal(err)
		}
		mix = loadgen.ReplayMix(*replay, txs)
	}

	target := *addr
	if target == "" {
		srv, l, err := startInProcess(*accounts, *seed, *workers)
		if err != nil {
			fatal(err)
		}
		target = l.Addr().String()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
	}

	report, err := loadgen.RunOpenLoop(loadgen.OpenLoopConfig{
		Addr:       target,
		Clients:    *clients,
		Think:      *think,
		Duration:   *duration,
		Seed:       *seed,
		MaxRetries: *retries,
		Mix:        mix,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("mix=%s clients=%d elapsed=%dms committed=%d conflicts=%d errors=%d\n",
		report.Mix, report.Clients, report.ElapsedMS, report.Committed, report.Conflicts, report.Errors)
	fmt.Printf("throughput=%.1f tx/s  p50=%dus p95=%dus p99=%dus\n",
		report.TPS, report.P50US, report.P95US, report.P99US)
	for name, ks := range report.Kinds {
		fmt.Printf("  %-10s attempts=%d commits=%d conflicts=%d errors=%d conflicts/commit=%.2f\n",
			name, ks.Attempts, ks.Commits, ks.Conflicts, ks.Errors, ks.ConflictsPerCommit)
	}
	if report.Committed == 0 {
		fatal(fmt.Errorf("no transactions committed"))
	}
	if report.Errors > 0 {
		fatal(fmt.Errorf("%d transactions failed with non-conflict errors", report.Errors))
	}

	if *jsonLabel != "" {
		out := benchFile{
			Label:      *jsonLabel,
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			Clients:    *clients,
			DurationMS: duration.Milliseconds(),
			ThinkMS:    think.Milliseconds(),
			Accounts:   *accounts,
			Hot:        *hot,
			Seed:       *seed,
			Report:     report,
		}
		path := "BENCH_" + *jsonLabel + ".json"
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
	if *compare != "" {
		if err := compareBaseline(report, *compare, *maxRatio); err != nil {
			fatal(err)
		}
	}
}

// startInProcess seeds a banking database and serves it on an ephemeral
// loopback port.
func startInProcess(accounts int, seed int64, workers int) (*server.Server, net.Listener, error) {
	db := mra.Open()
	db.MustCreateRelation("account",
		mra.Col("id", mra.Int), mra.Col("owner", mra.String), mra.Col("balance", mra.Float))
	if err := db.InsertValues("account", workload.AccountRows(accounts, seed)...); err != nil {
		return nil, nil, err
	}
	srv := server.New(db, server.Config{MaxSessions: 256, Workers: workers})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go srv.Serve(l)
	return srv, l, nil
}

// compareBaseline gates the fresh run against a committed baseline file on
// throughput: it fails when baseline_tps/fresh_tps exceeds maxRatio.
func compareBaseline(fresh loadgen.Report, label string, maxRatio float64) error {
	data, err := os.ReadFile("BENCH_" + label + ".json")
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("decoding baseline: %w", err)
	}
	if base.Report.TPS <= 0 || fresh.TPS <= 0 {
		return fmt.Errorf("cannot compare: baseline tps=%.1f, fresh tps=%.1f", base.Report.TPS, fresh.TPS)
	}
	ratio := base.Report.TPS / fresh.TPS
	fmt.Printf("baseline=%.1f tx/s fresh=%.1f tx/s ratio=%.2f (max %.2f)\n",
		base.Report.TPS, fresh.TPS, ratio, maxRatio)
	if ratio > maxRatio {
		return fmt.Errorf("serving throughput regressed: baseline/fresh ratio %.2f exceeds %.2f", ratio, maxRatio)
	}
	return nil
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xrabench-serve:", err)
	os.Exit(1)
}
