// Command xra is an interactive shell and script runner for the multi-set
// extended relational algebra.  It speaks the XRA language (the PRISMA/DB-
// style textual algebra) and, with -sql, the SQL subset of the front-end.
//
// Usage:
//
//	xra                     # interactive XRA shell on an empty database
//	xra -init schema.xra    # run an initialisation script first
//	xra script.xra ...      # run scripts and exit
//	xra -sql                # interactive SQL shell
//
// Inside the shell, statements end with ';'.  `begin ... end;` groups
// statements into one transaction.  Ctrl-C cancels the running statement
// (the transaction aborts, the database stays unchanged); pressing it at the
// prompt exits.  The meta-commands are:
//
//	\d                  list relations
//	\d name             show a relation's schema and cardinality
//	\explain <expr>     show the original and optimised plan of an XRA expression
//	\stats name         show a relation's optimizer statistics (run analyze(name) first)
//	\set workers N      set the parallel worker count (1 = serial, 0 = auto)
//	\set timeout <dur>  set a per-statement deadline (e.g. 500ms, 2s; 0 = off)
//	\set memlimit <n>   set a per-query memory budget in bytes (0 = off)
//	\time on|off        toggle per-statement timing
//	\q                  quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"mra"
)

func main() {
	sqlMode := flag.Bool("sql", false, "interpret input as SQL instead of XRA")
	initScript := flag.String("init", "", "XRA script to run before the shell starts")
	flag.Parse()

	db := mra.Open()
	if *initScript != "" {
		data, err := os.ReadFile(*initScript)
		if err != nil {
			fatal(err)
		}
		if _, err := db.ExecXRA(string(data)); err != nil {
			fatal(err)
		}
	}

	// Script mode: run every file argument and exit.
	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			if err := runScript(context.Background(), db, string(data), *sqlMode, os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}

	repl(db, *sqlMode, os.Stdin, os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xra:", err)
	os.Exit(1)
}

// runScript executes a whole script in the selected language under the given
// lifecycle context, printing query outputs as tables.
func runScript(ctx context.Context, db *mra.DB, script string, sqlMode bool, out io.Writer) error {
	var results []*mra.Result
	var err error
	if sqlMode {
		results, err = db.ExecSQLContext(ctx, script)
	} else {
		results, err = db.ExecXRAContext(ctx, script)
	}
	for _, r := range results {
		fmt.Fprintln(out, r.Table())
	}
	return err
}

// statementCtx builds the lifecycle context of one statement execution: the
// per-statement deadline (when set) stacked on Ctrl-C cancellation.  The
// returned stop must be called when the statement finishes, so a later Ctrl-C
// at the prompt is not swallowed by a dead context.
func statementCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	if timeout <= 0 {
		return ctx, stop
	}
	dctx, cancel := context.WithTimeout(ctx, timeout)
	return dctx, func() { cancel(); stop() }
}

// repl runs the interactive shell.
func repl(db *mra.DB, sqlMode bool, in io.Reader, out io.Writer) {
	lang := "xra"
	if sqlMode {
		lang = "sql"
	}
	fmt.Fprintf(out, "multi-set extended relational algebra shell (%s mode); \\q quits\n", lang)
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	timing := false
	var timeout time.Duration
	prompt := func() { fmt.Fprintf(out, "%s> ", lang) }
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "\\") && buf.Len() == 0 {
			if handleMeta(db, trimmed, &timing, &timeout, out) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") || unbalancedTransaction(buf.String()) {
			fmt.Fprint(out, "... ")
			continue
		}
		start := time.Now()
		ctx, stop := statementCtx(timeout)
		err := runScript(ctx, db, buf.String(), sqlMode, out)
		stop()
		if err != nil {
			fmt.Fprintln(out, "error:", err)
		}
		if timing {
			fmt.Fprintf(out, "time: %v\n", time.Since(start))
		}
		buf.Reset()
		prompt()
	}
}

// unbalancedTransaction reports whether the buffered input opens a begin/end
// block that has not been closed yet.
func unbalancedTransaction(src string) bool {
	lower := strings.ToLower(src)
	return strings.Count(lower, "begin") > strings.Count(lower, "end")
}

// handleMeta processes a backslash meta-command; it returns true when the
// shell should exit.
func handleMeta(db *mra.DB, cmd string, timing *bool, timeout *time.Duration, out io.Writer) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return true
	case "\\d":
		if len(fields) == 1 {
			for _, name := range db.Relations() {
				fmt.Fprintf(out, "%s (%d tuples)\n", name, db.Cardinality(name))
			}
			return false
		}
		name := fields[1]
		rel, ok := db.Catalog().RelationSchema(name)
		if !ok {
			fmt.Fprintf(out, "no such relation %q\n", name)
			return false
		}
		fmt.Fprintf(out, "%s (%d tuples)\n", rel, db.Cardinality(name))
	case "\\set":
		if len(fields) != 3 {
			fmt.Fprintln(out, "usage: \\set workers N | \\set timeout <dur> | \\set memlimit <bytes>")
			return false
		}
		switch fields[1] {
		case "workers":
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				fmt.Fprintf(out, "workers must be an integer, got %q\n", fields[2])
				return false
			}
			db.SetWorkers(n)
			fmt.Fprintf(out, "workers: %d\n", db.Workers())
		case "timeout":
			d, err := time.ParseDuration(fields[2])
			if err != nil || d < 0 {
				fmt.Fprintf(out, "timeout must be a duration like 500ms or 2s (0 disables), got %q\n", fields[2])
				return false
			}
			*timeout = d
			if d == 0 {
				fmt.Fprintln(out, "timeout: off")
			} else {
				fmt.Fprintf(out, "timeout: %v\n", d)
			}
		case "memlimit":
			n, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || n < 0 {
				fmt.Fprintf(out, "memlimit must be a byte count (0 disables), got %q\n", fields[2])
				return false
			}
			db.SetMemoryLimit(n)
			if n == 0 {
				fmt.Fprintln(out, "memlimit: off")
			} else {
				fmt.Fprintf(out, "memlimit: %d bytes\n", n)
			}
		default:
			fmt.Fprintln(out, "usage: \\set workers N | \\set timeout <dur> | \\set memlimit <bytes>")
		}
	case "\\time":
		if len(fields) > 1 && fields[1] == "on" {
			*timing = true
		} else if len(fields) > 1 && fields[1] == "off" {
			*timing = false
		} else {
			*timing = !*timing
		}
		fmt.Fprintf(out, "timing: %v\n", *timing)
	case "\\explain":
		expr := strings.TrimSpace(strings.TrimPrefix(cmd, "\\explain"))
		ex, err := db.Explain(expr)
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return false
		}
		fmt.Fprintln(out, "original :", ex.Logical)
		fmt.Fprintln(out, "optimised:", ex.Optimised)
		fmt.Fprintln(out, "rules    :", strings.Join(ex.Rules, ", "))
		if ex.Workers > 1 {
			fmt.Fprintln(out, "workers  :", ex.Workers)
		}
		fmt.Fprintln(out, "physical :")
		for _, line := range strings.Split(ex.Physical, "\n") {
			fmt.Fprintln(out, "  "+line)
		}
	case "\\stats":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: \\stats <relation>")
			return false
		}
		name := fields[1]
		st, ok := db.RelationStats(name)
		if !ok {
			if _, exists := db.Catalog().RelationSchema(name); !exists {
				fmt.Fprintf(out, "no such relation %q\n", name)
			} else {
				fmt.Fprintf(out, "no statistics for %q; run analyze(%s); first\n", name, name)
			}
			return false
		}
		fmt.Fprintf(out, "%s: %d rows, ~%d distinct tuples (version %d)\n",
			st.Relation, st.Rows, st.DistinctTuples, st.Version)
		for i, c := range st.Columns {
			label := c.Name
			if label == "" {
				label = fmt.Sprintf("%%%d", i+1)
			}
			fmt.Fprintf(out, "  %s: ndv~%d nulls=%.1f%%", label, c.NDV, 100*c.NullFraction)
			if c.Min != "" || c.Max != "" {
				fmt.Fprintf(out, " range=[%s .. %s]", c.Min, c.Max)
			}
			if c.HistogramBuckets > 0 {
				fmt.Fprintf(out, " histogram=%d buckets", c.HistogramBuckets)
			}
			fmt.Fprintln(out)
		}
	default:
		fmt.Fprintf(out, "unknown meta-command %s\n", fields[0])
	}
	return false
}
