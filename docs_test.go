package mra

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestExportedDocComments is the documentation gate for the engine packages:
// every exported identifier of the execution-layer packages — types,
// functions, methods on exported types, constants, variables, and exported
// struct fields — must carry a doc comment.  ARCHITECTURE.md points readers
// at these packages for the execution and batch contracts, so their godoc
// must stay complete.
func TestExportedDocComments(t *testing.T) {
	for _, dir := range []string{
		"internal/exec", "internal/plan", "internal/eval",
		"internal/multiset", "internal/tuple", "internal/value",
		"internal/stats",
	} {
		var missing []string
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					missing = append(missing, undocumented(fset, decl)...)
				}
			}
		}
		if len(missing) > 0 {
			t.Errorf("%s: exported identifiers without doc comments:\n  %s",
				dir, strings.Join(missing, "\n  "))
		}
	}
}

// undocumented returns the exported identifiers a declaration fails to
// document, rendered with their source positions.
func undocumented(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	report := func(name *ast.Ident) {
		out = append(out, fmt.Sprintf("%s (%s)", name.Name, fset.Position(name.Pos())))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return nil
		}
		if d.Doc == nil {
			report(d.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				if d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(s.Name)
				}
				if st, ok := s.Type.(*ast.StructType); ok {
					out = append(out, undocumentedFields(fset, st)...)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					if d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(name)
					}
				}
			}
		}
	}
	return out
}

// undocumentedFields returns the exported, uncommented fields of an exported
// struct type.
func undocumentedFields(fset *token.FileSet, st *ast.StructType) []string {
	var out []string
	for _, f := range st.Fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				out = append(out, fmt.Sprintf("%s (%s)", name.Name, fset.Position(name.Pos())))
			}
		}
	}
	return out
}

// exportedReceiver reports whether a function declaration is a plain function
// or a method whose receiver type is itself exported; methods on unexported
// types are internal and outside the gate.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
