package mra

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestDumpAndRestore(t *testing.T) {
	db := openBeerDB(t)
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "relation beer(") {
		t.Errorf("dump missing the beer relation:\n%s", buf.String())
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Relations(), db.Relations(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("restored relations = %v, want %v", got, want)
	}
	for _, name := range db.Relations() {
		if restored.Cardinality(name) != db.Cardinality(name) {
			t.Errorf("relation %q cardinality %d, want %d", name, restored.Cardinality(name), db.Cardinality(name))
		}
	}
	// The restored database answers the paper's Example 3.1 identically.
	const q = "project[%1](select[%6 = 'netherlands'](join[%2 = %4](beer, brewery)))"
	a, err := db.QueryXRA(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.QueryXRA(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("restored database answers differently:\n%s\n%s", a, b)
	}
	// Restoring garbage fails.
	if _, err := Restore(strings.NewReader("not a dump")); err == nil {
		t.Error("garbage must not restore")
	}
}

func TestSaveAndLoadFile(t *testing.T) {
	db := openBeerDB(t)
	path := filepath.Join(t.TempDir(), "beer.mra")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cardinality("beer") != db.Cardinality("beer") {
		t.Error("loaded database differs from the saved one")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.mra")); err == nil {
		t.Error("loading a missing file must fail")
	}
	if err := db.SaveFile(filepath.Join(t.TempDir(), "nosuchdir", "x.mra")); err == nil {
		t.Error("saving to a missing directory must fail")
	}
}
