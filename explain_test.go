package mra

import (
	"strings"
	"testing"
)

// explainBeerDB builds the paper's beer/brewery running example with the
// exact data of the eval-package tests, so the plan renderings (which include
// cardinality estimates fed from the real table sizes) are deterministic.
func explainBeerDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustCreateRelation("beer",
		Col("name", String), Col("brewery", String), Col("alcperc", Float))
	db.MustCreateRelation("brewery",
		Col("name", String), Col("city", String), Col("country", String))
	db.MustExecXRA(`insert(beer, [
		('pils', 'guineken', 5.0), ('pils', 'brolsch', 5.2), ('bock', 'guineken', 6.5),
		('stout', 'guinness', 4.2), ('tripel', 'westmalle', 9.5)])`)
	db.MustExecXRA(`insert(brewery, [
		('guineken', 'amsterdam', 'netherlands'), ('brolsch', 'enschede', 'netherlands'),
		('guinness', 'dublin', 'ireland'), ('westmalle', 'malle', 'belgium')])`)
	return db
}

// TestExplainGoldenExample32 pins the three plan renderings — logical,
// optimised, physical — of the paper's Example 3.2 aggregation query
// Γ_{(country),AVG,alcperc}(beer ⋈ brewery).
func TestExplainGoldenExample32(t *testing.T) {
	db := explainBeerDB(t)
	ex, err := db.Explain("groupby[(%6),AVG,%3](join[%2 = %4](beer, brewery))")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ex.Logical, "groupby[(%6),AVG,%3](join[%2 = %4](beer, brewery))"; got != want {
		t.Errorf("logical plan:\n got %s\nwant %s", got, want)
	}
	// The rewriter pushes the projection onto (country, alcperc) below the
	// group-by — the paper's Example 3.2 optimisation.
	if got, want := ex.Optimised, "groupby[(%1),AVG,%2](project[%6,%3](join[%2 = %4](beer, brewery)))"; got != want {
		t.Errorf("optimised plan:\n got %s\nwant %s", got, want)
	}
	if got, want := strings.Join(ex.Rules, ","), "push-projection-into-groupby"; got != want {
		t.Errorf("rules = %q, want %q", got, want)
	}
	wantPhysical := strings.Join([]string{
		"HashAggregate [(%1) AVG(%2)]  (~1 rows)",
		"└─ Project [%6, %3]  (~2 rows)",
		"   └─ HashJoin [%2 = %4] build=right  (~2 rows)",
		"      ├─ Scan beer  (5 rows)",
		"      └─ Scan brewery  (4 rows)",
	}, "\n")
	if ex.Physical != wantPhysical {
		t.Errorf("physical plan:\n%s\nwant:\n%s", ex.Physical, wantPhysical)
	}
}

// TestExplainGoldenExample31 pins the renderings of the Example 3.1
// Dutch-beers query, whose selection is pushed below the join and executes as
// a streaming filter under the hash join's build side.
func TestExplainGoldenExample31(t *testing.T) {
	db := explainBeerDB(t)
	ex, err := db.Explain("project[%1](select[%6 = 'netherlands'](join[%2 = %4](beer, brewery)))")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ex.Optimised, "project[%1](join[%2 = %4](beer, select[%3 = 'netherlands'](brewery)))"; got != want {
		t.Errorf("optimised plan:\n got %s\nwant %s", got, want)
	}
	wantPhysical := strings.Join([]string{
		"Project [%1]  (~1 rows)",
		"└─ HashJoin [%2 = %4] build=right  (~1 rows)",
		"   ├─ Scan beer  (5 rows)",
		"   └─ Filter [%3 = 'netherlands']  (~1 rows)",
		"      └─ Scan brewery  (4 rows)",
	}, "\n")
	if ex.Physical != wantPhysical {
		t.Errorf("physical plan:\n%s\nwant:\n%s", ex.Physical, wantPhysical)
	}
	// The rendered plans execute to the expected Example 3.1 result.
	res, err := db.QueryXRA("project[%1](select[%6 = 'netherlands'](join[%2 = %4](beer, brewery)))")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 || res.Multiplicity("pils") != 2 {
		t.Errorf("Example 3.1 result = %s", res)
	}
}

// TestExplainHonoursOptimizeFlag checks the physical plan follows the
// expression that would actually run.
func TestExplainHonoursOptimizeFlag(t *testing.T) {
	db := explainBeerDB(t)
	db.Optimize = false
	ex, err := db.Explain("select[%2 = %4](product(beer, brewery))")
	if err != nil {
		t.Fatal(err)
	}
	// Even unoptimised, the planner folds σ over × into a hash join
	// (a physical decision, not a rewrite).
	if !strings.Contains(ex.Physical, "HashJoin") {
		t.Errorf("physical plan should hash-join σ(×):\n%s", ex.Physical)
	}
}
