package mra

import (
	"strings"
	"testing"
)

// explainBeerDB builds the paper's beer/brewery running example with the
// exact data of the eval-package tests, so the plan renderings (which include
// cardinality estimates fed from the real table sizes) are deterministic.
func explainBeerDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	db.MustCreateRelation("beer",
		Col("name", String), Col("brewery", String), Col("alcperc", Float))
	db.MustCreateRelation("brewery",
		Col("name", String), Col("city", String), Col("country", String))
	db.MustExecXRA(`insert(beer, [
		('pils', 'guineken', 5.0), ('pils', 'brolsch', 5.2), ('bock', 'guineken', 6.5),
		('stout', 'guinness', 4.2), ('tripel', 'westmalle', 9.5)])`)
	db.MustExecXRA(`insert(brewery, [
		('guineken', 'amsterdam', 'netherlands'), ('brolsch', 'enschede', 'netherlands'),
		('guinness', 'dublin', 'ireland'), ('westmalle', 'malle', 'belgium')])`)
	return db
}

// TestExplainGoldenExample32 pins the three plan renderings — logical,
// optimised, physical — of the paper's Example 3.2 aggregation query
// Γ_{(country),AVG,alcperc}(beer ⋈ brewery).
func TestExplainGoldenExample32(t *testing.T) {
	db := explainBeerDB(t)
	ex, err := db.Explain("groupby[(%6),AVG,%3](join[%2 = %4](beer, brewery))")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ex.Logical, "groupby[(%6),AVG,%3](join[%2 = %4](beer, brewery))"; got != want {
		t.Errorf("logical plan:\n got %s\nwant %s", got, want)
	}
	// The rewriter pushes the projection onto (country, alcperc) below the
	// group-by — the paper's Example 3.2 optimisation.
	if got, want := ex.Optimised, "groupby[(%1),AVG,%2](project[%6,%3](join[%2 = %4](beer, brewery)))"; got != want {
		t.Errorf("optimised plan:\n got %s\nwant %s", got, want)
	}
	if got, want := strings.Join(ex.Rules, ","), "push-projection-into-groupby"; got != want {
		t.Errorf("rules = %q, want %q", got, want)
	}
	wantPhysical := strings.Join([]string{
		"HashAggregate [(%1) AVG(%2)]  (est~1 rows, act=3)",
		"└─ Project [%6, %3]  (est~2 rows, act=5)",
		"   └─ HashJoin [%2 = %4] build=right  (est~2 rows, act=5)",
		"      ├─ Scan beer  (est=5 rows)",
		"      └─ Scan brewery  (est=4 rows)",
	}, "\n")
	if ex.Physical != wantPhysical {
		t.Errorf("physical plan:\n%s\nwant:\n%s", ex.Physical, wantPhysical)
	}
}

// TestExplainGoldenExample31 pins the renderings of the Example 3.1
// Dutch-beers query, whose selection is pushed below the join and executes as
// a streaming filter under the hash join's build side.
func TestExplainGoldenExample31(t *testing.T) {
	db := explainBeerDB(t)
	ex, err := db.Explain("project[%1](select[%6 = 'netherlands'](join[%2 = %4](beer, brewery)))")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ex.Optimised, "project[%1](join[%2 = %4](beer, select[%3 = 'netherlands'](brewery)))"; got != want {
		t.Errorf("optimised plan:\n got %s\nwant %s", got, want)
	}
	wantPhysical := strings.Join([]string{
		"Project [%1]  (est~1 rows, act=3)",
		"└─ HashJoin [%2 = %4] build=right  (est~1 rows, act=3)",
		"   ├─ Scan beer  (est=5 rows)",
		"   └─ Filter [%3 = 'netherlands']  (est~1 rows, act=2)",
		"      └─ Scan brewery  (est=4 rows)",
	}, "\n")
	if ex.Physical != wantPhysical {
		t.Errorf("physical plan:\n%s\nwant:\n%s", ex.Physical, wantPhysical)
	}
	// The rendered plans execute to the expected Example 3.1 result.
	res, err := db.QueryXRA("project[%1](select[%6 = 'netherlands'](join[%2 = %4](beer, brewery)))")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 || res.Multiplicity("pils") != 2 {
		t.Errorf("Example 3.1 result = %s", res)
	}
}

// TestExplainHonoursOptimizeFlag checks the physical plan follows the
// expression that would actually run.
func TestExplainHonoursOptimizeFlag(t *testing.T) {
	db := explainBeerDB(t)
	db.Optimize = false
	ex, err := db.Explain("select[%2 = %4](product(beer, brewery))")
	if err != nil {
		t.Fatal(err)
	}
	// Even unoptimised, the planner folds σ over × into a hash join
	// (a physical decision, not a rewrite).
	if !strings.Contains(ex.Physical, "HashJoin") {
		t.Errorf("physical plan should hash-join σ(×):\n%s", ex.Physical)
	}
}

// TestExplainParallelExchange pins the explain rendering of a parallel plan:
// with workers configured and inputs above the planner's threshold, the
// physical tree shows the Merge gang boundary and the per-operand Partition
// exchanges on the join columns, and the query still computes the serial
// result.
func TestExplainParallelExchange(t *testing.T) {
	db := Open()
	db.MustCreateRelation("fact", Col("key", Int), Col("payload", Int))
	db.MustCreateRelation("dim", Col("key", Int), Col("attr", Int))
	factRows := make([][]any, 0, 1500)
	for i := 0; i < 1500; i++ {
		factRows = append(factRows, []any{i % 100, i})
	}
	dimRows := make([][]any, 0, 100)
	for i := 0; i < 100; i++ {
		dimRows = append(dimRows, []any{i, i * 10})
	}
	if err := db.InsertValues("fact", factRows...); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertValues("dim", dimRows...); err != nil {
		t.Fatal(err)
	}

	serial, err := db.QueryXRA("join[%1 = %3](fact, dim)")
	if err != nil {
		t.Fatal(err)
	}

	db.SetWorkers(4)
	if db.Workers() != 4 {
		t.Fatalf("Workers() = %d", db.Workers())
	}
	ex, err := db.Explain("join[%1 = %3](fact, dim)")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Workers != 4 {
		t.Errorf("Explain.Workers = %d", ex.Workers)
	}
	wantPhysical := strings.Join([]string{
		"Merge [workers=4]  (est~15000 rows, act=1500)",
		"└─ HashJoin [%1 = %3] build=right shared  (est~15000 rows, act=1500)",
		"   ├─ Partition [morsel size=64]  (est=1500 rows, act=1500)",
		"   │  └─ Scan fact  (est=1500 rows)",
		"   └─ Scan dim  (est=100 rows)",
	}, "\n")
	if ex.Physical != wantPhysical {
		t.Errorf("parallel physical plan:\n%s\nwant:\n%s", ex.Physical, wantPhysical)
	}

	// The parallel execution produces the serial multi-set.
	parallel, err := db.QueryXRA("join[%1 = %3](fact, dim)")
	if err != nil {
		t.Fatal(err)
	}
	if parallel.Len() != serial.Len() || parallel.DistinctLen() != serial.DistinctLen() {
		t.Errorf("parallel result %d/%d rows, serial %d/%d",
			parallel.Len(), parallel.DistinctLen(), serial.Len(), serial.DistinctLen())
	}

	// Small inputs stay serial: no exchange operators below the threshold.
	exSmall, err := db.Explain("select[%2 < 50](dim)")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(exSmall.Physical, "Merge") {
		t.Errorf("a 100-tuple pipeline must stay serial:\n%s", exSmall.Physical)
	}
}

// TestExplainTwoPhaseAggregate pins the explain rendering of the two-phase
// parallel aggregate: a GroupMerge gang boundary above a partial
// HashAggregate whose input is morsel-partitioned.  Workers pre-aggregate
// their morsels into partial states; the GroupMerge merges the per-worker
// partial groups — which is also what makes the global (ungrouped) aggregate
// parallel at all.
func TestExplainTwoPhaseAggregate(t *testing.T) {
	db := Open()
	db.MustCreateRelation("fact", Col("key", Int), Col("payload", Int))
	factRows := make([][]any, 0, 1500)
	for i := 0; i < 1500; i++ {
		factRows = append(factRows, []any{i % 100, i})
	}
	if err := db.InsertValues("fact", factRows...); err != nil {
		t.Fatal(err)
	}
	serialGrouped, err := db.QueryXRA("groupby[(%1),SUM,%2](fact)")
	if err != nil {
		t.Fatal(err)
	}

	db.SetWorkers(4)
	ex, err := db.Explain("groupby[(%1),SUM,%2](fact)")
	if err != nil {
		t.Fatal(err)
	}
	// The partial aggregate shows act=0: it hands per-worker group tables to
	// the GroupMerge rather than emitting tuples, so the merge reports the
	// actual group count and the partial reports none.
	wantGrouped := strings.Join([]string{
		"GroupMerge [workers=4]  (est~300 rows, act=100)",
		"└─ HashAggregate [(%1) SUM(%2)] partial  (est~300 rows, act=0)",
		"   └─ Partition [morsel size=64]  (est=1500 rows, act=1500)",
		"      └─ Scan fact  (est=1500 rows)",
	}, "\n")
	if ex.Physical != wantGrouped {
		t.Errorf("two-phase grouped plan:\n%s\nwant:\n%s", ex.Physical, wantGrouped)
	}

	exGlobal, err := db.Explain("groupby[(),CNT,%1,MAX,%2](fact)")
	if err != nil {
		t.Fatal(err)
	}
	wantGlobal := strings.Join([]string{
		"GroupMerge [workers=4]  (est~1 rows, act=1)",
		"└─ HashAggregate [() CNT(%1), MAX(%2)] partial  (est~1 rows, act=0)",
		"   └─ Partition [morsel size=64]  (est=1500 rows, act=1500)",
		"      └─ Scan fact  (est=1500 rows)",
	}, "\n")
	if exGlobal.Physical != wantGlobal {
		t.Errorf("two-phase global plan:\n%s\nwant:\n%s", exGlobal.Physical, wantGlobal)
	}

	// The rendered plan executes to the serial result.
	parallelGrouped, err := db.QueryXRA("groupby[(%1),SUM,%2](fact)")
	if err != nil {
		t.Fatal(err)
	}
	if parallelGrouped.Len() != serialGrouped.Len() || parallelGrouped.DistinctLen() != 100 {
		t.Errorf("two-phase grouped result %d/%d rows, serial %d/%d",
			parallelGrouped.Len(), parallelGrouped.DistinctLen(), serialGrouped.Len(), serialGrouped.DistinctLen())
	}
	global, err := db.QuerySQL("SELECT COUNT(*), MAX(payload) FROM fact")
	if err != nil {
		t.Fatal(err)
	}
	if rows := global.Rows(); len(rows) != 1 || rows[0][0] != int64(1500) || rows[0][1] != int64(1499) {
		t.Errorf("parallel global aggregate rows = %v", global.Rows())
	}
}
