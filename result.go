package mra

import (
	"fmt"
	"math"
	"strings"

	"mra/internal/multiset"
	"mra/internal/plan"
	"mra/internal/sqlfront"
	"mra/internal/tuple"
	"mra/internal/value"
)

// Result is a materialised query result: a multi-set of tuples together with
// its schema.  Relations are unordered; when a SQL query carries ORDER BY /
// LIMIT clauses the result additionally records an explicit presentation
// order, honoured by Rows and Table.
type Result struct {
	rel *multiset.Relation
	// ordered, when non-nil, lists every occurrence in presentation order
	// (after ORDER BY / OFFSET / LIMIT).
	ordered []tuple.Tuple
}

// Columns returns the result's column names; unnamed computed columns are
// rendered as col1, col2, ...
func (r *Result) Columns() []string {
	s := r.rel.Schema()
	out := make([]string, s.Arity())
	for i := 0; i < s.Arity(); i++ {
		name := s.Attribute(i).Name
		if name == "" {
			name = fmt.Sprintf("col%d", i+1)
		}
		out[i] = name
	}
	return out
}

// Len returns the number of rows, counting duplicates.  Cardinalities beyond
// the int range saturate at math.MaxInt rather than wrapping through a
// truncating conversion.
func (r *Result) Len() int {
	c := r.rel.Cardinality()
	if c > math.MaxInt {
		return math.MaxInt
	}
	return int(c)
}

// DistinctLen returns the number of distinct rows.
func (r *Result) DistinctLen() int { return r.rel.DistinctCount() }

// Rows returns all rows (duplicates expanded) in presentation order: the
// query's ORDER BY order when one was given, canonical order otherwise.
// Values are native Go values: int64, float64, string, bool or nil.
func (r *Result) Rows() [][]any {
	tuples := r.ordered
	if tuples == nil {
		tuples = r.rel.Tuples()
	}
	out := make([][]any, 0, len(tuples))
	for _, t := range tuples {
		out = append(out, rowOf(t))
	}
	return out
}

// withModifiers applies a SQL query's ORDER BY / OFFSET / LIMIT clauses: the
// occurrences are sorted by the keys (ties fall back to canonical order, so
// the result is deterministic), the window is cut, any hidden sort columns
// the translator appended are stripped, and the relation is rebuilt from the
// surviving rows so Len, Multiplicity and DistinctRows stay consistent with
// what the caller sees.  A result that already carries a presentation order —
// produced by the physical Sort operator on the QuerySQL path — is not
// re-sorted; the script path sorts here with the same plan.SortTuples
// ordering the operator uses.
func (r *Result) withModifiers(m sqlfront.Modifiers) *Result {
	if !m.Active() {
		return r
	}
	rows := r.ordered
	presorted := rows != nil
	if rows == nil {
		rows = r.rel.Tuples() // canonical order: the deterministic sort base
	}
	if len(m.Order) > 0 && !presorted {
		keys := make([]plan.SortKey, len(m.Order))
		for i, k := range m.Order {
			keys[i] = plan.SortKey{Col: k.Col, Desc: k.Desc}
		}
		plan.SortTuples(rows, keys)
	}
	rebuild := false
	if m.Offset > 0 {
		if m.Offset >= uint64(len(rows)) {
			rows = rows[:0]
		} else {
			rows = rows[m.Offset:]
		}
		rebuild = true
	}
	if m.HasLimit && uint64(len(rows)) > m.Limit {
		rows = rows[:m.Limit]
		rebuild = true
	}
	s := r.rel.Schema()
	if m.Hidden > 0 {
		// Strip the trailing hidden sort columns from the presentation.
		visible := make([]int, s.Arity()-m.Hidden)
		for i := range visible {
			visible[i] = i
		}
		s, _ = s.Project(visible)
		stripped := make([]tuple.Tuple, len(rows))
		for i, t := range rows {
			stripped[i], _ = t.Project(visible)
		}
		rows = stripped
		rebuild = true
	}
	if !rebuild {
		// Pure ORDER BY: every occurrence survives, so the existing relation
		// is reused and only the presentation order is attached.
		return &Result{rel: r.rel, ordered: rows}
	}
	rel := multiset.NewWithCapacity(s, len(rows))
	for _, t := range rows {
		rel.Add(t, 1)
	}
	return &Result{rel: rel, ordered: rows}
}

// DistinctRows returns one row per distinct tuple together with its
// multiplicity, in canonical order.
func (r *Result) DistinctRows() []RowCount {
	var out []RowCount
	r.rel.EachSorted(func(t tuple.Tuple, count uint64) bool {
		out = append(out, RowCount{Row: rowOf(t), Count: count})
		return true
	})
	return out
}

// RowCount pairs a distinct row with its multiplicity.
type RowCount struct {
	Row   []any
	Count uint64
}

// Multiplicity returns how many times the given row occurs in the result.
func (r *Result) Multiplicity(row ...any) uint64 {
	vals := make([]value.Value, len(row))
	for i, v := range row {
		cv, err := convertValue(v)
		if err != nil {
			return 0
		}
		vals[i] = cv
	}
	return r.rel.Multiplicity(tuple.New(vals...))
}

// rowOf converts a tuple into native Go values.
func rowOf(t tuple.Tuple) []any {
	row := make([]any, t.Arity())
	for i := 0; i < t.Arity(); i++ {
		v := t.At(i)
		switch v.Kind() {
		case value.KindInt:
			row[i] = v.Int()
		case value.KindFloat:
			row[i] = v.Float()
		case value.KindString:
			row[i] = v.Str()
		case value.KindBool:
			row[i] = v.Bool()
		default:
			row[i] = nil
		}
	}
	return row
}

// String renders the result as a multi-set literal.
func (r *Result) String() string { return r.rel.String() }

// Table renders the result as an aligned text table with a header row, one
// line per occurrence, in presentation order (ORDER BY order when given,
// canonical order otherwise).
func (r *Result) Table() string {
	cols := r.Columns()
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	var rows [][]string
	addRow := func(t tuple.Tuple, count uint64) {
		cells := make([]string, t.Arity())
		for i := 0; i < t.Arity(); i++ {
			cells[i] = t.At(i).Display()
			if len(cells[i]) > widths[i] {
				widths[i] = len(cells[i])
			}
		}
		for k := uint64(0); k < count; k++ {
			rows = append(rows, cells)
		}
	}
	if r.ordered != nil {
		for _, t := range r.ordered {
			addRow(t, 1)
		}
	} else {
		r.rel.EachSorted(func(t tuple.Tuple, count uint64) bool {
			addRow(t, count)
			return true
		})
	}

	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(cols)
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(rows))
	return b.String()
}
