package mra

import (
	"fmt"
	"strings"

	"mra/internal/multiset"
	"mra/internal/tuple"
	"mra/internal/value"
)

// Result is a materialised query result: a multi-set of tuples together with
// its schema.
type Result struct {
	rel *multiset.Relation
}

// Columns returns the result's column names; unnamed computed columns are
// rendered as col1, col2, ...
func (r *Result) Columns() []string {
	s := r.rel.Schema()
	out := make([]string, s.Arity())
	for i := 0; i < s.Arity(); i++ {
		name := s.Attribute(i).Name
		if name == "" {
			name = fmt.Sprintf("col%d", i+1)
		}
		out[i] = name
	}
	return out
}

// Len returns the number of rows, counting duplicates.
func (r *Result) Len() int { return int(r.rel.Cardinality()) }

// DistinctLen returns the number of distinct rows.
func (r *Result) DistinctLen() int { return r.rel.DistinctCount() }

// Rows returns all rows (duplicates expanded) in canonical order.  Values are
// native Go values: int64, float64, string, bool or nil.
func (r *Result) Rows() [][]any {
	out := make([][]any, 0, r.rel.Cardinality())
	for _, t := range r.rel.Tuples() {
		out = append(out, rowOf(t))
	}
	return out
}

// DistinctRows returns one row per distinct tuple together with its
// multiplicity, in canonical order.
func (r *Result) DistinctRows() []RowCount {
	var out []RowCount
	r.rel.EachSorted(func(t tuple.Tuple, count uint64) bool {
		out = append(out, RowCount{Row: rowOf(t), Count: count})
		return true
	})
	return out
}

// RowCount pairs a distinct row with its multiplicity.
type RowCount struct {
	Row   []any
	Count uint64
}

// Multiplicity returns how many times the given row occurs in the result.
func (r *Result) Multiplicity(row ...any) uint64 {
	vals := make([]value.Value, len(row))
	for i, v := range row {
		cv, err := convertValue(v)
		if err != nil {
			return 0
		}
		vals[i] = cv
	}
	return r.rel.Multiplicity(tuple.New(vals...))
}

// rowOf converts a tuple into native Go values.
func rowOf(t tuple.Tuple) []any {
	row := make([]any, t.Arity())
	for i := 0; i < t.Arity(); i++ {
		v := t.At(i)
		switch v.Kind() {
		case value.KindInt:
			row[i] = v.Int()
		case value.KindFloat:
			row[i] = v.Float()
		case value.KindString:
			row[i] = v.Str()
		case value.KindBool:
			row[i] = v.Bool()
		default:
			row[i] = nil
		}
	}
	return row
}

// String renders the result as a multi-set literal.
func (r *Result) String() string { return r.rel.String() }

// Table renders the result as an aligned text table with a header row, one
// line per occurrence, in canonical order.
func (r *Result) Table() string {
	cols := r.Columns()
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	var rows [][]string
	r.rel.EachSorted(func(t tuple.Tuple, count uint64) bool {
		cells := make([]string, t.Arity())
		for i := 0; i < t.Arity(); i++ {
			cells[i] = t.At(i).Display()
			if len(cells[i]) > widths[i] {
				widths[i] = len(cells[i])
			}
		}
		for k := uint64(0); k < count; k++ {
			rows = append(rows, cells)
		}
		return true
	})

	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(cols)
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(rows))
	return b.String()
}
