package eval

import (
	"math/rand"
	"testing"

	"mra/internal/algebra"
	"mra/internal/scalar"
)

// multiJoinSource builds n random two-attribute relations r1..rn with small
// key ranges, so multi-join queries produce matches, duplicates and empty
// intermediate results with useful probability.
func multiJoinSource(rng *rand.Rand, n int) MapSource {
	src := make(MapSource, n)
	for i := 0; i < n; i++ {
		name := string(rune('p' + i))
		src[name] = randomRelationN(rng, name, 2, 2+rng.Intn(14), 3)
	}
	return src
}

// chainJoinExpr builds the left-deep written order of the chain query
// r1 ⋈ r2 ⋈ … ⋈ rn with conditions r_k.b = r_{k+1}.a.  Every relation has
// arity 2, so after joining k relations the combined arity is 2k.
func chainJoinExpr(names []string) algebra.Expr {
	e := algebra.Expr(algebra.NewRel(names[0]))
	for k := 1; k < len(names); k++ {
		e = algebra.NewJoin(scalar.Eq(2*k-1, 2*k), e, algebra.NewRel(names[k]))
	}
	return e
}

// starJoinExpr builds the left-deep written order of the star query joining
// every r_k (k ≥ 2) to r1 on r1.a = r_k.a.
func starJoinExpr(names []string) algebra.Expr {
	e := algebra.Expr(algebra.NewRel(names[0]))
	for k := 1; k < len(names); k++ {
		e = algebra.NewJoin(scalar.Eq(0, 2*k), e, algebra.NewRel(names[k]))
	}
	return e
}

// cycleJoinExpr closes the chain with the edge r_n.b = r1.a, written as a
// selection over the chain join — the shape the enumerator's flattener folds
// into the search as an extra join conjunct.
func cycleJoinExpr(names []string) algebra.Expr {
	n := len(names)
	return algebra.NewSelect(scalar.Eq(2*n-1, 0), chainJoinExpr(names))
}

// TestPropertyJoinOrderMatchesReference is the enumerator's oracle property:
// for random databases and 3–6-relation chain, star and cycle queries, the
// engine — whose planner replaces the written join order with the DP
// enumerator's cost-based order, planning against ANALYZE-grade statistics —
// must produce exactly the Reference evaluator's multi-set at every tested
// worker count, and the written-order baseline (NoJoinReorder) must agree.
// MorselSize 1 and ParallelThreshold 1 force maximal parallel scheduling onto
// the tiny inputs.  Run with -race to check the parallel runtime.
func TestPropertyJoinOrderMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	workerCounts := []int{1, 2, 4, 8}
	shapes := []struct {
		name  string
		build func([]string) algebra.Expr
	}{
		{"chain", chainJoinExpr},
		{"star", starJoinExpr},
		{"cycle", cycleJoinExpr},
	}
	for round := 0; round < 25; round++ {
		n := 3 + rng.Intn(4)
		src := multiJoinSource(rng, n)
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('p' + i))
		}
		// Analyzed statistics drive the enumerator's cardinality estimates.
		analyzed := AnalyzeSource(src)
		for _, shape := range shapes {
			e := shape.build(names)
			ref := evalOrFatal(t, e, src)
			for _, workers := range workerCounts {
				eng := &Engine{Workers: workers, MorselSize: 1, ParallelThreshold: 1}
				got, err := eng.Eval(e, analyzed)
				if err != nil {
					t.Fatalf("round %d: %s/%d relations/workers=%d: %v", round, shape.name, n, workers, err)
				}
				if !got.Equal(ref) {
					t.Fatalf("round %d: %s over %d relations at workers=%d: enumerator changed the bag:\nreference: %s\ngot:       %s",
						round, shape.name, n, workers, ref, got)
				}
				baseline := &Engine{Workers: workers, MorselSize: 1, ParallelThreshold: 1, NoJoinReorder: true}
				base, err := baseline.Eval(e, analyzed)
				if err != nil {
					t.Fatalf("round %d: %s written order at workers=%d: %v", round, shape.name, workers, err)
				}
				if !base.Equal(ref) {
					t.Fatalf("round %d: %s written-order baseline at workers=%d diverged:\nreference: %s\ngot:       %s",
						round, shape.name, workers, ref, base)
				}
			}
			// Without statistics the enumerator falls back to flat
			// selectivities; the bag must still be exact.
			got, err := (&Engine{}).Eval(e, src)
			if err != nil {
				t.Fatalf("round %d: %s without stats: %v", round, shape.name, err)
			}
			if !got.Equal(ref) {
				t.Fatalf("round %d: %s without stats changed the bag:\nreference: %s\ngot:       %s",
					round, shape.name, ref, got)
			}
		}
	}
}

// TestJoinOrderPicksSmallSideFirst pins the enumerator's effect on a star
// query written worst-first: dimensions cross-multiplied before the fact
// table.  The cost-based order must start from the selective fact joins, so
// the peak intermediate result stays near the final result size instead of
// the dimensions' cross product.
func TestJoinOrderPicksSmallSideFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	src := MapSource{
		"fact": randomRelationN(rng, "fact", 2, 60, 1),
		"d1":   randomRelationN(rng, "d1", 2, 12, 1),
		"d2":   randomRelationN(rng, "d2", 2, 12, 1),
		"d3":   randomRelationN(rng, "d3", 2, 12, 1),
	}
	// Written order: ((d1 × d2) × d3) ⋈ fact — the three dimension joins
	// carry no condition until fact arrives (its conditions reference each
	// dimension's first column).
	e := algebra.NewJoin(
		scalar.NewAnd(scalar.Eq(0, 6), scalar.NewAnd(scalar.Eq(2, 6), scalar.Eq(4, 6))),
		algebra.NewProduct(algebra.NewProduct(algebra.NewRel("d1"), algebra.NewRel("d2")), algebra.NewRel("d3")),
		algebra.NewRel("fact"))
	ref := evalOrFatal(t, e, src)

	analyzed := AnalyzeSource(src)
	reorder := &Engine{CollectStats: true}
	got, err := reorder.Eval(e, analyzed)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ref) {
		t.Fatalf("enumerator changed the bag:\nreference: %s\ngot: %s", ref, got)
	}
	baseline := &Engine{CollectStats: true, NoJoinReorder: true}
	if _, err := baseline.Eval(e, analyzed); err != nil {
		t.Fatal(err)
	}
	if reorder.Stats.PeakRelationTuples >= baseline.Stats.PeakRelationTuples {
		t.Errorf("enumerator peak %d not below written-order peak %d",
			reorder.Stats.PeakRelationTuples, baseline.Stats.PeakRelationTuples)
	}
}
