// Package eval implements the executable semantics of the multi-set extended
// relational algebra.  It offers two evaluators over the same logical
// expressions (package algebra):
//
//   - Reference: a literal transcription of the paper's definitions, used as
//     the semantic oracle by property-based tests.
//   - Engine (physical): compiles expressions through the cost-aware planner
//     of package plan into streaming physical operators (hash join, hash
//     aggregate, pipelined σ/π) and executes them; used by the public facade
//     and the benchmarks.
//
// Agreement of the two evaluators on random databases — including randomly
// generated expression trees — is itself one of the library's property tests.
package eval

import (
	"fmt"
	"strings"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/plan"
	"mra/internal/schema"
)

// Source resolves database relation names to relation instances.  The storage
// engine and transaction contexts implement it; tests use MapSource.
type Source interface {
	// Relation returns the named relation instance.
	Relation(name string) (*multiset.Relation, bool)
}

// MapSource is a Source backed by a map with case-insensitive lookup.
type MapSource map[string]*multiset.Relation

// Relation implements Source.
func (m MapSource) Relation(name string) (*multiset.Relation, bool) {
	if r, ok := m[name]; ok {
		return r, true
	}
	for k, r := range m {
		if strings.EqualFold(k, name) {
			return r, true
		}
	}
	return nil, false
}

// Catalog returns an algebra.Catalog view of the source, so expressions can be
// validated against the same relations they will be evaluated on.
func (m MapSource) Catalog() algebra.Catalog {
	cat := make(algebra.MapCatalog, len(m))
	for k, r := range m {
		cat[k] = r.Schema()
	}
	return cat
}

// sourceCatalog adapts any Source whose relations are known by name into a
// Catalog.  Evaluators use it to infer operator output schemas on demand.
type sourceCatalog struct {
	src Source
}

// RelationSchema implements algebra.Catalog.
func (c sourceCatalog) RelationSchema(name string) (schema.Relation, bool) {
	r, ok := c.src.Relation(name)
	if !ok {
		return schema.Relation{}, false
	}
	return r.Schema(), true
}

// CatalogOf wraps a Source as an algebra.Catalog.
func CatalogOf(src Source) algebra.Catalog { return sourceCatalog{src: src} }

// sourceCards adapts a Source into the planner's cardinality provider, so the
// cost model ranks plans on the actual table sizes of the database being
// queried.  Relation lookups are O(1) copy-on-write clones.
type sourceCards struct {
	src Source
}

// RelationCardinality implements plan.CardinalitySource.
func (c sourceCards) RelationCardinality(name string) (uint64, bool) {
	r, ok := c.src.Relation(name)
	if !ok {
		return 0, false
	}
	return r.Cardinality(), true
}

// RelationDistinctCount implements plan.DistinctCardinalitySource, letting
// the planner size hash tables by distinct tuples rather than occurrences.
func (c sourceCards) RelationDistinctCount(name string) (int, bool) {
	r, ok := c.src.Relation(name)
	if !ok {
		return 0, false
	}
	return r.DistinctCount(), true
}

// Cardinalities wraps a Source as a plan.CardinalitySource.
func Cardinalities(src Source) plan.CardinalitySource { return sourceCards{src: src} }

// lookup fetches a relation from a source, converting a miss into an error.
func lookup(src Source, name string) (*multiset.Relation, error) {
	r, ok := src.Relation(name)
	if !ok {
		return nil, fmt.Errorf("eval: unknown relation %q", name)
	}
	return r, nil
}
