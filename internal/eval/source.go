// Package eval implements the executable semantics of the multi-set extended
// relational algebra.  It offers two evaluators over the same logical
// expressions (package algebra):
//
//   - Reference: a literal transcription of the paper's definitions, used as
//     the semantic oracle by property-based tests.
//   - Engine (physical): compiles expressions through the cost-aware planner
//     of package plan into streaming physical operators (hash join, hash
//     aggregate, pipelined σ/π) and executes them; used by the public facade
//     and the benchmarks.
//
// Agreement of the two evaluators on random databases — including randomly
// generated expression trees — is itself one of the library's property tests.
package eval

import (
	"fmt"
	"strings"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/plan"
	"mra/internal/schema"
	"mra/internal/stats"
)

// Source resolves database relation names to relation instances.  The storage
// engine and transaction contexts implement it; tests use MapSource.
type Source interface {
	// Relation returns the named relation instance.
	Relation(name string) (*multiset.Relation, bool)
}

// MapSource is a Source backed by a map with case-insensitive lookup.
type MapSource map[string]*multiset.Relation

// Relation implements Source.
func (m MapSource) Relation(name string) (*multiset.Relation, bool) {
	if r, ok := m[name]; ok {
		return r, true
	}
	for k, r := range m {
		if strings.EqualFold(k, name) {
			return r, true
		}
	}
	return nil, false
}

// Catalog returns an algebra.Catalog view of the source, so expressions can be
// validated against the same relations they will be evaluated on.
func (m MapSource) Catalog() algebra.Catalog {
	cat := make(algebra.MapCatalog, len(m))
	for k, r := range m {
		cat[k] = r.Schema()
	}
	return cat
}

// sourceCatalog adapts any Source whose relations are known by name into a
// Catalog.  Evaluators use it to infer operator output schemas on demand.
type sourceCatalog struct {
	src Source
}

// RelationSchema implements algebra.Catalog.
func (c sourceCatalog) RelationSchema(name string) (schema.Relation, bool) {
	r, ok := c.src.Relation(name)
	if !ok {
		return schema.Relation{}, false
	}
	return r.Schema(), true
}

// CatalogOf wraps a Source as an algebra.Catalog.
func CatalogOf(src Source) algebra.Catalog { return sourceCatalog{src: src} }

// sourceCards adapts a Source into the planner's cardinality provider, so the
// cost model ranks plans on the actual table sizes of the database being
// queried.  Relation lookups are O(1) copy-on-write clones.
type sourceCards struct {
	src Source
}

// RelationCardinality implements plan.CardinalitySource.
func (c sourceCards) RelationCardinality(name string) (uint64, bool) {
	r, ok := c.src.Relation(name)
	if !ok {
		return 0, false
	}
	return r.Cardinality(), true
}

// RelationDistinctCount implements plan.DistinctCardinalitySource, letting
// the planner size hash tables by distinct tuples rather than occurrences.
func (c sourceCards) RelationDistinctCount(name string) (int, bool) {
	r, ok := c.src.Relation(name)
	if !ok {
		return 0, false
	}
	return r.DistinctCount(), true
}

// TableStats implements plan.TableStatsSource by forwarding to the wrapped
// Source when it carries per-column statistics (transaction snapshots, the
// storage engine after ANALYZE, StatsSource wrappers); sources without
// statistics report none and the planner falls back to flat selectivities.
func (c sourceCards) TableStats(name string) (*stats.Table, bool) {
	if s, ok := c.src.(interface {
		TableStats(name string) (*stats.Table, bool)
	}); ok {
		return s.TableStats(name)
	}
	return nil, false
}

// Cardinalities wraps a Source as a plan.CardinalitySource.
func Cardinalities(src Source) plan.CardinalitySource { return sourceCards{src: src} }

// StatsSource decorates a Source with precomputed per-relation statistics, so
// callers without a storage database underneath (benchmarks over MapSource,
// tests) can feed the planner ANALYZE-grade summaries.  Lookup is
// case-insensitive, matching MapSource.
type StatsSource struct {
	Source
	// Tables maps relation names to their statistics summaries.
	Tables map[string]*stats.Table
}

// TableStats implements plan.TableStatsSource.
func (s StatsSource) TableStats(name string) (*stats.Table, bool) {
	if t, ok := s.Tables[name]; ok {
		return t, true
	}
	for k, t := range s.Tables {
		if strings.EqualFold(k, name) {
			return t, true
		}
	}
	return nil, false
}

// AnalyzeSource builds statistics for every relation of a map source,
// wrapping it as a StatsSource — the in-memory equivalent of running ANALYZE
// on each relation.
func AnalyzeSource(m MapSource) StatsSource {
	tables := make(map[string]*stats.Table, len(m))
	for name, r := range m {
		tables[name] = stats.Analyze(r, 0)
	}
	return StatsSource{Source: m, Tables: tables}
}

// lookup fetches a relation from a source, converting a miss into an error.
func lookup(src Source, name string) (*multiset.Relation, error) {
	r, ok := src.Relation(name)
	if !ok {
		return nil, fmt.Errorf("eval: unknown relation %q", name)
	}
	return r, nil
}
