package eval

import (
	"errors"
	"math/rand"
	"testing"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/rewrite"
	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// randomRelation builds a random two-attribute integer relation with small
// value ranges so that duplicates, overlaps and empty intersections all occur
// with useful probability.
func randomRelation(rng *rand.Rand, name string, maxTuples int) *multiset.Relation {
	s := schema.NewRelation(name,
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindInt},
	)
	r := multiset.New(s)
	n := rng.Intn(maxTuples + 1)
	for i := 0; i < n; i++ {
		t := tuple.Ints(int64(rng.Intn(5)), int64(rng.Intn(5)))
		r.Add(t, uint64(1+rng.Intn(3)))
	}
	return r
}

// randomSource builds a source with three random relations E1, E2, E3 of the
// same schema.
func randomSource(rng *rand.Rand) MapSource {
	return MapSource{
		"e1": randomRelation(rng, "e1", 12),
		"e2": randomRelation(rng, "e2", 12),
		"e3": randomRelation(rng, "e3", 12),
	}
}

func requireEqual(t *testing.T, round int, label string, a, b *multiset.Relation) {
	t.Helper()
	if !a.Equal(b) {
		t.Fatalf("round %d: %s:\nleft:  %s\nright: %s", round, label, a, b)
	}
}

func evalOrFatal(t *testing.T, e algebra.Expr, src Source) *multiset.Relation {
	t.Helper()
	r, err := (Reference{}).Eval(e, src)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return r
}

// randomRelationN builds a random relation with the given arity, at most
// maxTuples distinct draws, and per-draw multiplicity up to maxMult, so
// duplicates with multiplicity well above one are guaranteed to occur.
func randomRelationN(rng *rand.Rand, name string, arity, maxTuples, maxMult int) *multiset.Relation {
	attrs := make([]schema.Attribute, arity)
	for i := range attrs {
		attrs[i] = schema.Attribute{Name: string(rune('a' + i)), Type: value.KindInt}
	}
	r := multiset.New(schema.NewRelation(name, attrs...))
	n := rng.Intn(maxTuples + 1)
	for i := 0; i < n; i++ {
		vals := make([]int64, arity)
		for j := range vals {
			vals[j] = int64(rng.Intn(4))
		}
		r.Add(tuple.Ints(vals...), uint64(1+rng.Intn(maxMult)))
	}
	return r
}

// TestPropertyJoinShapes cross-checks the physical hash join against the
// reference evaluator on multi-column equi-joins with residual predicates,
// joins with an empty side (which the engine short-circuits), and asymmetric
// cardinalities in both orders (which flip the build side).
func TestPropertyJoinShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(314))

	big, small, empty := algebra.NewRel("big"), algebra.NewRel("small"), algebra.NewRel("empty")
	multiCol := scalar.NewAnd(scalar.Eq(0, 3), scalar.Eq(1, 4))
	withResidual := scalar.NewAnd(scalar.Eq(0, 3),
		scalar.NewCompare(value.CmpLt, scalar.NewAttr(1), scalar.NewAttr(5)))
	withOneSided := scalar.NewAnd(scalar.Eq(0, 3), scalar.Eq(2, 5),
		scalar.NewCompare(value.CmpGe, scalar.NewAttr(2), scalar.NewConst(value.NewInt(2))))
	exprs := []algebra.Expr{
		algebra.NewJoin(multiCol, big, small),
		algebra.NewJoin(multiCol, small, big),
		algebra.NewJoin(withResidual, big, small),
		algebra.NewJoin(withOneSided, big, small),
		algebra.NewJoin(multiCol, big, empty),
		algebra.NewJoin(multiCol, empty, small),
		// σφ(E1 × E2) must take the same hash-join path.
		algebra.NewSelect(withResidual, algebra.NewProduct(big, small)),
	}
	for round := 0; round < 60; round++ {
		src := MapSource{
			"big":   randomRelationN(rng, "big", 3, 24, 6),
			"small": randomRelationN(rng, "small", 3, 6, 6),
			"empty": randomRelationN(rng, "empty", 3, 0, 1),
		}
		for _, e := range exprs {
			ref, err := (Reference{}).Eval(e, src)
			if err != nil {
				t.Fatalf("round %d: reference eval %s: %v", round, e, err)
			}
			phys, err := (&Engine{}).Eval(e, src)
			if err != nil {
				t.Fatalf("round %d: engine eval %s: %v", round, e, err)
			}
			requireEqual(t, round, "engine vs reference on "+e.String(), ref, phys)
		}
	}
}

// TestPropertyFusedPipelines cross-checks the engine's fused select/project
// pipelines (σ∘σ, π∘σ, σ∘π, π∘π and deeper cascades) against the reference
// evaluator, which materialises every intermediate relation.
func TestPropertyFusedPipelines(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	e1, e2 := algebra.NewRel("e1"), algebra.NewRel("e2")
	p0 := scalar.NewCompare(value.CmpGe, scalar.NewAttr(0), scalar.NewConst(value.NewInt(1)))
	p1 := scalar.NewCompare(value.CmpLe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(3)))
	exprs := []algebra.Expr{
		algebra.NewSelect(p0, algebra.NewSelect(p1, e1)),
		algebra.NewProject([]int{1, 0}, algebra.NewSelect(p0, e1)),
		algebra.NewSelect(p1, algebra.NewProject([]int{1, 0}, e1)),
		algebra.NewProject([]int{0}, algebra.NewProject([]int{1, 0}, e1)),
		// Repeated projection indices duplicate attributes.
		algebra.NewProject([]int{1, 1, 0}, algebra.NewSelect(p1, e1)),
		// A deep cascade over a union, so the fused pass runs over a derived
		// input rather than a base leaf.
		algebra.NewProject([]int{0},
			algebra.NewSelect(p0,
				algebra.NewProject([]int{1, 0},
					algebra.NewSelect(p1, algebra.NewUnion(e1, e2))))),
		// A select cascade directly above a product: the innermost σ becomes
		// a join, the outer stages fuse on top of it.
		algebra.NewSelect(p0, algebra.NewSelect(scalar.Eq(1, 2), algebra.NewProduct(e1, e2))),
	}
	for round := 0; round < 60; round++ {
		src := MapSource{
			"e1": randomRelationN(rng, "e1", 2, 12, 6),
			"e2": randomRelationN(rng, "e2", 2, 12, 6),
		}
		for _, e := range exprs {
			ref, err := (Reference{}).Eval(e, src)
			if err != nil {
				t.Fatalf("round %d: reference eval %s: %v", round, e, err)
			}
			phys, err := (&Engine{}).Eval(e, src)
			if err != nil {
				t.Fatalf("round %d: engine eval %s: %v", round, e, err)
			}
			requireEqual(t, round, "engine vs reference on "+e.String(), ref, phys)
		}
	}
}

// TestPropertyEvaluatorsAgree cross-checks the physical engine against the
// reference evaluator on randomly generated databases and a mix of operator
// shapes.
func TestPropertyEvaluatorsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	selPred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(0), scalar.NewConst(value.NewInt(2)))
	exprs := []algebra.Expr{
		algebra.NewUnion(algebra.NewRel("e1"), algebra.NewRel("e2")),
		algebra.NewDifference(algebra.NewRel("e1"), algebra.NewRel("e2")),
		algebra.NewIntersect(algebra.NewRel("e1"), algebra.NewRel("e2")),
		algebra.NewJoin(scalar.Eq(1, 2), algebra.NewRel("e1"), algebra.NewRel("e2")),
		algebra.NewSelect(selPred, algebra.NewProduct(algebra.NewRel("e1"), algebra.NewRel("e2"))),
		algebra.NewProject([]int{1}, algebra.NewRel("e1")),
		algebra.NewUnique(algebra.NewUnion(algebra.NewRel("e1"), algebra.NewRel("e2"))),
		algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("e1")),
		algebra.NewGroupBy([]int{0}, algebra.AggCount, 1, algebra.NewUnion(algebra.NewRel("e1"), algebra.NewRel("e2"))),
		algebra.NewTClose(algebra.NewProject([]int{0, 1}, algebra.NewRel("e1"))),
	}
	for round := 0; round < 60; round++ {
		src := randomSource(rng)
		for _, e := range exprs {
			ref, err := (Reference{}).Eval(e, src)
			if err != nil {
				t.Fatalf("round %d: reference eval %s: %v", round, e, err)
			}
			phys, err := (&Engine{}).Eval(e, src)
			if err != nil {
				t.Fatalf("round %d: engine eval %s: %v", round, e, err)
			}
			requireEqual(t, round, "engine vs reference on "+e.String(), ref, phys)
		}
	}
}

// TestPropertyTheorem31 checks E1 ∩ E2 = E1 − (E1 − E2) and
// E1 ⋈φ E2 = σφ(E1 × E2) on random databases.
func TestPropertyTheorem31(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 80; round++ {
		src := randomSource(rng)
		e1, e2 := algebra.NewRel("e1"), algebra.NewRel("e2")
		inter := evalOrFatal(t, algebra.NewIntersect(e1, e2), src)
		derived := evalOrFatal(t, algebra.NewDifference(e1, algebra.NewDifference(e1, e2)), src)
		requireEqual(t, round, "E1∩E2 = E1−(E1−E2)", inter, derived)

		cond := scalar.Eq(0, 2)
		join := evalOrFatal(t, algebra.NewJoin(cond, e1, e2), src)
		sigma := evalOrFatal(t, algebra.NewSelect(cond, algebra.NewProduct(e1, e2)), src)
		requireEqual(t, round, "E1⋈E2 = σ(E1×E2)", join, sigma)
	}
}

// TestPropertyTheorem32 checks the distribution of selection and projection
// over union, and the paper's remark that δ does not distribute over ⊎ but
// satisfies δ(E1⊎E2) = δE1 ∪ δE2 (set union = δ of the bag union).
func TestPropertyTheorem32(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pred := scalar.NewCompare(value.CmpLe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(2)))
	for round := 0; round < 80; round++ {
		src := randomSource(rng)
		e1, e2 := algebra.NewRel("e1"), algebra.NewRel("e2")

		selUnion := evalOrFatal(t, algebra.NewSelect(pred, algebra.NewUnion(e1, e2)), src)
		unionSel := evalOrFatal(t, algebra.NewUnion(algebra.NewSelect(pred, e1), algebra.NewSelect(pred, e2)), src)
		requireEqual(t, round, "σ(E1⊎E2) = σE1 ⊎ σE2", selUnion, unionSel)

		projUnion := evalOrFatal(t, algebra.NewProject([]int{0}, algebra.NewUnion(e1, e2)), src)
		unionProj := evalOrFatal(t, algebra.NewUnion(algebra.NewProject([]int{0}, e1), algebra.NewProject([]int{0}, e2)), src)
		requireEqual(t, round, "π(E1⊎E2) = πE1 ⊎ πE2", projUnion, unionProj)

		// δ(E1 ⊎ E2) equals δ(δE1 ⊎ δE2) (the set union of the deduplicated
		// operands), but in general differs from δE1 ⊎ δE2.
		dedupUnion := evalOrFatal(t, algebra.NewUnique(algebra.NewUnion(e1, e2)), src)
		setUnion := evalOrFatal(t, algebra.NewUnique(algebra.NewUnion(algebra.NewUnique(e1), algebra.NewUnique(e2))), src)
		requireEqual(t, round, "δ(E1⊎E2) = δ(δE1⊎δE2)", dedupUnion, setUnion)
	}
}

// TestDeltaDoesNotDistributeOverUnion pins the counter-example from the
// paper's Theorem 3.2 discussion: δ over ⊎ is not a homomorphism.
func TestDeltaDoesNotDistributeOverUnion(t *testing.T) {
	s := schema.Anonymous(schema.Attribute{Name: "x", Type: value.KindInt})
	shared := tuple.Ints(1)
	e1 := multiset.FromTuples(s, shared)
	e2 := multiset.FromTuples(s, shared)
	src := MapSource{"e1": e1, "e2": e2}
	left := evalOrFatal(t, algebra.NewUnique(algebra.NewUnion(algebra.NewRel("e1"), algebra.NewRel("e2"))), src)
	right := evalOrFatal(t, algebra.NewUnion(algebra.NewUnique(algebra.NewRel("e1")), algebra.NewUnique(algebra.NewRel("e2"))), src)
	if left.Equal(right) {
		t.Fatal("δ(E1⊎E2) must differ from δE1 ⊎ δE2 when E1 and E2 share a tuple")
	}
	if left.Multiplicity(shared) != 1 || right.Multiplicity(shared) != 2 {
		t.Errorf("expected multiplicities 1 vs 2, got %d vs %d", left.Multiplicity(shared), right.Multiplicity(shared))
	}
}

// TestPropertyTheorem33 checks associativity of ×, ⋈, ⊎ and ∩ on random
// databases (Theorem 3.3).
func TestPropertyTheorem33(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for round := 0; round < 60; round++ {
		src := randomSource(rng)
		e1, e2, e3 := algebra.NewRel("e1"), algebra.NewRel("e2"), algebra.NewRel("e3")

		u1 := evalOrFatal(t, algebra.NewUnion(algebra.NewUnion(e1, e2), e3), src)
		u2 := evalOrFatal(t, algebra.NewUnion(e1, algebra.NewUnion(e2, e3)), src)
		requireEqual(t, round, "(E1⊎E2)⊎E3 = E1⊎(E2⊎E3)", u1, u2)

		i1 := evalOrFatal(t, algebra.NewIntersect(algebra.NewIntersect(e1, e2), e3), src)
		i2 := evalOrFatal(t, algebra.NewIntersect(e1, algebra.NewIntersect(e2, e3)), src)
		requireEqual(t, round, "(E1∩E2)∩E3 = E1∩(E2∩E3)", i1, i2)

		p1 := evalOrFatal(t, algebra.NewProduct(algebra.NewProduct(e1, e2), e3), src)
		p2 := evalOrFatal(t, algebra.NewProduct(e1, algebra.NewProduct(e2, e3)), src)
		requireEqual(t, round, "(E1×E2)×E3 = E1×(E2×E3)", p1, p2)

		// Join associativity with conditions restricted to the adjacent
		// operands: (E1 ⋈_{%2=%3} E2) ⋈_{%4=%5} E3 = E1 ⋈_{%2=%3} (E2 ⋈_{%2=%3} E3)
		// — on the concatenated six-attribute schema both sides select the
		// same tuples.
		j1 := evalOrFatal(t, algebra.NewJoin(scalar.Eq(3, 4), algebra.NewJoin(scalar.Eq(1, 2), e1, e2), e3), src)
		j2 := evalOrFatal(t, algebra.NewJoin(scalar.Eq(1, 2), e1, algebra.NewJoin(scalar.Eq(1, 2), e2, e3)), src)
		requireEqual(t, round, "join associativity", j1, j2)
	}
}

// TestPropertyBagAxioms checks the multiplicity laws that make the operators a
// commutative-monoid structure: union commutativity, empty-relation identity,
// difference self-annihilation, intersection idempotence, and δ idempotence.
func TestPropertyBagAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 60; round++ {
		src := randomSource(rng)
		e1, e2 := algebra.NewRel("e1"), algebra.NewRel("e2")
		empty := algebra.Literal{Rel: src["e1"].Schema()}

		requireEqual(t, round, "E1⊎E2 = E2⊎E1",
			evalOrFatal(t, algebra.NewUnion(e1, e2), src),
			evalOrFatal(t, algebra.NewUnion(e2, e1), src))
		requireEqual(t, round, "E1⊎∅ = E1",
			evalOrFatal(t, algebra.NewUnion(e1, empty), src),
			evalOrFatal(t, e1, src))
		requireEqual(t, round, "E1−E1 = ∅",
			evalOrFatal(t, algebra.NewDifference(e1, e1), src),
			evalOrFatal(t, empty, src))
		requireEqual(t, round, "E1∩E1 = E1",
			evalOrFatal(t, algebra.NewIntersect(e1, e1), src),
			evalOrFatal(t, e1, src))
		requireEqual(t, round, "E1∩E2 = E2∩E1",
			evalOrFatal(t, algebra.NewIntersect(e1, e2), src),
			evalOrFatal(t, algebra.NewIntersect(e2, e1), src))
		requireEqual(t, round, "δδE1 = δE1",
			evalOrFatal(t, algebra.NewUnique(algebra.NewUnique(e1)), src),
			evalOrFatal(t, algebra.NewUnique(e1), src))
		requireEqual(t, round, "(E1−E2) ⊑ E1 via union check",
			evalOrFatal(t, algebra.NewUnion(algebra.NewDifference(e1, e2), algebra.NewIntersect(e1, e2)), src),
			evalOrFatal(t, e1, src))
	}
}

// TestPropertyCardinalities checks the cardinality identities
// |E1⊎E2| = |E1|+|E2| and |E1×E2| = |E1|·|E2|.
func TestPropertyCardinalities(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for round := 0; round < 60; round++ {
		src := randomSource(rng)
		c1 := src["e1"].Cardinality()
		c2 := src["e2"].Cardinality()
		u := evalOrFatal(t, algebra.NewUnion(algebra.NewRel("e1"), algebra.NewRel("e2")), src)
		if u.Cardinality() != c1+c2 {
			t.Fatalf("round %d: |E1⊎E2| = %d, want %d", round, u.Cardinality(), c1+c2)
		}
		p := evalOrFatal(t, algebra.NewProduct(algebra.NewRel("e1"), algebra.NewRel("e2")), src)
		if p.Cardinality() != c1*c2 {
			t.Fatalf("round %d: |E1×E2| = %d, want %d", round, p.Cardinality(), c1*c2)
		}
	}
}

// ---------------------------------------------------------------------------
// Random-expression property: the planner never changes bag semantics.
// ---------------------------------------------------------------------------

// exprGen generates random well-typed expressions of a requested output arity
// over the relations e1, e2, e3 (each two int attributes).  Attribute values
// and multiplicities are small, so duplicates, empty results and overlapping
// operands all occur with useful probability.
type exprGen struct {
	rng *rand.Rand
}

func (g *exprGen) intn(n int) int { return g.rng.Intn(n) }

// pred builds a random predicate over an input of the given arity.
func (g *exprGen) pred(arity int, depth int) scalar.Predicate {
	if depth > 0 && g.intn(4) == 0 {
		switch g.intn(3) {
		case 0:
			return scalar.And{Left: g.pred(arity, depth-1), Right: g.pred(arity, depth-1)}
		case 1:
			return scalar.Or{Left: g.pred(arity, depth-1), Right: g.pred(arity, depth-1)}
		default:
			return scalar.Not{Operand: g.pred(arity, depth-1)}
		}
	}
	ops := []value.CompareOp{value.CmpEq, value.CmpLt, value.CmpGe, value.CmpNe}
	op := ops[g.intn(len(ops))]
	left := scalar.NewAttr(g.intn(arity))
	if g.intn(2) == 0 {
		return scalar.NewCompare(op, left, scalar.NewAttr(g.intn(arity)))
	}
	return scalar.NewCompare(op, left, scalar.NewConst(value.NewInt(int64(g.intn(5)))))
}

// cols picks n attribute positions (repeats allowed) from an input arity.
func (g *exprGen) cols(n, arity int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = g.intn(arity)
	}
	return out
}

// distinctCols picks up to n distinct positions from an input arity.
func (g *exprGen) distinctCols(n, arity int) []int {
	perm := g.rng.Perm(arity)
	if n > arity {
		n = arity
	}
	return perm[:n]
}

// gen returns a random expression with the given output arity.
func (g *exprGen) gen(depth, arity int) algebra.Expr {
	rels := []string{"e1", "e2", "e3"}
	base := func() algebra.Expr {
		rel := algebra.NewRel(rels[g.intn(len(rels))])
		if arity == 2 && g.intn(2) == 0 {
			return rel
		}
		return algebra.NewProject(g.cols(arity, 2), rel)
	}
	if depth <= 0 {
		return base()
	}
	switch g.intn(10) {
	case 0:
		return base()
	case 1:
		return algebra.NewSelect(g.pred(arity, 1), g.gen(depth-1, arity))
	case 2:
		inner := 1 + g.intn(3)
		return algebra.NewProject(g.cols(arity, inner), g.gen(depth-1, inner))
	case 3:
		// Extended projection with small integer arithmetic (no division, so
		// scalar errors do not dominate the sample).
		inner := 1 + g.intn(3)
		items := make([]scalar.Expr, arity)
		for i := range items {
			attr := scalar.NewAttr(g.intn(inner))
			if g.intn(2) == 0 {
				ops := []value.BinaryOp{value.OpAdd, value.OpMul}
				items[i] = scalar.NewArith(ops[g.intn(len(ops))], attr, scalar.NewConst(value.NewInt(int64(g.intn(3)))))
			} else {
				items[i] = attr
			}
		}
		return algebra.NewExtProject(items, nil, g.gen(depth-1, inner))
	case 4:
		switch g.intn(3) {
		case 0:
			return algebra.NewUnion(g.gen(depth-1, arity), g.gen(depth-1, arity))
		case 1:
			return algebra.NewDifference(g.gen(depth-1, arity), g.gen(depth-1, arity))
		default:
			return algebra.NewIntersect(g.gen(depth-1, arity), g.gen(depth-1, arity))
		}
	case 5:
		return algebra.NewUnique(g.gen(depth-1, arity))
	case 6:
		if arity < 2 {
			return base()
		}
		la := 1 + g.intn(arity-1)
		return algebra.NewProduct(g.gen(depth-1, la), g.gen(depth-1, arity-la))
	case 7:
		if arity < 2 {
			return base()
		}
		la := 1 + g.intn(arity-1)
		left, right := g.gen(depth-1, la), g.gen(depth-1, arity-la)
		// An equality conjunct linking the sides (the hash-join shape), with
		// an occasional residual comparison on the concatenated schema.
		cond := scalar.Predicate(scalar.Eq(g.intn(la), la+g.intn(arity-la)))
		if g.intn(2) == 0 {
			cond = scalar.And{Left: cond, Right: g.pred(arity, 0)}
		}
		if g.intn(4) == 0 {
			// Sometimes the σ(E1 × E2) spelling instead of the join.
			return algebra.NewSelect(cond, algebra.NewProduct(left, right))
		}
		return algebra.NewJoin(cond, left, right)
	case 8:
		// Group-by: output arity = grouping columns + the aggregate list.
		// Multi-aggregate groupbys occur with useful probability, so the
		// decomposable per-aggregate states are exercised side by side.
		nAggs := 1
		if arity > 1 && g.intn(2) == 0 {
			nAggs = 2
		}
		nGroup := arity - nAggs
		inner := nGroup + g.intn(2) + 1
		if inner < nGroup {
			inner = nGroup
		}
		if inner < 1 {
			inner = 1
		}
		fns := []algebra.Aggregate{algebra.AggCount, algebra.AggSum, algebra.AggMin, algebra.AggMax, algebra.AggAvg}
		specs := make([]algebra.AggSpec, nAggs)
		for i := range specs {
			specs[i] = algebra.AggSpec{Fn: fns[g.intn(len(fns))], Col: g.intn(inner)}
		}
		return algebra.NewGroupByMulti(g.distinctCols(nGroup, inner), specs, g.gen(depth-1, inner))
	default:
		if arity != 2 {
			return base()
		}
		return algebra.NewTClose(g.gen(depth-1, 2))
	}
}

// TestPropertyPlannerPreservesBagSemantics generates random expressions and
// asserts the planner-compiled physical execution agrees with the Reference
// oracle — same multi-set, multiplicities included — and that it still agrees
// after the rewriter has transformed the expression.  The planner's compile
// step must never change bag semantics.
func TestPropertyPlannerPreservesBagSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(20260725))
	g := &exprGen{rng: rng}
	rw := rewrite.NewRewriter()
	checked, errored := 0, 0
	for round := 0; round < 40; round++ {
		src := randomSource(rng)
		cat := src.Catalog()
		for i := 0; i < 8; i++ {
			arity := 1 + g.intn(3)
			e := g.gen(3, arity)
			ref, refErr := (Reference{}).Eval(e, src)
			phys, physErr := (&Engine{}).Eval(e, src)
			if (refErr == nil) != (physErr == nil) {
				t.Fatalf("round %d: evaluators disagree on errors for %s:\nreference: %v\nphysical:  %v",
					round, e, refErr, physErr)
			}
			if refErr != nil {
				errored++
				continue
			}
			checked++
			if !ref.Equal(phys) {
				t.Fatalf("round %d: planner changed bag semantics of %s:\nreference: %s\nphysical:  %s",
					round, e, ref, phys)
			}
			// The rewritten expression must agree as well: rewriter and
			// planner compose without changing the multi-set.
			opt, _ := rw.Rewrite(e, cat)
			opt2, optErr := (&Engine{}).Eval(opt, src)
			if optErr != nil {
				t.Fatalf("round %d: rewritten %s failed: %v", round, opt, optErr)
			}
			if !ref.Equal(opt2) {
				t.Fatalf("round %d: rewrite+plan changed bag semantics:\noriginal:  %s\nrewritten: %s\nreference: %s\nphysical:  %s",
					round, e, opt, ref, opt2)
			}
		}
	}
	if checked < 100 {
		t.Errorf("only %d random expressions evaluated cleanly (%d errored); generator too error-prone", checked, errored)
	}
}

// TestPropertyParallelMatchesReference is the parallel oracle property: for
// random expressions over random databases, the partitioned parallel engine
// must produce exactly the Reference evaluator's multi-set — multiplicities
// included — at every tested worker count, and must agree with it on whether
// evaluation errors.  ParallelThreshold 1 forces exchange operators onto the
// tiny random inputs, so the parallel operators (partitioned scans,
// partition-wise joins, partitioned aggregation, merge) are exercised rather
// than planned away.  Run with -race to check the runtime's concurrency.
func TestPropertyParallelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1994))
	g := &exprGen{rng: rng}
	workerCounts := []int{1, 2, 4, 8}
	checked, errored := 0, 0
	for round := 0; round < 30; round++ {
		src := randomSource(rng)
		for i := 0; i < 6; i++ {
			arity := 1 + g.intn(3)
			e := g.gen(3, arity)
			ref, refErr := (Reference{}).Eval(e, src)
			for _, w := range workerCounts {
				eng := &Engine{Workers: w, ParallelThreshold: 1}
				phys, physErr := eng.Eval(e, src)
				if (refErr == nil) != (physErr == nil) {
					t.Fatalf("round %d workers=%d: evaluators disagree on errors for %s:\nreference: %v\nparallel:  %v",
						round, w, e, refErr, physErr)
				}
				if refErr != nil {
					continue
				}
				if !ref.Equal(phys) {
					t.Fatalf("round %d workers=%d: parallel engine changed bag semantics of %s:\nreference: %s\nparallel:  %s",
						round, w, e, ref, phys)
				}
			}
			if refErr != nil {
				errored++
				continue
			}
			checked++
		}
	}
	if checked < 60 {
		t.Errorf("only %d random expressions evaluated cleanly (%d errored); generator too error-prone", checked, errored)
	}
}

// skewedRelation builds a relation whose keys and multiplicities are heavily
// skewed: a handful of hot tuples carry most of the occurrences (a crude Zipf
// shape).  Under the static one-slice-per-worker scheduler such data
// concentrates work in one hash range; the morsel scheduler must stay exact
// while it rebalances.
func skewedRelation(rng *rand.Rand, name string, tuples int) *multiset.Relation {
	s := schema.NewRelation(name,
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindInt},
	)
	r := multiset.New(s)
	for i := 0; i < tuples; i++ {
		// Key 0 absorbs roughly half the draws, key 1 a quarter, and so on.
		key := 0
		for key < 4 && rng.Intn(2) == 0 {
			key++
		}
		mult := uint64(1)
		if key == 0 {
			mult = uint64(1 + rng.Intn(50)) // hot tuples are also heavy
		}
		r.Add(tuple.Ints(int64(key), int64(rng.Intn(3))), mult)
	}
	return r
}

// TestPropertyMorselStealingUnderSkew is the morsel-scheduler oracle: for
// skewed random databases, the parallel engine with forced exchanges, tiny
// morsels, and tiny emit batches must produce exactly the Reference
// evaluator's multi-set at workers 1, 2, 4 and 8 — for the batched-emit
// pipeline shapes, for the shared-build hash join, and for the parallel
// blocking set operators Difference and Intersect.  Tiny morsels force many
// steal rounds even on small inputs; tiny batches force flushes at every
// boundary.  Run with -race to check the queue and the shared build table.
func TestPropertyMorselStealingUnderSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(4994))
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(1)))
	e1, e2 := algebra.NewRel("e1"), algebra.NewRel("e2")
	exprs := []algebra.Expr{
		// Batched-emit pipelines.
		algebra.NewProject([]int{1}, algebra.NewSelect(pred, e1)),
		algebra.NewSelect(pred, algebra.NewUnion(e1, e2)),
		algebra.NewExtProject(
			[]scalar.Expr{scalar.NewArith(value.OpAdd, scalar.NewAttr(0), scalar.NewAttr(1))}, nil, e1),
		// Shared-build join probing the skewed side.
		algebra.NewJoin(scalar.Eq(0, 2), e1, e2),
		// Parallel blocking set operators.
		algebra.NewDifference(e1, e2),
		algebra.NewIntersect(e1, e2),
		algebra.NewDifference(algebra.NewSelect(pred, e1), algebra.NewProject([]int{0, 1}, e2)),
		// Two-phase aggregation over the hot keys: grouped single- and
		// multi-aggregate, and global aggregates (parallel via partial-state
		// merging), all pre-aggregated morsel-wise per worker.
		algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, e1),
		algebra.NewGroupByMulti([]int{0}, []algebra.AggSpec{
			{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggSum, Col: 1},
			{Fn: algebra.AggMin, Col: 1}, {Fn: algebra.AggMax, Col: 1},
		}, e1),
		algebra.NewGroupByMulti(nil, []algebra.AggSpec{
			{Fn: algebra.AggSum, Col: 1}, {Fn: algebra.AggAvg, Col: 0}, {Fn: algebra.AggMax, Col: 0},
		}, algebra.NewSelect(pred, e1)),
	}
	for round := 0; round < 25; round++ {
		src := MapSource{
			"e1": skewedRelation(rng, "e1", 40),
			"e2": skewedRelation(rng, "e2", 40),
		}
		for _, e := range exprs {
			ref, refErr := (Reference{}).Eval(e, src)
			for _, w := range []int{1, 2, 4, 8} {
				eng := &Engine{Workers: w, ParallelThreshold: 1, MorselSize: 1, BatchSize: 2}
				phys, physErr := eng.Eval(e, src)
				if (refErr == nil) != (physErr == nil) {
					t.Fatalf("round %d workers=%d: evaluators disagree on errors for %s:\nreference: %v\nparallel:  %v",
						round, w, e, refErr, physErr)
				}
				if refErr != nil {
					continue
				}
				if !ref.Equal(phys) {
					t.Fatalf("round %d workers=%d: morsel execution changed bag semantics of %s:\nreference: %s\nparallel:  %s",
						round, w, e, ref, phys)
				}
			}
		}
	}
}

// TestPropertyMultiAggregateParallel is the two-phase aggregation oracle: for
// random uniform and skewed databases, multi-aggregate grouped queries and
// global (ungrouped) aggregates run through the parallel engine with forced
// exchanges and tiny morsels must produce exactly the Reference evaluator's
// multi-set at workers 1, 2, 4 and 8 — the workers pre-aggregate morsel-wise
// into partial states and the gang parent merges them, so a group spanning
// every worker must still finalise to the serial value.  The one-phase
// (key-partitioned) shape is pinned against the same oracle through the
// OnePhaseAgg knob.
func TestPropertyMultiAggregateParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(3441))
	e1 := algebra.NewRel("e1")
	exprs := []algebra.Expr{
		algebra.NewGroupByMulti([]int{0}, []algebra.AggSpec{
			{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggSum, Col: 1},
			{Fn: algebra.AggAvg, Col: 1}, {Fn: algebra.AggMin, Col: 1}, {Fn: algebra.AggMax, Col: 1},
		}, e1),
		algebra.NewGroupByMulti([]int{1, 0}, []algebra.AggSpec{
			{Fn: algebra.AggSum, Col: 0}, {Fn: algebra.AggCount, Col: 1},
		}, e1),
		algebra.NewGroupByMulti(nil, []algebra.AggSpec{
			{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggSum, Col: 1},
			{Fn: algebra.AggAvg, Col: 0}, {Fn: algebra.AggMin, Col: 1}, {Fn: algebra.AggMax, Col: 0},
		}, e1),
		// Aggregation above a pipeline, so the morsel partitions sit below a
		// filter whose selectivity varies per round (and may empty the input,
		// exercising the empty-group global path).
		algebra.NewGroupByMulti(nil, []algebra.AggSpec{
			{Fn: algebra.AggAvg, Col: 1}, {Fn: algebra.AggMax, Col: 1},
		}, algebra.NewSelect(
			scalar.NewCompare(value.CmpGe, scalar.NewAttr(0), scalar.NewConst(value.NewInt(3))), e1)),
	}
	for round := 0; round < 25; round++ {
		var src MapSource
		if round%2 == 0 {
			src = MapSource{"e1": skewedRelation(rng, "e1", 40)}
		} else {
			src = MapSource{"e1": randomRelationN(rng, "e1", 2, 20, 6)}
		}
		for _, e := range exprs {
			ref, refErr := (Reference{}).Eval(e, src)
			for _, w := range []int{1, 2, 4, 8} {
				for _, onePhase := range []bool{false, true} {
					eng := &Engine{Workers: w, ParallelThreshold: 1, MorselSize: 1, BatchSize: 2, OnePhaseAgg: onePhase}
					phys, physErr := eng.Eval(e, src)
					if (refErr == nil) != (physErr == nil) {
						t.Fatalf("round %d workers=%d onePhase=%v: evaluators disagree on errors for %s:\nreference: %v\nparallel:  %v",
							round, w, onePhase, e, refErr, physErr)
					}
					if refErr != nil {
						continue
					}
					if !ref.Equal(phys) {
						t.Fatalf("round %d workers=%d onePhase=%v: parallel aggregation changed bag semantics of %s:\nreference: %s\nparallel:  %s",
							round, w, onePhase, e, ref, phys)
					}
				}
			}
		}
	}
}

// TestPropertyColumnarAdversarialSizes is the columnar-batch oracle at the
// batch sizes that stress every selection-vector edge: BatchSize 1 makes each
// batch a single physical row (a filter leaves it fully live or fully dead),
// BatchSize 2 forces partial selections, and MorselSize 1 makes every morsel a
// boundary.  The suite pins three engine configurations against Reference on
// skewed data — hot tuples recur across many chunks, so the same tuple appears
// repeatedly within and across batches:
//
//   - SerialBatches: the serial batch-native columnar loops (no gang noise);
//   - the parallel columnar default at workers 2, 4 and 8, with
//     BuildParallelThreshold 1 so eligible hash joins also exercise the
//     morsel-parallel gang build;
//   - RowBatches: the legacy row-at-a-time batch loops, pinning the A/B
//     baseline the benchmarks compare against.
//
// Run with -race to check the shared build table and the gang build merge.
func TestPropertyColumnarAdversarialSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7117))
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(1)))
	e1, e2 := algebra.NewRel("e1"), algebra.NewRel("e2")
	exprs := []algebra.Expr{
		// Vectorised filter kernels above and below projections.
		algebra.NewProject([]int{1}, algebra.NewSelect(pred, e1)),
		algebra.NewSelect(pred, algebra.NewProject([]int{1, 0}, e1)),
		// A conjunction compiling to two kernels, and a predicate shape the
		// kernel compiler rejects (attr-attr arithmetic inside the compare),
		// exercising the row-wise fallback that still produces selections.
		algebra.NewSelect(scalar.NewAnd(pred,
			scalar.NewCompare(value.CmpLt, scalar.NewAttr(0), scalar.NewConst(value.NewInt(3)))), e1),
		algebra.NewSelect(scalar.NewCompare(value.CmpLe,
			scalar.NewArith(value.OpAdd, scalar.NewAttr(0), scalar.NewAttr(1)),
			scalar.NewConst(value.NewInt(4))), e1),
		// Extended projection evaluating expressions per live row.
		algebra.NewExtProject(
			[]scalar.Expr{scalar.NewArith(value.OpMul, scalar.NewAttr(0), scalar.NewAttr(1))}, nil, e1),
		// Columnar join probe over a selection, with the gang build eligible.
		algebra.NewJoin(scalar.Eq(0, 2), algebra.NewSelect(pred, e1), e2),
		// Columnar aggregate update above a filter.
		algebra.NewGroupByMulti([]int{0}, []algebra.AggSpec{
			{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggSum, Col: 1},
			{Fn: algebra.AggMin, Col: 1}, {Fn: algebra.AggMax, Col: 1},
		}, algebra.NewSelect(pred, e1)),
	}
	for round := 0; round < 15; round++ {
		src := MapSource{
			"e1": skewedRelation(rng, "e1", 40),
			"e2": skewedRelation(rng, "e2", 40),
		}
		for _, e := range exprs {
			ref, refErr := (Reference{}).Eval(e, src)
			for _, bs := range []int{1, 2} {
				engines := []*Engine{
					{Workers: 1, SerialBatches: true, BatchSize: bs},
					{Workers: 1, SerialBatches: true, RowBatches: true, BatchSize: bs},
					{Workers: 2, ParallelThreshold: 1, MorselSize: 1, BatchSize: bs, BuildParallelThreshold: 1},
					{Workers: 4, ParallelThreshold: 1, MorselSize: 1, BatchSize: bs, BuildParallelThreshold: 1},
					{Workers: 8, ParallelThreshold: 1, MorselSize: 1, BatchSize: bs},
					{Workers: 4, ParallelThreshold: 1, MorselSize: 1, BatchSize: bs, RowBatches: true},
				}
				for _, eng := range engines {
					phys, physErr := eng.Eval(e, src)
					if (refErr == nil) != (physErr == nil) {
						t.Fatalf("round %d workers=%d batch=%d rows=%v: evaluators disagree on errors for %s:\nreference: %v\ncolumnar:  %v",
							round, eng.Workers, bs, eng.RowBatches, e, refErr, physErr)
					}
					if refErr != nil {
						continue
					}
					if !ref.Equal(phys) {
						t.Fatalf("round %d workers=%d batch=%d rows=%v: columnar execution changed bag semantics of %s:\nreference: %s\ncolumnar:  %s",
							round, eng.Workers, bs, eng.RowBatches, e, ref, phys)
					}
				}
			}
		}
	}
}

// TestEmptyInputAggregatesParallel pins Definition 3.3's partiality under the
// parallel runtime: AVG, MIN and MAX over an empty input must fail with
// ErrEmptyAggregate at every worker count (the merged partial states of an
// empty gang finalise to the same error the serial path raises), while CNT
// and SUM still yield 0.
func TestEmptyInputAggregatesParallel(t *testing.T) {
	empty := MapSource{"e": multiset.New(schema.NewRelation("e",
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindInt},
	))}
	for _, w := range []int{1, 2, 4, 8} {
		eng := &Engine{Workers: w, ParallelThreshold: 1, MorselSize: 1, BatchSize: 2}
		for _, fn := range []algebra.Aggregate{algebra.AggAvg, algebra.AggMin, algebra.AggMax} {
			if _, err := eng.Eval(algebra.NewGroupBy(nil, fn, 0, algebra.NewRel("e")), empty); !errors.Is(err, ErrEmptyAggregate) {
				t.Errorf("workers=%d: global %s over empty input = %v, want ErrEmptyAggregate", w, fn, err)
			}
		}
		// A multi-aggregate list fails as soon as one member is undefined.
		multi := algebra.NewGroupByMulti(nil, []algebra.AggSpec{
			{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggAvg, Col: 1},
		}, algebra.NewRel("e"))
		if _, err := eng.Eval(multi, empty); !errors.Is(err, ErrEmptyAggregate) {
			t.Errorf("workers=%d: multi-aggregate over empty input = %v, want ErrEmptyAggregate", w, err)
		}
		counts, err := eng.Eval(algebra.NewGroupByMulti(nil, []algebra.AggSpec{
			{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggSum, Col: 1},
		}, algebra.NewRel("e")), empty)
		if err != nil {
			t.Fatalf("workers=%d: CNT/SUM over empty input: %v", w, err)
		}
		if !counts.Contains(tuple.Ints(0, 0)) {
			t.Errorf("workers=%d: CNT/SUM over empty input = %s, want (0, 0)", w, counts)
		}
	}
}
