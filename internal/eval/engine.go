package eval

import (
	"fmt"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/scalar"
	"mra/internal/tuple"
	"mra/internal/value"
)

// Engine is the physical evaluator.  It produces exactly the same multi-sets
// as Reference but uses hash-based physical operators where the expression
// shape allows it:
//
//   - equi-join conditions are executed as hash joins instead of filtered
//     Cartesian products;
//   - selections directly above a product are fused into a join;
//   - group-by and duplicate elimination are single-pass hash operators.
//
// Stats, when enabled, records per-operator intermediate result sizes; the
// benchmarks for the paper's Example 3.2 use them to show the effect of
// projection push-in on intermediate result cardinality.
type Engine struct {
	// CollectStats enables intermediate-size accounting in Stats.
	CollectStats bool
	// Stats accumulates the number of tuples produced by each operator kind
	// since the last Reset.
	Stats Stats
}

// Stats aggregates intermediate result sizes, counting duplicates.
type Stats struct {
	// IntermediateTuples is the total number of tuples (counting
	// multiplicities) produced by all non-leaf operators.
	IntermediateTuples uint64
	// PeakRelationTuples is the largest single intermediate relation seen.
	PeakRelationTuples uint64
	// Operators counts evaluated operator nodes.
	Operators int
}

// Reset clears the collected statistics.
func (e *Engine) Reset() { e.Stats = Stats{} }

func (e *Engine) record(r *multiset.Relation) *multiset.Relation {
	if e.CollectStats {
		e.Stats.Operators++
		card := r.Cardinality()
		e.Stats.IntermediateTuples += card
		if card > e.Stats.PeakRelationTuples {
			e.Stats.PeakRelationTuples = card
		}
	}
	return r
}

// Eval evaluates the expression against the source using physical operators.
func (e *Engine) Eval(expr algebra.Expr, src Source) (*multiset.Relation, error) {
	switch n := expr.(type) {
	case algebra.Rel:
		r, err := lookup(src, n.Name)
		if err != nil {
			return nil, err
		}
		return r.Clone(), nil

	case algebra.Literal:
		return refEval(n, src)

	case algebra.Union:
		l, r, err := e.evalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		out, err := multiset.Union(l, r)
		if err != nil {
			return nil, err
		}
		return e.record(out), nil

	case algebra.Difference:
		l, r, err := e.evalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		out, err := multiset.Difference(l, r)
		if err != nil {
			return nil, err
		}
		return e.record(out), nil

	case algebra.Intersect:
		l, r, err := e.evalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		out, err := multiset.Intersection(l, r)
		if err != nil {
			return nil, err
		}
		return e.record(out), nil

	case algebra.Product:
		l, r, err := e.evalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		return e.record(multiset.Product(l, r)), nil

	case algebra.Select:
		// σφ(E1 × E2) is a join in disguise: execute it as one so equi-join
		// conditions benefit from hashing (Theorem 3.1 read right-to-left).
		if prod, ok := n.Input.(algebra.Product); ok {
			return e.evalJoin(n.Cond, prod.Left, prod.Right, src)
		}
		return e.evalFused(n, src)

	case algebra.Project:
		return e.evalFused(n, src)

	case algebra.Join:
		return e.evalJoin(n.Cond, n.Left, n.Right, src)

	case algebra.ExtProject:
		in, err := e.Eval(n.Input, src)
		if err != nil {
			return nil, err
		}
		outSchema, err := n.Schema(CatalogOf(src))
		if err != nil {
			return nil, err
		}
		out, err := multiset.Map(in, outSchema, func(t tuple.Tuple) (tuple.Tuple, error) {
			vals := make([]value.Value, len(n.Items))
			for i, item := range n.Items {
				v, err := item.Eval(t)
				if err != nil {
					return tuple.Tuple{}, err
				}
				vals[i] = v
			}
			return tuple.FromSlice(vals), nil
		})
		if err != nil {
			return nil, err
		}
		return e.record(out), nil

	case algebra.Unique:
		in, err := e.Eval(n.Input, src)
		if err != nil {
			return nil, err
		}
		return e.record(multiset.Unique(in)), nil

	case algebra.GroupBy:
		in, err := e.Eval(n.Input, src)
		if err != nil {
			return nil, err
		}
		outSchema, err := n.Schema(CatalogOf(src))
		if err != nil {
			return nil, err
		}
		out, err := refGroupBy(n, in, outSchema)
		if err != nil {
			return nil, err
		}
		return e.record(out), nil

	case algebra.TClose:
		in, err := e.Eval(n.Input, src)
		if err != nil {
			return nil, err
		}
		return e.record(transitiveClosure(in)), nil

	default:
		return nil, fmt.Errorf("eval: unsupported expression %T", expr)
	}
}

func (e *Engine) evalPair(a, b algebra.Expr, src Source) (*multiset.Relation, *multiset.Relation, error) {
	l, err := e.Eval(a, src)
	if err != nil {
		return nil, nil, err
	}
	r, err := e.Eval(b, src)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

// equiCols extracts from a join condition the pairs of attribute positions
// (left input position, right input position) connected by top-level equality
// conjuncts, plus the residual conjuncts that still need per-pair evaluation.
// leftArity is the arity of the left operand; positions ≥ leftArity address
// the right operand in the concatenated schema.
func equiCols(cond scalar.Predicate, leftArity int) (leftCols, rightCols []int, residual []scalar.Predicate) {
	for _, c := range scalar.Conjuncts(cond) {
		cmp, ok := c.(scalar.Compare)
		if !ok || cmp.Op != value.CmpEq {
			residual = append(residual, c)
			continue
		}
		la, lok := cmp.Left.(scalar.Attr)
		ra, rok := cmp.Right.(scalar.Attr)
		if !lok || !rok {
			residual = append(residual, c)
			continue
		}
		switch {
		case la.Index < leftArity && ra.Index >= leftArity:
			leftCols = append(leftCols, la.Index)
			rightCols = append(rightCols, ra.Index-leftArity)
		case ra.Index < leftArity && la.Index >= leftArity:
			leftCols = append(leftCols, ra.Index)
			rightCols = append(rightCols, la.Index-leftArity)
		default:
			residual = append(residual, c)
		}
	}
	return leftCols, rightCols, residual
}

// equalOn reports pairwise equality of a's attributes at acols with b's
// attributes at bcols.  It is the collision check of the hash join: two
// tuples land in the same bucket iff their join-column hashes agree, and
// equalOn separates true matches from hash collisions.
func equalOn(a tuple.Tuple, acols []int, b tuple.Tuple, bcols []int) bool {
	for k := range acols {
		if !a.At(acols[k]).Equal(b.At(bcols[k])) {
			return false
		}
	}
	return true
}

// evalJoin executes E1 ⋈φ E2.  When φ contains equality conjuncts linking the
// two sides it builds a hash table on the smaller side's join columns
// (indexed by tuple.HashOn, resolved by positional equality) and probes with
// the other side; otherwise it falls back to the nested-loop
// product-then-filter of the definition.
func (e *Engine) evalJoin(cond scalar.Predicate, left, right algebra.Expr, src Source) (*multiset.Relation, error) {
	l, r, err := e.evalPair(left, right, src)
	if err != nil {
		return nil, err
	}
	outSchema := l.Schema().Concat(r.Schema())
	// An empty side makes the join empty: skip hashing and scanning entirely.
	if l.IsEmpty() || r.IsEmpty() {
		return e.record(multiset.New(outSchema)), nil
	}
	leftCols, rightCols, residual := equiCols(cond, l.Schema().Arity())

	if len(leftCols) == 0 {
		// No hashable conjunct: nested-loop join.
		out := multiset.New(outSchema)
		var loopErr error
		l.Each(func(lt tuple.Tuple, lc uint64) bool {
			r.Each(func(rt tuple.Tuple, rc uint64) bool {
				joined := lt.Concat(rt)
				ok, err := cond.Holds(joined)
				if err != nil {
					loopErr = err
					return false
				}
				if ok {
					out.Add(joined, lc*rc)
				}
				return true
			})
			return loopErr == nil
		})
		if loopErr != nil {
			return nil, loopErr
		}
		return e.record(out), nil
	}

	// Hash join: build on the side with fewer distinct tuples, probe with the
	// other.  The build table is a flat node arena with collision chains
	// headed by a hash index, so neither phase allocates per-tuple keys.
	build, probe := r, l
	buildCols, probeCols := rightCols, leftCols
	buildIsLeft := false
	if l.DistinctCount() < r.DistinctCount() {
		build, probe = l, r
		buildCols, probeCols = leftCols, rightCols
		buildIsLeft = true
	}

	type node struct {
		tup   tuple.Tuple
		count uint64
		next  int32
	}
	nodes := make([]node, 0, build.DistinctCount())
	index := make(map[uint64]int32, build.DistinctCount())
	build.Each(func(bt tuple.Tuple, bc uint64) bool {
		h := bt.HashOn(buildCols)
		head, ok := index[h]
		if !ok {
			head = -1
		}
		index[h] = int32(len(nodes))
		nodes = append(nodes, node{tup: bt, count: bc, next: head})
		return true
	})

	residualPred := scalar.NewAnd(residual...)
	out := multiset.NewWithCapacity(outSchema, probe.DistinctCount())
	var probeErr error
	probe.Each(func(pt tuple.Tuple, pc uint64) bool {
		head, ok := index[pt.HashOn(probeCols)]
		if !ok {
			return true
		}
		for i := head; i != -1; i = nodes[i].next {
			bt := nodes[i].tup
			if !equalOn(pt, probeCols, bt, buildCols) {
				continue
			}
			var joined tuple.Tuple
			if buildIsLeft {
				joined = bt.Concat(pt)
			} else {
				joined = pt.Concat(bt)
			}
			if len(residual) > 0 {
				ok, err := residualPred.Holds(joined)
				if err != nil {
					probeErr = err
					return false
				}
				if !ok {
					continue
				}
			}
			out.Add(joined, pc*nodes[i].count)
		}
		return true
	})
	if probeErr != nil {
		return nil, probeErr
	}
	return e.record(out), nil
}

// fusedStage is one per-tuple step of a fused select/project pipeline: a
// predicate filter when pred is non-nil, a positional projection otherwise.
type fusedStage struct {
	pred scalar.Predicate
	cols []int
}

// evalFused collapses a chain of Select and Project operators into a single
// pass over the innermost input, so cascades like σ(σ(E)), π(σ(E)) and
// π(π(E)) — the shapes the Theorem 3.2 rewrites produce — never materialise
// intermediate relations.  A σ directly above a product is left to evalJoin.
func (e *Engine) evalFused(expr algebra.Expr, src Source) (*multiset.Relation, error) {
	var stages []fusedStage // outermost first
	cur := expr
walk:
	for {
		switch n := cur.(type) {
		case algebra.Select:
			if _, isProduct := n.Input.(algebra.Product); isProduct {
				break walk
			}
			stages = append(stages, fusedStage{pred: n.Cond})
			cur = n.Input
		case algebra.Project:
			stages = append(stages, fusedStage{cols: n.Columns})
			cur = n.Input
		default:
			break walk
		}
	}
	in, err := e.Eval(cur, src)
	if err != nil {
		return nil, err
	}
	// Fold the input schema through the projection stages, innermost first,
	// to obtain the output schema.
	outSchema := in.Schema()
	for i := len(stages) - 1; i >= 0; i-- {
		if stages[i].pred == nil {
			outSchema, err = outSchema.Project(stages[i].cols)
			if err != nil {
				return nil, err
			}
		}
	}
	out := multiset.NewWithCapacity(outSchema, in.DistinctCount())
	var iterErr error
	in.Each(func(t tuple.Tuple, count uint64) bool {
		for i := len(stages) - 1; i >= 0; i-- {
			st := &stages[i]
			if st.pred != nil {
				ok, err := st.pred.Holds(t)
				if err != nil {
					iterErr = err
					return false
				}
				if !ok {
					return true
				}
			} else {
				p, err := t.Project(st.cols)
				if err != nil {
					iterErr = err
					return false
				}
				t = p
			}
		}
		out.Add(t, count)
		return true
	})
	if iterErr != nil {
		return nil, iterErr
	}
	return e.record(out), nil
}
