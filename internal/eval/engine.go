package eval

import (
	"context"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/plan"
	"mra/internal/tuple"
)

// Engine is the physical evaluator.  It produces exactly the same multi-sets
// as Reference but runs through the physical layer: every expression is
// compiled by plan.Planner into a tree of streaming physical operators (hash
// join, hash aggregate, fused σ/π pipelines) and executed against the source.
// All physical decisions — join strategy, build side, operator pipelining —
// are made by the planner from the cost model's cardinality estimates; the
// engine itself only wires source cardinalities and statistics through.
//
// Stats, when enabled, records per-physical-operator emission and
// materialisation counts; the benchmarks for the paper's Example 3.2 use them
// to show the effect of projection push-in on intermediate result
// cardinality.
type Engine struct {
	// CollectStats enables per-operator accounting in Stats.
	CollectStats bool
	// Stats accumulates execution statistics since the last Reset.
	Stats Stats
	// Workers is the parallelism degree handed to the planner: above 1 the
	// planner wraps eligible shapes in Partition/Merge exchanges and the plan
	// executes on the partitioned parallel runtime of internal/exec.  At or
	// below 1 (including the zero value) plans stay serial.
	Workers int
	// ParallelThreshold overrides the planner's default estimated-cardinality
	// threshold for inserting exchanges; zero keeps the default.  Tests use it
	// to force parallel plans on small inputs.
	ParallelThreshold float64
	// MorselSize overrides the cost model's morsel sizing for parallel scans;
	// zero lets the planner size morsels per scan.  Tests use tiny sizes to
	// force many steal rounds on small inputs.
	MorselSize int
	// BatchSize overrides the emit batch size of compiled plans; zero keeps
	// the default.  Tests use tiny sizes to force batch boundaries.
	BatchSize int
	// MemoryLimit bounds, in bytes, the operator-internal state one evaluation
	// may hold (hash-join builds, group tables, sorts); evaluations exceeding
	// it fail with an error wrapping plan.ErrMemoryBudget.  Zero disables
	// enforcement.
	MemoryLimit int64
	// StaticSlices reverts parallel scan scheduling to the legacy
	// one-static-slice-per-worker split, for benchmarking the morsel
	// scheduler against its baseline.
	StaticSlices bool
	// OnePhaseAgg reverts parallel grouped aggregation to the legacy
	// one-phase key-partitioned shape, for benchmarking the two-phase
	// partial/merge aggregate against its baseline.
	OnePhaseAgg bool
	// SerialBatches forces serial plans onto the batch-native columnar
	// operator loops that parallel plans use, for benchmarking and testing the
	// columnar path without gang scheduling noise.
	SerialBatches bool
	// RowBatches reverts batch-native operators to the legacy row-at-a-time
	// tuple-batch loops, for benchmarking the columnar kernels against their
	// baseline.
	RowBatches bool
	// BuildParallelThreshold overrides the estimated build-side cardinality
	// above which parallel plans build hash-join tables with a worker gang;
	// zero keeps the cost model's default.
	BuildParallelThreshold float64
	// NoJoinReorder pins multi-join queries to their written evaluation order
	// by disabling the planner's cost-based join-order enumerator — the A/B
	// baseline of the E13 multi-join bench series.
	NoJoinReorder bool
}

// Stats aggregates intermediate result sizes per physical operator, counting
// duplicates.
type Stats = plan.Stats

// Reset clears the collected statistics.
func (e *Engine) Reset() { e.Stats = Stats{} }

// planner builds the engine's configured planner for a source.
func (e *Engine) planner(src Source) *plan.Planner {
	return &plan.Planner{
		Cards:             Cardinalities(src),
		Workers:           e.Workers,
		ParallelThreshold: e.ParallelThreshold,
		MorselSize:        e.MorselSize,
		BatchSize:         e.BatchSize,
		MemoryLimit:       e.MemoryLimit,
		StaticSlices:      e.StaticSlices,
		OnePhaseAgg:       e.OnePhaseAgg,
		SerialBatches:     e.SerialBatches,
		RowBatches:        e.RowBatches,
		NoJoinReorder:     e.NoJoinReorder,

		BuildParallelThreshold: e.BuildParallelThreshold,
	}
}

// Eval compiles the expression into a physical plan and executes it against
// the source.
func (e *Engine) Eval(expr algebra.Expr, src Source) (*multiset.Relation, error) {
	return e.EvalContext(context.Background(), expr, src)
}

// EvalContext is Eval under a lifecycle context: execution polls ctx at
// amortised checkpoints and aborts with ctx.Err() once it is cancelled or past
// its deadline.  A Background context adds no cost over Eval.
func (e *Engine) EvalContext(ctx context.Context, expr algebra.Expr, src Source) (*multiset.Relation, error) {
	p, err := e.planner(src).Plan(expr, CatalogOf(src))
	if err != nil {
		return nil, err
	}
	if e.CollectStats {
		return p.ExecuteStatsContext(ctx, src, &e.Stats)
	}
	return p.ExecuteContext(ctx, src)
}

// EvalOrdered compiles the expression into a physical plan rooted at a Sort
// operator over the given keys and executes it, returning the occurrences in
// sort order alongside the result relation.  It serves the presentation path
// of SQL ORDER BY: relations stay unordered, the order lives only in the
// returned slice.
func (e *Engine) EvalOrdered(expr algebra.Expr, src Source, keys []plan.SortKey) ([]tuple.Tuple, *multiset.Relation, error) {
	return e.EvalOrderedContext(context.Background(), expr, src, keys)
}

// EvalOrderedContext is EvalOrdered under a lifecycle context (see
// EvalContext).
func (e *Engine) EvalOrderedContext(ctx context.Context, expr algebra.Expr, src Source, keys []plan.SortKey) ([]tuple.Tuple, *multiset.Relation, error) {
	p, err := e.planner(src).PlanOrdered(expr, CatalogOf(src), keys)
	if err != nil {
		return nil, nil, err
	}
	if e.CollectStats {
		return p.ExecuteOrderedContext(ctx, src, &e.Stats)
	}
	return p.ExecuteOrderedContext(ctx, src, nil)
}
