package eval

import (
	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/plan"
)

// Engine is the physical evaluator.  It produces exactly the same multi-sets
// as Reference but runs through the physical layer: every expression is
// compiled by plan.Planner into a tree of streaming physical operators (hash
// join, hash aggregate, fused σ/π pipelines) and executed against the source.
// All physical decisions — join strategy, build side, operator pipelining —
// are made by the planner from the cost model's cardinality estimates; the
// engine itself only wires source cardinalities and statistics through.
//
// Stats, when enabled, records per-physical-operator emission and
// materialisation counts; the benchmarks for the paper's Example 3.2 use them
// to show the effect of projection push-in on intermediate result
// cardinality.
type Engine struct {
	// CollectStats enables per-operator accounting in Stats.
	CollectStats bool
	// Stats accumulates execution statistics since the last Reset.
	Stats Stats
}

// Stats aggregates intermediate result sizes per physical operator, counting
// duplicates.
type Stats = plan.Stats

// Reset clears the collected statistics.
func (e *Engine) Reset() { e.Stats = Stats{} }

// Eval compiles the expression into a physical plan and executes it against
// the source.
func (e *Engine) Eval(expr algebra.Expr, src Source) (*multiset.Relation, error) {
	p, err := plan.NewPlanner(Cardinalities(src)).Plan(expr, CatalogOf(src))
	if err != nil {
		return nil, err
	}
	if e.CollectStats {
		return p.ExecuteStats(src, &e.Stats)
	}
	return p.Execute(src)
}
