package eval

import (
	"fmt"
	"math"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/plan"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// ErrEmptyAggregate is returned when AVG, MIN or MAX is applied to an empty
// multi-set.  The paper defines these aggregate functions as partial
// functions, undefined on empty inputs (Definition 3.3).  The sentinel lives
// in package plan; this alias keeps the historic eval-side name and makes
// errors.Is work across both evaluators.
var ErrEmptyAggregate = plan.ErrEmptyAggregate

// refChunk is one distinct tuple of a group with its multiplicity.
type refChunk struct {
	tup   tuple.Tuple
	count uint64
}

// refGroupBy evaluates Γ_{α,(f,p)…}(E) literally per Definitions 3.3/3.4: the
// materialised input is partitioned by equality on the grouping attributes,
// and every aggregate is then computed by a fresh full pass over its group's
// chunks.  It deliberately shares no code with the physical layer's
// decomposable AggState (Add/MergePartial/Final), so the property tests pin
// the two-phase machinery against an independent oracle.  The accumulation
// scheme (exact int64 sums beside a float64 sum, nulls counted by CNT but
// skipped by sums and extrema) mirrors the definitions the physical layer
// implements, so results agree bit for bit on the shared domains.
func refGroupBy(n algebra.GroupBy, in *multiset.Relation, outSchema schema.Relation) (*multiset.Relation, error) {
	type refGroup struct {
		key    tuple.Tuple
		chunks []refChunk
		next   int32
	}
	var groups []refGroup
	index := make(map[uint64]int32)
	var keyErr error
	in.Each(func(t tuple.Tuple, count uint64) bool {
		key, err := t.Project(n.GroupCols)
		if err != nil {
			keyErr = err
			return false
		}
		h := key.Hash()
		head, ok := index[h]
		if !ok {
			head = -1
		}
		gi := int32(-1)
		for i := head; i != -1; i = groups[i].next {
			if groups[i].key.Equal(key) {
				gi = i
				break
			}
		}
		if gi == -1 {
			gi = int32(len(groups))
			index[h] = gi
			groups = append(groups, refGroup{key: key, next: head})
		}
		groups[gi].chunks = append(groups[gi].chunks, refChunk{tup: t, count: count})
		return true
	})
	if keyErr != nil {
		return nil, keyErr
	}

	out := multiset.New(outSchema)
	if len(n.GroupCols) == 0 {
		// A global aggregate always yields exactly one tuple, even on empty
		// input (where the partial aggregate functions fail).
		var chunks []refChunk
		if len(groups) > 0 {
			chunks = groups[0].chunks
		}
		vals := make([]value.Value, len(n.Aggs))
		for i, sp := range n.Aggs {
			v, err := refAggregate(sp.Fn, sp.Col, chunks)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		out.Add(tuple.FromSlice(vals), 1)
		return out, nil
	}
	for gi := range groups {
		vals := make([]value.Value, len(n.Aggs))
		for i, sp := range n.Aggs {
			v, err := refAggregate(sp.Fn, sp.Col, groups[gi].chunks)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		out.Add(groups[gi].key.Concat(tuple.FromSlice(vals)), 1)
	}
	return out, nil
}

// refAggregate computes one aggregate function over a group's chunks exactly
// as Definition 3.3 writes it.
func refAggregate(fn algebra.Aggregate, col int, chunks []refChunk) (value.Value, error) {
	switch fn {
	case algebra.AggCount:
		// CNT: Σ_x E(x), duplicates counted.
		var total uint64
		for _, c := range chunks {
			total += c.count
		}
		return value.NewInt(int64(total)), nil

	case algebra.AggSum, algebra.AggAvg:
		// SUM: Σ_x E(x)·x.p; AVG = SUM/CNT, undefined on empty inputs.  Float
		// addends accumulate with Neumaier compensation, matching the physical
		// layer's AggState term for term, so the oracle and the (possibly
		// re-associated) two-phase plans agree bit for bit.
		var isum int64
		var fsum, fcomp float64
		var count uint64
		fltIn := false
		for _, c := range chunks {
			count += c.count
			v := c.tup.At(col)
			switch v.Kind() {
			case value.KindInt:
				isum += v.Int() * int64(c.count)
			case value.KindFloat:
				x := v.Float() * float64(c.count)
				t := fsum + x
				if math.Abs(fsum) >= math.Abs(x) {
					fcomp += (fsum - t) + x
				} else {
					fcomp += (x - t) + fsum
				}
				fsum = t
				fltIn = true
			case value.KindNull:
				// Nulls contribute nothing to the sum; CNT still counts them.
			default:
				return value.Null, fmt.Errorf("eval: %s over non-numeric value %s", fn, v)
			}
		}
		if fn == algebra.AggSum {
			if fltIn {
				return value.NewFloat(fsum + fcomp + float64(isum)), nil
			}
			return value.NewInt(isum), nil
		}
		if count == 0 {
			return value.Null, ErrEmptyAggregate
		}
		return value.NewFloat((fsum + fcomp + float64(isum)) / float64(count)), nil

	case algebra.AggMin, algebra.AggMax:
		// MIN/MAX over the tuples with E(x) > 0; undefined when none (all
		// nulls count as none).
		var best value.Value
		seen := false
		for _, c := range chunks {
			v := c.tup.At(col)
			if v.IsNull() {
				continue
			}
			if !seen {
				best, seen = v, true
				continue
			}
			if fn == algebra.AggMin && v.Less(best) {
				best = v
			}
			if fn == algebra.AggMax && best.Less(v) {
				best = v
			}
		}
		if !seen {
			return value.Null, ErrEmptyAggregate
		}
		return best, nil

	default:
		return value.Null, fmt.Errorf("eval: unknown aggregate %v", fn)
	}
}
