package eval

import (
	"errors"
	"fmt"

	"mra/internal/algebra"
	"mra/internal/value"
)

// ErrEmptyAggregate is returned when AVG, MIN or MAX is applied to an empty
// multi-set.  The paper defines these aggregate functions as partial
// functions, undefined on empty inputs (Definition 3.3).
var ErrEmptyAggregate = errors.New("eval: aggregate undefined on an empty multi-set")

// aggState incrementally computes one of the paper's aggregate functions over
// a stream of (value, multiplicity) observations.
type aggState struct {
	agg   algebra.Aggregate
	count uint64
	isum  int64
	fsum  float64
	fltIn bool
	min   value.Value
	max   value.Value
	seen  bool
}

// add folds in one distinct tuple's attribute value with its multiplicity.
func (s *aggState) add(v value.Value, count uint64) error {
	s.count += count
	switch s.agg {
	case algebra.AggCount:
		return nil
	case algebra.AggSum, algebra.AggAvg:
		switch v.Kind() {
		case value.KindInt:
			s.isum += v.Int() * int64(count)
		case value.KindFloat:
			s.fsum += v.Float() * float64(count)
			s.fltIn = true
		case value.KindNull:
			// Nulls contribute nothing to sums; CNT above still counts them.
		default:
			return fmt.Errorf("eval: %s over non-numeric value %s", s.agg, v)
		}
		return nil
	case algebra.AggMin, algebra.AggMax:
		if v.IsNull() {
			return nil
		}
		if !s.seen {
			s.min, s.max, s.seen = v, v, true
			return nil
		}
		if v.Less(s.min) {
			s.min = v
		}
		if s.max.Less(v) {
			s.max = v
		}
		return nil
	default:
		return fmt.Errorf("eval: unknown aggregate %v", s.agg)
	}
}

// result returns the aggregate's value.  AVG, MIN and MAX fail on empty
// inputs per Definition 3.3.
func (s *aggState) result() (value.Value, error) {
	switch s.agg {
	case algebra.AggCount:
		return value.NewInt(int64(s.count)), nil
	case algebra.AggSum:
		if s.fltIn {
			return value.NewFloat(s.fsum + float64(s.isum)), nil
		}
		return value.NewInt(s.isum), nil
	case algebra.AggAvg:
		if s.count == 0 {
			return value.Null, ErrEmptyAggregate
		}
		return value.NewFloat((s.fsum + float64(s.isum)) / float64(s.count)), nil
	case algebra.AggMin:
		if !s.seen {
			return value.Null, ErrEmptyAggregate
		}
		return s.min, nil
	case algebra.AggMax:
		if !s.seen {
			return value.Null, ErrEmptyAggregate
		}
		return s.max, nil
	default:
		return value.Null, fmt.Errorf("eval: unknown aggregate %v", s.agg)
	}
}
