package eval

import "mra/internal/plan"

// ErrEmptyAggregate is returned when AVG, MIN or MAX is applied to an empty
// multi-set.  The paper defines these aggregate functions as partial
// functions, undefined on empty inputs (Definition 3.3).  The aggregate
// implementation lives in package plan; this alias keeps the historic
// eval-side name.
var ErrEmptyAggregate = plan.ErrEmptyAggregate
