package eval

import (
	"fmt"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/plan"
	"mra/internal/tuple"
	"mra/internal/value"
)

// Reference is the definition-literal evaluator: every operator is evaluated
// exactly as written in the paper's definitions, with no physical-operator
// shortcuts (joins go through the full Cartesian product, duplicate
// elimination scans the whole input, and so on).  It is deliberately naive —
// its job is to be an obviously-correct oracle for the physical Engine.
type Reference struct{}

// Eval evaluates the expression against the source and returns the resulting
// multi-set relation.
func (Reference) Eval(e algebra.Expr, src Source) (*multiset.Relation, error) {
	return refEval(e, src)
}

func refEval(e algebra.Expr, src Source) (*multiset.Relation, error) {
	switch n := e.(type) {
	case algebra.Rel:
		r, err := lookup(src, n.Name)
		if err != nil {
			return nil, err
		}
		return r.Clone(), nil

	case algebra.Literal:
		s, err := n.Schema(CatalogOf(src))
		if err != nil {
			return nil, err
		}
		out := multiset.New(s)
		for _, row := range n.Rows {
			out.Add(tuple.New(row...), 1)
		}
		return out, nil

	case algebra.Union:
		l, r, err := refEvalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		return multiset.Union(l, r)

	case algebra.Difference:
		l, r, err := refEvalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		return multiset.Difference(l, r)

	case algebra.Intersect:
		l, r, err := refEvalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		return multiset.Intersection(l, r)

	case algebra.Product:
		l, r, err := refEvalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		return multiset.Product(l, r), nil

	case algebra.Select:
		in, err := refEval(n.Input, src)
		if err != nil {
			return nil, err
		}
		return multiset.Select(in, n.Cond.Holds)

	case algebra.Project:
		in, err := refEval(n.Input, src)
		if err != nil {
			return nil, err
		}
		return multiset.Project(in, n.Columns)

	case algebra.Join:
		// Theorem 3.1: E1 ⋈φ E2 = σφ(E1 × E2).  The reference evaluator takes
		// the theorem literally.
		l, r, err := refEvalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		return multiset.Select(multiset.Product(l, r), n.Cond.Holds)

	case algebra.ExtProject:
		in, err := refEval(n.Input, src)
		if err != nil {
			return nil, err
		}
		outSchema, err := n.Schema(CatalogOf(src))
		if err != nil {
			return nil, err
		}
		return multiset.Map(in, outSchema, func(t tuple.Tuple) (tuple.Tuple, error) {
			vals := make([]value.Value, len(n.Items))
			for i, item := range n.Items {
				v, err := item.Eval(t)
				if err != nil {
					return tuple.Tuple{}, err
				}
				vals[i] = v
			}
			return tuple.FromSlice(vals), nil
		})

	case algebra.Unique:
		in, err := refEval(n.Input, src)
		if err != nil {
			return nil, err
		}
		return multiset.Unique(in), nil

	case algebra.GroupBy:
		in, err := refEval(n.Input, src)
		if err != nil {
			return nil, err
		}
		outSchema, err := n.Schema(CatalogOf(src))
		if err != nil {
			return nil, err
		}
		return refGroupBy(n, in, outSchema)

	case algebra.TClose:
		in, err := refEval(n.Input, src)
		if err != nil {
			return nil, err
		}
		return plan.TransitiveClosure(in), nil

	default:
		return nil, fmt.Errorf("eval: unsupported expression %T", e)
	}
}

func refEvalPair(a, b algebra.Expr, src Source) (*multiset.Relation, *multiset.Relation, error) {
	l, err := refEval(a, src)
	if err != nil {
		return nil, nil, err
	}
	r, err := refEval(b, src)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

// Group-by is evaluated by refGroupBy (aggregate.go), a definition-literal
// implementation independent of the physical layer's decomposable aggregate
// states, so the property tests pin the two-phase machinery against a naive
// oracle.  Transitive closure is shared with the physical layer
// (plan.TransitiveClosure): the set-level fixpoint has no decomposition to
// pin.
