package eval

import (
	"fmt"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// Reference is the definition-literal evaluator: every operator is evaluated
// exactly as written in the paper's definitions, with no physical-operator
// shortcuts (joins go through the full Cartesian product, duplicate
// elimination scans the whole input, and so on).  It is deliberately naive —
// its job is to be an obviously-correct oracle for the physical Engine.
type Reference struct{}

// Eval evaluates the expression against the source and returns the resulting
// multi-set relation.
func (Reference) Eval(e algebra.Expr, src Source) (*multiset.Relation, error) {
	return refEval(e, src)
}

func refEval(e algebra.Expr, src Source) (*multiset.Relation, error) {
	switch n := e.(type) {
	case algebra.Rel:
		r, err := lookup(src, n.Name)
		if err != nil {
			return nil, err
		}
		return r.Clone(), nil

	case algebra.Literal:
		s, err := n.Schema(CatalogOf(src))
		if err != nil {
			return nil, err
		}
		out := multiset.New(s)
		for _, row := range n.Rows {
			out.Add(tuple.New(row...), 1)
		}
		return out, nil

	case algebra.Union:
		l, r, err := refEvalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		return multiset.Union(l, r)

	case algebra.Difference:
		l, r, err := refEvalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		return multiset.Difference(l, r)

	case algebra.Intersect:
		l, r, err := refEvalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		return multiset.Intersection(l, r)

	case algebra.Product:
		l, r, err := refEvalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		return multiset.Product(l, r), nil

	case algebra.Select:
		in, err := refEval(n.Input, src)
		if err != nil {
			return nil, err
		}
		return multiset.Select(in, n.Cond.Holds)

	case algebra.Project:
		in, err := refEval(n.Input, src)
		if err != nil {
			return nil, err
		}
		return multiset.Project(in, n.Columns)

	case algebra.Join:
		// Theorem 3.1: E1 ⋈φ E2 = σφ(E1 × E2).  The reference evaluator takes
		// the theorem literally.
		l, r, err := refEvalPair(n.Left, n.Right, src)
		if err != nil {
			return nil, err
		}
		return multiset.Select(multiset.Product(l, r), n.Cond.Holds)

	case algebra.ExtProject:
		in, err := refEval(n.Input, src)
		if err != nil {
			return nil, err
		}
		outSchema, err := n.Schema(CatalogOf(src))
		if err != nil {
			return nil, err
		}
		return multiset.Map(in, outSchema, func(t tuple.Tuple) (tuple.Tuple, error) {
			vals := make([]value.Value, len(n.Items))
			for i, item := range n.Items {
				v, err := item.Eval(t)
				if err != nil {
					return tuple.Tuple{}, err
				}
				vals[i] = v
			}
			return tuple.FromSlice(vals), nil
		})

	case algebra.Unique:
		in, err := refEval(n.Input, src)
		if err != nil {
			return nil, err
		}
		return multiset.Unique(in), nil

	case algebra.GroupBy:
		in, err := refEval(n.Input, src)
		if err != nil {
			return nil, err
		}
		outSchema, err := n.Schema(CatalogOf(src))
		if err != nil {
			return nil, err
		}
		return refGroupBy(n, in, outSchema)

	case algebra.TClose:
		in, err := refEval(n.Input, src)
		if err != nil {
			return nil, err
		}
		return transitiveClosure(in), nil

	default:
		return nil, fmt.Errorf("eval: unsupported expression %T", e)
	}
}

func refEvalPair(a, b algebra.Expr, src Source) (*multiset.Relation, *multiset.Relation, error) {
	l, err := refEval(a, src)
	if err != nil {
		return nil, nil, err
	}
	r, err := refEval(b, src)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

// refGroupBy computes Γ_{α,f,p}(E) by partitioning the materialised input on
// the grouping attributes and folding the aggregate per partition
// (Definition 3.4).  Partitions live in a grouped hash table keyed by
// tuple.HashOn over the grouping columns with positional-equality collision
// chains — the same scheme the relation representation and the hash join use.
// With an empty α and an empty input, AVG/MIN/MAX are undefined (partial
// functions) and CNT/SUM yield a single zero tuple.
func refGroupBy(n algebra.GroupBy, in *multiset.Relation, outSchema schema.Relation) (*multiset.Relation, error) {
	type group struct {
		rep   tuple.Tuple
		state aggState
		next  int32
	}
	groups := make([]group, 0, 16)
	index := make(map[uint64]int32, 16)
	var iterErr error
	in.Each(func(t tuple.Tuple, count uint64) bool {
		h := t.HashOn(n.GroupCols)
		var g *group
		head, ok := index[h]
		if !ok {
			head = -1
		}
		for i := head; i != -1; i = groups[i].next {
			if equalOn(t, n.GroupCols, groups[i].rep, n.GroupCols) {
				g = &groups[i]
				break
			}
		}
		if g == nil {
			index[h] = int32(len(groups))
			groups = append(groups, group{rep: t, state: aggState{agg: n.Agg}, next: head})
			g = &groups[len(groups)-1]
		}
		if err := g.state.add(t.At(n.AggCol), count); err != nil {
			iterErr = err
			return false
		}
		return true
	})
	if iterErr != nil {
		return nil, iterErr
	}

	out := multiset.NewWithCapacity(outSchema, len(groups))
	if len(n.GroupCols) == 0 {
		// Global aggregate: exactly one output tuple.
		st := aggState{agg: n.Agg}
		if len(groups) > 0 {
			st = groups[0].state
		}
		v, err := st.result()
		if err != nil {
			return nil, err
		}
		out.Add(tuple.New(v), 1)
		return out, nil
	}

	for i := range groups {
		head, err := groups[i].rep.Project(n.GroupCols)
		if err != nil {
			return nil, err
		}
		v, err := groups[i].state.result()
		if err != nil {
			return nil, err
		}
		out.Add(head.Concat(tuple.New(v)), 1)
	}
	return out, nil
}

// transitiveClosure computes the smallest transitively closed relation
// containing δE via semi-naive fixpoint iteration.  The result is
// duplicate-free (closure is a set-level notion; Section 5 of the paper).
func transitiveClosure(in *multiset.Relation) *multiset.Relation {
	closure := multiset.Unique(in)
	// Successor lists indexed by the source value's hash, with Equal collision
	// chains, for the semi-naive step.
	type succChain struct {
		src  value.Value
		dsts []value.Value
	}
	succ := make(map[uint64][]succChain)
	successors := func(v value.Value) []value.Value {
		chains := succ[v.Hash()]
		for i := range chains {
			if chains[i].src.Equal(v) {
				return chains[i].dsts
			}
		}
		return nil
	}
	closure.Each(func(t tuple.Tuple, _ uint64) bool {
		src := t.At(0)
		h := src.Hash()
		chains := succ[h]
		found := false
		for i := range chains {
			if chains[i].src.Equal(src) {
				chains[i].dsts = append(chains[i].dsts, t.At(1))
				found = true
				break
			}
		}
		if !found {
			succ[h] = append(chains, succChain{src: src, dsts: []value.Value{t.At(1)}})
		}
		return true
	})
	delta := closure.Clone()
	for !delta.IsEmpty() {
		next := multiset.New(in.Schema())
		delta.Each(func(t tuple.Tuple, _ uint64) bool {
			for _, dst := range successors(t.At(1)) {
				candidate := tuple.New(t.At(0), dst)
				if !closure.Contains(candidate) {
					next.Add(candidate, 1)
				}
			}
			return true
		})
		next.Each(func(t tuple.Tuple, _ uint64) bool {
			closure.Add(t, 1)
			return true
		})
		delta = next
	}
	return closure
}
