package eval

import (
	"errors"
	"testing"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// beerSource builds the paper's running beer/brewery example database.  The
// data is chosen so that Example 3.1 produces duplicates: two Dutch breweries
// brew a beer called "pils".
func beerSource() MapSource {
	beer := multiset.New(schema.NewRelation("beer",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "brewery", Type: value.KindString},
		schema.Attribute{Name: "alcperc", Type: value.KindFloat},
	))
	add := func(r *multiset.Relation, vals ...value.Value) { r.Add(tuple.New(vals...), 1) }
	add(beer, value.NewString("pils"), value.NewString("guineken"), value.NewFloat(5.0))
	add(beer, value.NewString("pils"), value.NewString("brolsch"), value.NewFloat(5.2))
	add(beer, value.NewString("bock"), value.NewString("guineken"), value.NewFloat(6.5))
	add(beer, value.NewString("stout"), value.NewString("guinness"), value.NewFloat(4.2))
	add(beer, value.NewString("tripel"), value.NewString("westmalle"), value.NewFloat(9.5))

	brewery := multiset.New(schema.NewRelation("brewery",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "city", Type: value.KindString},
		schema.Attribute{Name: "country", Type: value.KindString},
	))
	add(brewery, value.NewString("guineken"), value.NewString("amsterdam"), value.NewString("netherlands"))
	add(brewery, value.NewString("brolsch"), value.NewString("enschede"), value.NewString("netherlands"))
	add(brewery, value.NewString("guinness"), value.NewString("dublin"), value.NewString("ireland"))
	add(brewery, value.NewString("westmalle"), value.NewString("malle"), value.NewString("belgium"))

	return MapSource{"beer": beer, "brewery": brewery}
}

// joinBeerBrewery is beer ⋈_{beer.brewery = brewery.name} brewery.
func joinBeerBrewery() algebra.Expr {
	return algebra.NewJoin(scalar.Eq(1, 3), algebra.NewRel("beer"), algebra.NewRel("brewery"))
}

// bothEvaluators runs the expression through Reference and Engine and checks
// they agree; it returns the Engine result.
func bothEvaluators(t *testing.T, e algebra.Expr, src Source) *multiset.Relation {
	t.Helper()
	ref, err := (Reference{}).Eval(e, src)
	if err != nil {
		t.Fatalf("reference eval: %v", err)
	}
	eng := &Engine{}
	phys, err := eng.Eval(e, src)
	if err != nil {
		t.Fatalf("physical eval: %v", err)
	}
	if !ref.Equal(phys) {
		t.Fatalf("evaluators disagree on %s:\nreference: %s\nphysical:  %s", e, ref, phys)
	}
	return phys
}

func TestMapSource(t *testing.T) {
	src := beerSource()
	if _, ok := src.Relation("BEER"); !ok {
		t.Error("case-insensitive source lookup")
	}
	if _, ok := src.Relation("wine"); ok {
		t.Error("unknown relation must miss")
	}
	cat := src.Catalog()
	if _, ok := cat.RelationSchema("brewery"); !ok {
		t.Error("catalog view of the source")
	}
	cat2 := CatalogOf(src)
	if _, ok := cat2.RelationSchema("beer"); !ok {
		t.Error("CatalogOf lookup")
	}
	if _, ok := cat2.RelationSchema("wine"); ok {
		t.Error("CatalogOf miss")
	}
}

func TestEvalRelAndLiteral(t *testing.T) {
	src := beerSource()
	r := bothEvaluators(t, algebra.NewRel("beer"), src)
	if r.Cardinality() != 5 {
		t.Errorf("beer cardinality = %d", r.Cardinality())
	}
	// Leaf evaluation clones: mutating the result must not change the source.
	r.Add(tuple.New(value.NewString("x"), value.NewString("y"), value.NewFloat(1)), 1)
	orig, _ := src.Relation("beer")
	if orig.Cardinality() != 5 {
		t.Error("evaluating a Rel must clone the stored relation")
	}

	lit := algebra.Literal{
		Rel: schema.Anonymous(schema.Attribute{Name: "n", Type: value.KindInt}),
		Rows: [][]value.Value{
			{value.NewInt(1)}, {value.NewInt(1)}, {value.NewInt(2)},
		},
	}
	l := bothEvaluators(t, lit, src)
	if l.Multiplicity(tuple.Ints(1)) != 2 || l.Multiplicity(tuple.Ints(2)) != 1 {
		t.Errorf("literal = %v", l)
	}

	if _, err := (Reference{}).Eval(algebra.NewRel("wine"), src); err == nil {
		t.Error("unknown relation must fail")
	}
	if _, err := (&Engine{}).Eval(algebra.NewRel("wine"), src); err == nil {
		t.Error("unknown relation must fail (engine)")
	}
}

func TestExample31BeerQuery(t *testing.T) {
	// π_name σ_{country='netherlands'} (beer ⋈ brewery): the multi-set of all
	// names of beers brewed in the Netherlands.  Duplicates are preserved:
	// "pils" is brewed by two Dutch breweries, so it appears twice.
	src := beerSource()
	expr := algebra.NewProject([]int{0},
		algebra.NewSelect(
			scalar.NewCompare(value.CmpEq, scalar.NewAttr(5), scalar.NewConst(value.NewString("netherlands"))),
			joinBeerBrewery()))
	res := bothEvaluators(t, expr, src)
	if res.Cardinality() != 3 {
		t.Fatalf("Example 3.1 cardinality = %d, want 3", res.Cardinality())
	}
	pils := tuple.New(value.NewString("pils"))
	bock := tuple.New(value.NewString("bock"))
	if res.Multiplicity(pils) != 2 {
		t.Errorf("pils multiplicity = %d, want 2 (bag semantics must keep duplicates)", res.Multiplicity(pils))
	}
	if res.Multiplicity(bock) != 1 {
		t.Errorf("bock multiplicity = %d, want 1", res.Multiplicity(bock))
	}
}

func TestExample32AverageByCountry(t *testing.T) {
	// Γ_{(country),AVG,alcperc}(beer ⋈ brewery), with and without the inner
	// projection π_{alcperc,country}.  Under bag semantics both forms agree.
	src := beerSource()
	direct := algebra.NewGroupBy([]int{5}, algebra.AggAvg, 2, joinBeerBrewery())
	pushed := algebra.NewGroupBy([]int{1}, algebra.AggAvg, 0,
		algebra.NewProject([]int{2, 5}, joinBeerBrewery()))

	d := bothEvaluators(t, direct, src)
	p := bothEvaluators(t, pushed, src)
	if !d.Equal(p) {
		t.Fatalf("projection push-in changed the result:\n%s\n%s", d, p)
	}
	// Netherlands average over {5.0, 5.2, 6.5} = 5.5666...
	var nlAvg float64
	found := false
	d.Each(func(tp tuple.Tuple, _ uint64) bool {
		if tp.At(0).Str() == "netherlands" {
			nlAvg = tp.At(1).Float()
			found = true
		}
		return true
	})
	if !found || nlAvg < 5.56 || nlAvg > 5.57 {
		t.Errorf("netherlands AVG = %v (found=%v), want ≈5.5667", nlAvg, found)
	}
	if d.Cardinality() != 3 {
		t.Errorf("one row per country expected, got %d", d.Cardinality())
	}
}

func TestTheorem31IntersectAndJoin(t *testing.T) {
	src := beerSource()
	dutch := algebra.NewSelect(
		scalar.NewCompare(value.CmpEq, scalar.NewAttr(1), scalar.NewConst(value.NewString("guineken"))),
		algebra.NewRel("beer"))
	strong := algebra.NewSelect(
		scalar.NewCompare(value.CmpGe, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(5))),
		algebra.NewRel("beer"))

	// E1 ∩ E2 = E1 − (E1 − E2).
	native := bothEvaluators(t, algebra.NewIntersect(dutch, strong), src)
	derived := bothEvaluators(t, algebra.NewDifference(dutch, algebra.NewDifference(dutch, strong)), src)
	if !native.Equal(derived) {
		t.Errorf("Theorem 3.1 (intersection) violated:\n%s\n%s", native, derived)
	}

	// E1 ⋈φ E2 = σφ(E1 × E2).
	join := bothEvaluators(t, joinBeerBrewery(), src)
	sigma := bothEvaluators(t,
		algebra.NewSelect(scalar.Eq(1, 3), algebra.NewProduct(algebra.NewRel("beer"), algebra.NewRel("brewery"))), src)
	if !join.Equal(sigma) {
		t.Errorf("Theorem 3.1 (join) violated:\n%s\n%s", join, sigma)
	}
	if join.Cardinality() != 5 {
		t.Errorf("every beer joins exactly one brewery, got %d", join.Cardinality())
	}
}

func TestSetOperators(t *testing.T) {
	s := schema.Anonymous(schema.Attribute{Name: "x", Type: value.KindInt})
	a := multiset.FromTuples(s, tuple.Ints(1), tuple.Ints(1), tuple.Ints(2))
	b := multiset.FromTuples(s, tuple.Ints(1), tuple.Ints(3))
	src := MapSource{"a": a, "b": b}
	ra, rb := algebra.NewRel("a"), algebra.NewRel("b")

	u := bothEvaluators(t, algebra.NewUnion(ra, rb), src)
	if u.Multiplicity(tuple.Ints(1)) != 3 || u.Cardinality() != 5 {
		t.Errorf("union = %v", u)
	}
	d := bothEvaluators(t, algebra.NewDifference(ra, rb), src)
	if d.Multiplicity(tuple.Ints(1)) != 1 || d.Contains(tuple.Ints(3)) {
		t.Errorf("difference = %v", d)
	}
	i := bothEvaluators(t, algebra.NewIntersect(ra, rb), src)
	if i.Multiplicity(tuple.Ints(1)) != 1 || i.Cardinality() != 1 {
		t.Errorf("intersection = %v", i)
	}
	p := bothEvaluators(t, algebra.NewProduct(ra, rb), src)
	if p.Cardinality() != 6 || p.Multiplicity(tuple.Ints(1, 1)) != 2 {
		t.Errorf("product = %v", p)
	}
	// Incompatible schemas surface as errors from both evaluators.
	two := multiset.FromTuples(schema.Anonymous(
		schema.Attribute{Name: "x", Type: value.KindInt},
		schema.Attribute{Name: "y", Type: value.KindInt}), tuple.Ints(1, 2))
	src2 := MapSource{"a": a, "c": two}
	if _, err := (Reference{}).Eval(algebra.NewUnion(algebra.NewRel("a"), algebra.NewRel("c")), src2); err == nil {
		t.Error("incompatible union must fail (reference)")
	}
	if _, err := (&Engine{}).Eval(algebra.NewUnion(algebra.NewRel("a"), algebra.NewRel("c")), src2); err == nil {
		t.Error("incompatible union must fail (engine)")
	}
	if _, err := (&Engine{}).Eval(algebra.NewDifference(algebra.NewRel("a"), algebra.NewRel("c")), src2); err == nil {
		t.Error("incompatible difference must fail (engine)")
	}
	if _, err := (&Engine{}).Eval(algebra.NewIntersect(algebra.NewRel("a"), algebra.NewRel("c")), src2); err == nil {
		t.Error("incompatible intersection must fail (engine)")
	}
}

func TestExtendedProjection(t *testing.T) {
	src := beerSource()
	// (name, alcperc * 1.1)
	expr := algebra.NewExtProject([]scalar.Expr{
		scalar.NewAttr(0),
		scalar.NewArith(value.OpMul, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(2))),
	}, []string{"name", "double_alc"}, algebra.NewRel("beer"))
	res := bothEvaluators(t, expr, src)
	if res.Cardinality() != 5 {
		t.Errorf("extended projection must preserve cardinality, got %d", res.Cardinality())
	}
	want := tuple.New(value.NewString("bock"), value.NewFloat(13))
	if res.Multiplicity(want) != 1 {
		t.Errorf("computed attribute wrong: %v", res)
	}
	// Scalar errors propagate from both evaluators.
	bad := algebra.NewExtProject([]scalar.Expr{
		scalar.NewArith(value.OpMul, scalar.NewAttr(0), scalar.NewConst(value.NewFloat(2))),
	}, nil, algebra.NewRel("beer"))
	if _, err := (Reference{}).Eval(bad, src); err == nil {
		t.Error("type error must propagate (reference)")
	}
	if _, err := (&Engine{}).Eval(bad, src); err == nil {
		t.Error("type error must propagate (engine)")
	}
}

func TestUniqueOperator(t *testing.T) {
	src := beerSource()
	names := algebra.NewProject([]int{1}, algebra.NewRel("beer"))
	dedup := algebra.NewUnique(names)
	raw := bothEvaluators(t, names, src)
	unique := bothEvaluators(t, dedup, src)
	if raw.Cardinality() != 5 {
		t.Errorf("raw brewery projection = %d", raw.Cardinality())
	}
	if unique.Cardinality() != 4 {
		t.Errorf("unique brewery projection = %d, want 4", unique.Cardinality())
	}
	unique.Each(func(_ tuple.Tuple, c uint64) bool {
		if c != 1 {
			t.Errorf("unique result has multiplicity %d", c)
		}
		return true
	})
}

func TestGroupByVariants(t *testing.T) {
	src := beerSource()
	// CNT per brewery.
	cnt := bothEvaluators(t, algebra.NewGroupBy([]int{1}, algebra.AggCount, 0, algebra.NewRel("beer")), src)
	if cnt.Multiplicity(tuple.New(value.NewString("guineken"), value.NewInt(2))) != 1 {
		t.Errorf("CNT per brewery = %v", cnt)
	}
	// SUM of alcperc per brewery.
	sum := bothEvaluators(t, algebra.NewGroupBy([]int{1}, algebra.AggSum, 2, algebra.NewRel("beer")), src)
	if sum.Multiplicity(tuple.New(value.NewString("guineken"), value.NewFloat(11.5))) != 1 {
		t.Errorf("SUM per brewery = %v", sum)
	}
	// MIN / MAX over all beers (empty grouping list → single tuple).
	min := bothEvaluators(t, algebra.NewGroupBy(nil, algebra.AggMin, 2, algebra.NewRel("beer")), src)
	if min.Cardinality() != 1 || !min.Contains(tuple.New(value.NewFloat(4.2))) {
		t.Errorf("global MIN = %v", min)
	}
	max := bothEvaluators(t, algebra.NewGroupBy(nil, algebra.AggMax, 2, algebra.NewRel("beer")), src)
	if !max.Contains(tuple.New(value.NewFloat(9.5))) {
		t.Errorf("global MAX = %v", max)
	}
	// Global CNT on an empty relation yields 0; AVG is undefined.
	empty := MapSource{"e": multiset.New(schema.Anonymous(schema.Attribute{Name: "x", Type: value.KindInt}))}
	zero := bothEvaluators(t, algebra.NewGroupBy(nil, algebra.AggCount, 0, algebra.NewRel("e")), empty)
	if !zero.Contains(tuple.Ints(0)) {
		t.Errorf("CNT over empty = %v", zero)
	}
	if _, err := (Reference{}).Eval(algebra.NewGroupBy(nil, algebra.AggAvg, 0, algebra.NewRel("e")), empty); !errors.Is(err, ErrEmptyAggregate) {
		t.Errorf("AVG over empty must be undefined, got %v", err)
	}
	if _, err := (&Engine{}).Eval(algebra.NewGroupBy(nil, algebra.AggMin, 0, algebra.NewRel("e")), empty); !errors.Is(err, ErrEmptyAggregate) {
		t.Errorf("MIN over empty must be undefined, got %v", err)
	}
	// MIN over strings works (alphabetic order).
	minName := bothEvaluators(t, algebra.NewGroupBy(nil, algebra.AggMin, 0, algebra.NewRel("beer")), src)
	if !minName.Contains(tuple.New(value.NewString("bock"))) {
		t.Errorf("MIN over names = %v", minName)
	}
	// SUM over integer attributes stays integral.
	ints := MapSource{"n": multiset.FromTuples(
		schema.Anonymous(schema.Attribute{Name: "v", Type: value.KindInt}),
		tuple.Ints(1), tuple.Ints(2), tuple.Ints(2))}
	isum := bothEvaluators(t, algebra.NewGroupBy(nil, algebra.AggSum, 0, algebra.NewRel("n")), ints)
	if !isum.Contains(tuple.Ints(5)) {
		t.Errorf("integer SUM = %v", isum)
	}
	// Aggregation over a non-numeric attribute with SUM fails at eval time too.
	if _, err := (Reference{}).Eval(algebra.NewGroupBy(nil, algebra.AggSum, 0, algebra.NewRel("beer")), src); err == nil {
		t.Error("SUM over strings must fail")
	}
}

// TestGroupByMultiAggregate checks the multi-aggregate Γ on both evaluators:
// several aggregates computed in one pass equal the α-join of their
// single-aggregate runs, grouped and globally.
func TestGroupByMultiAggregate(t *testing.T) {
	src := beerSource()
	// CNT + SUM + MIN + MAX of alcperc per brewery, one pass.
	multi := bothEvaluators(t, algebra.NewGroupByMulti([]int{1}, []algebra.AggSpec{
		{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggSum, Col: 2},
		{Fn: algebra.AggMin, Col: 2}, {Fn: algebra.AggMax, Col: 2},
	}, algebra.NewRel("beer")), src)
	if multi.Multiplicity(tuple.New(
		value.NewString("guineken"), value.NewInt(2), value.NewFloat(11.5),
		value.NewFloat(5.0), value.NewFloat(6.5))) != 1 {
		t.Errorf("multi-aggregate per brewery = %v", multi)
	}
	// Each column equals the corresponding single-aggregate run.
	cnt := bothEvaluators(t, algebra.NewGroupBy([]int{1}, algebra.AggCount, 0, algebra.NewRel("beer")), src)
	fromMulti := bothEvaluators(t, algebra.NewProject([]int{0, 1}, algebra.NewGroupByMulti([]int{1}, []algebra.AggSpec{
		{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggSum, Col: 2},
	}, algebra.NewRel("beer"))), src)
	if !cnt.Equal(fromMulti) {
		t.Errorf("multi-aggregate CNT column differs:\nsingle: %s\nmulti:  %s", cnt, fromMulti)
	}
	// Global multi-aggregate: one tuple with every aggregate.
	global := bothEvaluators(t, algebra.NewGroupByMulti(nil, []algebra.AggSpec{
		{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggMin, Col: 2}, {Fn: algebra.AggMax, Col: 2},
	}, algebra.NewRel("beer")), src)
	if global.Cardinality() != 1 || !global.Contains(tuple.New(
		value.NewInt(5), value.NewFloat(4.2), value.NewFloat(9.5))) {
		t.Errorf("global multi-aggregate = %v", global)
	}
	// One undefined member fails the whole application (Definition 3.3).
	empty := MapSource{"e": multiset.New(schema.Anonymous(schema.Attribute{Name: "x", Type: value.KindInt}))}
	multiEmpty := algebra.NewGroupByMulti(nil, []algebra.AggSpec{
		{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggMin, Col: 0},
	}, algebra.NewRel("e"))
	if _, err := (Reference{}).Eval(multiEmpty, empty); !errors.Is(err, ErrEmptyAggregate) {
		t.Errorf("reference: MIN member over empty input = %v, want ErrEmptyAggregate", err)
	}
	if _, err := (&Engine{}).Eval(multiEmpty, empty); !errors.Is(err, ErrEmptyAggregate) {
		t.Errorf("engine: MIN member over empty input = %v, want ErrEmptyAggregate", err)
	}
}

func TestJoinVariants(t *testing.T) {
	src := beerSource()
	// Non-equi join: beers stronger than other beers (self product).
	stronger := algebra.NewJoin(
		scalar.NewCompare(value.CmpGt, scalar.NewAttr(2), scalar.NewAttr(5)),
		algebra.NewRel("beer"), algebra.NewRel("beer"))
	res := bothEvaluators(t, stronger, src)
	// 5 beers with distinct strengths → 10 ordered pairs.
	if res.Cardinality() != 10 {
		t.Errorf("non-equi self join = %d, want 10", res.Cardinality())
	}
	// Equi-join with residual condition: same country and stricly stronger.
	resid := algebra.NewJoin(
		scalar.NewAnd(scalar.Eq(1, 3), scalar.NewCompare(value.CmpGt, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(5)))),
		algebra.NewRel("beer"), algebra.NewRel("brewery"))
	r2 := bothEvaluators(t, resid, src)
	if r2.Cardinality() != 3 {
		t.Errorf("equi join with residual = %d, want 3", r2.Cardinality())
	}
	// Join with an always-false condition is empty.
	none := bothEvaluators(t, algebra.NewJoin(scalar.False{}, algebra.NewRel("beer"), algebra.NewRel("brewery")), src)
	if !none.IsEmpty() {
		t.Error("join under false must be empty")
	}
	// Condition evaluation errors propagate (engine nested-loop path).
	typeErr := algebra.NewJoin(
		scalar.NewCompare(value.CmpGt, scalar.NewAttr(0), scalar.NewAttr(2)),
		algebra.NewRel("beer"), algebra.NewRel("brewery"))
	if _, err := (&Engine{}).Eval(typeErr, src); err == nil {
		t.Error("string vs float comparison must fail during the join")
	}
	if _, err := (Reference{}).Eval(typeErr, src); err == nil {
		t.Error("string vs float comparison must fail during the join (reference)")
	}
}

func TestSelectionFusedIntoJoin(t *testing.T) {
	src := beerSource()
	eng := &Engine{CollectStats: true}
	// σ_{%2=%4}(beer × brewery) must not materialise the 5×4 product.
	fused := algebra.NewSelect(scalar.Eq(1, 3), algebra.NewProduct(algebra.NewRel("beer"), algebra.NewRel("brewery")))
	res, err := eng.Eval(fused, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cardinality() != 5 {
		t.Errorf("fused join = %d", res.Cardinality())
	}
	if eng.Stats.PeakRelationTuples > 5 {
		t.Errorf("selection over product should be fused into a hash join; peak intermediate = %d", eng.Stats.PeakRelationTuples)
	}
	// The same expression through the naive product materialises 20 tuples.
	eng.Reset()
	prod := algebra.NewProduct(algebra.NewRel("beer"), algebra.NewRel("brewery"))
	if _, err := eng.Eval(prod, src); err != nil {
		t.Fatal(err)
	}
	if eng.Stats.PeakRelationTuples != 20 {
		t.Errorf("bare product should materialise 20 tuples, got %d", eng.Stats.PeakRelationTuples)
	}
}

func TestTransitiveClosure(t *testing.T) {
	edge := schema.NewRelation("edge",
		schema.Attribute{Name: "src", Type: value.KindInt},
		schema.Attribute{Name: "dst", Type: value.KindInt},
	)
	// Chain 1→2→3→4 plus a duplicate edge and a cycle 5→6→5.
	r := multiset.FromTuples(edge,
		tuple.Ints(1, 2), tuple.Ints(1, 2), tuple.Ints(2, 3), tuple.Ints(3, 4),
		tuple.Ints(5, 6), tuple.Ints(6, 5),
	)
	src := MapSource{"edge": r}
	res := bothEvaluators(t, algebra.NewTClose(algebra.NewRel("edge")), src)
	wantPairs := [][2]int64{
		{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4},
		{5, 6}, {6, 5}, {5, 5}, {6, 6},
	}
	for _, p := range wantPairs {
		if res.Multiplicity(tuple.Ints(p[0], p[1])) != 1 {
			t.Errorf("closure missing or duplicated pair %v: %v", p, res)
		}
	}
	if res.Cardinality() != uint64(len(wantPairs)) {
		t.Errorf("closure cardinality = %d, want %d", res.Cardinality(), len(wantPairs))
	}
	// Closure of the empty relation is empty.
	src2 := MapSource{"edge": multiset.New(edge)}
	if got := bothEvaluators(t, algebra.NewTClose(algebra.NewRel("edge")), src2); !got.IsEmpty() {
		t.Error("closure of the empty relation must be empty")
	}
}

func TestErrorPropagationThroughOperators(t *testing.T) {
	src := beerSource()
	missing := algebra.NewRel("wine")
	exprs := []algebra.Expr{
		algebra.NewUnion(missing, algebra.NewRel("beer")),
		algebra.NewUnion(algebra.NewRel("beer"), missing),
		algebra.NewDifference(missing, algebra.NewRel("beer")),
		algebra.NewIntersect(missing, algebra.NewRel("beer")),
		algebra.NewProduct(missing, algebra.NewRel("beer")),
		algebra.NewProduct(algebra.NewRel("beer"), missing),
		algebra.NewSelect(scalar.True{}, missing),
		algebra.NewProject([]int{0}, missing),
		algebra.NewJoin(scalar.Eq(0, 3), missing, algebra.NewRel("brewery")),
		algebra.NewJoin(scalar.Eq(0, 3), algebra.NewRel("beer"), missing),
		algebra.NewExtProject([]scalar.Expr{scalar.NewAttr(0)}, nil, missing),
		algebra.NewUnique(missing),
		algebra.NewGroupBy([]int{0}, algebra.AggCount, 0, missing),
		algebra.NewTClose(missing),
	}
	for _, e := range exprs {
		if _, err := (Reference{}).Eval(e, src); err == nil {
			t.Errorf("reference: expected error for %s", e)
		}
		if _, err := (&Engine{}).Eval(e, src); err == nil {
			t.Errorf("engine: expected error for %s", e)
		}
	}
	// Selection with an erroring predicate.
	sel := algebra.NewSelect(scalar.NewCompare(value.CmpGt, scalar.NewAttr(0), scalar.NewAttr(2)), algebra.NewRel("beer"))
	if _, err := (Reference{}).Eval(sel, src); err == nil {
		t.Error("predicate type errors must propagate (reference)")
	}
	if _, err := (&Engine{}).Eval(sel, src); err == nil {
		t.Error("predicate type errors must propagate (engine)")
	}
	// Projection out of range.
	proj := algebra.NewProject([]int{9}, algebra.NewRel("beer"))
	if _, err := (Reference{}).Eval(proj, src); err == nil {
		t.Error("projection range errors must propagate (reference)")
	}
	if _, err := (&Engine{}).Eval(proj, src); err == nil {
		t.Error("projection range errors must propagate (engine)")
	}
	// Bad literal.
	badLit := algebra.Literal{
		Rel:  schema.Anonymous(schema.Attribute{Name: "x", Type: value.KindInt}),
		Rows: [][]value.Value{{value.NewString("oops")}},
	}
	if _, err := (Reference{}).Eval(badLit, src); err == nil {
		t.Error("bad literal must fail")
	}
	if _, err := (&Engine{}).Eval(badLit, src); err == nil {
		t.Error("bad literal must fail (engine)")
	}
}

func TestEngineStats(t *testing.T) {
	src := beerSource()
	eng := &Engine{CollectStats: true}
	if _, err := eng.Eval(algebra.NewProject([]int{0}, joinBeerBrewery()), src); err != nil {
		t.Fatal(err)
	}
	if eng.Stats.Operators != 2 {
		t.Errorf("operators = %d, want 2 (join, project)", eng.Stats.Operators)
	}
	if eng.Stats.IntermediateTuples != 10 {
		t.Errorf("intermediate tuples = %d, want 10 (5 join + 5 project)", eng.Stats.IntermediateTuples)
	}
	eng.Reset()
	if eng.Stats.Operators != 0 || eng.Stats.IntermediateTuples != 0 || eng.Stats.PeakRelationTuples != 0 {
		t.Error("Reset must clear stats")
	}
	// Stats disabled: nothing recorded.
	quiet := &Engine{}
	if _, err := quiet.Eval(joinBeerBrewery(), src); err != nil {
		t.Fatal(err)
	}
	if quiet.Stats.Operators != 0 {
		t.Error("stats must not be collected unless enabled")
	}
}

func TestUnsupportedExpression(t *testing.T) {
	var bogus algebra.Expr // nil interface triggers the default branch safely?
	// A nil expression is not a valid input; both evaluators must return an
	// error rather than panic.  Use a typed nil via an anonymous implementation.
	bogus = fakeExpr{}
	if _, err := (Reference{}).Eval(bogus, beerSource()); err == nil {
		t.Error("unsupported expression must fail (reference)")
	}
	if _, err := (&Engine{}).Eval(bogus, beerSource()); err == nil {
		t.Error("unsupported expression must fail (engine)")
	}
}

type fakeExpr struct{}

func (fakeExpr) Schema(algebra.Catalog) (schema.Relation, error) { return schema.Relation{}, nil }
func (fakeExpr) Children() []algebra.Expr                        { return nil }
func (fakeExpr) String() string                                  { return "fake" }
