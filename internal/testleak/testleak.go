// Package testleak is a stdlib-only goroutine-leak checker for tests: it
// snapshots the goroutine count before the body under test and fails the test
// when goroutines remain above the baseline afterwards.  It exists because the
// lifecycle guarantees of the execution runtime — a cancelled or failed query
// leaves zero workers behind — can silently rot without a check, and the
// repository takes no external dependencies (no goleak).
//
// Counting goroutines is inherently racy: runtime-internal helpers come and
// go, and freshly finished workers may not have been reaped yet.  Check
// therefore retries with backoff before declaring a leak, and on failure dumps
// all goroutine stacks so the offender is identifiable from the test log.
package testleak

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the current goroutine count and returns a function that
// fails the test if the count has not returned to the baseline by the time it
// runs (with retries, to absorb scheduler lag).  Use it around a body that
// must not leak:
//
//	defer testleak.Check(t)()
//
// The returned function is cheap when nothing leaked (one count read).
func Check(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		// Retry with backoff: finished goroutines are reaped asynchronously,
		// so an immediate count can transiently exceed the baseline without
		// any leak.  Total wait is ~2s, far above worker teardown time.
		delay := time.Millisecond
		for i := 0; i < 12; i++ {
			if runtime.NumGoroutine() <= base {
				return
			}
			time.Sleep(delay)
			delay *= 2
		}
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d goroutines, baseline %d; stacks:\n%s", n, base, buf)
	}
}
