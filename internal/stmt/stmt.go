// Package stmt implements the statements and programs of the extended
// relational algebra language (Definitions 4.1 and 4.2 of Grefen & de By,
// ICDE 1994): insert, delete, update, assignment and query statements, and
// their sequential composition into programs.
//
// Statements execute against a Context — in practice a transaction (package
// txn) — that provides expression evaluation, access to the current database
// state, and the replacement operation ← used by the statement definitions.
package stmt

import (
	"errors"
	"fmt"
	"strings"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// ErrStatement is the sentinel wrapped by statement execution errors.
var ErrStatement = errors.New("statement error")

// Context is the execution environment of a statement: a view of the current
// (intermediate) database state plus the replacement and output operations.
// Transactions implement it.
type Context interface {
	// Catalog resolves relation names (database relations and temporaries) to
	// schemas for validation.
	Catalog() algebra.Catalog
	// Evaluate evaluates a relational expression against the current
	// intermediate state.
	Evaluate(e algebra.Expr) (*multiset.Relation, error)
	// Current returns the current instance of a named relation (database
	// relation or temporary).
	Current(name string) (*multiset.Relation, bool)
	// Replace implements R ← E for a database relation.
	Replace(name string, r *multiset.Relation) error
	// Assign implements the assignment statement R = E, binding a temporary
	// relational variable visible for the remainder of the program.
	Assign(name string, r *multiset.Relation) error
	// Output delivers a query statement's result to the user of the database
	// system.
	Output(r *multiset.Relation)
}

// Statement is a single extended relational algebra statement.
type Statement interface {
	// Execute runs the statement against the context.
	Execute(ctx Context) error
	// String renders the statement in XRA-like surface syntax.
	String() string
}

// Program is a sequential composition of statements (Definition 4.2).
type Program []Statement

// Execute runs the program's statements in order, stopping at the first error.
func (p Program) Execute(ctx Context) error {
	for i, s := range p {
		if err := s.Execute(ctx); err != nil {
			return fmt.Errorf("statement %d (%s): %w", i+1, s, err)
		}
	}
	return nil
}

// String renders the program one statement per line, terminated by semicolons.
func (p Program) String() string {
	var b strings.Builder
	for _, s := range p {
		b.WriteString(s.String())
		b.WriteString(";\n")
	}
	return b.String()
}

// targetRelation resolves the target database relation of an update-class
// statement and checks the expression's compatibility with it.
func targetRelation(ctx Context, name string, e algebra.Expr) (*multiset.Relation, schema.Relation, error) {
	cur, ok := ctx.Current(name)
	if !ok {
		return nil, schema.Relation{}, fmt.Errorf("%w: unknown relation %q", ErrStatement, name)
	}
	es, err := e.Schema(ctx.Catalog())
	if err != nil {
		return nil, schema.Relation{}, err
	}
	if !cur.Schema().Compatible(es) {
		return nil, schema.Relation{}, fmt.Errorf("%w: expression schema %s incompatible with relation %q %s",
			ErrStatement, es, name, cur.Schema())
	}
	return cur, cur.Schema(), nil
}

// Insert is the statement insert(R, E): R ← R ⊎ E (Definition 4.1).
type Insert struct {
	// Target is the database relation R.
	Target string
	// Source is the expression E of the same schema as R.
	Source algebra.Expr
}

// Execute implements Statement.
func (s Insert) Execute(ctx Context) error {
	cur, _, err := targetRelation(ctx, s.Target, s.Source)
	if err != nil {
		return err
	}
	add, err := ctx.Evaluate(s.Source)
	if err != nil {
		return err
	}
	out, err := multiset.Union(cur, add.WithSchema(cur.Schema()))
	if err != nil {
		return err
	}
	return ctx.Replace(s.Target, out)
}

// String implements Statement.
func (s Insert) String() string { return fmt.Sprintf("insert(%s, %s)", s.Target, s.Source) }

// Delete is the statement delete(R, E): R ← R − E (Definition 4.1).
type Delete struct {
	Target string
	Source algebra.Expr
}

// Execute implements Statement.
func (s Delete) Execute(ctx Context) error {
	cur, _, err := targetRelation(ctx, s.Target, s.Source)
	if err != nil {
		return err
	}
	rem, err := ctx.Evaluate(s.Source)
	if err != nil {
		return err
	}
	out, err := multiset.Difference(cur, rem.WithSchema(cur.Schema()))
	if err != nil {
		return err
	}
	return ctx.Replace(s.Target, out)
}

// String implements Statement.
func (s Delete) String() string { return fmt.Sprintf("delete(%s, %s)", s.Target, s.Source) }

// Update is the statement update(R, E, a):
//
//	R ← (R − E) ⊎ π_a(R ∩ E)
//
// where a is a structure-preserving extended projection list with the same
// schema as E (Definition 4.1).  The paper's Example 4.1 — raising Guineken's
// alcohol percentages by 10% — is an Update whose Items list is
// (%1, %2, %3 * 1.1).
type Update struct {
	// Target is the database relation R.
	Target string
	// Selection is the expression E selecting the tuples to modify; it must
	// have the same schema as R.
	Selection algebra.Expr
	// Items is the attribute expression list a; it must have exactly one item
	// per attribute of R and preserve the relation's schema.
	Items []scalar.Expr
}

// Execute implements Statement.
func (s Update) Execute(ctx Context) error {
	cur, curSchema, err := targetRelation(ctx, s.Target, s.Selection)
	if err != nil {
		return err
	}
	if len(s.Items) != curSchema.Arity() {
		return fmt.Errorf("%w: update list has %d items, relation %q has arity %d",
			ErrStatement, len(s.Items), s.Target, curSchema.Arity())
	}
	// Structure preservation: every item must be typeable and keep its
	// attribute's domain (numeric domains may interchange).
	for i, item := range s.Items {
		k, err := item.Type(curSchema)
		if err != nil {
			return fmt.Errorf("%w: update item %d: %v", ErrStatement, i+1, err)
		}
		want := curSchema.Attribute(i).Type
		if k == want || (k.Numeric() && want.Numeric()) || k == value.KindNull {
			continue
		}
		return fmt.Errorf("%w: update item %d produces %s, attribute %q expects %s",
			ErrStatement, i+1, k, curSchema.Attribute(i).Name, want)
	}

	sel, err := ctx.Evaluate(s.Selection)
	if err != nil {
		return err
	}
	sel = sel.WithSchema(curSchema)
	remain, err := multiset.Difference(cur, sel)
	if err != nil {
		return err
	}
	hit, err := multiset.Intersection(cur, sel)
	if err != nil {
		return err
	}
	// π_a(R ∩ E): the structure-preserving extended projection applied to the
	// tuples selected for modification.
	modified, err := multiset.Map(hit, curSchema, func(t tuple.Tuple) (tuple.Tuple, error) {
		vals := make([]value.Value, len(s.Items))
		for i, item := range s.Items {
			v, err := item.Eval(t)
			if err != nil {
				return tuple.Tuple{}, err
			}
			vals[i] = v
		}
		return tuple.FromSlice(vals), nil
	})
	if err != nil {
		return err
	}
	out, err := multiset.Union(remain, modified)
	if err != nil {
		return err
	}
	return ctx.Replace(s.Target, out)
}

// String implements Statement.
func (s Update) String() string {
	items := make([]string, len(s.Items))
	for i, it := range s.Items {
		items[i] = it.String()
	}
	return fmt.Sprintf("update(%s, %s, (%s))", s.Target, s.Selection, strings.Join(items, ", "))
}

// Assign is the assignment statement R = E: it binds the multi-set E to a new,
// implicitly defined temporary relational variable R visible for the remainder
// of the program (Definition 4.1).
type Assign struct {
	// Name is the temporary relation's name.
	Name string
	// Source is the expression to materialise.
	Source algebra.Expr
}

// Execute implements Statement.
func (s Assign) Execute(ctx Context) error {
	r, err := ctx.Evaluate(s.Source)
	if err != nil {
		return err
	}
	return ctx.Assign(s.Name, r)
}

// String implements Statement.
func (s Assign) String() string { return fmt.Sprintf("%s = %s", s.Name, s.Source) }

// Query is the query statement ?E: it sends the result of E to the user of
// the database system and has no effect on the database (Definition 4.1).
type Query struct {
	Source algebra.Expr
}

// Execute implements Statement.
func (s Query) Execute(ctx Context) error {
	r, err := ctx.Evaluate(s.Source)
	if err != nil {
		return err
	}
	ctx.Output(r)
	return nil
}

// String implements Statement.
func (s Query) String() string { return fmt.Sprintf("?%s", s.Source) }

// Analyze is the statement analyze(R): it (re)builds the per-column
// statistics summary — distinct-value sketches, equi-depth histograms,
// null/min/max — of a database relation, feeding the planner's cost model.
// It has no effect on relation contents.  Contexts without a statistics
// subsystem reject it.
type Analyze struct {
	// Target is the relation to summarise.
	Target string
}

// Execute implements Statement.  The context must additionally implement
// AnalyzeRelation (transactions do); otherwise the statement fails.
func (s Analyze) Execute(ctx Context) error {
	a, ok := ctx.(interface{ AnalyzeRelation(name string) error })
	if !ok {
		return fmt.Errorf("%w: context does not support analyze", ErrStatement)
	}
	if err := a.AnalyzeRelation(s.Target); err != nil {
		return fmt.Errorf("%w: %v", ErrStatement, err)
	}
	return nil
}

// String implements Statement.
func (s Analyze) String() string { return fmt.Sprintf("analyze(%s)", s.Target) }
