package stmt

import (
	"errors"
	"strings"
	"testing"

	"mra/internal/algebra"
	"mra/internal/eval"
	"mra/internal/multiset"
	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// mockContext implements Context over a MapSource and records Replace/Assign
// calls, so statements can be unit-tested without the transaction layer.
type mockContext struct {
	src        eval.MapSource
	outputs    []*multiset.Relation
	replaceErr error
	assignErr  error
	replaced   []string
	assigned   []string
}

func newMock() *mockContext {
	s := schema.NewRelation("beer",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "brewery", Type: value.KindString},
		schema.Attribute{Name: "alcperc", Type: value.KindFloat},
	)
	beer := multiset.New(s)
	beer.Add(tuple.New(value.NewString("pils"), value.NewString("guineken"), value.NewFloat(5.0)), 2)
	beer.Add(tuple.New(value.NewString("bock"), value.NewString("guineken"), value.NewFloat(6.5)), 1)
	beer.Add(tuple.New(value.NewString("stout"), value.NewString("guinness"), value.NewFloat(4.2)), 1)
	return &mockContext{src: eval.MapSource{"beer": beer}}
}

func (m *mockContext) Catalog() algebra.Catalog { return m.src.Catalog() }

func (m *mockContext) Evaluate(e algebra.Expr) (*multiset.Relation, error) {
	return (&eval.Engine{}).Eval(e, m.src)
}

func (m *mockContext) Current(name string) (*multiset.Relation, bool) { return m.src.Relation(name) }

func (m *mockContext) Replace(name string, r *multiset.Relation) error {
	if m.replaceErr != nil {
		return m.replaceErr
	}
	m.replaced = append(m.replaced, name)
	m.src[strings.ToLower(name)] = r
	return nil
}

func (m *mockContext) Assign(name string, r *multiset.Relation) error {
	if m.assignErr != nil {
		return m.assignErr
	}
	m.assigned = append(m.assigned, name)
	m.src[strings.ToLower(name)] = r
	return nil
}

func (m *mockContext) Output(r *multiset.Relation) { m.outputs = append(m.outputs, r) }

func guineken() algebra.Expr {
	return algebra.NewSelect(
		scalar.NewCompare(value.CmpEq, scalar.NewAttr(1), scalar.NewConst(value.NewString("guineken"))),
		algebra.NewRel("beer"))
}

func TestInsertStatement(t *testing.T) {
	m := newMock()
	lit := algebra.Literal{
		Rel: schema.Anonymous(
			schema.Attribute{Name: "n", Type: value.KindString},
			schema.Attribute{Name: "b", Type: value.KindString},
			schema.Attribute{Name: "a", Type: value.KindFloat},
		),
		Rows: [][]value.Value{{value.NewString("ale"), value.NewString("guinness"), value.NewFloat(4.4)}},
	}
	if err := (Insert{Target: "beer", Source: lit}).Execute(m); err != nil {
		t.Fatal(err)
	}
	beer, _ := m.src.Relation("beer")
	if beer.Cardinality() != 5 {
		t.Errorf("|beer| = %d", beer.Cardinality())
	}
	if len(m.replaced) != 1 || m.replaced[0] != "beer" {
		t.Errorf("replaced = %v", m.replaced)
	}
	// The insert keeps the target's schema even when the source is anonymous.
	if beer.Schema().Name() != "beer" {
		t.Errorf("schema = %s", beer.Schema())
	}
	// Errors: unknown target, incompatible source, failing evaluation,
	// replace failure.
	if err := (Insert{Target: "wine", Source: lit}).Execute(m); err == nil {
		t.Error("unknown target must fail")
	}
	bad := algebra.Literal{Rel: schema.Anonymous(schema.Attribute{Name: "x", Type: value.KindInt}),
		Rows: [][]value.Value{{value.NewInt(1)}}}
	if err := (Insert{Target: "beer", Source: bad}).Execute(m); err == nil {
		t.Error("incompatible source must fail")
	}
	if err := (Insert{Target: "beer", Source: algebra.NewProject([]int{9}, algebra.NewRel("beer"))}).Execute(m); err == nil {
		t.Error("evaluation errors must propagate")
	}
	m.replaceErr = errors.New("boom")
	if err := (Insert{Target: "beer", Source: lit}).Execute(m); err == nil {
		t.Error("replace errors must propagate")
	}
}

func TestDeleteStatement(t *testing.T) {
	m := newMock()
	if err := (Delete{Target: "beer", Source: guineken()}).Execute(m); err != nil {
		t.Fatal(err)
	}
	beer, _ := m.src.Relation("beer")
	if beer.Cardinality() != 1 {
		t.Errorf("|beer| after delete = %d", beer.Cardinality())
	}
	if err := (Delete{Target: "wine", Source: guineken()}).Execute(m); err == nil {
		t.Error("unknown target must fail")
	}
	if err := (Delete{Target: "beer", Source: algebra.NewProject([]int{9}, algebra.NewRel("beer"))}).Execute(m); err == nil {
		t.Error("evaluation errors must propagate")
	}
	m.replaceErr = errors.New("boom")
	if err := (Delete{Target: "beer", Source: guineken()}).Execute(m); err == nil {
		t.Error("replace errors must propagate")
	}
}

func TestUpdateStatement(t *testing.T) {
	m := newMock()
	items := []scalar.Expr{
		scalar.NewAttr(0), scalar.NewAttr(1),
		scalar.NewArith(value.OpMul, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(2))),
	}
	if err := (Update{Target: "beer", Selection: guineken(), Items: items}).Execute(m); err != nil {
		t.Fatal(err)
	}
	beer, _ := m.src.Relation("beer")
	if beer.Cardinality() != 4 {
		t.Errorf("update must preserve cardinality, got %d", beer.Cardinality())
	}
	// The duplicate pils tuple keeps its multiplicity 2 with the doubled value.
	doubled := tuple.New(value.NewString("pils"), value.NewString("guineken"), value.NewFloat(10.0))
	if beer.Multiplicity(doubled) != 2 {
		t.Errorf("updated duplicate multiplicity = %d: %s", beer.Multiplicity(doubled), beer)
	}
	// Untouched tuples stay.
	if beer.Multiplicity(tuple.New(value.NewString("stout"), value.NewString("guinness"), value.NewFloat(4.2))) != 1 {
		t.Error("non-selected tuples must be untouched")
	}
	// Validation failures.
	if err := (Update{Target: "beer", Selection: guineken(), Items: items[:1]}).Execute(m); err == nil {
		t.Error("short item list must fail")
	}
	badItems := []scalar.Expr{scalar.NewConst(value.NewInt(1)), scalar.NewAttr(1), scalar.NewAttr(2)}
	if err := (Update{Target: "beer", Selection: guineken(), Items: badItems}).Execute(m); err == nil {
		t.Error("structure-violating item list must fail")
	}
	untypable := []scalar.Expr{scalar.NewArith(value.OpMul, scalar.NewAttr(0), scalar.NewConst(value.NewInt(2))), scalar.NewAttr(1), scalar.NewAttr(2)}
	if err := (Update{Target: "beer", Selection: guineken(), Items: untypable}).Execute(m); err == nil {
		t.Error("untypeable item must fail")
	}
	if err := (Update{Target: "wine", Selection: guineken(), Items: items}).Execute(m); err == nil {
		t.Error("unknown target must fail")
	}
	if err := (Update{Target: "beer", Selection: algebra.NewProject([]int{9}, algebra.NewRel("beer")), Items: items}).Execute(m); err == nil {
		t.Error("selection validation errors must propagate")
	}
	m.replaceErr = errors.New("boom")
	if err := (Update{Target: "beer", Selection: guineken(), Items: items}).Execute(m); err == nil {
		t.Error("replace errors must propagate")
	}
}

func TestAssignAndQueryStatements(t *testing.T) {
	m := newMock()
	if err := (Assign{Name: "g", Source: guineken()}).Execute(m); err != nil {
		t.Fatal(err)
	}
	if len(m.assigned) != 1 || m.assigned[0] != "g" {
		t.Errorf("assigned = %v", m.assigned)
	}
	if err := (Query{Source: algebra.NewRel("g")}).Execute(m); err != nil {
		t.Fatal(err)
	}
	if len(m.outputs) != 1 || m.outputs[0].Cardinality() != 3 {
		t.Errorf("outputs = %v", m.outputs)
	}
	if err := (Assign{Name: "x", Source: algebra.NewRel("wine")}).Execute(m); err == nil {
		t.Error("assignment evaluation errors must propagate")
	}
	m.assignErr = errors.New("boom")
	if err := (Assign{Name: "y", Source: guineken()}).Execute(m); err == nil {
		t.Error("assign errors must propagate")
	}
	if err := (Query{Source: algebra.NewRel("wine")}).Execute(m); err == nil {
		t.Error("query evaluation errors must propagate")
	}
}

func TestProgramExecution(t *testing.T) {
	m := newMock()
	prog := Program{
		Assign{Name: "g", Source: guineken()},
		Delete{Target: "beer", Source: algebra.NewRel("g")},
		Query{Source: algebra.NewRel("beer")},
	}
	if err := prog.Execute(m); err != nil {
		t.Fatal(err)
	}
	if len(m.outputs) != 1 || m.outputs[0].Cardinality() != 1 {
		t.Errorf("program output = %v", m.outputs)
	}
	// A failing statement stops the program and identifies its position.
	bad := Program{
		Query{Source: algebra.NewRel("beer")},
		Insert{Target: "nosuch", Source: algebra.NewRel("beer")},
		Query{Source: algebra.NewRel("beer")},
	}
	m2 := newMock()
	err := bad.Execute(m2)
	if err == nil {
		t.Fatal("failing program must error")
	}
	if !strings.Contains(err.Error(), "statement 2") {
		t.Errorf("error must identify the failing statement: %v", err)
	}
	if len(m2.outputs) != 1 {
		t.Errorf("statements after the failure must not run: %d outputs", len(m2.outputs))
	}
	if !errors.Is(err, ErrStatement) {
		t.Errorf("error must wrap ErrStatement, got %v", err)
	}
	// String rendering.
	if s := prog.String(); !strings.Contains(s, "g = ") || !strings.Contains(s, "delete(beer") {
		t.Errorf("program string = %q", s)
	}
}
