package dump

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/storage"
	"mra/internal/tuple"
	"mra/internal/value"
	"mra/internal/workload"
)

func newTestDB(t *testing.T) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	beer, brewery := workload.Beers(workload.BeerConfig{Breweries: 5, BeersPerBrewery: 4, DuplicateNames: true, Seed: 1})
	if err := db.CreateRelation(workload.BeerSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateRelation(workload.BrewerySchema()); err != nil {
		t.Fatal(err)
	}
	mixed := schema.NewRelation("mixed",
		schema.Attribute{Name: "i", Type: value.KindInt},
		schema.Attribute{Name: "f", Type: value.KindFloat},
		schema.Attribute{Name: "s", Type: value.KindString},
		schema.Attribute{Name: "b", Type: value.KindBool},
	)
	if err := db.CreateRelation(mixed); err != nil {
		t.Fatal(err)
	}
	inst := multiset.New(mixed)
	inst.Add(tuple.New(value.NewInt(1), value.NewFloat(2.5), value.NewString("it's"), value.NewBool(true)), 3)
	inst.Add(tuple.New(value.NewInt(-7), value.NewFloat(0), value.NewString("semi;colon"), value.NewBool(false)), 1)
	inst.Add(tuple.New(value.Null, value.Null, value.Null, value.Null), 2)
	if _, err := db.Apply(map[string]*multiset.Relation{
		"beer": beer, "brewery": brewery, "mixed": inst,
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRoundTrip(t *testing.T) {
	db := newTestDB(t)
	var buf bytes.Buffer
	if err := Write(db, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# mra dump v1") {
		t.Error("dump must start with the header")
	}
	restored, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Names(), db.Names(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("relations = %v, want %v", got, want)
	}
	for _, name := range db.Names() {
		orig, _ := db.Relation(name)
		back, _ := restored.Relation(name)
		if !orig.Equal(back) {
			t.Errorf("relation %q not restored faithfully:\n%s\n%s", name, orig, back)
		}
		if !orig.Schema().Equal(back.Schema()) || orig.Schema().Name() != back.Schema().Name() {
			t.Errorf("schema of %q not restored: %s vs %s", name, orig.Schema(), back.Schema())
		}
	}
	// Restored databases start a fresh logical time.
	if restored.LogicalTime() != 1 {
		t.Errorf("restored logical time = %d (one Apply installing the contents)", restored.LogicalTime())
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 10; round++ {
		db := storage.NewDatabase()
		rel := schema.NewRelation("r",
			schema.Attribute{Name: "a", Type: value.KindInt},
			schema.Attribute{Name: "b", Type: value.KindString},
		)
		if err := db.CreateRelation(rel); err != nil {
			t.Fatal(err)
		}
		inst := multiset.New(rel)
		for i := 0; i < rng.Intn(30); i++ {
			inst.Add(tuple.New(
				value.NewInt(int64(rng.Intn(10))),
				value.NewString(strings.Repeat("'", rng.Intn(3))+"v"+letter(rng.Intn(5))),
			), uint64(1+rng.Intn(4)))
		}
		if _, err := db.Apply(map[string]*multiset.Relation{"r": inst}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(db, &buf); err != nil {
			t.Fatal(err)
		}
		restored, err := Read(&buf)
		if err != nil {
			t.Fatalf("round %d: %v\ndump:\n%s", round, err, buf.String())
		}
		orig, _ := db.Relation("r")
		back, _ := restored.Relation("r")
		if !orig.Equal(back) {
			t.Fatalf("round %d: round trip changed the relation\n%s\n%s", round, orig, back)
		}
	}
}

func letter(n int) string { return string(rune('a' + n)) }

func TestReadIntoExistingDatabase(t *testing.T) {
	db := newTestDB(t)
	var buf bytes.Buffer
	if err := Write(db, &buf); err != nil {
		t.Fatal(err)
	}
	// Restoring into a database that already has one of the relations fails.
	target := storage.NewDatabase()
	if err := target.CreateRelation(workload.BeerSchema()); err != nil {
		t.Fatal(err)
	}
	if err := ReadInto(target, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("restoring over an existing relation must fail")
	}
	// An empty dump restores nothing.
	empty := storage.NewDatabase()
	if err := ReadInto(empty, strings.NewReader("# mra dump v1\n")); err != nil {
		t.Fatal(err)
	}
	if len(empty.Names()) != 0 {
		t.Error("empty dump must restore nothing")
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"",                                                              // missing header
		"not a dump",                                                    // wrong header
		"# mra dump v1\nnonsense",                                       // expected relation
		"# mra dump v1\nrelation r",                                     // malformed declaration
		"# mra dump v1\nrelation (x int)\nend",                          // missing name
		"# mra dump v1\nrelation r()\nend",                              // no columns
		"# mra dump v1\nrelation r(x money)\nend",                       // unknown domain
		"# mra dump v1\nrelation r(x int int)\nend",                     // malformed column
		"# mra dump v1\nrelation r(x int)\nt 1 | 1",                     // missing end
		"# mra dump v1\nrelation r(x int)\nrow 1\nend",                  // bad tuple line
		"# mra dump v1\nrelation r(x int)\nt 1 1\nend",                  // missing separator
		"# mra dump v1\nrelation r(x int)\nt 0 | 1\nend",                // zero multiplicity
		"# mra dump v1\nrelation r(x int)\nt x | 1\nend",                // bad multiplicity
		"# mra dump v1\nrelation r(x int)\nt 1 | 1;2\nend",              // arity mismatch
		"# mra dump v1\nrelation r(x int)\nt 1 | 'one'\nend",            // wrong domain
		"# mra dump v1\nrelation r(x float)\nt 1 | abc\nend",            // bad float
		"# mra dump v1\nrelation r(x bool)\nt 1 | maybe\nend",           // bad bool
		"# mra dump v1\nrelation r(x string)\nt 1 | 'abc\nend",          // unterminated string
		"# mra dump v1\nrelation r(x string)\nt 1 | abc\nend",           // unquoted string
		"# mra dump v1\nrelation r(x int)\nend\nrelation r(x int)\nend", // duplicate relation
	}
	for _, src := range bad {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("input %q must fail to restore", src)
		}
	}
	// Format errors wrap ErrFormat.
	_, err := Read(strings.NewReader("# mra dump v1\nnonsense"))
	if !errors.Is(err, ErrFormat) {
		t.Errorf("expected ErrFormat, got %v", err)
	}
}

func TestNullsSurviveRoundTrip(t *testing.T) {
	db := newTestDB(t)
	var buf bytes.Buffer
	if err := Write(db, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "null") {
		t.Error("dump must contain the null cells")
	}
	restored, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mixed, _ := restored.Relation("mixed")
	if mixed.Multiplicity(tuple.New(value.Null, value.Null, value.Null, value.Null)) != 2 {
		t.Errorf("null tuple multiplicity lost: %s", mixed)
	}
}
