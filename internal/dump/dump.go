// Package dump implements a textual dump/restore format for multi-set
// relational databases, so a database state D_t can be saved to a file and
// reloaded later.  The format is line-based and human-readable:
//
//	# mra dump v1
//	relation beer(name string, brewery string, alcperc float)
//	t 2 | 'pils';'guineken';5
//	t 1 | 'bock';'guineken';6.5
//	end
//
// Each `t <multiplicity> | <values>` line stores one distinct tuple with its
// multiplicity, preserving the multi-set exactly; `end` closes a relation.
// Values are encoded per the schema's domains (strings quoted with doubled
// single quotes, null as the bare word null).
package dump

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/storage"
	"mra/internal/tuple"
	"mra/internal/value"
)

// header is the first line of every dump.
const header = "# mra dump v1"

// ErrFormat is the sentinel wrapped by all restore parsing errors.
var ErrFormat = errors.New("dump: format error")

// Write serialises every relation of the database to the writer.
func Write(db *storage.Database, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, header); err != nil {
		return err
	}
	for _, name := range db.Names() {
		rel, ok := db.Relation(name)
		if !ok {
			continue
		}
		if err := writeRelation(bw, rel); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeRelation(w io.Writer, rel *multiset.Relation) error {
	s := rel.Schema()
	cols := make([]string, s.Arity())
	for i := 0; i < s.Arity(); i++ {
		a := s.Attribute(i)
		name := a.Name
		if name == "" {
			name = fmt.Sprintf("col%d", i+1)
		}
		cols[i] = name + " " + a.Type.String()
	}
	if _, err := fmt.Fprintf(w, "relation %s(%s)\n", s.Name(), strings.Join(cols, ", ")); err != nil {
		return err
	}
	var werr error
	rel.EachSorted(func(t tuple.Tuple, count uint64) bool {
		cells := make([]string, t.Arity())
		for i := 0; i < t.Arity(); i++ {
			cells[i] = encodeValue(t.At(i))
		}
		if _, err := fmt.Fprintf(w, "t %d | %s\n", count, strings.Join(cells, ";")); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	_, err := fmt.Fprintln(w, "end")
	return err
}

// encodeValue renders a value in the dump's cell syntax.
func encodeValue(v value.Value) string {
	switch v.Kind() {
	case value.KindString:
		return "'" + strings.ReplaceAll(v.Str(), "'", "''") + "'"
	default:
		return v.String()
	}
}

// Read parses a dump and returns a fresh database holding its contents.  The
// database's logical time restarts at zero (a restored state is a new D_0).
func Read(r io.Reader) (*storage.Database, error) {
	db := storage.NewDatabase()
	if err := ReadInto(db, r); err != nil {
		return nil, err
	}
	return db, nil
}

// ReadInto parses a dump into an existing database, creating its relations.
// Relations that already exist cause an error.
func ReadInto(db *storage.Database, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			return line, true
		}
		return "", false
	}

	first, ok := next()
	if !ok || first != header {
		return fmt.Errorf("%w: missing %q header", ErrFormat, header)
	}

	changes := make(map[string]*multiset.Relation)
	for {
		line, ok := next()
		if !ok {
			break
		}
		if line == header {
			continue
		}
		if !strings.HasPrefix(line, "relation ") {
			return fmt.Errorf("%w: line %d: expected a relation declaration, got %q", ErrFormat, lineNo, line)
		}
		rel, err := parseRelationHeader(strings.TrimPrefix(line, "relation "))
		if err != nil {
			return fmt.Errorf("%w: line %d: %v", ErrFormat, lineNo, err)
		}
		inst := multiset.New(rel)
		for {
			row, ok := next()
			if !ok {
				return fmt.Errorf("%w: unexpected end of input inside relation %q", ErrFormat, rel.Name())
			}
			if row == "end" {
				break
			}
			if err := parseTupleLine(row, rel, inst); err != nil {
				return fmt.Errorf("%w: line %d: %v", ErrFormat, lineNo, err)
			}
		}
		if err := db.CreateRelation(rel); err != nil {
			return err
		}
		changes[rel.Name()] = inst
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(changes) == 0 {
		return nil
	}
	_, err := db.Apply(changes)
	return err
}

// parseRelationHeader parses "name(col type, col type, ...)".
func parseRelationHeader(s string) (schema.Relation, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return schema.Relation{}, fmt.Errorf("malformed relation declaration %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return schema.Relation{}, fmt.Errorf("relation declaration without a name")
	}
	body := s[open+1 : len(s)-1]
	var attrs []schema.Attribute
	for _, col := range strings.Split(body, ",") {
		col = strings.TrimSpace(col)
		if col == "" {
			continue
		}
		fields := strings.Fields(col)
		if len(fields) != 2 {
			return schema.Relation{}, fmt.Errorf("malformed column declaration %q", col)
		}
		kind, err := value.ParseKind(fields[1])
		if err != nil {
			return schema.Relation{}, err
		}
		attrs = append(attrs, schema.Attribute{Name: fields[0], Type: kind})
	}
	if len(attrs) == 0 {
		return schema.Relation{}, fmt.Errorf("relation %q has no columns", name)
	}
	return schema.NewRelation(name, attrs...), nil
}

// parseTupleLine parses "t <count> | v;v;v" into the relation instance.
func parseTupleLine(line string, rel schema.Relation, inst *multiset.Relation) error {
	if !strings.HasPrefix(line, "t ") {
		return fmt.Errorf("expected a tuple line, got %q", line)
	}
	rest := strings.TrimPrefix(line, "t ")
	sep := strings.Index(rest, "|")
	if sep < 0 {
		return fmt.Errorf("tuple line without separator: %q", line)
	}
	count, err := strconv.ParseUint(strings.TrimSpace(rest[:sep]), 10, 64)
	if err != nil || count == 0 {
		return fmt.Errorf("invalid multiplicity in %q", line)
	}
	cells, err := splitCells(strings.TrimSpace(rest[sep+1:]))
	if err != nil {
		return err
	}
	if len(cells) != rel.Arity() {
		return fmt.Errorf("tuple has %d values, relation %q expects %d", len(cells), rel.Name(), rel.Arity())
	}
	vals := make([]value.Value, len(cells))
	for i, cell := range cells {
		v, err := decodeValue(cell, rel.Attribute(i).Type)
		if err != nil {
			return fmt.Errorf("column %d: %v", i+1, err)
		}
		vals[i] = v
	}
	inst.Add(tuple.FromSlice(vals), count)
	return nil
}

// splitCells splits on ';' outside quoted strings.
func splitCells(s string) ([]string, error) {
	var cells []string
	var b strings.Builder
	inString := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'':
			inString = !inString
			b.WriteByte(c)
		case c == ';' && !inString:
			cells = append(cells, strings.TrimSpace(b.String()))
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if inString {
		return nil, fmt.Errorf("unterminated string in %q", s)
	}
	cells = append(cells, strings.TrimSpace(b.String()))
	return cells, nil
}

// decodeValue parses one cell according to the declared column domain.
func decodeValue(cell string, kind value.Kind) (value.Value, error) {
	if cell == "null" {
		return value.Null, nil
	}
	switch kind {
	case value.KindString:
		if len(cell) < 2 || cell[0] != '\'' || cell[len(cell)-1] != '\'' {
			return value.Null, fmt.Errorf("malformed string literal %q", cell)
		}
		return value.NewString(strings.ReplaceAll(cell[1:len(cell)-1], "''", "'")), nil
	case value.KindInt:
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return value.Null, fmt.Errorf("malformed integer %q", cell)
		}
		return value.NewInt(n), nil
	case value.KindFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return value.Null, fmt.Errorf("malformed real %q", cell)
		}
		return value.NewFloat(f), nil
	case value.KindBool:
		switch cell {
		case "true":
			return value.NewBool(true), nil
		case "false":
			return value.NewBool(false), nil
		default:
			return value.Null, fmt.Errorf("malformed boolean %q", cell)
		}
	default:
		return value.Null, fmt.Errorf("unsupported column domain %s", kind)
	}
}
