// Package tuple implements tuples of the multi-set relational data model
// (Definition 2.4 of Grefen & de By, ICDE 1994): construction, equality,
// positional projection α, concatenation ⊕, and the equality-consistent
// hashing used by the multi-set relation representation and the hash-based
// physical operators.
package tuple

import (
	"fmt"
	"strings"

	"mra/internal/value"
)

// Tuple is an element of dom(𝓡): an ordered list of atomic values.  Tuples
// are immutable; all operations return new tuples.
type Tuple struct {
	vals []value.Value
}

// New builds a tuple from values.  The argument slice is copied.
func New(vals ...value.Value) Tuple {
	cp := make([]value.Value, len(vals))
	copy(cp, vals)
	return Tuple{vals: cp}
}

// FromSlice builds a tuple that takes ownership of the given slice.  The
// caller must not modify the slice afterwards.  It exists so the evaluation
// engine can construct tuples without an extra copy on hot paths.
func FromSlice(vals []value.Value) Tuple { return Tuple{vals: vals} }

// Arity returns #r, the number of attributes of the tuple.
func (t Tuple) Arity() int { return len(t.vals) }

// At returns r.i, the value of the i-th attribute (0-based).
func (t Tuple) At(i int) value.Value { return t.vals[i] }

// Values returns a copy of the underlying value list.
func (t Tuple) Values() []value.Value {
	cp := make([]value.Value, len(t.vals))
	copy(cp, t.vals)
	return cp
}

// Project returns α_a(r): the concatenation of the attributes of r selected by
// the 0-based index list a, in the given order (Definition 2.4).  Indices may
// repeat.  It returns an error if an index is out of range.
func (t Tuple) Project(indices []int) (Tuple, error) {
	vals := make([]value.Value, 0, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(t.vals) {
			return Tuple{}, fmt.Errorf("tuple: projection index %%%d out of range for arity %d", i+1, len(t.vals))
		}
		vals = append(vals, t.vals[i])
	}
	return Tuple{vals: vals}, nil
}

// Concat returns r1 ⊕ r2, the concatenation of the attributes of the two
// tuples in order (Definition 2.4).
func (t Tuple) Concat(o Tuple) Tuple {
	vals := make([]value.Value, 0, len(t.vals)+len(o.vals))
	vals = append(vals, t.vals...)
	vals = append(vals, o.vals...)
	return Tuple{vals: vals}
}

// Equal reports whether two tuples are equal: same arity and pairwise equal
// attribute values (Definition 2.4).
func (t Tuple) Equal(o Tuple) bool {
	if len(t.vals) != len(o.vals) {
		return false
	}
	for i := range t.vals {
		if !t.vals[i].Equal(o.vals[i]) {
			return false
		}
	}
	return true
}

// Compare orders two tuples lexicographically attribute by attribute; shorter
// tuples sort before longer ones when they share a prefix.  The order is used
// only for canonical (deterministic) result rendering, never by the algebra
// itself, which is order-free.
func (t Tuple) Compare(o Tuple) int {
	n := len(t.vals)
	if len(o.vals) < n {
		n = len(o.vals)
	}
	for i := 0; i < n; i++ {
		if c := t.vals[i].Compare(o.vals[i]); c != 0 {
			return c
		}
	}
	return len(t.vals) - len(o.vals)
}

// HashSeed is the initial state of the incremental tuple hash: folding a
// tuple's values into it with HashMix, in order, yields exactly Hash (or
// HashOn for a projection).  Columnar operator kernels use the incremental
// form to hash join and grouping keys straight off column vectors, without
// materialising a tuple.
const HashSeed uint64 = 14695981039346656037

// hashPrime is the FNV-style multiplier of the tuple hash.
const hashPrime uint64 = 1099511628211

// HashMix folds one attribute value into an incremental tuple hash (see
// HashSeed).
func HashMix(h uint64, v value.Value) uint64 {
	h ^= v.Hash()
	h *= hashPrime
	return h
}

// Hash returns a 64-bit hash of the tuple consistent with Equal.
func (t Tuple) Hash() uint64 {
	h := HashSeed
	for _, v := range t.vals {
		h ^= v.Hash()
		h *= hashPrime
	}
	return h
}

// HashOn returns a 64-bit hash of the attributes selected by indices,
// consistent with equality of the corresponding projections.  It is the
// hash the physical join and group-by operators partition on.
func (t Tuple) HashOn(indices []int) uint64 {
	h := HashSeed
	for _, i := range indices {
		h ^= t.vals[i].Hash()
		h *= hashPrime
	}
	return h
}

// Column gathers attribute c of every tuple in ts into dst (reset to length
// zero first), returning the filled vector: the row-to-column transpose that
// turns an arena tuple batch into the column vectors the vectorised operator
// kernels run over.
func Column(ts []Tuple, c int, dst []value.Value) []value.Value {
	dst = dst[:0]
	for i := range ts {
		dst = append(dst, ts[i].vals[c])
	}
	return dst
}

// String renders the tuple as ⟨v1, v2, ...⟩ using the values' literal syntax.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, v := range t.vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte('>')
	return b.String()
}

// Ints is a convenience constructor building a tuple of integer values; it is
// heavily used by tests and workload generators.
func Ints(vals ...int64) Tuple {
	vs := make([]value.Value, len(vals))
	for i, v := range vals {
		vs[i] = value.NewInt(v)
	}
	return Tuple{vals: vs}
}

// Strings is a convenience constructor building a tuple of string values.
func Strings(vals ...string) Tuple {
	vs := make([]value.Value, len(vals))
	for i, v := range vals {
		vs[i] = value.NewString(v)
	}
	return Tuple{vals: vs}
}
