package tuple

import (
	"strings"
	"testing"
	"testing/quick"

	"mra/internal/value"
)

func TestNewCopiesInput(t *testing.T) {
	vals := []value.Value{value.NewInt(1), value.NewInt(2)}
	tp := New(vals...)
	vals[0] = value.NewInt(99)
	if tp.At(0).Int() != 1 {
		t.Error("New must copy its argument slice")
	}
	if tp.Arity() != 2 {
		t.Errorf("Arity = %d", tp.Arity())
	}
}

func TestValuesCopies(t *testing.T) {
	tp := Ints(1, 2, 3)
	vs := tp.Values()
	vs[0] = value.NewInt(42)
	if tp.At(0).Int() != 1 {
		t.Error("Values must return a copy")
	}
}

func TestProject(t *testing.T) {
	tp := New(value.NewString("grolsch"), value.NewString("grolsche"), value.NewFloat(5.0))
	p, err := tp.Project([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 2 || p.At(0).Float() != 5.0 || p.At(1).Str() != "grolsch" {
		t.Errorf("Project = %v", p)
	}
	// Repeated indices are allowed (Definition 2.4 only requires 1 ≤ i ≤ #r).
	pp, err := tp.Project([]int{0, 0})
	if err != nil || pp.Arity() != 2 || !pp.At(0).Equal(pp.At(1)) {
		t.Errorf("repeated projection = %v, %v", pp, err)
	}
	if _, err := tp.Project([]int{3}); err == nil {
		t.Error("out-of-range index must fail")
	}
	if _, err := tp.Project([]int{-1}); err == nil {
		t.Error("negative index must fail")
	}
}

func TestConcat(t *testing.T) {
	a := Ints(1, 2)
	b := Strings("x")
	c := a.Concat(b)
	if c.Arity() != 3 || c.At(2).Str() != "x" {
		t.Errorf("Concat = %v", c)
	}
	// ⊕ is not commutative on the attribute order.
	d := b.Concat(a)
	if d.At(0).Kind() != value.KindString {
		t.Error("Concat must preserve operand order")
	}
	empty := New()
	if !a.Concat(empty).Equal(a) || !empty.Concat(a).Equal(a) {
		t.Error("concatenation with the empty tuple is identity")
	}
}

func TestEqual(t *testing.T) {
	if !Ints(1, 2).Equal(Ints(1, 2)) {
		t.Error("equal tuples")
	}
	if Ints(1, 2).Equal(Ints(2, 1)) {
		t.Error("order matters")
	}
	if Ints(1).Equal(Ints(1, 2)) {
		t.Error("arity matters")
	}
	if !New(value.NewInt(3)).Equal(New(value.NewFloat(3.0))) {
		t.Error("cross-numeric attribute equality must hold")
	}
}

func TestCompare(t *testing.T) {
	if Ints(1, 2).Compare(Ints(1, 3)) >= 0 {
		t.Error("lexicographic ordering")
	}
	if Ints(1, 2).Compare(Ints(1, 2)) != 0 {
		t.Error("equal tuples compare 0")
	}
	if Ints(1).Compare(Ints(1, 0)) >= 0 {
		t.Error("prefix sorts first")
	}
	if Ints(2).Compare(Ints(1, 9)) <= 0 {
		t.Error("first attribute dominates")
	}
}

func TestHashMatchesEquality(t *testing.T) {
	a := New(value.NewString("ab"), value.NewString("c"))
	b := New(value.NewString("a"), value.NewString("bc"))
	if a.Hash() == b.Hash() {
		t.Error("suspicious: attribute boundaries should influence the hash")
	}
	if Ints(1, 2).Hash() != Ints(1, 2).Hash() {
		t.Error("equal tuples must share hashes")
	}
	if New(value.NewInt(3)).Hash() != New(value.NewFloat(3)).Hash() {
		t.Error("3 and 3.0 single-attribute tuples must share hashes")
	}
}

func TestHashProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 int64) bool {
		x, y := Ints(a1, a2), Ints(b1, b2)
		// Equal ⇒ same hash; the converse only holds modulo collisions, so
		// check the implication, not the equivalence.
		return !x.Equal(y) || x.Hash() == y.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b []string) bool {
		x, y := Strings(a...), Strings(b...)
		return !x.Equal(y) || x.Hash() == y.Hash()
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestHashConsistency(t *testing.T) {
	f := func(a1, a2 int64) bool {
		x, y := Ints(a1, a2), Ints(a1, a2)
		return x.Hash() == y.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Ints(1, 2).Hash() == Ints(2, 1).Hash() {
		t.Error("suspicious: permuted tuples hash equal")
	}
}

func TestHashOn(t *testing.T) {
	a := New(value.NewString("heineken"), value.NewString("nl"), value.NewFloat(5))
	b := New(value.NewString("amstel"), value.NewString("nl"), value.NewFloat(4.1))
	if a.HashOn([]int{1}) != b.HashOn([]int{1}) {
		t.Error("HashOn shared attribute must match")
	}
	if a.HashOn([]int{0}) == b.HashOn([]int{0}) {
		t.Error("HashOn distinct attribute must differ")
	}
	proj, _ := a.Project([]int{1, 2})
	if a.HashOn([]int{1, 2}) != proj.Hash() {
		t.Error("HashOn must equal the hash of the projected tuple")
	}
}

func TestString(t *testing.T) {
	s := New(value.NewString("ale"), value.NewInt(5)).String()
	if !strings.HasPrefix(s, "<") || !strings.Contains(s, "'ale'") || !strings.Contains(s, "5") {
		t.Errorf("String = %q", s)
	}
	if New().String() != "<>" {
		t.Errorf("empty tuple String = %q", New().String())
	}
}

func TestFromSlice(t *testing.T) {
	vals := []value.Value{value.NewInt(9)}
	tp := FromSlice(vals)
	if tp.Arity() != 1 || tp.At(0).Int() != 9 {
		t.Errorf("FromSlice = %v", tp)
	}
}

func TestConvenienceConstructors(t *testing.T) {
	it := Ints(3, 4)
	if it.At(0).Kind() != value.KindInt || it.At(1).Int() != 4 {
		t.Errorf("Ints = %v", it)
	}
	st := Strings("a", "b")
	if st.At(1).Str() != "b" {
		t.Errorf("Strings = %v", st)
	}
}
