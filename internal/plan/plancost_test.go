package plan

import (
	"testing"

	"mra/internal/algebra"
)

// BenchmarkPlanOverhead measures the fixed cost of compiling a small
// expression into a physical plan — the per-query overhead the planner split
// added to Engine.Eval.  It should stay in the order of a microsecond and a
// couple of dozen allocations, far below any actual evaluation.
func BenchmarkPlanOverhead(b *testing.B) {
	src := testSource(1000)
	cat := catalogOf(src)
	cards := cardsOf(src)
	expr := algebra.NewUnion(
		algebra.NewProject([]int{0}, algebra.NewRel("fact")),
		algebra.NewProject([]int{0}, algebra.NewRel("dim")))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlanner(cards).Plan(expr, cat); err != nil {
			b.Fatal(err)
		}
	}
}
