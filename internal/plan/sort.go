package plan

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/tuple"
)

// SortKey is one ordering key of a Sort operator: a 0-based attribute
// position in the operator's input schema and a direction.
type SortKey struct {
	// Col is the 0-based attribute position.
	Col int
	// Desc orders descending when set.
	Desc bool
}

// compareKeys orders two tuples by the key list, breaking ties with the full
// canonical tuple order so sorted output is deterministic however the input
// stream (or the parallel gang that produced it) was scheduled.
func compareKeys(keys []SortKey, a, b tuple.Tuple) int {
	for _, k := range keys {
		c := a.At(k.Col).Compare(b.At(k.Col))
		if c == 0 {
			continue
		}
		if k.Desc {
			return -c
		}
		return c
	}
	return a.Compare(b)
}

// SortTuples sorts rows in place by the key list (ties in canonical tuple
// order).  It is the same ordering the Sort physical operator produces; the
// facade uses it to sort already materialised results on the presentation
// path.
func SortTuples(rows []tuple.Tuple, keys []SortKey) {
	sort.Slice(rows, func(i, j int) bool { return compareKeys(keys, rows[i], rows[j]) < 0 })
}

// sortNode is the Sort physical operator: a blocking operator that
// materialises its input and emits the chunks in key order.  Relations are
// unordered, so Sort exists purely for presentation — the ORDER BY path of
// the SQL front-end plans it as the root operator and consumes the root
// stream in emission order.
type sortNode struct {
	base
	keys  []SortKey
	input Node
}

func (s *sortNode) Children() []Node { return []Node{s.input} }

func (s *sortNode) Describe() string {
	parts := make([]string, len(s.keys))
	for i, k := range s.keys {
		parts[i] = "%" + strconv.Itoa(k.Col+1)
		if k.Desc {
			parts[i] += " desc"
		}
	}
	return "Sort [" + strings.Join(parts, ", ") + "]"
}

func (s *sortNode) run(ctx *execCtx, emit Emit) error {
	in, err := ctx.materialize(s.input)
	if err != nil {
		return err
	}
	ctx.materialised(s, in.Cardinality())
	type chunk struct {
		tup   tuple.Tuple
		count uint64
	}
	chunks := make([]chunk, 0, in.DistinctCount())
	var memErr error
	in.Each(func(t tuple.Tuple, n uint64) bool {
		if memErr = ctx.chargeTuple(t); memErr != nil {
			return false
		}
		chunks = append(chunks, chunk{tup: t, count: n})
		return true
	})
	if memErr != nil {
		return memErr
	}
	if err := ctx.poll(); err != nil {
		return err
	}
	sort.Slice(chunks, func(i, j int) bool { return compareKeys(s.keys, chunks[i].tup, chunks[j].tup) < 0 })
	emit = ctx.pollingEmit(emit)
	for _, c := range chunks {
		if err := emit(c.tup, c.count); err != nil {
			return err
		}
	}
	return nil
}

// PlanOrdered compiles the expression like Plan and roots the result with a
// Sort operator over the given keys, which must address the expression's
// output schema.  The plan's root stream then emits in key order;
// ExecuteOrdered captures that order.
func (pl *Planner) PlanOrdered(e algebra.Expr, cat algebra.Catalog, keys []SortKey) (*Plan, error) {
	root, err := pl.compile(e, cat)
	if err != nil {
		return nil, err
	}
	root = pl.parallelize(root)
	for _, k := range keys {
		if k.Col < 0 || k.Col >= root.Schema().Arity() {
			return nil, fmt.Errorf("plan: sort key %%%d out of range for arity %d", k.Col+1, root.Schema().Arity())
		}
	}
	s := &sortNode{keys: keys, input: root}
	s.schema = root.Schema()
	s.est = root.Estimate()
	s.exactEst = root.meta().exactEst
	s.capHint = root.meta().capHint
	p := &Plan{Root: s, nodes: make([]Node, 0, 8), batchSize: pl.BatchSize, memLimit: pl.MemoryLimit}
	number(s, &p.nodes)
	return p, nil
}

// ExecuteOrdered runs the plan and returns its occurrences in root emission
// order (a tuple with multiplicity k appears k times consecutively) together
// with the result relation.  The order is only meaningful when the root is an
// order-producing operator — a Sort, as built by PlanOrdered.  st, when
// non-nil, accumulates per-operator statistics as in ExecuteStats.
func (p *Plan) ExecuteOrdered(src Source, st *Stats) ([]tuple.Tuple, *multiset.Relation, error) {
	return p.ExecuteOrderedContext(context.Background(), src, st)
}

// ExecuteOrderedContext is ExecuteOrdered under a lifecycle context, polled at
// the same amortised checkpoints as ExecuteContext.
func (p *Plan) ExecuteOrderedContext(qctx context.Context, src Source, st *Stats) ([]tuple.Tuple, *multiset.Relation, error) {
	ctx := p.newExecCtx(qctx, src, st)
	if err := ctx.poll(); err != nil {
		return nil, nil, err
	}
	out := multiset.NewWithCapacity(p.Root.Schema(), capacityFor(p.Root.meta().capHint))
	var ordered []tuple.Tuple
	err := ctx.run(p.Root, func(t tuple.Tuple, n uint64) error {
		out.Add(t, n)
		for i := uint64(0); i < n; i++ {
			ordered = append(ordered, t)
		}
		return nil
	})
	if st != nil {
		st.PerOperator = append(st.PerOperator, ctx.perOp...)
	}
	if err != nil {
		return nil, nil, err
	}
	return ordered, out, nil
}
