package plan

import (
	"math"
	"math/bits"

	"mra/internal/algebra"
	"mra/internal/scalar"
	"mra/internal/value"
)

// This file implements the cost-based join-order enumerator: a DPsize/DPsub
// dynamic program in the style of DPccp over the flattened join tree.  The
// planner harvests a join spine (nested Join, Product, and Select-over-join
// nodes) into a set of relation-valued leaves plus a global conjunct list,
// enumerates every bushy evaluation order by subset dynamic programming with
// statistics-driven selectivities, rebuilds the cheapest order with the
// ordinary physical join constructors, and restores the written column order
// with a final projection — a pure attribute permutation, which preserves
// multiset semantics (join commutativity and associativity hold over bags,
// Theorems 3.2/3.3 of the paper).

// maxJoinOrderLeaves caps the enumerated join size: beyond it the subset
// dynamic program's 3^n split enumeration stops paying for itself and the
// planner keeps the written order.
const maxJoinOrderLeaves = 12

// joinLeaf is one relation-valued operand of a flattened join tree.
type joinLeaf struct {
	expr   algebra.Expr
	offset int // first attribute position in the written-order concatenation
	arity  int
	node   Node // compiled plan, with single-leaf conjuncts folded in
}

// joinConjunct is one conjunct of the flattened join condition.  Its
// predicate references written-order global attribute positions; mask records
// which leaves it touches.
type joinConjunct struct {
	pred scalar.Predicate
	mask uint
	sel  float64 // estimated selectivity once both sides are present
}

// enumerateJoinOrder attempts to plan σcond(le × re) as a cost-ordered join
// tree.  It returns ok=false when the shape is not worth enumerating (fewer
// than three leaves, too many leaves, or reordering disabled), in which case
// the caller compiles the written order.
func (pl *Planner) enumerateJoinOrder(cond scalar.Predicate, le, re algebra.Expr, cat algebra.Catalog) (Node, bool, error) {
	if pl.NoJoinReorder {
		return nil, false, nil
	}
	n := countJoinLeaves(le) + countJoinLeaves(re)
	if n < 3 || n > maxJoinOrderLeaves {
		return nil, false, nil
	}

	var leaves []joinLeaf
	var conjs []scalar.Predicate
	arity, err := pl.flattenJoin(le, cat, 0, &leaves, &conjs)
	if err != nil {
		return nil, false, err
	}
	if _, err := pl.flattenJoin(re, cat, arity, &leaves, &conjs); err != nil {
		return nil, false, err
	}
	if cond != nil {
		conjs = append(conjs, scalar.Conjuncts(cond)...)
	}
	if len(leaves) != n {
		n = len(leaves)
		if n < 3 || n > maxJoinOrderLeaves {
			return nil, false, nil
		}
	}

	// Compile every leaf in isolation.
	for i := range leaves {
		node, err := pl.compile(leaves[i].expr, cat)
		if err != nil {
			return nil, false, err
		}
		leaves[i].node = node
	}

	// Classify conjuncts: single-leaf conjuncts fold into their leaf as
	// filters (with attribute references rebased to the leaf frame);
	// multi-leaf conjuncts become join predicates scored for the DP.
	leafOf := make([]int, arityOf(leaves))
	for i, lf := range leaves {
		for c := 0; c < lf.arity; c++ {
			leafOf[lf.offset+c] = i
		}
	}
	var joinConjs []joinConjunct
	var constPreds []scalar.Predicate
	for _, c := range conjs {
		refs := c.Refs(nil)
		mask := uint(0)
		for _, r := range refs {
			if r < 0 || r >= len(leafOf) {
				return nil, false, nil
			}
			mask |= 1 << uint(leafOf[r])
		}
		switch bits.OnesCount(mask) {
		case 0:
			constPreds = append(constPreds, c)
		case 1:
			i := bits.TrailingZeros(mask)
			mapping := make(map[int]int, leaves[i].arity)
			for k := 0; k < leaves[i].arity; k++ {
				mapping[leaves[i].offset+k] = k
			}
			rebased, err := c.Rebase(mapping)
			if err != nil {
				return nil, false, err
			}
			if err := rebased.Validate(leaves[i].node.Schema()); err != nil {
				return nil, false, nil
			}
			leaves[i].node = pl.makeFilter(rebased, leaves[i].node)
		default:
			joinConjs = append(joinConjs, joinConjunct{pred: c, mask: mask, sel: pl.conjunctSelectivity(c, leaves, leafOf)})
		}
	}

	order, err := pl.searchJoinOrder(leaves, joinConjs)
	if err != nil {
		return nil, false, err
	}
	root := order.node

	// Restore the written attribute order with a permuting projection when
	// the chosen order moved columns around.
	perm := make([]int, len(leafOf))
	pos := 0
	identity := true
	posOf := make([]int, len(leafOf))
	for _, i := range order.leaves {
		for c := 0; c < leaves[i].arity; c++ {
			posOf[leaves[i].offset+c] = pos
			if leaves[i].offset+c != pos {
				identity = false
			}
			pos++
		}
	}
	for g := range perm {
		perm[g] = posOf[g]
	}
	if !identity {
		s, err := root.Schema().Project(perm)
		if err != nil {
			return nil, false, err
		}
		node := &projectNode{cols: perm, input: root}
		node.schema = s
		node.est = root.Estimate()
		node.exactEst = root.meta().exactEst
		node.capHint = root.meta().capHint
		node.ndvHint = root.meta().ndvHint
		if in := root.meta().colStats; in != nil {
			cs := make([]colStat, len(perm))
			for i, c := range perm {
				cs[i] = in[c]
			}
			node.colStats = cs
		}
		root = node
	}
	for _, c := range constPreds {
		root = pl.makeFilter(c, root)
	}
	return root, true, nil
}

// countJoinLeaves counts the relation-valued operands of a join spine without
// resolving schemas, so trivial two-way joins can skip enumeration cheaply.
func countJoinLeaves(e algebra.Expr) int {
	switch n := e.(type) {
	case algebra.Join:
		return countJoinLeaves(n.Left) + countJoinLeaves(n.Right)
	case algebra.Product:
		return countJoinLeaves(n.Left) + countJoinLeaves(n.Right)
	case algebra.Select:
		switch n.Input.(type) {
		case algebra.Join, algebra.Product:
			return countJoinLeaves(n.Input)
		}
		return 1
	default:
		return 1
	}
}

// flattenJoin recursively harvests a join spine into leaves and conjuncts.
// base is the attribute offset of this subtree in the written-order
// concatenation; harvested conjuncts are rebased into that global frame.
func (pl *Planner) flattenJoin(e algebra.Expr, cat algebra.Catalog, base int, leaves *[]joinLeaf, conjs *[]scalar.Predicate) (int, error) {
	appendCond := func(cond scalar.Predicate, arity int) error {
		if cond == nil {
			return nil
		}
		mapping := make(map[int]int, arity)
		for i := 0; i < arity; i++ {
			mapping[i] = base + i
		}
		rebased, err := cond.Rebase(mapping)
		if err != nil {
			return err
		}
		*conjs = append(*conjs, scalar.Conjuncts(rebased)...)
		return nil
	}
	switch n := e.(type) {
	case algebra.Join:
		la, err := pl.flattenJoin(n.Left, cat, base, leaves, conjs)
		if err != nil {
			return 0, err
		}
		ra, err := pl.flattenJoin(n.Right, cat, base+la, leaves, conjs)
		if err != nil {
			return 0, err
		}
		return la + ra, appendCond(n.Cond, la+ra)
	case algebra.Product:
		la, err := pl.flattenJoin(n.Left, cat, base, leaves, conjs)
		if err != nil {
			return 0, err
		}
		ra, err := pl.flattenJoin(n.Right, cat, base+la, leaves, conjs)
		if err != nil {
			return 0, err
		}
		return la + ra, nil
	case algebra.Select:
		switch n.Input.(type) {
		case algebra.Join, algebra.Product:
			arity, err := pl.flattenJoin(n.Input, cat, base, leaves, conjs)
			if err != nil {
				return 0, err
			}
			return arity, appendCond(n.Cond, arity)
		}
	}
	s, err := e.Schema(cat)
	if err != nil {
		return 0, err
	}
	*leaves = append(*leaves, joinLeaf{expr: e, offset: base, arity: s.Arity()})
	return s.Arity(), nil
}

// arityOf returns the total attribute count of the flattened leaves.
func arityOf(leaves []joinLeaf) int {
	total := 0
	for _, lf := range leaves {
		total += lf.arity
	}
	return total
}

// conjunctSelectivity scores one multi-leaf conjunct for the dynamic program:
// attribute equalities use 1/max(NDV) when column statistics exist on both
// sides, the flat joinSelectivity constant otherwise; non-equality conjuncts
// use the selection default.
func (pl *Planner) conjunctSelectivity(c scalar.Predicate, leaves []joinLeaf, leafOf []int) float64 {
	cmp, ok := c.(scalar.Compare)
	if !ok {
		return selectionSelectivity
	}
	la, lok := cmp.Left.(scalar.Attr)
	ra, rok := cmp.Right.(scalar.Attr)
	if !lok || !rok {
		return selectionSelectivity
	}
	if cmp.Op != value.CmpEq {
		return selectionSelectivity
	}
	lndv := pl.leafColNDV(leaves, leafOf, la.Index)
	rndv := pl.leafColNDV(leaves, leafOf, ra.Index)
	if s, ok := equiSelectivity(lndv, rndv); ok {
		return s
	}
	return joinSelectivity
}

// leafColNDV resolves a global attribute position to its leaf's column
// statistics, returning 0 when unknown.
func (pl *Planner) leafColNDV(leaves []joinLeaf, leafOf []int, global int) float64 {
	if global < 0 || global >= len(leafOf) {
		return 0
	}
	lf := leaves[leafOf[global]]
	return ndvAt(lf.node.meta().colStats, global-lf.offset)
}

// joinOrderPlan is the reconstructed plan of one DP subset: the physical node
// plus the leaf sequence its output columns follow.
type joinOrderPlan struct {
	node   Node
	leaves []int
}

// searchJoinOrder runs the subset dynamic program and reconstructs the
// cheapest join tree.  Cost of combining two subsets is the build-plus-probe
// work of the join: both input cardinalities plus the output cardinality (a
// cross product therefore pays for its full output, which prunes it whenever
// any connected order exists).
func (pl *Planner) searchJoinOrder(leaves []joinLeaf, conjs []joinConjunct) (joinOrderPlan, error) {
	n := len(leaves)
	full := uint(1)<<uint(n) - 1
	card := make([]float64, full+1)
	cost := make([]float64, full+1)
	split := make([]uint, full+1)
	for s := uint(1); s <= full; s++ {
		if bits.OnesCount(s) == 1 {
			i := bits.TrailingZeros(s)
			card[s] = leaves[i].node.Estimate()
			cost[s] = 0
			continue
		}
		// Output cardinality: product of leaf estimates times the
		// selectivity of every conjunct fully contained in the subset.
		c := 1.0
		for i := 0; i < n; i++ {
			if s&(1<<uint(i)) != 0 {
				c *= leaves[i].node.Estimate()
			}
		}
		for _, jc := range conjs {
			if jc.mask&s == jc.mask {
				c *= jc.sel
			}
		}
		card[s] = c
		cost[s] = math.Inf(1)
		// Canonical split enumeration: s1 always contains the lowest set
		// bit, so each unordered partition is tried once (the physical
		// constructor picks build side and commutation itself).
		low := s & (^s + 1)
		for s1 := (s - 1) & s; s1 > 0; s1 = (s1 - 1) & s {
			if s1&low == 0 {
				continue
			}
			s2 := s ^ s1
			w := cost[s1] + cost[s2] + card[s1] + card[s2] + card[s]
			if w < cost[s] {
				cost[s] = w
				split[s] = s1
			}
		}
	}
	return pl.buildJoinOrder(full, leaves, conjs, split)
}

// buildJoinOrder reconstructs the physical plan of a DP subset, attaching
// every conjunct at the lowest join that covers it.
func (pl *Planner) buildJoinOrder(s uint, leaves []joinLeaf, conjs []joinConjunct, split []uint) (joinOrderPlan, error) {
	if bits.OnesCount(s) == 1 {
		i := bits.TrailingZeros(s)
		return joinOrderPlan{node: leaves[i].node, leaves: []int{i}}, nil
	}
	s1 := split[s]
	s2 := s ^ s1
	left, err := pl.buildJoinOrder(s1, leaves, conjs, split)
	if err != nil {
		return joinOrderPlan{}, err
	}
	right, err := pl.buildJoinOrder(s2, leaves, conjs, split)
	if err != nil {
		return joinOrderPlan{}, err
	}
	order := append(append([]int(nil), left.leaves...), right.leaves...)
	// Attribute positions in the joined frame follow the leaf sequence.
	mapping := make(map[int]int)
	pos := 0
	for _, i := range order {
		for c := 0; c < leaves[i].arity; c++ {
			mapping[leaves[i].offset+c] = pos
			pos++
		}
	}
	var spanning []scalar.Predicate
	for _, jc := range conjs {
		if jc.mask&s == jc.mask && jc.mask&s1 != jc.mask && jc.mask&s2 != jc.mask {
			rebased, err := jc.pred.Rebase(mapping)
			if err != nil {
				return joinOrderPlan{}, err
			}
			spanning = append(spanning, rebased)
		}
	}
	var cond scalar.Predicate
	if len(spanning) > 0 {
		cond = scalar.NewAnd(spanning...)
	}
	node, err := pl.makeJoin(cond, left.node, right.node)
	if err != nil {
		return joinOrderPlan{}, err
	}
	return joinOrderPlan{node: node, leaves: order}, nil
}
