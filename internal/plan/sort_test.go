package plan

import (
	"strings"
	"testing"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// TestSortOperator checks PlanOrdered/ExecuteOrdered: key order with
// descending directions, canonical tiebreak, and multiplicity expansion.
func TestSortOperator(t *testing.T) {
	s := schema.NewRelation("r",
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindInt})
	r := multiset.New(s)
	r.Add(tuple.Ints(1, 9), 2)
	r.Add(tuple.Ints(3, 1), 1)
	r.Add(tuple.Ints(1, 2), 1)
	r.Add(tuple.Ints(2, 5), 1)
	src := mapSource{"r": r}

	p, err := NewPlanner(cardsOf(src)).PlanOrdered(algebra.NewRel("r"), catalogOf(src), []SortKey{{Col: 0, Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(p.Root.Describe(), "Sort [%1 desc]") {
		t.Errorf("root = %s", p.Root.Describe())
	}
	ordered, rel, err := p.ExecuteOrdered(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 5 || len(ordered) != 5 {
		t.Fatalf("ordered = %v", ordered)
	}
	// Descending on %1; the two a=1 tuples tie and fall back to canonical
	// order (<1,2> before <1,9>); multiplicity 2 expands to adjacent rows.
	want := []tuple.Tuple{tuple.Ints(3, 1), tuple.Ints(2, 5), tuple.Ints(1, 2), tuple.Ints(1, 9), tuple.Ints(1, 9)}
	for i, tp := range want {
		if !ordered[i].Equal(tp) {
			t.Fatalf("ordered[%d] = %s, want %s (full: %v)", i, ordered[i], tp, ordered)
		}
	}

	// Out-of-range keys are rejected at plan time.
	if _, err := NewPlanner(cardsOf(src)).PlanOrdered(algebra.NewRel("r"), catalogOf(src), []SortKey{{Col: 5}}); err == nil {
		t.Error("out-of-range sort key must fail")
	}
}

// TestSortAboveParallelRegion checks the ordered path composes with the
// exchange operators: the sort consumes the merged partials and the output
// order is deterministic regardless of worker scheduling.
func TestSortAboveParallelRegion(t *testing.T) {
	src := testSource(1000)
	e := algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("fact"))
	keys := []SortKey{{Col: 1, Desc: true}}

	serialPlan, err := NewPlanner(cardsOf(src)).PlanOrdered(e, catalogOf(src), keys)
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := serialPlan.ExecuteOrdered(src, nil)
	if err != nil {
		t.Fatal(err)
	}

	pp := &Planner{Cards: cardsOf(src), Workers: 4, ParallelThreshold: 1}
	p, err := pp.PlanOrdered(e, catalogOf(src), keys)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countNodes(p); m == 0 {
		t.Fatalf("aggregate under the sort must be parallel:\n%s", p)
	}
	for round := 0; round < 5; round++ {
		ordered, _, err := p.ExecuteOrdered(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(ordered) != len(serial) {
			t.Fatalf("round %d: %d rows, want %d", round, len(ordered), len(serial))
		}
		for i := range ordered {
			if !ordered[i].Equal(serial[i]) {
				t.Fatalf("round %d: row %d = %s, want %s", round, i, ordered[i], serial[i])
			}
		}
	}
}

// TestSortTuplesHelper checks the exported sorting helper matches the
// operator's ordering on an expanded occurrence slice.
func TestSortTuplesHelper(t *testing.T) {
	rows := []tuple.Tuple{tuple.Ints(2, 1), tuple.Ints(1, 2), tuple.Ints(2, 0), tuple.Ints(1, 2)}
	SortTuples(rows, []SortKey{{Col: 0}, {Col: 1, Desc: true}})
	want := []tuple.Tuple{tuple.Ints(1, 2), tuple.Ints(1, 2), tuple.Ints(2, 1), tuple.Ints(2, 0)}
	for i := range want {
		if !rows[i].Equal(want[i]) {
			t.Fatalf("rows[%d] = %s, want %s", i, rows[i], want[i])
		}
	}
}
