package plan

import (
	"context"
	"errors"
	"fmt"

	"mra/internal/exec"
	"mra/internal/multiset"
	"mra/internal/tuple"
	"mra/internal/value"
)

// This file implements the exchange operators of the morsel-driven parallel
// runtime and the planner pass that inserts them.
//
// A Merge node runs its subtree once per worker on an exec.Pool; every worker
// executes the same operator tree but sees only a disjoint slice of the
// inputs, cut by the Partition nodes below.  Each worker's output stream is
// collected into a private partial relation and the Merge sums the partials —
// exact under bag semantics, because multiplicities add across disjoint
// partitions (the paper's relations are functions dom(𝓡) → ℕ, and the
// operators parallelised here distribute over partition union).
//
// How a Partition cuts its slice depends on what the operator above it needs:
//
//   - morsel partitions (scans under streaming pipelines and under the probe
//     side of a parallel hash join) take no fixed slice at all: the gang
//     shares one exec.MorselQueue per scan, and every worker claims the next
//     fixed-size entry range when it runs out of work.  Any disjoint split of
//     a scan is exact, so the queue is free to rebalance — a worker stuck on
//     an expensive range simply stops claiming while the others drain the
//     rest, which is what keeps skewed data from serialising the gang behind
//     one overloaded worker;
//   - hash partitions assign chunks statically by hash — of the grouping
//     columns under a parallel aggregate (groups never span workers, so the
//     merged partials need no second aggregation pass) or of the full tuple
//     under parallel Difference/Intersect (both operands agree on every
//     tuple's owner, so per-worker monus/min results sum to the serial
//     result).  These operators need key-consistent slices, which dynamic
//     stealing cannot provide.
//
// Parallel hash joins do not partition by join key at all: the exchange
// builds the join table once, in the parent, before the gang starts, and the
// workers probe it read-only over morsel-partitioned probe scans.  A complete
// shared table means no key-closure requirement on the probe split, so probe
// work rebalances freely even when the join keys are heavily skewed.
//
// All state a gang shares — morsel queues, pre-built join tables, the scan
// snapshot — is created by the parent before the workers start and is either
// read-only (tables, snapshot) or internally synchronised by one atomic
// (queues), so workers keep the single-threaded Emit contract of the package
// comment.

// DefaultParallelThreshold is the estimated input cardinality (tuples,
// counting duplicates) below which the planner leaves a shape serial: under
// it, goroutine spawn and partial-merge costs dominate the divided work.
const DefaultParallelThreshold = 1024.0

// ---------------------------------------------------------------------------
// Exchange operators
// ---------------------------------------------------------------------------

// partitionMode selects how a partitionNode cuts the executing worker's
// slice.
type partitionMode int

const (
	// partitionMorsel streams work-stealing entry ranges of a leaf claimed
	// from the gang's shared morsel queue.  Exact for any operator above it
	// that distributes over arbitrary disjoint splits.
	partitionMorsel partitionMode = iota
	// partitionHash passes through only the chunks whose hash (of cols, or of
	// the full tuple when cols is nil) falls in the executing worker's range.
	// Exact for operators that need key-consistent slices.
	partitionHash
)

// partitionNode cuts the stream of its input to the executing worker's
// slice; outside a parallel region it is the identity.
type partitionNode struct {
	base
	input Node
	// mode selects morsel stealing or static hash assignment.
	mode partitionMode
	// cols are the attribute positions hashed for partitionHash; nil means
	// the full tuple hash.
	cols []int
	// workers is the gang width the planner inserted this node for (display
	// and static splits; morsel execution uses the shared queue instead).
	workers int
	// morselSize is the entry range size of partitionMorsel claims, chosen by
	// the cost model (or the planner's MorselSize override) at plan time.
	morselSize int
}

func (p *partitionNode) Children() []Node { return []Node{p.input} }

func (p *partitionNode) Describe() string {
	if p.mode == partitionMorsel {
		return fmt.Sprintf("Partition [morsel size=%d]", p.morselSize)
	}
	if p.cols == nil {
		return fmt.Sprintf("Partition [hash workers=%d]", p.workers)
	}
	return fmt.Sprintf("Partition [hash(%s) workers=%d]", colList(p.cols), p.workers)
}

func (p *partitionNode) run(ctx *execCtx, emit Emit) error {
	return unbatched(ctx, p, emit)
}

// runBatch implements batchRunner: the worker's slice is emitted batch-wise,
// straight off the leaf arena for morsel and scan-hash slices.
func (p *partitionNode) runBatch(ctx *execCtx, emit EmitBatch) error {
	if ctx.workers <= 1 {
		return ctx.runBatch(p.input, emit)
	}
	if p.mode == partitionMorsel {
		if q := ctx.morselQueue(p); q != nil {
			return p.runMorsels(ctx, q, emit)
		}
		// No queue (defensive): degrade to a static full-tuple hash slice,
		// which is exact wherever a morsel split is.
	}
	// Fast path: a full-tuple hash partition directly above a scan selects
	// its slice by the relation's cached entry hashes — one modulo per tuple,
	// no re-hashing.
	if s, ok := p.input.(*scanNode); ok && p.cols == nil {
		r, err := s.lookup(ctx)
		if err != nil {
			return err
		}
		w := newBatchWriter(ctx.batchCap(), emit)
		var iterErr error
		r.EachInPartition(ctx.worker, ctx.workers, func(t tuple.Tuple, n uint64) bool {
			iterErr = w.push(t, n)
			return iterErr == nil
		})
		if iterErr != nil {
			return iterErr
		}
		return w.flush()
	}
	part := exec.NewPartitioner(p.cols, ctx.workers)
	if ctx.rowBatches {
		w := newBatchWriter(ctx.batchCap(), emit)
		err := ctx.runBatch(p.input, func(b *Batch) error {
			for i, t := range b.Tuples {
				if part.Owner(t) != ctx.worker {
					continue
				}
				if err := w.push(t, b.Counts[i]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		return w.flush()
	}
	// Columnar path: the worker's slice is a selection over the input batch —
	// key hashes come off the row tuples when present (hashing a tuple walks
	// its values once) or incrementally off the column vectors otherwise, and
	// no chunk is copied either way.
	var cc colCache
	var keyVecs []value.Vec
	var sel []int32
	var out Batch
	return ctx.runBatch(p.input, func(b *Batch) error {
		if b.Tuples == nil {
			cc.batch(b)
			keyVecs = keyVecs[:0]
			if p.cols == nil {
				for c := 0; c < b.arity(); c++ {
					keyVecs = append(keyVecs, cc.col(c))
				}
			} else {
				for _, c := range p.cols {
					keyVecs = append(keyVecs, cc.col(c))
				}
			}
		}
		sel = sel[:0]
		n := b.Len()
		for i := 0; i < n; i++ {
			r := b.Row(i)
			var h uint64
			switch {
			case b.Tuples == nil:
				h = hashRowOn(keyVecs, r)
			case p.cols == nil:
				h = b.Tuples[r].Hash()
			default:
				h = b.Tuples[r].HashOn(p.cols)
			}
			if part.OwnerHash(h) != ctx.worker {
				continue
			}
			sel = append(sel, int32(r))
		}
		if len(sel) == 0 {
			return nil
		}
		out = *b
		out.Sel = sel
		return emit(&out)
	})
}

// runMorsels drains the shared queue: the worker claims entry ranges of the
// leaf until none remain, emitting each range's live chunks batch-wise.  The
// gang collectively delivers every chunk exactly once.
func (p *partitionNode) runMorsels(ctx *execCtx, q *exec.MorselQueue, emit EmitBatch) error {
	w := newBatchWriter(ctx.batchCap(), emit)
	switch leaf := p.input.(type) {
	case *scanNode:
		r, err := leaf.lookup(ctx)
		if err != nil {
			return err
		}
		for {
			// One cancellation checkpoint per claimed morsel: the amortised
			// point where a gang worker notices its query was cancelled (by the
			// user, a deadline, or a failed sibling).
			if err := ctx.poll(); err != nil {
				return err
			}
			lo, hi, ok := q.Next()
			if !ok {
				break
			}
			var iterErr error
			r.EachEntryRange(lo, hi, func(t tuple.Tuple, n uint64) bool {
				iterErr = w.push(t, n)
				return iterErr == nil
			})
			if iterErr != nil {
				return iterErr
			}
		}
	case *valuesNode:
		for {
			if err := ctx.poll(); err != nil {
				return err
			}
			lo, hi, ok := q.Next()
			if !ok {
				break
			}
			for _, row := range leaf.rows[lo:hi] {
				if err := w.push(tuple.New(row...), 1); err != nil {
					return err
				}
			}
		}
	default:
		return fmt.Errorf("plan: morsel partition above non-leaf %T", p.input)
	}
	return w.flush()
}

// mergeNode is the gang boundary: it executes its subtree once per worker on
// the exec runtime and emits the sum of the per-worker partial multisets.
// Nested inside an already parallel region it degrades to a pass-through, so
// a plan remains correct however exchanges end up composed.
type mergeNode struct {
	base
	input   Node
	workers int
}

func (m *mergeNode) Children() []Node { return []Node{m.input} }
func (m *mergeNode) Describe() string { return fmt.Sprintf("Merge [workers=%d]", m.workers) }

// gangState is the shared state of one gang execution, created by the parent
// before the workers start: the morsel queues (one per morsel partition,
// internally synchronised) and the pre-built join tables (read-only once
// built).  Workers access it through their execCtx and never mutate the maps.
type gangState struct {
	morsels map[int]*exec.MorselQueue
	builds  map[int]*joinTable
}

// morselQueue returns the gang's shared queue for a morsel partition, or nil
// outside a gang.
func (ctx *execCtx) morselQueue(p *partitionNode) *exec.MorselQueue {
	if ctx.gang == nil {
		return nil
	}
	return ctx.gang.morsels[p.meta().id]
}

// sharedBuild returns the gang's pre-built table for a shared hash join, or
// nil when the join must build its own.
func (ctx *execCtx) sharedBuild(j *hashJoinNode) *joinTable {
	if ctx.gang == nil {
		return nil
	}
	return ctx.gang.builds[j.meta().id]
}

// snapshotSource is a frozen name→relation map handed to worker goroutines.
// Workers must not call the parent's Source: transaction sources record the
// relations they resolve (for commit validation) and are not safe for
// concurrent use, so every scan leaf is resolved once, in the parent
// goroutine, before the gang starts.
type snapshotSource map[string]*multiset.Relation

// Relation implements Source.
func (s snapshotSource) Relation(name string) (*multiset.Relation, bool) {
	r, ok := s[name]
	return r, ok
}

// snapshotScans pre-resolves every scan leaf under n through the parent
// context's source.
func snapshotScans(ctx *execCtx, n Node, into snapshotSource) error {
	if s, ok := n.(*scanNode); ok {
		if _, done := into[s.name]; !done {
			r, err := s.lookup(ctx)
			if err != nil {
				return err
			}
			into[s.name] = r
		}
	}
	for _, c := range n.Children() {
		if err := snapshotScans(ctx, c, into); err != nil {
			return err
		}
	}
	return nil
}

// prepare builds the gang's shared state for the subtree: one morsel queue
// per morsel partition (sized over the leaf's entry arena) and one join table
// per shared hash join, built here in the parent — once, single-threaded —
// so the workers only probe.  The build subtree of a shared join executes
// during prepare and is therefore not walked for worker-side state.  The
// caller's ctx resolves scans through the gang snapshot, so the build sees
// exactly the relations the workers will.
func prepare(ctx *execCtx, n Node, snap snapshotSource, gs *gangState) error {
	switch x := n.(type) {
	case *partitionNode:
		if x.mode == partitionMorsel {
			span, err := leafSpan(x.input, snap)
			if err != nil {
				return err
			}
			gs.morsels[x.meta().id] = exec.NewMorselQueue(span, x.morselSize)
		}
	case *hashJoinNode:
		if x.shared {
			var tb *joinTable
			var err error
			if x.parBuild {
				// The build side is itself morsel-partitioned: create its
				// queues first, then run the build gang over them.
				build, _ := x.buildSide()
				if err := prepare(ctx, build, snap, gs); err != nil {
					return err
				}
				tb, err = x.parallelBuildTable(ctx, gs)
			} else {
				tb, err = x.buildTable(ctx)
			}
			if err != nil {
				return err
			}
			gs.builds[x.meta().id] = tb
			probe, _ := x.probeSide()
			return prepare(ctx, probe, snap, gs)
		}
	}
	for _, c := range n.Children() {
		if err := prepare(ctx, c, snap, gs); err != nil {
			return err
		}
	}
	return nil
}

// parallelBuildTable materialises a shared join's build side with a gang of
// its own: each worker streams the morsel-partitioned build subtree (claiming
// entry ranges from the queues prepare just created) into a partition-local
// joinTable, and the partials are absorbed into one table for the probe gang.
// Any disjoint split of the build stream is exact — insertion order within a
// collision chain does not affect which tuples match, only match order, and
// relations are unordered.
func (j *hashJoinNode) parallelBuildTable(ctx *execCtx, gs *gangState) (*joinTable, error) {
	build, buildCols := j.buildSide()
	pool := exec.NewPool(j.buildWorkers)
	wctxs := make([]*execCtx, pool.Workers())
	capEach := capacityFor(build.meta().capHint)/pool.Workers() + 1
	tables, err := exec.Gather(ctx.queryCtx(), pool, func(gctx context.Context, w int) (*joinTable, error) {
		wctx := ctx.workerCtx(w, pool.Workers(), gs)
		wctx.setContext(gctx)
		wctxs[w] = wctx
		tb := newJoinTable(capEach)
		err := wctx.run(build, func(t tuple.Tuple, n uint64) error {
			if err := wctx.chargeTuple(t); err != nil {
				return err
			}
			tb.insert(t, n, buildCols)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return tb, nil
	})
	ctx.foldWorkers(wctxs)
	if err != nil {
		return nil, wrapGangErr(j, err)
	}
	global := tables[0]
	for _, tb := range tables[1:] {
		global.absorb(tb)
	}
	ctx.materialised(j, global.built)
	return global, nil
}

// leafSpan returns the morsel index domain of a leaf: the entry-arena span of
// a snapshotted scan, or the row count of a literal.
func leafSpan(n Node, snap snapshotSource) (int, error) {
	switch leaf := n.(type) {
	case *scanNode:
		r, ok := snap[leaf.name]
		if !ok {
			return 0, fmt.Errorf("plan: morsel scan %q missing from snapshot", leaf.name)
		}
		return r.EntrySpan(), nil
	case *valuesNode:
		return len(leaf.rows), nil
	default:
		return 0, fmt.Errorf("plan: morsel partition above non-leaf %T", n)
	}
}

// gangSetup builds the shared state of one gang execution over a subtree,
// common to both exchange flavours (Merge and GroupMerge): the scan snapshot,
// the worker pool, and the gang state — morsel queues and shared join tables,
// built here in the parent.  Prepare resolves through the snapshot
// (statistics still flow into the parent's counters via the shared pointers),
// so shared-join builds see exactly the relations the workers will and the
// source is not walked a second time.
func gangSetup(ctx *execCtx, subtree Node, workers int) (*exec.Pool, snapshotSource, *gangState, error) {
	snap := make(snapshotSource)
	if err := snapshotScans(ctx, subtree, snap); err != nil {
		return nil, nil, nil, err
	}
	pool := exec.NewPool(workers)
	gs := &gangState{morsels: make(map[int]*exec.MorselQueue), builds: make(map[int]*joinTable)}
	pctx := *ctx
	pctx.src = snap
	if err := prepare(&pctx, subtree, snap, gs); err != nil {
		return nil, nil, nil, err
	}
	return pool, snap, gs, nil
}

// gang runs the per-worker subtree executions and returns the partials; the
// caller decides whether to stream or materialise them.
func (m *mergeNode) gang(ctx *execCtx) (*exec.Partials, error) {
	pool, snap, gs, err := gangSetup(ctx, m.input, m.workers)
	if err != nil {
		return nil, err
	}
	wctxs := make([]*execCtx, pool.Workers())
	capEach := capacityFor(m.input.meta().capHint)/pool.Workers() + 1
	parts, err := exec.Exchange(ctx.queryCtx(), pool, m.input.Schema(), capEach, func(gctx context.Context, w int, into *multiset.Relation) error {
		wctx := ctx.workerCtx(w, pool.Workers(), gs)
		wctx.setContext(gctx)
		wctx.src = snap
		wctxs[w] = wctx
		return wctx.collect(m.input, into)
	})
	ctx.foldWorkers(wctxs)
	// The per-worker partials are the exchange's materialised state.
	ctx.materialised(m, parts.Cardinality())
	return parts, wrapGangErr(m, err)
}

// wrapGangErr attaches the gang boundary's operator to a recovered worker
// panic, so the surfaced error names both the worker (from exec.PanicError)
// and the operator whose gang it crashed.
func wrapGangErr(n Node, err error) error {
	var pe *exec.PanicError
	if errors.As(err, &pe) {
		return fmt.Errorf("%s: %w", n.Describe(), err)
	}
	return err
}

func (m *mergeNode) run(ctx *execCtx, emit Emit) error {
	return unbatched(ctx, m, emit)
}

// runBatch implements batchRunner: the merged partials stream out batch-wise.
func (m *mergeNode) runBatch(ctx *execCtx, emit EmitBatch) error {
	if ctx.workers > 1 {
		return ctx.runBatch(m.input, emit)
	}
	parts, err := m.gang(ctx)
	if err != nil {
		return err
	}
	w := newBatchWriter(ctx.batchCap(), emit)
	if err := parts.Each(func(t tuple.Tuple, n uint64) error { return w.push(t, n) }); err != nil {
		return err
	}
	return w.flush()
}

// result implements materializer: when a consumer wants the whole relation
// (or the Merge is the plan root), the partials are summed directly with
// their cached hashes instead of being re-hashed through an emit stream.
func (m *mergeNode) result(ctx *execCtx) (*multiset.Relation, error) {
	if ctx.workers > 1 {
		return ctx.materialize(m.input)
	}
	parts, err := m.gang(ctx)
	if err != nil {
		return nil, err
	}
	return parts.Merge(multiset.NewWithCapacity(m.Schema(), capacityFor(m.capHint))), nil
}

// groupMergeNode is the gang boundary of a two-phase parallel aggregate.  Its
// child is the local phase: a hashAggNode (marked partial) whose input
// pipeline is morsel-partitioned, so every worker pre-aggregates the morsels
// it claims into a private group table of partial AggStates.  The parent then
// combines the per-worker tables with MergePartial and finalises — the global
// phase.  Unlike the one-phase shape (hash partition on the grouping columns
// under a plain Merge) no key-consistent split is required: a group may span
// every worker, the partial states just merge.  That is what makes global
// (ungrouped) aggregates parallel at all, removes the key-skew serialisation
// of hot groups, and shrinks merge traffic from one tuple per input
// occurrence to one partial state per (worker, group).
type groupMergeNode struct {
	base
	agg     *hashAggNode
	workers int
}

func (m *groupMergeNode) Children() []Node { return []Node{m.agg} }
func (m *groupMergeNode) Describe() string {
	return fmt.Sprintf("GroupMerge [workers=%d]", m.workers)
}

// gangTables runs the local phase once per worker and merges the partial
// tables into one global table, ready to finalise.
func (m *groupMergeNode) gangTables(ctx *execCtx) (*groupTable, error) {
	pool, snap, gs, err := gangSetup(ctx, m.agg.input, m.workers)
	if err != nil {
		return nil, err
	}
	wctxs := make([]*execCtx, pool.Workers())
	tables, err := exec.Gather(ctx.queryCtx(), pool, func(gctx context.Context, w int) (*groupTable, error) {
		wctx := ctx.workerCtx(w, pool.Workers(), gs)
		wctx.setContext(gctx)
		wctx.src = snap
		wctxs[w] = wctx
		return m.agg.buildGroups(wctx)
	})
	ctx.foldWorkers(wctxs)
	if err != nil {
		return nil, wrapGangErr(m, err)
	}
	global := tables[0]
	for _, tb := range tables[1:] {
		if err := global.mergeFrom(tb); err != nil {
			return nil, err
		}
	}
	// The exchange's own state is the merged global table; the per-worker
	// partials were already charged to the aggregate node by buildGroups.
	ctx.materialised(m, uint64(len(global.groups)))
	return global, nil
}

func (m *groupMergeNode) run(ctx *execCtx, emit Emit) error {
	if ctx.workers > 1 {
		// Nested inside an already parallel region: degrade to a pass-through,
		// like mergeNode, so composed exchanges stay correct.
		return ctx.run(m.agg, emit)
	}
	groups, err := m.gangTables(ctx)
	if err != nil {
		return err
	}
	return groups.each(emit)
}

// runBatch implements batchRunner: the finalised groups stream out batch-wise.
func (m *groupMergeNode) runBatch(ctx *execCtx, emit EmitBatch) error {
	if ctx.workers > 1 {
		return ctx.runBatch(m.agg, emit)
	}
	groups, err := m.gangTables(ctx)
	if err != nil {
		return err
	}
	w := newBatchWriter(ctx.batchCap(), emit)
	if err := groups.each(w.push); err != nil {
		return err
	}
	return w.flush()
}

// ---------------------------------------------------------------------------
// Planner pass
// ---------------------------------------------------------------------------

// parallelize walks a freshly compiled plan top-down and wraps the topmost
// eligible shapes in exchanges.  A wrapped subtree is not revisited — its
// operators already execute once per worker — while ineligible nodes are kept
// serial and their children are visited instead.
func (pl *Planner) parallelize(n Node) Node {
	if pl.Workers <= 1 {
		return n
	}
	workers := exec.Resolve(pl.Workers)
	if workers <= 1 {
		return n
	}
	threshold := pl.ParallelThreshold
	if threshold <= 0 {
		threshold = DefaultParallelThreshold
	}
	return pl.parallelizeNode(n, workers, threshold)
}

func (pl *Planner) parallelizeNode(n Node, workers int, threshold float64) Node {
	switch x := n.(type) {
	case *hashJoinNode:
		// Shared-build parallel join: the table is built once by the
		// exchange, the probe side runs per worker over morsel-partitioned
		// scans.  No key partitioning means probe work rebalances freely
		// under join-key skew.
		probe, _ := x.probeSide()
		if x.left.Estimate()+x.right.Estimate() >= threshold && streamable(probe) {
			x.shared = true
			wrapped := pl.partitionLeaves(probe, workers)
			// A large streamable build side is built morsel-parallel by a
			// build gang of its own (parallelBuildTable); below the threshold
			// — or when the build side is not a splittable pipeline — the
			// parent builds serially, possibly over its own nested exchange.
			build, _ := x.buildSide()
			buildThreshold := pl.BuildParallelThreshold
			if buildThreshold <= 0 {
				buildThreshold = DefaultBuildParallelThreshold
			}
			var wrappedBuild Node
			if streamable(build) && build.Estimate() >= buildThreshold {
				x.parBuild = true
				x.buildWorkers = workers
				wrappedBuild = pl.partitionLeaves(build, workers)
			} else {
				wrappedBuild = pl.parallelizeNode(build, workers, threshold)
			}
			if x.buildLeft {
				x.right = wrapped
				x.left = wrappedBuild
			} else {
				x.left = wrapped
				x.right = wrappedBuild
			}
			return newMerge(x, workers)
		}
	case *hashAggNode:
		// Two shapes parallelise an aggregate.  Two-phase (the default):
		// morsel-partition the input pipeline, let every worker pre-aggregate
		// its morsels into partial states, and merge the per-worker partial
		// groups in the GroupMerge parent — exact for any disjoint split, so
		// it covers global aggregates and is immune to group-key skew.
		// One-phase (the legacy shape, kept for high-cardinality grouping and
		// as the OnePhaseAgg benchmark baseline): a static hash partition on
		// the grouping columns under a plain Merge, so groups never span
		// workers and the merged partial relations are final.  The choice is
		// cost-based: two-phase pays one partial state per (worker, group) of
		// merge traffic, which the pre-aggregation reduction estimate
		// (capHint, bounded by RelationDistinctCount) trades against the
		// one-phase replicated input passes.
		if x.input.Estimate() >= threshold && streamable(x.input) {
			if !pl.OnePhaseAgg && x.twoPhaseExact() && twoPhaseProfitable(x, workers) {
				x.partial = true
				x.input = pl.partitionLeaves(x.input, workers)
				return newGroupMerge(x, workers)
			}
			if len(x.gb.groupCols) > 0 {
				x.input = newPartition(x.input, partitionHash, x.gb.groupCols, workers, 0)
				return newMerge(x, workers)
			}
		}
	case *differenceNode:
		// Full-tuple hash partitions on both operands: every tuple's owner is
		// the same on both sides, so the per-worker monus results sum to the
		// serial difference.
		if pl.parallelizeSetOp(&x.left, &x.right, workers, threshold) {
			return newMerge(x, workers)
		}
	case *intersectNode:
		// Same full-tuple split as Difference; min distributes the same way.
		if pl.parallelizeSetOp(&x.left, &x.right, workers, threshold) {
			return newMerge(x, workers)
		}
	case *filterNode, *projectNode, *extProjectNode, *unionNode:
		// A streaming pipeline: morsel-partition every scan so the per-tuple
		// filter/projection work divides across workers.
		if streamable(n) && pipelineWork(n) && leafEstimate(n) >= threshold {
			pl.partitionInnerLeaves(n, workers)
			return newMerge(n, workers)
		}
	}
	replaceChildren(n, func(c Node) Node { return pl.parallelizeNode(c, workers, threshold) })
	return n
}

// twoPhaseExact reports whether every aggregate of the node's spec merges to
// the serial result bit for bit under any disjoint split of the input.  CNT,
// MIN and MAX always do; SUM/AVG over integer attributes are exact int64
// arithmetic; and SUM/AVG over float attributes carry compensated (Neumaier)
// summation in AggState, whose fsum + fcomp holds the sum at roughly double
// working precision — well past the rounding slack that re-associating
// partial sums can introduce — so the finalised value matches the serial
// fold's regardless of how the input was split.  Every aggregate of
// Definition 3.3 therefore splits exactly today; the predicate remains the
// gate future order-sensitive aggregates must pass to plan two-phase.
func (a *hashAggNode) twoPhaseExact() bool {
	return true
}

// twoPhaseProfitable decides the parallel aggregate shape from the cost
// model's pre-aggregation reduction estimate.  Global aggregates are always
// two-phase — one-phase cannot parallelise a single global group at all.
// Grouped aggregates choose two-phase when the global merge traffic (one
// partial state per worker and group, estimated from the node's capHint,
// which RelationDistinctCount bounds for base-table inputs) stays below one
// pass over the input; when pre-aggregation barely reduces (groups ≈ input),
// the one-phase shape's single partial relation per worker wins instead.
func twoPhaseProfitable(x *hashAggNode, workers int) bool {
	if len(x.gb.groupCols) == 0 {
		return true
	}
	return x.meta().capHint*float64(workers) <= x.input.Estimate()
}

// parallelizeSetOp decides and applies the full-tuple-hash split of a
// blocking set operator's operands, reporting whether the operator should be
// wrapped in a Merge.  Both operands must be streamable (they are replicated
// per worker) and their combined estimate must clear the threshold.
func (pl *Planner) parallelizeSetOp(left, right *Node, workers int, threshold float64) bool {
	if (*left).Estimate()+(*right).Estimate() < threshold ||
		!streamable(*left) || !streamable(*right) {
		return false
	}
	*left = pl.partitionSetOperand(*left, workers)
	*right = pl.partitionSetOperand(*right, workers)
	return true
}

// partitionSetOperand wraps a set-operator operand for its full-tuple hash
// split.  Filters and unions preserve tuples — every output tuple IS a leaf
// tuple, unchanged — so the partition sinks to the scan leaves, where the
// cached-entry-hash fast path selects a worker's slice for one modulo per
// entry instead of re-running the pipeline per worker and discarding
// (W-1)/W of it.  Projections change tuples (the owner of an output tuple
// is not the owner of its source), so a non-preserving operand is
// partitioned at its root.
func (pl *Planner) partitionSetOperand(n Node, workers int) Node {
	if len(n.Children()) == 0 || !tuplePreserving(n) {
		return newPartition(n, partitionHash, nil, workers, 0)
	}
	replaceChildren(n, func(c Node) Node { return pl.partitionSetOperand(c, workers) })
	return n
}

// tuplePreserving reports whether every output tuple of the subtree is one of
// its leaf tuples, unchanged — the condition under which a full-tuple hash
// split of the leaves induces exactly the same split of the output.
func tuplePreserving(n Node) bool {
	switch x := n.(type) {
	case *scanNode, *valuesNode:
		return true
	case *filterNode:
		return tuplePreserving(x.input)
	case *unionNode:
		return tuplePreserving(x.left) && tuplePreserving(x.right)
	default:
		return false
	}
}

// streamable reports whether the subtree is a pure streaming pipeline over
// leaves — the shapes cheap and safe to replicate per worker.  Blocking or
// stateful operators (joins, aggregates, δ, set difference/intersection,
// closure) are excluded: re-running them once per worker would repeat their
// full cost, and δ above a projection is not partition-exact under any
// disjoint split of the inputs.
func streamable(n Node) bool {
	switch x := n.(type) {
	case *scanNode, *valuesNode:
		return true
	case *filterNode:
		return streamable(x.input)
	case *projectNode:
		return streamable(x.input)
	case *extProjectNode:
		return streamable(x.input)
	case *unionNode:
		return streamable(x.left) && streamable(x.right)
	default:
		return false
	}
}

// pipelineWork reports whether the pipeline contains at least one per-tuple
// operator.  A bare scan (or union of scans) only copies tuples; splitting a
// copy across workers buys nothing and pays the exchange.
func pipelineWork(n Node) bool {
	switch x := n.(type) {
	case *filterNode, *projectNode, *extProjectNode:
		_ = x
		return true
	case *unionNode:
		return pipelineWork(x.left) || pipelineWork(x.right)
	default:
		return false
	}
}

// leafEstimate sums the estimated cardinalities of the subtree's leaves: the
// number of tuples the pipeline will push, which is what the parallel split
// divides.
func leafEstimate(n Node) float64 {
	if len(n.Children()) == 0 {
		return n.Estimate()
	}
	var total float64
	for _, c := range n.Children() {
		total += leafEstimate(c)
	}
	return total
}

// scanPartition wraps one leaf in the planner's scan partition: a
// work-stealing morsel partition sized by the cost model, or the legacy
// static hash slice when StaticSlices is set.
func (pl *Planner) scanPartition(leaf Node, workers int) Node {
	if pl.StaticSlices {
		return newPartition(leaf, partitionHash, nil, workers, 0)
	}
	size := pl.MorselSize
	if size <= 0 {
		size = morselSizeFor(leaf.meta().capHint, workers)
	}
	return newPartition(leaf, partitionMorsel, nil, workers, size)
}

// partitionLeaves wraps every leaf of a streamable subtree in a scan
// partition and returns the wrapped tree (which is the partition itself when
// the subtree is a bare leaf).
func (pl *Planner) partitionLeaves(n Node, workers int) Node {
	if len(n.Children()) == 0 {
		return pl.scanPartition(n, workers)
	}
	pl.partitionInnerLeaves(n, workers)
	return n
}

// partitionInnerLeaves wraps every leaf strictly below n in a scan partition.
func (pl *Planner) partitionInnerLeaves(n Node, workers int) {
	replaceChildren(n, func(c Node) Node { return pl.partitionLeaves(c, workers) })
}

// replaceChildren rewrites each child edge of a node in place.
func replaceChildren(n Node, f func(Node) Node) {
	switch x := n.(type) {
	case *filterNode:
		x.input = f(x.input)
	case *projectNode:
		x.input = f(x.input)
	case *extProjectNode:
		x.input = f(x.input)
	case *uniqueNode:
		x.input = f(x.input)
	case *unionNode:
		x.left, x.right = f(x.left), f(x.right)
	case *hashJoinNode:
		x.left, x.right = f(x.left), f(x.right)
	case *nestedLoopNode:
		x.left, x.right = f(x.left), f(x.right)
	case *differenceNode:
		x.left, x.right = f(x.left), f(x.right)
	case *intersectNode:
		x.left, x.right = f(x.left), f(x.right)
	case *hashAggNode:
		x.input = f(x.input)
	case *tcloseNode:
		x.input = f(x.input)
	case *sortNode:
		x.input = f(x.input)
	case *partitionNode:
		x.input = f(x.input)
	case *mergeNode:
		x.input = f(x.input)
	case *groupMergeNode:
		if agg, ok := f(Node(x.agg)).(*hashAggNode); ok {
			x.agg = agg
		}
	}
}

// newPartition wraps a node in a Partition.  The estimate is the full stream
// (estimates describe the collective stream, not one worker's slice); the
// capacity hint is the per-worker share, which sizes the hash tables built
// from a single slice — a partitioned aggregate's groups, for example.
func newPartition(input Node, mode partitionMode, cols []int, workers, morselSize int) Node {
	p := &partitionNode{input: input, mode: mode, cols: cols, workers: workers, morselSize: morselSize}
	p.schema = input.Schema()
	p.est = input.Estimate()
	p.exactEst = input.meta().exactEst
	p.capHint = input.meta().capHint / float64(workers)
	return p
}

// newGroupMerge wraps a partial hash aggregate in the two-phase exchange's
// gang boundary.
func newGroupMerge(agg *hashAggNode, workers int) Node {
	m := &groupMergeNode{agg: agg, workers: workers}
	m.schema = agg.Schema()
	m.est = agg.Estimate()
	m.exactEst = agg.meta().exactEst
	m.capHint = agg.meta().capHint
	return m
}

// newMerge wraps a node in a Merge of the given gang width.
func newMerge(input Node, workers int) Node {
	m := &mergeNode{input: input, workers: workers}
	m.schema = input.Schema()
	m.est = input.Estimate()
	m.exactEst = input.meta().exactEst
	m.capHint = input.meta().capHint
	return m
}
