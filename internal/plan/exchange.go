package plan

import (
	"fmt"

	"mra/internal/exec"
	"mra/internal/multiset"
	"mra/internal/tuple"
)

// This file implements the exchange operators of the partitioned parallel
// runtime and the planner pass that inserts them.
//
// A Merge node runs its subtree once per worker on an exec.Pool; every worker
// executes the same operator tree but sees only its hash-range slice of the
// inputs, cut by the Partition nodes below.  Each worker's output stream is
// collected into a private partial relation and the Merge sums the partials —
// exact under bag semantics, because multiplicities add across disjoint
// partitions (the paper's relations are functions dom(𝓡) → ℕ, and the
// operators parallelised here distribute over partition union).
//
// Three shapes are parallelised, each with the partition placement that keeps
// it exact:
//
//   - streaming pipelines (σ/π/extπ/⊎ over scans): Partition by full tuple
//     hash directly above each scan, so the per-tuple operator work divides
//     across workers; a partition above a bare scan reuses the relation's
//     cached entry hashes and costs one modulo per tuple;
//   - hash joins: Partition each operand by the hash of its join columns, so
//     tuples that could match always land in the same worker — partition-wise
//     build and probe;
//   - hash aggregates with grouping columns: Partition the input by the hash
//     of the grouping columns, so every group is computed whole by exactly
//     one worker and the merged output needs no second aggregation pass.

// DefaultParallelThreshold is the estimated input cardinality (tuples,
// counting duplicates) below which the planner leaves a shape serial: under
// it, goroutine spawn and partial-merge costs dominate the divided work.
const DefaultParallelThreshold = 1024.0

// ---------------------------------------------------------------------------
// Exchange operators
// ---------------------------------------------------------------------------

// partitionNode cuts the stream of its input to the executing worker's hash
// slice: a chunk (t, n) passes through worker w iff the configured hash of t
// falls in w's range.  Outside a parallel region it is the identity.
type partitionNode struct {
	base
	input Node
	// cols are the attribute positions hashed for partitioning; nil means the
	// full tuple hash (used above pipeline scans, where any disjoint split is
	// correct).
	cols []int
	// workers is the gang width the planner inserted this node for (display
	// only; execution uses the width of the enclosing Merge's gang).
	workers int
}

func (p *partitionNode) Children() []Node { return []Node{p.input} }

func (p *partitionNode) Describe() string {
	if p.cols == nil {
		return fmt.Sprintf("Partition [hash workers=%d]", p.workers)
	}
	return fmt.Sprintf("Partition [hash(%s) workers=%d]", colList(p.cols), p.workers)
}

func (p *partitionNode) run(ctx *execCtx, emit Emit) error {
	if ctx.workers <= 1 {
		return ctx.run(p.input, emit)
	}
	// Fast path: a full-tuple partition directly above a scan selects its
	// slice by the relation's cached entry hashes — one modulo per tuple, no
	// re-hashing.
	if s, ok := p.input.(*scanNode); ok && p.cols == nil {
		r, err := s.lookup(ctx)
		if err != nil {
			return err
		}
		var iterErr error
		r.EachInPartition(ctx.worker, ctx.workers, func(t tuple.Tuple, n uint64) bool {
			iterErr = emit(t, n)
			return iterErr == nil
		})
		return iterErr
	}
	part := exec.NewPartitioner(p.cols, ctx.workers)
	return ctx.run(p.input, func(t tuple.Tuple, n uint64) error {
		if part.Owner(t) != ctx.worker {
			return nil
		}
		return emit(t, n)
	})
}

// mergeNode is the gang boundary: it executes its subtree once per worker on
// the exec runtime and emits the sum of the per-worker partial multisets.
// Nested inside an already parallel region it degrades to a pass-through, so
// a plan remains correct however exchanges end up composed.
type mergeNode struct {
	base
	input   Node
	workers int
}

func (m *mergeNode) Children() []Node { return []Node{m.input} }
func (m *mergeNode) Describe() string { return fmt.Sprintf("Merge [workers=%d]", m.workers) }

// snapshotSource is a frozen name→relation map handed to worker goroutines.
// Workers must not call the parent's Source: transaction sources record the
// relations they resolve (for commit validation) and are not safe for
// concurrent use, so every scan leaf is resolved once, in the parent
// goroutine, before the gang starts.
type snapshotSource map[string]*multiset.Relation

// Relation implements Source.
func (s snapshotSource) Relation(name string) (*multiset.Relation, bool) {
	r, ok := s[name]
	return r, ok
}

// snapshotScans pre-resolves every scan leaf under n through the parent
// context's source.
func snapshotScans(ctx *execCtx, n Node, into snapshotSource) error {
	if s, ok := n.(*scanNode); ok {
		if _, done := into[s.name]; !done {
			r, err := s.lookup(ctx)
			if err != nil {
				return err
			}
			into[s.name] = r
		}
	}
	for _, c := range n.Children() {
		if err := snapshotScans(ctx, c, into); err != nil {
			return err
		}
	}
	return nil
}

// gang runs the per-worker subtree executions and returns the partials; the
// caller decides whether to stream or materialise them.
func (m *mergeNode) gang(ctx *execCtx) (*exec.Partials, error) {
	snap := make(snapshotSource)
	if err := snapshotScans(ctx, m.input, snap); err != nil {
		return nil, err
	}
	pool := exec.NewPool(m.workers)
	wctxs := make([]*execCtx, pool.Workers())
	capEach := capacityFor(m.input.meta().capHint)/pool.Workers() + 1
	parts, err := exec.Exchange(pool, m.input.Schema(), capEach, func(w int, sink func(tuple.Tuple, uint64) error) error {
		wctx := ctx.workerCtx(w, pool.Workers())
		wctx.src = snap
		wctxs[w] = wctx
		return wctx.run(m.input, func(t tuple.Tuple, n uint64) error { return sink(t, n) })
	})
	ctx.foldWorkers(wctxs)
	// The per-worker partials are the exchange's materialised state.
	ctx.materialised(m, parts.Cardinality())
	return parts, err
}

func (m *mergeNode) run(ctx *execCtx, emit Emit) error {
	if ctx.workers > 1 {
		return ctx.run(m.input, emit)
	}
	parts, err := m.gang(ctx)
	if err != nil {
		return err
	}
	return parts.Each(func(t tuple.Tuple, n uint64) error { return emit(t, n) })
}

// result implements materializer: when a consumer wants the whole relation
// (or the Merge is the plan root), the partials are summed directly with
// their cached hashes instead of being re-hashed through an emit stream.
func (m *mergeNode) result(ctx *execCtx) (*multiset.Relation, error) {
	if ctx.workers > 1 {
		return ctx.materialize(m.input)
	}
	parts, err := m.gang(ctx)
	if err != nil {
		return nil, err
	}
	return parts.Merge(multiset.NewWithCapacity(m.Schema(), capacityFor(m.capHint))), nil
}

// ---------------------------------------------------------------------------
// Planner pass
// ---------------------------------------------------------------------------

// parallelize walks a freshly compiled plan top-down and wraps the topmost
// eligible shapes in exchanges.  A wrapped subtree is not revisited — its
// operators already execute once per worker — while ineligible nodes are kept
// serial and their children are visited instead.
func (pl *Planner) parallelize(n Node) Node {
	if pl.Workers <= 1 {
		return n
	}
	workers := exec.Resolve(pl.Workers)
	if workers <= 1 {
		return n
	}
	threshold := pl.ParallelThreshold
	if threshold <= 0 {
		threshold = DefaultParallelThreshold
	}
	return pl.parallelizeNode(n, workers, threshold)
}

func (pl *Planner) parallelizeNode(n Node, workers int, threshold float64) Node {
	switch x := n.(type) {
	case *hashJoinNode:
		// Partition-wise build and probe: both operands split by their join
		// column hashes, so matching tuples meet inside one worker.
		if x.left.Estimate()+x.right.Estimate() >= threshold &&
			streamable(x.left) && streamable(x.right) {
			x.left = newPartition(x.left, x.leftCols, workers)
			x.right = newPartition(x.right, x.rightCols, workers)
			return newMerge(x, workers)
		}
	case *hashAggNode:
		// Partition by grouping columns: groups never span workers, so the
		// merged partials are the final grouped result.  Global aggregates
		// (no grouping columns) have a single output group and stay serial.
		if len(x.gb.groupCols) > 0 && x.input.Estimate() >= threshold && streamable(x.input) {
			x.input = newPartition(x.input, x.gb.groupCols, workers)
			return newMerge(x, workers)
		}
	case *filterNode, *projectNode, *extProjectNode, *unionNode:
		// A streaming pipeline: partition every scan by its cached full-tuple
		// hash so the per-tuple filter/projection work divides across workers.
		if streamable(n) && pipelineWork(n) && leafEstimate(n) >= threshold {
			partitionScans(n, workers)
			return newMerge(n, workers)
		}
	}
	replaceChildren(n, func(c Node) Node { return pl.parallelizeNode(c, workers, threshold) })
	return n
}

// streamable reports whether the subtree is a pure streaming pipeline over
// leaves — the shapes cheap and safe to replicate per worker.  Blocking or
// stateful operators (joins, aggregates, δ, set difference/intersection,
// closure) are excluded: re-running them once per worker would repeat their
// full cost, and δ above a projection is not partition-exact under a
// full-tuple split of the inputs.
func streamable(n Node) bool {
	switch x := n.(type) {
	case *scanNode, *valuesNode:
		return true
	case *filterNode:
		return streamable(x.input)
	case *projectNode:
		return streamable(x.input)
	case *extProjectNode:
		return streamable(x.input)
	case *unionNode:
		return streamable(x.left) && streamable(x.right)
	default:
		return false
	}
}

// pipelineWork reports whether the pipeline contains at least one per-tuple
// operator.  A bare scan (or union of scans) only copies tuples; splitting a
// copy across workers buys nothing and pays the exchange.
func pipelineWork(n Node) bool {
	switch x := n.(type) {
	case *filterNode, *projectNode, *extProjectNode:
		_ = x
		return true
	case *unionNode:
		return pipelineWork(x.left) || pipelineWork(x.right)
	default:
		return false
	}
}

// leafEstimate sums the estimated cardinalities of the subtree's leaves: the
// number of tuples the pipeline will push, which is what the parallel split
// divides.
func leafEstimate(n Node) float64 {
	if len(n.Children()) == 0 {
		return n.Estimate()
	}
	var total float64
	for _, c := range n.Children() {
		total += leafEstimate(c)
	}
	return total
}

// partitionScans inserts a full-tuple-hash Partition above every leaf of a
// streamable pipeline.
func partitionScans(n Node, workers int) {
	replaceChildren(n, func(c Node) Node {
		if len(c.Children()) == 0 {
			return newPartition(c, nil, workers)
		}
		partitionScans(c, workers)
		return c
	})
}

// replaceChildren rewrites each child edge of a node in place.
func replaceChildren(n Node, f func(Node) Node) {
	switch x := n.(type) {
	case *filterNode:
		x.input = f(x.input)
	case *projectNode:
		x.input = f(x.input)
	case *extProjectNode:
		x.input = f(x.input)
	case *uniqueNode:
		x.input = f(x.input)
	case *unionNode:
		x.left, x.right = f(x.left), f(x.right)
	case *hashJoinNode:
		x.left, x.right = f(x.left), f(x.right)
	case *nestedLoopNode:
		x.left, x.right = f(x.left), f(x.right)
	case *differenceNode:
		x.left, x.right = f(x.left), f(x.right)
	case *intersectNode:
		x.left, x.right = f(x.left), f(x.right)
	case *hashAggNode:
		x.input = f(x.input)
	case *tcloseNode:
		x.input = f(x.input)
	case *sortNode:
		x.input = f(x.input)
	case *partitionNode:
		x.input = f(x.input)
	case *mergeNode:
		x.input = f(x.input)
	}
}

// newPartition wraps a node in a Partition.  The estimate is the full stream
// (estimates describe the collective stream, not one worker's slice); the
// capacity hint is the per-worker share, which sizes the hash tables built
// from a single slice — a partitioned join build, for example.
func newPartition(input Node, cols []int, workers int) Node {
	p := &partitionNode{input: input, cols: cols, workers: workers}
	p.schema = input.Schema()
	p.est = input.Estimate()
	p.exactEst = input.meta().exactEst
	p.capHint = input.meta().capHint / float64(workers)
	return p
}

// newMerge wraps a node in a Merge of the given gang width.
func newMerge(input Node, workers int) Node {
	m := &mergeNode{input: input, workers: workers}
	m.schema = input.Schema()
	m.est = input.Estimate()
	m.exactEst = input.meta().exactEst
	m.capHint = input.meta().capHint
	return m
}
