package plan

// This file implements the query-lifecycle governance of the physical layer:
// the amortised context checkpoints that make running plans cancellable, and
// the memory gauge that bounds the state blocking operators may accumulate.
//
// # Cancellation checkpoints
//
// Plans poll their query context at amortised points — one check per morsel
// claim, per emitted batch, and per batchCap chunks on the scalar leaf loops —
// never per tuple.  Polling goes through execCtx.poll, which is disabled
// entirely (ctx.done == nil) when the query context can never be cancelled, so
// the serial Execute path is bit-identical to the pre-lifecycle engine.  A
// tripped poll returns the context's own error (context.Canceled or
// context.DeadlineExceeded), which aborts the stream through the ordinary
// error path of the Emit contract.
//
// # Memory accounting
//
// A MemoryGauge is shared by every operator (and every gang worker) of one
// query execution.  Blocking operators charge the approximate resident size of
// each piece of state they retain — hash-join build entries, aggregation
// groups, Sort and nested-loop materialisations, the operand relations of the
// blocking set operators (difference, intersection, transitive closure),
// Unique's seen set — and the
// first charge that pushes usage past the budget fails the query with
// ErrMemoryBudget.  Accounting is approximate by design (a cheap per-tuple
// size estimate, not allocator truth): the gauge exists to fail fast before
// the process is in trouble, and to give the future spilling operators
// (grace-hash join, external sort) the trip-wire they will hook.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"mra/internal/tuple"
	"mra/internal/value"
)

// ErrMemoryBudget is returned when an operator's state growth would exceed the
// query's memory budget (Planner.MemoryLimit).  Errors carrying usage detail
// wrap it; test with errors.Is.
var ErrMemoryBudget = errors.New("plan: memory budget exceeded")

// MemoryGauge tracks the approximate bytes of operator-internal state one
// query execution holds, shared across all operators and gang workers of that
// execution.  Grow fails with an ErrMemoryBudget-wrapping error as soon as
// usage passes the limit, which is what lets a runaway build or group table
// abort the query instead of exhausting the process.  The zero limit means
// accounting without enforcement.  A nil gauge is valid and does nothing.
type MemoryGauge struct {
	limit int64
	used  atomic.Int64
}

// NewMemoryGauge returns a gauge enforcing the given byte limit; a
// non-positive limit accounts but never trips.
func NewMemoryGauge(limit int64) *MemoryGauge {
	if limit < 0 {
		limit = 0
	}
	return &MemoryGauge{limit: limit}
}

// Grow charges n more bytes of operator state and fails when the budget is
// exceeded.  It is safe for concurrent use by gang workers; on a nil gauge it
// is a no-op.
func (g *MemoryGauge) Grow(n int64) error {
	if g == nil {
		return nil
	}
	used := g.used.Add(n)
	if g.limit > 0 && used > g.limit {
		return fmt.Errorf("%w: operator state would hold %d bytes, limit %d", ErrMemoryBudget, used, g.limit)
	}
	return nil
}

// Release returns n bytes to the budget, for operators that free state before
// the query ends.
func (g *MemoryGauge) Release(n int64) {
	if g != nil {
		g.used.Add(-n)
	}
}

// Used returns the bytes currently charged.
func (g *MemoryGauge) Used() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// Limit returns the configured byte limit (zero when unenforced).
func (g *MemoryGauge) Limit() int64 {
	if g == nil {
		return 0
	}
	return g.limit
}

// Per-tuple size model of the memory gauge: a held tuple costs its slice
// header plus one Value per attribute, with string payloads added on top.
// Chunk bookkeeping (counts, chain links) is folded into the header constant.
const (
	tupleHeaderBytes = 48
	valueBytes       = 48
	// aggStateBytes is the charged size of one AggState (counters, sums with
	// their compensation term, and the two extremum Values).
	aggStateBytes = 152
)

// approxTupleBytes estimates the resident bytes of one retained tuple.
func approxTupleBytes(t tuple.Tuple) int64 {
	n := int64(tupleHeaderBytes) + int64(t.Arity())*valueBytes
	for i := 0; i < t.Arity(); i++ {
		if v := t.At(i); v.Kind() == value.KindString {
			n += int64(len(v.Str()))
		}
	}
	return n
}

// chargeTuple charges one retained tuple to the query's gauge, when one is
// set.
func (ctx *execCtx) chargeTuple(t tuple.Tuple) error {
	if ctx.mem == nil {
		return nil
	}
	return ctx.mem.Grow(approxTupleBytes(t))
}

// queryCtx returns the query's lifecycle context, Background when none was
// provided.
func (ctx *execCtx) queryCtx() context.Context {
	if ctx.qctx == nil {
		return context.Background()
	}
	return ctx.qctx
}

// setContext wires a lifecycle context into the execution context.  Contexts
// that can never be cancelled (Background) leave done nil, which turns every
// poll into a no-op — the serial fast path.
func (ctx *execCtx) setContext(c context.Context) {
	ctx.qctx = c
	if c != nil {
		ctx.done = c.Done()
	}
}

// poll returns the query context's error once it is cancelled or past its
// deadline, nil otherwise.  Callers invoke it at amortised checkpoints only:
// per morsel claim, per batch, or per batchCap chunks — never per tuple.
func (ctx *execCtx) poll() error {
	if ctx.done == nil {
		return nil
	}
	select {
	case <-ctx.done:
		return ctx.qctx.Err()
	default:
		return nil
	}
}

// pollingEmit wraps emit with an amortised cancellation check every batchCap
// chunks.  On a non-cancellable context it returns emit unchanged, so serial
// uncancellable plans pay nothing.  Leaf scans and materialised-state emission
// loops — the places where long streams flow without crossing a polled
// boundary — wrap their emit functions with it.
func (ctx *execCtx) pollingEmit(emit Emit) Emit {
	if ctx.done == nil {
		return emit
	}
	interval := ctx.batchCap()
	n := 0
	return func(t tuple.Tuple, c uint64) error {
		if n++; n >= interval {
			n = 0
			if err := ctx.poll(); err != nil {
				return err
			}
		}
		return emit(t, c)
	}
}
