package plan

import (
	"mra/internal/scalar"
	"mra/internal/stats"
	"mra/internal/value"
)

// TableStatsSource optionally widens a DistinctCardinalitySource with full
// per-column statistics (ANALYZE output): distinct-value sketches, null
// fractions, and equi-depth histograms.  storage.Database and
// storage.Snapshot implement it, so transactions plan against the statistics
// of the version they read; benchmark sources attach precomputed summaries
// via eval.StatsSource.
type TableStatsSource interface {
	DistinctCardinalitySource
	// TableStats returns the named relation's statistics summary, and whether
	// one is available (relations are only summarised after ANALYZE).
	TableStats(name string) (*stats.Table, bool)
}

// colStat describes one plan-node output column for cardinality estimation:
// the estimated number of distinct values it carries and, when the column
// descends untransformed from an analysed base relation, the table summary
// and source column whose histogram can score predicates over it.
type colStat struct {
	ndv float64      // estimated distinct non-null values; 0 = unknown
	tab *stats.Table // base-table summary, nil when the column is derived
	col int          // column index within tab
}

// clampCols bounds every column's distinct-value estimate by the node's row
// estimate: a column cannot carry more distinct values than rows.
func clampCols(cols []colStat, rows float64) []colStat {
	for i := range cols {
		if cols[i].ndv > rows {
			cols[i].ndv = rows
		}
	}
	return cols
}

// concatCols concatenates the column statistics of a join's operands in
// schema order.
func concatCols(left, right []colStat) []colStat {
	if left == nil && right == nil {
		return nil
	}
	out := make([]colStat, 0, len(left)+len(right))
	out = append(out, left...)
	out = append(out, right...)
	return out
}

// scanColStats builds the column statistics of a base-relation scan from the
// planner's statistics source, or nil when the relation was never analysed.
func (pl *Planner) scanColStats(name string, arity int) []colStat {
	src, ok := pl.Cards.(TableStatsSource)
	if !ok {
		return nil
	}
	tab, ok := src.TableStats(name)
	if !ok || tab.Cols() != arity {
		return nil
	}
	cols := make([]colStat, arity)
	for i := range cols {
		ndv, _ := tab.NDV(i)
		cols[i] = colStat{ndv: ndv, tab: tab, col: i}
	}
	return cols
}

// predSelectivity estimates the fraction of rows satisfying pred given the
// input's per-column statistics.  The second result reports whether any part
// of the predicate could be scored from real statistics; when it is false the
// caller should fall back to the flat default selectivity, preserving the
// pre-statistics cost model for unanalysed relations.
func predSelectivity(pred scalar.Predicate, cols []colStat) (float64, bool) {
	switch p := pred.(type) {
	case scalar.True:
		return 1, true
	case scalar.False:
		return 0, true
	case scalar.And:
		ls, lk := predSelectivity(p.Left, cols)
		rs, rk := predSelectivity(p.Right, cols)
		if !lk && !rk {
			return selectionSelectivity, false
		}
		if !lk {
			ls = selectionSelectivity
		}
		if !rk {
			rs = selectionSelectivity
		}
		return ls * rs, true
	case scalar.Or:
		ls, lk := predSelectivity(p.Left, cols)
		rs, rk := predSelectivity(p.Right, cols)
		if !lk && !rk {
			return selectionSelectivity, false
		}
		if !lk {
			ls = selectionSelectivity
		}
		if !rk {
			rs = selectionSelectivity
		}
		return ls + rs - ls*rs, true
	case scalar.Not:
		s, known := predSelectivity(p.Operand, cols)
		if !known {
			return selectionSelectivity, false
		}
		return 1 - s, true
	case scalar.Compare:
		return compareSelectivity(p, cols)
	default:
		return selectionSelectivity, false
	}
}

// compareSelectivity scores an atomic comparison against column statistics.
func compareSelectivity(c scalar.Compare, cols []colStat) (float64, bool) {
	attr, cnst, op, ok := normaliseCompare(c)
	if ok {
		if attr.Index < 0 || attr.Index >= len(cols) {
			return selectionSelectivity, false
		}
		cs := cols[attr.Index]
		if cs.tab == nil {
			// No histogram, but an NDV estimate still scores equality.
			if cs.ndv > 0 && (op == value.CmpEq || op == value.CmpNe) {
				eq := 1 / cs.ndv
				if op == value.CmpNe {
					eq = 1 - eq
				}
				return eq, true
			}
			return selectionSelectivity, false
		}
		switch op {
		case value.CmpEq:
			if f, ok := cs.tab.EqFraction(cs.col, cnst); ok {
				return f, true
			}
		case value.CmpNe:
			if f, ok := cs.tab.EqFraction(cs.col, cnst); ok {
				return 1 - f, true
			}
		case value.CmpLt:
			if f, ok := cs.tab.FracLE(cs.col, cnst, false); ok {
				return f, true
			}
		case value.CmpLe:
			if f, ok := cs.tab.FracLE(cs.col, cnst, true); ok {
				return f, true
			}
		case value.CmpGt:
			if f, ok := cs.tab.FracLE(cs.col, cnst, true); ok {
				return 1 - f, true
			}
		case value.CmpGe:
			if f, ok := cs.tab.FracLE(cs.col, cnst, false); ok {
				return 1 - f, true
			}
		}
		return selectionSelectivity, false
	}
	// Attribute-to-attribute equality within one input (e.g. a cycle-closing
	// predicate): score it like a join conjunct, 1 / max NDV.
	if la, lok := c.Left.(scalar.Attr); lok {
		if ra, rok := c.Right.(scalar.Attr); rok && c.Op == value.CmpEq {
			if s, ok := equiSelectivity(ndvAt(cols, la.Index), ndvAt(cols, ra.Index)); ok {
				return s, true
			}
		}
	}
	return selectionSelectivity, false
}

// normaliseCompare extracts "attr op const" from a comparison, flipping the
// operator when the constant is on the left.
func normaliseCompare(c scalar.Compare) (scalar.Attr, value.Value, value.CompareOp, bool) {
	if a, ok := c.Left.(scalar.Attr); ok {
		if k, ok := c.Right.(scalar.Const); ok {
			return a, k.Value, c.Op, true
		}
	}
	if a, ok := c.Right.(scalar.Attr); ok {
		if k, ok := c.Left.(scalar.Const); ok {
			return a, k.Value, flipCompare(c.Op), true
		}
	}
	return scalar.Attr{}, value.Value{}, c.Op, false
}

// flipCompare mirrors a comparison operator around its operands
// (const op attr → attr op' const).
func flipCompare(op value.CompareOp) value.CompareOp {
	switch op {
	case value.CmpLt:
		return value.CmpGt
	case value.CmpLe:
		return value.CmpGe
	case value.CmpGt:
		return value.CmpLt
	case value.CmpGe:
		return value.CmpLe
	default:
		return op
	}
}

// ndvAt returns the distinct-value estimate of a column, 0 when unknown.
func ndvAt(cols []colStat, i int) float64 {
	if i < 0 || i >= len(cols) {
		return 0
	}
	return cols[i].ndv
}

// equiSelectivity is the textbook selectivity of an equality between two
// columns: 1 / max(NDV_l, NDV_r), defined only when both sides are known.
func equiSelectivity(l, r float64) (float64, bool) {
	if l <= 0 || r <= 0 {
		return 0, false
	}
	m := l
	if r > m {
		m = r
	}
	return 1 / m, true
}

// joinPairSelectivity folds the per-pair equality selectivities of a hash
// join's equi conjuncts, falling back to the flat joinSelectivity constant
// when no pair has statistics on both sides (the pre-statistics model).
func joinPairSelectivity(leftCols, rightCols []int, lstats, rstats []colStat) float64 {
	sel := 1.0
	known := false
	for i := range leftCols {
		if s, ok := equiSelectivity(ndvAt(lstats, leftCols[i]), ndvAt(rstats, rightCols[i])); ok {
			sel *= s
			known = true
		}
	}
	if !known {
		return joinSelectivity
	}
	return sel
}

// groupCapHint estimates the number of groups from the product of the
// grouping columns' distinct-value estimates, when every grouping column has
// one.  The second result is false when any column is unknown.
func groupCapHint(groupCols []int, cols []colStat) (float64, bool) {
	hint := 1.0
	for _, gc := range groupCols {
		ndv := ndvAt(cols, gc)
		if ndv <= 0 {
			return 0, false
		}
		hint *= ndv
	}
	return hint, true
}
