// Package plan implements the physical layer of the multi-set extended
// relational algebra: a planner that compiles logical expressions (package
// algebra) into trees of physical operators, and a streaming executor that
// runs those trees against a relation source.
//
// The split mirrors the paper's own separation of concerns: Section 3 defines
// the logical algebra and proves the equivalences (Theorems 3.1–3.3) that
// make plans interchangeable; choosing *which* equivalent plan to run — hash
// join vs. nested loops, build side, operator pipelining — is a physical
// decision and lives here, fed by the same cardinality-based cost model the
// rewriter uses (cost.go).
//
// # Iterator contract
//
// Physical operators are push-based streams.  An operator's run method calls
// its emit function once per output chunk (t, n): tuple t occurs n (> 0) more
// times.  The stream as a whole denotes the multi-set that sums all chunks;
// the SAME tuple MAY be emitted in several chunks (for example by a union
// whose operands share a tuple, or by a projection that collapses distinct
// inputs), and consumers must add multiplicities rather than assume
// distinctness.  Chunk order is unspecified — relations are unordered.
//
// The contract has a vectorised form (batch.go): operators with a native
// batch path additionally implement runBatch, which emits Batch vectors of
// chunks instead of single chunks, amortising the per-chunk call overhead
// across operator boundaries.  A Batch is columnar with a selection vector:
// physical rows carry multiplicities (Counts) and attribute values readable
// row-major (Tuples) or column-major (Cols, one value.Vec per attribute),
// under a Sel vector listing the live physical rows — filters refine Sel
// instead of compacting, projections share column slices, and the hot loops
// (filter kernels, join probe, aggregate update — vec.go) run
// column-at-a-time over live rows only.  Dead rows are never read or
// evaluated; Batch.TupleAt is the materialisation boundary where a columnar
// row becomes a tuple, crossed only for live rows a consumer retains or
// emits.  Consumers drive whichever form they prefer
// through execCtx.run / execCtx.runBatch; adapters bridge the two directions
// (unbatched splits batches into chunks, the fallback shim buffers chunks
// into batches), so batch-native and chunk-at-a-time operators compose
// freely and both forms denote the same multi-set.  A batch is only valid
// for the duration of the EmitBatch call — producers reuse its backing
// slices — while the tuples and values inside it may be retained as usual.
//
// Ownership: emitted tuples are immutable and may be retained by the
// consumer; they are often shared with the source relations.  Schema
// propagation happens entirely at plan time: every node carries its output
// schema, and operator typing (predicates, projections, aggregates) is
// validated during compilation, so execution never re-checks shapes.  Errors
// returned by emit abort the stream immediately and propagate out of
// Execute; operators must not swallow them.
//
// Pipelining falls out of the model: a chain of streaming operators
// (Filter, Project, ExtProject, Union, the probe side of a HashJoin, the
// outer side of a NestedLoopJoin, Unique's output) processes one chunk at a
// time and never materialises an intermediate relation.  Blocking operators
// (hash-join build side, HashAggregate, Difference, Intersect, TClose,
// NestedLoopJoin's inner side) hold exactly the state their algorithm
// requires, which Stats reports as MaterialisedTuples.
//
// # Parallel execution
//
// When the planner runs with Workers > 1 it inserts exchange operators
// (exchange.go) around eligible shapes: a Merge node runs its subtree once
// per worker on the runtime of package exec, and Partition nodes inside that
// subtree split the inputs so each worker sees a disjoint slice.  Scans are
// split morsel-wise — workers steal fixed-size entry ranges from a shared
// queue, so a skewed slice never serialises the gang — while operators that
// need key-consistent splits (grouped aggregation, the set operators)
// partition statically by hash.  Parallel hash joins build their table once,
// before the probe gang starts, and share it read-only across the gang's
// probe workers; large streamable build sides are themselves built
// morsel-parallel, each worker filling a private partial table the parent
// splices together.
// Bag semantics make every split exact: multiplicities sum across disjoint
// partitions, so the merged partials equal the serial result.
//
// The Emit contract is per worker under parallel execution: within one worker
// the stream rules above hold unchanged, and an emit function is never called
// concurrently — each worker's chunks flow into a private partial relation
// that the Merge sums afterwards.  Operators therefore need no locks, and
// must not share mutable state across workers; anything per-execution lives
// in the worker's own execCtx.  Scan leaves resolve their relations through
// a snapshot the Merge takes before the gang starts, so a Source that is not
// safe for concurrent use — a transaction recording the relations it reads —
// is never called from two workers.  Statistics follow the same rule: each worker
// records into its own counters, and the Merge folds them into the parent's
// Stats after the gang joins — there are no shared atomics on the hot path.
// In a parallel region each logical operator executes once per worker, and
// Stats.Operators counts operator executions, so a node under a W-worker
// Merge contributes W.
package plan

import (
	"context"
	"fmt"
	"strings"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/tuple"
)

// Source resolves database relation names to relation instances at execution
// time.  It is structurally identical to eval.Source, so every evaluation
// source (storage engine, transactions, map sources) satisfies it.
type Source interface {
	// Relation returns the named relation instance.
	Relation(name string) (*multiset.Relation, bool)
}

// Emit receives one chunk (t, n) of an operator's output stream: tuple t
// occurs n more times.  Returning an error aborts the stream.
type Emit func(t tuple.Tuple, n uint64) error

// Node is one physical operator of a compiled plan.  Nodes are built by the
// Planner and are immutable once compiled; a plan may be executed any number
// of times and against different sources (the schemas must match the catalog
// it was planned against).
type Node interface {
	// Schema is the operator's output schema, fixed at plan time.
	Schema() schema.Relation
	// Children returns the operator's input operators.
	Children() []Node
	// Describe renders the operator and its physical choices on one line.
	Describe() string
	// Estimate is the planner's output-cardinality estimate for this node.
	Estimate() float64

	// meta exposes the embedded bookkeeping; it also keeps the interface
	// closed to this package.
	meta() *base

	// run streams the operator's output into emit.
	run(ctx *execCtx, emit Emit) error
}

// base carries the bookkeeping every physical operator shares.
type base struct {
	schema schema.Relation
	est    float64
	id     int
	// exactEst marks estimates that are known cardinalities (base table
	// scans), rendered without the "~" approximation marker.
	exactEst bool
	// capHint sizes result hash tables.  It deliberately differs from est
	// where the estimate is a poor allocation guide: a hash join's output is
	// sized by its probe side, and scans size by distinct tuples rather than
	// occurrences when the source can tell them apart.
	capHint float64
	// ndvHint, when positive, is the planner's distinct-tuple estimate for
	// this operator's output, rendered as ndv= in explain output.  Zero means
	// no distinct estimate is known (or it equals est and adds nothing).
	ndvHint float64
	// cols carries the per-output-column statistics (distinct-value
	// estimates, histogram provenance) the planner propagates from analysed
	// base relations; nil when no statistics are available.
	colStats []colStat
}

func (b *base) Schema() schema.Relation { return b.schema }
func (b *base) Estimate() float64       { return b.est }
func (b *base) meta() *base             { return b }

// materializer is implemented by operators that can produce their entire
// result as a relation at least as cheaply as streaming it chunk by chunk
// (scans hand out an O(1) copy-on-write clone; the blocking set operators
// compute a full relation anyway).  The returned relation is owned by the
// caller.
type materializer interface {
	Node
	result(ctx *execCtx) (*multiset.Relation, error)
}

// Stats aggregates execution statistics, recorded per physical operator.
type Stats struct {
	// IntermediateTuples is the total number of tuples (counting
	// multiplicities) emitted by all non-leaf operators.
	IntermediateTuples uint64
	// PeakRelationTuples is the largest single non-leaf operator output seen.
	PeakRelationTuples uint64
	// Operators counts non-leaf operator executions; inside a parallel region
	// each logical operator executes once per worker and counts each time.
	Operators int
	// MaterialisedTuples counts tuples (with multiplicity) stored in
	// operator-internal state: hash-join build tables, nested-loop inner
	// relations, aggregation tables, and the inputs of the blocking set
	// operators.  Fully pipelined plans report zero.
	MaterialisedTuples uint64
	// PerOperator breaks the same numbers down by operator, in plan
	// (pre-order) position.
	PerOperator []OperatorStats
}

// OperatorStats is the per-operator slice of Stats.
type OperatorStats struct {
	// Operator is the operator's Describe rendering.
	Operator string
	// Emitted is the number of tuples (counting multiplicities) the operator
	// emitted downstream.
	Emitted uint64
	// Materialised is the number of tuples the operator held in internal
	// state (zero for fully streaming operators).
	Materialised uint64
}

// Plan is a compiled physical plan.
type Plan struct {
	// Root is the plan's top operator.
	Root Node
	// nodes lists all operators in pre-order; ids index into it.
	nodes []Node
	// batchSize is the emit batch size the planner chose for this plan.
	batchSize int
	// memLimit is the per-execution memory budget in bytes the planner chose;
	// zero disables enforcement.
	memLimit int64
	// serialBatches/rowBatches carry the planner's batch-path knobs into
	// execution (see Planner.SerialBatches / Planner.RowBatches).
	serialBatches bool
	rowBatches    bool
}

// Execute runs the plan against a source and materialises the root stream
// into a relation.
func (p *Plan) Execute(src Source) (*multiset.Relation, error) {
	return p.exec(context.Background(), src, nil)
}

// ExecuteContext is Execute under a lifecycle context: the plan polls ctx at
// amortised checkpoints (per morsel claim, per batch) and aborts with ctx.Err()
// once it is cancelled or past its deadline.  A Background context makes every
// checkpoint a no-op, so ExecuteContext(context.Background(), src) costs
// exactly what Execute(src) does.
func (p *Plan) ExecuteContext(ctx context.Context, src Source) (*multiset.Relation, error) {
	return p.exec(ctx, src, nil)
}

// ExecuteStats is Execute with per-operator statistics accumulated into st.
func (p *Plan) ExecuteStats(src Source, st *Stats) (*multiset.Relation, error) {
	return p.exec(context.Background(), src, st)
}

// ExecuteStatsContext is ExecuteContext with per-operator statistics
// accumulated into st.
func (p *Plan) ExecuteStatsContext(ctx context.Context, src Source, st *Stats) (*multiset.Relation, error) {
	return p.exec(ctx, src, st)
}

func (p *Plan) exec(qctx context.Context, src Source, st *Stats) (*multiset.Relation, error) {
	ctx := p.newExecCtx(qctx, src, st)
	if err := ctx.poll(); err != nil {
		return nil, err
	}
	var out *multiset.Relation
	var err error
	if m, ok := p.Root.(materializer); ok {
		out, err = ctx.result(m)
	} else {
		out = multiset.NewWithCapacity(p.Root.Schema(), capacityFor(p.Root.meta().capHint))
		err = ctx.collect(p.Root, out)
	}
	if st != nil {
		st.PerOperator = append(st.PerOperator, ctx.perOp...)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// newExecCtx builds the root execution context of one plan execution: the
// lifecycle context (wired through setContext so uncancellable contexts keep
// the zero-cost fast path), the memory gauge when the planner set a budget,
// and the per-operator statistics slots.
func (p *Plan) newExecCtx(qctx context.Context, src Source, st *Stats) *execCtx {
	ctx := &execCtx{src: src, stats: st, batchSize: p.batchSize, serialBatches: p.serialBatches, rowBatches: p.rowBatches}
	ctx.setContext(qctx)
	if p.memLimit > 0 {
		ctx.mem = NewMemoryGauge(p.memLimit)
	}
	if st != nil {
		ctx.perOp = make([]OperatorStats, len(p.nodes))
		for i, n := range p.nodes {
			ctx.perOp[i].Operator = n.Describe()
		}
	}
	return ctx
}

// String renders the plan as an indented operator tree with cardinality
// estimates, suitable for explain output.
func (p *Plan) String() string { return p.Render(nil) }

// Render renders the plan like String and, when st carries the per-operator
// statistics of an execution of this very plan, annotates every non-leaf
// operator with the actual number of tuples it emitted (act=).  Operators with
// a distinct-tuple estimate differing from their row estimate additionally
// show it as ndv=.  A nil st (or stats from a different plan shape) renders
// estimates only.
func (p *Plan) Render(st *Stats) string {
	var acts []OperatorStats
	if st != nil && len(st.PerOperator) == len(p.nodes) {
		acts = st.PerOperator
	}
	var b strings.Builder
	renderNode(&b, p.Root, "", "", acts)
	return strings.TrimRight(b.String(), "\n")
}

func renderNode(b *strings.Builder, n Node, head, tail string, acts []OperatorStats) {
	m := n.meta()
	marker := "~"
	if m.exactEst {
		marker = "="
	}
	rows := int64(n.Estimate() + 0.5)
	if rows == 0 && n.Estimate() > 0 {
		rows = 1
	}
	fmt.Fprintf(b, "%s%s  (est%s%d rows", head, n.Describe(), marker, rows)
	if ndv := int64(m.ndvHint + 0.5); ndv > 0 && ndv != rows {
		fmt.Fprintf(b, ", ndv=%d", ndv)
	}
	children := n.Children()
	if acts != nil && len(children) > 0 {
		fmt.Fprintf(b, ", act=%d", acts[m.id].Emitted)
	}
	b.WriteString(")\n")
	for i, c := range children {
		if i == len(children)-1 {
			renderNode(b, c, tail+"└─ ", tail+"   ", acts)
		} else {
			renderNode(b, c, tail+"├─ ", tail+"│  ", acts)
		}
	}
}

// execCtx carries per-execution state through the operator tree.  Inside a
// parallel region every worker owns a private execCtx (and private stats), so
// operators never synchronise; the Merge folds worker contexts back into the
// parent with foldWorkers.
type execCtx struct {
	src   Source
	stats *Stats
	perOp []OperatorStats
	// batchSize is the emit batch size; zero selects DefaultBatchSize.
	batchSize int
	// worker and workers identify the partition slice this context executes:
	// Partition nodes pass through only the chunks owned by worker (of
	// workers).  workers <= 1 means serial execution.
	worker  int
	workers int
	// gang is the shared read-only state of the enclosing exchange (morsel
	// queues, pre-built join tables); nil outside parallel regions.
	gang *gangState
	// qctx is the query's lifecycle context and done its cached Done channel;
	// a nil done (uncancellable context) disables every poll, which is the
	// serial fast path.  See lifecycle.go.
	qctx context.Context
	done <-chan struct{}
	// mem is the query's shared memory gauge; nil disables accounting.
	mem *MemoryGauge
	// serialBatches forces batch-native execution even at workers <= 1 (the
	// planner's SerialBatches knob): the columnar path runs without an
	// exchange, which is what the vectorised bench gate pins.
	serialBatches bool
	// rowBatches pins the legacy array-of-tuples batch loops (the planner's
	// RowBatches knob), the A/B baseline for the columnar kernels.
	rowBatches bool
}

// batchNative reports whether batch-native subtrees should execute through
// their vectorised path: always inside a parallel gang, and serially when the
// SerialBatches knob is set.
func (ctx *execCtx) batchNative() bool {
	return ctx.workers > 1 || ctx.serialBatches
}

// batchCap returns the effective emit batch size.
func (ctx *execCtx) batchCap() int {
	if ctx.batchSize > 0 {
		return ctx.batchSize
	}
	return DefaultBatchSize
}

// workerCtx derives worker w's private context for a gang of the given width.
// Statistics, when enabled on the parent, are recorded into fresh per-worker
// counters and folded back by foldWorkers.
func (ctx *execCtx) workerCtx(w, workers int, gang *gangState) *execCtx {
	wctx := &execCtx{src: ctx.src, batchSize: ctx.batchSize, worker: w, workers: workers, gang: gang, mem: ctx.mem, serialBatches: ctx.serialBatches, rowBatches: ctx.rowBatches}
	if ctx.stats != nil {
		wctx.stats = &Stats{}
		wctx.perOp = make([]OperatorStats, len(ctx.perOp))
	}
	return wctx
}

// foldWorkers accumulates the per-worker statistics of a finished gang into
// the parent context: tuple counters sum, peaks take the maximum.  Workers
// that never started — a fault-injected panic can fire before the worker
// context is built — appear as nil entries and fold nothing.
func (ctx *execCtx) foldWorkers(workers []*execCtx) {
	if ctx.stats == nil {
		return
	}
	st := ctx.stats
	for _, w := range workers {
		if w == nil {
			continue
		}
		st.IntermediateTuples += w.stats.IntermediateTuples
		st.MaterialisedTuples += w.stats.MaterialisedTuples
		st.Operators += w.stats.Operators
		if w.stats.PeakRelationTuples > st.PeakRelationTuples {
			st.PeakRelationTuples = w.stats.PeakRelationTuples
		}
		for i := range w.perOp {
			ctx.perOp[i].Emitted += w.perOp[i].Emitted
			ctx.perOp[i].Materialised += w.perOp[i].Materialised
		}
	}
}

// run streams a node's output into emit, recording emission statistics for
// non-leaf operators when enabled.
func (ctx *execCtx) run(n Node, emit Emit) error {
	if ctx.stats == nil || len(n.Children()) == 0 {
		return n.run(ctx, emit)
	}
	var emitted uint64
	err := n.run(ctx, func(t tuple.Tuple, c uint64) error {
		emitted += c
		return emit(t, c)
	})
	ctx.record(n, emitted)
	return err
}

// runBatch streams a node's output into emit batch-wise, recording emission
// statistics for non-leaf operators when enabled.  Operators without a native
// batch path are adapted through the fallback shim.
func (ctx *execCtx) runBatch(n Node, emit EmitBatch) error {
	bn, native := n.(batchRunner)
	if ctx.stats == nil || len(n.Children()) == 0 {
		if native {
			return bn.runBatch(ctx, emit)
		}
		return shimBatches(ctx, n, emit)
	}
	var emitted uint64
	wrapped := func(b *Batch) error {
		emitted += b.Total()
		return emit(b)
	}
	var err error
	if native {
		err = bn.runBatch(ctx, wrapped)
	} else {
		err = shimBatches(ctx, n, wrapped)
	}
	ctx.record(n, emitted)
	return err
}

// record accounts one finished operator execution that emitted the given
// number of tuple occurrences.
func (ctx *execCtx) record(n Node, emitted uint64) {
	st := ctx.stats
	st.Operators++
	st.IntermediateTuples += emitted
	if emitted > st.PeakRelationTuples {
		st.PeakRelationTuples = emitted
	}
	ctx.perOp[n.meta().id].Emitted += emitted
}

// result produces a materializer node's full relation, recording the same
// emission statistics run would.
func (ctx *execCtx) result(m materializer) (*multiset.Relation, error) {
	rel, err := m.result(ctx)
	if err != nil {
		return nil, err
	}
	if ctx.stats != nil && len(m.Children()) > 0 {
		card := rel.Cardinality()
		st := ctx.stats
		st.Operators++
		st.IntermediateTuples += card
		if card > st.PeakRelationTuples {
			st.PeakRelationTuples = card
		}
		ctx.perOp[m.meta().id].Emitted += card
	}
	return rel, nil
}

// materialize runs a subtree into a relation, taking the cheap path when the
// node can produce one directly.
func (ctx *execCtx) materialize(n Node) (*multiset.Relation, error) {
	if m, ok := n.(materializer); ok {
		return ctx.result(m)
	}
	out := multiset.NewWithCapacity(n.Schema(), capacityFor(n.meta().capHint))
	if err := ctx.collect(n, out); err != nil {
		return nil, err
	}
	return out, nil
}

// collect streams a node's output into a relation, picking the cheaper side
// of the dual contract.  Inside a parallel worker, batch-native subtrees are
// consumed batch-wise — their batches are read in place by AddBatch, and
// vectorised emission is what amortises the per-chunk call across the
// gang's per-worker streams.  Serial plans (and chunk-at-a-time subtrees)
// run the scalar fast path instead: with no exchange in play, batching
// would only buy buffer copies between the same two loops.
func (ctx *execCtx) collect(n Node, out *multiset.Relation) error {
	if _, native := n.(batchRunner); native && ctx.batchNative() {
		var scratch []tuple.Tuple
		var counts []uint64
		return ctx.runBatch(n, func(b *Batch) error {
			if err := ctx.poll(); err != nil {
				return err
			}
			switch {
			case b.Tuples != nil && b.Sel == nil:
				out.AddBatch(b.Tuples, b.Counts)
			case b.Tuples != nil:
				out.AddBatchSel(b.Tuples, b.Counts, b.Sel)
			default:
				// Columnar-only batches materialise their live rows here — the
				// sink is the last consumer, so this is the one place the
				// column vectors must become tuples.
				scratch, counts = scratch[:0], counts[:0]
				n := b.Len()
				for i := 0; i < n; i++ {
					r := b.Row(i)
					scratch = append(scratch, b.TupleAt(r))
					counts = append(counts, b.Counts[r])
				}
				out.AddBatch(scratch, counts)
			}
			return nil
		})
	}
	return ctx.run(n, ctx.pollingEmit(func(t tuple.Tuple, c uint64) error {
		out.Add(t, c)
		return nil
	}))
}

// materialised records tuples held in an operator's internal state.
func (ctx *execCtx) materialised(n Node, count uint64) {
	if ctx.stats == nil {
		return
	}
	ctx.stats.MaterialisedTuples += count
	ctx.perOp[n.meta().id].Materialised += count
}

// capacityFor converts a cardinality estimate into a pre-sizing hint, clamped
// so a wild overestimate cannot balloon an allocation.
func capacityFor(est float64) int {
	const maxHint = 1 << 16
	if est <= 0 {
		return 0
	}
	if est >= maxHint {
		return maxHint
	}
	return int(est)
}
