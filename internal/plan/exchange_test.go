package plan

import (
	"errors"
	"strings"
	"testing"

	"mra/internal/algebra"
	"mra/internal/scalar"
	"mra/internal/value"
)

// parallelPlanner builds a planner of the given width that parallelises
// everything eligible, regardless of input size.
func parallelPlanner(src mapSource, workers int) *Planner {
	return &Planner{Cards: cardsOf(src), Workers: workers, ParallelThreshold: 1}
}

// countNodes counts plan nodes of the exchange kinds.
func countNodes(p *Plan) (merges, partitions int) {
	for _, n := range p.nodes {
		switch n.(type) {
		case *mergeNode:
			merges++
		case *partitionNode:
			partitions++
		}
	}
	return
}

// parallelShapes are the three shapes the planner parallelises, over the
// fact/dim test source.
func parallelShapes() map[string]algebra.Expr {
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(50)))
	return map[string]algebra.Expr{
		"pipeline": algebra.NewProject([]int{0}, algebra.NewSelect(pred, algebra.NewRel("fact"))),
		"union-pipeline": algebra.NewSelect(pred,
			algebra.NewUnion(algebra.NewRel("fact"), algebra.NewRel("fact"))),
		"hash-join": algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim")),
		"join-residual": algebra.NewJoin(
			scalar.NewAnd(scalar.Eq(0, 2), scalar.NewCompare(value.CmpLt, scalar.NewAttr(1), scalar.NewAttr(3))),
			algebra.NewRel("fact"), algebra.NewRel("dim")),
		"hash-agg": algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("fact")),
		"agg-over-pipeline": algebra.NewGroupBy([]int{0}, algebra.AggMax, 1,
			algebra.NewSelect(pred, algebra.NewRel("fact"))),
	}
}

// TestParallelMatchesSerial is the core exchange property: for every
// parallelised shape and several gang widths, the parallel plan produces
// exactly the serial multi-set, multiplicities included.
func TestParallelMatchesSerial(t *testing.T) {
	src := testSource(1000)
	for name, e := range parallelShapes() {
		serial, err := mustPlan(t, e, src).Execute(src)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, w := range []int{2, 4, 8} {
			p, err := parallelPlanner(src, w).Plan(e, catalogOf(src))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			merges, _ := countNodes(p)
			if merges == 0 {
				t.Fatalf("%s workers=%d: no exchange inserted:\n%s", name, w, p)
			}
			par, err := p.Execute(src)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if !par.Equal(serial) {
				t.Errorf("%s workers=%d: parallel result differs\nserial:   %s\nparallel: %s",
					name, w, serial, par)
			}
		}
	}
}

// TestParallelThreshold checks exchange insertion is gated on the estimated
// input cardinality and on the worker count.
func TestParallelThreshold(t *testing.T) {
	src := testSource(1000) // 1100 input tuples across fact and dim
	join := algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim"))

	// Serial planner: never.
	p := mustPlan(t, join, src)
	if m, pt := countNodes(p); m+pt != 0 {
		t.Errorf("serial planner inserted exchanges:\n%s", p)
	}

	// Parallel planner with the default threshold: 1100 tuples exceed it.
	pp := &Planner{Cards: cardsOf(src), Workers: 4}
	p2, err := pp.Plan(join, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countNodes(p2); m != 1 {
		t.Errorf("default threshold must parallelise a 1100-tuple join:\n%s", p2)
	}

	// Small inputs stay serial even with workers configured.
	small := testSource(100)
	p3, err := (&Planner{Cards: cardsOf(small), Workers: 4}).Plan(join, catalogOf(small))
	if err != nil {
		t.Fatal(err)
	}
	if m, pt := countNodes(p3); m+pt != 0 {
		t.Errorf("110 tuples are below the threshold, exchanges inserted:\n%s", p3)
	}
}

// TestParallelPlanRendering pins the explain rendering of a parallel join:
// Merge above the join, Partition on the join columns above each operand.
func TestParallelPlanRendering(t *testing.T) {
	src := testSource(1000)
	join := algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim"))
	p, err := (&Planner{Cards: cardsOf(src), Workers: 4}).Plan(join, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"Merge [workers=4]  (~10000 rows)",
		"└─ HashJoin [%1 = %3] build=right  (~10000 rows)",
		"   ├─ Partition [hash(%1) workers=4]  (1000 rows)",
		"   │  └─ Scan fact  (1000 rows)",
		"   └─ Partition [hash(%1) workers=4]  (100 rows)",
		"      └─ Scan dim  (100 rows)",
	}, "\n")
	if got := p.String(); got != want {
		t.Errorf("parallel plan rendering:\n%s\nwant:\n%s", got, want)
	}
}

// TestParallelStatsFolding checks the per-worker statistics are folded into
// the parent: logical emission totals match the serial execution (every tuple
// is processed by exactly one worker), and the merge accounts its partials.
func TestParallelStatsFolding(t *testing.T) {
	src := testSource(1000)
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(500)))
	e := algebra.NewSelect(pred, algebra.NewRel("fact"))

	var serial Stats
	sout, err := mustPlan(t, e, src).ExecuteStats(src, &serial)
	if err != nil {
		t.Fatal(err)
	}

	p, err := parallelPlanner(src, 4).Plan(e, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	var par Stats
	pout, err := p.ExecuteStats(src, &par)
	if err != nil {
		t.Fatal(err)
	}
	if !pout.Equal(sout) {
		t.Fatalf("results differ")
	}
	// The filter's total emissions across workers equal the serial emissions.
	var filterEmitted uint64
	for _, op := range par.PerOperator {
		if strings.HasPrefix(op.Operator, "Filter") {
			filterEmitted += op.Emitted
		}
	}
	if filterEmitted != sout.Cardinality() {
		t.Errorf("filter emitted %d across workers, want %d", filterEmitted, sout.Cardinality())
	}
	if serial.IntermediateTuples != sout.Cardinality() {
		t.Errorf("serial intermediate = %d", serial.IntermediateTuples)
	}
	// The merge holds the partials (the parallel region's materialised state).
	if par.MaterialisedTuples != sout.Cardinality() {
		t.Errorf("merge materialised %d, want the output cardinality %d", par.MaterialisedTuples, sout.Cardinality())
	}
}

// TestParallelErrorPropagation checks a runtime error inside one worker's
// slice aborts the parallel execution, like its serial counterpart.
func TestParallelErrorPropagation(t *testing.T) {
	src := testSource(1000)
	// %2 / %1 divides by zero for the fact tuples with key 0.
	div := algebra.NewExtProject(
		[]scalar.Expr{scalar.NewArith(value.OpDiv, scalar.NewAttr(1), scalar.NewAttr(0))}, nil,
		algebra.NewRel("fact"))
	if _, err := mustPlan(t, div, src).Execute(src); !errors.Is(err, value.ErrDivideByZero) {
		t.Fatalf("serial err = %v", err)
	}
	p, err := parallelPlanner(src, 4).Plan(div, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countNodes(p); m == 0 {
		t.Fatalf("expected a parallel plan:\n%s", p)
	}
	if _, err := p.Execute(src); !errors.Is(err, value.ErrDivideByZero) {
		t.Errorf("parallel err = %v, want ErrDivideByZero", err)
	}
}

// TestParallelBlockingConsumers checks a Merge under a blocking operator
// (difference, closure input, sort) materialises correctly through the
// materializer fast path.
func TestParallelBlockingConsumers(t *testing.T) {
	src := testSource(1000)
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(100)))
	filtered := algebra.NewSelect(pred, algebra.NewRel("fact"))
	diff := algebra.NewDifference(algebra.NewRel("fact"), filtered)

	serial, err := mustPlan(t, diff, src).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := parallelPlanner(src, 4).Plan(diff, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countNodes(p); m == 0 {
		t.Fatalf("the filtered operand must run parallel:\n%s", p)
	}
	par, err := p.Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(serial) {
		t.Errorf("difference over a parallel operand differs\nserial:   %s\nparallel: %s", serial, par)
	}
}
