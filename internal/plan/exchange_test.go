package plan

import (
	"errors"
	"strings"
	"testing"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// parallelPlanner builds a planner of the given width that parallelises
// everything eligible, regardless of input size.
func parallelPlanner(src mapSource, workers int) *Planner {
	return &Planner{Cards: cardsOf(src), Workers: workers, ParallelThreshold: 1}
}

// countNodes counts plan nodes of the exchange kinds; GroupMerge is the gang
// boundary of two-phase aggregates and counts as a merge.
func countNodes(p *Plan) (merges, partitions int) {
	for _, n := range p.nodes {
		switch n.(type) {
		case *mergeNode, *groupMergeNode:
			merges++
		case *partitionNode:
			partitions++
		}
	}
	return
}

// parallelShapes are the operator shapes the planner parallelises, over the
// fact/dim test source.
func parallelShapes() map[string]algebra.Expr {
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(50)))
	return map[string]algebra.Expr{
		"pipeline": algebra.NewProject([]int{0}, algebra.NewSelect(pred, algebra.NewRel("fact"))),
		"union-pipeline": algebra.NewSelect(pred,
			algebra.NewUnion(algebra.NewRel("fact"), algebra.NewRel("fact"))),
		"hash-join": algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim")),
		"join-residual": algebra.NewJoin(
			scalar.NewAnd(scalar.Eq(0, 2), scalar.NewCompare(value.CmpLt, scalar.NewAttr(1), scalar.NewAttr(3))),
			algebra.NewRel("fact"), algebra.NewRel("dim")),
		"join-over-pipeline": algebra.NewJoin(scalar.Eq(0, 2),
			algebra.NewSelect(pred, algebra.NewRel("fact")), algebra.NewRel("dim")),
		"hash-agg": algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("fact")),
		"agg-over-pipeline": algebra.NewGroupBy([]int{0}, algebra.AggMax, 1,
			algebra.NewSelect(pred, algebra.NewRel("fact"))),
		"multi-agg": algebra.NewGroupByMulti([]int{0}, []algebra.AggSpec{
			{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggSum, Col: 1}, {Fn: algebra.AggMax, Col: 1},
		}, algebra.NewRel("fact")),
		"global-agg": algebra.NewGroupBy(nil, algebra.AggSum, 1, algebra.NewRel("fact")),
		"global-multi-agg-pipeline": algebra.NewGroupByMulti(nil, []algebra.AggSpec{
			{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggMin, Col: 1}, {Fn: algebra.AggAvg, Col: 1},
		}, algebra.NewSelect(pred, algebra.NewRel("fact"))),
		"difference": algebra.NewDifference(algebra.NewRel("fact"),
			algebra.NewSelect(pred, algebra.NewRel("fact"))),
		"intersect": algebra.NewIntersect(algebra.NewRel("fact"),
			algebra.NewSelect(pred, algebra.NewRel("fact"))),
	}
}

// TestParallelMatchesSerial is the core exchange property: for every
// parallelised shape and several gang widths, the parallel plan produces
// exactly the serial multi-set, multiplicities included.
func TestParallelMatchesSerial(t *testing.T) {
	src := testSource(1000)
	for name, e := range parallelShapes() {
		serial, err := mustPlan(t, e, src).Execute(src)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, w := range []int{2, 4, 8} {
			p, err := parallelPlanner(src, w).Plan(e, catalogOf(src))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			merges, _ := countNodes(p)
			if merges == 0 {
				t.Fatalf("%s workers=%d: no exchange inserted:\n%s", name, w, p)
			}
			par, err := p.Execute(src)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if !par.Equal(serial) {
				t.Errorf("%s workers=%d: parallel result differs\nserial:   %s\nparallel: %s",
					name, w, serial, par)
			}
		}
	}
}

// TestMorselSchedulingMatchesSerial sweeps tiny morsel and batch sizes —
// forcing many steal rounds and many batch boundaries on small inputs — and
// checks every parallel shape still produces exactly the serial multi-set.
// It also pins the legacy static-slice scheduler to the same results, so the
// benchmarking baseline stays correct.
func TestMorselSchedulingMatchesSerial(t *testing.T) {
	src := testSource(1000)
	for name, e := range parallelShapes() {
		serial, err := mustPlan(t, e, src).Execute(src)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, w := range []int{2, 8} {
			for _, cfg := range []struct{ morsel, batch int }{
				{1, 1}, {3, 2}, {16, 4}, {1, 1024}, {4096, 1},
			} {
				pp := parallelPlanner(src, w)
				pp.MorselSize, pp.BatchSize = cfg.morsel, cfg.batch
				p, err := pp.Plan(e, catalogOf(src))
				if err != nil {
					t.Fatalf("%s w=%d morsel=%d batch=%d: %v", name, w, cfg.morsel, cfg.batch, err)
				}
				par, err := p.Execute(src)
				if err != nil {
					t.Fatalf("%s w=%d morsel=%d batch=%d: %v", name, w, cfg.morsel, cfg.batch, err)
				}
				if !par.Equal(serial) {
					t.Errorf("%s w=%d morsel=%d batch=%d: result differs\nserial:   %s\nparallel: %s",
						name, w, cfg.morsel, cfg.batch, serial, par)
				}
			}
			static := parallelPlanner(src, w)
			static.StaticSlices = true
			p, err := static.Plan(e, catalogOf(src))
			if err != nil {
				t.Fatalf("%s w=%d static: %v", name, w, err)
			}
			par, err := p.Execute(src)
			if err != nil {
				t.Fatalf("%s w=%d static: %v", name, w, err)
			}
			if !par.Equal(serial) {
				t.Errorf("%s w=%d static slices: result differs\nserial:   %s\nparallel: %s",
					name, w, serial, par)
			}
		}
	}
}

// TestParallelSetOperatorExchanges pins the plan shape of a parallel
// Difference: a Merge above the operator with full-tuple hash Partitions on
// both operands (monus distributes over a tuple-consistent split, Theorem
// 3.1-style), and checks the executed result against serial.
func TestParallelSetOperatorExchanges(t *testing.T) {
	src := testSource(1000)
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(100)))
	diff := algebra.NewDifference(algebra.NewRel("fact"),
		algebra.NewSelect(pred, algebra.NewRel("fact")))
	p, err := (&Planner{Cards: cardsOf(src), Workers: 4}).Plan(diff, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	merges, partitions := countNodes(p)
	if merges != 1 || partitions != 2 {
		t.Fatalf("parallel difference: %d merges, %d partitions:\n%s", merges, partitions, p)
	}
	rendering := p.String()
	if !strings.Contains(rendering, "Difference") || !strings.Contains(rendering, "Partition [hash workers=4]") {
		t.Errorf("parallel difference rendering:\n%s", rendering)
	}
	// Filters preserve tuples, so the full-tuple partition sinks below the
	// filter to the scan, where the cached-entry-hash fast path applies.
	if !strings.Contains(rendering, "Filter [%2 >= 100]  (est~250 rows)\n      └─ Partition [hash workers=4]") {
		t.Errorf("partition not sunk below the tuple-preserving filter:\n%s", rendering)
	}

	// Projections change tuples: their operands must partition at the root,
	// never below the projection (the owner of a projected tuple is not the
	// owner of its source).
	projDiff := algebra.NewDifference(
		algebra.NewProject([]int{0}, algebra.NewRel("fact")),
		algebra.NewProject([]int{0}, algebra.NewRel("fact")))
	pp, err := (&Planner{Cards: cardsOf(src), Workers: 4}).Plan(projDiff, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pp.String(), "Partition [hash workers=4]  (est~1000 rows)\n   │  └─ Project [%1]") {
		t.Errorf("projection operand must partition at its root:\n%s", pp)
	}
	serialProj, err := mustPlan(t, projDiff, src).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	parProj, err := pp.Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if !parProj.Equal(serialProj) {
		t.Errorf("parallel difference over projections differs\nserial:   %s\nparallel: %s", serialProj, parProj)
	}
	serial, err := mustPlan(t, diff, src).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	par, err := p.Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(serial) {
		t.Errorf("parallel difference differs\nserial:   %s\nparallel: %s", serial, par)
	}
}

// TestParallelThreshold checks exchange insertion is gated on the estimated
// input cardinality and on the worker count.
func TestParallelThreshold(t *testing.T) {
	src := testSource(1000) // 1100 input tuples across fact and dim
	join := algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim"))

	// Serial planner: never.
	p := mustPlan(t, join, src)
	if m, pt := countNodes(p); m+pt != 0 {
		t.Errorf("serial planner inserted exchanges:\n%s", p)
	}

	// Parallel planner with the default threshold: 1100 tuples exceed it.
	pp := &Planner{Cards: cardsOf(src), Workers: 4}
	p2, err := pp.Plan(join, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countNodes(p2); m != 1 {
		t.Errorf("default threshold must parallelise a 1100-tuple join:\n%s", p2)
	}

	// Small inputs stay serial even with workers configured.
	small := testSource(100)
	p3, err := (&Planner{Cards: cardsOf(small), Workers: 4}).Plan(join, catalogOf(small))
	if err != nil {
		t.Fatal(err)
	}
	if m, pt := countNodes(p3); m+pt != 0 {
		t.Errorf("110 tuples are below the threshold, exchanges inserted:\n%s", p3)
	}
}

// TestParallelPlanRendering pins the explain rendering of a parallel join:
// Merge above the shared-build join, with a morsel Partition above the
// probe-side scan and the build side left bare (it is built once by the
// exchange, not per worker).
func TestParallelPlanRendering(t *testing.T) {
	src := testSource(1000)
	join := algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim"))
	p, err := (&Planner{Cards: cardsOf(src), Workers: 4}).Plan(join, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"Merge [workers=4]  (est~10000 rows)",
		"└─ HashJoin [%1 = %3] build=right shared  (est~10000 rows)",
		"   ├─ Partition [morsel size=64]  (est=1000 rows)",
		"   │  └─ Scan fact  (est=1000 rows)",
		"   └─ Scan dim  (est=100 rows)",
	}, "\n")
	if got := p.String(); got != want {
		t.Errorf("parallel plan rendering:\n%s\nwant:\n%s", got, want)
	}
	// The legacy scheduler knob swaps the morsel partition for a static
	// full-tuple hash slice, leaving the shared build in place.
	ps, err := (&Planner{Cards: cardsOf(src), Workers: 4, StaticSlices: true}).Plan(join, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.String(); !strings.Contains(got, "Partition [hash workers=4]") {
		t.Errorf("static-slice plan rendering:\n%s", got)
	}
}

// TestParallelStatsFolding checks the per-worker statistics are folded into
// the parent: logical emission totals match the serial execution (every tuple
// is processed by exactly one worker), and the merge accounts its partials.
func TestParallelStatsFolding(t *testing.T) {
	src := testSource(1000)
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(500)))
	e := algebra.NewSelect(pred, algebra.NewRel("fact"))

	var serial Stats
	sout, err := mustPlan(t, e, src).ExecuteStats(src, &serial)
	if err != nil {
		t.Fatal(err)
	}

	p, err := parallelPlanner(src, 4).Plan(e, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	var par Stats
	pout, err := p.ExecuteStats(src, &par)
	if err != nil {
		t.Fatal(err)
	}
	if !pout.Equal(sout) {
		t.Fatalf("results differ")
	}
	// The filter's total emissions across workers equal the serial emissions.
	var filterEmitted uint64
	for _, op := range par.PerOperator {
		if strings.HasPrefix(op.Operator, "Filter") {
			filterEmitted += op.Emitted
		}
	}
	if filterEmitted != sout.Cardinality() {
		t.Errorf("filter emitted %d across workers, want %d", filterEmitted, sout.Cardinality())
	}
	if serial.IntermediateTuples != sout.Cardinality() {
		t.Errorf("serial intermediate = %d", serial.IntermediateTuples)
	}
	// The merge holds the partials (the parallel region's materialised state).
	if par.MaterialisedTuples != sout.Cardinality() {
		t.Errorf("merge materialised %d, want the output cardinality %d", par.MaterialisedTuples, sout.Cardinality())
	}
}

// TestParallelErrorPropagation checks a runtime error inside one worker's
// slice aborts the parallel execution, like its serial counterpart.
func TestParallelErrorPropagation(t *testing.T) {
	src := testSource(1000)
	// %2 / %1 divides by zero for the fact tuples with key 0.
	div := algebra.NewExtProject(
		[]scalar.Expr{scalar.NewArith(value.OpDiv, scalar.NewAttr(1), scalar.NewAttr(0))}, nil,
		algebra.NewRel("fact"))
	if _, err := mustPlan(t, div, src).Execute(src); !errors.Is(err, value.ErrDivideByZero) {
		t.Fatalf("serial err = %v", err)
	}
	p, err := parallelPlanner(src, 4).Plan(div, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countNodes(p); m == 0 {
		t.Fatalf("expected a parallel plan:\n%s", p)
	}
	if _, err := p.Execute(src); !errors.Is(err, value.ErrDivideByZero) {
		t.Errorf("parallel err = %v, want ErrDivideByZero", err)
	}
}

// TestParallelBlockingConsumers checks a Merge under a blocking operator
// (difference, closure input, sort) materialises correctly through the
// materializer fast path.
func TestParallelBlockingConsumers(t *testing.T) {
	src := testSource(1000)
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(100)))
	filtered := algebra.NewSelect(pred, algebra.NewRel("fact"))
	diff := algebra.NewDifference(algebra.NewRel("fact"), filtered)

	serial, err := mustPlan(t, diff, src).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := parallelPlanner(src, 4).Plan(diff, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countNodes(p); m == 0 {
		t.Fatalf("the filtered operand must run parallel:\n%s", p)
	}
	par, err := p.Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(serial) {
		t.Errorf("difference over a parallel operand differs\nserial:   %s\nparallel: %s", serial, par)
	}
}

// countAggExchanges tallies the aggregate-specific exchange shapes of a plan:
// two-phase GroupMerge boundaries and one-phase grouping-column hash
// partitions.
func countAggExchanges(p *Plan) (twoPhase, onePhaseParts int) {
	for _, n := range p.nodes {
		switch x := n.(type) {
		case *groupMergeNode:
			twoPhase++
		case *partitionNode:
			if x.mode == partitionHash && x.cols != nil {
				onePhaseParts++
			}
		}
	}
	return
}

// TestAggregatePhaseChoice pins the cost-based choice between the two
// parallel aggregate shapes: low-cardinality grouping (strong pre-aggregation
// reduction) goes two-phase, grouping on every input column (groups =
// distinct tuples, no reduction) falls back to the one-phase key partition,
// and global aggregates — which the one-phase shape cannot parallelise at all
// — are always two-phase.
func TestAggregatePhaseChoice(t *testing.T) {
	src := testSource(1000)
	lowCard := algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("fact"))
	allCols := algebra.NewGroupBy([]int{0, 1}, algebra.AggCount, 0, algebra.NewRel("fact"))
	global := algebra.NewGroupBy(nil, algebra.AggSum, 1, algebra.NewRel("fact"))

	plan := func(e algebra.Expr, onePhase bool) *Plan {
		pp := parallelPlanner(src, 4)
		pp.OnePhaseAgg = onePhase
		p, err := pp.Plan(e, catalogOf(src))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	if two, one := countAggExchanges(plan(lowCard, false)); two != 1 || one != 0 {
		t.Errorf("low-cardinality grouping: twoPhase=%d onePhase=%d, want two-phase", two, one)
	}
	if two, one := countAggExchanges(plan(allCols, false)); two != 0 || one == 0 {
		t.Errorf("grouping on all columns: twoPhase=%d onePhase=%d, want one-phase", two, one)
	}
	if two, _ := countAggExchanges(plan(global, false)); two != 1 {
		t.Errorf("global aggregate must be two-phase, got %d", two)
	}

	// The OnePhaseAgg knob forces the legacy shape on grouped aggregates and
	// leaves global aggregates serial.
	if two, one := countAggExchanges(plan(lowCard, true)); two != 0 || one == 0 {
		t.Errorf("OnePhaseAgg grouped: twoPhase=%d onePhase=%d", two, one)
	}
	forcedGlobal := plan(global, true)
	if m, _ := countNodes(forcedGlobal); m != 0 {
		t.Errorf("OnePhaseAgg global aggregate must stay serial:\n%s", forcedGlobal)
	}

	// Both forced shapes still compute the serial result.
	serial, err := mustPlan(t, lowCard, src).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, onePhase := range []bool{false, true} {
		got, err := plan(lowCard, onePhase).Execute(src)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(serial) {
			t.Errorf("onePhase=%v aggregate differs from serial", onePhase)
		}
	}
}

// TestGroupMergeStats checks the statistics contract of the two-phase
// exchange: each worker's partial groups are charged to the aggregate
// operator, the merged global groups to the GroupMerge, and per-worker
// operator executions fold into the parent's counters.
func TestGroupMergeStats(t *testing.T) {
	src := testSource(1000)
	e := algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("fact"))
	p, err := parallelPlanner(src, 4).Plan(e, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if two, _ := countAggExchanges(p); two != 1 {
		t.Fatalf("expected a two-phase plan:\n%s", p)
	}
	var st Stats
	out, err := p.ExecuteStats(src, &st)
	if err != nil {
		t.Fatal(err)
	}
	groups := out.Cardinality()
	if groups != 100 {
		t.Fatalf("groups = %d, want 100", groups)
	}
	// The GroupMerge holds the merged global table; the per-worker partial
	// tables hold at least one entry per group overall (a group may appear in
	// up to four workers' partials).
	var mergeHeld, aggHeld uint64
	for _, op := range st.PerOperator {
		switch {
		case strings.HasPrefix(op.Operator, "GroupMerge"):
			mergeHeld = op.Materialised
		case strings.HasPrefix(op.Operator, "HashAggregate"):
			aggHeld = op.Materialised
		}
	}
	if mergeHeld != groups {
		t.Errorf("GroupMerge materialised = %d, want %d", mergeHeld, groups)
	}
	if aggHeld < groups || aggHeld > 4*groups {
		t.Errorf("partial groups = %d, want within [%d, %d]", aggHeld, groups, 4*groups)
	}
}

// TestFloatAggregateStaysExact pins the float-exactness rule of the parallel
// aggregate: float addition is not associative, but the compensated (Neumaier)
// partial sums keep every re-association exact for these inputs, so SUM/AVG
// over a float attribute now plans two-phase like every other aggregate and
// must still equal the serial one-phase result bit for bit.  The
// catastrophic-cancellation values below make any uncompensated re-associated
// summation visibly wrong, not just off by ULPs — the 1e16/-1e16 pair lands in
// different workers' partials, and only the carried compensation term brings
// the small addends back at merge time.
func TestFloatAggregateStaysExact(t *testing.T) {
	s := schema.NewRelation("f",
		schema.Attribute{Name: "g", Type: value.KindInt},
		schema.Attribute{Name: "v", Type: value.KindFloat})
	rel := multiset.New(s)
	rel.Add(tuple.New(value.NewInt(0), value.NewFloat(1e16)), 1)
	for i := 0; i < 64; i++ {
		rel.Add(tuple.New(value.NewInt(int64(i%2)), value.NewFloat(float64(i)+0.3)), 1)
	}
	rel.Add(tuple.New(value.NewInt(0), value.NewFloat(-1e16)), 1)
	src := mapSource{"f": rel}

	grouped := algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("f"))
	global := algebra.NewGroupByMulti(nil, []algebra.AggSpec{
		{Fn: algebra.AggSum, Col: 1}, {Fn: algebra.AggAvg, Col: 1},
	}, algebra.NewRel("f"))
	exactShapes := algebra.NewGroupByMulti([]int{0}, []algebra.AggSpec{
		{Fn: algebra.AggCount, Col: 0}, {Fn: algebra.AggMin, Col: 1}, {Fn: algebra.AggMax, Col: 1},
	}, algebra.NewRel("f"))

	for i, e := range []algebra.Expr{grouped, global, exactShapes} {
		// The global float aggregate can only parallelise two-phase; grouped
		// shapes stay a cost-model choice (one-phase wins when groups×workers
		// rivals the input), so only the global plan's shape is pinned.
		globalFloatSum := i == 1
		serial, err := mustPlan(t, e, src).Execute(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, 8} {
			pp := parallelPlanner(src, w)
			pp.MorselSize = 1
			p, err := pp.Plan(e, catalogOf(src))
			if err != nil {
				t.Fatal(err)
			}
			if two, _ := countAggExchanges(p); two == 0 && globalFloatSum {
				t.Fatalf("compensated float SUM/AVG should plan two-phase:\n%s", p)
			}
			for round := 0; round < 5; round++ {
				par, err := p.Execute(src)
				if err != nil {
					t.Fatal(err)
				}
				if !par.Equal(serial) {
					t.Fatalf("workers=%d round=%d: float aggregate diverged from serial\nserial:   %s\nparallel: %s",
						w, round, serial, par)
				}
			}
		}
	}
	// CNT/MIN/MAX over floats merge exactly and keep the two-phase shape.
	p, err := parallelPlanner(src, 4).Plan(exactShapes, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if two, _ := countAggExchanges(p); two != 1 {
		t.Fatalf("CNT/MIN/MAX over floats should stay two-phase:\n%s", p)
	}
}
