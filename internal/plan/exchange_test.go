package plan

import (
	"errors"
	"strings"
	"testing"

	"mra/internal/algebra"
	"mra/internal/scalar"
	"mra/internal/value"
)

// parallelPlanner builds a planner of the given width that parallelises
// everything eligible, regardless of input size.
func parallelPlanner(src mapSource, workers int) *Planner {
	return &Planner{Cards: cardsOf(src), Workers: workers, ParallelThreshold: 1}
}

// countNodes counts plan nodes of the exchange kinds.
func countNodes(p *Plan) (merges, partitions int) {
	for _, n := range p.nodes {
		switch n.(type) {
		case *mergeNode:
			merges++
		case *partitionNode:
			partitions++
		}
	}
	return
}

// parallelShapes are the operator shapes the planner parallelises, over the
// fact/dim test source.
func parallelShapes() map[string]algebra.Expr {
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(50)))
	return map[string]algebra.Expr{
		"pipeline": algebra.NewProject([]int{0}, algebra.NewSelect(pred, algebra.NewRel("fact"))),
		"union-pipeline": algebra.NewSelect(pred,
			algebra.NewUnion(algebra.NewRel("fact"), algebra.NewRel("fact"))),
		"hash-join": algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim")),
		"join-residual": algebra.NewJoin(
			scalar.NewAnd(scalar.Eq(0, 2), scalar.NewCompare(value.CmpLt, scalar.NewAttr(1), scalar.NewAttr(3))),
			algebra.NewRel("fact"), algebra.NewRel("dim")),
		"join-over-pipeline": algebra.NewJoin(scalar.Eq(0, 2),
			algebra.NewSelect(pred, algebra.NewRel("fact")), algebra.NewRel("dim")),
		"hash-agg": algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("fact")),
		"agg-over-pipeline": algebra.NewGroupBy([]int{0}, algebra.AggMax, 1,
			algebra.NewSelect(pred, algebra.NewRel("fact"))),
		"difference": algebra.NewDifference(algebra.NewRel("fact"),
			algebra.NewSelect(pred, algebra.NewRel("fact"))),
		"intersect": algebra.NewIntersect(algebra.NewRel("fact"),
			algebra.NewSelect(pred, algebra.NewRel("fact"))),
	}
}

// TestParallelMatchesSerial is the core exchange property: for every
// parallelised shape and several gang widths, the parallel plan produces
// exactly the serial multi-set, multiplicities included.
func TestParallelMatchesSerial(t *testing.T) {
	src := testSource(1000)
	for name, e := range parallelShapes() {
		serial, err := mustPlan(t, e, src).Execute(src)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, w := range []int{2, 4, 8} {
			p, err := parallelPlanner(src, w).Plan(e, catalogOf(src))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			merges, _ := countNodes(p)
			if merges == 0 {
				t.Fatalf("%s workers=%d: no exchange inserted:\n%s", name, w, p)
			}
			par, err := p.Execute(src)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if !par.Equal(serial) {
				t.Errorf("%s workers=%d: parallel result differs\nserial:   %s\nparallel: %s",
					name, w, serial, par)
			}
		}
	}
}

// TestMorselSchedulingMatchesSerial sweeps tiny morsel and batch sizes —
// forcing many steal rounds and many batch boundaries on small inputs — and
// checks every parallel shape still produces exactly the serial multi-set.
// It also pins the legacy static-slice scheduler to the same results, so the
// benchmarking baseline stays correct.
func TestMorselSchedulingMatchesSerial(t *testing.T) {
	src := testSource(1000)
	for name, e := range parallelShapes() {
		serial, err := mustPlan(t, e, src).Execute(src)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, w := range []int{2, 8} {
			for _, cfg := range []struct{ morsel, batch int }{
				{1, 1}, {3, 2}, {16, 4}, {1, 1024}, {4096, 1},
			} {
				pp := parallelPlanner(src, w)
				pp.MorselSize, pp.BatchSize = cfg.morsel, cfg.batch
				p, err := pp.Plan(e, catalogOf(src))
				if err != nil {
					t.Fatalf("%s w=%d morsel=%d batch=%d: %v", name, w, cfg.morsel, cfg.batch, err)
				}
				par, err := p.Execute(src)
				if err != nil {
					t.Fatalf("%s w=%d morsel=%d batch=%d: %v", name, w, cfg.morsel, cfg.batch, err)
				}
				if !par.Equal(serial) {
					t.Errorf("%s w=%d morsel=%d batch=%d: result differs\nserial:   %s\nparallel: %s",
						name, w, cfg.morsel, cfg.batch, serial, par)
				}
			}
			static := parallelPlanner(src, w)
			static.StaticSlices = true
			p, err := static.Plan(e, catalogOf(src))
			if err != nil {
				t.Fatalf("%s w=%d static: %v", name, w, err)
			}
			par, err := p.Execute(src)
			if err != nil {
				t.Fatalf("%s w=%d static: %v", name, w, err)
			}
			if !par.Equal(serial) {
				t.Errorf("%s w=%d static slices: result differs\nserial:   %s\nparallel: %s",
					name, w, serial, par)
			}
		}
	}
}

// TestParallelSetOperatorExchanges pins the plan shape of a parallel
// Difference: a Merge above the operator with full-tuple hash Partitions on
// both operands (monus distributes over a tuple-consistent split, Theorem
// 3.1-style), and checks the executed result against serial.
func TestParallelSetOperatorExchanges(t *testing.T) {
	src := testSource(1000)
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(100)))
	diff := algebra.NewDifference(algebra.NewRel("fact"),
		algebra.NewSelect(pred, algebra.NewRel("fact")))
	p, err := (&Planner{Cards: cardsOf(src), Workers: 4}).Plan(diff, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	merges, partitions := countNodes(p)
	if merges != 1 || partitions != 2 {
		t.Fatalf("parallel difference: %d merges, %d partitions:\n%s", merges, partitions, p)
	}
	rendering := p.String()
	if !strings.Contains(rendering, "Difference") || !strings.Contains(rendering, "Partition [hash workers=4]") {
		t.Errorf("parallel difference rendering:\n%s", rendering)
	}
	// Filters preserve tuples, so the full-tuple partition sinks below the
	// filter to the scan, where the cached-entry-hash fast path applies.
	if !strings.Contains(rendering, "Filter [%2 >= 100]  (~250 rows)\n      └─ Partition [hash workers=4]") {
		t.Errorf("partition not sunk below the tuple-preserving filter:\n%s", rendering)
	}

	// Projections change tuples: their operands must partition at the root,
	// never below the projection (the owner of a projected tuple is not the
	// owner of its source).
	projDiff := algebra.NewDifference(
		algebra.NewProject([]int{0}, algebra.NewRel("fact")),
		algebra.NewProject([]int{0}, algebra.NewRel("fact")))
	pp, err := (&Planner{Cards: cardsOf(src), Workers: 4}).Plan(projDiff, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pp.String(), "Partition [hash workers=4]  (~1000 rows)\n   │  └─ Project [%1]") {
		t.Errorf("projection operand must partition at its root:\n%s", pp)
	}
	serialProj, err := mustPlan(t, projDiff, src).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	parProj, err := pp.Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if !parProj.Equal(serialProj) {
		t.Errorf("parallel difference over projections differs\nserial:   %s\nparallel: %s", serialProj, parProj)
	}
	serial, err := mustPlan(t, diff, src).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	par, err := p.Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(serial) {
		t.Errorf("parallel difference differs\nserial:   %s\nparallel: %s", serial, par)
	}
}

// TestParallelThreshold checks exchange insertion is gated on the estimated
// input cardinality and on the worker count.
func TestParallelThreshold(t *testing.T) {
	src := testSource(1000) // 1100 input tuples across fact and dim
	join := algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim"))

	// Serial planner: never.
	p := mustPlan(t, join, src)
	if m, pt := countNodes(p); m+pt != 0 {
		t.Errorf("serial planner inserted exchanges:\n%s", p)
	}

	// Parallel planner with the default threshold: 1100 tuples exceed it.
	pp := &Planner{Cards: cardsOf(src), Workers: 4}
	p2, err := pp.Plan(join, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countNodes(p2); m != 1 {
		t.Errorf("default threshold must parallelise a 1100-tuple join:\n%s", p2)
	}

	// Small inputs stay serial even with workers configured.
	small := testSource(100)
	p3, err := (&Planner{Cards: cardsOf(small), Workers: 4}).Plan(join, catalogOf(small))
	if err != nil {
		t.Fatal(err)
	}
	if m, pt := countNodes(p3); m+pt != 0 {
		t.Errorf("110 tuples are below the threshold, exchanges inserted:\n%s", p3)
	}
}

// TestParallelPlanRendering pins the explain rendering of a parallel join:
// Merge above the shared-build join, with a morsel Partition above the
// probe-side scan and the build side left bare (it is built once by the
// exchange, not per worker).
func TestParallelPlanRendering(t *testing.T) {
	src := testSource(1000)
	join := algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim"))
	p, err := (&Planner{Cards: cardsOf(src), Workers: 4}).Plan(join, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"Merge [workers=4]  (~10000 rows)",
		"└─ HashJoin [%1 = %3] build=right shared  (~10000 rows)",
		"   ├─ Partition [morsel size=64]  (1000 rows)",
		"   │  └─ Scan fact  (1000 rows)",
		"   └─ Scan dim  (100 rows)",
	}, "\n")
	if got := p.String(); got != want {
		t.Errorf("parallel plan rendering:\n%s\nwant:\n%s", got, want)
	}
	// The legacy scheduler knob swaps the morsel partition for a static
	// full-tuple hash slice, leaving the shared build in place.
	ps, err := (&Planner{Cards: cardsOf(src), Workers: 4, StaticSlices: true}).Plan(join, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.String(); !strings.Contains(got, "Partition [hash workers=4]") {
		t.Errorf("static-slice plan rendering:\n%s", got)
	}
}

// TestParallelStatsFolding checks the per-worker statistics are folded into
// the parent: logical emission totals match the serial execution (every tuple
// is processed by exactly one worker), and the merge accounts its partials.
func TestParallelStatsFolding(t *testing.T) {
	src := testSource(1000)
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(500)))
	e := algebra.NewSelect(pred, algebra.NewRel("fact"))

	var serial Stats
	sout, err := mustPlan(t, e, src).ExecuteStats(src, &serial)
	if err != nil {
		t.Fatal(err)
	}

	p, err := parallelPlanner(src, 4).Plan(e, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	var par Stats
	pout, err := p.ExecuteStats(src, &par)
	if err != nil {
		t.Fatal(err)
	}
	if !pout.Equal(sout) {
		t.Fatalf("results differ")
	}
	// The filter's total emissions across workers equal the serial emissions.
	var filterEmitted uint64
	for _, op := range par.PerOperator {
		if strings.HasPrefix(op.Operator, "Filter") {
			filterEmitted += op.Emitted
		}
	}
	if filterEmitted != sout.Cardinality() {
		t.Errorf("filter emitted %d across workers, want %d", filterEmitted, sout.Cardinality())
	}
	if serial.IntermediateTuples != sout.Cardinality() {
		t.Errorf("serial intermediate = %d", serial.IntermediateTuples)
	}
	// The merge holds the partials (the parallel region's materialised state).
	if par.MaterialisedTuples != sout.Cardinality() {
		t.Errorf("merge materialised %d, want the output cardinality %d", par.MaterialisedTuples, sout.Cardinality())
	}
}

// TestParallelErrorPropagation checks a runtime error inside one worker's
// slice aborts the parallel execution, like its serial counterpart.
func TestParallelErrorPropagation(t *testing.T) {
	src := testSource(1000)
	// %2 / %1 divides by zero for the fact tuples with key 0.
	div := algebra.NewExtProject(
		[]scalar.Expr{scalar.NewArith(value.OpDiv, scalar.NewAttr(1), scalar.NewAttr(0))}, nil,
		algebra.NewRel("fact"))
	if _, err := mustPlan(t, div, src).Execute(src); !errors.Is(err, value.ErrDivideByZero) {
		t.Fatalf("serial err = %v", err)
	}
	p, err := parallelPlanner(src, 4).Plan(div, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countNodes(p); m == 0 {
		t.Fatalf("expected a parallel plan:\n%s", p)
	}
	if _, err := p.Execute(src); !errors.Is(err, value.ErrDivideByZero) {
		t.Errorf("parallel err = %v, want ErrDivideByZero", err)
	}
}

// TestParallelBlockingConsumers checks a Merge under a blocking operator
// (difference, closure input, sort) materialises correctly through the
// materializer fast path.
func TestParallelBlockingConsumers(t *testing.T) {
	src := testSource(1000)
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(100)))
	filtered := algebra.NewSelect(pred, algebra.NewRel("fact"))
	diff := algebra.NewDifference(algebra.NewRel("fact"), filtered)

	serial, err := mustPlan(t, diff, src).Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := parallelPlanner(src, 4).Plan(diff, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countNodes(p); m == 0 {
		t.Fatalf("the filtered operand must run parallel:\n%s", p)
	}
	par, err := p.Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(serial) {
		t.Errorf("difference over a parallel operand differs\nserial:   %s\nparallel: %s", serial, par)
	}
}
