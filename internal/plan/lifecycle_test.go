package plan

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mra/internal/algebra"
	"mra/internal/exec"
	"mra/internal/multiset"
	"mra/internal/scalar"
	"mra/internal/testleak"
	"mra/internal/value"
)

// lifecycleWidths are the gang widths the lifecycle properties are proven at;
// width 1 exercises the serial plan shapes, the rest the exchange runtime.
var lifecycleWidths = []int{1, 2, 4, 8}

// lifecyclePlanner builds a planner that parallelises everything eligible at
// the given width with single-entry morsels, so every scan crosses the morsel
// queue as many times as possible — the densest set of cancellation points.
func lifecyclePlanner(src mapSource, workers int) *Planner {
	return &Planner{Cards: cardsOf(src), Workers: workers, ParallelThreshold: 1, MorselSize: 1}
}

// morselPartitions counts morsel-mode partition nodes in a plan.  Shapes the
// planner hash-partitions instead (key-consistent splits: one-phase
// aggregates, set operators) never touch the morsel queue, so their
// cancellation is driven from a different point.
func morselPartitions(p *Plan) int {
	n := 0
	for _, node := range p.nodes {
		if x, ok := node.(*partitionNode); ok && x.mode == partitionMorsel {
			n++
		}
	}
	return n
}

// gangBoundary names the plan's exchange boundary operator, as wrapGangErr
// would render it.
func gangBoundary(p *Plan) string {
	for _, n := range p.nodes {
		if _, ok := n.(*groupMergeNode); ok {
			return "GroupMerge"
		}
	}
	return "Merge"
}

// cancellingSource is a Source that cancels a context the moment a relation is
// resolved — after planning, before the scan emits — giving serial plans a
// deterministic mid-query cancellation point.
type cancellingSource struct {
	mapSource
	cancel context.CancelFunc
}

func (s cancellingSource) Relation(name string) (*multiset.Relation, bool) {
	s.cancel()
	return s.mapSource.Relation(name)
}

// TestCancelledBeforeExecution checks a plan handed an already-cancelled
// context fails with context.Canceled before any work, at every width.
func TestCancelledBeforeExecution(t *testing.T) {
	defer testleak.Check(t)()
	src := testSource(1000)
	for name, e := range parallelShapes() {
		for _, w := range lifecycleWidths {
			p, err := lifecyclePlanner(src, w).Plan(e, catalogOf(src))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := p.ExecuteContext(ctx, src); !errors.Is(err, context.Canceled) {
				t.Errorf("%s workers=%d: err = %v, want context.Canceled", name, w, err)
			}
		}
	}
}

// TestCancelMidStreamSerial checks the serial path's amortised emit polling:
// the context is cancelled after planning, exactly when the scan resolves its
// relation, and the poll wired into the emit chain must abort the stream.
func TestCancelMidStreamSerial(t *testing.T) {
	defer testleak.Check(t)()
	src := testSource(1000)
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(0)))
	e := algebra.NewProject([]int{0}, algebra.NewSelect(pred, algebra.NewRel("fact")))
	p := mustPlan(t, e, src)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := p.ExecuteContext(ctx, cancellingSource{src, cancel}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancelAtRandomClaims is the core cancellation property: for every
// parallel shape and gang width, cancelling the query context mid-exchange
// yields context.Canceled promptly, with no deadlock and no leaked goroutine.
// Morsel-partitioned shapes cancel at a randomised morsel-claim count
// (MorselSize=1 maximises claim density so the random points land throughout
// the exchange); hash-partitioned shapes — which never touch the morsel
// queue — cancel at scan-snapshot resolution, so the gang starts on a dead
// context and must unwind through its per-batch polls.
func TestCancelAtRandomClaims(t *testing.T) {
	src := testSource(1000)
	rng := rand.New(rand.NewSource(2026))
	for name, e := range parallelShapes() {
		for _, w := range []int{2, 4, 8} {
			p, err := lifecyclePlanner(src, w).Plan(e, catalogOf(src))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if m, _ := countNodes(p); m == 0 {
				t.Fatalf("%s workers=%d: no exchange inserted:\n%s", name, w, p)
			}
			check := testleak.Check(t)
			ctx, cancel := context.WithCancel(context.Background())
			var target int64
			var claims atomic.Int64
			execSrc := Source(src)
			restore := func() {}
			if morselPartitions(p) > 0 {
				// Every morsel shape scans fact (1000 entries) with
				// single-entry morsels, so any target below ~1000 claims is
				// reached before the exchange drains.
				target = int64(1 + rng.Intn(64))
				restore = exec.InjectFaults(&exec.Faults{MorselClaim: func() {
					if claims.Add(1) == target {
						cancel()
					}
				}})
			} else {
				execSrc = cancellingSource{src, cancel}
			}
			start := time.Now()
			_, err = p.ExecuteContext(ctx, execSrc)
			elapsed := time.Since(start)
			restore()
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s workers=%d claim=%d: err = %v, want context.Canceled", name, w, target, err)
			}
			if target > 0 && claims.Load() < target {
				t.Errorf("%s workers=%d: exchange drained after %d claims, cancellation target %d never fired", name, w, claims.Load(), target)
			}
			if elapsed > 5*time.Second {
				t.Errorf("%s workers=%d claim=%d: cancellation took %v, want prompt", name, w, target, elapsed)
			}
			check()
		}
	}
}

// TestDeadlineTripsMidExchange checks deadline enforcement inside a running
// exchange: slow morsel claims (injected delay) push the gang past a short
// deadline, and the query must fail with context.DeadlineExceeded long before
// the work would have finished.
func TestDeadlineTripsMidExchange(t *testing.T) {
	defer testleak.Check(t)()
	src := testSource(1000)
	e := algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("fact"))
	p, err := lifecyclePlanner(src, 4).Plan(e, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	// 1000 single-entry claims at 2ms each is ~2s of injected latency even
	// spread over 4 workers; the deadline trips within tens of milliseconds.
	restore := exec.InjectFaults(&exec.Faults{ClaimDelay: 2 * time.Millisecond})
	defer restore()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = p.ExecuteContext(ctx, src)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline enforcement took %v, want prompt", elapsed)
	}
}

// TestInjectedWorkerPanicNamesOperator checks an injected worker panic inside
// a parallel plan surfaces as one coherent error — a *exec.PanicError carrying
// the worker id, prefixed with the exchange operator it crashed under — and
// never as a process crash or a leaked gang.
func TestInjectedWorkerPanicNamesOperator(t *testing.T) {
	src := testSource(1000)
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(1), scalar.NewConst(value.NewInt(50)))
	shapes := map[string]algebra.Expr{
		"merge":       algebra.NewSelect(pred, algebra.NewRel("fact")),
		"group-merge": algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("fact")),
	}
	for name, e := range shapes {
		for _, w := range []int{2, 4, 8} {
			check := testleak.Check(t)
			p, err := lifecyclePlanner(src, w).Plan(e, catalogOf(src))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			// The gang boundary varies with the cost model's one-phase /
			// two-phase choice; the surfaced error must name whichever the
			// plan actually has.
			op := gangBoundary(p)
			victim := w - 1
			restore := exec.InjectFaults(&exec.Faults{WorkerStart: func(worker int) {
				if worker == victim {
					panic("injected worker crash")
				}
			}})
			_, err = p.ExecuteContext(context.Background(), src)
			restore()
			var pe *exec.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("%s workers=%d: err = %v, want *exec.PanicError", name, w, err)
			}
			if pe.Worker != victim {
				t.Errorf("%s workers=%d: panic attributed to worker %d, want %d", name, w, pe.Worker, victim)
			}
			if !strings.Contains(err.Error(), op) {
				t.Errorf("%s workers=%d: error %q does not name the %s operator", name, w, err, op)
			}
			check()
		}
	}
}

// TestMemoryBudgetTrips checks every charging site fails deterministically
// with ErrMemoryBudget under a tiny budget — hash-join builds, group tables,
// Unique's seen set, nested-loop materialisations — serial and parallel (the
// gauge is shared across the gang), and that a generous budget changes
// nothing.
func TestMemoryBudgetTrips(t *testing.T) {
	defer testleak.Check(t)()
	src := testSource(1000)
	pred := scalar.NewCompare(value.CmpLt, scalar.NewAttr(1), scalar.NewAttr(3))
	shapes := map[string]algebra.Expr{
		"hash-join-build": algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim")),
		"group-table":     algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("fact")),
		"unique-seen":     algebra.NewUnique(algebra.NewRel("fact")),
		"nested-loop":     algebra.NewJoin(pred, algebra.NewRel("fact"), algebra.NewRel("dim")),
		"difference":      algebra.NewDifference(algebra.NewRel("fact"), algebra.NewRel("fact")),
		"intersect":       algebra.NewIntersect(algebra.NewRel("fact"), algebra.NewRel("fact")),
	}
	for name, e := range shapes {
		for _, w := range lifecycleWidths {
			pl := lifecyclePlanner(src, w)
			pl.MemoryLimit = 1024
			p, err := pl.Plan(e, catalogOf(src))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if _, err := p.ExecuteContext(context.Background(), src); !errors.Is(err, ErrMemoryBudget) {
				t.Errorf("%s workers=%d limit=1KiB: err = %v, want ErrMemoryBudget", name, w, err)
			}
			// A generous budget must not change the result.
			pl.MemoryLimit = 1 << 30
			p, err = pl.Plan(e, catalogOf(src))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			got, err := p.Execute(src)
			if err != nil {
				t.Fatalf("%s workers=%d limit=1GiB: %v", name, w, err)
			}
			want, err := mustPlan(t, e, src).Execute(src)
			if err != nil {
				t.Fatalf("%s reference: %v", name, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s workers=%d: result differs under a generous budget", name, w)
			}
		}
	}
}

// TestMemoryBudgetTripsSort checks the Sort materialisation charges the gauge:
// an ordered plan over a tiny budget fails with ErrMemoryBudget, and a
// generous one succeeds.
func TestMemoryBudgetTripsSort(t *testing.T) {
	defer testleak.Check(t)()
	src := testSource(1000)
	e := algebra.NewRel("fact")
	keys := []SortKey{{Col: 1, Desc: true}}
	pl := &Planner{Cards: cardsOf(src), MemoryLimit: 1024}
	p, err := pl.PlanOrdered(e, catalogOf(src), keys)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.ExecuteOrdered(src, nil); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("limit=1KiB: err = %v, want ErrMemoryBudget", err)
	}
	pl.MemoryLimit = 1 << 30
	p, err = pl.PlanOrdered(e, catalogOf(src), keys)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := p.ExecuteOrdered(src, nil)
	if err != nil {
		t.Fatalf("limit=1GiB: %v", err)
	}
	if len(rows) != 1000 {
		t.Fatalf("ordered rows = %d, want 1000", len(rows))
	}
}

// TestCancelledOrderedExecution checks the Sort path honours cancellation: a
// pre-cancelled ordered execution fails with context.Canceled at every width.
func TestCancelledOrderedExecution(t *testing.T) {
	defer testleak.Check(t)()
	src := testSource(1000)
	for _, w := range lifecycleWidths {
		pl := lifecyclePlanner(src, w)
		p, err := pl.PlanOrdered(algebra.NewRel("fact"), catalogOf(src), []SortKey{{Col: 0}})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, _, err := p.ExecuteOrderedContext(ctx, src, nil); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", w, err)
		}
	}
}

// TestMemoryGaugeAccounting pins the gauge arithmetic: concurrent growth
// trips exactly past the limit, Release returns budget, and the nil gauge is
// inert.
func TestMemoryGaugeAccounting(t *testing.T) {
	g := NewMemoryGauge(100)
	if err := g.Grow(60); err != nil {
		t.Fatalf("first grow: %v", err)
	}
	if err := g.Grow(60); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("over-limit grow: err = %v, want ErrMemoryBudget", err)
	}
	g.Release(60)
	if err := g.Grow(40); err != nil {
		t.Fatalf("grow after release: %v", err)
	}
	if got := g.Used(); got != 100 {
		t.Errorf("Used = %d, want 100", got)
	}
	if got := g.Limit(); got != 100 {
		t.Errorf("Limit = %d, want 100", got)
	}
	var nilGauge *MemoryGauge
	if err := nilGauge.Grow(1 << 40); err != nil {
		t.Errorf("nil gauge Grow: %v", err)
	}
	nilGauge.Release(1)
	if nilGauge.Used() != 0 || nilGauge.Limit() != 0 {
		t.Errorf("nil gauge reports usage")
	}
}
