package plan

import (
	"errors"
	"fmt"
	"math"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// ErrEmptyAggregate is returned when AVG, MIN or MAX is applied to an empty
// multi-set.  The paper defines these aggregate functions as partial
// functions, undefined on empty inputs (Definition 3.3).
var ErrEmptyAggregate = errors.New("plan: aggregate undefined on an empty multi-set")

// groupSpec is the compiled form of a groupby operator Γ_{α,(f,p)…}: the
// grouping columns, the aggregate applications in output order, and the
// result schema.
type groupSpec struct {
	groupCols []int
	aggs      []algebra.AggSpec
	outSchema schema.Relation
}

// AggState is the decomposable execution state of one aggregate function of
// Definition 3.3 over a stream of (value, multiplicity) observations.  It is
// the unit of two-phase aggregation: Add folds input chunks into a local
// (partial) state, MergePartial combines partial states computed over
// disjoint portions of the input, and Final produces the aggregate's value.
//
// Splitting the input is exact because every aggregate of Definition 3.3 is a
// fold over a commutative monoid: CNT and SUM add, MIN and MAX take the
// extremum, and AVG decomposes into the pair (sum, count) that is combined
// point-wise and divided only at Final.  Final preserves the definition's
// partiality: AVG, MIN and MAX on a state that saw no input return
// ErrEmptyAggregate.
//
// Machine arithmetic qualifies the exactness for floats: float addition is
// not associative, so a naively re-associated float sum could round
// differently when partials merge in a different order than the serial fold.
// The float half of the state therefore carries compensated (Neumaier/Kahan)
// summation: fsum accumulates the running sum and fcomp the rounding error
// each addition discards, and Final returns fsum + fcomp — an error-free
// transformation that makes the result of well-conditioned sums independent
// of how the input was partitioned, which is what lets the planner run float
// SUM/AVG two-phase.  Integer sums (isum) are exact int64 arithmetic and
// merge bit for bit.
type AggState struct {
	fn    algebra.Aggregate
	count uint64
	isum  int64
	fsum  float64
	fcomp float64
	fltIn bool
	min   value.Value
	max   value.Value
	seen  bool
}

// NewAggState returns the empty state of the given aggregate function.
func NewAggState(fn algebra.Aggregate) AggState { return AggState{fn: fn} }

// fadd folds x into the compensated float sum: Neumaier's variant of Kahan
// summation, which keeps the larger-magnitude operand's discarded low-order
// bits in fcomp so fsum + fcomp carries the sum at roughly double working
// precision.
func (s *AggState) fadd(x float64) {
	t := s.fsum + x
	if math.Abs(s.fsum) >= math.Abs(x) {
		s.fcomp += (s.fsum - t) + x
	} else {
		s.fcomp += (x - t) + s.fsum
	}
	s.fsum = t
}

// Add folds in one stream chunk: the aggregated attribute's value with the
// chunk's multiplicity.  Nulls count towards CNT (and AVG's divisor) but
// contribute nothing to sums and extrema; SUM and AVG over a non-numeric,
// non-null value fail.
func (s *AggState) Add(v value.Value, count uint64) error {
	s.count += count
	switch s.fn {
	case algebra.AggCount:
		return nil
	case algebra.AggSum, algebra.AggAvg:
		switch v.Kind() {
		case value.KindInt:
			s.isum += v.Int() * int64(count)
		case value.KindFloat:
			s.fadd(v.Float() * float64(count))
			s.fltIn = true
		case value.KindNull:
			// Nulls contribute nothing to sums; CNT above still counts them.
		default:
			return fmt.Errorf("plan: %s over non-numeric value %s", s.fn, v)
		}
		return nil
	case algebra.AggMin, algebra.AggMax:
		if v.IsNull() {
			return nil
		}
		if !s.seen {
			s.min, s.max, s.seen = v, v, true
			return nil
		}
		if v.Less(s.min) {
			s.min = v
		}
		if s.max.Less(v) {
			s.max = v
		}
		return nil
	default:
		return fmt.Errorf("plan: unknown aggregate %v", s.fn)
	}
}

// MergePartial folds another partial state of the same aggregate function
// into s: counts and sums add, extrema take the minimum/maximum, and AVG's
// (sum, count) pair combines point-wise.  The other state is left untouched.
func (s *AggState) MergePartial(o *AggState) {
	s.count += o.count
	s.isum += o.isum
	// The partial's compensated sum folds in as one compensated addition of
	// its sum plus a direct accumulation of its error term, so the merged
	// state keeps the double-precision invariant fsum + fcomp ≈ true sum.
	s.fadd(o.fsum)
	s.fcomp += o.fcomp
	s.fltIn = s.fltIn || o.fltIn
	if o.seen {
		if !s.seen {
			s.min, s.max, s.seen = o.min, o.max, true
		} else {
			if o.min.Less(s.min) {
				s.min = o.min
			}
			if s.max.Less(o.max) {
				s.max = o.max
			}
		}
	}
}

// Final returns the aggregate's value.  AVG, MIN and MAX fail with
// ErrEmptyAggregate on states that saw no input, per Definition 3.3's
// partiality.
func (s *AggState) Final() (value.Value, error) {
	switch s.fn {
	case algebra.AggCount:
		return value.NewInt(int64(s.count)), nil
	case algebra.AggSum:
		if s.fltIn {
			return value.NewFloat(s.fsum + s.fcomp + float64(s.isum)), nil
		}
		return value.NewInt(s.isum), nil
	case algebra.AggAvg:
		if s.count == 0 {
			return value.Null, ErrEmptyAggregate
		}
		return value.NewFloat((s.fsum + s.fcomp + float64(s.isum)) / float64(s.count)), nil
	case algebra.AggMin:
		if !s.seen {
			return value.Null, ErrEmptyAggregate
		}
		return s.min, nil
	case algebra.AggMax:
		if !s.seen {
			return value.Null, ErrEmptyAggregate
		}
		return s.max, nil
	default:
		return value.Null, fmt.Errorf("plan: unknown aggregate %v", s.fn)
	}
}

// groupTable is the grouped hash table behind the hash aggregate: groups
// keyed by tuple.HashOn over the grouping columns with positional-equality
// collision chains — the same scheme the relation representation and the
// hash join use.  Every group owns one AggState per aggregate application,
// stored in a flat arena (group i's states are states[i*k : (i+1)*k] for k
// aggregates) so multi-aggregate groups stay cache-adjacent.
type groupTable struct {
	spec   groupSpec
	groups []groupEntry
	states []AggState
	index  map[uint64]int32
	// mem, when non-nil, is charged for every created group (the
	// representative tuple plus its aggregate states), so a runaway grouping
	// trips the query's memory budget instead of exhausting the process.
	mem *MemoryGauge
	// keyVecs/aggVecs are addBatch's per-batch column bindings, kept on the
	// table (which is single-consumer) to avoid per-batch allocation.
	keyVecs []value.Vec
	aggVecs []value.Vec
}

// groupEntry is one group of the table: a representative input tuple (whose
// grouping attributes identify the group) and the collision-chain link.
type groupEntry struct {
	rep  tuple.Tuple
	next int32
}

func newGroupTable(spec groupSpec, capacity int, mem *MemoryGauge) *groupTable {
	if capacity < 16 {
		capacity = 16
	}
	return &groupTable{spec: spec, index: make(map[uint64]int32, capacity), mem: mem}
}

// findOrCreate returns the index of t's group, creating it (with fresh
// aggregate states) on first sight.  Creation fails when charging the new
// group would exceed the table's memory budget.
func (g *groupTable) findOrCreate(t tuple.Tuple) (int, error) {
	h := t.HashOn(g.spec.groupCols)
	head, ok := g.index[h]
	if !ok {
		head = -1
	}
	for i := head; i != -1; i = g.groups[i].next {
		if equalOn(t, g.spec.groupCols, g.groups[i].rep, g.spec.groupCols) {
			return int(i), nil
		}
	}
	if g.mem != nil {
		if err := g.mem.Grow(approxTupleBytes(t) + int64(len(g.spec.aggs))*aggStateBytes); err != nil {
			return 0, err
		}
	}
	gi := len(g.groups)
	g.index[h] = int32(gi)
	g.groups = append(g.groups, groupEntry{rep: t, next: head})
	for _, sp := range g.spec.aggs {
		g.states = append(g.states, NewAggState(sp.Fn))
	}
	return gi, nil
}

// add folds one input chunk into its group's aggregate states, creating the
// group on first sight.
func (g *groupTable) add(t tuple.Tuple, count uint64) error {
	gi, err := g.findOrCreate(t)
	if err != nil {
		return err
	}
	k := len(g.spec.aggs)
	states := g.states[gi*k : (gi+1)*k]
	for i := range states {
		if err := states[i].Add(t.At(g.spec.aggs[i].Col), count); err != nil {
			return err
		}
	}
	return nil
}

// addBatch folds a batch's live rows into the table column-at-a-time: group
// keys hash incrementally off the grouping columns' vectors (hashRowOn) and
// aggregate inputs stream from the aggregated columns' vectors, so the
// per-row inner loop is a few vector indexings plus the state update — no
// tuple is materialised except the representative of a newly created group.
// Row-view batches take the tuple-wise path instead: gathering their columns
// would cost one extra pass per column with nothing downstream saved, since
// the per-row hash and state updates read the same values either way.
func (g *groupTable) addBatch(b *Batch, cc *colCache) error {
	if b.Cols == nil {
		n := b.Len()
		for i := 0; i < n; i++ {
			r := b.Row(i)
			if err := g.add(b.Tuples[r], b.Counts[r]); err != nil {
				return err
			}
		}
		return nil
	}
	cc.batch(b)
	g.keyVecs = g.keyVecs[:0]
	for _, c := range g.spec.groupCols {
		g.keyVecs = append(g.keyVecs, cc.col(c))
	}
	g.aggVecs = g.aggVecs[:0]
	for _, sp := range g.spec.aggs {
		g.aggVecs = append(g.aggVecs, cc.col(sp.Col))
	}
	k := len(g.spec.aggs)
	n := b.Len()
	for i := 0; i < n; i++ {
		r := b.Row(i)
		gi, err := g.findOrCreateRow(b, r)
		if err != nil {
			return err
		}
		states := g.states[gi*k : (gi+1)*k]
		count := b.Counts[r]
		for j := range states {
			if err := states[j].Add(g.aggVecs[j][r], count); err != nil {
				return err
			}
		}
	}
	return nil
}

// findOrCreateRow is findOrCreate for one batch row, hashing and comparing
// group-key values straight off the column vectors bound by addBatch and
// materialising the row's tuple only when it founds a new group.
func (g *groupTable) findOrCreateRow(b *Batch, r int) (int, error) {
	h := hashRowOn(g.keyVecs, r)
	head, ok := g.index[h]
	if !ok {
		head = -1
	}
outer:
	for i := head; i != -1; i = g.groups[i].next {
		rep := g.groups[i].rep
		for k, c := range g.spec.groupCols {
			if !g.keyVecs[k][r].Equal(rep.At(c)) {
				continue outer
			}
		}
		return int(i), nil
	}
	t := b.TupleAt(r)
	if g.mem != nil {
		if err := g.mem.Grow(approxTupleBytes(t) + int64(len(g.spec.aggs))*aggStateBytes); err != nil {
			return 0, err
		}
	}
	gi := len(g.groups)
	g.index[h] = int32(gi)
	g.groups = append(g.groups, groupEntry{rep: t, next: head})
	for _, sp := range g.spec.aggs {
		g.states = append(g.states, NewAggState(sp.Fn))
	}
	return gi, nil
}

// mergeFrom folds another table's partial groups into g — the global phase of
// two-phase aggregation: groups match by their grouping attributes, and
// matching groups' states combine via MergePartial.  Both tables must share
// the same spec.
func (g *groupTable) mergeFrom(o *groupTable) error {
	k := len(g.spec.aggs)
	for i := range o.groups {
		gi, err := g.findOrCreate(o.groups[i].rep)
		if err != nil {
			return err
		}
		dst := g.states[gi*k : (gi+1)*k]
		src := o.states[i*k : (i+1)*k]
		for j := range dst {
			dst[j].MergePartial(&src[j])
		}
	}
	return nil
}

// finalTuple renders one group's output tuple: the projected grouping
// attributes followed by every aggregate's final value.
func (g *groupTable) finalTuple(gi int) (tuple.Tuple, error) {
	k := len(g.spec.aggs)
	states := g.states[gi*k : (gi+1)*k]
	vals := make([]value.Value, k)
	for i := range states {
		v, err := states[i].Final()
		if err != nil {
			return tuple.Tuple{}, err
		}
		vals[i] = v
	}
	if len(g.spec.groupCols) == 0 {
		return tuple.FromSlice(vals), nil
	}
	head, err := g.groups[gi].rep.Project(g.spec.groupCols)
	if err != nil {
		return tuple.Tuple{}, err
	}
	return head.Concat(tuple.FromSlice(vals)), nil
}

// each emits one result tuple per group.  With an empty grouping list the
// aggregate is global: exactly one output tuple, even on empty input (where
// AVG/MIN/MAX surface ErrEmptyAggregate from their fresh states).
func (g *groupTable) each(emit Emit) error {
	if len(g.spec.groupCols) == 0 && len(g.groups) == 0 {
		vals := make([]value.Value, len(g.spec.aggs))
		for i, sp := range g.spec.aggs {
			st := NewAggState(sp.Fn)
			v, err := st.Final()
			if err != nil {
				return err
			}
			vals[i] = v
		}
		return emit(tuple.FromSlice(vals), 1)
	}
	for i := range g.groups {
		t, err := g.finalTuple(i)
		if err != nil {
			return err
		}
		if err := emit(t, 1); err != nil {
			return err
		}
	}
	return nil
}

// TransitiveClosure computes the smallest transitively closed relation
// containing δE via semi-naive fixpoint iteration.  The result is
// duplicate-free (closure is a set-level notion; Section 5 of the paper).
func TransitiveClosure(in *multiset.Relation) *multiset.Relation {
	closure := multiset.Unique(in)
	// Successor lists indexed by the source value's hash, with Equal collision
	// chains, for the semi-naive step.
	type succChain struct {
		src  value.Value
		dsts []value.Value
	}
	succ := make(map[uint64][]succChain)
	successors := func(v value.Value) []value.Value {
		chains := succ[v.Hash()]
		for i := range chains {
			if chains[i].src.Equal(v) {
				return chains[i].dsts
			}
		}
		return nil
	}
	closure.Each(func(t tuple.Tuple, _ uint64) bool {
		src := t.At(0)
		h := src.Hash()
		chains := succ[h]
		found := false
		for i := range chains {
			if chains[i].src.Equal(src) {
				chains[i].dsts = append(chains[i].dsts, t.At(1))
				found = true
				break
			}
		}
		if !found {
			succ[h] = append(chains, succChain{src: src, dsts: []value.Value{t.At(1)}})
		}
		return true
	})
	delta := closure.Clone()
	for !delta.IsEmpty() {
		next := multiset.New(in.Schema())
		delta.Each(func(t tuple.Tuple, _ uint64) bool {
			for _, dst := range successors(t.At(1)) {
				candidate := tuple.New(t.At(0), dst)
				if !closure.Contains(candidate) {
					next.Add(candidate, 1)
				}
			}
			return true
		})
		next.Each(func(t tuple.Tuple, _ uint64) bool {
			closure.Add(t, 1)
			return true
		})
		delta = next
	}
	return closure
}
