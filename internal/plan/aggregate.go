package plan

import (
	"errors"
	"fmt"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// ErrEmptyAggregate is returned when AVG, MIN or MAX is applied to an empty
// multi-set.  The paper defines these aggregate functions as partial
// functions, undefined on empty inputs (Definition 3.3).
var ErrEmptyAggregate = errors.New("plan: aggregate undefined on an empty multi-set")

// groupSpec is the compiled form of a groupby operator Γ_{α,f,p}.
type groupSpec struct {
	groupCols []int
	agg       algebra.Aggregate
	aggCol    int
	outSchema schema.Relation
}

// aggState incrementally computes one of the paper's aggregate functions over
// a stream of (value, multiplicity) observations.
type aggState struct {
	agg   algebra.Aggregate
	count uint64
	isum  int64
	fsum  float64
	fltIn bool
	min   value.Value
	max   value.Value
	seen  bool
}

// add folds in one distinct tuple's attribute value with its multiplicity.
func (s *aggState) add(v value.Value, count uint64) error {
	s.count += count
	switch s.agg {
	case algebra.AggCount:
		return nil
	case algebra.AggSum, algebra.AggAvg:
		switch v.Kind() {
		case value.KindInt:
			s.isum += v.Int() * int64(count)
		case value.KindFloat:
			s.fsum += v.Float() * float64(count)
			s.fltIn = true
		case value.KindNull:
			// Nulls contribute nothing to sums; CNT above still counts them.
		default:
			return fmt.Errorf("plan: %s over non-numeric value %s", s.agg, v)
		}
		return nil
	case algebra.AggMin, algebra.AggMax:
		if v.IsNull() {
			return nil
		}
		if !s.seen {
			s.min, s.max, s.seen = v, v, true
			return nil
		}
		if v.Less(s.min) {
			s.min = v
		}
		if s.max.Less(v) {
			s.max = v
		}
		return nil
	default:
		return fmt.Errorf("plan: unknown aggregate %v", s.agg)
	}
}

// result returns the aggregate's value.  AVG, MIN and MAX fail on empty
// inputs per Definition 3.3.
func (s *aggState) result() (value.Value, error) {
	switch s.agg {
	case algebra.AggCount:
		return value.NewInt(int64(s.count)), nil
	case algebra.AggSum:
		if s.fltIn {
			return value.NewFloat(s.fsum + float64(s.isum)), nil
		}
		return value.NewInt(s.isum), nil
	case algebra.AggAvg:
		if s.count == 0 {
			return value.Null, ErrEmptyAggregate
		}
		return value.NewFloat((s.fsum + float64(s.isum)) / float64(s.count)), nil
	case algebra.AggMin:
		if !s.seen {
			return value.Null, ErrEmptyAggregate
		}
		return s.min, nil
	case algebra.AggMax:
		if !s.seen {
			return value.Null, ErrEmptyAggregate
		}
		return s.max, nil
	default:
		return value.Null, fmt.Errorf("plan: unknown aggregate %v", s.agg)
	}
}

// groupTable is the grouped hash table behind the hash aggregate: groups
// keyed by tuple.HashOn over the grouping columns with positional-equality
// collision chains — the same scheme the relation representation and the
// hash join use.
type groupTable struct {
	spec   groupSpec
	groups []groupEntry
	index  map[uint64]int32
}

type groupEntry struct {
	rep   tuple.Tuple
	state aggState
	next  int32
}

func newGroupTable(spec groupSpec) *groupTable {
	return &groupTable{spec: spec, index: make(map[uint64]int32, 16)}
}

// add folds one input chunk into its group, creating the group on first
// sight.
func (g *groupTable) add(t tuple.Tuple, count uint64) error {
	h := t.HashOn(g.spec.groupCols)
	var entry *groupEntry
	head, ok := g.index[h]
	if !ok {
		head = -1
	}
	for i := head; i != -1; i = g.groups[i].next {
		if equalOn(t, g.spec.groupCols, g.groups[i].rep, g.spec.groupCols) {
			entry = &g.groups[i]
			break
		}
	}
	if entry == nil {
		g.index[h] = int32(len(g.groups))
		g.groups = append(g.groups, groupEntry{rep: t, state: aggState{agg: g.spec.agg}, next: head})
		entry = &g.groups[len(g.groups)-1]
	}
	return entry.state.add(t.At(g.spec.aggCol), count)
}

// each emits one result tuple per group.  With an empty grouping list the
// aggregate is global: exactly one output tuple, even on empty input
// (where AVG/MIN/MAX surface ErrEmptyAggregate from the state).
func (g *groupTable) each(emit Emit) error {
	if len(g.spec.groupCols) == 0 {
		st := aggState{agg: g.spec.agg}
		if len(g.groups) > 0 {
			st = g.groups[0].state
		}
		v, err := st.result()
		if err != nil {
			return err
		}
		return emit(tuple.New(v), 1)
	}
	for i := range g.groups {
		head, err := g.groups[i].rep.Project(g.spec.groupCols)
		if err != nil {
			return err
		}
		v, err := g.groups[i].state.result()
		if err != nil {
			return err
		}
		if err := emit(head.Concat(tuple.New(v)), 1); err != nil {
			return err
		}
	}
	return nil
}

// GroupBy computes Γ_{α,f,p}(E) over a materialised input relation
// (Definition 3.4).  It is shared with the reference evaluator so both
// evaluators implement the partial-function semantics identically.
func GroupBy(n algebra.GroupBy, in *multiset.Relation, outSchema schema.Relation) (*multiset.Relation, error) {
	groups := newGroupTable(groupSpec{groupCols: n.GroupCols, agg: n.Agg, aggCol: n.AggCol, outSchema: outSchema})
	var addErr error
	in.Each(func(t tuple.Tuple, count uint64) bool {
		addErr = groups.add(t, count)
		return addErr == nil
	})
	if addErr != nil {
		return nil, addErr
	}
	out := multiset.NewWithCapacity(outSchema, len(groups.groups))
	if err := groups.each(func(t tuple.Tuple, count uint64) error {
		out.Add(t, count)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// TransitiveClosure computes the smallest transitively closed relation
// containing δE via semi-naive fixpoint iteration.  The result is
// duplicate-free (closure is a set-level notion; Section 5 of the paper).
func TransitiveClosure(in *multiset.Relation) *multiset.Relation {
	closure := multiset.Unique(in)
	// Successor lists indexed by the source value's hash, with Equal collision
	// chains, for the semi-naive step.
	type succChain struct {
		src  value.Value
		dsts []value.Value
	}
	succ := make(map[uint64][]succChain)
	successors := func(v value.Value) []value.Value {
		chains := succ[v.Hash()]
		for i := range chains {
			if chains[i].src.Equal(v) {
				return chains[i].dsts
			}
		}
		return nil
	}
	closure.Each(func(t tuple.Tuple, _ uint64) bool {
		src := t.At(0)
		h := src.Hash()
		chains := succ[h]
		found := false
		for i := range chains {
			if chains[i].src.Equal(src) {
				chains[i].dsts = append(chains[i].dsts, t.At(1))
				found = true
				break
			}
		}
		if !found {
			succ[h] = append(chains, succChain{src: src, dsts: []value.Value{t.At(1)}})
		}
		return true
	})
	delta := closure.Clone()
	for !delta.IsEmpty() {
		next := multiset.New(in.Schema())
		delta.Each(func(t tuple.Tuple, _ uint64) bool {
			for _, dst := range successors(t.At(1)) {
				candidate := tuple.New(t.At(0), dst)
				if !closure.Contains(candidate) {
					next.Add(candidate, 1)
				}
			}
			return true
		})
		next.Each(func(t tuple.Tuple, _ uint64) bool {
			closure.Add(t, 1)
			return true
		})
		delta = next
	}
	return closure
}
