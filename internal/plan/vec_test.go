package plan

import (
	"testing"

	"mra/internal/scalar"
	"mra/internal/tuple"
	"mra/internal/value"
)

// colBatch builds a columnar-only test batch from rows of int values and their
// multiplicities.
func colBatch(rows [][]int64, counts []uint64) *Batch {
	if len(rows) == 0 {
		return &Batch{Counts: counts}
	}
	cols := make([]value.Vec, len(rows[0]))
	for c := range cols {
		for _, row := range rows {
			cols[c] = append(cols[c], value.NewInt(row[c]))
		}
	}
	return &Batch{Counts: counts, Cols: cols}
}

// TestBatchSelectionViews pins the selection-vector view of Batch: Len, Row,
// Total and forEach must cover exactly the live rows — all rows under a nil
// selection, none under an empty one, and the listed physical rows otherwise —
// and TupleAt must materialise columnar rows correctly.
func TestBatchSelectionViews(t *testing.T) {
	b := colBatch([][]int64{{1, 10}, {2, 20}, {3, 30}, {4, 40}}, []uint64{1, 2, 3, 4})

	collect := func(b *Batch) (tuples []tuple.Tuple, counts []uint64) {
		if err := b.forEach(func(t tuple.Tuple, n uint64) error {
			tuples = append(tuples, t)
			counts = append(counts, n)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return
	}

	// Nil selection: every physical row is live.
	if b.Len() != 4 || b.Total() != 10 {
		t.Fatalf("full batch: Len=%d Total=%d, want 4, 10", b.Len(), b.Total())
	}
	tuples, counts := collect(b)
	if len(tuples) != 4 || !tuples[2].Equal(tuple.Ints(3, 30)) || counts[3] != 4 {
		t.Fatalf("full batch forEach: tuples=%v counts=%v", tuples, counts)
	}

	// Empty selection: no live rows, zero total, forEach never fires.
	b.Sel = []int32{}
	if b.Len() != 0 || b.Total() != 0 {
		t.Fatalf("empty selection: Len=%d Total=%d, want 0, 0", b.Len(), b.Total())
	}
	if tuples, _ := collect(b); len(tuples) != 0 {
		t.Fatalf("empty selection forEach visited %d rows", len(tuples))
	}

	// Partial selection: only the listed physical rows, in order.
	b.Sel = []int32{1, 3}
	if b.Len() != 2 || b.Total() != 6 {
		t.Fatalf("partial selection: Len=%d Total=%d, want 2, 6", b.Len(), b.Total())
	}
	if got := b.Row(1); got != 3 {
		t.Fatalf("Row(1) = %d, want physical row 3", got)
	}
	tuples, counts = collect(b)
	if len(tuples) != 2 || !tuples[0].Equal(tuple.Ints(2, 20)) ||
		!tuples[1].Equal(tuple.Ints(4, 40)) || counts[0] != 2 || counts[1] != 4 {
		t.Fatalf("partial selection forEach: tuples=%v counts=%v", tuples, counts)
	}
}

// TestBatchRepeatedChunks pins the multi-chunk rule under selections: the same
// tuple may occupy several live physical rows of one batch, and consumers see
// one chunk per live row — multiplicities summed by the consumer, never
// collapsed by the batch.
func TestBatchRepeatedChunks(t *testing.T) {
	b := colBatch([][]int64{{7, 7}, {7, 7}, {1, 1}, {7, 7}}, []uint64{2, 3, 1, 5})
	b.Sel = []int32{0, 1, 3} // three live chunks of the same tuple

	var chunks int
	var total uint64
	if err := b.forEach(func(tp tuple.Tuple, n uint64) error {
		if !tp.Equal(tuple.Ints(7, 7)) {
			t.Fatalf("unexpected live tuple %s", tp)
		}
		chunks++
		total += n
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if chunks != 3 || total != 10 {
		t.Fatalf("repeated chunks: %d chunks totalling %d, want 3 totalling 10", chunks, total)
	}
	if b.Total() != 10 {
		t.Fatalf("Total = %d, want 10", b.Total())
	}
}

// TestCompileVecPred pins the kernel compiler's coverage: conjunctions of
// attribute/constant and attribute/attribute comparisons compile (with the
// constant-on-the-left form flipped), the always-true predicate compiles to no
// kernels, and any other shape is reported uncompilable so the filter falls
// back to row-wise evaluation.
func TestCompileVecPred(t *testing.T) {
	attr, c3 := scalar.NewAttr(0), scalar.NewConst(value.NewInt(3))

	if ks, ok := compileVecPred(scalar.True{}); !ok || len(ks) != 0 {
		t.Errorf("True: kernels=%v ok=%v, want empty pass-through", ks, ok)
	}
	conj := scalar.NewAnd(
		scalar.NewCompare(value.CmpGe, attr, c3),
		scalar.Eq(0, 1),
		scalar.NewCompare(value.CmpLt, c3, scalar.NewAttr(1)), // flips to %2 > 3
	)
	ks, ok := compileVecPred(conj)
	if !ok || len(ks) != 3 {
		t.Fatalf("conjunction: kernels=%v ok=%v, want 3 kernels", ks, ok)
	}
	if ks[2].op != value.CmpGt || ks[2].lcol != 1 || ks[2].rcol != -1 {
		t.Errorf("const-left compare compiled to %+v, want flipped %%2 > 3", ks[2])
	}
	uncompilable := []scalar.Predicate{
		scalar.Or{Left: scalar.Eq(0, 1), Right: scalar.Eq(0, 1)},
		scalar.Not{Operand: scalar.Eq(0, 1)},
		scalar.NewCompare(value.CmpLe,
			scalar.NewArith(value.OpAdd, attr, scalar.NewAttr(1)), c3),
	}
	for _, p := range uncompilable {
		if _, ok := compileVecPred(p); ok {
			t.Errorf("%s: compiled, want row-wise fallback", p)
		}
	}
}

// TestVecCmpApply pins the kernel loop over selections: a nil input selection
// scans all physical rows, a refined input only its listed rows, and a kernel
// that kills every row yields an empty (non-nil semantics handled by the
// caller) selection.
func TestVecCmpApply(t *testing.T) {
	b := colBatch([][]int64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}, []uint64{1, 1, 1, 1})
	var cc colCache
	cc.batch(b)

	ge2 := vecCmp{op: value.CmpGe, lcol: 0, rcol: -1, rval: value.NewInt(2)}
	sel, err := ge2.apply(&cc, nil, b.rows(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 || sel[0] != 1 || sel[2] != 3 {
		t.Fatalf("ge2 over all rows: sel=%v, want [1 2 3]", sel)
	}

	lt4 := vecCmp{op: value.CmpLt, lcol: 0, rcol: -1, rval: value.NewInt(4)}
	sel, err = lt4.apply(&cc, sel, b.rows(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 2 {
		t.Fatalf("lt4 over refined selection: sel=%v, want [1 2]", sel)
	}

	none := vecCmp{op: value.CmpGt, lcol: 1, rcol: -1, rval: value.NewInt(5)}
	sel, err = none.apply(&cc, sel, b.rows(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 0 {
		t.Fatalf("killing kernel left sel=%v, want empty", sel)
	}

	eq := vecCmp{op: value.CmpEq, lcol: 0, rcol: 1}
	b2 := colBatch([][]int64{{5, 5}, {2, 5}, {5, 5}}, []uint64{1, 1, 1})
	cc.batch(b2)
	sel, err = eq.apply(&cc, nil, b2.rows(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 2 {
		t.Fatalf("attr-attr kernel: sel=%v, want [0 2]", sel)
	}
}
