package plan

import (
	"strings"
	"testing"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/stats"
	"mra/internal/tuple"
	"mra/internal/value"
)

// analyzedCards is a test double wiring ANALYZE-grade statistics into the
// planner: cardinalities, distinct counts and per-column summaries all come
// from the actual relations.
type analyzedCards struct {
	src    mapSource
	tables map[string]*stats.Table
}

func analyze(src mapSource) analyzedCards {
	tables := make(map[string]*stats.Table, len(src))
	for name, r := range src {
		tables[name] = stats.Analyze(r, 0)
	}
	return analyzedCards{src: src, tables: tables}
}

func (a analyzedCards) RelationCardinality(name string) (uint64, bool) {
	r, ok := a.src[name]
	if !ok {
		return 0, false
	}
	return r.Cardinality(), true
}

func (a analyzedCards) RelationDistinctCount(name string) (int, bool) {
	r, ok := a.src[name]
	if !ok {
		return 0, false
	}
	return r.DistinctCount(), true
}

func (a analyzedCards) TableStats(name string) (*stats.Table, bool) {
	t, ok := a.tables[name]
	return t, ok
}

// groupedRelation builds rows rows of (i % keyRange, i).
func groupedRelation(name string, rows, keyRange int) *multiset.Relation {
	r := multiset.New(schema.NewRelation(name,
		schema.Attribute{Name: "key", Type: value.KindInt},
		schema.Attribute{Name: "payload", Type: value.KindInt}))
	for i := 0; i < rows; i++ {
		r.Add(tuple.Ints(int64(i%keyRange), int64(i)), 1)
	}
	return r
}

// TestTwoPhaseChoiceFromGroupingNDV pins the E12 phase decision to the
// per-grouping-column NDV of analyzed statistics: low-cardinality and
// moderate (zipf-range) groupings keep the two-phase partial/merge shape,
// while a high-cardinality grouping — where per-worker partial tables would
// approach the input size — falls back to the one-phase key-partitioned
// shape.  Without statistics the flat groupReduction estimate kept high-card
// groupings two-phase, serialising the merge on ~10000 partial groups per
// worker.
func TestTwoPhaseChoiceFromGroupingNDV(t *testing.T) {
	cases := []struct {
		name     string
		keyRange int
		twoPhase bool
	}{
		{"low-card", 16, true},
		{"zipf-range", 100, true},
		{"high-card", 10000, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := mapSource{"fact": groupedRelation("fact", 20000, tc.keyRange)}
			expr := algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("fact"))
			p, err := (&Planner{Cards: analyze(src), Workers: 4}).Plan(expr, catalogOf(src))
			if err != nil {
				t.Fatal(err)
			}
			rendering := p.String()
			if got := strings.Contains(rendering, "partial"); got != tc.twoPhase {
				t.Errorf("keyRange=%d: two-phase = %v, want %v:\n%s",
					tc.keyRange, got, tc.twoPhase, rendering)
			}
			// Either shape computes the exact grouped sums.
			out, err := p.Execute(src)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := int(out.Cardinality()), min(tc.keyRange, 20000); got != want {
				t.Errorf("keyRange=%d: %d groups, want %d", tc.keyRange, got, want)
			}
		})
	}
}

// TestGroupEstimateFromStats checks the group-by output estimate itself: with
// statistics the planner estimates the group count from the grouping-column
// NDV instead of the flat 20% reduction.
func TestGroupEstimateFromStats(t *testing.T) {
	src := mapSource{"fact": groupedRelation("fact", 20000, 50)}
	expr := algebra.NewGroupBy([]int{0}, algebra.AggSum, 1, algebra.NewRel("fact"))
	p, err := (&Planner{Cards: analyze(src)}).Plan(expr, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	est := p.Root.Estimate()
	if est < 40 || est > 60 {
		t.Errorf("group estimate = %v, want ~50 (flat guess would be 4000)", est)
	}
}
