package plan

import (
	"strings"
	"testing"

	"mra/internal/algebra"
	"mra/internal/scalar"
	"mra/internal/tuple"
)

// starSource builds a star schema written worst-first: three 50-row
// dimensions and a 5000-row fact table keyed on each dimension.
func starSource() mapSource {
	src := make(mapSource, 4)
	for _, d := range []string{"d1", "d2", "d3"} {
		src[d] = groupedRelation(d, 50, 50)
	}
	fact := groupedRelation("fact", 0, 1)
	for i := 0; i < 5000; i++ {
		fact.Add(tuple.Ints(int64(i%50), int64(i)), 1)
	}
	src["fact"] = fact
	return src
}

// starWrittenWorst is the star query written in its worst order: the three
// dimensions cross-multiplied first, the fact table joined last.
func starWrittenWorst() algebra.Expr {
	return algebra.NewJoin(
		scalar.NewAnd(scalar.Eq(0, 6), scalar.NewAnd(scalar.Eq(2, 6), scalar.Eq(4, 6))),
		algebra.NewProduct(algebra.NewProduct(algebra.NewRel("d1"), algebra.NewRel("d2")), algebra.NewRel("d3")),
		algebra.NewRel("fact"))
}

// TestEnumeratorReplacesWrittenOrder checks that the DP enumerator rewrites
// the worst-first star query into a fact-first join tree — no cross products
// — while a NoJoinReorder planner keeps the written shape.
func TestEnumeratorReplacesWrittenOrder(t *testing.T) {
	src := starSource()
	p, err := (&Planner{Cards: analyze(src)}).Plan(starWrittenWorst(), catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	rendering := p.String()
	// The written order's 50×50×50 dimension cross product must be gone; the
	// DP may still keep one tiny two-dimension cross product (2500 rows)
	// where it genuinely undercuts a 5000-row join intermediate, so only the
	// full triple product is ruled out.
	if strings.Count(rendering, "NestedLoopJoin") > 1 {
		t.Errorf("enumerated plan kept the cascaded cross products:\n%s", rendering)
	}
	if got := strings.Count(rendering, "HashJoin"); got < 2 {
		t.Errorf("enumerated plan has %d hash joins, want at least 2:\n%s", got, rendering)
	}
	// The written column order is restored above the reordered joins.
	if !strings.HasPrefix(rendering, "Project ") {
		t.Errorf("reordered plan must restore written column order with a projection:\n%s", rendering)
	}

	baseline, err := (&Planner{Cards: analyze(src), NoJoinReorder: true}).Plan(starWrittenWorst(), catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(baseline.String(), "NestedLoopJoin") {
		t.Errorf("NoJoinReorder baseline lost the written cross-product shape:\n%s", baseline)
	}

	// Both plans compute the same bag.
	want, err := baseline.Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("enumerated plan changed the result bag")
	}

	// And the enumerated plan's peak intermediate result is far smaller.
	var enumSt, baseSt Stats
	if _, err := p.ExecuteStats(src, &enumSt); err != nil {
		t.Fatal(err)
	}
	if _, err := baseline.ExecuteStats(src, &baseSt); err != nil {
		t.Fatal(err)
	}
	if enumSt.PeakRelationTuples*10 > baseSt.PeakRelationTuples {
		t.Errorf("enumerated peak %d not an order below written-order peak %d",
			enumSt.PeakRelationTuples, baseSt.PeakRelationTuples)
	}
}

// TestEnumeratorSkipsSmallAndHugeQueries pins the enumerator's bail-outs:
// two-relation joins keep the direct path, and the planner still compiles
// queries past the 12-leaf DP cap by falling back to the written order.
func TestEnumeratorSkipsSmallAndHugeQueries(t *testing.T) {
	src := starSource()
	two := algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("d1"), algebra.NewRel("d2"))
	p, err := (&Planner{Cards: analyze(src)}).Plan(two, catalogOf(src))
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(p.String(), "Project ") {
		t.Errorf("two-relation join must not be reordered:\n%s", p)
	}

	wide := algebra.Expr(algebra.NewRel("d1"))
	arity := 2
	for i := 0; i < 13; i++ {
		wide = algebra.NewJoin(scalar.Eq(0, arity), wide, algebra.NewRel("d2"))
		arity += 2
	}
	if _, err := (&Planner{Cards: analyze(src)}).Plan(wide, catalogOf(src)); err != nil {
		t.Fatalf("planner must fall back past the DP leaf cap: %v", err)
	}
}
