package plan

import (
	"mra/internal/tuple"
)

// This file implements the vectorised half of the streaming contract: the
// Batch chunk vector, the EmitBatch consumer side, and the adapters that let
// batch-native and chunk-at-a-time operators compose freely.  Batching exists
// purely to amortise call overhead — a pipeline of batch-native operators
// crosses operator boundaries once per batch instead of once per tuple — and
// never changes the multi-set a stream denotes.

// DefaultBatchSize is the number of chunks per emitted batch when the planner
// does not size batches itself.  Large enough that per-batch call overhead
// vanishes against per-tuple work, small enough that a batch of tuples stays
// cache-resident.
const DefaultBatchSize = 128

// Batch is one vector of stream chunks: tuple Tuples[i] occurs Counts[i] more
// times, for every i.  A batch denotes the multi-set summing its chunks, and
// like the scalar Emit contract the same tuple may appear in several chunks
// (even within one batch); consumers add multiplicities.
//
// Ownership: a Batch handed to an EmitBatch is only valid for the duration of
// the call — producers reuse the backing slices for the next batch.  The
// tuples themselves are immutable and may be retained; the slices may not.
type Batch struct {
	// Tuples holds the chunk tuples.
	Tuples []tuple.Tuple
	// Counts holds the chunk multiplicities, parallel to Tuples.
	Counts []uint64
}

// Len returns the number of chunks in the batch.
func (b *Batch) Len() int { return len(b.Tuples) }

// Total returns the number of tuple occurrences the batch denotes: the sum of
// its counts.
func (b *Batch) Total() uint64 {
	var s uint64
	for _, c := range b.Counts {
		s += c
	}
	return s
}

// reset empties the batch, keeping the backing capacity for reuse.
func (b *Batch) reset() {
	b.Tuples = b.Tuples[:0]
	b.Counts = b.Counts[:0]
}

// push appends one chunk.
func (b *Batch) push(t tuple.Tuple, n uint64) {
	b.Tuples = append(b.Tuples, t)
	b.Counts = append(b.Counts, n)
}

// EmitBatch receives one batch of an operator's output stream.  Returning an
// error aborts the stream.  The batch is owned by the producer and must not be
// retained (see Batch).
type EmitBatch func(b *Batch) error

// batchRunner is implemented by operators with a native vectorised execution
// path.  Operators without one still participate in batched pipelines through
// the fallback shim in execCtx.runBatch, which buffers their chunk-at-a-time
// output into batches.
type batchRunner interface {
	Node
	// runBatch streams the operator's output into emit, batch-wise.
	runBatch(ctx *execCtx, emit EmitBatch) error
}

// batchWriter accumulates chunks into a reusable batch and flushes it to emit
// whenever it reaches the configured size.  Producers must call flush once at
// end of stream.
type batchWriter struct {
	out  Batch
	size int
	emit EmitBatch
}

// newBatchWriter returns a writer emitting batches of the given size.
func newBatchWriter(size int, emit EmitBatch) *batchWriter {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &batchWriter{
		out:  Batch{Tuples: make([]tuple.Tuple, 0, size), Counts: make([]uint64, 0, size)},
		size: size,
		emit: emit,
	}
}

// push appends one chunk, flushing the batch downstream when full.
func (w *batchWriter) push(t tuple.Tuple, n uint64) error {
	w.out.Tuples = append(w.out.Tuples, t)
	w.out.Counts = append(w.out.Counts, n)
	if len(w.out.Tuples) >= w.size {
		return w.flush()
	}
	return nil
}

// flush emits the buffered batch, if any, and resets the buffer.
func (w *batchWriter) flush() error {
	if len(w.out.Tuples) == 0 {
		return nil
	}
	err := w.emit(&w.out)
	w.out.reset()
	return err
}

// mapped resizes a reusable output batch to mirror the chunk structure of an
// input batch, sharing the input's Counts slice — safe under the no-retention
// rule of the EmitBatch contract.  Per-tuple transforms (projections) fill
// out.Tuples in their own tight loop, so a mapped boundary costs one tuple
// store per chunk and nothing else.
func mapped(out *Batch, b *Batch) {
	if cap(out.Tuples) < len(b.Tuples) {
		out.Tuples = make([]tuple.Tuple, len(b.Tuples))
	}
	out.Tuples = out.Tuples[:len(b.Tuples)]
	out.Counts = b.Counts
}

// unbatched adapts a batch-native operator to the chunk-at-a-time Emit
// contract: every chunk of every batch is forwarded individually.  It backs
// the run methods of batch-native operators, so the scalar contract stays
// universally available.
func unbatched(ctx *execCtx, n batchRunner, emit Emit) error {
	return n.runBatch(ctx, func(b *Batch) error {
		for i := range b.Tuples {
			if err := emit(b.Tuples[i], b.Counts[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// shimBatches adapts a chunk-at-a-time operator to the EmitBatch contract by
// buffering its output: the per-operator fallback shim that keeps operators
// without a native batch path composable inside vectorised pipelines.
func shimBatches(ctx *execCtx, n Node, emit EmitBatch) error {
	w := newBatchWriter(ctx.batchCap(), emit)
	if err := n.run(ctx, w.push); err != nil {
		return err
	}
	return w.flush()
}
