package plan

import (
	"mra/internal/tuple"
	"mra/internal/value"
)

// This file implements the vectorised half of the streaming contract: the
// columnar Batch with its selection vector, the EmitBatch consumer side, and
// the adapters that let batch-native and chunk-at-a-time operators compose
// freely.  Batching exists to amortise call overhead — a pipeline of
// batch-native operators crosses operator boundaries once per batch instead
// of once per tuple — and, in columnar form, to let the hot operator loops
// (filter, project, join probe, aggregate update) run column-at-a-time over
// contiguous value vectors.  Neither changes the multi-set a stream denotes.

// DefaultBatchSize is the number of chunks per emitted batch when the planner
// does not size batches itself.  Large enough that per-batch call overhead
// vanishes against per-tuple work, small enough that a batch's column vectors
// stay cache-resident.
const DefaultBatchSize = 128

// Batch is one vector of stream chunks in dual row/column representation.
//
// The batch holds rows physical rows.  Row r carries multiplicity Counts[r],
// and its attribute values are readable through either view: row-major as
// Tuples[r] (when the producer emitted tuples — scans hand out arena tuples
// for free) or column-major as Cols[c][r] (when the producer emitted column
// vectors — projections share input columns without copying).  At least one
// view is always populated; Counts always is.
//
// Sel is the selection vector: the ascending physical row indices that are
// live.  A nil Sel means every row is live.  Filters refine Sel instead of
// compacting the batch, so a selective predicate costs index writes, never
// value moves; every consumer iterates live rows only (b.Row maps a live
// position to its physical row).  Dead rows may hold arbitrary values and
// must never be read or evaluated — error semantics are defined over live
// rows only.
//
// A batch denotes the multi-set summing its live chunks, and like the scalar
// Emit contract the same tuple may appear in several chunks (even within one
// batch); consumers add multiplicities.
//
// Ownership: a Batch handed to an EmitBatch is only valid for the duration of
// the call — producers reuse the backing slices (Tuples, Counts, Cols, Sel)
// for the next batch.  The tuples and values themselves are immutable and may
// be retained; the slices may not.
type Batch struct {
	// Tuples is the row-major view; nil when the batch is columnar-only.
	Tuples []tuple.Tuple
	// Counts holds the physical rows' multiplicities; always populated.
	Counts []uint64
	// Cols is the column-major view, one vector per attribute; nil when the
	// batch is row-only.
	Cols []value.Vec
	// Sel lists the live physical rows in ascending order; nil means all rows
	// are live.
	Sel []int32
}

// rows returns the number of physical rows.
func (b *Batch) rows() int { return len(b.Counts) }

// Len returns the number of live chunks in the batch.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return len(b.Counts)
}

// Row maps live position i to its physical row index.
func (b *Batch) Row(i int) int {
	if b.Sel != nil {
		return int(b.Sel[i])
	}
	return i
}

// Total returns the number of tuple occurrences the batch denotes: the sum of
// its live counts.
func (b *Batch) Total() uint64 {
	var s uint64
	if b.Sel == nil {
		for _, c := range b.Counts {
			s += c
		}
		return s
	}
	for _, r := range b.Sel {
		s += b.Counts[r]
	}
	return s
}

// arity returns the batch's attribute count, from whichever view is present.
func (b *Batch) arity() int {
	if b.Cols != nil {
		return len(b.Cols)
	}
	if len(b.Tuples) > 0 {
		return b.Tuples[0].Arity()
	}
	return 0
}

// TupleAt returns the tuple of physical row r, constructing it from the
// column view when the batch is columnar-only.  Constructing allocates — it
// is the materialise-to-tuples boundary consumers cross only for live rows
// they actually retain or emit.
func (b *Batch) TupleAt(r int) tuple.Tuple {
	if b.Tuples != nil {
		return b.Tuples[r]
	}
	vals := make([]value.Value, len(b.Cols))
	for c := range b.Cols {
		vals[c] = b.Cols[c][r]
	}
	return tuple.FromSlice(vals)
}

// forEach iterates the live rows as (tuple, count) chunks — the scalar edge
// of the batch, used by the unbatched adapter and by chunk-at-a-time
// consumers at the materialisation boundary.
func (b *Batch) forEach(fn func(t tuple.Tuple, n uint64) error) error {
	if b.Sel == nil {
		for r := range b.Counts {
			if err := fn(b.TupleAt(r), b.Counts[r]); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range b.Sel {
		if err := fn(b.TupleAt(int(r)), b.Counts[r]); err != nil {
			return err
		}
	}
	return nil
}

// reset empties the batch's row view, keeping the backing capacity for reuse.
func (b *Batch) reset() {
	b.Tuples = b.Tuples[:0]
	b.Counts = b.Counts[:0]
	b.Cols = nil
	b.Sel = nil
}

// push appends one live row-view chunk.
func (b *Batch) push(t tuple.Tuple, n uint64) {
	b.Tuples = append(b.Tuples, t)
	b.Counts = append(b.Counts, n)
}

// EmitBatch receives one batch of an operator's output stream.  Returning an
// error aborts the stream.  The batch is owned by the producer and must not be
// retained (see Batch).
type EmitBatch func(b *Batch) error

// batchRunner is implemented by operators with a native vectorised execution
// path.  Operators without one still participate in batched pipelines through
// the fallback shim in execCtx.runBatch, which buffers their chunk-at-a-time
// output into batches.
type batchRunner interface {
	Node
	// runBatch streams the operator's output into emit, batch-wise.
	runBatch(ctx *execCtx, emit EmitBatch) error
}

// batchWriter accumulates chunks into a reusable row-view batch and flushes it
// to emit whenever it reaches the configured size.  Producers must call flush
// once at end of stream.
type batchWriter struct {
	out  Batch
	size int
	emit EmitBatch
}

// newBatchWriter returns a writer emitting batches of the given size.
func newBatchWriter(size int, emit EmitBatch) *batchWriter {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &batchWriter{
		out:  Batch{Tuples: make([]tuple.Tuple, 0, size), Counts: make([]uint64, 0, size)},
		size: size,
		emit: emit,
	}
}

// push appends one chunk, flushing the batch downstream when full.
func (w *batchWriter) push(t tuple.Tuple, n uint64) error {
	w.out.Tuples = append(w.out.Tuples, t)
	w.out.Counts = append(w.out.Counts, n)
	if len(w.out.Tuples) >= w.size {
		return w.flush()
	}
	return nil
}

// flush emits the buffered batch, if any, and resets the buffer.
func (w *batchWriter) flush() error {
	if len(w.out.Tuples) == 0 {
		return nil
	}
	err := w.emit(&w.out)
	w.out.reset()
	return err
}

// colCache is a consumer-owned column gather cache: one reusable vector per
// attribute of the batch it is currently bound to (batch binds it; col reads
// it).  col returns the bound batch's column c, sharing the producer's vector
// when the batch is columnar and gathering from the row view (tuple.Column,
// one contiguous pass, at most once per batch and column) otherwise.
// Gathered vectors are valid until the next batch, exactly like the batch
// itself.  Operators allocate a colCache per runBatch call — never on the
// node, which is shared across gang workers.
type colCache struct {
	b    *Batch
	bufs []value.Vec
	have []bool
}

// batch binds the cache to the next batch, invalidating gathered columns.
func (cc *colCache) batch(b *Batch) {
	cc.b = b
	for i := range cc.have {
		cc.have[i] = false
	}
}

// col returns column c of the bound batch (see colCache).
func (cc *colCache) col(c int) value.Vec {
	if cc.b.Cols != nil {
		return cc.b.Cols[c]
	}
	for len(cc.have) <= c {
		cc.bufs = append(cc.bufs, nil)
		cc.have = append(cc.have, false)
	}
	if !cc.have[c] {
		cc.bufs[c] = tuple.Column(cc.b.Tuples, c, cc.bufs[c])
		cc.have[c] = true
	}
	return cc.bufs[c]
}

// unbatched adapts a batch-native operator to the chunk-at-a-time Emit
// contract: every live chunk of every batch is forwarded individually.  It
// backs the run methods of batch-native operators, so the scalar contract
// stays universally available.
func unbatched(ctx *execCtx, n batchRunner, emit Emit) error {
	return n.runBatch(ctx, func(b *Batch) error {
		return b.forEach(emit)
	})
}

// shimBatches adapts a chunk-at-a-time operator to the EmitBatch contract by
// buffering its output: the per-operator fallback shim that keeps operators
// without a native batch path composable inside vectorised pipelines.
func shimBatches(ctx *execCtx, n Node, emit EmitBatch) error {
	w := newBatchWriter(ctx.batchCap(), emit)
	if err := n.run(ctx, w.push); err != nil {
		return err
	}
	return w.flush()
}
