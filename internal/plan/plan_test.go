package plan

import (
	"strings"
	"testing"

	"mra/internal/algebra"
	"mra/internal/multiset"
	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// mapSource is a test double for the execution source.
type mapSource map[string]*multiset.Relation

func (m mapSource) Relation(name string) (*multiset.Relation, bool) {
	r, ok := m[name]
	return r, ok
}

// catalogOf derives a catalog from the source's relation schemas.
func catalogOf(src mapSource) algebra.Catalog {
	cat := make(algebra.MapCatalog, len(src))
	for k, r := range src {
		cat[k] = r.Schema()
	}
	return cat
}

// cardsOf derives real cardinalities from the source.
func cardsOf(src mapSource) CardinalitySource {
	cards := make(MapCardinalities, len(src))
	for k, r := range src {
		cards[k] = r.Cardinality()
	}
	return cards
}

// testSource builds fact(key, payload) with n tuples and dim(key, attr) with
// n/10 tuples.
func testSource(n int) mapSource {
	fact := multiset.New(schema.NewRelation("fact",
		schema.Attribute{Name: "key", Type: value.KindInt},
		schema.Attribute{Name: "payload", Type: value.KindInt}))
	dim := multiset.New(schema.NewRelation("dim",
		schema.Attribute{Name: "key", Type: value.KindInt},
		schema.Attribute{Name: "attr", Type: value.KindInt}))
	for i := 0; i < n; i++ {
		fact.Add(tuple.Ints(int64(i%(n/10)), int64(i)), 1)
	}
	for i := 0; i < n/10; i++ {
		dim.Add(tuple.Ints(int64(i), int64(i*100)), 1)
	}
	return mapSource{"fact": fact, "dim": dim}
}

func mustPlan(t *testing.T, e algebra.Expr, src mapSource) *Plan {
	t.Helper()
	p, err := NewPlanner(cardsOf(src)).Plan(e, catalogOf(src))
	if err != nil {
		t.Fatalf("plan %s: %v", e, err)
	}
	return p
}

func TestEquiColsExtraction(t *testing.T) {
	// %2 = %4 with left arity 3: join columns (1) and (0).
	l, r, resid := equiCols(scalar.Eq(1, 3), 3)
	if len(l) != 1 || l[0] != 1 || len(r) != 1 || r[0] != 0 || len(resid) != 0 {
		t.Errorf("equiCols = %v %v %v", l, r, resid)
	}
	// Reversed operand order still detected.
	l, r, resid = equiCols(scalar.Eq(3, 1), 3)
	if len(l) != 1 || l[0] != 1 || r[0] != 0 || len(resid) != 0 {
		t.Errorf("reversed equiCols = %v %v %v", l, r, resid)
	}
	// Same-side equality stays residual.
	l, r, resid = equiCols(scalar.Eq(0, 1), 3)
	if len(l) != 0 || len(resid) != 1 {
		t.Errorf("same-side equality: %v %v %v", l, r, resid)
	}
	// Non-equality and non-attribute comparisons stay residual.
	mixed := scalar.NewAnd(
		scalar.Eq(0, 4),
		scalar.NewCompare(value.CmpGt, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(5))),
		scalar.NewCompare(value.CmpEq, scalar.NewAttr(1), scalar.NewConst(value.NewString("x"))),
	)
	l, r, resid = equiCols(mixed, 3)
	if len(l) != 1 || len(resid) != 2 {
		t.Errorf("mixed condition: %v %v %v", l, r, resid)
	}
}

// TestPlannerJoinStrategy checks the physical decisions: equi-joins hash with
// the smaller side as build, non-equi joins nest loops with the smaller side
// as inner, and σ over × folds into the join.
func TestPlannerJoinStrategy(t *testing.T) {
	src := testSource(1000)

	join := algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim"))
	hj, ok := mustPlan(t, join, src).Root.(*hashJoinNode)
	if !ok {
		t.Fatalf("equi join must compile to a hash join, got %T", mustPlan(t, join, src).Root)
	}
	if hj.buildLeft {
		t.Error("build side must be the smaller operand (dim, the right side)")
	}

	// Flipped operand order flips the build side; the output schema keeps the
	// operand order.
	flipped := algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("dim"), algebra.NewRel("fact"))
	hj2 := mustPlan(t, flipped, src).Root.(*hashJoinNode)
	if !hj2.buildLeft {
		t.Error("build side must follow the smaller operand to the left")
	}

	// σ over a product is a join in disguise.
	sigma := algebra.NewSelect(scalar.Eq(0, 2),
		algebra.NewProduct(algebra.NewRel("fact"), algebra.NewRel("dim")))
	if _, ok := mustPlan(t, sigma, src).Root.(*hashJoinNode); !ok {
		t.Error("σ(E1 × E2) with an equality conjunct must compile to a hash join")
	}

	// σ over a join folds the outer condition into the join's residual.
	layered := algebra.NewSelect(
		scalar.NewCompare(value.CmpGt, scalar.NewAttr(1), scalar.NewConst(value.NewInt(10))),
		join)
	hj3, ok := mustPlan(t, layered, src).Root.(*hashJoinNode)
	if !ok {
		t.Fatal("σ above a join must fold into the join")
	}
	if hj3.residual == nil {
		t.Error("non-hashable conjunct must survive as the join residual")
	}

	// A non-equi join nests loops, materialising the smaller side.
	theta := algebra.NewJoin(
		scalar.NewCompare(value.CmpLt, scalar.NewAttr(1), scalar.NewAttr(3)),
		algebra.NewRel("fact"), algebra.NewRel("dim"))
	nl, ok := mustPlan(t, theta, src).Root.(*nestedLoopNode)
	if !ok {
		t.Fatal("non-equi join must compile to nested loops")
	}
	if !nl.innerRight {
		t.Error("nested-loop inner must be the smaller operand")
	}

	// A bare product is a cross nested loop.
	prod := algebra.NewProduct(algebra.NewRel("fact"), algebra.NewRel("dim"))
	pn, ok := mustPlan(t, prod, src).Root.(*nestedLoopNode)
	if !ok || pn.cond != nil {
		t.Errorf("product must compile to a cross nested loop, got %T", mustPlan(t, prod, src).Root)
	}
}

// TestPipelineDoesNotMaterialise asserts the acceptance criterion of the
// planner split: σ/π/extπ cascades above a scan or join stream, holding no
// operator-internal state.
func TestPipelineDoesNotMaterialise(t *testing.T) {
	src := testSource(100)
	pred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(0), scalar.NewConst(value.NewInt(2)))
	cascade := algebra.NewProject([]int{1},
		algebra.NewSelect(pred,
			algebra.NewExtProject([]scalar.Expr{scalar.NewAttr(0), scalar.NewAttr(1)}, nil,
				algebra.NewRel("fact"))))
	p := mustPlan(t, cascade, src)
	var st Stats
	if _, err := p.ExecuteStats(src, &st); err != nil {
		t.Fatal(err)
	}
	if st.MaterialisedTuples != 0 {
		t.Errorf("a σ/π/extπ cascade over a scan must not materialise, held %d tuples", st.MaterialisedTuples)
	}
	if st.Operators != 3 {
		t.Errorf("operators = %d, want 3", st.Operators)
	}

	// The same cascade above a hash join materialises only the join's build
	// side.
	join := algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim"))
	above := algebra.NewProject([]int{1}, algebra.NewSelect(pred, algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim"))))
	_ = join
	p2 := mustPlan(t, above, src)
	var st2 Stats
	if _, err := p2.ExecuteStats(src, &st2); err != nil {
		t.Fatal(err)
	}
	dimCard := src["dim"].Cardinality()
	if st2.MaterialisedTuples != dimCard {
		t.Errorf("only the join build side may materialise: held %d, want %d", st2.MaterialisedTuples, dimCard)
	}
}

// TestExecuteAgainstDefinitions spot-checks operator semantics through the
// planner on a tiny database.
func TestExecuteAgainstDefinitions(t *testing.T) {
	s := schema.Anonymous(schema.Attribute{Name: "x", Type: value.KindInt})
	a := multiset.FromTuples(s, tuple.Ints(1), tuple.Ints(1), tuple.Ints(2))
	b := multiset.FromTuples(s, tuple.Ints(1), tuple.Ints(3))
	src := mapSource{"a": a, "b": b}
	ra, rb := algebra.NewRel("a"), algebra.NewRel("b")

	cases := []struct {
		name string
		expr algebra.Expr
		tup  tuple.Tuple
		mult uint64
		card uint64
	}{
		{"union", algebra.NewUnion(ra, rb), tuple.Ints(1), 3, 5},
		{"difference", algebra.NewDifference(ra, rb), tuple.Ints(1), 1, 2},
		{"intersect", algebra.NewIntersect(ra, rb), tuple.Ints(1), 1, 1},
		{"unique", algebra.NewUnique(ra), tuple.Ints(1), 1, 2},
		{"product", algebra.NewProduct(ra, rb), tuple.Ints(1, 1), 2, 6},
	}
	for _, c := range cases {
		p := mustPlan(t, c.expr, src)
		out, err := p.Execute(src)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if out.Multiplicity(c.tup) != c.mult || out.Cardinality() != c.card {
			t.Errorf("%s = %v, want multiplicity %d of %v and cardinality %d",
				c.name, out, c.mult, c.tup, c.card)
		}
	}
}

// TestPlanTimeValidation checks that typing errors surface at plan time.
func TestPlanTimeValidation(t *testing.T) {
	src := testSource(100)
	cat := catalogOf(src)
	bad := []algebra.Expr{
		algebra.NewRel("missing"),
		algebra.NewProject([]int{9}, algebra.NewRel("fact")),
		algebra.NewProject(nil, algebra.NewRel("fact")),
		algebra.NewUnion(algebra.NewRel("fact"), algebra.NewProject([]int{0}, algebra.NewRel("dim"))),
		algebra.NewTClose(algebra.NewProject([]int{0}, algebra.NewRel("fact"))),
		algebra.NewGroupBy([]int{7}, algebra.AggCount, 0, algebra.NewRel("fact")),
		// Nil conditions must error everywhere, including the σ(×)/σ(⋈)
		// fold paths, instead of silently compiling to a cross product.
		algebra.Select{Input: algebra.NewRel("fact")},
		algebra.Select{Input: algebra.NewProduct(algebra.NewRel("fact"), algebra.NewRel("dim"))},
		algebra.Select{Input: algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim"))},
		algebra.NewSelect(scalar.True{}, algebra.Join{Left: algebra.NewRel("fact"), Right: algebra.NewRel("dim")}),
		algebra.Join{Left: algebra.NewRel("fact"), Right: algebra.NewRel("dim")},
	}
	for _, e := range bad {
		if _, err := NewPlanner(nil).Plan(e, cat); err == nil {
			t.Errorf("expected plan error for %s", e)
		}
	}
}

// TestPlanString pins the explain rendering of a representative plan.
func TestPlanString(t *testing.T) {
	src := testSource(1000)
	expr := algebra.NewProject([]int{1},
		algebra.NewSelect(
			scalar.NewCompare(value.CmpGt, scalar.NewAttr(3), scalar.NewConst(value.NewInt(10))),
			algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("dim"))))
	got := mustPlan(t, expr, src).String()
	want := strings.Join([]string{
		"Project [%2]  (est~10000 rows)",
		"└─ HashJoin [%1 = %3] build=right residual=[%4 > 10]  (est~10000 rows)",
		"   ├─ Scan fact  (est=1000 rows)",
		"   └─ Scan dim  (est=100 rows)",
	}, "\n")
	if got != want {
		t.Errorf("plan rendering:\n%s\nwant:\n%s", got, want)
	}
}

// TestEmptyBuildSkipsProbe checks the hash join's empty-side short circuit:
// the probe side never runs when the build side is empty.
func TestEmptyBuildSkipsProbe(t *testing.T) {
	src := testSource(100)
	src["empty"] = multiset.New(src["dim"].Schema())
	join := algebra.NewJoin(scalar.Eq(0, 2), algebra.NewRel("fact"), algebra.NewRel("empty"))
	p := mustPlan(t, join, src)
	var st Stats
	out, err := p.ExecuteStats(src, &st)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsEmpty() {
		t.Error("join against empty must be empty")
	}
	if st.IntermediateTuples != 0 {
		t.Errorf("no operator may emit against an empty build side, emitted %d", st.IntermediateTuples)
	}
}
