package plan

import (
	"mra/internal/algebra"
	"mra/internal/scalar"
	"mra/internal/value"
)

// This file holds the cardinality-based cost model.  It lived in package
// rewrite while only the rewriter ranked plans; it moved here so the planner
// can feed it real base-table cardinalities (internal/storage and every
// eval source implement CardinalitySource) when choosing join strategies and
// build sides.  Package rewrite re-exports the API for its callers.

// CardinalitySource provides base-relation cardinalities for the cost model.
// The storage engine implements it directly; evaluation sources are adapted
// via eval.Cardinalities.
type CardinalitySource interface {
	// RelationCardinality returns the number of tuples (counting duplicates)
	// in the named relation, and whether the relation is known.
	RelationCardinality(name string) (uint64, bool)
}

// DistinctCardinalitySource optionally refines a CardinalitySource with
// distinct-tuple counts.  The planner uses them to size hash tables (the
// multiplicity-counting cardinality can overshoot the table size by the
// duplication factor); the cost model itself ranks on full cardinalities.
type DistinctCardinalitySource interface {
	// RelationDistinctCount returns the number of distinct tuples in the
	// named relation, and whether the relation is known.
	RelationDistinctCount(name string) (int, bool)
}

// MapCardinalities is a CardinalitySource backed by a map.
type MapCardinalities map[string]uint64

// RelationCardinality implements CardinalitySource.
func (m MapCardinalities) RelationCardinality(name string) (uint64, bool) {
	c, ok := m[name]
	return c, ok
}

// Default selectivities of the cost model.  They are deliberately coarse: the
// model only needs to rank plans whose cost differs by orders of magnitude
// (product vs. hash join, pruned vs. unpruned group-by inputs).
const (
	defaultRelationCard   = 1000.0
	selectionSelectivity  = 0.25
	joinSelectivity       = 0.1
	uniqueReduction       = 0.6
	groupReduction        = 0.2
	transitiveBlowup      = 4.0
	perTupleProcessingFee = 1.0
)

// DefaultBuildParallelThreshold is the estimated build-side cardinality at
// which a shared hash join's table is built morsel-parallel by the gang
// instead of serially in the parent.  It sits well above the exchange
// threshold because a parallel build adds a second gang dispatch plus a
// table merge, which only amortises over substantially larger builds than
// the probe-side parallelism needs.
const DefaultBuildParallelThreshold = 4 * DefaultParallelThreshold

// Morsel sizing bounds.  The cost model aims at several morsels per worker so
// the queue can rebalance around skew, clamped below so the atomic claim
// amortises and above so a morsel's batch output stays cache-resident.
const (
	minMorselSize          = 64
	maxMorselSize          = 4096
	morselsPerWorkerTarget = 8
)

// morselSizeFor chooses the morsel size for a scan of about distinct entries
// executing under a gang of the given width: the entry count divided so each
// worker sees morselsPerWorkerTarget morsels on average, clamped to
// [minMorselSize, maxMorselSize].
func morselSizeFor(distinct float64, workers int) int {
	if workers < 1 {
		workers = 1
	}
	size := int(distinct) / (workers * morselsPerWorkerTarget)
	if size < minMorselSize {
		return minMorselSize
	}
	if size > maxMorselSize {
		return maxMorselSize
	}
	return size
}

// Cost estimates the total processing cost of an expression: the sum over all
// operators of the tuples they must inspect plus the tuples they emit.
// Products pay for their full output; hash joins pay for build plus probe.
func Cost(e algebra.Expr, cards CardinalitySource) float64 {
	cost, _ := costAndCard(e, cards)
	return cost
}

// EstimateCardinality estimates the output cardinality of an expression.
func EstimateCardinality(e algebra.Expr, cards CardinalitySource) float64 {
	_, card := costAndCard(e, cards)
	return card
}

func costAndCard(e algebra.Expr, cards CardinalitySource) (cost, card float64) {
	switch n := e.(type) {
	case algebra.Rel:
		if cards != nil {
			if c, ok := cards.RelationCardinality(n.Name); ok {
				return 0, float64(c)
			}
		}
		return 0, defaultRelationCard
	case algebra.Literal:
		return 0, float64(len(n.Rows))
	case algebra.Union:
		lc, lk := costAndCard(n.Left, cards)
		rc, rk := costAndCard(n.Right, cards)
		out := lk + rk
		return lc + rc + out*perTupleProcessingFee, out
	case algebra.Difference:
		lc, lk := costAndCard(n.Left, cards)
		rc, rk := costAndCard(n.Right, cards)
		return lc + rc + (lk+rk)*perTupleProcessingFee, lk
	case algebra.Intersect:
		lc, lk := costAndCard(n.Left, cards)
		rc, rk := costAndCard(n.Right, cards)
		out := lk
		if rk < out {
			out = rk
		}
		return lc + rc + (lk+rk)*perTupleProcessingFee, out
	case algebra.Product:
		lc, lk := costAndCard(n.Left, cards)
		rc, rk := costAndCard(n.Right, cards)
		out := lk * rk
		return lc + rc + out*perTupleProcessingFee, out
	case algebra.Join:
		lc, lk := costAndCard(n.Left, cards)
		rc, rk := costAndCard(n.Right, cards)
		// Hash join when an equality conjunct links the two sides; otherwise
		// nested loops over the product.
		if hasEquiConjunct(n) {
			out := (lk * rk) * joinSelectivity
			return lc + rc + (lk+rk+out)*perTupleProcessingFee, out
		}
		out := lk * rk * joinSelectivity
		return lc + rc + (lk*rk)*perTupleProcessingFee, out
	case algebra.Select:
		ic, ik := costAndCard(n.Input, cards)
		out := ik * selectionSelectivity
		return ic + ik*perTupleProcessingFee, out
	case algebra.Project:
		// Projections are pipelined: they narrow tuples without materialising
		// a new relation, so they carry no per-tuple charge of their own.
		return costAndCard(n.Input, cards)
	case algebra.ExtProject:
		return costAndCard(n.Input, cards)
	case algebra.Unique:
		ic, ik := costAndCard(n.Input, cards)
		return ic + ik*perTupleProcessingFee, ik * uniqueReduction
	case algebra.GroupBy:
		ic, ik := costAndCard(n.Input, cards)
		out := ik * groupReduction
		if len(n.GroupCols) == 0 {
			out = 1
		}
		return ic + ik*perTupleProcessingFee, out
	case algebra.TClose:
		ic, ik := costAndCard(n.Input, cards)
		out := ik * transitiveBlowup
		return ic + (ik+out)*perTupleProcessingFee*2, out
	default:
		return 0, defaultRelationCard
	}
}

// hasEquiConjunct reports whether the join condition contains an equality
// conjunct between two attribute references, the shape the physical layer
// executes as a hash join.
func hasEquiConjunct(j algebra.Join) bool {
	for _, c := range scalar.Conjuncts(j.Cond) {
		cmp, ok := c.(scalar.Compare)
		if !ok || cmp.Op != value.CmpEq {
			continue
		}
		_, lok := cmp.Left.(scalar.Attr)
		_, rok := cmp.Right.(scalar.Attr)
		if lok && rok {
			return true
		}
	}
	return false
}
