package plan

import (
	"mra/internal/scalar"
	"mra/internal/tuple"
	"mra/internal/value"
)

// This file holds the column-at-a-time operator kernels: compiled comparison
// predicates for the vectorised Filter, per-row columnar expression
// evaluation for ExtProject, and the incremental key hashing the join probe
// and aggregate update run straight off column vectors.  Kernels evaluate
// live rows only — dead rows may hold values the scalar path would never
// evaluate, so touching them could surface errors a correct execution must
// not produce.

// vecCmp is one compiled atomic comparison of a filter predicate:
// column `op` column, or column `op` constant when rcol is negative.
type vecCmp struct {
	op   value.CompareOp
	lcol int
	rcol int
	rval value.Value
}

// compileVecPred compiles a predicate into a conjunction of vecCmp kernels.
// It reports false when the predicate has a shape the kernels cannot express
// (disjunction, negation, arithmetic operands, ...), in which case the filter
// falls back to row-wise Predicate.Holds over live rows.  An empty kernel
// list with a true report is the always-true predicate.
func compileVecPred(p scalar.Predicate) ([]vecCmp, bool) {
	conjuncts := scalar.Conjuncts(p)
	kernels := make([]vecCmp, 0, len(conjuncts))
	for _, c := range conjuncts {
		cmp, ok := c.(scalar.Compare)
		if !ok {
			return nil, false
		}
		k := vecCmp{op: cmp.Op, rcol: -1}
		l, lok := cmp.Left.(scalar.Attr)
		r, rok := cmp.Right.(scalar.Attr)
		switch {
		case lok && rok:
			k.lcol, k.rcol = l.Index, r.Index
		case lok:
			cv, ok := cmp.Right.(scalar.Const)
			if !ok {
				return nil, false
			}
			k.lcol, k.rval = l.Index, cv.Value
		case rok:
			cv, ok := cmp.Left.(scalar.Const)
			if !ok {
				return nil, false
			}
			k.lcol, k.rval, k.op = r.Index, cv.Value, cmp.Op.Flip()
		default:
			return nil, false
		}
		kernels = append(kernels, k)
	}
	return kernels, true
}

// apply runs the kernel over the rows listed in `in` (nil meaning all `rows`
// physical rows), appending the surviving row indices to out.  cc must be
// bound to the kernel's batch.
func (k *vecCmp) apply(cc *colCache, in []int32, rows int, out []int32) ([]int32, error) {
	lv := cc.col(k.lcol)
	var rv value.Vec
	if k.rcol >= 0 {
		rv = cc.col(k.rcol)
	}
	if in == nil {
		for r := 0; r < rows; r++ {
			rhs := k.rval
			if rv != nil {
				rhs = rv[r]
			}
			ok, err := cmpVals(k.op, lv[r], rhs)
			if err != nil {
				return out, err
			}
			if ok {
				out = append(out, int32(r))
			}
		}
		return out, nil
	}
	for _, r := range in {
		rhs := k.rval
		if rv != nil {
			rhs = rv[r]
		}
		ok, err := cmpVals(k.op, lv[r], rhs)
		if err != nil {
			return out, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// cmpVals compares two values under op with an inlined integer fast path —
// the overwhelmingly common case in filter and join keys — deferring to the
// generic CompareOp.Apply (null semantics, mixed numeric kinds, type errors)
// otherwise.
func cmpVals(op value.CompareOp, a, b value.Value) (bool, error) {
	if a.Kind() == value.KindInt && b.Kind() == value.KindInt {
		ai, bi := a.Int(), b.Int()
		switch op {
		case value.CmpEq:
			return ai == bi, nil
		case value.CmpNe:
			return ai != bi, nil
		case value.CmpLt:
			return ai < bi, nil
		case value.CmpLe:
			return ai <= bi, nil
		case value.CmpGt:
			return ai > bi, nil
		case value.CmpGe:
			return ai >= bi, nil
		}
	}
	return op.Apply(a, b)
}

// evalAt evaluates a scalar expression at physical row r of the bound batch,
// reading operands from column vectors: the columnar counterpart of Expr.Eval
// that ExtProject's kernel uses so common expression shapes never materialise
// a tuple.  Unknown expression shapes fall back to Eval over the row's tuple.
func evalAt(e scalar.Expr, b *Batch, cc *colCache, r int) (value.Value, error) {
	switch x := e.(type) {
	case scalar.Attr:
		return cc.col(x.Index)[r], nil
	case scalar.Const:
		return x.Value, nil
	case scalar.Arith:
		l, err := evalAt(x.Left, b, cc, r)
		if err != nil {
			return value.Null, err
		}
		rt, err := evalAt(x.Right, b, cc, r)
		if err != nil {
			return value.Null, err
		}
		return x.Op.Apply(l, rt)
	default:
		return e.Eval(b.TupleAt(r))
	}
}

// hashRowOn computes the group/join key hash of physical row r over the given
// key column vectors — bit-identical to tuple.HashOn of the row's tuple over
// the key columns, without materialising the tuple.
func hashRowOn(keyVecs []value.Vec, r int) uint64 {
	h := tuple.HashSeed
	for _, kv := range keyVecs {
		h = tuple.HashMix(h, kv[r])
	}
	return h
}
