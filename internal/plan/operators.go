package plan

import (
	"fmt"
	"strconv"
	"strings"

	"mra/internal/multiset"
	"mra/internal/scalar"
	"mra/internal/tuple"
	"mra/internal/value"
)

// This file implements the physical operators.  Streaming operators (Filter,
// Project, ExtProject, Union, Unique, the probe phases of the joins) process
// one chunk at a time; blocking operators materialise exactly the state their
// algorithm needs and account for it via execCtx.materialised.

// ---------------------------------------------------------------------------
// Leaves
// ---------------------------------------------------------------------------

// scanNode reads a named database relation from the source.
type scanNode struct {
	base
	name string
}

func (s *scanNode) Children() []Node { return nil }
func (s *scanNode) Describe() string { return "Scan " + s.name }

func (s *scanNode) lookup(ctx *execCtx) (*multiset.Relation, error) {
	r, ok := ctx.src.Relation(s.name)
	if !ok {
		return nil, fmt.Errorf("plan: unknown relation %q", s.name)
	}
	return r, nil
}

func (s *scanNode) run(ctx *execCtx, emit Emit) error {
	r, err := s.lookup(ctx)
	if err != nil {
		return err
	}
	// Leaf streams are where long pipelines spend their time, so the scan is
	// the scalar path's cancellation checkpoint (amortised to one poll per
	// batchCap chunks; free on uncancellable contexts).
	return each(r, ctx.pollingEmit(emit))
}

// runBatch implements batchRunner: the relation's distinct entries are
// vectorised into batches straight off the hash-table arena, with no
// per-tuple callback (multiset.EachBatch fills whole vectors in one pass).
func (s *scanNode) runBatch(ctx *execCtx, emit EmitBatch) error {
	r, err := s.lookup(ctx)
	if err != nil {
		return err
	}
	var b Batch
	var iterErr error
	r.EachBatch(ctx.batchCap(), func(tuples []tuple.Tuple, counts []uint64) bool {
		// One cancellation checkpoint per batch — the vectorised counterpart
		// of the scalar path's pollingEmit.
		if iterErr = ctx.poll(); iterErr != nil {
			return false
		}
		b.Tuples, b.Counts = tuples, counts
		iterErr = emit(&b)
		return iterErr == nil
	})
	return iterErr
}

// result implements materializer: the clone is an O(1) copy-on-write view.
func (s *scanNode) result(ctx *execCtx) (*multiset.Relation, error) {
	r, err := s.lookup(ctx)
	if err != nil {
		return nil, err
	}
	return r.Clone(), nil
}

// valuesNode emits the rows of a literal relation, one occurrence each.
type valuesNode struct {
	base
	rows [][]value.Value
}

func (v *valuesNode) Children() []Node { return nil }
func (v *valuesNode) Describe() string { return fmt.Sprintf("Values (%d rows)", len(v.rows)) }

func (v *valuesNode) run(ctx *execCtx, emit Emit) error {
	emit = ctx.pollingEmit(emit)
	for _, row := range v.rows {
		if err := emit(tuple.New(row...), 1); err != nil {
			return err
		}
	}
	return nil
}

// runBatch implements batchRunner over the literal rows.
func (v *valuesNode) runBatch(ctx *execCtx, emit EmitBatch) error {
	w := newBatchWriter(ctx.batchCap(), emit)
	for _, row := range v.rows {
		if err := w.push(tuple.New(row...), 1); err != nil {
			return err
		}
	}
	return w.flush()
}

// ---------------------------------------------------------------------------
// Streaming unary operators
// ---------------------------------------------------------------------------

// filterNode is the streaming selection σφ.
type filterNode struct {
	base
	pred  scalar.Predicate
	input Node
}

func (f *filterNode) Children() []Node { return []Node{f.input} }
func (f *filterNode) Describe() string { return fmt.Sprintf("Filter [%s]", f.pred) }

// run is the scalar fast path: serial plans chain per-chunk closures with no
// batch copies.  It must stay semantically identical to runBatch; the
// random-expression property tests exercise both.
func (f *filterNode) run(ctx *execCtx, emit Emit) error {
	return ctx.run(f.input, func(t tuple.Tuple, n uint64) error {
		ok, err := f.pred.Holds(t)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return emit(t, n)
	})
}

// runBatch implements batchRunner: the predicate is compiled into comparison
// kernels that refine each input batch's selection vector — a selective filter
// flips live-row indices in tight per-column loops and never moves a value.
// Predicates the kernels cannot express fall back to row-wise Holds over live
// rows, still producing a selection instead of compacting.
func (f *filterNode) runBatch(ctx *execCtx, emit EmitBatch) error {
	if ctx.rowBatches {
		return f.runBatchRows(ctx, emit)
	}
	kernels, compiled := compileVecPred(f.pred)
	var cc colCache
	var selA, selB []int32
	var out Batch
	return ctx.runBatch(f.input, func(b *Batch) error {
		cc.batch(b)
		rows := b.rows()
		cur, curNil := b.Sel, b.Sel == nil
		if compiled {
			for i := range kernels {
				var err error
				if selA, err = kernels[i].apply(&cc, cur, rows, selA[:0]); err != nil {
					return err
				}
				cur, curNil = selA, false
				selA, selB = selB, selA
				if len(cur) == 0 {
					break
				}
			}
		} else {
			selA = selA[:0]
			n := b.Len()
			for i := 0; i < n; i++ {
				r := b.Row(i)
				ok, err := f.pred.Holds(b.TupleAt(r))
				if err != nil {
					return err
				}
				if ok {
					selA = append(selA, int32(r))
				}
			}
			cur, curNil = selA, false
			selA, selB = selB, selA
		}
		if !curNil && len(cur) == 0 {
			return nil
		}
		out = *b
		out.Sel = cur
		return emit(&out)
	})
}

// runBatchRows is the legacy array-of-tuples filter loop, kept behind the
// planner's RowBatches knob as the A/B baseline for the columnar kernels.
func (f *filterNode) runBatchRows(ctx *execCtx, emit EmitBatch) error {
	w := newBatchWriter(ctx.batchCap(), emit)
	err := ctx.runBatch(f.input, func(b *Batch) error {
		for i, t := range b.Tuples {
			ok, err := f.pred.Holds(t)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if err := w.push(t, b.Counts[i]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return w.flush()
}

// projectNode is the streaming positional projection πα.
type projectNode struct {
	base
	cols  []int
	input Node
}

func (p *projectNode) Children() []Node { return []Node{p.input} }
func (p *projectNode) Describe() string { return "Project [" + colList(p.cols) + "]" }

// run is the scalar fast path of the projection (see filterNode.run).
func (p *projectNode) run(ctx *execCtx, emit Emit) error {
	return ctx.run(p.input, func(t tuple.Tuple, n uint64) error {
		out, err := t.Project(p.cols)
		if err != nil {
			return err
		}
		return emit(out, n)
	})
}

// runBatch implements batchRunner: the output batch is the input's column
// vectors re-ordered per the projection list — shared, never copied — with the
// counts and selection passed through untouched.  Projection indices are
// validated at plan time, so the columnar path needs no per-tuple range check.
func (p *projectNode) runBatch(ctx *execCtx, emit EmitBatch) error {
	if ctx.rowBatches {
		return p.runBatchRows(ctx, emit)
	}
	var cc colCache
	outCols := make([]value.Vec, len(p.cols))
	var out Batch
	return ctx.runBatch(p.input, func(b *Batch) error {
		cc.batch(b)
		for j, c := range p.cols {
			outCols[j] = cc.col(c)
		}
		out = Batch{Counts: b.Counts, Cols: outCols, Sel: b.Sel}
		return emit(&out)
	})
}

// runBatchRows is the legacy per-tuple projection loop, kept behind the
// planner's RowBatches knob as the A/B baseline for the columnar path.
func (p *projectNode) runBatchRows(ctx *execCtx, emit EmitBatch) error {
	var out Batch
	return ctx.runBatch(p.input, func(b *Batch) error {
		out.Tuples = out.Tuples[:0]
		for _, t := range b.Tuples {
			mt, err := t.Project(p.cols)
			if err != nil {
				return err
			}
			out.Tuples = append(out.Tuples, mt)
		}
		out.Counts = b.Counts
		return emit(&out)
	})
}

// extProjectNode is the streaming extended (arithmetic) projection.
type extProjectNode struct {
	base
	items []scalar.Expr
	input Node
}

func (p *extProjectNode) Children() []Node { return []Node{p.input} }

func (p *extProjectNode) Describe() string {
	items := make([]string, len(p.items))
	for i, it := range p.items {
		items[i] = it.String()
	}
	return "ExtProject [" + strings.Join(items, ", ") + "]"
}

// run is the scalar fast path of the extended projection (see
// filterNode.run).
func (p *extProjectNode) run(ctx *execCtx, emit Emit) error {
	return ctx.run(p.input, func(t tuple.Tuple, n uint64) error {
		vals := make([]value.Value, len(p.items))
		for i, item := range p.items {
			v, err := item.Eval(t)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		return emit(tuple.FromSlice(vals), n)
	})
}

// runBatch implements batchRunner: bare attribute items share the input's
// column vectors, computed items evaluate column-at-a-time (evalAt) into
// reusable scratch vectors over live rows only — dead rows are never
// evaluated, so expression errors surface exactly as on the scalar path.
func (p *extProjectNode) runBatch(ctx *execCtx, emit EmitBatch) error {
	if ctx.rowBatches {
		return p.runBatchRows(ctx, emit)
	}
	var cc colCache
	outCols := make([]value.Vec, len(p.items))
	scratch := make([]value.Vec, len(p.items))
	var out Batch
	return ctx.runBatch(p.input, func(b *Batch) error {
		cc.batch(b)
		rows := b.rows()
		n := b.Len()
		for j, item := range p.items {
			if a, ok := item.(scalar.Attr); ok {
				outCols[j] = cc.col(a.Index)
				continue
			}
			vec := scratch[j]
			if cap(vec) < rows {
				vec = make(value.Vec, rows)
			} else {
				vec = vec[:rows]
			}
			for i := 0; i < n; i++ {
				r := b.Row(i)
				v, err := evalAt(item, b, &cc, r)
				if err != nil {
					return err
				}
				vec[r] = v
			}
			scratch[j], outCols[j] = vec, vec
		}
		out = Batch{Counts: b.Counts, Cols: outCols, Sel: b.Sel}
		return emit(&out)
	})
}

// runBatchRows is the legacy per-tuple evaluation loop, kept behind the
// planner's RowBatches knob as the A/B baseline for the columnar path.
func (p *extProjectNode) runBatchRows(ctx *execCtx, emit EmitBatch) error {
	var out Batch
	return ctx.runBatch(p.input, func(b *Batch) error {
		out.Tuples = out.Tuples[:0]
		for _, t := range b.Tuples {
			vals := make([]value.Value, len(p.items))
			for j, item := range p.items {
				v, err := item.Eval(t)
				if err != nil {
					return err
				}
				vals[j] = v
			}
			out.Tuples = append(out.Tuples, tuple.FromSlice(vals))
		}
		out.Counts = b.Counts
		return emit(&out)
	})
}

// uniqueNode is the duplicate elimination δ.  It streams: each distinct tuple
// is emitted (with multiplicity one) the first time it is seen, so downstream
// operators start before the input is exhausted; the seen-set is the
// operator's only state.
type uniqueNode struct {
	base
	input Node
}

func (u *uniqueNode) Children() []Node { return []Node{u.input} }
func (u *uniqueNode) Describe() string { return "Unique" }

func (u *uniqueNode) run(ctx *execCtx, emit Emit) error {
	seen := newTupleSet(capacityFor(u.capHint))
	err := ctx.run(u.input, func(t tuple.Tuple, _ uint64) error {
		if !seen.insert(t) {
			return nil
		}
		if err := ctx.chargeTuple(t); err != nil {
			return err
		}
		return emit(t, 1)
	})
	ctx.materialised(u, uint64(seen.len()))
	return err
}

// unionNode is the multi-set union ⊎: it streams the left operand and then
// the right one; multiplicities add up at the consumer.
type unionNode struct {
	base
	left, right Node
}

func (u *unionNode) Children() []Node { return []Node{u.left, u.right} }
func (u *unionNode) Describe() string { return "Union" }

func (u *unionNode) run(ctx *execCtx, emit Emit) error {
	if err := ctx.run(u.left, emit); err != nil {
		return err
	}
	return ctx.run(u.right, emit)
}

// runBatch implements batchRunner by streaming both operands' batches.
func (u *unionNode) runBatch(ctx *execCtx, emit EmitBatch) error {
	if err := ctx.runBatch(u.left, emit); err != nil {
		return err
	}
	return ctx.runBatch(u.right, emit)
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

// joinTable is the materialised build side of a hash join: a flat node arena
// with collision chains headed by a hash index (no per-tuple key allocation).
// Once built it is read-only, which is what lets a parallel join build it once
// and share it across the gang's probe workers.
type joinTable struct {
	nodes []joinChainNode
	index map[uint64]int32
	// built counts the tuple occurrences the table holds.
	built uint64
}

// joinChainNode is one arena slot of a joinTable.
type joinChainNode struct {
	tup   tuple.Tuple
	count uint64
	next  int32
}

// newJoinTable returns an empty table pre-sized for about capacity entries.
func newJoinTable(capacity int) *joinTable {
	return &joinTable{
		nodes: make([]joinChainNode, 0, capacity),
		index: make(map[uint64]int32, capacity),
	}
}

// absorb appends another table's arena to tb and splices its collision
// chains into tb's index: node links shift by tb's old length, and where both
// tables hold a hash bucket the absorbed chain's tail links onto tb's
// existing head.  It is how the morsel-parallel build merges the gang's
// partition-local tables into the one shared table the probe workers read.
func (tb *joinTable) absorb(o *joinTable) {
	off := int32(len(tb.nodes))
	tb.nodes = append(tb.nodes, o.nodes...)
	for i := off; i < int32(len(tb.nodes)); i++ {
		if tb.nodes[i].next != -1 {
			tb.nodes[i].next += off
		}
	}
	for h, head := range o.index {
		nh := head + off
		if cur, ok := tb.index[h]; ok {
			tail := nh
			for tb.nodes[tail].next != -1 {
				tail = tb.nodes[tail].next
			}
			tb.nodes[tail].next = cur
		}
		tb.index[h] = nh
	}
	tb.built += o.built
}

// insert adds one build chunk under the hash of its join columns.
func (tb *joinTable) insert(t tuple.Tuple, n uint64, buildCols []int) {
	h := t.HashOn(buildCols)
	head, ok := tb.index[h]
	if !ok {
		head = -1
	}
	tb.index[h] = int32(len(tb.nodes))
	tb.nodes = append(tb.nodes, joinChainNode{tup: t, count: n, next: head})
	tb.built += n
}

// hashJoinNode executes an equi-join: the build side is materialised into a
// joinTable, the probe side streams batch-wise.  The planner chooses the
// build side from the cost model's cardinality estimates.  Under parallel
// execution (shared set) the table is built once by the exchange and probed
// read-only by every worker.
type hashJoinNode struct {
	base
	left, right Node
	// leftCols/rightCols are the equi-join column pairs on the respective
	// operand schemas.
	leftCols, rightCols []int
	// residual is the conjunction of non-hashable conjuncts (nil when none),
	// addressing the concatenated schema.
	residual scalar.Predicate
	// buildLeft selects the build side; the probe side is the other operand.
	buildLeft bool
	// shared marks a parallel join: the enclosing exchange pre-builds the
	// table in the parent and workers only probe (their probe-side scans are
	// morsel-partitioned, so the gang collectively probes each tuple once).
	shared bool
	// parBuild marks a shared join whose table is itself built
	// morsel-parallel: the build side's scans are morsel-partitioned, a
	// build gang of buildWorkers workers fills partition-local tables over
	// the morsels it claims, and the exchange absorbs them into one table
	// before the probe gang starts.  The planner enables it when the
	// estimated build cardinality clears BuildParallelThreshold.
	parBuild     bool
	buildWorkers int
}

func (j *hashJoinNode) Children() []Node { return []Node{j.left, j.right} }

func (j *hashJoinNode) Describe() string {
	leftArity := j.left.Schema().Arity()
	pairs := make([]string, len(j.leftCols))
	for i := range j.leftCols {
		pairs[i] = fmt.Sprintf("%%%d = %%%d", j.leftCols[i]+1, leftArity+j.rightCols[i]+1)
	}
	side := "right"
	if j.buildLeft {
		side = "left"
	}
	s := fmt.Sprintf("HashJoin [%s] build=%s", strings.Join(pairs, ", "), side)
	if j.shared {
		s += " shared"
	}
	if j.parBuild {
		s += fmt.Sprintf(" parbuild=%d", j.buildWorkers)
	}
	if j.residual != nil {
		s += fmt.Sprintf(" residual=[%s]", j.residual)
	}
	return s
}

// buildSide returns the build operand and its join columns.
func (j *hashJoinNode) buildSide() (Node, []int) {
	if j.buildLeft {
		return j.left, j.leftCols
	}
	return j.right, j.rightCols
}

// probeSide returns the probe operand and its join columns.
func (j *hashJoinNode) probeSide() (Node, []int) {
	if j.buildLeft {
		return j.right, j.rightCols
	}
	return j.left, j.leftCols
}

// buildTable materialises the build side into a fresh joinTable, charging the
// held tuples to the operator's state.
func (j *hashJoinNode) buildTable(ctx *execCtx) (*joinTable, error) {
	build, buildCols := j.buildSide()
	tb := newJoinTable(capacityFor(build.meta().capHint))
	err := ctx.run(build, func(t tuple.Tuple, n uint64) error {
		if err := ctx.chargeTuple(t); err != nil {
			return err
		}
		tb.insert(t, n, buildCols)
		return nil
	})
	if err != nil {
		return nil, err
	}
	ctx.materialised(j, tb.built)
	return tb, nil
}

// probeOne probes the table with one chunk (pt, pc), emitting every joined
// match: the single copy of the match loop shared by the scalar and batched
// probe paths.
func (j *hashJoinNode) probeOne(tb *joinTable, pt tuple.Tuple, pc uint64, probeCols, buildCols []int, emit Emit) error {
	head, ok := tb.index[pt.HashOn(probeCols)]
	if !ok {
		return nil
	}
	for i := head; i != -1; i = tb.nodes[i].next {
		bt := tb.nodes[i].tup
		if !equalOn(pt, probeCols, bt, buildCols) {
			continue
		}
		var joined tuple.Tuple
		if j.buildLeft {
			joined = bt.Concat(pt)
		} else {
			joined = pt.Concat(bt)
		}
		if j.residual != nil {
			ok, err := j.residual.Holds(joined)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
		}
		if err := emit(joined, pc*tb.nodes[i].count); err != nil {
			return err
		}
	}
	return nil
}

// run is the scalar fast path of the join: the probe side streams per chunk
// with no batch copies (see filterNode.run).
func (j *hashJoinNode) run(ctx *execCtx, emit Emit) error {
	tb := ctx.sharedBuild(j)
	if tb == nil {
		var err error
		tb, err = j.buildTable(ctx)
		if err != nil {
			return err
		}
	}
	probe, probeCols := j.probeSide()
	if len(tb.nodes) == 0 {
		// An empty build side makes the join empty: skip hashing and probing.
		// The probe side still runs (discarding its output) because the
		// algebra is strict — errors in the probe subtree must surface even
		// when no tuple could join.
		return ctx.run(probe, discard)
	}
	_, buildCols := j.buildSide()
	return ctx.run(probe, func(pt tuple.Tuple, pc uint64) error {
		return j.probeOne(tb, pt, pc, probeCols, buildCols, emit)
	})
}

// runBatch implements batchRunner: probe keys hash incrementally off the
// probe batch's column vectors (hashRowOn — bit-identical to tuple.HashOn)
// and chain candidates compare key values straight off the vectors, so a
// probe row only materialises a tuple once it actually matches.  The joined
// output is re-batched row-wise.
func (j *hashJoinNode) runBatch(ctx *execCtx, emit EmitBatch) error {
	tb := ctx.sharedBuild(j)
	if tb == nil {
		var err error
		tb, err = j.buildTable(ctx)
		if err != nil {
			return err
		}
	}
	probe, probeCols := j.probeSide()
	if len(tb.nodes) == 0 {
		// Strictness, as in run: the probe side still executes.
		return ctx.runBatch(probe, discardBatch)
	}

	_, buildCols := j.buildSide()
	w := newBatchWriter(ctx.batchCap(), emit)
	var err error
	if ctx.rowBatches {
		err = ctx.runBatch(probe, func(b *Batch) error {
			for k, pt := range b.Tuples {
				if err := j.probeOne(tb, pt, b.Counts[k], probeCols, buildCols, w.push); err != nil {
					return err
				}
			}
			return nil
		})
	} else {
		var cc colCache
		keyVecs := make([]value.Vec, len(probeCols))
		err = ctx.runBatch(probe, func(b *Batch) error {
			cc.batch(b)
			for k, c := range probeCols {
				keyVecs[k] = cc.col(c)
			}
			n := b.Len()
			for i := 0; i < n; i++ {
				r := b.Row(i)
				head, ok := tb.index[hashRowOn(keyVecs, r)]
				if !ok {
					continue
				}
				pc := b.Counts[r]
				var pt tuple.Tuple
				ptSet := false
				for ni := head; ni != -1; ni = tb.nodes[ni].next {
					bt := tb.nodes[ni].tup
					match := true
					for k := range keyVecs {
						if !keyVecs[k][r].Equal(bt.At(buildCols[k])) {
							match = false
							break
						}
					}
					if !match {
						continue
					}
					if !ptSet {
						pt, ptSet = b.TupleAt(r), true
					}
					var joined tuple.Tuple
					if j.buildLeft {
						joined = bt.Concat(pt)
					} else {
						joined = pt.Concat(bt)
					}
					if j.residual != nil {
						ok, err := j.residual.Holds(joined)
						if err != nil {
							return err
						}
						if !ok {
							continue
						}
					}
					if err := w.push(joined, pc*tb.nodes[ni].count); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
	if err != nil {
		return err
	}
	return w.flush()
}

// nestedLoopNode executes a θ-join with no hashable conjunct (or a bare
// Cartesian product when cond is nil): the inner side — chosen by the planner
// as the smaller operand — is materialised once, the outer side streams.
type nestedLoopNode struct {
	base
	left, right Node
	// cond is the join condition over the concatenated schema; nil means a
	// Cartesian product.
	cond scalar.Predicate
	// innerRight selects the materialised (inner) side.
	innerRight bool
}

func (j *nestedLoopNode) Children() []Node { return []Node{j.left, j.right} }

func (j *nestedLoopNode) Describe() string {
	inner := "left"
	if j.innerRight {
		inner = "right"
	}
	if j.cond == nil {
		return "NestedLoopJoin (cross) inner=" + inner
	}
	return fmt.Sprintf("NestedLoopJoin [%s] inner=%s", j.cond, inner)
}

func (j *nestedLoopNode) run(ctx *execCtx, emit Emit) error {
	inner, outer := j.left, j.right
	if j.innerRight {
		inner, outer = j.right, j.left
	}
	type chunk struct {
		tup   tuple.Tuple
		count uint64
	}
	chunks := make([]chunk, 0, capacityFor(inner.meta().capHint))
	var held uint64
	err := ctx.run(inner, func(t tuple.Tuple, n uint64) error {
		if err := ctx.chargeTuple(t); err != nil {
			return err
		}
		chunks = append(chunks, chunk{tup: t, count: n})
		held += n
		return nil
	})
	if err != nil {
		return err
	}
	ctx.materialised(j, held)
	if len(chunks) == 0 {
		// Strictness: the outer side still runs so its errors surface.
		return ctx.run(outer, discard)
	}

	return ctx.run(outer, func(ot tuple.Tuple, oc uint64) error {
		for i := range chunks {
			var joined tuple.Tuple
			if j.innerRight {
				joined = ot.Concat(chunks[i].tup)
			} else {
				joined = chunks[i].tup.Concat(ot)
			}
			if j.cond != nil {
				ok, err := j.cond.Holds(joined)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			if err := emit(joined, oc*chunks[i].count); err != nil {
				return err
			}
		}
		return nil
	})
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

// hashAggNode is the group-by operator Γ: a single-pass grouped hash table
// over the input stream, computing every aggregate of the spec in that one
// pass and emitting one tuple per group when the input is exhausted.  Under a
// two-phase parallel aggregate (partial set) the enclosing GroupMerge drives
// buildGroups per worker and merges the partial tables instead of consuming
// the node's emit stream.
type hashAggNode struct {
	base
	gb    groupSpec
	input Node
	// partial marks the per-worker local phase of a two-phase parallel
	// aggregate: the node aggregates its worker's slice into partial states
	// that the GroupMerge parent combines with MergePartial.
	partial bool
}

func (a *hashAggNode) Children() []Node { return []Node{a.input} }

func (a *hashAggNode) Describe() string {
	aggs := make([]string, len(a.gb.aggs))
	for i, sp := range a.gb.aggs {
		aggs[i] = fmt.Sprintf("%s(%%%d)", sp.Fn, sp.Col+1)
	}
	s := fmt.Sprintf("HashAggregate [(%s) %s]", colList(a.gb.groupCols), strings.Join(aggs, ", "))
	if a.partial {
		s += " partial"
	}
	return s
}

// buildGroups consumes the input into a fresh group table — batch-wise where
// batch-native execution is on (parallel workers, or serially under the
// SerialBatches knob), chunk-at-a-time otherwise — and charges the group
// count to the operator's state.  The batch-wise path folds batches in
// column-at-a-time (groupTable.addBatch) unless the RowBatches knob pins the
// legacy tuple loop.
func (a *hashAggNode) buildGroups(ctx *execCtx) (*groupTable, error) {
	groups := newGroupTable(a.gb, capacityFor(a.capHint), ctx.mem)
	var err error
	if _, native := a.input.(batchRunner); native && ctx.batchNative() {
		if ctx.rowBatches {
			err = ctx.runBatch(a.input, func(b *Batch) error {
				for i, t := range b.Tuples {
					if err := groups.add(t, b.Counts[i]); err != nil {
						return err
					}
				}
				return nil
			})
		} else {
			var cc colCache
			err = ctx.runBatch(a.input, func(b *Batch) error {
				return groups.addBatch(b, &cc)
			})
		}
	} else {
		err = ctx.run(a.input, func(t tuple.Tuple, n uint64) error {
			return groups.add(t, n)
		})
	}
	// The operator's state is one entry per group (aggregates fold in place),
	// not the consumed input.
	ctx.materialised(a, uint64(len(groups.groups)))
	if err != nil {
		return nil, err
	}
	return groups, nil
}

func (a *hashAggNode) run(ctx *execCtx, emit Emit) error {
	groups, err := a.buildGroups(ctx)
	if err != nil {
		return err
	}
	return groups.each(emit)
}

// runBatch implements batchRunner: the input is aggregated batch-wise and the
// per-group results are emitted as batches.
func (a *hashAggNode) runBatch(ctx *execCtx, emit EmitBatch) error {
	groups, err := a.buildGroups(ctx)
	if err != nil {
		return err
	}
	w := newBatchWriter(ctx.batchCap(), emit)
	if err := groups.each(w.push); err != nil {
		return err
	}
	return w.flush()
}

// ---------------------------------------------------------------------------
// Blocking binary set operators and transitive closure
// ---------------------------------------------------------------------------

// differenceNode is the multi-set difference −: monus on multiplicities.
// Both operands are inherently fully consumed.
type differenceNode struct {
	base
	left, right Node
}

func (d *differenceNode) Children() []Node { return []Node{d.left, d.right} }
func (d *differenceNode) Describe() string { return "Difference" }

func (d *differenceNode) run(ctx *execCtx, emit Emit) error {
	out, err := d.result(ctx)
	if err != nil {
		return err
	}
	return each(out, ctx.pollingEmit(emit))
}

func (d *differenceNode) result(ctx *execCtx) (*multiset.Relation, error) {
	l, r, err := materializePair(ctx, d, d.left, d.right)
	if err != nil {
		return nil, err
	}
	return multiset.Difference(l, r)
}

// intersectNode is the multi-set intersection ∩: minimum of multiplicities.
type intersectNode struct {
	base
	left, right Node
}

func (i *intersectNode) Children() []Node { return []Node{i.left, i.right} }
func (i *intersectNode) Describe() string { return "Intersect" }

func (i *intersectNode) run(ctx *execCtx, emit Emit) error {
	out, err := i.result(ctx)
	if err != nil {
		return err
	}
	return each(out, ctx.pollingEmit(emit))
}

func (i *intersectNode) result(ctx *execCtx) (*multiset.Relation, error) {
	l, r, err := materializePair(ctx, i, i.left, i.right)
	if err != nil {
		return nil, err
	}
	return multiset.Intersection(l, r)
}

// tcloseNode is the transitive-closure extension of Section 5: a semi-naive
// fixpoint over the materialised input.
type tcloseNode struct {
	base
	input Node
}

func (t *tcloseNode) Children() []Node { return []Node{t.input} }
func (t *tcloseNode) Describe() string { return "TClose" }

func (t *tcloseNode) run(ctx *execCtx, emit Emit) error {
	out, err := t.result(ctx)
	if err != nil {
		return err
	}
	return each(out, ctx.pollingEmit(emit))
}

func (t *tcloseNode) result(ctx *execCtx) (*multiset.Relation, error) {
	in, err := ctx.materialize(t.input)
	if err != nil {
		return nil, err
	}
	if ctx.mem != nil {
		if err := each(in, func(tp tuple.Tuple, _ uint64) error { return ctx.chargeTuple(tp) }); err != nil {
			return nil, err
		}
	}
	ctx.materialised(t, in.Cardinality())
	return TransitiveClosure(in), nil
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

// discard consumes a stream without keeping anything; joins use it to run a
// side whose output cannot contribute but whose errors must still surface.
func discard(tuple.Tuple, uint64) error { return nil }

// discardBatch is discard for batched streams.
func discardBatch(*Batch) error { return nil }

// each streams a materialised relation into emit.
func each(r *multiset.Relation, emit Emit) error {
	var iterErr error
	r.Each(func(t tuple.Tuple, n uint64) bool {
		iterErr = emit(t, n)
		return iterErr == nil
	})
	return iterErr
}

// materializePair materialises both operands of a blocking binary operator,
// charging their cardinalities to the operator's state — both for statistics
// and against the query's memory budget: the two materialised relations are
// exactly the state the operator holds.
func materializePair(ctx *execCtx, op Node, left, right Node) (*multiset.Relation, *multiset.Relation, error) {
	l, err := ctx.materialize(left)
	if err != nil {
		return nil, nil, err
	}
	r, err := ctx.materialize(right)
	if err != nil {
		return nil, nil, err
	}
	if ctx.mem != nil {
		if err := each(l, func(t tuple.Tuple, _ uint64) error { return ctx.chargeTuple(t) }); err != nil {
			return nil, nil, err
		}
		if err := each(r, func(t tuple.Tuple, _ uint64) error { return ctx.chargeTuple(t) }); err != nil {
			return nil, nil, err
		}
	}
	ctx.materialised(op, l.Cardinality()+r.Cardinality())
	return l, r, nil
}

// equalOn reports pairwise equality of a's attributes at acols with b's
// attributes at bcols: the collision check separating true hash-join matches
// from hash collisions.
func equalOn(a tuple.Tuple, acols []int, b tuple.Tuple, bcols []int) bool {
	for k := range acols {
		if !a.At(acols[k]).Equal(b.At(bcols[k])) {
			return false
		}
	}
	return true
}

// tupleSet is a hash set of tuples with positional-equality collision chains,
// used by the streaming duplicate elimination.
type tupleSet struct {
	index map[uint64]int32
	tups  []tuple.Tuple
	next  []int32
}

func newTupleSet(capacity int) *tupleSet {
	return &tupleSet{index: make(map[uint64]int32, capacity)}
}

func (s *tupleSet) len() int { return len(s.tups) }

// insert adds t and reports whether it was absent.
func (s *tupleSet) insert(t tuple.Tuple) bool {
	h := t.Hash()
	head, ok := s.index[h]
	if !ok {
		head = -1
	}
	for i := head; i != -1; i = s.next[i] {
		if s.tups[i].Equal(t) {
			return false
		}
	}
	s.index[h] = int32(len(s.tups))
	s.tups = append(s.tups, t)
	s.next = append(s.next, head)
	return true
}

// colList renders 0-based column positions in the 1-based %i surface syntax.
func colList(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = "%" + strconv.Itoa(c+1)
	}
	return strings.Join(parts, ", ")
}
