package plan

import (
	"fmt"
	"strconv"
	"strings"

	"mra/internal/multiset"
	"mra/internal/scalar"
	"mra/internal/tuple"
	"mra/internal/value"
)

// This file implements the physical operators.  Streaming operators (Filter,
// Project, ExtProject, Union, Unique, the probe phases of the joins) process
// one chunk at a time; blocking operators materialise exactly the state their
// algorithm needs and account for it via execCtx.materialised.

// ---------------------------------------------------------------------------
// Leaves
// ---------------------------------------------------------------------------

// scanNode reads a named database relation from the source.
type scanNode struct {
	base
	name string
}

func (s *scanNode) Children() []Node { return nil }
func (s *scanNode) Describe() string { return "Scan " + s.name }

func (s *scanNode) lookup(ctx *execCtx) (*multiset.Relation, error) {
	r, ok := ctx.src.Relation(s.name)
	if !ok {
		return nil, fmt.Errorf("plan: unknown relation %q", s.name)
	}
	return r, nil
}

func (s *scanNode) run(ctx *execCtx, emit Emit) error {
	r, err := s.lookup(ctx)
	if err != nil {
		return err
	}
	return each(r, emit)
}

// result implements materializer: the clone is an O(1) copy-on-write view.
func (s *scanNode) result(ctx *execCtx) (*multiset.Relation, error) {
	r, err := s.lookup(ctx)
	if err != nil {
		return nil, err
	}
	return r.Clone(), nil
}

// valuesNode emits the rows of a literal relation, one occurrence each.
type valuesNode struct {
	base
	rows [][]value.Value
}

func (v *valuesNode) Children() []Node { return nil }
func (v *valuesNode) Describe() string { return fmt.Sprintf("Values (%d rows)", len(v.rows)) }

func (v *valuesNode) run(_ *execCtx, emit Emit) error {
	for _, row := range v.rows {
		if err := emit(tuple.New(row...), 1); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Streaming unary operators
// ---------------------------------------------------------------------------

// filterNode is the streaming selection σφ.
type filterNode struct {
	base
	pred  scalar.Predicate
	input Node
}

func (f *filterNode) Children() []Node { return []Node{f.input} }
func (f *filterNode) Describe() string { return fmt.Sprintf("Filter [%s]", f.pred) }

func (f *filterNode) run(ctx *execCtx, emit Emit) error {
	return ctx.run(f.input, func(t tuple.Tuple, n uint64) error {
		ok, err := f.pred.Holds(t)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return emit(t, n)
	})
}

// projectNode is the streaming positional projection πα.
type projectNode struct {
	base
	cols  []int
	input Node
}

func (p *projectNode) Children() []Node { return []Node{p.input} }
func (p *projectNode) Describe() string { return "Project [" + colList(p.cols) + "]" }

func (p *projectNode) run(ctx *execCtx, emit Emit) error {
	return ctx.run(p.input, func(t tuple.Tuple, n uint64) error {
		out, err := t.Project(p.cols)
		if err != nil {
			return err
		}
		return emit(out, n)
	})
}

// extProjectNode is the streaming extended (arithmetic) projection.
type extProjectNode struct {
	base
	items []scalar.Expr
	input Node
}

func (p *extProjectNode) Children() []Node { return []Node{p.input} }

func (p *extProjectNode) Describe() string {
	items := make([]string, len(p.items))
	for i, it := range p.items {
		items[i] = it.String()
	}
	return "ExtProject [" + strings.Join(items, ", ") + "]"
}

func (p *extProjectNode) run(ctx *execCtx, emit Emit) error {
	return ctx.run(p.input, func(t tuple.Tuple, n uint64) error {
		vals := make([]value.Value, len(p.items))
		for i, item := range p.items {
			v, err := item.Eval(t)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		return emit(tuple.FromSlice(vals), n)
	})
}

// uniqueNode is the duplicate elimination δ.  It streams: each distinct tuple
// is emitted (with multiplicity one) the first time it is seen, so downstream
// operators start before the input is exhausted; the seen-set is the
// operator's only state.
type uniqueNode struct {
	base
	input Node
}

func (u *uniqueNode) Children() []Node { return []Node{u.input} }
func (u *uniqueNode) Describe() string { return "Unique" }

func (u *uniqueNode) run(ctx *execCtx, emit Emit) error {
	seen := newTupleSet(capacityFor(u.capHint))
	err := ctx.run(u.input, func(t tuple.Tuple, _ uint64) error {
		if !seen.insert(t) {
			return nil
		}
		return emit(t, 1)
	})
	ctx.materialised(u, uint64(seen.len()))
	return err
}

// unionNode is the multi-set union ⊎: it streams the left operand and then
// the right one; multiplicities add up at the consumer.
type unionNode struct {
	base
	left, right Node
}

func (u *unionNode) Children() []Node { return []Node{u.left, u.right} }
func (u *unionNode) Describe() string { return "Union" }

func (u *unionNode) run(ctx *execCtx, emit Emit) error {
	if err := ctx.run(u.left, emit); err != nil {
		return err
	}
	return ctx.run(u.right, emit)
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

// hashJoinNode executes an equi-join: the build side is materialised into a
// flat node arena with collision chains headed by a hash index (no per-tuple
// key allocation), the probe side streams.  The planner chooses the build
// side from the cost model's cardinality estimates.
type hashJoinNode struct {
	base
	left, right Node
	// leftCols/rightCols are the equi-join column pairs on the respective
	// operand schemas.
	leftCols, rightCols []int
	// residual is the conjunction of non-hashable conjuncts (nil when none),
	// addressing the concatenated schema.
	residual scalar.Predicate
	// buildLeft selects the build side; the probe side is the other operand.
	buildLeft bool
}

func (j *hashJoinNode) Children() []Node { return []Node{j.left, j.right} }

func (j *hashJoinNode) Describe() string {
	leftArity := j.left.Schema().Arity()
	pairs := make([]string, len(j.leftCols))
	for i := range j.leftCols {
		pairs[i] = fmt.Sprintf("%%%d = %%%d", j.leftCols[i]+1, leftArity+j.rightCols[i]+1)
	}
	side := "right"
	if j.buildLeft {
		side = "left"
	}
	s := fmt.Sprintf("HashJoin [%s] build=%s", strings.Join(pairs, ", "), side)
	if j.residual != nil {
		s += fmt.Sprintf(" residual=[%s]", j.residual)
	}
	return s
}

func (j *hashJoinNode) run(ctx *execCtx, emit Emit) error {
	build, probe := j.right, j.left
	buildCols, probeCols := j.rightCols, j.leftCols
	if j.buildLeft {
		build, probe = j.left, j.right
		buildCols, probeCols = j.leftCols, j.rightCols
	}

	type chainNode struct {
		tup   tuple.Tuple
		count uint64
		next  int32
	}
	nodes := make([]chainNode, 0, capacityFor(build.meta().capHint))
	index := make(map[uint64]int32, capacityFor(build.meta().capHint))
	var built uint64
	err := ctx.run(build, func(t tuple.Tuple, n uint64) error {
		h := t.HashOn(buildCols)
		head, ok := index[h]
		if !ok {
			head = -1
		}
		index[h] = int32(len(nodes))
		nodes = append(nodes, chainNode{tup: t, count: n, next: head})
		built += n
		return nil
	})
	if err != nil {
		return err
	}
	ctx.materialised(j, built)
	if len(nodes) == 0 {
		// An empty build side makes the join empty: skip hashing and probing.
		// The probe side still runs (discarding its output) because the
		// algebra is strict — errors in the probe subtree must surface even
		// when no tuple could join.
		return ctx.run(probe, discard)
	}

	return ctx.run(probe, func(pt tuple.Tuple, pc uint64) error {
		head, ok := index[pt.HashOn(probeCols)]
		if !ok {
			return nil
		}
		for i := head; i != -1; i = nodes[i].next {
			bt := nodes[i].tup
			if !equalOn(pt, probeCols, bt, buildCols) {
				continue
			}
			var joined tuple.Tuple
			if j.buildLeft {
				joined = bt.Concat(pt)
			} else {
				joined = pt.Concat(bt)
			}
			if j.residual != nil {
				ok, err := j.residual.Holds(joined)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			if err := emit(joined, pc*nodes[i].count); err != nil {
				return err
			}
		}
		return nil
	})
}

// nestedLoopNode executes a θ-join with no hashable conjunct (or a bare
// Cartesian product when cond is nil): the inner side — chosen by the planner
// as the smaller operand — is materialised once, the outer side streams.
type nestedLoopNode struct {
	base
	left, right Node
	// cond is the join condition over the concatenated schema; nil means a
	// Cartesian product.
	cond scalar.Predicate
	// innerRight selects the materialised (inner) side.
	innerRight bool
}

func (j *nestedLoopNode) Children() []Node { return []Node{j.left, j.right} }

func (j *nestedLoopNode) Describe() string {
	inner := "left"
	if j.innerRight {
		inner = "right"
	}
	if j.cond == nil {
		return "NestedLoopJoin (cross) inner=" + inner
	}
	return fmt.Sprintf("NestedLoopJoin [%s] inner=%s", j.cond, inner)
}

func (j *nestedLoopNode) run(ctx *execCtx, emit Emit) error {
	inner, outer := j.left, j.right
	if j.innerRight {
		inner, outer = j.right, j.left
	}
	type chunk struct {
		tup   tuple.Tuple
		count uint64
	}
	chunks := make([]chunk, 0, capacityFor(inner.meta().capHint))
	var held uint64
	err := ctx.run(inner, func(t tuple.Tuple, n uint64) error {
		chunks = append(chunks, chunk{tup: t, count: n})
		held += n
		return nil
	})
	if err != nil {
		return err
	}
	ctx.materialised(j, held)
	if len(chunks) == 0 {
		// Strictness: the outer side still runs so its errors surface.
		return ctx.run(outer, discard)
	}

	return ctx.run(outer, func(ot tuple.Tuple, oc uint64) error {
		for i := range chunks {
			var joined tuple.Tuple
			if j.innerRight {
				joined = ot.Concat(chunks[i].tup)
			} else {
				joined = chunks[i].tup.Concat(ot)
			}
			if j.cond != nil {
				ok, err := j.cond.Holds(joined)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			if err := emit(joined, oc*chunks[i].count); err != nil {
				return err
			}
		}
		return nil
	})
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

// hashAggNode is the group-by operator Γ: a single-pass grouped hash table
// over the input stream, emitting one tuple per group when the input is
// exhausted.
type hashAggNode struct {
	base
	gb    groupSpec
	input Node
}

func (a *hashAggNode) Children() []Node { return []Node{a.input} }

func (a *hashAggNode) Describe() string {
	return fmt.Sprintf("HashAggregate [(%s) %s(%%%d)]", colList(a.gb.groupCols), a.gb.agg, a.gb.aggCol+1)
}

func (a *hashAggNode) run(ctx *execCtx, emit Emit) error {
	groups := newGroupTable(a.gb)
	err := ctx.run(a.input, func(t tuple.Tuple, n uint64) error {
		return groups.add(t, n)
	})
	// The operator's state is one entry per group (aggregates fold in place),
	// not the consumed input.
	ctx.materialised(a, uint64(len(groups.groups)))
	if err != nil {
		return err
	}
	return groups.each(emit)
}

// ---------------------------------------------------------------------------
// Blocking binary set operators and transitive closure
// ---------------------------------------------------------------------------

// differenceNode is the multi-set difference −: monus on multiplicities.
// Both operands are inherently fully consumed.
type differenceNode struct {
	base
	left, right Node
}

func (d *differenceNode) Children() []Node { return []Node{d.left, d.right} }
func (d *differenceNode) Describe() string { return "Difference" }

func (d *differenceNode) run(ctx *execCtx, emit Emit) error {
	out, err := d.result(ctx)
	if err != nil {
		return err
	}
	return each(out, emit)
}

func (d *differenceNode) result(ctx *execCtx) (*multiset.Relation, error) {
	l, r, err := materializePair(ctx, d, d.left, d.right)
	if err != nil {
		return nil, err
	}
	return multiset.Difference(l, r)
}

// intersectNode is the multi-set intersection ∩: minimum of multiplicities.
type intersectNode struct {
	base
	left, right Node
}

func (i *intersectNode) Children() []Node { return []Node{i.left, i.right} }
func (i *intersectNode) Describe() string { return "Intersect" }

func (i *intersectNode) run(ctx *execCtx, emit Emit) error {
	out, err := i.result(ctx)
	if err != nil {
		return err
	}
	return each(out, emit)
}

func (i *intersectNode) result(ctx *execCtx) (*multiset.Relation, error) {
	l, r, err := materializePair(ctx, i, i.left, i.right)
	if err != nil {
		return nil, err
	}
	return multiset.Intersection(l, r)
}

// tcloseNode is the transitive-closure extension of Section 5: a semi-naive
// fixpoint over the materialised input.
type tcloseNode struct {
	base
	input Node
}

func (t *tcloseNode) Children() []Node { return []Node{t.input} }
func (t *tcloseNode) Describe() string { return "TClose" }

func (t *tcloseNode) run(ctx *execCtx, emit Emit) error {
	out, err := t.result(ctx)
	if err != nil {
		return err
	}
	return each(out, emit)
}

func (t *tcloseNode) result(ctx *execCtx) (*multiset.Relation, error) {
	in, err := ctx.materialize(t.input)
	if err != nil {
		return nil, err
	}
	ctx.materialised(t, in.Cardinality())
	return TransitiveClosure(in), nil
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

// discard consumes a stream without keeping anything; joins use it to run a
// side whose output cannot contribute but whose errors must still surface.
func discard(tuple.Tuple, uint64) error { return nil }

// each streams a materialised relation into emit.
func each(r *multiset.Relation, emit Emit) error {
	var iterErr error
	r.Each(func(t tuple.Tuple, n uint64) bool {
		iterErr = emit(t, n)
		return iterErr == nil
	})
	return iterErr
}

// materializePair materialises both operands of a blocking binary operator,
// charging their cardinalities to the operator's state.
func materializePair(ctx *execCtx, op Node, left, right Node) (*multiset.Relation, *multiset.Relation, error) {
	l, err := ctx.materialize(left)
	if err != nil {
		return nil, nil, err
	}
	r, err := ctx.materialize(right)
	if err != nil {
		return nil, nil, err
	}
	ctx.materialised(op, l.Cardinality()+r.Cardinality())
	return l, r, nil
}

// equalOn reports pairwise equality of a's attributes at acols with b's
// attributes at bcols: the collision check separating true hash-join matches
// from hash collisions.
func equalOn(a tuple.Tuple, acols []int, b tuple.Tuple, bcols []int) bool {
	for k := range acols {
		if !a.At(acols[k]).Equal(b.At(bcols[k])) {
			return false
		}
	}
	return true
}

// tupleSet is a hash set of tuples with positional-equality collision chains,
// used by the streaming duplicate elimination.
type tupleSet struct {
	index map[uint64]int32
	tups  []tuple.Tuple
	next  []int32
}

func newTupleSet(capacity int) *tupleSet {
	return &tupleSet{index: make(map[uint64]int32, capacity)}
}

func (s *tupleSet) len() int { return len(s.tups) }

// insert adds t and reports whether it was absent.
func (s *tupleSet) insert(t tuple.Tuple) bool {
	h := t.Hash()
	head, ok := s.index[h]
	if !ok {
		head = -1
	}
	for i := head; i != -1; i = s.next[i] {
		if s.tups[i].Equal(t) {
			return false
		}
	}
	s.index[h] = int32(len(s.tups))
	s.tups = append(s.tups, t)
	s.next = append(s.next, head)
	return true
}

// colList renders 0-based column positions in the 1-based %i surface syntax.
func colList(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = "%" + strconv.Itoa(c+1)
	}
	return strings.Join(parts, ", ")
}
