package plan

import (
	"fmt"

	"mra/internal/algebra"
	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/value"
)

// Planner compiles logical expressions into physical plans.  All physical
// decisions are made here, at plan time, from the cost model's cardinality
// estimates:
//
//   - σφ(E1 × E2) and σφ(E1 ⋈ E2) fold their conditions into the join
//     (Theorem 3.1 read right-to-left), so equality conjuncts from either
//     level can hash;
//   - joins with hashable conjuncts become HashJoins, with the build side
//     chosen as the operand of smaller estimated cardinality (the physical
//     commutation the algebra's join commutativity licenses);
//   - joins without hashable conjuncts, and bare products, become
//     NestedLoopJoins with the smaller estimated operand materialised as the
//     inner side;
//   - everything pipelineable (σ, π, extended π, ⊎, δ) compiles to streaming
//     operators, so cascades execute in one pass with no intermediate
//     relations.
type Planner struct {
	// Cards supplies base-relation cardinalities; nil falls back to the cost
	// model's default.
	Cards CardinalitySource
	// Workers is the parallelism degree of compiled plans.  At or below 1
	// (including the zero value) plans are serial and no exchange operators
	// are inserted; above 1 the planner wraps eligible shapes — streaming
	// pipelines, hash joins, grouped hash aggregates — in Partition/Merge
	// exchanges (exchange.go) when their estimated input cardinality exceeds
	// ParallelThreshold.
	Workers int
	// ParallelThreshold overrides DefaultParallelThreshold when positive: the
	// estimated input cardinality below which a shape stays serial.
	ParallelThreshold float64
	// MorselSize overrides the cost model's per-scan morsel sizing when
	// positive: every morsel partition of compiled plans claims entry ranges
	// of exactly this size.  At zero the planner sizes each scan's morsels
	// from its estimated distinct count and the gang width (morselSizeFor).
	MorselSize int
	// BatchSize overrides DefaultBatchSize when positive: the number of
	// chunks per emitted batch in compiled plans.
	BatchSize int
	// StaticSlices reverts scan scheduling to the pre-morsel runtime — one
	// static full-tuple hash slice per worker — for benchmarking the
	// scheduler against its baseline.  Hash joins keep their shared build;
	// only the scan split changes.
	StaticSlices bool
	// MemoryLimit bounds, in bytes, the operator-internal state one execution
	// of a compiled plan may hold — hash-join build tables, group tables,
	// Sort and nested-loop materialisations, the operand relations of the
	// blocking set operators, Unique's seen set.  Executions
	// that would exceed it fail with an error wrapping ErrMemoryBudget.  Zero
	// (the default) disables enforcement.
	MemoryLimit int64
	// OnePhaseAgg reverts parallel grouped aggregation to the legacy
	// one-phase shape — a static hash partition on the grouping columns under
	// a Merge, so groups never span workers — for benchmarking the two-phase
	// partial/merge aggregate against its baseline.  Global aggregates stay
	// serial under it (a single global group cannot be key-partitioned).
	OnePhaseAgg bool
	// SerialBatches forces batch-native (columnar) execution even in serial
	// plans, which otherwise run the scalar chunk-at-a-time fast path.  It
	// exists so the vectorised kernels can be benchmarked and gated on a
	// stable serial series, without an exchange's scheduling noise.
	SerialBatches bool
	// RowBatches pins the legacy array-of-tuples batch loops (per-tuple
	// filter compaction, per-tuple projection) instead of the columnar
	// kernels — the A/B baseline the BENCH_vec series compares against.
	RowBatches bool
	// BuildParallelThreshold overrides DefaultBuildParallelThreshold when
	// positive: the estimated build-side cardinality at which a shared hash
	// join's table is built morsel-parallel by the gang instead of serially
	// in the parent.
	BuildParallelThreshold float64
	// NoJoinReorder disables the cost-based join-order enumerator
	// (joinorder.go), pinning multi-join queries to their written evaluation
	// order.  It exists as the A/B baseline for the E13 multi-join bench
	// series and as an escape hatch for plans the estimates mislead.
	NoJoinReorder bool
}

// NewPlanner returns a serial planner drawing base cardinalities from cards
// (which may be nil).
func NewPlanner(cards CardinalitySource) *Planner { return &Planner{Cards: cards} }

// Plan compiles the expression against the catalog.  Operator typing (schema
// inference, condition and arithmetic validation) happens here; execution
// assumes a well-typed plan.
func (pl *Planner) Plan(e algebra.Expr, cat algebra.Catalog) (*Plan, error) {
	root, err := pl.compile(e, cat)
	if err != nil {
		return nil, err
	}
	root = pl.parallelize(root)
	p := &Plan{Root: root, nodes: make([]Node, 0, 8), batchSize: pl.BatchSize, memLimit: pl.MemoryLimit, serialBatches: pl.SerialBatches, rowBatches: pl.RowBatches}
	number(root, &p.nodes)
	return p, nil
}

// number assigns pre-order ids used by the per-operator statistics.
func number(n Node, nodes *[]Node) {
	n.meta().id = len(*nodes)
	*nodes = append(*nodes, n)
	for _, c := range n.Children() {
		number(c, nodes)
	}
}

// schemaExpr is a pre-resolved algebra leaf standing in for an already
// compiled subtree, so operator typing can reuse the algebra package's
// Schema validation against the child's known schema without re-walking the
// logical tree.
type schemaExpr struct{ s schema.Relation }

func (f schemaExpr) Schema(algebra.Catalog) (schema.Relation, error) { return f.s, nil }
func (f schemaExpr) Children() []algebra.Expr                        { return nil }
func (f schemaExpr) String() string                                  { return "·" }

func (pl *Planner) compile(e algebra.Expr, cat algebra.Catalog) (Node, error) {
	switch n := e.(type) {
	case algebra.Rel:
		if cat == nil {
			return nil, fmt.Errorf("plan: no catalog to resolve relation %q", n.Name)
		}
		s, ok := cat.RelationSchema(n.Name)
		if !ok {
			return nil, fmt.Errorf("plan: unknown relation %q", n.Name)
		}
		node := &scanNode{name: n.Name}
		node.schema = s
		node.est = defaultRelationCard
		if pl.Cards != nil {
			if c, ok := pl.Cards.RelationCardinality(n.Name); ok {
				node.est = float64(c)
				node.exactEst = true
			}
		}
		node.capHint = node.est
		if d, ok := pl.Cards.(DistinctCardinalitySource); ok {
			if c, ok := d.RelationDistinctCount(n.Name); ok {
				node.capHint = float64(c)
				node.ndvHint = float64(c)
			}
		}
		node.colStats = pl.scanColStats(n.Name, s.Arity())
		return node, nil

	case algebra.Literal:
		s, err := n.Schema(cat)
		if err != nil {
			return nil, err
		}
		node := &valuesNode{rows: n.Rows}
		node.schema = s
		node.est = float64(len(n.Rows))
		node.exactEst = true
		node.capHint = node.est
		return node, nil

	case algebra.Select:
		if n.Cond == nil {
			return nil, fmt.Errorf("%w: select without a condition", algebra.ErrPlan)
		}
		// A selection directly above a product or join is a join in disguise:
		// fold the condition in so its equality conjuncts can hash.
		switch in := n.Input.(type) {
		case algebra.Product:
			return pl.compileJoin(n.Cond, in.Left, in.Right, cat)
		case algebra.Join:
			if in.Cond == nil {
				return nil, fmt.Errorf("%w: join without a condition", algebra.ErrPlan)
			}
			return pl.compileJoin(scalar.And{Left: in.Cond, Right: n.Cond}, in.Left, in.Right, cat)
		}
		input, err := pl.compile(n.Input, cat)
		if err != nil {
			return nil, err
		}
		if err := n.Cond.Validate(input.Schema()); err != nil {
			return nil, fmt.Errorf("%w: %v", algebra.ErrPlan, err)
		}
		return pl.makeFilter(n.Cond, input), nil

	case algebra.Project:
		input, err := pl.compile(n.Input, cat)
		if err != nil {
			return nil, err
		}
		if len(n.Columns) == 0 {
			return nil, fmt.Errorf("%w: projection with an empty attribute list", algebra.ErrPlan)
		}
		s, err := input.Schema().Project(n.Columns)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", algebra.ErrPlan, err)
		}
		node := &projectNode{cols: n.Columns, input: input}
		node.schema = s
		node.est = input.Estimate()
		node.capHint = input.meta().capHint
		if in := input.meta().colStats; in != nil {
			cs := make([]colStat, len(n.Columns))
			for i, c := range n.Columns {
				if c >= 0 && c < len(in) {
					cs[i] = in[c]
				}
			}
			node.colStats = cs
		}
		return node, nil

	case algebra.ExtProject:
		input, err := pl.compile(n.Input, cat)
		if err != nil {
			return nil, err
		}
		s, err := algebra.NewExtProject(n.Items, n.Names, schemaExpr{input.Schema()}).Schema(nil)
		if err != nil {
			return nil, err
		}
		node := &extProjectNode{items: n.Items, input: input}
		node.schema = s
		node.est = input.Estimate()
		node.capHint = input.meta().capHint
		if in := input.meta().colStats; in != nil {
			cs := make([]colStat, len(n.Items))
			for i, item := range n.Items {
				if a, ok := item.(scalar.Attr); ok && a.Index >= 0 && a.Index < len(in) {
					cs[i] = in[a.Index]
				}
			}
			node.colStats = cs
		}
		return node, nil

	case algebra.Product:
		return pl.compileJoin(nil, n.Left, n.Right, cat)

	case algebra.Join:
		if n.Cond == nil {
			return nil, fmt.Errorf("%w: join without a condition", algebra.ErrPlan)
		}
		return pl.compileJoin(n.Cond, n.Left, n.Right, cat)

	case algebra.Union:
		left, right, s, err := pl.compilePair("union", n.Left, n.Right, cat)
		if err != nil {
			return nil, err
		}
		node := &unionNode{left: left, right: right}
		node.schema = s
		node.est = left.Estimate() + right.Estimate()
		node.capHint = left.meta().capHint + right.meta().capHint
		return node, nil

	case algebra.Difference:
		left, right, s, err := pl.compilePair("diff", n.Left, n.Right, cat)
		if err != nil {
			return nil, err
		}
		node := &differenceNode{left: left, right: right}
		node.schema = s
		node.est = left.Estimate()
		node.capHint = node.est
		return node, nil

	case algebra.Intersect:
		left, right, s, err := pl.compilePair("intersect", n.Left, n.Right, cat)
		if err != nil {
			return nil, err
		}
		node := &intersectNode{left: left, right: right}
		node.schema = s
		node.est = min(left.Estimate(), right.Estimate())
		node.capHint = node.est
		return node, nil

	case algebra.Unique:
		input, err := pl.compile(n.Input, cat)
		if err != nil {
			return nil, err
		}
		node := &uniqueNode{input: input}
		node.schema = input.Schema()
		node.est = input.Estimate() * uniqueReduction
		node.capHint = input.meta().capHint
		node.colStats = clampCols(append([]colStat(nil), input.meta().colStats...), node.est)
		return node, nil

	case algebra.GroupBy:
		input, err := pl.compile(n.Input, cat)
		if err != nil {
			return nil, err
		}
		gb := n
		gb.Input = schemaExpr{input.Schema()}
		s, err := gb.Schema(nil)
		if err != nil {
			return nil, err
		}
		node := &hashAggNode{gb: groupSpec{groupCols: n.GroupCols, aggs: n.Aggs, outSchema: s}, input: input}
		node.schema = s
		node.est = input.Estimate() * groupReduction
		if len(n.GroupCols) == 0 {
			node.est = 1
		}
		node.capHint = node.est
		// Pre-aggregation reduction estimate: a group is a distinct projection
		// of the input, so the input's distinct-tuple hint (fed by
		// RelationDistinctCount for base scans) bounds the group count.  The
		// hint sizes the group table and drives the exchange pass's choice
		// between the one-phase and two-phase parallel aggregate shapes.
		if hint := input.meta().capHint; hint > 0 {
			if len(n.GroupCols) >= input.Schema().Arity() {
				// Grouping on every attribute: groups are exactly the distinct
				// input tuples — no pre-aggregation reduction at all.
				node.capHint = hint
			} else if node.capHint > hint {
				node.capHint = hint
			}
		}
		// Per-column statistics sharpen the hint further: the group count is
		// at most the product of the grouping columns' distinct-value
		// estimates (and at least informative when that product is large —
		// high-cardinality groupings gain nothing from a partial phase, which
		// is exactly what twoPhaseProfitable needs to see).
		if len(n.GroupCols) > 0 {
			if hint, ok := groupCapHint(n.GroupCols, input.meta().colStats); ok {
				if hint > input.Estimate() {
					hint = input.Estimate()
				}
				node.capHint = hint
				node.est = hint
			}
		}
		if in := input.meta().colStats; in != nil {
			cs := make([]colStat, s.Arity())
			for i, gc := range n.GroupCols {
				if i < len(cs) && gc >= 0 && gc < len(in) {
					cs[i] = in[gc]
				}
			}
			node.colStats = clampCols(cs, node.est)
		}
		return node, nil

	case algebra.TClose:
		input, err := pl.compile(n.Input, cat)
		if err != nil {
			return nil, err
		}
		s, err := algebra.NewTClose(schemaExpr{input.Schema()}).Schema(nil)
		if err != nil {
			return nil, err
		}
		node := &tcloseNode{input: input}
		node.schema = s
		node.est = input.Estimate() * transitiveBlowup
		node.capHint = node.est
		return node, nil

	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

// compilePair compiles the operands of a union-compatible binary operator and
// checks their compatibility.
func (pl *Planner) compilePair(op string, le, re algebra.Expr, cat algebra.Catalog) (left, right Node, s schema.Relation, err error) {
	left, err = pl.compile(le, cat)
	if err != nil {
		return nil, nil, schema.Relation{}, err
	}
	right, err = pl.compile(re, cat)
	if err != nil {
		return nil, nil, schema.Relation{}, err
	}
	if !left.Schema().Compatible(right.Schema()) {
		return nil, nil, schema.Relation{},
			fmt.Errorf("plan: %s applied to incompatible schemas %s and %s", op, left.Schema(), right.Schema())
	}
	return left, right, left.Schema(), nil
}

// compileJoin plans E1 ⋈φ E2 (and σφ(E1 × E2), which is the same thing by
// Theorem 3.1).  A nil condition is a bare Cartesian product.  When the join
// is the top of a larger join tree, the cost-based enumerator (joinorder.go)
// searches for a cheaper evaluation order first; the written order is the
// fallback.
func (pl *Planner) compileJoin(cond scalar.Predicate, le, re algebra.Expr, cat algebra.Catalog) (Node, error) {
	if node, ok, err := pl.enumerateJoinOrder(cond, le, re, cat); err != nil {
		return nil, err
	} else if ok {
		return node, nil
	}
	left, err := pl.compile(le, cat)
	if err != nil {
		return nil, err
	}
	right, err := pl.compile(re, cat)
	if err != nil {
		return nil, err
	}
	return pl.makeJoin(cond, left, right)
}

// makeFilter builds a selection node over a compiled input, estimating its
// selectivity from the input's column statistics when available.
func (pl *Planner) makeFilter(cond scalar.Predicate, input Node) Node {
	node := &filterNode{pred: cond, input: input}
	node.schema = input.Schema()
	sel, known := predSelectivity(cond, input.meta().colStats)
	if !known {
		sel = selectionSelectivity
	}
	node.est = input.Estimate() * sel
	node.capHint = node.est
	node.colStats = clampCols(append([]colStat(nil), input.meta().colStats...), node.est)
	return node
}

// makeJoin builds the physical join of two compiled operands under the given
// condition (nil for a bare product): a hash join when an equality conjunct
// links the sides, nested loops otherwise.  Build side, output estimate, and
// capacity hints come from the operands' statistics.
func (pl *Planner) makeJoin(cond scalar.Predicate, left, right Node) (Node, error) {
	outSchema := left.Schema().Concat(right.Schema())
	outCols := concatCols(left.meta().colStats, right.meta().colStats)

	if cond == nil {
		node := &nestedLoopNode{left: left, right: right, innerRight: right.Estimate() <= left.Estimate()}
		node.schema = outSchema
		node.est = left.Estimate() * right.Estimate()
		node.capHint = node.est
		node.colStats = clampCols(outCols, node.est)
		return node, nil
	}
	if err := cond.Validate(outSchema); err != nil {
		return nil, fmt.Errorf("plan: %v", err)
	}

	leftCols, rightCols, residual := equiCols(cond, left.Schema().Arity())
	sel := joinPairSelectivity(leftCols, rightCols, left.meta().colStats, right.meta().colStats)
	est := left.Estimate() * right.Estimate() * sel
	if len(leftCols) == 0 {
		node := &nestedLoopNode{left: left, right: right, cond: cond, innerRight: right.Estimate() <= left.Estimate()}
		node.schema = outSchema
		node.est = est
		node.capHint = est
		node.colStats = clampCols(outCols, node.est)
		return node, nil
	}
	node := &hashJoinNode{
		left:      left,
		right:     right,
		leftCols:  leftCols,
		rightCols: rightCols,
		buildLeft: left.Estimate() < right.Estimate(),
	}
	if len(residual) > 0 {
		node.residual = scalar.NewAnd(residual...)
	}
	node.schema = outSchema
	node.est = est
	// Size the join output by its probe side — the classic one-match-per-probe
	// heuristic — rather than by the selectivity-based estimate, which can be
	// off by the full key-range factor.
	probe := right
	if !node.buildLeft {
		probe = left
	}
	node.capHint = probe.meta().capHint
	node.colStats = clampCols(outCols, node.est)
	return node, nil
}

// equiCols extracts from a join condition the pairs of attribute positions
// (left input position, right input position) connected by top-level equality
// conjuncts, plus the residual conjuncts that still need per-pair evaluation.
// leftArity is the arity of the left operand; positions ≥ leftArity address
// the right operand in the concatenated schema.
func equiCols(cond scalar.Predicate, leftArity int) (leftCols, rightCols []int, residual []scalar.Predicate) {
	for _, c := range scalar.Conjuncts(cond) {
		cmp, ok := c.(scalar.Compare)
		if !ok || cmp.Op != value.CmpEq {
			residual = append(residual, c)
			continue
		}
		la, lok := cmp.Left.(scalar.Attr)
		ra, rok := cmp.Right.(scalar.Attr)
		if !lok || !rok {
			residual = append(residual, c)
			continue
		}
		switch {
		case la.Index < leftArity && ra.Index >= leftArity:
			leftCols = append(leftCols, la.Index)
			rightCols = append(rightCols, ra.Index-leftArity)
		case ra.Index < leftArity && la.Index >= leftArity:
			leftCols = append(leftCols, ra.Index)
			rightCols = append(rightCols, la.Index-leftArity)
		default:
			residual = append(residual, c)
		}
	}
	return leftCols, rightCols, residual
}
