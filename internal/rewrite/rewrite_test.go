package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"mra/internal/algebra"
	"mra/internal/eval"
	"mra/internal/multiset"
	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

func beerCatalog() algebra.MapCatalog {
	return algebra.MapCatalog{
		"beer": schema.NewRelation("beer",
			schema.Attribute{Name: "name", Type: value.KindString},
			schema.Attribute{Name: "brewery", Type: value.KindString},
			schema.Attribute{Name: "alcperc", Type: value.KindFloat},
		),
		"brewery": schema.NewRelation("brewery",
			schema.Attribute{Name: "name", Type: value.KindString},
			schema.Attribute{Name: "city", Type: value.KindString},
			schema.Attribute{Name: "country", Type: value.KindString},
		),
	}
}

func TestSelectProductToJoin(t *testing.T) {
	cat := beerCatalog()
	expr := algebra.NewSelect(scalar.Eq(1, 3),
		algebra.NewProduct(algebra.NewRel("beer"), algebra.NewRel("brewery")))
	out, ok := (SelectProductToJoin{}).Apply(expr, cat)
	if !ok {
		t.Fatal("rule must fire")
	}
	if _, isJoin := out.(algebra.Join); !isJoin {
		t.Fatalf("rewrite produced %T", out)
	}
	// Not applicable elsewhere.
	if _, ok := (SelectProductToJoin{}).Apply(algebra.NewRel("beer"), cat); ok {
		t.Error("rule must not fire on a leaf")
	}
	if _, ok := (SelectProductToJoin{}).Apply(algebra.NewSelect(scalar.True{}, algebra.NewRel("beer")), cat); ok {
		t.Error("rule must not fire on a selection over a non-product")
	}
}

func TestMergeSelections(t *testing.T) {
	cat := beerCatalog()
	p := scalar.NewCompare(value.CmpGt, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(5)))
	q := scalar.NewCompare(value.CmpEq, scalar.NewAttr(1), scalar.NewConst(value.NewString("guineken")))
	expr := algebra.NewSelect(p, algebra.NewSelect(q, algebra.NewRel("beer")))
	out, ok := (MergeSelections{}).Apply(expr, cat)
	if !ok {
		t.Fatal("rule must fire")
	}
	sel, isSel := out.(algebra.Select)
	if !isSel {
		t.Fatalf("rewrite produced %T", out)
	}
	if _, inner := sel.Input.(algebra.Select); inner {
		t.Error("selection cascade must collapse")
	}
	if _, ok := (MergeSelections{}).Apply(algebra.NewSelect(p, algebra.NewRel("beer")), cat); ok {
		t.Error("rule must not fire on a single selection")
	}
	if _, ok := (MergeSelections{}).Apply(algebra.NewRel("beer"), cat); ok {
		t.Error("rule must not fire on a leaf")
	}
}

func TestPushSelectionAndProjectionIntoUnion(t *testing.T) {
	cat := beerCatalog()
	pred := scalar.NewCompare(value.CmpGt, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(5)))
	u := algebra.NewUnion(algebra.NewRel("beer"), algebra.NewRel("beer"))

	selExpr := algebra.NewSelect(pred, u)
	out, ok := (PushSelectionIntoUnion{}).Apply(selExpr, cat)
	if !ok {
		t.Fatal("selection rule must fire")
	}
	if _, isUnion := out.(algebra.Union); !isUnion {
		t.Fatalf("selection pushdown produced %T", out)
	}
	if _, ok := (PushSelectionIntoUnion{}).Apply(algebra.NewSelect(pred, algebra.NewRel("beer")), cat); ok {
		t.Error("selection rule must not fire over a non-union")
	}
	if _, ok := (PushSelectionIntoUnion{}).Apply(algebra.NewRel("beer"), cat); ok {
		t.Error("selection rule must not fire on a leaf")
	}

	projExpr := algebra.NewProject([]int{0}, u)
	out2, ok := (PushProjectionIntoUnion{}).Apply(projExpr, cat)
	if !ok {
		t.Fatal("projection rule must fire")
	}
	if _, isUnion := out2.(algebra.Union); !isUnion {
		t.Fatalf("projection pushdown produced %T", out2)
	}
	if _, ok := (PushProjectionIntoUnion{}).Apply(algebra.NewProject([]int{0}, algebra.NewRel("beer")), cat); ok {
		t.Error("projection rule must not fire over a non-union")
	}
	if _, ok := (PushProjectionIntoUnion{}).Apply(algebra.NewRel("beer"), cat); ok {
		t.Error("projection rule must not fire on a leaf")
	}
}

func TestDifferenceToIntersect(t *testing.T) {
	cat := beerCatalog()
	e1, e2 := algebra.NewRel("beer"), algebra.NewUnique(algebra.NewRel("beer"))
	expr := algebra.NewDifference(e1, algebra.NewDifference(e1, e2))
	out, ok := (DifferenceToIntersect{}).Apply(expr, cat)
	if !ok {
		t.Fatal("rule must fire")
	}
	inter, isInter := out.(algebra.Intersect)
	if !isInter {
		t.Fatalf("rewrite produced %T", out)
	}
	if inter.Right.String() != e2.String() {
		t.Error("intersection must keep the inner difference's right operand")
	}
	// Mismatched E1 must not fire.
	other := algebra.NewDifference(e2, algebra.NewDifference(e1, e2))
	if _, ok := (DifferenceToIntersect{}).Apply(other, cat); ok {
		t.Error("rule must not fire when the outer and inner left operands differ")
	}
	if _, ok := (DifferenceToIntersect{}).Apply(algebra.NewDifference(e1, e2), cat); ok {
		t.Error("rule must not fire on a plain difference")
	}
	if _, ok := (DifferenceToIntersect{}).Apply(algebra.NewRel("beer"), cat); ok {
		t.Error("rule must not fire on a leaf")
	}
}

func TestPushSelectionIntoJoin(t *testing.T) {
	cat := beerCatalog()
	// σ_{country='netherlands'}(beer ⋈_{%2=%4} brewery): the country conjunct
	// references only the right operand and must sink below the join.
	cond := scalar.NewCompare(value.CmpEq, scalar.NewAttr(5), scalar.NewConst(value.NewString("netherlands")))
	join := algebra.NewJoin(scalar.Eq(1, 3), algebra.NewRel("beer"), algebra.NewRel("brewery"))
	expr := algebra.NewSelect(cond, join)
	out, ok := (PushSelectionIntoJoin{}).Apply(expr, cat)
	if !ok {
		t.Fatal("rule must fire")
	}
	j, isJoin := out.(algebra.Join)
	if !isJoin {
		t.Fatalf("rewrite produced %T", out)
	}
	rightSel, isSel := j.Right.(algebra.Select)
	if !isSel {
		t.Fatalf("right operand should become a selection, got %T", j.Right)
	}
	// The pushed conjunct must be rebased to the brewery relation's own
	// positions: country is attribute %3 there.
	if !strings.Contains(rightSel.Cond.String(), "%3 = 'netherlands'") {
		t.Errorf("pushed conjunct not rebased: %s", rightSel.Cond)
	}
	if err := algebra.Validate(out, cat); err != nil {
		t.Errorf("rewritten expression must validate: %v", err)
	}

	// Left-only conjunct sinks to the left without rebasing.
	leftCond := scalar.NewCompare(value.CmpGt, scalar.NewAttr(2), scalar.NewConst(value.NewFloat(5)))
	out2, ok := (PushSelectionIntoJoin{}).Apply(algebra.NewSelect(leftCond, join), cat)
	if !ok {
		t.Fatal("left pushdown must fire")
	}
	j2 := out2.(algebra.Join)
	if _, isSel := j2.Left.(algebra.Select); !isSel {
		t.Errorf("left operand should become a selection, got %T", j2.Left)
	}
	if err := algebra.Validate(out2, cat); err != nil {
		t.Errorf("rewritten expression must validate: %v", err)
	}

	// A join whose condition only links both sides is left alone.
	if _, ok := (PushSelectionIntoJoin{}).Apply(join, cat); ok {
		t.Error("nothing to push: rule must not fire")
	}
	// Non-join selections are left alone.
	if _, ok := (PushSelectionIntoJoin{}).Apply(algebra.NewSelect(leftCond, algebra.NewRel("beer")), cat); ok {
		t.Error("rule must not fire on a selection over a leaf")
	}
	if _, ok := (PushSelectionIntoJoin{}).Apply(algebra.NewRel("beer"), cat); ok {
		t.Error("rule must not fire on a leaf")
	}
	// Direct Join case: conditions referencing one side only sink too.
	direct := algebra.NewJoin(scalar.NewAnd(scalar.Eq(1, 3), leftCond), algebra.NewRel("beer"), algebra.NewRel("brewery"))
	out3, ok := (PushSelectionIntoJoin{}).Apply(direct, cat)
	if !ok {
		t.Fatal("direct join pushdown must fire")
	}
	if err := algebra.Validate(out3, cat); err != nil {
		t.Errorf("rewritten join must validate: %v", err)
	}
	// Unknown relation: schema failure keeps the node unchanged.
	broken := algebra.NewJoin(scalar.Eq(0, 1), algebra.NewRel("missing"), algebra.NewRel("brewery"))
	if _, ok := (PushSelectionIntoJoin{}).Apply(broken, cat); ok {
		t.Error("rule must not fire when schemas cannot be resolved")
	}
}

func TestPushProjectionIntoGroupBy(t *testing.T) {
	cat := beerCatalog()
	join := algebra.NewJoin(scalar.Eq(1, 3), algebra.NewRel("beer"), algebra.NewRel("brewery"))
	g := algebra.NewGroupBy([]int{5}, algebra.AggAvg, 2, join)
	out, ok := (PushProjectionIntoGroupBy{}).Apply(g, cat)
	if !ok {
		t.Fatal("rule must fire")
	}
	ng, isG := out.(algebra.GroupBy)
	if !isG {
		t.Fatalf("rewrite produced %T", out)
	}
	proj, isProj := ng.Input.(algebra.Project)
	if !isProj {
		t.Fatalf("group-by input should become a projection, got %T", ng.Input)
	}
	if len(proj.Columns) != 2 || proj.Columns[0] != 5 || proj.Columns[1] != 2 {
		t.Errorf("projected columns = %v, want [5 2]", proj.Columns)
	}
	if len(ng.GroupCols) != 1 || ng.GroupCols[0] != 0 || ng.Aggs[0].Col != 1 {
		t.Errorf("remapped group-by = %+v", ng)
	}
	if err := algebra.Validate(out, cat); err != nil {
		t.Errorf("rewritten group-by must validate: %v", err)
	}
	// Rule must not fire again (input already minimal).
	if _, ok := (PushProjectionIntoGroupBy{}).Apply(out, cat); ok {
		t.Error("rule must be idempotent on its own output")
	}
	// Aggregate column inside the grouping list: no extra column added.
	g2 := algebra.NewGroupBy([]int{1}, algebra.AggCount, 1, join)
	out2, ok := (PushProjectionIntoGroupBy{}).Apply(g2, cat)
	if !ok {
		t.Fatal("rule must fire for CNT on a grouping column")
	}
	if cols := out2.(algebra.GroupBy).Input.(algebra.Project).Columns; len(cols) != 1 {
		t.Errorf("projection should keep exactly the grouping column, got %v", cols)
	}
	// Not applicable cases.
	if _, ok := (PushProjectionIntoGroupBy{}).Apply(algebra.NewRel("beer"), cat); ok {
		t.Error("rule must not fire on a leaf")
	}
	if _, ok := (PushProjectionIntoGroupBy{}).Apply(algebra.NewGroupBy([]int{0, 1}, algebra.AggAvg, 2, algebra.NewRel("beer")), cat); ok {
		t.Error("rule must not fire when every column is needed")
	}
	if _, ok := (PushProjectionIntoGroupBy{}).Apply(algebra.NewGroupBy([]int{0}, algebra.AggCount, 0, algebra.NewRel("missing")), cat); ok {
		t.Error("rule must not fire when the input schema cannot be resolved")
	}
}

func TestEliminationRules(t *testing.T) {
	cat := beerCatalog()
	dd := algebra.NewUnique(algebra.NewUnique(algebra.NewRel("beer")))
	out, ok := (EliminateDoubleUnique{}).Apply(dd, cat)
	if !ok {
		t.Fatal("double-unique rule must fire")
	}
	if _, still := out.(algebra.Unique); !still {
		t.Errorf("result should stay a single unique, got %T", out)
	}
	if _, ok := (EliminateDoubleUnique{}).Apply(algebra.NewUnique(algebra.NewRel("beer")), cat); ok {
		t.Error("single unique must stay")
	}
	if _, ok := (EliminateDoubleUnique{}).Apply(algebra.NewRel("beer"), cat); ok {
		t.Error("leaf must stay")
	}

	idp := algebra.NewProject([]int{0, 1, 2}, algebra.NewRel("beer"))
	out2, ok := (EliminateIdentityProject{}).Apply(idp, cat)
	if !ok {
		t.Fatal("identity projection rule must fire")
	}
	if _, isRel := out2.(algebra.Rel); !isRel {
		t.Errorf("identity projection should disappear, got %T", out2)
	}
	if _, ok := (EliminateIdentityProject{}).Apply(algebra.NewProject([]int{0, 2}, algebra.NewRel("beer")), cat); ok {
		t.Error("narrowing projection must stay")
	}
	if _, ok := (EliminateIdentityProject{}).Apply(algebra.NewProject([]int{2, 1, 0}, algebra.NewRel("beer")), cat); ok {
		t.Error("permuting projection must stay")
	}
	if _, ok := (EliminateIdentityProject{}).Apply(algebra.NewRel("beer"), cat); ok {
		t.Error("leaf must stay")
	}
	if _, ok := (EliminateIdentityProject{}).Apply(algebra.NewProject([]int{0}, algebra.NewRel("missing")), cat); ok {
		t.Error("unresolvable schema must keep the node")
	}
}

func TestRewriterEndToEnd(t *testing.T) {
	cat := beerCatalog()
	// The classic shape: σ_{country ∧ join}(beer × brewery) with a final
	// projection — the rewriter should produce a join with the country
	// selection pushed to the brewery side.
	cond := scalar.NewAnd(
		scalar.Eq(1, 3),
		scalar.NewCompare(value.CmpEq, scalar.NewAttr(5), scalar.NewConst(value.NewString("netherlands"))),
	)
	expr := algebra.NewProject([]int{0},
		algebra.NewSelect(cond,
			algebra.NewProduct(algebra.NewRel("beer"), algebra.NewRel("brewery"))))

	rw := NewRewriter()
	out, trace := rw.Rewrite(expr, cat)
	if len(trace) == 0 {
		t.Fatal("expected at least one rule application")
	}
	if err := algebra.Validate(out, cat); err != nil {
		t.Fatalf("rewritten expression must validate: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "join[") {
		t.Errorf("expected a join in the rewritten plan: %s", s)
	}
	if !strings.Contains(s, "select[%3 = 'netherlands'](brewery)") {
		t.Errorf("expected the country selection pushed onto brewery: %s", s)
	}
	for _, a := range trace {
		if a.Rule == "" || !strings.Contains(a.String(), "=>") {
			t.Errorf("malformed trace entry %+v", a)
		}
	}
	// Rewriting an already-optimal plan is a no-op.
	out2, trace2 := rw.Rewrite(out, cat)
	if len(trace2) != 0 {
		t.Errorf("second rewrite should be a fixpoint, applied %v", trace2)
	}
	if out2.String() != out.String() {
		t.Error("fixpoint rewrite must not change the plan")
	}
	// A rewriter with a nil rule set uses the defaults.
	out3, _ := (&Rewriter{}).Rewrite(expr, cat)
	if out3.String() != out.String() {
		t.Error("default rule set must be used when Rules is nil")
	}
}

func TestRewriteSoundnessOnRandomDatabases(t *testing.T) {
	// Soundness: the rewritten plan evaluates to the same multi-set as the
	// original on random databases.
	rng := rand.New(rand.NewSource(31))
	attrs := func(names ...string) []schema.Attribute {
		out := make([]schema.Attribute, len(names))
		for i, n := range names {
			out[i] = schema.Attribute{Name: n, Type: value.KindInt}
		}
		return out
	}
	rSchema := schema.NewRelation("r", attrs("a", "b")...)
	sSchema := schema.NewRelation("s", attrs("c", "d")...)
	newDB := func() eval.MapSource {
		r := multiset.New(rSchema)
		s := multiset.New(sSchema)
		for i := 0; i < 20; i++ {
			r.Add(tuple.Ints(int64(rng.Intn(6)), int64(rng.Intn(6))), uint64(1+rng.Intn(2)))
			s.Add(tuple.Ints(int64(rng.Intn(6)), int64(rng.Intn(6))), uint64(1+rng.Intn(2)))
		}
		return eval.MapSource{"r": r, "s": s}
	}

	joinCond := scalar.Eq(1, 2) // r.b = s.c
	leftPred := scalar.NewCompare(value.CmpGe, scalar.NewAttr(0), scalar.NewConst(value.NewInt(3)))
	rightPred := scalar.NewCompare(value.CmpLe, scalar.NewAttr(3), scalar.NewConst(value.NewInt(4)))
	exprs := []algebra.Expr{
		algebra.NewSelect(scalar.NewAnd(joinCond, leftPred, rightPred),
			algebra.NewProduct(algebra.NewRel("r"), algebra.NewRel("s"))),
		algebra.NewProject([]int{0},
			algebra.NewSelect(leftPred,
				algebra.NewUnion(algebra.NewRel("r"), algebra.NewRel("r")))),
		algebra.NewDifference(algebra.NewRel("r"), algebra.NewDifference(algebra.NewRel("r"), algebra.NewRel("r"))),
		algebra.NewGroupBy([]int{3}, algebra.AggSum, 0,
			algebra.NewJoin(joinCond, algebra.NewRel("r"), algebra.NewRel("s"))),
		algebra.NewUnique(algebra.NewUnique(algebra.NewProject([]int{0, 1}, algebra.NewRel("r")))),
		algebra.NewSelect(leftPred, algebra.NewSelect(rightPred,
			algebra.NewProduct(algebra.NewRel("r"), algebra.NewRel("s")))),
	}

	rw := NewRewriter()
	ref := eval.Reference{}
	for round := 0; round < 25; round++ {
		src := newDB()
		cat := src.Catalog()
		for _, e := range exprs {
			if err := algebra.Validate(e, cat); err != nil {
				t.Fatalf("precondition: %v", err)
			}
			opt, _ := rw.Rewrite(e, cat)
			if err := algebra.Validate(opt, cat); err != nil {
				t.Fatalf("rewritten plan invalid for %s: %v", e, err)
			}
			want, err := ref.Eval(e, src)
			if err != nil {
				t.Fatalf("eval original %s: %v", e, err)
			}
			got, err := (&eval.Engine{}).Eval(opt, src)
			if err != nil {
				t.Fatalf("eval rewritten %s: %v", opt, err)
			}
			if !want.Equal(got) {
				t.Fatalf("round %d: rewrite changed the result\noriginal:  %s\nrewritten: %s\nwant %s\ngot  %s",
					round, e, opt, want, got)
			}
		}
	}
}

func TestCostModel(t *testing.T) {
	cards := MapCardinalities{"beer": 10000, "brewery": 100}
	if c, ok := cards.RelationCardinality("beer"); !ok || c != 10000 {
		t.Error("MapCardinalities lookup")
	}
	if _, ok := cards.RelationCardinality("missing"); ok {
		t.Error("missing relation must not resolve")
	}

	prodPlan := algebra.NewSelect(scalar.Eq(1, 3),
		algebra.NewProduct(algebra.NewRel("beer"), algebra.NewRel("brewery")))
	joinPlan := algebra.NewJoin(scalar.Eq(1, 3), algebra.NewRel("beer"), algebra.NewRel("brewery"))
	if Cost(joinPlan, cards) >= Cost(prodPlan, cards) {
		t.Errorf("hash join must be cheaper than filtered product: %v vs %v",
			Cost(joinPlan, cards), Cost(prodPlan, cards))
	}

	// Pruned group-by input is cheaper than the unpruned one.
	g := algebra.NewGroupBy([]int{5}, algebra.AggAvg, 2, joinPlan)
	cat := beerCatalog()
	opt, _ := NewRewriter().Rewrite(g, cat)
	if Cost(opt, cards) > Cost(g, cards) {
		t.Errorf("rewritten plan must not cost more: %v vs %v", Cost(opt, cards), Cost(g, cards))
	}

	// Estimated cardinalities behave monotonically for the main operators.
	if EstimateCardinality(algebra.NewRel("beer"), cards) != 10000 {
		t.Error("relation cardinality estimate")
	}
	if EstimateCardinality(algebra.NewRel("unknown"), cards) != 1000 {
		t.Error("default relation cardinality estimate")
	}
	if EstimateCardinality(algebra.NewUnion(algebra.NewRel("beer"), algebra.NewRel("brewery")), cards) != 10100 {
		t.Error("union cardinality estimate")
	}
	if EstimateCardinality(algebra.NewProduct(algebra.NewRel("beer"), algebra.NewRel("brewery")), cards) != 1000000 {
		t.Error("product cardinality estimate")
	}
	sel := algebra.NewSelect(scalar.True{}, algebra.NewRel("beer"))
	if EstimateCardinality(sel, cards) >= 10000 {
		t.Error("selection must reduce the estimate")
	}
	if EstimateCardinality(algebra.NewUnique(algebra.NewRel("beer")), cards) >= 10000 {
		t.Error("unique must reduce the estimate")
	}
	if EstimateCardinality(algebra.NewGroupBy(nil, algebra.AggCount, 0, algebra.NewRel("beer")), cards) != 1 {
		t.Error("global aggregate produces one tuple")
	}
	if EstimateCardinality(algebra.NewGroupBy([]int{0}, algebra.AggCount, 0, algebra.NewRel("beer")), cards) >= 10000 {
		t.Error("grouped aggregate must reduce the estimate")
	}
	lit := algebra.Literal{Rel: schema.Anonymous(schema.Attribute{Name: "x", Type: value.KindInt}),
		Rows: [][]value.Value{{value.NewInt(1)}, {value.NewInt(2)}}}
	if EstimateCardinality(lit, cards) != 2 {
		t.Error("literal cardinality estimate")
	}
	diff := algebra.NewDifference(algebra.NewRel("beer"), algebra.NewRel("brewery"))
	if EstimateCardinality(diff, cards) != 10000 {
		t.Error("difference keeps the left estimate")
	}
	inter := algebra.NewIntersect(algebra.NewRel("beer"), algebra.NewRel("brewery"))
	if EstimateCardinality(inter, cards) != 100 {
		t.Error("intersection keeps the smaller estimate")
	}
	xp := algebra.NewExtProject([]scalar.Expr{scalar.NewAttr(0)}, nil, algebra.NewRel("beer"))
	if EstimateCardinality(xp, cards) != 10000 {
		t.Error("extended projection keeps the estimate")
	}
	tc := algebra.NewTClose(algebra.NewRel("brewery"))
	if EstimateCardinality(tc, cards) <= 100 {
		t.Error("transitive closure grows the estimate")
	}
	nonEqui := algebra.NewJoin(scalar.NewCompare(value.CmpGt, scalar.NewAttr(0), scalar.NewAttr(3)),
		algebra.NewRel("beer"), algebra.NewRel("brewery"))
	if Cost(nonEqui, cards) <= Cost(joinPlan, cards) {
		t.Error("non-equi join must cost more than a hash join")
	}
}
