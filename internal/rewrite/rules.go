// Package rewrite implements expression rewriting for query optimisation on
// the multi-set extended relational algebra (Section 3.3 of Grefen & de By,
// ICDE 1994).  Every rule encodes an expression equivalence that holds under
// bag semantics — Theorems 3.1–3.3 and the classical pushdown equivalences the
// paper notes carry over from the set-based algebra — so rewritten plans
// always produce the same multi-set as the original.
//
// The package also provides a simple cardinality-based cost model used by the
// benchmarks to rank plans and by the optimizer ablation experiment (E9).
package rewrite

import (
	"fmt"

	"mra/internal/algebra"
	"mra/internal/scalar"
)

// Rule is a single rewrite rule.  Apply inspects one node (not its children)
// and either returns a semantically equivalent replacement together with
// changed = true, or the node unchanged with changed = false.
type Rule interface {
	// Name identifies the rule in rewrite traces.
	Name() string
	// Apply attempts the rewrite at the given node.
	Apply(e algebra.Expr, cat algebra.Catalog) (algebra.Expr, bool)
}

// sameExpr reports whether two expressions are structurally identical.  The
// comparison uses the canonical String rendering, which is injective on the
// constructors used by this package.
func sameExpr(a, b algebra.Expr) bool { return a.String() == b.String() }

// SelectProductToJoin rewrites σφ(E1 × E2) into E1 ⋈φ E2 (Theorem 3.1 read
// right-to-left).  The physical engine executes joins with equality conjuncts
// as hash joins, so this rewrite is what makes the classic "push the
// selection into the product" optimisation effective.
type SelectProductToJoin struct{}

// Name implements Rule.
func (SelectProductToJoin) Name() string { return "select-product-to-join" }

// Apply implements Rule.
func (SelectProductToJoin) Apply(e algebra.Expr, _ algebra.Catalog) (algebra.Expr, bool) {
	sel, ok := e.(algebra.Select)
	if !ok {
		return e, false
	}
	prod, ok := sel.Input.(algebra.Product)
	if !ok {
		return e, false
	}
	return algebra.NewJoin(sel.Cond, prod.Left, prod.Right), true
}

// MergeSelections rewrites σp(σq(E)) into σ(q ∧ p)(E): a cascade of
// selections is a single selection on the conjunction.
type MergeSelections struct{}

// Name implements Rule.
func (MergeSelections) Name() string { return "merge-selections" }

// Apply implements Rule.
func (MergeSelections) Apply(e algebra.Expr, _ algebra.Catalog) (algebra.Expr, bool) {
	outer, ok := e.(algebra.Select)
	if !ok {
		return e, false
	}
	inner, ok := outer.Input.(algebra.Select)
	if !ok {
		return e, false
	}
	return algebra.NewSelect(scalar.And{Left: inner.Cond, Right: outer.Cond}, inner.Input), true
}

// PushSelectionIntoUnion rewrites σφ(E1 ⊎ E2) into σφ(E1) ⊎ σφ(E2)
// (Theorem 3.2, first equivalence).
type PushSelectionIntoUnion struct{}

// Name implements Rule.
func (PushSelectionIntoUnion) Name() string { return "push-selection-into-union" }

// Apply implements Rule.
func (PushSelectionIntoUnion) Apply(e algebra.Expr, _ algebra.Catalog) (algebra.Expr, bool) {
	sel, ok := e.(algebra.Select)
	if !ok {
		return e, false
	}
	u, ok := sel.Input.(algebra.Union)
	if !ok {
		return e, false
	}
	return algebra.NewUnion(
		algebra.NewSelect(sel.Cond, u.Left),
		algebra.NewSelect(sel.Cond, u.Right),
	), true
}

// PushProjectionIntoUnion rewrites πα(E1 ⊎ E2) into πα(E1) ⊎ πα(E2)
// (Theorem 3.2, second equivalence).
type PushProjectionIntoUnion struct{}

// Name implements Rule.
func (PushProjectionIntoUnion) Name() string { return "push-projection-into-union" }

// Apply implements Rule.
func (PushProjectionIntoUnion) Apply(e algebra.Expr, _ algebra.Catalog) (algebra.Expr, bool) {
	p, ok := e.(algebra.Project)
	if !ok {
		return e, false
	}
	u, ok := p.Input.(algebra.Union)
	if !ok {
		return e, false
	}
	return algebra.NewUnion(
		algebra.NewProject(p.Columns, u.Left),
		algebra.NewProject(p.Columns, u.Right),
	), true
}

// DifferenceToIntersect recognises the Theorem 3.1 encoding E1 − (E1 − E2) and
// replaces it with the native intersection operator, which the engine
// evaluates by iterating the smaller operand only.
type DifferenceToIntersect struct{}

// Name implements Rule.
func (DifferenceToIntersect) Name() string { return "difference-to-intersect" }

// Apply implements Rule.
func (DifferenceToIntersect) Apply(e algebra.Expr, _ algebra.Catalog) (algebra.Expr, bool) {
	outer, ok := e.(algebra.Difference)
	if !ok {
		return e, false
	}
	inner, ok := outer.Right.(algebra.Difference)
	if !ok {
		return e, false
	}
	if !sameExpr(outer.Left, inner.Left) {
		return e, false
	}
	return algebra.NewIntersect(outer.Left, inner.Right), true
}

// PushSelectionIntoJoin pushes conjuncts of a selection above a join (or the
// join's own condition conjuncts) that reference attributes of only one
// operand down to that operand.  This is the classical selection pushdown; it
// is sound under bag semantics because selection preserves multiplicities.
type PushSelectionIntoJoin struct{}

// Name implements Rule.
func (PushSelectionIntoJoin) Name() string { return "push-selection-into-join" }

// Apply implements Rule.
func (PushSelectionIntoJoin) Apply(e algebra.Expr, cat algebra.Catalog) (algebra.Expr, bool) {
	switch n := e.(type) {
	case algebra.Select:
		join, ok := n.Input.(algebra.Join)
		if !ok {
			return e, false
		}
		newJoin, changed := pushConjuncts(algebra.NewJoin(scalar.And{Left: join.Cond, Right: n.Cond}, join.Left, join.Right), cat)
		if !changed {
			return e, false
		}
		return newJoin, true
	case algebra.Join:
		return pushConjuncts(n, cat)
	default:
		return e, false
	}
}

// pushConjuncts splits the join condition's conjuncts into left-only,
// right-only and mixed groups and pushes the single-sided groups below the
// join as selections.
func pushConjuncts(j algebra.Join, cat algebra.Catalog) (algebra.Expr, bool) {
	ls, err := j.Left.Schema(cat)
	if err != nil {
		return j, false
	}
	leftArity := ls.Arity()
	rs, err := j.Right.Schema(cat)
	if err != nil {
		return j, false
	}
	rightArity := rs.Arity()

	var leftOnly, rightOnly, mixed []scalar.Predicate
	for _, c := range scalar.Conjuncts(j.Cond) {
		refs := c.Refs(nil)
		if len(refs) == 0 {
			mixed = append(mixed, c)
			continue
		}
		allLeft, allRight := true, true
		for _, r := range refs {
			if r >= leftArity {
				allLeft = false
			}
			if r < leftArity {
				allRight = false
			}
		}
		switch {
		case allLeft:
			leftOnly = append(leftOnly, c)
		case allRight:
			rightOnly = append(rightOnly, c)
		default:
			mixed = append(mixed, c)
		}
	}
	if len(leftOnly) == 0 && len(rightOnly) == 0 {
		return j, false
	}

	left := j.Left
	if len(leftOnly) > 0 {
		left = algebra.NewSelect(scalar.NewAnd(leftOnly...), left)
	}
	right := j.Right
	if len(rightOnly) > 0 {
		// Right-side conjuncts address the concatenated schema; rebase them to
		// the right operand's own positions.
		mapping := make(map[int]int, rightArity)
		for i := 0; i < rightArity; i++ {
			mapping[leftArity+i] = i
		}
		rebased := make([]scalar.Predicate, 0, len(rightOnly))
		for _, c := range rightOnly {
			rb, err := c.Rebase(mapping)
			if err != nil {
				return j, false
			}
			rebased = append(rebased, rb)
		}
		right = algebra.NewSelect(scalar.NewAnd(rebased...), right)
	}
	return algebra.NewJoin(scalar.NewAnd(mixed...), left, right), true
}

// PushProjectionIntoGroupBy inserts a projection onto the grouping and
// aggregated attributes directly below a group-by, shrinking the group-by's
// input width.  This is exactly the optimisation of the paper's Example 3.2:
// under bag semantics it is an equivalence; under set semantics the same
// rewrite would corrupt aggregate values.
type PushProjectionIntoGroupBy struct{}

// Name implements Rule.
func (PushProjectionIntoGroupBy) Name() string { return "push-projection-into-groupby" }

// Apply implements Rule.
func (PushProjectionIntoGroupBy) Apply(e algebra.Expr, cat algebra.Catalog) (algebra.Expr, bool) {
	g, ok := e.(algebra.GroupBy)
	if !ok {
		return e, false
	}
	in, err := g.Input.Schema(cat)
	if err != nil {
		return e, false
	}
	// Needed columns: the grouping attributes plus every aggregated attribute
	// (shared attributes are projected once).
	needed := append([]int(nil), g.GroupCols...)
	posOf := func(c int) int {
		for i, n := range needed {
			if n == c {
				return i
			}
		}
		needed = append(needed, c)
		return len(needed) - 1
	}
	newAggs := make([]algebra.AggSpec, len(g.Aggs))
	for i, sp := range g.Aggs {
		sp.Col = posOf(sp.Col)
		newAggs[i] = sp
	}
	if len(needed) >= in.Arity() {
		return e, false // nothing to prune
	}
	newGroupCols := make([]int, len(g.GroupCols))
	for i := range g.GroupCols {
		newGroupCols[i] = i
	}
	return algebra.GroupBy{
		GroupCols: newGroupCols,
		Aggs:      newAggs,
		Input:     algebra.NewProject(needed, g.Input),
	}, true
}

// EliminateDoubleUnique rewrites δ(δE) into δE: duplicate elimination is
// idempotent.
type EliminateDoubleUnique struct{}

// Name implements Rule.
func (EliminateDoubleUnique) Name() string { return "eliminate-double-unique" }

// Apply implements Rule.
func (EliminateDoubleUnique) Apply(e algebra.Expr, _ algebra.Catalog) (algebra.Expr, bool) {
	outer, ok := e.(algebra.Unique)
	if !ok {
		return e, false
	}
	if _, ok := outer.Input.(algebra.Unique); !ok {
		return e, false
	}
	return outer.Input, true
}

// EliminateIdentityProject removes a projection that keeps all attributes of
// its input in their original order: π_{%1..%n}(E) = E.
type EliminateIdentityProject struct{}

// Name implements Rule.
func (EliminateIdentityProject) Name() string { return "eliminate-identity-project" }

// Apply implements Rule.
func (EliminateIdentityProject) Apply(e algebra.Expr, cat algebra.Catalog) (algebra.Expr, bool) {
	p, ok := e.(algebra.Project)
	if !ok {
		return e, false
	}
	in, err := p.Input.Schema(cat)
	if err != nil {
		return e, false
	}
	if len(p.Columns) != in.Arity() {
		return e, false
	}
	for i, c := range p.Columns {
		if c != i {
			return e, false
		}
	}
	return p.Input, true
}

// DefaultRules returns the standard rule set in application order.
func DefaultRules() []Rule {
	return []Rule{
		MergeSelections{},
		SelectProductToJoin{},
		PushSelectionIntoUnion{},
		PushProjectionIntoUnion{},
		PushSelectionIntoJoin{},
		DifferenceToIntersect{},
		PushProjectionIntoGroupBy{},
		EliminateDoubleUnique{},
		EliminateIdentityProject{},
	}
}

// Applied records one rule application for explain-style traces.
type Applied struct {
	// Rule is the applied rule's name.
	Rule string
	// Before and After are the node renderings around the application.
	Before, After string
}

// String renders the application as "rule: before => after".
func (a Applied) String() string {
	return fmt.Sprintf("%s: %s => %s", a.Rule, a.Before, a.After)
}
