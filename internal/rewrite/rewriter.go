package rewrite

import (
	"mra/internal/algebra"
	"mra/internal/plan"
)

// Rewriter applies a rule set bottom-up until no rule applies anywhere in the
// expression (or the iteration bound is hit, which guards against accidental
// rule cycles).
type Rewriter struct {
	// Rules is the ordered rule set; DefaultRules() if nil.
	Rules []Rule
	// MaxPasses bounds the number of whole-tree passes; 8 if zero.
	MaxPasses int
}

// NewRewriter returns a rewriter with the default rule set.
func NewRewriter() *Rewriter { return &Rewriter{Rules: DefaultRules()} }

// Rewrite returns the optimised expression and the trace of rule
// applications, in order.
func (rw *Rewriter) Rewrite(e algebra.Expr, cat algebra.Catalog) (algebra.Expr, []Applied) {
	rules := rw.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	maxPasses := rw.MaxPasses
	if maxPasses == 0 {
		maxPasses = 8
	}
	var trace []Applied
	cur := e
	for pass := 0; pass < maxPasses; pass++ {
		next, changed := rewriteNode(cur, cat, rules, &trace)
		cur = next
		if !changed {
			break
		}
	}
	return cur, trace
}

// rewriteNode rewrites the children first, then repeatedly applies rules at
// this node until none fires.
func rewriteNode(e algebra.Expr, cat algebra.Catalog, rules []Rule, trace *[]Applied) (algebra.Expr, bool) {
	node, childChanged := rebuildChildren(e, cat, rules, trace)
	changed := childChanged
	for {
		fired := false
		for _, r := range rules {
			next, ok := r.Apply(node, cat)
			if !ok {
				continue
			}
			*trace = append(*trace, Applied{Rule: r.Name(), Before: node.String(), After: next.String()})
			node = next
			fired = true
			changed = true
			// A rewrite may expose new opportunities below the new node.
			node, _ = rebuildChildren(node, cat, rules, trace)
			break
		}
		if !fired {
			return node, changed
		}
	}
}

// rebuildChildren rewrites an expression's children and reassembles the node.
func rebuildChildren(e algebra.Expr, cat algebra.Catalog, rules []Rule, trace *[]Applied) (algebra.Expr, bool) {
	switch n := e.(type) {
	case algebra.Union:
		l, lc := rewriteNode(n.Left, cat, rules, trace)
		r, rc := rewriteNode(n.Right, cat, rules, trace)
		return algebra.NewUnion(l, r), lc || rc
	case algebra.Difference:
		l, lc := rewriteNode(n.Left, cat, rules, trace)
		r, rc := rewriteNode(n.Right, cat, rules, trace)
		return algebra.NewDifference(l, r), lc || rc
	case algebra.Intersect:
		l, lc := rewriteNode(n.Left, cat, rules, trace)
		r, rc := rewriteNode(n.Right, cat, rules, trace)
		return algebra.NewIntersect(l, r), lc || rc
	case algebra.Product:
		l, lc := rewriteNode(n.Left, cat, rules, trace)
		r, rc := rewriteNode(n.Right, cat, rules, trace)
		return algebra.NewProduct(l, r), lc || rc
	case algebra.Join:
		l, lc := rewriteNode(n.Left, cat, rules, trace)
		r, rc := rewriteNode(n.Right, cat, rules, trace)
		return algebra.NewJoin(n.Cond, l, r), lc || rc
	case algebra.Select:
		in, c := rewriteNode(n.Input, cat, rules, trace)
		return algebra.NewSelect(n.Cond, in), c
	case algebra.Project:
		in, c := rewriteNode(n.Input, cat, rules, trace)
		return algebra.NewProject(n.Columns, in), c
	case algebra.ExtProject:
		in, c := rewriteNode(n.Input, cat, rules, trace)
		return algebra.NewExtProject(n.Items, n.Names, in), c
	case algebra.Unique:
		in, c := rewriteNode(n.Input, cat, rules, trace)
		return algebra.NewUnique(in), c
	case algebra.GroupBy:
		in, c := rewriteNode(n.Input, cat, rules, trace)
		return algebra.GroupBy{GroupCols: n.GroupCols, Aggs: n.Aggs, Input: in}, c
	case algebra.TClose:
		in, c := rewriteNode(n.Input, cat, rules, trace)
		return algebra.NewTClose(in), c
	default:
		// Leaves (Rel, Literal) and unknown nodes are returned unchanged.
		return e, false
	}
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

// The cardinality-based cost model moved to internal/plan, where the planner
// feeds it real base-table cardinalities; the aliases below keep the historic
// rewrite-side API for the benchmarks and the optimizer ablation experiment.

// CardinalitySource provides base-relation cardinalities for the cost model.
type CardinalitySource = plan.CardinalitySource

// MapCardinalities is a CardinalitySource backed by a map.
type MapCardinalities = plan.MapCardinalities

// Cost estimates the total processing cost of an expression: the sum over all
// operators of the tuples they must inspect plus the tuples they emit.
func Cost(e algebra.Expr, cards CardinalitySource) float64 { return plan.Cost(e, cards) }

// EstimateCardinality estimates the output cardinality of an expression.
func EstimateCardinality(e algebra.Expr, cards CardinalitySource) float64 {
	return plan.EstimateCardinality(e, cards)
}
