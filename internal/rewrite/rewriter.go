package rewrite

import (
	"mra/internal/algebra"
	"mra/internal/scalar"
)

// Rewriter applies a rule set bottom-up until no rule applies anywhere in the
// expression (or the iteration bound is hit, which guards against accidental
// rule cycles).
type Rewriter struct {
	// Rules is the ordered rule set; DefaultRules() if nil.
	Rules []Rule
	// MaxPasses bounds the number of whole-tree passes; 8 if zero.
	MaxPasses int
}

// NewRewriter returns a rewriter with the default rule set.
func NewRewriter() *Rewriter { return &Rewriter{Rules: DefaultRules()} }

// Rewrite returns the optimised expression and the trace of rule
// applications, in order.
func (rw *Rewriter) Rewrite(e algebra.Expr, cat algebra.Catalog) (algebra.Expr, []Applied) {
	rules := rw.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	maxPasses := rw.MaxPasses
	if maxPasses == 0 {
		maxPasses = 8
	}
	var trace []Applied
	cur := e
	for pass := 0; pass < maxPasses; pass++ {
		next, changed := rewriteNode(cur, cat, rules, &trace)
		cur = next
		if !changed {
			break
		}
	}
	return cur, trace
}

// rewriteNode rewrites the children first, then repeatedly applies rules at
// this node until none fires.
func rewriteNode(e algebra.Expr, cat algebra.Catalog, rules []Rule, trace *[]Applied) (algebra.Expr, bool) {
	node, childChanged := rebuildChildren(e, cat, rules, trace)
	changed := childChanged
	for {
		fired := false
		for _, r := range rules {
			next, ok := r.Apply(node, cat)
			if !ok {
				continue
			}
			*trace = append(*trace, Applied{Rule: r.Name(), Before: node.String(), After: next.String()})
			node = next
			fired = true
			changed = true
			// A rewrite may expose new opportunities below the new node.
			node, _ = rebuildChildren(node, cat, rules, trace)
			break
		}
		if !fired {
			return node, changed
		}
	}
}

// rebuildChildren rewrites an expression's children and reassembles the node.
func rebuildChildren(e algebra.Expr, cat algebra.Catalog, rules []Rule, trace *[]Applied) (algebra.Expr, bool) {
	switch n := e.(type) {
	case algebra.Union:
		l, lc := rewriteNode(n.Left, cat, rules, trace)
		r, rc := rewriteNode(n.Right, cat, rules, trace)
		return algebra.NewUnion(l, r), lc || rc
	case algebra.Difference:
		l, lc := rewriteNode(n.Left, cat, rules, trace)
		r, rc := rewriteNode(n.Right, cat, rules, trace)
		return algebra.NewDifference(l, r), lc || rc
	case algebra.Intersect:
		l, lc := rewriteNode(n.Left, cat, rules, trace)
		r, rc := rewriteNode(n.Right, cat, rules, trace)
		return algebra.NewIntersect(l, r), lc || rc
	case algebra.Product:
		l, lc := rewriteNode(n.Left, cat, rules, trace)
		r, rc := rewriteNode(n.Right, cat, rules, trace)
		return algebra.NewProduct(l, r), lc || rc
	case algebra.Join:
		l, lc := rewriteNode(n.Left, cat, rules, trace)
		r, rc := rewriteNode(n.Right, cat, rules, trace)
		return algebra.NewJoin(n.Cond, l, r), lc || rc
	case algebra.Select:
		in, c := rewriteNode(n.Input, cat, rules, trace)
		return algebra.NewSelect(n.Cond, in), c
	case algebra.Project:
		in, c := rewriteNode(n.Input, cat, rules, trace)
		return algebra.NewProject(n.Columns, in), c
	case algebra.ExtProject:
		in, c := rewriteNode(n.Input, cat, rules, trace)
		return algebra.NewExtProject(n.Items, n.Names, in), c
	case algebra.Unique:
		in, c := rewriteNode(n.Input, cat, rules, trace)
		return algebra.NewUnique(in), c
	case algebra.GroupBy:
		in, c := rewriteNode(n.Input, cat, rules, trace)
		return algebra.GroupBy{GroupCols: n.GroupCols, Agg: n.Agg, AggCol: n.AggCol, Name: n.Name, Input: in}, c
	case algebra.TClose:
		in, c := rewriteNode(n.Input, cat, rules, trace)
		return algebra.NewTClose(in), c
	default:
		// Leaves (Rel, Literal) and unknown nodes are returned unchanged.
		return e, false
	}
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

// CardinalitySource provides base-relation cardinalities for the cost model.
type CardinalitySource interface {
	// RelationCardinality returns the number of tuples (counting duplicates)
	// in the named relation, and whether the relation is known.
	RelationCardinality(name string) (uint64, bool)
}

// MapCardinalities is a CardinalitySource backed by a map.
type MapCardinalities map[string]uint64

// RelationCardinality implements CardinalitySource.
func (m MapCardinalities) RelationCardinality(name string) (uint64, bool) {
	c, ok := m[name]
	return c, ok
}

// Default selectivities of the cost model.  They are deliberately coarse: the
// model only needs to rank plans whose cost differs by orders of magnitude
// (product vs. hash join, pruned vs. unpruned group-by inputs).
const (
	defaultRelationCard   = 1000.0
	selectionSelectivity  = 0.25
	joinSelectivity       = 0.1
	uniqueReduction       = 0.6
	groupReduction        = 0.2
	transitiveBlowup      = 4.0
	perTupleProcessingFee = 1.0
)

// Cost estimates the total processing cost of an expression: the sum over all
// operators of the tuples they must inspect plus the tuples they emit.
// Products pay for their full output; hash joins pay for build plus probe.
func Cost(e algebra.Expr, cards CardinalitySource) float64 {
	cost, _ := costAndCard(e, cards)
	return cost
}

// EstimateCardinality estimates the output cardinality of an expression.
func EstimateCardinality(e algebra.Expr, cards CardinalitySource) float64 {
	_, card := costAndCard(e, cards)
	return card
}

func costAndCard(e algebra.Expr, cards CardinalitySource) (cost, card float64) {
	switch n := e.(type) {
	case algebra.Rel:
		if c, ok := cards.RelationCardinality(n.Name); ok {
			return 0, float64(c)
		}
		return 0, defaultRelationCard
	case algebra.Literal:
		return 0, float64(len(n.Rows))
	case algebra.Union:
		lc, lk := costAndCard(n.Left, cards)
		rc, rk := costAndCard(n.Right, cards)
		out := lk + rk
		return lc + rc + out*perTupleProcessingFee, out
	case algebra.Difference:
		lc, lk := costAndCard(n.Left, cards)
		rc, rk := costAndCard(n.Right, cards)
		return lc + rc + (lk+rk)*perTupleProcessingFee, lk
	case algebra.Intersect:
		lc, lk := costAndCard(n.Left, cards)
		rc, rk := costAndCard(n.Right, cards)
		out := lk
		if rk < out {
			out = rk
		}
		return lc + rc + (lk+rk)*perTupleProcessingFee, out
	case algebra.Product:
		lc, lk := costAndCard(n.Left, cards)
		rc, rk := costAndCard(n.Right, cards)
		out := lk * rk
		return lc + rc + out*perTupleProcessingFee, out
	case algebra.Join:
		lc, lk := costAndCard(n.Left, cards)
		rc, rk := costAndCard(n.Right, cards)
		// Hash join when an equality conjunct links the two sides; otherwise
		// nested loops over the product.
		if hasEquiConjunct(n) {
			out := (lk * rk) * joinSelectivity
			return lc + rc + (lk+rk+out)*perTupleProcessingFee, out
		}
		out := lk * rk * joinSelectivity
		return lc + rc + (lk*rk)*perTupleProcessingFee, out
	case algebra.Select:
		ic, ik := costAndCard(n.Input, cards)
		out := ik * selectionSelectivity
		return ic + ik*perTupleProcessingFee, out
	case algebra.Project:
		// Projections are pipelined: they narrow tuples without materialising
		// a new relation, so they carry no per-tuple charge of their own.
		return costAndCard(n.Input, cards)
	case algebra.ExtProject:
		return costAndCard(n.Input, cards)
	case algebra.Unique:
		ic, ik := costAndCard(n.Input, cards)
		return ic + ik*perTupleProcessingFee, ik * uniqueReduction
	case algebra.GroupBy:
		ic, ik := costAndCard(n.Input, cards)
		out := ik * groupReduction
		if len(n.GroupCols) == 0 {
			out = 1
		}
		return ic + ik*perTupleProcessingFee, out
	case algebra.TClose:
		ic, ik := costAndCard(n.Input, cards)
		out := ik * transitiveBlowup
		return ic + (ik+out)*perTupleProcessingFee*2, out
	default:
		return 0, defaultRelationCard
	}
}

// hasEquiConjunct reports whether the join condition contains an equality
// conjunct between two attribute references, the shape the physical engine
// executes as a hash join.
func hasEquiConjunct(j algebra.Join) bool {
	for _, c := range scalar.Conjuncts(j.Cond) {
		cmp, ok := c.(scalar.Compare)
		if !ok {
			continue
		}
		_, lok := cmp.Left.(scalar.Attr)
		_, rok := cmp.Right.(scalar.Attr)
		if lok && rok && cmp.Op.String() == "=" {
			return true
		}
	}
	return false
}
