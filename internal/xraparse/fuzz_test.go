package xraparse

import "testing"

// FuzzParse drives every parser entry point with arbitrary input: malformed
// XRA must come back as a parse error, never as a panic — the shell and the
// script runner feed user input straight into these functions.  The seed
// corpus is the golden queries of the parser tests plus a few deliberately
// broken fragments near known tricky spots (unterminated strings, nested
// brackets, transaction brackets).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"beer",
		"union(beer, beer)",
		"diff(beer, beer)",
		"difference(beer, select[%3 > 6](beer))",
		"intersect(beer, beer)",
		"product(beer, brewery)",
		"select[%3 >= 5.2 and %2 = 'guineken'](beer)",
		"select[%3 < 5.1 or %3 > 6.0](beer)",
		"select[not (%2 = 'guineken')](beer)",
		"project[%1, %3](beer)",
		"xproject[%1, %3 * 2](beer)",
		"unique(project[%1](beer))",
		"groupby[(), CNT, %1](beer)",
		"groupby[(%2), count, %1, MAX, %3](beer)",
		"join[%2 = %4](beer, brewery)",
		"groupby[(%6), AVG, %3](join[%2 = %4](beer, brewery))",
		"[(1, 'x'), (1, 'x'), (2, 'y')]",
		"select[%1 % 2 = 0]([(1), (2), (3), (4)])",
		"xproject[%1 || '!'](project[%1](beer))",
		"tclose([(1, 2), (2, 3)])",
		"x := select[true](beer); x;",
		"begin beer; end;",
		"begin r <- beer; end; begin beer; end;",
		// Malformed fragments.
		"select[%3 >",
		"project[](beer",
		"'unterminated",
		"[(1, (2)]",
		"begin begin end",
		";;;",
		"%0",
		"select[%](beer)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Errors are expected on malformed input; panics are the bug class
		// under test, and the harness converts them into failures.
		_, _ = ParseExpression(src)
		_, _ = ParseStatement(src)
		_, _ = ParseProgram(src)
		_, _ = ParseScript(src)
	})
}
