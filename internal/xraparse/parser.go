package xraparse

import (
	"fmt"
	"strconv"
	"strings"

	"mra/internal/algebra"
	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/stmt"
	"mra/internal/value"
)

// Transaction is one parsed transaction: a program to be executed atomically.
type Transaction struct {
	// Program is the statement sequence inside the transaction brackets.
	Program stmt.Program
	// Explicit reports whether the transaction was written with begin/end
	// brackets (false for a bare top-level statement, which forms its own
	// single-statement transaction).
	Explicit bool
}

// ParseExpression parses a single relational expression.
func ParseExpression(src string) (algebra.Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return e, nil
}

// ParseStatement parses a single statement (without a trailing semicolon).
func ParseStatement(src string) (stmt.Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	s, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow an optional trailing semicolon.
	if p.peek().kind == tokPunct && p.peek().text == ";" {
		p.next()
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseProgram parses a semicolon-separated statement sequence into a single
// program (Definition 4.2).
func ParseProgram(src string) (stmt.Program, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	prog, err := p.parseProgram(func(t token) bool { return t.kind == tokEOF })
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseScript parses a whole script into a sequence of transactions: a
// `begin ... end` block forms one transaction; every bare statement outside
// such a block forms its own single-statement transaction.
func ParseScript(src string) ([]Transaction, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var txs []Transaction
	for {
		t := p.peek()
		if t.kind == tokEOF {
			return txs, nil
		}
		if t.kind == tokPunct && t.text == ";" {
			p.next()
			continue
		}
		if t.kind == tokIdent && strings.EqualFold(t.text, "begin") {
			p.next()
			prog, err := p.parseProgram(func(t token) bool {
				return t.kind == tokIdent && strings.EqualFold(t.text, "end")
			})
			if err != nil {
				return nil, err
			}
			if _, err := p.expectIdent("end"); err != nil {
				return nil, err
			}
			if t := p.peek(); t.kind == tokPunct && t.text == ";" {
				p.next()
			}
			txs = append(txs, Transaction{Program: prog, Explicit: true})
			continue
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if t := p.peek(); t.kind == tokPunct && t.text == ";" {
			p.next()
		}
		txs = append(txs, Transaction{Program: stmt.Program{s}})
	}
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	idx  int
}

func newParser(src string) (*parser, error) {
	toks, err := newLexer(src).lex()
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) peek() token { return p.toks[p.idx] }

func (p *parser) next() token {
	t := p.toks[p.idx]
	if t.kind != tokEOF {
		p.idx++
	}
	return t
}

func (p *parser) errorf(t token, format string, args ...any) error {
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectEOF() error {
	if t := p.peek(); t.kind != tokEOF {
		return p.errorf(t, "unexpected %s after end of input", t)
	}
	return nil
}

func (p *parser) expectPunct(s string) (token, error) {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return t, p.errorf(t, "expected %q, found %s", s, t)
	}
	return t, nil
}

func (p *parser) expectIdent(word string) (token, error) {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, word) {
		return t, p.errorf(t, "expected %q, found %s", word, t)
	}
	return t, nil
}

// peekIsPunct reports whether the next token is the given punctuation.
func (p *parser) peekIsPunct(s string) bool {
	t := p.peek()
	return t.kind == tokPunct && t.text == s
}

// ---------------------------------------------------------------------------
// Statements and programs
// ---------------------------------------------------------------------------

func (p *parser) parseProgram(stop func(token) bool) (stmt.Program, error) {
	var prog stmt.Program
	for {
		t := p.peek()
		if stop(t) {
			return prog, nil
		}
		if t.kind == tokPunct && t.text == ";" {
			p.next()
			continue
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		prog = append(prog, s)
		if t := p.peek(); t.kind == tokPunct && t.text == ";" {
			p.next()
		} else if !stop(p.peek()) && p.peek().kind != tokEOF {
			return nil, p.errorf(p.peek(), "expected \";\" between statements, found %s", p.peek())
		}
	}
}

func (p *parser) parseStatement() (stmt.Statement, error) {
	t := p.peek()
	switch {
	case t.kind == tokPunct && t.text == "?":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return stmt.Query{Source: e}, nil

	case t.kind == tokIdent && strings.EqualFold(t.text, "insert"):
		return p.parseInsertDelete(true)
	case t.kind == tokIdent && strings.EqualFold(t.text, "delete"):
		return p.parseInsertDelete(false)
	case t.kind == tokIdent && strings.EqualFold(t.text, "update"):
		return p.parseUpdate()
	case t.kind == tokIdent && strings.EqualFold(t.text, "analyze"):
		return p.parseAnalyze()

	case t.kind == tokIdent:
		// Either an assignment "name = expr" or a bare expression used as a
		// query.  Disambiguate on the "=" following a bare identifier.
		if p.idx+1 < len(p.toks) {
			nxt := p.toks[p.idx+1]
			if nxt.kind == tokOp && nxt.text == "=" {
				name := p.next().text
				p.next() // consume '='
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				return stmt.Assign{Name: name, Source: e}, nil
			}
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return stmt.Query{Source: e}, nil

	default:
		return nil, p.errorf(t, "expected a statement, found %s", t)
	}
}

func (p *parser) parseInsertDelete(insert bool) (stmt.Statement, error) {
	p.next() // keyword
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	target := p.next()
	if target.kind != tokIdent {
		return nil, p.errorf(target, "expected a relation name, found %s", target)
	}
	if _, err := p.expectPunct(","); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if insert {
		return stmt.Insert{Target: target.text, Source: e}, nil
	}
	return stmt.Delete{Target: target.text, Source: e}, nil
}

// parseAnalyze parses analyze(R), the statistics-rebuild statement.
func (p *parser) parseAnalyze() (stmt.Statement, error) {
	p.next() // analyze
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	target := p.next()
	if target.kind != tokIdent {
		return nil, p.errorf(target, "expected a relation name, found %s", target)
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return stmt.Analyze{Target: target.text}, nil
}

func (p *parser) parseUpdate() (stmt.Statement, error) {
	p.next() // update
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	target := p.next()
	if target.kind != tokIdent {
		return nil, p.errorf(target, "expected a relation name, found %s", target)
	}
	if _, err := p.expectPunct(","); err != nil {
		return nil, err
	}
	sel, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(","); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var items []scalar.Expr
	for {
		item, err := p.parseScalar()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if p.peekIsPunct(",") {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return stmt.Update{Target: target.text, Selection: sel, Items: items}, nil
}

// ---------------------------------------------------------------------------
// Relational expressions
// ---------------------------------------------------------------------------

func (p *parser) parseExpr() (algebra.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokPunct && t.text == "[":
		return p.parseLiteral()
	case t.kind == tokPunct && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		return p.parseOperatorOrRelation()
	default:
		return nil, p.errorf(t, "expected a relational expression, found %s", t)
	}
}

func (p *parser) parseOperatorOrRelation() (algebra.Expr, error) {
	name := p.next()
	keyword := strings.ToLower(name.text)
	switch keyword {
	case "union", "diff", "difference", "intersect", "product":
		left, right, err := p.parseBinaryArgs()
		if err != nil {
			return nil, err
		}
		switch keyword {
		case "union":
			return algebra.NewUnion(left, right), nil
		case "diff", "difference":
			return algebra.NewDifference(left, right), nil
		case "intersect":
			return algebra.NewIntersect(left, right), nil
		default:
			return algebra.NewProduct(left, right), nil
		}

	case "select":
		cond, err := p.parseBracketPredicate()
		if err != nil {
			return nil, err
		}
		in, err := p.parseUnaryArg()
		if err != nil {
			return nil, err
		}
		return algebra.NewSelect(cond, in), nil

	case "join":
		cond, err := p.parseBracketPredicate()
		if err != nil {
			return nil, err
		}
		left, right, err := p.parseBinaryArgs()
		if err != nil {
			return nil, err
		}
		return algebra.NewJoin(cond, left, right), nil

	case "project", "xproject":
		if _, err := p.expectPunct("["); err != nil {
			return nil, err
		}
		var items []scalar.Expr
		for {
			item, err := p.parseScalar()
			if err != nil {
				return nil, err
			}
			items = append(items, item)
			if p.peekIsPunct(",") {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		in, err := p.parseUnaryArg()
		if err != nil {
			return nil, err
		}
		// A projection whose items are all plain attribute references is the
		// basic positional projection; anything else is the extended form.
		cols := make([]int, 0, len(items))
		plain := true
		for _, it := range items {
			a, ok := it.(scalar.Attr)
			if !ok {
				plain = false
				break
			}
			cols = append(cols, a.Index)
		}
		if plain && keyword == "project" {
			return algebra.NewProject(cols, in), nil
		}
		return algebra.NewExtProject(items, nil, in), nil

	case "unique", "dedup":
		in, err := p.parseUnaryArg()
		if err != nil {
			return nil, err
		}
		return algebra.NewUnique(in), nil

	case "tclose":
		in, err := p.parseUnaryArg()
		if err != nil {
			return nil, err
		}
		return algebra.NewTClose(in), nil

	case "groupby":
		return p.parseGroupBy()

	default:
		// A bare identifier is a database (or temporary) relation reference.
		return algebra.NewRel(name.text), nil
	}
}

func (p *parser) parseBinaryArgs() (algebra.Expr, algebra.Expr, error) {
	if _, err := p.expectPunct("("); err != nil {
		return nil, nil, err
	}
	left, err := p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	if _, err := p.expectPunct(","); err != nil {
		return nil, nil, err
	}
	right, err := p.parseExpr()
	if err != nil {
		return nil, nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

func (p *parser) parseUnaryArg() (algebra.Expr, error) {
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	in, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *parser) parseBracketPredicate() (scalar.Predicate, error) {
	if _, err := p.expectPunct("["); err != nil {
		return nil, err
	}
	cond, err := p.parsePredicate()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	return cond, nil
}

// parseGroupBy parses groupby[(α), AGG, %p, AGG, %p, ...](E): the grouping
// list followed by one or more aggregate applications computed in one pass.
// The grouping list may be empty: groupby[(), CNT, %1](E).
func (p *parser) parseGroupBy() (algebra.Expr, error) {
	if _, err := p.expectPunct("["); err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var groupCols []int
	for !p.peekIsPunct(")") {
		t := p.next()
		if t.kind != tokAttr {
			return nil, p.errorf(t, "expected a grouping attribute %%i, found %s", t)
		}
		idx, err := attrIndex(t)
		if err != nil {
			return nil, err
		}
		groupCols = append(groupCols, idx)
		if p.peekIsPunct(",") {
			p.next()
		}
	}
	p.next() // ')'
	var aggs []algebra.AggSpec
	for {
		if _, err := p.expectPunct(","); err != nil {
			return nil, err
		}
		aggTok := p.next()
		if aggTok.kind != tokIdent {
			return nil, p.errorf(aggTok, "expected an aggregate function, found %s", aggTok)
		}
		agg, err := algebra.ParseAggregate(aggTok.text)
		if err != nil {
			return nil, p.errorf(aggTok, "%v", err)
		}
		if _, err := p.expectPunct(","); err != nil {
			return nil, err
		}
		attrTok := p.next()
		if attrTok.kind != tokAttr {
			return nil, p.errorf(attrTok, "expected an aggregate attribute %%i, found %s", attrTok)
		}
		aggCol, err := attrIndex(attrTok)
		if err != nil {
			return nil, err
		}
		aggs = append(aggs, algebra.AggSpec{Fn: agg, Col: aggCol})
		if !p.peekIsPunct(",") {
			break
		}
	}
	if _, err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	in, err := p.parseUnaryArg()
	if err != nil {
		return nil, err
	}
	return algebra.NewGroupByMulti(groupCols, aggs, in), nil
}

// parseLiteral parses a literal relation [(v, ...), (v, ...)], inferring an
// anonymous schema from the first row's value domains.
func (p *parser) parseLiteral() (algebra.Expr, error) {
	open := p.next() // '['
	var rows [][]value.Value
	for !p.peekIsPunct("]") {
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []value.Value
		for {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.peekIsPunct(",") {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.peekIsPunct(",") {
			p.next()
		}
	}
	p.next() // ']'
	if len(rows) == 0 {
		return nil, p.errorf(open, "literal relation must contain at least one row")
	}
	attrs := make([]schema.Attribute, len(rows[0]))
	for i, v := range rows[0] {
		attrs[i] = schema.Attribute{Type: v.Kind()}
	}
	return algebra.Literal{Rel: schema.Anonymous(attrs...), Rows: rows}, nil
}

// parseValue parses a constant value: number, string, true/false, null, or a
// negated number.
func (p *parser) parseValue() (value.Value, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		return parseNumber(t)
	case t.kind == tokString:
		return value.NewString(t.text), nil
	case t.kind == tokOp && t.text == "-":
		n := p.next()
		if n.kind != tokNumber {
			return value.Null, p.errorf(n, "expected a number after '-', found %s", n)
		}
		v, err := parseNumber(n)
		if err != nil {
			return value.Null, err
		}
		if v.Kind() == value.KindInt {
			return value.NewInt(-v.Int()), nil
		}
		return value.NewFloat(-v.Float()), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "true"):
		return value.NewBool(true), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "false"):
		return value.NewBool(false), nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "null"):
		return value.Null, nil
	default:
		return value.Null, p.errorf(t, "expected a constant value, found %s", t)
	}
}

func parseNumber(t token) (value.Value, error) {
	if strings.Contains(t.text, ".") {
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return value.Null, &SyntaxError{Line: t.line, Col: t.col, Msg: "malformed number " + t.text}
		}
		return value.NewFloat(f), nil
	}
	i, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return value.Null, &SyntaxError{Line: t.line, Col: t.col, Msg: "malformed number " + t.text}
	}
	return value.NewInt(i), nil
}

func attrIndex(t token) (int, error) {
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 1 {
		return 0, &SyntaxError{Line: t.line, Col: t.col, Msg: "attribute numbers are 1-based positive integers"}
	}
	return n - 1, nil
}

// ---------------------------------------------------------------------------
// Predicates and scalar expressions
// ---------------------------------------------------------------------------

// parsePredicate parses a boolean condition with `or` as the lowest-binding
// connective, then `and`, then `not`, then comparisons.
func (p *parser) parsePredicate() (scalar.Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokIdent && strings.EqualFold(t.text, "or") {
			p.next()
			right, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			left = scalar.Or{Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseAnd() (scalar.Predicate, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokIdent && strings.EqualFold(t.text, "and") {
			p.next()
			right, err := p.parseNot()
			if err != nil {
				return nil, err
			}
			left = scalar.And{Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseNot() (scalar.Predicate, error) {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, "not") {
		p.next()
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return scalar.Not{Operand: inner}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (scalar.Predicate, error) {
	t := p.peek()
	// Parenthesised sub-condition or boolean constants.
	if t.kind == tokPunct && t.text == "(" {
		// Could be a parenthesised predicate; try it with backtracking so that
		// parenthesised scalar expressions like (%1 + %2) > 3 also work.
		save := p.idx
		p.next()
		inner, err := p.parsePredicate()
		if err == nil && p.peekIsPunct(")") {
			p.next()
			// Only accept if the next token is not a comparison/arith operator
			// (otherwise the parentheses belonged to a scalar expression).
			nt := p.peek()
			if nt.kind != tokOp {
				return inner, nil
			}
		}
		p.idx = save
	}
	if t.kind == tokIdent && strings.EqualFold(t.text, "true") {
		p.next()
		return scalar.True{}, nil
	}
	if t.kind == tokIdent && strings.EqualFold(t.text, "false") {
		p.next()
		return scalar.False{}, nil
	}
	left, err := p.parseScalar()
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	if opTok.kind != tokOp {
		return nil, p.errorf(opTok, "expected a comparison operator, found %s", opTok)
	}
	op, err := value.ParseCompareOp(opTok.text)
	if err != nil {
		return nil, p.errorf(opTok, "%v", err)
	}
	right, err := p.parseScalar()
	if err != nil {
		return nil, err
	}
	return scalar.Compare{Op: op, Left: left, Right: right}, nil
}

// parseScalar parses an arithmetic expression with the usual precedence:
// additive < multiplicative < unary.
func (p *parser) parseScalar() (scalar.Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.next()
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			op, _ := value.ParseBinaryOp(t.text)
			left = scalar.Arith{Op: op, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseTerm() (scalar.Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.next()
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			op, _ := value.ParseBinaryOp(t.text)
			left = scalar.Arith{Op: op, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseFactor() (scalar.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokAttr:
		p.next()
		idx, err := attrIndex(t)
		if err != nil {
			return nil, err
		}
		return scalar.NewAttr(idx), nil
	case t.kind == tokNumber, t.kind == tokString:
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return scalar.NewConst(v), nil
	case t.kind == tokIdent && (strings.EqualFold(t.text, "true") || strings.EqualFold(t.text, "false") || strings.EqualFold(t.text, "null")):
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return scalar.NewConst(v), nil
	case t.kind == tokOp && t.text == "-":
		p.next()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return scalar.Neg{Operand: inner}, nil
	case t.kind == tokPunct && t.text == "(":
		p.next()
		inner, err := p.parseScalar()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, p.errorf(t, "expected a scalar expression, found %s", t)
	}
}
