package xraparse

import (
	"strings"
	"testing"

	"mra/internal/algebra"
	"mra/internal/eval"
	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/stmt"
	"mra/internal/tuple"
	"mra/internal/value"
)

func beerSource() eval.MapSource {
	beer := multiset.New(schema.NewRelation("beer",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "brewery", Type: value.KindString},
		schema.Attribute{Name: "alcperc", Type: value.KindFloat},
	))
	add := func(r *multiset.Relation, vals ...value.Value) { r.Add(tuple.New(vals...), 1) }
	add(beer, value.NewString("pils"), value.NewString("guineken"), value.NewFloat(5.0))
	add(beer, value.NewString("pils"), value.NewString("brolsch"), value.NewFloat(5.2))
	add(beer, value.NewString("bock"), value.NewString("guineken"), value.NewFloat(6.5))

	brewery := multiset.New(schema.NewRelation("brewery",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "city", Type: value.KindString},
		schema.Attribute{Name: "country", Type: value.KindString},
	))
	add(brewery, value.NewString("guineken"), value.NewString("amsterdam"), value.NewString("netherlands"))
	add(brewery, value.NewString("brolsch"), value.NewString("enschede"), value.NewString("netherlands"))
	return eval.MapSource{"beer": beer, "brewery": brewery}
}

// mustEval parses and evaluates an XRA expression against the beer source.
func mustEval(t *testing.T, src string) *multiset.Relation {
	t.Helper()
	e, err := ParseExpression(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	s := beerSource()
	if err := algebra.Validate(e, s.Catalog()); err != nil {
		t.Fatalf("validate %q: %v", src, err)
	}
	r, err := (&eval.Engine{}).Eval(e, s)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return r
}

func TestParseExample31(t *testing.T) {
	// The paper's Example 3.1 in XRA syntax.
	r := mustEval(t, "project[%1](select[%6 = 'netherlands'](join[%2 = %4](beer, brewery)))")
	if r.Cardinality() != 3 {
		t.Errorf("cardinality = %d, want 3", r.Cardinality())
	}
	if r.Multiplicity(tuple.New(value.NewString("pils"))) != 2 {
		t.Error("duplicates must be preserved")
	}
}

func TestParseExample32(t *testing.T) {
	r := mustEval(t, "groupby[(%6), AVG, %3](join[%2 = %4](beer, brewery))")
	if r.Cardinality() != 1 {
		t.Fatalf("one country expected, got %d", r.Cardinality())
	}
	r2 := mustEval(t, "groupby[(%2), avg, %1](project[%3, %6](join[%2 = %4](beer, brewery)))")
	if !r.Equal(r2) {
		t.Error("projection push-in must not change the result under bag semantics")
	}
}

func TestParseOperators(t *testing.T) {
	cases := map[string]uint64{
		"beer":                                            3,
		"union(beer, beer)":                               6,
		"diff(beer, beer)":                                0,
		"difference(beer, select[%3 > 6](beer))":          2,
		"intersect(beer, beer)":                           3,
		"product(beer, brewery)":                          6,
		"select[%3 >= 5.2 and %2 = 'guineken'](beer)":     1,
		"select[%3 < 5.1 or %3 > 6.0](beer)":              2,
		"select[not (%2 = 'guineken')](beer)":             1,
		"select[true](beer)":                              3,
		"select[false](beer)":                             0,
		"project[%1, %3](beer)":                           3,
		"xproject[%1, %3 * 2](beer)":                      3,
		"project[%3 * 2](beer)":                           3, // non-plain items promote to extended projection
		"unique(project[%1](beer))":                       2,
		"dedup(project[%2](beer))":                        2,
		"groupby[(), CNT, %1](beer)":                      1,
		"groupby[(%2), count, %1](beer)":                  2,
		"groupby[(%2), count, %1, MAX, %3](beer)":         2, // multi-aggregate: one row per group
		"groupby[(), CNT, %1, MIN, %3, max, %3](beer)":    1,
		"join[%2 = %4](beer, brewery)":                    3,
		"[(1, 'x'), (1, 'x'), (2, 'y')]":                  3,
		"select[%1 % 2 = 0]([(1), (2), (3), (4)])":        2,
		"select[(%1 + %2) > 3]([(1, 1), (2, 2), (3, 3)])": 2,
		"select[-%1 < -1]([(1), (2), (3)])":               2,
		"xproject[%1 || '!'](project[%1](beer))":          3,
		"tclose([(1, 2), (2, 3)])":                        3,
	}
	for src, want := range cases {
		r := mustEval(t, src)
		if r.Cardinality() != want {
			t.Errorf("%s: cardinality = %d, want %d", src, r.Cardinality(), want)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `-- names of all beers
project[%1]( -- keep the name attribute
  beer)`
	r := mustEval(t, src)
	if r.Cardinality() != 3 {
		t.Errorf("cardinality = %d", r.Cardinality())
	}
}

func TestParseStatements(t *testing.T) {
	s, err := ParseStatement("insert(beer, [('ale', 'guineken', 4.5)])")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(stmt.Insert); !ok {
		t.Errorf("expected Insert, got %T", s)
	}
	s, err = ParseStatement("delete(beer, select[%2 = 'guineken'](beer));")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(stmt.Delete); !ok {
		t.Errorf("expected Delete, got %T", s)
	}
	s, err = ParseStatement("update(beer, select[%2 = 'guineken'](beer), (%1, %2, %3 * 1.1))")
	if err != nil {
		t.Fatal(err)
	}
	up, ok := s.(stmt.Update)
	if !ok || len(up.Items) != 3 {
		t.Errorf("expected a 3-item Update, got %#v", s)
	}
	s, err = ParseStatement("strong = select[%3 >= 6](beer)")
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := s.(stmt.Assign); !ok || a.Name != "strong" {
		t.Errorf("expected Assign strong, got %#v", s)
	}
	s, err = ParseStatement("?project[%1](beer)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(stmt.Query); !ok {
		t.Errorf("expected Query, got %T", s)
	}
	// A bare expression is a query.
	s, err = ParseStatement("project[%1](beer)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(stmt.Query); !ok {
		t.Errorf("bare expression should parse as Query, got %T", s)
	}
}

func TestParseProgramAndScript(t *testing.T) {
	prog, err := ParseProgram(`
		strong = select[%3 >= 6](beer);
		?project[%1](strong);
		delete(beer, strong);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 3 {
		t.Fatalf("program length = %d", len(prog))
	}
	if _, ok := prog[0].(stmt.Assign); !ok {
		t.Error("first statement should be the assignment")
	}

	txs, err := ParseScript(`
		?beer;
		begin
			delete(beer, select[%2 = 'guineken'](beer));
			insert(beer, [('radler', 'brolsch', 2.0)]);
		end;
		?beer
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 3 {
		t.Fatalf("expected 3 transactions, got %d", len(txs))
	}
	if txs[0].Explicit || !txs[1].Explicit || txs[2].Explicit {
		t.Error("only the begin/end block is an explicit transaction")
	}
	if len(txs[1].Program) != 2 {
		t.Errorf("bracketed transaction has %d statements", len(txs[1].Program))
	}
	// Empty script.
	empty, err := ParseScript("   -- nothing here\n")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty script = %v, %v", empty, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                   // empty expression
		"select[%1 >](beer)",                 // missing operand
		"select[%1 = 1(beer)",                // missing bracket
		"project[](beer)",                    // empty projection
		"project[%0](beer)",                  // attribute numbers are 1-based
		"union(beer)",                        // missing operand
		"union(beer, beer",                   // missing paren
		"groupby[%1, CNT, %1](beer)",         // grouping list must be parenthesised
		"groupby[(name), CNT, %1](beer)",     // grouping attrs are positional
		"groupby[(%1), MEDIAN, %1](beer)",    // unknown aggregate
		"groupby[(%1), CNT, name](beer)",     // aggregate attr must be positional
		"join[%1 = %4](beer brewery)",        // missing comma
		"[()]",                               // literal row needs values
		"[]",                                 // empty literal
		"[(1, 'x') (2, 'y')]",                // missing comma accepted? no: rows must separate — actually optional; ensure valid
		"select['abc](beer)",                 // unterminated string
		"select[#](beer)",                    // illegal character
		"insert(beer [('x','y',1)])",         // missing comma
		"insert(, beer)",                     // missing target
		"update(beer, beer, ())",             // empty update list
		"update(beer, beer (%1))",            // missing comma
		"?project[%1](beer) extra",           // trailing garbage
		"1.2.3",                              // malformed number
		"select[%1 ! 2](beer)",               // bad operator
		"select[%1 | 2](beer)",               // bad operator
		"begin ?beer",                        // unterminated transaction (script)
		"update(beer, select[%2='x'](beer))", // missing item list
	}
	for _, src := range bad {
		_, errExpr := ParseExpression(src)
		_, errStmt := ParseStatement(src)
		_, errScript := ParseScript(src)
		if errExpr == nil && errStmt == nil && errScript == nil {
			t.Errorf("input %q should fail to parse in every mode", src)
		}
	}
	// Error messages carry positions.
	_, err := ParseExpression("select[%1 =](beer)")
	if err == nil || !strings.Contains(err.Error(), "xra:") {
		t.Errorf("error should carry a position, got %v", err)
	}
	var serr *SyntaxError
	if !asSyntaxError(err, &serr) || serr.Line != 1 || serr.Col == 0 {
		t.Errorf("expected a positioned SyntaxError, got %#v", err)
	}
}

// asSyntaxError is a tiny errors.As replacement to avoid importing errors for
// one call site with a concrete target type.
func asSyntaxError(err error, target **SyntaxError) bool {
	if err == nil {
		return false
	}
	se, ok := err.(*SyntaxError)
	if ok {
		*target = se
	}
	return ok
}

func TestParseRoundTripThroughString(t *testing.T) {
	// The algebra's String rendering is itself valid XRA for the constructs
	// the parser accepts, so parse → print → parse is a fixpoint.
	sources := []string{
		"project[%1](select[%6 = 'netherlands'](join[%2 = %4](beer, brewery)))",
		"union(beer, diff(beer, beer))",
		"groupby[(%2),SUM,%3](beer)",
		"groupby[(%2),CNT,%1,SUM,%3,MAX,%3](beer)",
		"unique(project[%2](beer))",
		"intersect(beer, beer)",
		"tclose(project[%1, %2](brewery))",
	}
	for _, src := range sources {
		e1, err := ParseExpression(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := e1.String()
		e2, err := ParseExpression(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if e1.String() != e2.String() {
			t.Errorf("round trip changed the expression: %q vs %q", e1, e2)
		}
	}
}

func TestParsedStatementsExecute(t *testing.T) {
	// Integration: a parsed program built from the paper's Example 4.1 runs
	// against a fake context and produces the expected relation.
	prog, err := ParseProgram("update(beer, select[%2 = 'guineken'](beer), (%1, %2, %3 * 1.1)); ?beer")
	if err != nil {
		t.Fatal(err)
	}
	ctx := newFakeContext(beerSource())
	if err := prog.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if len(ctx.outputs) != 1 {
		t.Fatalf("outputs = %d", len(ctx.outputs))
	}
	sum := 0.0
	ctx.outputs[0].Each(func(tp tuple.Tuple, _ uint64) bool {
		sum += tp.At(2).Float()
		return true
	})
	want := 5.0*1.1 + 5.2 + 6.5*1.1
	if sum < want-1e-9 || sum > want+1e-9 {
		t.Errorf("total alcohol after update = %v, want %v", sum, want)
	}
}

// fakeContext is a minimal stmt.Context over a MapSource for parser-level
// integration tests (the real context lives in package txn).
type fakeContext struct {
	src     eval.MapSource
	outputs []*multiset.Relation
}

func newFakeContext(src eval.MapSource) *fakeContext { return &fakeContext{src: src} }

func (f *fakeContext) Catalog() algebra.Catalog { return f.src.Catalog() }

func (f *fakeContext) Evaluate(e algebra.Expr) (*multiset.Relation, error) {
	return (&eval.Engine{}).Eval(e, f.src)
}

func (f *fakeContext) Current(name string) (*multiset.Relation, bool) { return f.src.Relation(name) }

func (f *fakeContext) Replace(name string, r *multiset.Relation) error {
	f.src[strings.ToLower(name)] = r
	return nil
}

func (f *fakeContext) Assign(name string, r *multiset.Relation) error {
	f.src[strings.ToLower(name)] = r
	return nil
}

func (f *fakeContext) Output(r *multiset.Relation) { f.outputs = append(f.outputs, r) }
