// Package xraparse implements a textual front-end for the multi-set extended
// relational algebra, in the spirit of XRA, the variant of the algebra used as
// the primary database language of PRISMA/DB (Grefen, Wilschut & Flokstra,
// PRISMA/DB 1.0 User Manual; Section 1 of the paper).
//
// The surface syntax mirrors the linear notation the algebra package renders:
//
//	project[%1](select[%6 = 'netherlands'](join[%2 = %4](beer, brewery)))
//
// Statements follow Definition 4.1:
//
//	insert(beer, [('pils', 'guineken', 5.0)]);
//	update(beer, select[%2 = 'guineken'](beer), (%1, %2, %3 * 1.1));
//	strong = select[%3 >= 6.5](beer);
//	?project[%1](strong);
//
// and `begin ... end` brackets group statements into one transaction.
package xraparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokAttr  // %1, %2, ...
	tokPunct // ( ) [ ] , ; ? =
	tokOp    // comparison and arithmetic operators
)

// token is a single lexical token with its source position (1-based).
type token struct {
	kind tokenKind
	text string
	pos  int
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// SyntaxError reports a lexing or parsing error with its source position.
type SyntaxError struct {
	// Line and Col are the 1-based source position of the error.
	Line, Col int
	// Msg describes the problem.
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xra: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// lexer splits an input string into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// lex tokenises the whole input.
func (l *lexer) lex() ([]token, error) {
	var toks []token
	for {
		l.skipSpaceAndComments()
		c, ok := l.peekByte()
		if !ok {
			toks = append(toks, token{kind: tokEOF, pos: l.pos, line: l.line, col: l.col})
			return toks, nil
		}
		startLine, startCol, startPos := l.line, l.col, l.pos
		switch {
		case isIdentStart(rune(c)):
			text := l.lexIdent()
			toks = append(toks, token{kind: tokIdent, text: text, pos: startPos, line: startLine, col: startCol})
		case unicode.IsDigit(rune(c)):
			text, err := l.lexNumber()
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokNumber, text: text, pos: startPos, line: startLine, col: startCol})
		case c == '\'':
			text, err := l.lexString()
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokString, text: text, pos: startPos, line: startLine, col: startCol})
		case c == '%':
			l.advance()
			next, ok := l.peekByte()
			if ok && unicode.IsDigit(rune(next)) {
				num, err := l.lexNumber()
				if err != nil {
					return nil, err
				}
				toks = append(toks, token{kind: tokAttr, text: num, pos: startPos, line: startLine, col: startCol})
			} else {
				// Bare % is the modulo operator.
				toks = append(toks, token{kind: tokOp, text: "%", pos: startPos, line: startLine, col: startCol})
			}
		case strings.ContainsRune("()[],;?", rune(c)):
			l.advance()
			toks = append(toks, token{kind: tokPunct, text: string(c), pos: startPos, line: startLine, col: startCol})
		case strings.ContainsRune("=<>!+-*/|", rune(c)):
			text, err := l.lexOperator()
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokOp, text: text, pos: startPos, line: startLine, col: startCol})
		default:
			return nil, l.errorf("unexpected character %q", c)
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for {
		c, ok := l.peekByte()
		if !ok {
			return
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment: -- to end of line.
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}

func (l *lexer) lexIdent() string {
	start := l.pos
	for {
		c, ok := l.peekByte()
		if !ok || !isIdentPart(rune(c)) {
			break
		}
		l.advance()
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexNumber() (string, error) {
	start := l.pos
	seenDot := false
	for {
		c, ok := l.peekByte()
		if !ok {
			break
		}
		if c == '.' {
			if seenDot {
				return "", l.errorf("malformed number")
			}
			// A dot must be followed by a digit to be part of the number.
			if l.pos+1 >= len(l.src) || !unicode.IsDigit(rune(l.src[l.pos+1])) {
				break
			}
			seenDot = true
			l.advance()
			continue
		}
		if !unicode.IsDigit(rune(c)) {
			break
		}
		l.advance()
	}
	return l.src[start:l.pos], nil
}

func (l *lexer) lexString() (string, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		c, ok := l.peekByte()
		if !ok {
			return "", l.errorf("unterminated string literal")
		}
		l.advance()
		if c == '\'' {
			// Doubled quote is an escaped quote.
			if next, ok := l.peekByte(); ok && next == '\'' {
				l.advance()
				b.WriteByte('\'')
				continue
			}
			return b.String(), nil
		}
		b.WriteByte(c)
	}
}

func (l *lexer) lexOperator() (string, error) {
	c := l.advance()
	switch c {
	case '<':
		if next, ok := l.peekByte(); ok && (next == '=' || next == '>') {
			l.advance()
			return "<" + string(next), nil
		}
		return "<", nil
	case '>':
		if next, ok := l.peekByte(); ok && next == '=' {
			l.advance()
			return ">=", nil
		}
		return ">", nil
	case '!':
		if next, ok := l.peekByte(); ok && next == '=' {
			l.advance()
			return "!=", nil
		}
		return "", l.errorf("unexpected character %q", c)
	case '|':
		if next, ok := l.peekByte(); ok && next == '|' {
			l.advance()
			return "||", nil
		}
		return "", l.errorf("unexpected character %q", c)
	default:
		return string(c), nil
	}
}
