package multiset

import "mra/internal/tuple"

// Diff computes the delta that turns base into next as a pair of multisets:
// add holds every occurrence present in next beyond its multiplicity in base,
// remove every occurrence of base missing from next, so that
// next = (base ∸ remove) ⊎ add.  The two multisets are disjoint by
// construction (a tuple's multiplicity moves in one direction only), and both
// are empty when the relations are equal — in particular when they share one
// copy-on-write table, which Diff detects in O(1).  Cached entry hashes are
// reused throughout; no tuple is ever re-hashed.
func Diff(base, next *Relation) (add, remove *Relation) {
	add = New(next.schema)
	remove = New(base.schema)
	if base.tab == next.tab {
		return add, remove
	}
	nextEntries := next.tab.entries
	for i := range nextEntries {
		e := &nextEntries[i]
		if e.count == 0 {
			continue
		}
		var old uint64
		if j := base.tab.find(e.hash, e.tup); j != chainEnd {
			old = base.tab.entries[j].count
		}
		if e.count > old {
			add.tab.add(e.hash, e.tup, e.count-old)
		}
	}
	baseEntries := base.tab.entries
	for i := range baseEntries {
		e := &baseEntries[i]
		if e.count == 0 {
			continue
		}
		var cur uint64
		if j := next.tab.find(e.hash, e.tup); j != chainEnd {
			cur = next.tab.entries[j].count
		}
		if e.count > cur {
			remove.tab.add(e.hash, e.tup, e.count-cur)
		}
	}
	return add, remove
}

// ApplyDelta applies a Diff-shaped delta in place: every occurrence of remove
// is removed first (monus — multiplicities clamp at zero), then every
// occurrence of add is added.  Applied to the relation the delta was diffed
// from, it reproduces the diffed target exactly; applied to a relation other
// writers advanced on disjoint keys, it merges — which is what makes delta
// write sets over disjoint keys commute under the storage engine's
// key-granular commit validation.  Either argument may be nil.
func (r *Relation) ApplyDelta(add, remove *Relation) {
	if (add == nil || add.tab.total == 0) && (remove == nil || remove.tab.total == 0) {
		return
	}
	r.materialize()
	tab := r.tab
	if remove != nil {
		entries := remove.tab.entries
		for i := range entries {
			e := &entries[i]
			if e.count == 0 {
				continue
			}
			j := tab.find(e.hash, e.tup)
			if j == chainEnd || tab.entries[j].count == 0 {
				continue
			}
			cur := &tab.entries[j]
			n := e.count
			if n > cur.count {
				n = cur.count
			}
			cur.count -= n
			tab.total -= n
			if cur.count == 0 {
				tab.live--
			}
		}
	}
	if add != nil {
		entries := add.tab.entries
		for i := range entries {
			e := &entries[i]
			if e.count == 0 {
				continue
			}
			tab.add(e.hash, e.tup, e.count)
		}
	}
}

// EachHash calls fn once per distinct tuple with its cached hash and
// multiplicity — the key-granular view of the relation the transaction
// layer's write-set validation iterates.  If fn returns false, iteration
// stops.  fn must not mutate r.
func (r *Relation) EachHash(fn func(t tuple.Tuple, hash uint64, count uint64) bool) {
	entries := r.tab.entries
	for i := range entries {
		if entries[i].count == 0 {
			continue
		}
		if !fn(entries[i].tup, entries[i].hash, entries[i].count) {
			return
		}
	}
}

// ContainsHash reports whether the relation holds any live tuple whose cached
// hash equals h.  It is the O(1) membership probe key-granular read
// validation uses to intersect a recent-writer key log with the key set a
// snapshot reader observed.
func (r *Relation) ContainsHash(h uint64) bool {
	head, ok := r.tab.index[h]
	if !ok {
		return false
	}
	for i := head; i != chainEnd; i = r.tab.entries[i].next {
		if r.tab.entries[i].count > 0 {
			return true
		}
	}
	return false
}
