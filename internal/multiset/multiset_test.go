package multiset

import (
	"strings"
	"testing"

	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

func intSchema(n int) schema.Relation {
	attrs := make([]schema.Attribute, n)
	for i := range attrs {
		attrs[i] = schema.Attribute{Name: string(rune('a' + i)), Type: value.KindInt}
	}
	return schema.Anonymous(attrs...)
}

func TestAddRemoveMultiplicity(t *testing.T) {
	r := New(intSchema(1))
	tp := tuple.Ints(7)
	if r.Contains(tp) || !r.IsEmpty() {
		t.Error("fresh relation must be empty")
	}
	r.Add(tp, 3)
	if got := r.Multiplicity(tp); got != 3 {
		t.Errorf("multiplicity = %d, want 3", got)
	}
	r.Add(tp, 0)
	if got := r.Multiplicity(tp); got != 3 {
		t.Error("adding zero must be a no-op")
	}
	if r.Cardinality() != 3 || r.DistinctCount() != 1 {
		t.Errorf("cardinality = %d, distinct = %d", r.Cardinality(), r.DistinctCount())
	}
	if removed := r.Remove(tp, 2); removed != 2 {
		t.Errorf("Remove returned %d", removed)
	}
	if got := r.Multiplicity(tp); got != 1 {
		t.Errorf("multiplicity after removal = %d", got)
	}
	if removed := r.Remove(tp, 5); removed != 1 {
		t.Errorf("clamped removal returned %d", removed)
	}
	if r.Contains(tp) || r.Cardinality() != 0 {
		t.Error("relation must be empty after full removal")
	}
	if removed := r.Remove(tp, 1); removed != 0 {
		t.Error("removing from empty relation removes nothing")
	}
	if removed := r.Remove(tp, 0); removed != 0 {
		t.Error("removing zero occurrences removes nothing")
	}
}

func TestSetMultiplicity(t *testing.T) {
	r := New(intSchema(1))
	tp := tuple.Ints(1)
	r.SetMultiplicity(tp, 5)
	if r.Multiplicity(tp) != 5 || r.Cardinality() != 5 {
		t.Error("SetMultiplicity insert")
	}
	r.SetMultiplicity(tp, 2)
	if r.Multiplicity(tp) != 2 || r.Cardinality() != 2 {
		t.Error("SetMultiplicity overwrite")
	}
	r.SetMultiplicity(tp, 0)
	if r.Contains(tp) || r.Cardinality() != 0 || r.DistinctCount() != 0 {
		t.Error("SetMultiplicity to zero must delete")
	}
}

func TestFromTuplesAccumulates(t *testing.T) {
	r := FromTuples(intSchema(1), tuple.Ints(1), tuple.Ints(2), tuple.Ints(1))
	if r.Multiplicity(tuple.Ints(1)) != 2 || r.Multiplicity(tuple.Ints(2)) != 1 {
		t.Errorf("FromTuples: %v", r)
	}
	if r.Cardinality() != 3 || r.DistinctCount() != 2 {
		t.Error("FromTuples counts")
	}
}

func TestEachAndEachOccurrence(t *testing.T) {
	r := FromTuples(intSchema(1), tuple.Ints(1), tuple.Ints(1), tuple.Ints(2))
	var distinct, occurrences int
	r.Each(func(_ tuple.Tuple, _ uint64) bool { distinct++; return true })
	r.EachOccurrence(func(_ tuple.Tuple) bool { occurrences++; return true })
	if distinct != 2 || occurrences != 3 {
		t.Errorf("distinct=%d occurrences=%d", distinct, occurrences)
	}
	// Early termination.
	count := 0
	r.Each(func(_ tuple.Tuple, _ uint64) bool { count++; return false })
	if count != 1 {
		t.Error("Each must stop when fn returns false")
	}
	count = 0
	r.EachOccurrence(func(_ tuple.Tuple) bool { count++; return false })
	if count != 1 {
		t.Error("EachOccurrence must stop when fn returns false")
	}
}

func TestTuplesAndDistinctSorted(t *testing.T) {
	r := FromTuples(intSchema(1), tuple.Ints(3), tuple.Ints(1), tuple.Ints(3))
	all := r.Tuples()
	if len(all) != 3 || !all[0].Equal(tuple.Ints(1)) || !all[2].Equal(tuple.Ints(3)) {
		t.Errorf("Tuples = %v", all)
	}
	d := r.Distinct()
	if len(d) != 2 || !d[0].Equal(tuple.Ints(1)) || !d[1].Equal(tuple.Ints(3)) {
		t.Errorf("Distinct = %v", d)
	}
	// EachSorted early stop.
	n := 0
	r.EachSorted(func(_ tuple.Tuple, _ uint64) bool { n++; return false })
	if n != 1 {
		t.Error("EachSorted must honour early stop")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := FromTuples(intSchema(1), tuple.Ints(1))
	c := r.Clone()
	c.Add(tuple.Ints(2), 1)
	if r.Contains(tuple.Ints(2)) {
		t.Error("Clone must be independent")
	}
	if !c.Contains(tuple.Ints(1)) {
		t.Error("Clone must carry original contents")
	}
}

func TestCopyOnWriteBothDirections(t *testing.T) {
	r := FromTuples(intSchema(1), tuple.Ints(1))
	c := r.Clone()
	// Mutating the ORIGINAL after cloning must not leak into the clone.
	r.Add(tuple.Ints(9), 3)
	if c.Contains(tuple.Ints(9)) || c.Cardinality() != 1 {
		t.Error("mutating the original must not affect an earlier clone")
	}
	// A second clone taken after the mutation sees the new state.
	c2 := r.Clone()
	if c2.Multiplicity(tuple.Ints(9)) != 3 {
		t.Error("later clone must carry the mutated state")
	}
	// Remove and SetMultiplicity must also trigger the lazy copy.
	c2.Remove(tuple.Ints(9), 3)
	c3 := r.Clone()
	c3.SetMultiplicity(tuple.Ints(1), 0)
	if r.Multiplicity(tuple.Ints(9)) != 3 || !r.Contains(tuple.Ints(1)) {
		t.Error("mutating clones must not affect the original")
	}
}

func TestWithSchemaMutationSafe(t *testing.T) {
	r := FromTuples(intSchema(1), tuple.Ints(1))
	v := r.WithSchema(schema.NewRelation("temp", schema.Attribute{Name: "x", Type: value.KindInt}))
	v.Add(tuple.Ints(2), 1)
	if r.Contains(tuple.Ints(2)) {
		t.Error("mutating a WithSchema view must not affect the original")
	}
	r.Add(tuple.Ints(3), 1)
	if v.Contains(tuple.Ints(3)) {
		t.Error("mutating the original must not affect a WithSchema view")
	}
}

func TestRemoveLeavesReAddableTombstone(t *testing.T) {
	r := FromTuples(intSchema(1), tuple.Ints(1), tuple.Ints(2))
	if got := r.Remove(tuple.Ints(1), 5); got != 1 {
		t.Errorf("Remove clamped = %d, want 1", got)
	}
	if r.Contains(tuple.Ints(1)) || r.DistinctCount() != 1 || r.Cardinality() != 1 {
		t.Error("removed tuple must not be visible")
	}
	r.Add(tuple.Ints(1), 4)
	if r.Multiplicity(tuple.Ints(1)) != 4 || r.DistinctCount() != 2 || r.Cardinality() != 5 {
		t.Error("re-adding a fully removed tuple must revive it")
	}
}

func TestWithSchema(t *testing.T) {
	r := FromTuples(intSchema(1), tuple.Ints(1))
	renamed := r.WithSchema(schema.NewRelation("temp", schema.Attribute{Name: "x", Type: value.KindInt}))
	if renamed.Schema().Name() != "temp" {
		t.Error("WithSchema must carry the new schema")
	}
	if renamed.Cardinality() != 1 || !renamed.Contains(tuple.Ints(1)) {
		t.Error("WithSchema must share contents")
	}
}

func TestEqualAndSubset(t *testing.T) {
	s := intSchema(1)
	a := FromTuples(s, tuple.Ints(1), tuple.Ints(1), tuple.Ints(2))
	b := FromTuples(s, tuple.Ints(2), tuple.Ints(1), tuple.Ints(1))
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("order of insertion must not matter for equality")
	}
	c := FromTuples(s, tuple.Ints(1), tuple.Ints(2))
	if a.Equal(c) {
		t.Error("different multiplicities must not be equal")
	}
	if !c.SubsetOf(a) {
		t.Error("c ⊑ a must hold")
	}
	if a.SubsetOf(c) {
		t.Error("a ⊑ c must not hold")
	}
	empty := New(s)
	if !empty.SubsetOf(a) || !empty.SubsetOf(empty) {
		t.Error("∅ is a multi-subset of everything")
	}
	d := FromTuples(s, tuple.Ints(9))
	if d.SubsetOf(a) {
		t.Error("foreign tuple must break the subset relation")
	}
	// Same total cardinality, different contents.
	e := FromTuples(s, tuple.Ints(5), tuple.Ints(5), tuple.Ints(6))
	if a.Equal(e) {
		t.Error("same cardinality but different tuples must not be equal")
	}
}

func TestStringRendering(t *testing.T) {
	r := FromTuples(intSchema(1), tuple.Ints(2), tuple.Ints(2), tuple.Ints(1))
	s := r.String()
	if !strings.Contains(s, "^2") || !strings.HasPrefix(s, "{") {
		t.Errorf("String = %q", s)
	}
	if New(intSchema(1)).String() != "{}" {
		t.Error("empty relation renders as {}")
	}
}

func TestUnion(t *testing.T) {
	s := intSchema(1)
	a := FromTuples(s, tuple.Ints(1), tuple.Ints(1))
	b := FromTuples(s, tuple.Ints(1), tuple.Ints(2))
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Multiplicity(tuple.Ints(1)) != 3 || u.Multiplicity(tuple.Ints(2)) != 1 {
		t.Errorf("Union = %v", u)
	}
	// Inputs untouched.
	if a.Cardinality() != 2 || b.Cardinality() != 2 {
		t.Error("Union must not mutate its operands")
	}
	if _, err := Union(a, FromTuples(intSchema(2), tuple.Ints(1, 2))); err == nil {
		t.Error("incompatible union must fail")
	}
}

func TestDifference(t *testing.T) {
	s := intSchema(1)
	a := FromTuples(s, tuple.Ints(1), tuple.Ints(1), tuple.Ints(2))
	b := FromTuples(s, tuple.Ints(1), tuple.Ints(3))
	d, err := Difference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Multiplicity(tuple.Ints(1)) != 1 || d.Multiplicity(tuple.Ints(2)) != 1 || d.Contains(tuple.Ints(3)) {
		t.Errorf("Difference = %v", d)
	}
	if _, err := Difference(a, FromTuples(intSchema(2), tuple.Ints(1, 2))); err == nil {
		t.Error("incompatible difference must fail")
	}
}

func TestIntersection(t *testing.T) {
	s := intSchema(1)
	a := FromTuples(s, tuple.Ints(1), tuple.Ints(1), tuple.Ints(1), tuple.Ints(2))
	b := FromTuples(s, tuple.Ints(1), tuple.Ints(1), tuple.Ints(3))
	i, err := Intersection(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if i.Multiplicity(tuple.Ints(1)) != 2 || i.Contains(tuple.Ints(2)) || i.Contains(tuple.Ints(3)) {
		t.Errorf("Intersection = %v", i)
	}
	// Symmetric.
	j, _ := Intersection(b, a)
	if !i.Equal(j) {
		t.Error("intersection must be symmetric")
	}
	if _, err := Intersection(a, FromTuples(intSchema(2), tuple.Ints(1, 2))); err == nil {
		t.Error("incompatible intersection must fail")
	}
}

func TestProduct(t *testing.T) {
	a := FromTuples(intSchema(1), tuple.Ints(1), tuple.Ints(1))
	b := FromTuples(intSchema(1), tuple.Ints(5), tuple.Ints(6))
	p := Product(a, b)
	if p.Schema().Arity() != 2 {
		t.Errorf("product schema arity = %d", p.Schema().Arity())
	}
	if p.Multiplicity(tuple.Ints(1, 5)) != 2 || p.Multiplicity(tuple.Ints(1, 6)) != 2 {
		t.Errorf("Product multiplicities wrong: %v", p)
	}
	if p.Cardinality() != 4 {
		t.Errorf("Product cardinality = %d", p.Cardinality())
	}
	empty := New(intSchema(1))
	if !Product(a, empty).IsEmpty() || !Product(empty, b).IsEmpty() {
		t.Error("product with the empty relation is empty")
	}
}

func TestUnique(t *testing.T) {
	r := FromTuples(intSchema(1), tuple.Ints(1), tuple.Ints(1), tuple.Ints(2))
	u := Unique(r)
	if u.Multiplicity(tuple.Ints(1)) != 1 || u.Multiplicity(tuple.Ints(2)) != 1 {
		t.Errorf("Unique = %v", u)
	}
	// Idempotent.
	if !Unique(u).Equal(u) {
		t.Error("δ must be idempotent")
	}
}

func TestSelect(t *testing.T) {
	r := FromTuples(intSchema(1), tuple.Ints(1), tuple.Ints(2), tuple.Ints(2))
	sel, err := Select(r, func(t tuple.Tuple) (bool, error) { return t.At(0).Int() > 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if sel.Multiplicity(tuple.Ints(2)) != 2 || sel.Contains(tuple.Ints(1)) {
		t.Errorf("Select = %v", sel)
	}
	if _, err := Select(r, func(t tuple.Tuple) (bool, error) { return false, value.ErrType }); err == nil {
		t.Error("predicate errors must propagate")
	}
}

func TestProjectAccumulatesMultiplicities(t *testing.T) {
	s := schema.Anonymous(
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindInt},
	)
	r := FromTuples(s, tuple.Ints(1, 10), tuple.Ints(2, 10), tuple.Ints(3, 20))
	p, err := Project(r, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Multiplicity(tuple.Ints(10)) != 2 || p.Multiplicity(tuple.Ints(20)) != 1 {
		t.Errorf("bag projection must accumulate multiplicities: %v", p)
	}
	if _, err := Project(r, []int{5}); err == nil {
		t.Error("out-of-range projection must fail")
	}
}

func TestMap(t *testing.T) {
	s := intSchema(1)
	out := schema.Anonymous(schema.Attribute{Name: "double", Type: value.KindInt})
	r := FromTuples(s, tuple.Ints(1), tuple.Ints(1), tuple.Ints(2))
	m, err := Map(r, out, func(t tuple.Tuple) (tuple.Tuple, error) {
		return tuple.Ints(t.At(0).Int() * 2), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Multiplicity(tuple.Ints(2)) != 2 || m.Multiplicity(tuple.Ints(4)) != 1 {
		t.Errorf("Map = %v", m)
	}
	if _, err := Map(r, out, func(t tuple.Tuple) (tuple.Tuple, error) { return tuple.Tuple{}, value.ErrType }); err == nil {
		t.Error("map errors must propagate")
	}
}

func TestIncompatibleError(t *testing.T) {
	e := &ErrIncompatible{Op: "union", Left: intSchema(1), Right: intSchema(2)}
	if !strings.Contains(e.Error(), "union") {
		t.Errorf("Error = %q", e.Error())
	}
}

// TestEachInPartitionDisjointCover checks the hash partitions are disjoint and
// cover the relation for several partition counts, multiplicities included.
func TestEachInPartitionDisjointCover(t *testing.T) {
	s := schema.NewRelation("r",
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindInt})
	r := New(s)
	for i := 0; i < 100; i++ {
		r.Add(tuple.Ints(int64(i%17), int64(i%5)), uint64(1+i%3))
	}
	// A tombstone must stay invisible to partitioned iteration.
	r.Add(tuple.Ints(999, 999), 2)
	r.Remove(tuple.Ints(999, 999), 2)

	for _, parts := range []int{1, 2, 3, 8} {
		union := New(s)
		for p := 0; p < parts; p++ {
			r.EachInPartition(p, parts, func(tp tuple.Tuple, n uint64) bool {
				if union.Multiplicity(tp) != 0 {
					t.Fatalf("parts=%d: tuple %s in two partitions", parts, tp)
				}
				union.Add(tp, n)
				return true
			})
		}
		if !union.Equal(r) {
			t.Fatalf("parts=%d: union of partitions %s != relation %s", parts, union, r)
		}
	}
}

// TestMergeFrom checks the cached-hash merge sums multiplicities, revives
// tombstones, and leaves the source untouched.
func TestMergeFrom(t *testing.T) {
	s := schema.NewRelation("r", schema.Attribute{Name: "a", Type: value.KindInt})
	a, b := New(s), New(s)
	a.Add(tuple.Ints(1), 2)
	a.Add(tuple.Ints(2), 1)
	a.Add(tuple.Ints(3), 1)
	a.Remove(tuple.Ints(3), 1) // tombstone in the destination
	b.Add(tuple.Ints(1), 3)
	b.Add(tuple.Ints(3), 4)
	b.Add(tuple.Ints(5), 1)

	a.MergeFrom(b)
	if got := a.Multiplicity(tuple.Ints(1)); got != 5 {
		t.Errorf("a(1) = %d, want 5", got)
	}
	if got := a.Multiplicity(tuple.Ints(3)); got != 4 {
		t.Errorf("a(3) = %d, want 4 (tombstone revived)", got)
	}
	if a.Cardinality() != 11 || a.DistinctCount() != 4 {
		t.Errorf("cardinality/distinct = %d/%d, want 11/4", a.Cardinality(), a.DistinctCount())
	}
	if b.Cardinality() != 8 {
		t.Errorf("source changed: %s", b)
	}

	// Merging into a copy-on-write view must not corrupt the other view.
	base := New(s)
	base.Add(tuple.Ints(7), 1)
	view := base.Clone()
	view.MergeFrom(b)
	if base.Cardinality() != 1 {
		t.Errorf("COW base changed by MergeFrom: %s", base)
	}
	if view.Multiplicity(tuple.Ints(1)) != 3 || view.Multiplicity(tuple.Ints(7)) != 1 {
		t.Errorf("view after merge = %s", view)
	}
}

// TestEachEntryRangeDisjointCover checks that any partition of
// [0, EntrySpan()) into ranges delivers every live tuple exactly once with
// its full multiplicity, skipping tombstones, and that out-of-range bounds
// are clamped.
func TestEachEntryRangeDisjointCover(t *testing.T) {
	s := schema.NewRelation("r",
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindInt})
	r := New(s)
	for i := 0; i < 100; i++ {
		r.Add(tuple.Ints(int64(i%30), int64(i%7)), uint64(1+i%4))
	}
	r.Remove(tuple.Ints(3, 3), 1<<40) // tombstone mid-arena

	for _, step := range []int{1, 7, 17, 1000} {
		sum := New(s)
		span := r.EntrySpan()
		for lo := 0; lo < span; lo += step {
			r.EachEntryRange(lo, lo+step, func(tp tuple.Tuple, n uint64) bool {
				sum.Add(tp, n)
				return true
			})
		}
		if !sum.Equal(r) {
			t.Fatalf("step %d: range union %s != relation %s", step, sum, r)
		}
	}

	// Clamping: negative lo and hi past the span are tolerated.
	whole := New(s)
	r.EachEntryRange(-5, r.EntrySpan()+100, func(tp tuple.Tuple, n uint64) bool {
		whole.Add(tp, n)
		return true
	})
	if !whole.Equal(r) {
		t.Fatalf("clamped full range %s != relation %s", whole, r)
	}

	// Early termination.
	calls := 0
	r.EachEntryRange(0, r.EntrySpan(), func(tuple.Tuple, uint64) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop after %d calls, want 3", calls)
	}
}

// TestAddBatch checks the batched add equals a loop of Adds — accumulation,
// zero-count skipping — and respects copy-on-write sharing.
func TestAddBatch(t *testing.T) {
	s := schema.NewRelation("r", schema.Attribute{Name: "a", Type: value.KindInt})
	tuples := []tuple.Tuple{tuple.Ints(1), tuple.Ints(2), tuple.Ints(1), tuple.Ints(3)}
	counts := []uint64{2, 1, 3, 0}

	batched := New(s)
	batched.AddBatch(tuples, counts)
	looped := New(s)
	for i := range tuples {
		looped.Add(tuples[i], counts[i])
	}
	if !batched.Equal(looped) {
		t.Fatalf("AddBatch %s != looped Adds %s", batched, looped)
	}
	if batched.Contains(tuple.Ints(3)) {
		t.Error("zero-count chunk inserted")
	}

	base := New(s)
	base.Add(tuple.Ints(9), 1)
	view := base.Clone()
	view.AddBatch(tuples, counts)
	if base.Cardinality() != 1 {
		t.Errorf("COW base changed by AddBatch: %s", base)
	}
	if view.Multiplicity(tuple.Ints(1)) != 5 {
		t.Errorf("view(1) = %d, want 5", view.Multiplicity(tuple.Ints(1)))
	}
}
