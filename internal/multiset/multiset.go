// Package multiset implements multi-set relations: relation instances that
// map each tuple of the relation's domain to a natural-number multiplicity
// (Definition 2.2 of Grefen & de By, ICDE 1994).
//
// A Relation R of schema 𝓡 is a function R : dom(𝓡) → ℕ; the value R(x) is
// the multiplicity of x in R, and x ∈ R ⇔ R(x) > 0.  The representation never
// stores zero-multiplicity entries, so membership is structural.
package multiset

import (
	"fmt"
	"sort"
	"strings"

	"mra/internal/schema"
	"mra/internal/tuple"
)

// entry pairs a representative tuple with its multiplicity.
type entry struct {
	tup   tuple.Tuple
	count uint64
}

// Relation is a multi-set relation instance.  The zero value is not usable;
// construct relations with New.
type Relation struct {
	schema  schema.Relation
	entries map[string]entry
	total   uint64
}

// New returns an empty relation instance of the given schema.
func New(s schema.Relation) *Relation {
	return &Relation{schema: s, entries: make(map[string]entry)}
}

// FromTuples builds a relation containing the given tuples, each with
// multiplicity one per occurrence (duplicates in the argument accumulate).
func FromTuples(s schema.Relation, tuples ...tuple.Tuple) *Relation {
	r := New(s)
	for _, t := range tuples {
		r.Add(t, 1)
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() schema.Relation { return r.schema }

// Multiplicity returns R(t), the number of occurrences of t in R.
func (r *Relation) Multiplicity(t tuple.Tuple) uint64 {
	return r.entries[t.Key()].count
}

// Contains reports t ∈ R, i.e. R(t) > 0.
func (r *Relation) Contains(t tuple.Tuple) bool { return r.Multiplicity(t) > 0 }

// Add increases the multiplicity of t by n.  Adding zero is a no-op.
func (r *Relation) Add(t tuple.Tuple, n uint64) {
	if n == 0 {
		return
	}
	key := t.Key()
	e := r.entries[key]
	if e.count == 0 {
		e.tup = t
	}
	e.count += n
	r.entries[key] = e
	r.total += n
}

// Remove decreases the multiplicity of t by n, clamping at zero ("monus", the
// semantics of the multi-set difference operator).  It returns the number of
// occurrences actually removed.
func (r *Relation) Remove(t tuple.Tuple, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	key := t.Key()
	e, ok := r.entries[key]
	if !ok {
		return 0
	}
	removed := n
	if removed > e.count {
		removed = e.count
	}
	e.count -= removed
	r.total -= removed
	if e.count == 0 {
		delete(r.entries, key)
	} else {
		r.entries[key] = e
	}
	return removed
}

// SetMultiplicity forces R(t) = n, inserting or deleting the entry as needed.
func (r *Relation) SetMultiplicity(t tuple.Tuple, n uint64) {
	key := t.Key()
	e, ok := r.entries[key]
	if ok {
		r.total -= e.count
	}
	if n == 0 {
		delete(r.entries, key)
		return
	}
	r.entries[key] = entry{tup: t, count: n}
	r.total += n
}

// Cardinality returns |R| counting duplicates: Σ_x R(x).
func (r *Relation) Cardinality() uint64 { return r.total }

// DistinctCount returns the number of distinct tuples with R(x) > 0.
func (r *Relation) DistinctCount() int { return len(r.entries) }

// IsEmpty reports whether the relation contains no tuples.
func (r *Relation) IsEmpty() bool { return r.total == 0 }

// Each calls fn once per distinct tuple with its multiplicity.  Iteration
// order is unspecified (relations are unordered collections).  If fn returns
// false, iteration stops.
func (r *Relation) Each(fn func(t tuple.Tuple, count uint64) bool) {
	for _, e := range r.entries {
		if !fn(e.tup, e.count) {
			return
		}
	}
}

// EachOccurrence calls fn once per occurrence, i.e. a tuple with multiplicity
// k is visited k times.  If fn returns false, iteration stops.
func (r *Relation) EachOccurrence(fn func(t tuple.Tuple) bool) {
	for _, e := range r.entries {
		for i := uint64(0); i < e.count; i++ {
			if !fn(e.tup) {
				return
			}
		}
	}
}

// Tuples returns all occurrences as a flat slice (duplicates expanded), in
// canonical (sorted) order for deterministic output.
func (r *Relation) Tuples() []tuple.Tuple {
	out := make([]tuple.Tuple, 0, r.total)
	r.EachSorted(func(t tuple.Tuple, count uint64) bool {
		for i := uint64(0); i < count; i++ {
			out = append(out, t)
		}
		return true
	})
	return out
}

// Distinct returns the distinct tuples in canonical (sorted) order.
func (r *Relation) Distinct() []tuple.Tuple {
	out := make([]tuple.Tuple, 0, len(r.entries))
	r.EachSorted(func(t tuple.Tuple, _ uint64) bool {
		out = append(out, t)
		return true
	})
	return out
}

// EachSorted iterates distinct tuples in canonical lexicographic order.  It is
// intended for deterministic rendering and test assertions; the algebra never
// relies on order.
func (r *Relation) EachSorted(fn func(t tuple.Tuple, count uint64) bool) {
	keys := make([]string, 0, len(r.entries))
	for k := range r.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return r.entries[keys[i]].tup.Compare(r.entries[keys[j]].tup) < 0
	})
	for _, k := range keys {
		e := r.entries[k]
		if !fn(e.tup, e.count) {
			return
		}
	}
}

// Clone returns a deep copy of the relation (entries are copied; tuples are
// immutable and shared).
func (r *Relation) Clone() *Relation {
	cp := &Relation{schema: r.schema, entries: make(map[string]entry, len(r.entries)), total: r.total}
	for k, e := range r.entries {
		cp.entries[k] = e
	}
	return cp
}

// WithSchema returns a shallow re-typed view of the relation carrying a
// different (but compatible) schema.  The entries are shared; callers must
// treat the result as read-only or Clone first.
func (r *Relation) WithSchema(s schema.Relation) *Relation {
	return &Relation{schema: s, entries: r.entries, total: r.total}
}

// Equal implements Definition 2.3's equality: R1 = R2 ⇔ ∀x R1(x) = R2(x).
func (r *Relation) Equal(o *Relation) bool {
	if r.total != o.total || len(r.entries) != len(o.entries) {
		return false
	}
	for k, e := range r.entries {
		if o.entries[k].count != e.count {
			return false
		}
	}
	return true
}

// SubsetOf implements Definition 2.3's multi-subset: R1 ⊑ R2 ⇔ ∀x R1(x) ≤ R2(x).
func (r *Relation) SubsetOf(o *Relation) bool {
	if r.total > o.total {
		return false
	}
	for k, e := range r.entries {
		if o.entries[k].count < e.count {
			return false
		}
	}
	return true
}

// String renders the relation as a sorted multi-set literal
// {t1^m1, t2^m2, ...} with multiplicities shown when greater than one.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	r.EachSorted(func(t tuple.Tuple, count uint64) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(t.String())
		if count > 1 {
			fmt.Fprintf(&b, "^%d", count)
		}
		return true
	})
	b.WriteByte('}')
	return b.String()
}
