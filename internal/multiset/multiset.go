// Package multiset implements multi-set relations: relation instances that
// map each tuple of the relation's domain to a natural-number multiplicity
// (Definition 2.2 of Grefen & de By, ICDE 1994).
//
// A Relation R of schema 𝓡 is a function R : dom(𝓡) → ℕ; the value R(x) is
// the multiplicity of x in R, and x ∈ R ⇔ R(x) > 0.  The representation never
// reports zero-multiplicity entries, so membership is structural.
//
// Physically a relation is a hash table indexed by tuple.Hash() with
// Tuple.Equal collision chains — no canonical string key is ever built.  The
// table is shared copy-on-write between Clone/WithSchema views: cloning is
// O(1) and the first mutation of a shared view copies the table privately.
package multiset

import (
	"fmt"
	"maps"
	"slices"
	"sort"
	"strings"
	"sync/atomic"

	"mra/internal/schema"
	"mra/internal/tuple"
)

// chainEnd terminates a collision chain.
const chainEnd = int32(-1)

// entry is one slot of the hash table: a representative tuple, its cached
// hash, its multiplicity, and the index of the next entry with the same hash.
// An entry whose count is zero is a tombstone left behind by Remove; it is
// skipped by iteration and revived in place if the tuple is re-added.
type entry struct {
	tup   tuple.Tuple
	hash  uint64
	count uint64
	next  int32
}

// table is the physical representation shared copy-on-write between relation
// views: a flat entry arena plus a hash index mapping tuple.Hash() to the
// head of that hash's collision chain.
type table struct {
	index   map[uint64]int32
	entries []entry
	live    int
	total   uint64
}

func newTable(capacity int) *table {
	return &table{index: make(map[uint64]int32, capacity), entries: make([]entry, 0, capacity)}
}

func (t *table) clone() *table {
	return &table{index: maps.Clone(t.index), entries: slices.Clone(t.entries), live: t.live, total: t.total}
}

// find returns the index of the entry holding tup (live or tombstoned), or
// chainEnd if the tuple has never been stored.
func (t *table) find(h uint64, tup tuple.Tuple) int32 {
	head, ok := t.index[h]
	if !ok {
		return chainEnd
	}
	for i := head; i != chainEnd; i = t.entries[i].next {
		if t.entries[i].tup.Equal(tup) {
			return i
		}
	}
	return chainEnd
}

// insert appends a new entry for a tuple known to be absent, prepending it to
// its hash's collision chain.
func (t *table) insert(h uint64, tup tuple.Tuple, n uint64) {
	head, ok := t.index[h]
	if !ok {
		head = chainEnd
	}
	t.index[h] = int32(len(t.entries))
	t.entries = append(t.entries, entry{tup: tup, hash: h, count: n, next: head})
	t.live++
	t.total += n
}

// add increases the multiplicity of tup (whose hash is h) by n, reviving a
// tombstoned entry in place or inserting a fresh one.  It is the one copy of
// the probe/resurrect/insert sequence shared by the scalar, batched and merge
// sinks; callers handle copy-on-write materialisation and n == 0 skipping.
func (t *table) add(h uint64, tup tuple.Tuple, n uint64) {
	if i := t.find(h, tup); i != chainEnd {
		e := &t.entries[i]
		if e.count == 0 {
			t.live++
		}
		e.count += n
		t.total += n
		return
	}
	t.insert(h, tup, n)
}

// Relation is a multi-set relation instance.  The zero value is not usable;
// construct relations with New.  A Relation must not be copied by value.
type Relation struct {
	schema schema.Relation
	tab    *table
	// cow marks the table as shared with at least one other view (created by
	// Clone or WithSchema); the first mutation copies it privately.
	cow atomic.Bool
}

// New returns an empty relation instance of the given schema.
func New(s schema.Relation) *Relation { return NewWithCapacity(s, 0) }

// NewWithCapacity returns an empty relation pre-sized for about n distinct
// tuples, so bulk loads by the physical operators avoid rehash growth.
func NewWithCapacity(s schema.Relation, n int) *Relation {
	return &Relation{schema: s, tab: newTable(n)}
}

// FromTuples builds a relation containing the given tuples, each with
// multiplicity one per occurrence (duplicates in the argument accumulate).
func FromTuples(s schema.Relation, tuples ...tuple.Tuple) *Relation {
	r := NewWithCapacity(s, len(tuples))
	for _, t := range tuples {
		r.Add(t, 1)
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() schema.Relation { return r.schema }

// materialize gives the relation a private table before a mutation when the
// current one is shared with other copy-on-write views.
func (r *Relation) materialize() {
	if !r.cow.Load() {
		return
	}
	r.tab = r.tab.clone()
	r.cow.Store(false)
}

// Multiplicity returns R(t), the number of occurrences of t in R.
func (r *Relation) Multiplicity(t tuple.Tuple) uint64 {
	if i := r.tab.find(t.Hash(), t); i != chainEnd {
		return r.tab.entries[i].count
	}
	return 0
}

// Contains reports t ∈ R, i.e. R(t) > 0.
func (r *Relation) Contains(t tuple.Tuple) bool { return r.Multiplicity(t) > 0 }

// Add increases the multiplicity of t by n.  Adding zero is a no-op.
func (r *Relation) Add(t tuple.Tuple, n uint64) {
	if n == 0 {
		return
	}
	r.materialize()
	r.tab.add(t.Hash(), t, n)
}

// Remove decreases the multiplicity of t by n, clamping at zero ("monus", the
// semantics of the multi-set difference operator).  It returns the number of
// occurrences actually removed.
func (r *Relation) Remove(t tuple.Tuple, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	r.materialize()
	tab := r.tab
	i := tab.find(t.Hash(), t)
	if i == chainEnd || tab.entries[i].count == 0 {
		return 0
	}
	e := &tab.entries[i]
	removed := n
	if removed > e.count {
		removed = e.count
	}
	e.count -= removed
	tab.total -= removed
	if e.count == 0 {
		tab.live--
	}
	return removed
}

// SetMultiplicity forces R(t) = n, inserting or deleting the entry as needed.
func (r *Relation) SetMultiplicity(t tuple.Tuple, n uint64) {
	r.materialize()
	tab := r.tab
	h := t.Hash()
	i := tab.find(h, t)
	if i == chainEnd {
		if n > 0 {
			tab.insert(h, t, n)
		}
		return
	}
	e := &tab.entries[i]
	switch {
	case e.count == 0 && n > 0:
		tab.live++
	case e.count > 0 && n == 0:
		tab.live--
	}
	tab.total += n - e.count
	e.count = n
}

// Cardinality returns |R| counting duplicates: Σ_x R(x).
func (r *Relation) Cardinality() uint64 { return r.tab.total }

// DistinctCount returns the number of distinct tuples with R(x) > 0.
func (r *Relation) DistinctCount() int { return r.tab.live }

// IsEmpty reports whether the relation contains no tuples.
func (r *Relation) IsEmpty() bool { return r.tab.total == 0 }

// Each calls fn once per distinct tuple with its multiplicity.  Iteration
// order is unspecified (relations are unordered collections).  If fn returns
// false, iteration stops.  fn must not mutate r.
func (r *Relation) Each(fn func(t tuple.Tuple, count uint64) bool) {
	entries := r.tab.entries
	for i := range entries {
		if entries[i].count == 0 {
			continue
		}
		if !fn(entries[i].tup, entries[i].count) {
			return
		}
	}
}

// EachInPartition calls fn once per distinct tuple belonging to hash partition
// part of parts: the tuples whose cached hash satisfies hash mod parts == part.
// The partitions for a fixed parts are disjoint and cover the relation, which
// is what the parallel runtime's partitioned scans rely on; because the hash
// is cached per entry, selecting a partition costs one integer modulo per
// entry and never re-hashes attribute values.  If fn returns false, iteration
// stops.  fn must not mutate r.
func (r *Relation) EachInPartition(part, parts int, fn func(t tuple.Tuple, count uint64) bool) {
	if parts <= 1 {
		r.Each(fn)
		return
	}
	p, n := uint64(part), uint64(parts)
	entries := r.tab.entries
	for i := range entries {
		if entries[i].count == 0 || entries[i].hash%n != p {
			continue
		}
		if !fn(entries[i].tup, entries[i].count) {
			return
		}
	}
}

// EachBatch calls fn with consecutive vectors of up to size live chunks
// (tuples[i] occurs counts[i] times), filled from the entry arena in one
// tight pass: the vectorised form of Each, with no per-tuple callback.  The
// slices passed to fn are reused between calls and must not be retained;
// the tuples inside them may be.  If fn returns false, iteration stops.
func (r *Relation) EachBatch(size int, fn func(tuples []tuple.Tuple, counts []uint64) bool) {
	if size <= 0 {
		size = 256
	}
	tuples := make([]tuple.Tuple, 0, size)
	counts := make([]uint64, 0, size)
	entries := r.tab.entries
	for i := range entries {
		if entries[i].count == 0 {
			continue
		}
		tuples = append(tuples, entries[i].tup)
		counts = append(counts, entries[i].count)
		if len(tuples) == size {
			if !fn(tuples, counts) {
				return
			}
			tuples, counts = tuples[:0], counts[:0]
		}
	}
	if len(tuples) > 0 {
		fn(tuples, counts)
	}
}

// EntrySpan returns the size of the relation's entry arena — the index domain
// EachEntryRange iterates over.  The span counts tombstoned entries too, so it
// is stable across reads and only grows under insertion; morsel-driven scans
// cut [0, EntrySpan()) into work-stealing ranges.
func (r *Relation) EntrySpan() int { return len(r.tab.entries) }

// EachEntryRange calls fn once per live tuple stored in arena positions
// [lo, hi), clamped to the entry span.  The ranges of a partition of
// [0, EntrySpan()) are disjoint and cover the relation, which is what makes
// any morsel-wise split of a scan exact under bag semantics: every occurrence
// is delivered by exactly one range.  If fn returns false, iteration stops.
// fn must not mutate r.
func (r *Relation) EachEntryRange(lo, hi int, fn func(t tuple.Tuple, count uint64) bool) {
	entries := r.tab.entries
	if lo < 0 {
		lo = 0
	}
	if hi > len(entries) {
		hi = len(entries)
	}
	for i := lo; i < hi; i++ {
		if entries[i].count == 0 {
			continue
		}
		if !fn(entries[i].tup, entries[i].count) {
			return
		}
	}
}

// AddBatch adds tuples[i] with multiplicity counts[i] for every i, like a
// loop over Add but with the copy-on-write check hoisted out of the loop.  It
// is the sink half of the physical layer's batched emit: one call installs a
// whole output batch.  Zero counts are skipped.  The slices must have equal
// length; the relation keeps references to the tuples but not to the slices.
func (r *Relation) AddBatch(tuples []tuple.Tuple, counts []uint64) {
	if len(tuples) == 0 {
		return
	}
	r.materialize()
	tab := r.tab
	for i, t := range tuples {
		if counts[i] == 0 {
			continue
		}
		tab.add(t.Hash(), t, counts[i])
	}
}

// AddBatchSel is AddBatch over a selection vector: only the physical rows
// listed in sel (ascending indices into tuples/counts) are added.  It is the
// sink half of the columnar emit contract — a filtered batch lands in the
// relation without ever being compacted.  Zero counts are skipped.
func (r *Relation) AddBatchSel(tuples []tuple.Tuple, counts []uint64, sel []int32) {
	if len(sel) == 0 {
		return
	}
	r.materialize()
	tab := r.tab
	for _, i := range sel {
		if counts[i] == 0 {
			continue
		}
		t := tuples[i]
		tab.add(t.Hash(), t, counts[i])
	}
}

// MergeFrom adds every tuple of o to r with its multiplicity (multi-set union
// in place): the merge step of the parallel runtime's exchange operators.  It
// reuses o's cached entry hashes, so merging partial results never re-hashes
// attribute values.  o is not modified.
func (r *Relation) MergeFrom(o *Relation) {
	if o.tab.total == 0 {
		return
	}
	r.materialize()
	tab := r.tab
	entries := o.tab.entries
	for i := range entries {
		e := &entries[i]
		if e.count == 0 {
			continue
		}
		tab.add(e.hash, e.tup, e.count)
	}
}

// EachOccurrence calls fn once per occurrence, i.e. a tuple with multiplicity
// k is visited k times.  If fn returns false, iteration stops.
func (r *Relation) EachOccurrence(fn func(t tuple.Tuple) bool) {
	entries := r.tab.entries
	for i := range entries {
		for k := uint64(0); k < entries[i].count; k++ {
			if !fn(entries[i].tup) {
				return
			}
		}
	}
}

// Tuples returns all occurrences as a flat slice (duplicates expanded), in
// canonical (sorted) order for deterministic output.
func (r *Relation) Tuples() []tuple.Tuple {
	out := make([]tuple.Tuple, 0, r.tab.total)
	r.EachSorted(func(t tuple.Tuple, count uint64) bool {
		for i := uint64(0); i < count; i++ {
			out = append(out, t)
		}
		return true
	})
	return out
}

// Distinct returns the distinct tuples in canonical (sorted) order.
func (r *Relation) Distinct() []tuple.Tuple {
	out := make([]tuple.Tuple, 0, r.tab.live)
	r.EachSorted(func(t tuple.Tuple, _ uint64) bool {
		out = append(out, t)
		return true
	})
	return out
}

// EachSorted iterates distinct tuples in canonical lexicographic order.  It is
// intended for deterministic rendering and test assertions; the algebra never
// relies on order.
func (r *Relation) EachSorted(fn func(t tuple.Tuple, count uint64) bool) {
	entries := r.tab.entries
	idx := make([]int32, 0, r.tab.live)
	for i := range entries {
		if entries[i].count > 0 {
			idx = append(idx, int32(i))
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		return entries[idx[a]].tup.Compare(entries[idx[b]].tup) < 0
	})
	for _, i := range idx {
		if !fn(entries[i].tup, entries[i].count) {
			return
		}
	}
}

// Clone returns an independent copy of the relation in O(1): the table is
// shared copy-on-write, and whichever side mutates first copies it privately.
// Tuples are immutable and always shared.
func (r *Relation) Clone() *Relation {
	r.cow.Store(true)
	cp := &Relation{schema: r.schema, tab: r.tab}
	cp.cow.Store(true)
	return cp
}

// WithSchema returns a re-typed view of the relation carrying a different
// (but compatible) schema.  Like Clone, the view shares the table
// copy-on-write, so it is safe to mutate either side afterwards.
func (r *Relation) WithSchema(s schema.Relation) *Relation {
	r.cow.Store(true)
	cp := &Relation{schema: s, tab: r.tab}
	cp.cow.Store(true)
	return cp
}

// Equal implements Definition 2.3's equality: R1 = R2 ⇔ ∀x R1(x) = R2(x).
func (r *Relation) Equal(o *Relation) bool {
	if r.tab.total != o.tab.total || r.tab.live != o.tab.live {
		return false
	}
	if r.tab == o.tab {
		return true
	}
	entries := r.tab.entries
	for i := range entries {
		if entries[i].count == 0 {
			continue
		}
		j := o.tab.find(entries[i].hash, entries[i].tup)
		if j == chainEnd || o.tab.entries[j].count != entries[i].count {
			return false
		}
	}
	return true
}

// SubsetOf implements Definition 2.3's multi-subset: R1 ⊑ R2 ⇔ ∀x R1(x) ≤ R2(x).
func (r *Relation) SubsetOf(o *Relation) bool {
	if r.tab.total > o.tab.total {
		return false
	}
	if r.tab == o.tab {
		return true
	}
	entries := r.tab.entries
	for i := range entries {
		if entries[i].count == 0 {
			continue
		}
		j := o.tab.find(entries[i].hash, entries[i].tup)
		if j == chainEnd || o.tab.entries[j].count < entries[i].count {
			return false
		}
	}
	return true
}

// String renders the relation as a sorted multi-set literal
// {t1^m1, t2^m2, ...} with multiplicities shown when greater than one.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	r.EachSorted(func(t tuple.Tuple, count uint64) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(t.String())
		if count > 1 {
			fmt.Fprintf(&b, "^%d", count)
		}
		return true
	})
	b.WriteByte('}')
	return b.String()
}
