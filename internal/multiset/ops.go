package multiset

import (
	"fmt"

	"mra/internal/schema"
	"mra/internal/tuple"
)

// This file implements the definition-level multi-set operations used as the
// semantic core by both evaluators: union ⊎, difference −, intersection ∩,
// Cartesian product ×, and duplicate elimination δ.  They operate directly on
// materialised relations; the algebra and evaluation packages wrap them in
// operator trees and physical plans.

// ErrIncompatible is returned when an operation is applied to relations whose
// schemas are not union-compatible.
type ErrIncompatible struct {
	// Op names the operation that was applied (union, difference, ...).
	Op string
	// Left and Right are the incompatible operand schemas.
	Left, Right schema.Relation
}

// Error implements the error interface.
func (e *ErrIncompatible) Error() string {
	return fmt.Sprintf("multiset: %s applied to incompatible schemas %s and %s", e.Op, e.Left, e.Right)
}

// Union returns R1 ⊎ R2 with (R1 ⊎ R2)(x) = R1(x) + R2(x) (Definition 3.1).
func Union(a, b *Relation) (*Relation, error) {
	if !a.Schema().Compatible(b.Schema()) {
		return nil, &ErrIncompatible{Op: "union", Left: a.Schema(), Right: b.Schema()}
	}
	out := a.Clone()
	b.Each(func(t tuple.Tuple, count uint64) bool {
		out.Add(t, count)
		return true
	})
	return out, nil
}

// Difference returns R1 − R2 with (R1 − R2)(x) = max(0, R1(x) − R2(x))
// (Definition 3.1).
func Difference(a, b *Relation) (*Relation, error) {
	if !a.Schema().Compatible(b.Schema()) {
		return nil, &ErrIncompatible{Op: "difference", Left: a.Schema(), Right: b.Schema()}
	}
	out := a.Clone()
	b.Each(func(t tuple.Tuple, count uint64) bool {
		out.Remove(t, count)
		return true
	})
	return out, nil
}

// Intersection returns R1 ∩ R2 with (R1 ∩ R2)(x) = min(R1(x), R2(x))
// (Definition 3.2).
func Intersection(a, b *Relation) (*Relation, error) {
	if !a.Schema().Compatible(b.Schema()) {
		return nil, &ErrIncompatible{Op: "intersection", Left: a.Schema(), Right: b.Schema()}
	}
	small, large := a, b
	if small.DistinctCount() > large.DistinctCount() {
		small, large = large, small
	}
	out := NewWithCapacity(a.Schema(), small.DistinctCount())
	small.Each(func(t tuple.Tuple, count uint64) bool {
		other := large.Multiplicity(t)
		m := count
		if other < m {
			m = other
		}
		if m > 0 {
			out.Add(t, m)
		}
		return true
	})
	return out, nil
}

// Product returns R1 × R2 with (R1 × R2)(x ⊕ y) = R1(x) · R2(y)
// (Definition 3.1).  The result schema is 𝓔 ⊕ 𝓔′.
func Product(a, b *Relation) *Relation {
	capacity := a.DistinctCount() * b.DistinctCount()
	if capacity > 1<<20 {
		capacity = 1 << 20
	}
	out := NewWithCapacity(a.Schema().Concat(b.Schema()), capacity)
	a.Each(func(ta tuple.Tuple, ca uint64) bool {
		b.Each(func(tb tuple.Tuple, cb uint64) bool {
			out.Add(ta.Concat(tb), ca*cb)
			return true
		})
		return true
	})
	return out
}

// Unique returns δR: the duplicate-free relation with (δR)(x) = 1 whenever
// R(x) > 0 (Definition 3.4).  Because δR has exactly R's distinct tuples, the
// result reuses a copy of R's hash table with every live multiplicity forced
// to one — no tuple is rehashed.
func Unique(r *Relation) *Relation {
	out := &Relation{schema: r.schema, tab: r.tab.clone()}
	tab := out.tab
	tab.total = 0
	for i := range tab.entries {
		if tab.entries[i].count > 0 {
			tab.entries[i].count = 1
			tab.total++
		}
	}
	return out
}

// Select returns σ_p(R): the sub-multi-set of tuples satisfying the predicate,
// with multiplicities preserved (Definition 3.1).  Predicate errors abort the
// operation.
func Select(r *Relation, pred func(tuple.Tuple) (bool, error)) (*Relation, error) {
	out := NewWithCapacity(r.Schema(), r.DistinctCount())
	var iterErr error
	r.Each(func(t tuple.Tuple, count uint64) bool {
		ok, err := pred(t)
		if err != nil {
			iterErr = err
			return false
		}
		if ok {
			out.Add(t, count)
		}
		return true
	})
	if iterErr != nil {
		return nil, iterErr
	}
	return out, nil
}

// Project returns π_α(R) for a positional attribute list α: multiplicities of
// tuples that collapse onto the same projected tuple accumulate
// (Definition 3.1) — this is the essential difference from the set-based
// projection, which would deduplicate.
func Project(r *Relation, indices []int) (*Relation, error) {
	outSchema, err := r.Schema().Project(indices)
	if err != nil {
		return nil, err
	}
	out := NewWithCapacity(outSchema, r.DistinctCount())
	var iterErr error
	r.Each(func(t tuple.Tuple, count uint64) bool {
		p, err := t.Project(indices)
		if err != nil {
			iterErr = err
			return false
		}
		out.Add(p, count)
		return true
	})
	if iterErr != nil {
		return nil, iterErr
	}
	return out, nil
}

// Map returns the relation obtained by applying fn to every distinct tuple,
// keeping multiplicities.  It is the building block of the extended
// (arithmetic) projection; fn must produce tuples of the given schema.
func Map(r *Relation, out schema.Relation, fn func(tuple.Tuple) (tuple.Tuple, error)) (*Relation, error) {
	res := NewWithCapacity(out, r.DistinctCount())
	var iterErr error
	r.Each(func(t tuple.Tuple, count uint64) bool {
		m, err := fn(t)
		if err != nil {
			iterErr = err
			return false
		}
		res.Add(m, count)
		return true
	})
	if iterErr != nil {
		return nil, iterErr
	}
	return res, nil
}
