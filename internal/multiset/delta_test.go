package multiset

import (
	"math/rand"
	"testing"

	"mra/internal/tuple"
)

// randomRelation builds a relation of up to span distinct single-int tuples
// with multiplicities in [1, 4].
func randomRelation(rng *rand.Rand, span int) *Relation {
	r := New(intSchema(1))
	for v := 0; v < span; v++ {
		if rng.Intn(2) == 0 {
			r.Add(tuple.Ints(int64(v)), uint64(1+rng.Intn(4)))
		}
	}
	return r
}

func TestDiffSharedTableIsEmpty(t *testing.T) {
	r := New(intSchema(1))
	r.Add(tuple.Ints(1), 2)
	r.Add(tuple.Ints(2), 1)
	add, remove := Diff(r, r.Clone())
	if !add.IsEmpty() || !remove.IsEmpty() {
		t.Fatalf("diff of a COW clone must be empty, got add=%v remove=%v", add, remove)
	}
}

func TestDiffApplyDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		base := randomRelation(rng, 12)
		next := randomRelation(rng, 12)
		add, remove := Diff(base, next)

		// Add and remove are disjoint by construction.
		add.Each(func(tp tuple.Tuple, _ uint64) bool {
			if remove.Contains(tp) {
				t.Fatalf("trial %d: tuple %v in both add and remove", trial, tp)
			}
			return true
		})

		got := base.Clone()
		got.ApplyDelta(add, remove)
		if !got.Equal(next) {
			t.Fatalf("trial %d: (base ∸ remove) ⊎ add = %v, want %v (base %v, add %v, remove %v)",
				trial, got, next, base, add, remove)
		}
		// The delta must not have mutated base through the COW clone.
		add2, remove2 := Diff(base, next)
		if !add2.Equal(add) || !remove2.Equal(remove) {
			t.Fatalf("trial %d: Diff is not stable over ApplyDelta on a clone", trial)
		}
	}
}

func TestApplyDeltaMergesDisjointWriters(t *testing.T) {
	base := New(intSchema(1))
	for v := int64(0); v < 4; v++ {
		base.Add(tuple.Ints(v), 1)
	}
	// Writer A bumps tuple 0's multiplicity; writer B deletes tuple 3 and
	// inserts tuple 9.  Applied in either order the merged state is the same.
	mk := func(order [2]int) *Relation {
		addA, remA := New(intSchema(1)), New(intSchema(1))
		addA.Add(tuple.Ints(0), 2)
		addB, remB := New(intSchema(1)), New(intSchema(1))
		remB.Add(tuple.Ints(3), 1)
		addB.Add(tuple.Ints(9), 1)
		deltas := [2][2]*Relation{{addA, remA}, {addB, remB}}
		got := base.Clone()
		for _, i := range order {
			got.ApplyDelta(deltas[i][0], deltas[i][1])
		}
		return got
	}
	ab, ba := mk([2]int{0, 1}), mk([2]int{1, 0})
	if !ab.Equal(ba) {
		t.Fatalf("disjoint deltas must commute: A;B=%v B;A=%v", ab, ba)
	}
	if ab.Multiplicity(tuple.Ints(0)) != 3 || ab.Contains(tuple.Ints(3)) || !ab.Contains(tuple.Ints(9)) {
		t.Fatalf("merged state wrong: %v", ab)
	}
}

func TestApplyDeltaClampsAtZero(t *testing.T) {
	base := New(intSchema(1))
	base.Add(tuple.Ints(1), 1)
	remove := New(intSchema(1))
	remove.Add(tuple.Ints(1), 5)
	remove.Add(tuple.Ints(2), 1) // not present at all
	got := base.Clone()
	got.ApplyDelta(nil, remove)
	if !got.IsEmpty() {
		t.Fatalf("monus must clamp at zero, got %v", got)
	}
}

func TestEachHashMatchesEach(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := randomRelation(rng, 32)
	seen := make(map[uint64]uint64)
	r.EachHash(func(tp tuple.Tuple, h uint64, n uint64) bool {
		if h != tp.Hash() {
			t.Fatalf("cached hash %d != recomputed %d for %v", h, tp.Hash(), tp)
		}
		seen[h] += n
		return true
	})
	total := uint64(0)
	for _, n := range seen {
		total += n
	}
	if total != r.Cardinality() {
		t.Fatalf("EachHash covered %d occurrences, want %d", total, r.Cardinality())
	}
}

func TestContainsHashTracksLiveness(t *testing.T) {
	r := New(intSchema(1))
	tp := tuple.Ints(42)
	if r.ContainsHash(tp.Hash()) {
		t.Fatal("empty relation must not contain the hash")
	}
	r.Add(tp, 2)
	if !r.ContainsHash(tp.Hash()) {
		t.Fatal("live tuple's hash must be contained")
	}
	r.Remove(tp, 2)
	if r.ContainsHash(tp.Hash()) {
		t.Fatal("tombstoned tuple's hash must not be contained")
	}
}
