package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

func testSchema() schema.Relation {
	return schema.NewRelation("t",
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindInt},
	)
}

func TestResolve(t *testing.T) {
	if got := Resolve(4); got != 4 {
		t.Errorf("Resolve(4) = %d", got)
	}
	if got := Resolve(0); got < 1 {
		t.Errorf("Resolve(0) = %d, want auto-detected >= 1", got)
	}
	if got := Resolve(-3); got < 1 {
		t.Errorf("Resolve(-3) = %d, want auto-detected >= 1", got)
	}
	if got := Resolve(1 << 20); got != maxWorkers {
		t.Errorf("Resolve(huge) = %d, want %d", got, maxWorkers)
	}
}

// TestPoolRunsEveryWorker checks that every worker index runs exactly once.
func TestPoolRunsEveryWorker(t *testing.T) {
	for _, w := range []int{1, 2, 7} {
		pool := NewPool(w)
		var ran [64]atomic.Int32
		if err := pool.Run(context.Background(), func(_ context.Context, worker int) error {
			ran[worker].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < w; i++ {
			if got := ran[i].Load(); got != 1 {
				t.Errorf("workers=%d: worker %d ran %d times", w, i, got)
			}
		}
	}
}

// TestPoolErrorDeterminism checks the error of the lowest-numbered failing
// worker is returned, regardless of goroutine scheduling.
func TestPoolErrorDeterminism(t *testing.T) {
	pool := NewPool(8)
	for round := 0; round < 20; round++ {
		err := pool.Run(context.Background(), func(_ context.Context, worker int) error {
			if worker >= 3 {
				return fmt.Errorf("worker %d failed", worker)
			}
			return nil
		})
		if err == nil || err.Error() != "worker 3 failed" {
			t.Fatalf("round %d: err = %v, want worker 3's", round, err)
		}
	}
}

// TestPartitionerDisjointCover checks the partition function is a total
// function onto [0, workers): every tuple has exactly one owner, owners are in
// range, and equal join-key projections share an owner.
func TestPartitionerDisjointCover(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	full := NewPartitioner(nil, 4)
	keyed := NewPartitioner([]int{1}, 4)
	for i := 0; i < 500; i++ {
		a, b := int64(rng.Intn(50)), int64(rng.Intn(10))
		tp := tuple.Ints(a, b)
		if o := full.Owner(tp); o < 0 || o >= 4 {
			t.Fatalf("full owner %d out of range", o)
		}
		// Same key attribute => same keyed owner, whatever the other column is.
		other := tuple.Ints(a+1000, b)
		if keyed.Owner(tp) != keyed.Owner(other) {
			t.Fatalf("keyed partitioner split key %d across workers", b)
		}
	}
}

// TestExchangeSumsPartials checks the fundamental exchange identity: the merge
// of per-worker partials over a disjoint partition of the input equals the
// serial result, multiplicities included — even when workers produce
// overlapping output tuples.
func TestExchangeSumsPartials(t *testing.T) {
	s := testSchema()
	in := multiset.New(s)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		in.Add(tuple.Ints(int64(rng.Intn(20)), int64(rng.Intn(5))), uint64(1+rng.Intn(3)))
	}

	serial := multiset.New(s)
	in.Each(func(tp tuple.Tuple, n uint64) bool {
		serial.Add(tp, n)
		return true
	})

	for _, w := range []int{1, 2, 4, 8} {
		pool := NewPool(w)
		parts, err := Exchange(context.Background(), pool, s, 16, func(_ context.Context, worker int, into *multiset.Relation) error {
			in.EachInPartition(worker, pool.Workers(), func(tp tuple.Tuple, n uint64) bool {
				into.Add(tp, n)
				return true
			})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if parts.Cardinality() != serial.Cardinality() {
			t.Fatalf("workers=%d: partial cardinality %d, want %d", w, parts.Cardinality(), serial.Cardinality())
		}
		merged := parts.Merge(multiset.NewWithCapacity(s, 64))
		if !merged.Equal(serial) {
			t.Fatalf("workers=%d: merged %s != serial %s", w, merged, serial)
		}
		// Streaming consumption must sum to the same multi-set.
		streamed := multiset.New(s)
		if err := parts.Each(func(tp tuple.Tuple, n uint64) error {
			streamed.Add(tp, n)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !streamed.Equal(serial) {
			t.Fatalf("workers=%d: streamed %s != serial %s", w, streamed, serial)
		}
	}
}

// TestExchangepropagatesErrors checks a failing worker aborts the exchange
// while the other partials remain intact for accounting.
func TestExchangePropagatesErrors(t *testing.T) {
	s := testSchema()
	boom := errors.New("boom")
	parts, err := Exchange(context.Background(), NewPool(4), s, 4, func(_ context.Context, worker int, into *multiset.Relation) error {
		if worker == 2 {
			return boom
		}
		into.Add(tuple.Ints(int64(worker), 0), 1)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if parts == nil || parts.Rel(0).Cardinality() != 1 {
		t.Errorf("surviving partials should be returned for accounting")
	}
}

// TestMorselQueueDisjointCover checks the queue's claims are disjoint,
// in-range, and collectively cover [0, total) exactly once — under serial use
// and under concurrent stealing — for several morsel sizes, including sizes
// that do not divide the total and sizes larger than the total.
func TestMorselQueueDisjointCover(t *testing.T) {
	for _, tc := range []struct{ total, size int }{
		{0, 16}, {1, 16}, {100, 16}, {100, 1}, {100, 7}, {5, 100}, {4096, 0},
	} {
		q := NewMorselQueue(tc.total, tc.size)
		covered := make([]bool, tc.total)
		for {
			lo, hi, ok := q.Next()
			if !ok {
				break
			}
			if lo < 0 || hi > tc.total || lo >= hi {
				t.Fatalf("total=%d size=%d: bad morsel [%d,%d)", tc.total, tc.size, lo, hi)
			}
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Fatalf("total=%d size=%d: index %d claimed twice", tc.total, tc.size, i)
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("total=%d size=%d: index %d never claimed", tc.total, tc.size, i)
			}
		}
		if _, _, ok := q.Next(); ok {
			t.Fatalf("total=%d size=%d: drained queue handed out another morsel", tc.total, tc.size)
		}
	}
}

// TestMorselQueueConcurrentStealing checks concurrent workers drain the queue
// without overlap or loss: the claimed ranges sum to exactly the total.
func TestMorselQueueConcurrentStealing(t *testing.T) {
	const total, size, workers = 100000, 64, 8
	q := NewMorselQueue(total, size)
	var claimed atomic.Uint64
	pool := NewPool(workers)
	var owned [workers]int
	if err := pool.Run(context.Background(), func(_ context.Context, w int) error {
		for {
			lo, hi, ok := q.Next()
			if !ok {
				return nil
			}
			claimed.Add(uint64(hi - lo))
			owned[w] += hi - lo
		}
	}); err != nil {
		t.Fatal(err)
	}
	if claimed.Load() != total {
		t.Fatalf("claimed %d indices, want %d", claimed.Load(), total)
	}
	// Stealing means no worker is required to own a fixed 1/workers share,
	// but collectively the gang must account for everything.
	sum := 0
	for _, n := range owned {
		sum += n
	}
	if sum != total {
		t.Fatalf("per-worker ownership sums to %d, want %d", sum, total)
	}
}
