package exec

// This file is the fault-injection harness of the parallel runtime.  It is
// hook-gated rather than build-tag-gated: the hooks sit on paths that are
// already amortised (worker start — once per gang worker — and morsel claims —
// one per claimed entry range), and when no injector is installed each hook is
// a single atomic pointer load returning nil, so production execution pays
// nothing measurable.  The lifecycle property tests use the harness to panic a
// chosen worker, delay morsel claims, and cancel queries at randomised claim
// counts, proving that every injected fault yields a clean error with no
// deadlock and no leaked goroutine.

import (
	"sync/atomic"
	"time"
)

// Faults configures the fault-injection harness.  All fields are optional; the
// zero value injects nothing.  Hooks run on live gang workers and must be safe
// for concurrent use.
type Faults struct {
	// WorkerStart, when non-nil, runs at the start of every gang worker —
	// before any query work, inside the runtime's panic-recovery scope — so it
	// may panic to simulate a crashed worker.
	WorkerStart func(worker int)
	// MorselClaim, when non-nil, runs on every morsel-queue claim.  Tests use
	// it to count claims and cancel a query's context at a randomised point
	// mid-exchange.
	MorselClaim func()
	// ClaimDelay pauses every morsel-queue claim for the given duration,
	// simulating a slow worker so deadlines trip mid-exchange.
	ClaimDelay time.Duration
}

// claim runs the morsel-claim fault actions.
func (f *Faults) claim() {
	if f.ClaimDelay > 0 {
		time.Sleep(f.ClaimDelay)
	}
	if f.MorselClaim != nil {
		f.MorselClaim()
	}
}

// activeFaults is the installed injector; nil (the default) disables all
// hooks.
var activeFaults atomic.Pointer[Faults]

// InjectFaults installs a fault injector for the whole process and returns a
// function restoring the previous one.  It is intended for tests only; tests
// that inject faults must not run in parallel with each other.
func InjectFaults(f *Faults) (restore func()) {
	prev := activeFaults.Swap(f)
	return func() { activeFaults.Store(prev) }
}

// currentFaults returns the installed injector, or nil when none is.
func currentFaults() *Faults { return activeFaults.Load() }
