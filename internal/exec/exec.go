// Package exec implements the morsel-driven parallel execution runtime behind
// the physical layer's exchange operators: a gang-scheduling worker pool, a
// work-stealing morsel queue that hands idle workers fixed-size slices of a
// scan, hash-range partitioners for the operators that need key-consistent
// splits, and per-worker partial multi-sets that a merge sums back into one
// relation.
//
// The runtime exploits a property the multi-set algebra guarantees by
// construction: relations are functions from tuples to multiplicities
// (Definition 2.2), so splitting a relation into disjoint partitions and
// summing the per-partition results of a distributive operator reproduces the
// serial result exactly — multiplicities add across partitions.  The policy of
// *where* to partition (grouping columns, full tuples) and where morsels are
// safe (any disjoint split of a scan) lives in package plan, which inserts
// Partition/Merge exchange nodes around eligible operator shapes; this package
// supplies the mechanism only and knows nothing about operators.
//
// Concurrency contract: a worker's partial relation is private to that worker
// — the runtime never touches it from two goroutines — so operator code
// running under Exchange keeps the single-threaded Emit contract of package
// plan.  Workers must not share mutable state; anything a worker accumulates
// is either its partial relation (merged by Partials) or per-worker counters
// folded by the caller after Pool.Run returns.  The only cross-worker state is
// MorselQueue, whose claims are a single atomic fetch-add.
//
// Lifecycle contract: every gang run is scoped by a context.  Pool.Run derives
// a per-gang context that is cancelled the moment any worker fails — by
// returning an error or by panicking — so the sibling workers, which poll that
// context at morsel/batch granularity (package plan's checkpoints), stop
// promptly instead of draining their remaining input.  A panicking worker
// never crashes the process: the panic is recovered into a *PanicError
// carrying the worker id and stack, and takes part in the deterministic error
// merge (gangError) that prefers root-cause errors over the context
// cancellations they induced.  The runtime holds no channels between workers —
// partials are plain per-worker slices joined by a WaitGroup — so there is
// nothing to drain on an abort and a cancelled gang leaks no goroutines.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/tuple"
)

// maxWorkers bounds the parallelism degree: beyond it the per-worker slices
// of any realistic input are too thin to amortise goroutine and merge costs.
const maxWorkers = 64

// DefaultWorkers returns the auto-detected parallelism degree: the number of
// schedulable CPUs, capped so wide machines do not shred small inputs.
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Resolve normalises a configured worker count: values below one mean
// auto-detect (DefaultWorkers), and everything is clamped to maxWorkers.
func Resolve(workers int) int {
	if workers < 1 {
		workers = DefaultWorkers()
	}
	if workers > maxWorkers {
		workers = maxWorkers
	}
	return workers
}

// Pool is a gang-scheduling worker pool of fixed width.  Run schedules one
// task instance per worker and joins them; goroutines are cheap enough in Go
// that the pool gangs per exchange rather than keeping idle workers parked.
type Pool struct {
	workers int
}

// NewPool returns a pool of the given width, normalised through Resolve.
func NewPool(workers int) *Pool { return &Pool{workers: Resolve(workers)} }

// Workers returns the pool's width.
func (p *Pool) Workers() int { return p.workers }

// PanicError is a worker panic converted into an error: the gang runtime
// recovers panics inside worker goroutines so a crashing operator aborts the
// query, not the process.  It records which worker crashed and the stack at
// the panic site; the enclosing exchange wraps it with the operator it was
// executing.
type PanicError struct {
	// Worker is the index of the panicked worker within its gang.
	Worker int
	// Value is the value the worker panicked with.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error renders the panic with its worker id; the stack is kept out of the
// one-line message and available on the field.
func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: worker %d panicked: %v", e.Worker, e.Value)
}

// Run executes task(ctx, w) for every worker w in [0, Workers) concurrently
// and waits for all of them.  The context passed to the tasks is derived from
// ctx and cancelled as soon as any worker fails — returns an error or panics —
// so sibling workers polling it stop promptly; it is also cancelled when Run
// returns.  A panicking worker is recovered into a *PanicError instead of
// crashing the process.  The returned error is chosen by gangError:
// deterministically the lowest-numbered worker's failure, with root-cause
// errors (panics, operator failures) preferred over the context cancellations
// they induced in their siblings.
func (p *Pool) Run(ctx context.Context, task func(ctx context.Context, worker int) error) error {
	if p.workers == 1 {
		return runWorker(ctx, 0, task)
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, p.workers)
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := runWorker(gctx, w, task); err != nil {
				errs[w] = err
				// Wake the siblings: one failed worker aborts the gang.
				cancel()
			}
		}(w)
	}
	wg.Wait()
	return gangError(errs)
}

// runWorker runs one worker's task with panic recovery and the fault-injection
// worker-start hook.
func runWorker(ctx context.Context, w int, task func(ctx context.Context, worker int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Worker: w, Value: r, Stack: debug.Stack()}
		}
	}()
	if f := currentFaults(); f != nil && f.WorkerStart != nil {
		f.WorkerStart(w)
	}
	return task(ctx, w)
}

// gangError merges the per-worker failures of one gang run into the single
// error the exchange surfaces.  Root-cause errors win over context
// cancellations: when worker 3 panics and the gang context cancellation makes
// workers 0–2 return context.Canceled, first-error-wins by worker order would
// mask the panic behind a cancellation it caused.  Among errors of the same
// class the lowest-numbered worker wins, so the result is deterministic
// regardless of scheduling.
func gangError(errs []error) error {
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return err
	}
	return ctxErr
}

// DefaultMorselSize is the number of scan entries a worker claims per visit
// to a MorselQueue when the planner does not size morsels itself.  Small
// enough that a gang rebalances around skewed slices, large enough that the
// atomic claim amortises.
const DefaultMorselSize = 1024

// MorselQueue hands out fixed-size, disjoint index ranges ("morsels") of
// [0, total) to competing workers.  It is the work-stealing core of
// morsel-driven scheduling: instead of pre-cutting one static slice per
// worker, every worker claims the next unprocessed morsel when it runs out of
// work, so a skewed slice no longer serialises the gang behind its unlucky
// owner.  Claims are a single atomic fetch-add; the queue is safe for
// concurrent use and never hands the same index to two workers.
type MorselQueue struct {
	size  uint64
	total uint64
	next  atomic.Uint64
}

// NewMorselQueue returns a queue over [0, total) handing out morsels of the
// given size.  A size at or below zero selects DefaultMorselSize.
func NewMorselQueue(total, size int) *MorselQueue {
	if size <= 0 {
		size = DefaultMorselSize
	}
	if total < 0 {
		total = 0
	}
	return &MorselQueue{size: uint64(size), total: uint64(total)}
}

// Next claims the next unprocessed morsel and returns its index range
// [lo, hi).  ok is false once the queue is exhausted; a drained queue stays
// drained.
//
// Next yields the processor before claiming: when the gang is wider than the
// machine (workers > GOMAXPROCS), claims then interleave across workers
// instead of one goroutine draining the whole queue inside its scheduling
// quantum — which would concentrate the partial results, and their hash-table
// growth, in a single worker.  On a machine with idle processors the yield is
// a few nanoseconds.
func (q *MorselQueue) Next() (lo, hi int, ok bool) {
	if f := currentFaults(); f != nil {
		f.claim()
	}
	runtime.Gosched()
	end := q.next.Add(q.size)
	start := end - q.size
	if start >= q.total {
		return 0, 0, false
	}
	if end > q.total {
		end = q.total
	}
	return int(start), int(end), true
}

// Partitioner deterministically assigns tuples to workers by hash range:
// tuple t belongs to worker Owner(t), computed from the hash of the selected
// attribute positions (or of the whole tuple when none are selected).  Equal
// projections always land on the same worker, which is what makes
// partition-wise joins and grouped aggregation exact: tuples that could meet
// are never split across workers.
type Partitioner struct {
	cols    []int
	workers uint64
}

// NewPartitioner returns a partitioner over the given attribute positions for
// the given worker count.  A nil or empty cols list partitions by the full
// tuple hash.
func NewPartitioner(cols []int, workers int) Partitioner {
	return Partitioner{cols: cols, workers: uint64(Resolve(workers))}
}

// Workers returns the partitioner's worker count.
func (p Partitioner) Workers() int { return int(p.workers) }

// Owner returns the worker index the tuple belongs to.
func (p Partitioner) Owner(t tuple.Tuple) int {
	if len(p.cols) == 0 {
		return int(t.Hash() % p.workers)
	}
	return int(t.HashOn(p.cols) % p.workers)
}

// OwnerHash returns the worker index for a pre-computed key hash.  Columnar
// operators hash partition keys incrementally off column vectors
// (tuple.HashMix) and map the result here, skipping tuple materialisation.
func (p Partitioner) OwnerHash(h uint64) int { return int(h % p.workers) }

// Partials holds the per-worker partial results of an exchange: one private
// relation per worker, merged by summing multiplicities (the Merge side of the
// exchange).  Disjoint input partitions may still produce overlapping output
// tuples — a projection can collapse tuples from different partitions onto the
// same result — so the merge must add, never assume distinctness.
type Partials struct {
	rels []*multiset.Relation
}

// NewPartials allocates one empty partial relation per worker, each pre-sized
// for about capacityEach distinct tuples.
func NewPartials(s schema.Relation, workers, capacityEach int) *Partials {
	rels := make([]*multiset.Relation, Resolve(workers))
	for i := range rels {
		rels[i] = multiset.NewWithCapacity(s, capacityEach)
	}
	return &Partials{rels: rels}
}

// Rel returns worker w's private partial relation.
func (p *Partials) Rel(w int) *multiset.Relation { return p.rels[w] }

// Cardinality returns the total number of tuples (counting multiplicities)
// across all partials.
func (p *Partials) Cardinality() uint64 {
	var total uint64
	for _, r := range p.rels {
		total += r.Cardinality()
	}
	return total
}

// Each streams every partial's chunks into fn, partial by partial.  The same
// tuple may be delivered once per partial; consumers sum multiplicities.
func (p *Partials) Each(fn func(t tuple.Tuple, n uint64) error) error {
	for _, r := range p.rels {
		var iterErr error
		r.Each(func(t tuple.Tuple, n uint64) bool {
			iterErr = fn(t, n)
			return iterErr == nil
		})
		if iterErr != nil {
			return iterErr
		}
	}
	return nil
}

// Merge sums all partials into the given relation (created by the caller, so
// it can be pre-sized) and returns it.  It reuses the partials' cached tuple
// hashes, so merging never re-hashes attribute values.
func (p *Partials) Merge(into *multiset.Relation) *multiset.Relation {
	for _, r := range p.rels {
		into.MergeFrom(r)
	}
	return into
}

// Gather runs producer once per worker of the pool and collects the
// per-worker results in worker order.  It is the side-channel counterpart of
// Exchange for exchanges whose partial results are not relations — the
// two-phase aggregate's per-worker partial group states, for example.  Each
// result is produced and owned by its worker until Gather returns; on error
// the results collected so far are still returned (failed workers leave their
// zero value) so the caller can account for them.  The gang context and
// failure semantics are Pool.Run's: producers receive a per-gang context that
// is cancelled when any worker fails.
func Gather[T any](ctx context.Context, pool *Pool, producer func(ctx context.Context, worker int) (T, error)) ([]T, error) {
	out := make([]T, pool.Workers())
	err := pool.Run(ctx, func(wctx context.Context, w int) error {
		v, err := producer(wctx, w)
		out[w] = v
		return err
	})
	return out, err
}

// Exchange is the runtime of one Merge exchange: it runs producer once per
// worker of the pool, handing each worker its private partial relation to
// accumulate into (by Add or the batched AddBatch), and returns the partials.
// The relation passed to a producer is that worker's own; the runtime never
// touches it concurrently.  On error the partials collected so far are still
// returned so the caller can account for them.  The gang context and failure
// semantics are Pool.Run's: producers receive a per-gang context that is
// cancelled when any worker fails.
func Exchange(ctx context.Context, pool *Pool, s schema.Relation, capacityEach int, producer func(ctx context.Context, worker int, into *multiset.Relation) error) (*Partials, error) {
	parts := NewPartials(s, pool.Workers(), capacityEach)
	err := pool.Run(ctx, func(wctx context.Context, w int) error {
		return producer(wctx, w, parts.Rel(w))
	})
	return parts, err
}
