// Package exec implements the partitioned parallel execution runtime behind
// the physical layer's exchange operators: a gang-scheduling worker pool,
// hash-range partitioners that split tuple streams across workers, and
// per-worker partial multi-sets that a merge sums back into one relation.
//
// The runtime exploits a property the multi-set algebra guarantees by
// construction: relations are functions from tuples to multiplicities
// (Definition 2.2), so splitting a relation into disjoint partitions and
// summing the per-partition results of a distributive operator reproduces the
// serial result exactly — multiplicities add across partitions.  The policy of
// *where* to partition (join keys, grouping columns, full tuples) lives in
// package plan, which inserts Partition/Merge exchange nodes around eligible
// operator shapes; this package supplies the mechanism only and knows nothing
// about operators.
//
// Concurrency contract: a worker's sink is private to that worker — the
// runtime never calls it from two goroutines — so operator code running under
// Exchange keeps the single-threaded Emit contract of package plan.  Workers
// must not share mutable state; anything a worker accumulates is either its
// partial relation (merged by Partials) or per-worker counters folded by the
// caller after Pool.Run returns.
package exec

import (
	"runtime"
	"sync"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/tuple"
)

// maxWorkers bounds the parallelism degree: beyond it the per-worker slices
// of any realistic input are too thin to amortise goroutine and merge costs.
const maxWorkers = 64

// DefaultWorkers returns the auto-detected parallelism degree: the number of
// schedulable CPUs, capped so wide machines do not shred small inputs.
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Resolve normalises a configured worker count: values below one mean
// auto-detect (DefaultWorkers), and everything is clamped to maxWorkers.
func Resolve(workers int) int {
	if workers < 1 {
		workers = DefaultWorkers()
	}
	if workers > maxWorkers {
		workers = maxWorkers
	}
	return workers
}

// Pool is a gang-scheduling worker pool of fixed width.  Run schedules one
// task instance per worker and joins them; goroutines are cheap enough in Go
// that the pool gangs per exchange rather than keeping idle workers parked.
type Pool struct {
	workers int
}

// NewPool returns a pool of the given width, normalised through Resolve.
func NewPool(workers int) *Pool { return &Pool{workers: Resolve(workers)} }

// Workers returns the pool's width.
func (p *Pool) Workers() int { return p.workers }

// Run executes task(w) for every worker w in [0, Workers) concurrently and
// waits for all of them.  It returns the error of the lowest-numbered failed
// worker (deterministic regardless of scheduling); the other workers still run
// to completion, so partial state stays consistent for accounting.
func (p *Pool) Run(task func(worker int) error) error {
	if p.workers == 1 {
		return task(0)
	}
	errs := make([]error, p.workers)
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = task(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Partitioner deterministically assigns tuples to workers by hash range:
// tuple t belongs to worker Owner(t), computed from the hash of the selected
// attribute positions (or of the whole tuple when none are selected).  Equal
// projections always land on the same worker, which is what makes
// partition-wise joins and grouped aggregation exact: tuples that could meet
// are never split across workers.
type Partitioner struct {
	cols    []int
	workers uint64
}

// NewPartitioner returns a partitioner over the given attribute positions for
// the given worker count.  A nil or empty cols list partitions by the full
// tuple hash.
func NewPartitioner(cols []int, workers int) Partitioner {
	return Partitioner{cols: cols, workers: uint64(Resolve(workers))}
}

// Workers returns the partitioner's worker count.
func (p Partitioner) Workers() int { return int(p.workers) }

// Owner returns the worker index the tuple belongs to.
func (p Partitioner) Owner(t tuple.Tuple) int {
	if len(p.cols) == 0 {
		return int(t.Hash() % p.workers)
	}
	return int(t.HashOn(p.cols) % p.workers)
}

// Partials holds the per-worker partial results of an exchange: one private
// relation per worker, merged by summing multiplicities (the Merge side of the
// exchange).  Disjoint input partitions may still produce overlapping output
// tuples — a projection can collapse tuples from different partitions onto the
// same result — so the merge must add, never assume distinctness.
type Partials struct {
	rels []*multiset.Relation
}

// NewPartials allocates one empty partial relation per worker, each pre-sized
// for about capacityEach distinct tuples.
func NewPartials(s schema.Relation, workers, capacityEach int) *Partials {
	rels := make([]*multiset.Relation, Resolve(workers))
	for i := range rels {
		rels[i] = multiset.NewWithCapacity(s, capacityEach)
	}
	return &Partials{rels: rels}
}

// Rel returns worker w's private partial relation.
func (p *Partials) Rel(w int) *multiset.Relation { return p.rels[w] }

// Cardinality returns the total number of tuples (counting multiplicities)
// across all partials.
func (p *Partials) Cardinality() uint64 {
	var total uint64
	for _, r := range p.rels {
		total += r.Cardinality()
	}
	return total
}

// Each streams every partial's chunks into fn, partial by partial.  The same
// tuple may be delivered once per partial; consumers sum multiplicities.
func (p *Partials) Each(fn func(t tuple.Tuple, n uint64) error) error {
	for _, r := range p.rels {
		var iterErr error
		r.Each(func(t tuple.Tuple, n uint64) bool {
			iterErr = fn(t, n)
			return iterErr == nil
		})
		if iterErr != nil {
			return iterErr
		}
	}
	return nil
}

// Merge sums all partials into the given relation (created by the caller, so
// it can be pre-sized) and returns it.  It reuses the partials' cached tuple
// hashes, so merging never re-hashes attribute values.
func (p *Partials) Merge(into *multiset.Relation) *multiset.Relation {
	for _, r := range p.rels {
		into.MergeFrom(r)
	}
	return into
}

// Exchange is the runtime of one Merge exchange: it runs producer once per
// worker of the pool, collecting each worker's stream into a private partial
// relation, and returns the partials.  The sink passed to a producer is that
// worker's own; it is never called concurrently.  On error the partials
// collected so far are still returned so the caller can account for them.
func Exchange(pool *Pool, s schema.Relation, capacityEach int, producer func(worker int, sink func(t tuple.Tuple, n uint64) error) error) (*Partials, error) {
	parts := NewPartials(s, pool.Workers(), capacityEach)
	err := pool.Run(func(w int) error {
		rel := parts.Rel(w)
		return producer(w, func(t tuple.Tuple, n uint64) error {
			rel.Add(t, n)
			return nil
		})
	})
	return parts, err
}
