package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mra/internal/multiset"
	"mra/internal/testleak"
	"mra/internal/tuple"
)

// TestPoolRecoversPanics checks a panicking worker surfaces as a PanicError —
// carrying the worker id and a stack — instead of crashing the process, at
// every gang width including the inlined single-worker path.
func TestPoolRecoversPanics(t *testing.T) {
	defer testleak.Check(t)()
	for _, w := range []int{1, 2, 4, 8} {
		victim := w - 1
		err := NewPool(w).Run(context.Background(), func(_ context.Context, worker int) error {
			if worker == victim {
				panic(fmt.Sprintf("kaboom-%d", worker))
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want PanicError", w, err)
		}
		if pe.Worker != victim {
			t.Errorf("workers=%d: panic attributed to worker %d, want %d", w, pe.Worker, victim)
		}
		if want := fmt.Sprintf("kaboom-%d", victim); !strings.Contains(pe.Error(), want) {
			t.Errorf("workers=%d: error %q does not carry the panic value %q", w, pe.Error(), want)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError carries no stack", w)
		}
	}
}

// TestPoolFailureCancelsSiblings checks that one worker's failure cancels the
// gang context the other workers run under, so siblings blocked on it unwind
// promptly instead of running their task to completion.
func TestPoolFailureCancelsSiblings(t *testing.T) {
	defer testleak.Check(t)()
	boom := errors.New("boom")
	var unwound atomic.Int32
	err := NewPool(4).Run(context.Background(), func(ctx context.Context, worker int) error {
		if worker == 0 {
			return boom
		}
		select {
		case <-ctx.Done():
			unwound.Add(1)
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return errors.New("sibling never saw the cancellation")
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := unwound.Load(); got != 3 {
		t.Errorf("%d siblings unwound via the gang context, want 3", got)
	}
}

// TestGangErrorPrefersRootCause is the regression test for the error-merge
// audit: before the merge policy, the gang returned the lowest-numbered
// worker's error, so when a high-numbered worker failed and the cancellation
// it triggered made lower-numbered siblings return context.Canceled, the root
// cause was masked by its own side effect.  The merge must surface the real
// error whatever the worker order.
func TestGangErrorPrefersRootCause(t *testing.T) {
	defer testleak.Check(t)()
	boom := errors.New("boom")
	for round := 0; round < 50; round++ {
		err := NewPool(8).Run(context.Background(), func(ctx context.Context, worker int) error {
			if worker == 7 {
				return boom
			}
			// Lower-numbered workers fail only as a consequence of worker 7's
			// cancellation — exactly the shape that used to mask the root cause.
			<-ctx.Done()
			return ctx.Err()
		})
		if !errors.Is(err, boom) {
			t.Fatalf("round %d: err = %v, want boom (root cause masked by induced cancellation)", round, err)
		}
	}
}

// TestGangErrorContextOnly checks that when every worker fails with the
// context's own error — a plain user cancellation — that error is returned
// rather than swallowed by the root-cause preference.
func TestGangErrorContextOnly(t *testing.T) {
	defer testleak.Check(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := NewPool(4).Run(ctx, func(ctx context.Context, worker int) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFaultWorkerStartPanic checks the harness can crash a chosen worker and
// that the crash surfaces through the ordinary panic-recovery path.
func TestFaultWorkerStartPanic(t *testing.T) {
	defer testleak.Check(t)()
	restore := InjectFaults(&Faults{WorkerStart: func(worker int) {
		if worker == 2 {
			panic("injected")
		}
	}})
	defer restore()
	err := NewPool(4).Run(context.Background(), func(_ context.Context, worker int) error { return nil })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Worker != 2 {
		t.Fatalf("err = %v, want PanicError from worker 2", err)
	}
}

// TestFaultMorselClaimHook checks the claim hook observes every queue claim
// and that restore uninstalls it.
func TestFaultMorselClaimHook(t *testing.T) {
	var claims atomic.Int32
	restore := InjectFaults(&Faults{MorselClaim: func() { claims.Add(1) }})
	q := NewMorselQueue(10, 3)
	for {
		if _, _, ok := q.Next(); !ok {
			break
		}
	}
	// ceil(10/3) live claims plus the final empty-handed call.
	if got := claims.Load(); got != 5 {
		t.Errorf("claim hook fired %d times, want 5", got)
	}
	restore()
	q2 := NewMorselQueue(3, 3)
	q2.Next()
	if got := claims.Load(); got != 5 {
		t.Errorf("claim hook fired after restore (count %d)", got)
	}
}

// TestExchangeReturnsContextError checks a pre-cancelled exchange fails with
// the context's error and leaks nothing.
func TestExchangeReturnsContextError(t *testing.T) {
	defer testleak.Check(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := testSchema()
	_, err := Exchange(ctx, NewPool(4), s, 4, func(ctx context.Context, worker int, into *multiset.Relation) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			into.Add(tuple.Ints(int64(worker), 0), 1)
			return nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
