package loadgen

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"mra"
	"mra/internal/server"
	"mra/internal/workload"
)

// startBankServer serves a seeded banking database on an ephemeral port.
func startBankServer(t *testing.T, accounts int) string {
	t.Helper()
	db := mra.Open()
	db.MustCreateRelation("account",
		mra.Col("id", mra.Int), mra.Col("owner", mra.String), mra.Col("balance", mra.Float))
	if err := db.InsertValues("account", workload.AccountRows(accounts, 7)...); err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{MaxSessions: 64})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return l.Addr().String()
}

// TestOpenLoopSoak is the serving-layer soak: eight concurrent sessions drive
// the mixed banking workload against a live server.  Run under -race this
// exercises concurrent snapshots, commits, conflict retries and the session
// machinery all at once.  It asserts real concurrency outcomes: transactions
// commit, conflicts happen and are retried to success, and nothing fails.
func TestOpenLoopSoak(t *testing.T) {
	duration := 2 * time.Second
	if testing.Short() {
		duration = 500 * time.Millisecond
	}
	addr := startBankServer(t, 256)
	report, err := RunOpenLoop(OpenLoopConfig{
		Addr:     addr,
		Clients:  8,
		Duration: duration,
		Seed:     42,
		Mix:      BankMix(256, 4, 50, 35, 15),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: committed=%d conflicts=%d tps=%.1f p50=%dus p99=%dus",
		report.Committed, report.Conflicts, report.TPS, report.P50US, report.P99US)
	if report.Committed == 0 {
		t.Fatal("soak committed no transactions")
	}
	if report.Errors > 0 {
		t.Fatalf("soak hit %d non-conflict errors", report.Errors)
	}
	if report.Conflicts == 0 {
		t.Fatal("8 saturating clients over a hot account set must produce first-committer-wins conflicts")
	}
	ro := report.Kinds["analytics"]
	if ro.Conflicts != 0 || ro.ConflictsPerCommit != 0 {
		t.Fatalf("read-only transactions must never conflict, got %d (%.2f/commit)",
			ro.Conflicts, ro.ConflictsPerCommit)
	}
	if ro.Commits == 0 {
		t.Fatal("read-only transactions must commit alongside the writers")
	}
	// The per-kind conflicts-per-commit breakdown must be populated and
	// consistent with the raw counters it is derived from.
	for name, ks := range report.Kinds {
		if ks.Commits == 0 {
			continue
		}
		want := float64(ks.Conflicts) / float64(ks.Commits)
		if ks.ConflictsPerCommit != want {
			t.Fatalf("kind %q conflicts_per_commit = %v, want %v", name, ks.ConflictsPerCommit, want)
		}
	}
	if want := float64(report.Conflicts) / float64(report.Committed); report.ConflictsPerCommit != want {
		t.Fatalf("report conflicts_per_commit = %v, want %v", report.ConflictsPerCommit, want)
	}
	if report.P50US <= 0 || report.P99US < report.P50US {
		t.Fatalf("implausible latency percentiles: p50=%d p99=%d", report.P50US, report.P99US)
	}
}

// TestOpenLoopThinkTime checks that think times throttle the offered load.
func TestOpenLoopThinkTime(t *testing.T) {
	addr := startBankServer(t, 64)
	report, err := RunOpenLoop(OpenLoopConfig{
		Addr:     addr,
		Clients:  2,
		Duration: 400 * time.Millisecond,
		Think:    100 * time.Millisecond,
		Seed:     1,
		Mix:      BankMix(64, 4, 100, 0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two clients pausing ~100ms per transaction fit at most ~innerloop
	// iterations in 400ms; allow generous slack for scheduling.
	if report.Committed == 0 || report.Committed > 30 {
		t.Fatalf("think time not respected: %d transactions in 400ms", report.Committed)
	}
}

func TestParseReplay(t *testing.T) {
	txs, err := ParseReplay(`
# captured session
select count(*) from account;
begin
update account set balance = 0 where id = 1;
update account set balance = 1 where id = 2;
commit
begin
select sum(balance) from account;
rollback
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 2 {
		t.Fatalf("got %d transactions, want 2 (rollback block dropped)", len(txs))
	}
	if len(txs[0]) != 1 || len(txs[1]) != 2 {
		t.Fatalf("unexpected transaction shapes: %v", txs)
	}

	for _, bad := range []string{
		"begin\nselect 1;",             // unterminated
		"commit",                       // commit outside
		"begin\nbegin\nselect 1;\nend", // nested
		"# only comments",
	} {
		if _, err := ParseReplay(bad); err == nil {
			t.Errorf("ParseReplay(%q) should fail", bad)
		}
	}
}

func TestReplayMixRoundTrip(t *testing.T) {
	txs, err := ParseReplay("select count(*) from account;\nbegin\nupdate account set balance = 0 where id = 0;\ncommit\n")
	if err != nil {
		t.Fatal(err)
	}
	addr := startBankServer(t, 32)
	report, err := RunOpenLoop(OpenLoopConfig{
		Addr:     addr,
		Clients:  4,
		Duration: 300 * time.Millisecond,
		Seed:     3,
		Mix:      ReplayMix("replay", txs),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Committed == 0 {
		t.Fatal("replayed workload committed nothing")
	}
	if report.Errors > 0 {
		t.Fatalf("replayed workload hit %d errors", report.Errors)
	}
}

func TestBankMixGeneratesValidTransfers(t *testing.T) {
	mix := BankMix(10, 2, 50, 35, 15)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		kind := mix.pick(rng)
		lines := kind.Make(rng)
		if kind.ReadOnly && len(lines) != 1 {
			t.Fatalf("read-only kind %q produced %d lines", kind.Name, len(lines))
		}
		if !kind.ReadOnly && len(lines) != 2 {
			t.Fatalf("transfer kind %q produced %d lines", kind.Name, len(lines))
		}
	}
}
