package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"mra/internal/server"
)

// TxKind is one weighted transaction template of a load mix.  Make generates
// the command lines of one transaction instance: a single line is executed as
// an auto-committed statement, several lines are wrapped in an explicit
// begin/commit bracket by the driver.
type TxKind struct {
	// Name labels the kind in per-kind statistics.
	Name string
	// Weight is the kind's relative frequency in the mix.
	Weight int
	// ReadOnly marks kinds that never write; they cannot conflict and are
	// not retried.
	ReadOnly bool
	// Make builds one transaction instance's statement lines from the
	// client's private random stream.
	Make func(rng *rand.Rand) []string
}

// Mix is a weighted set of transaction kinds.
type Mix struct {
	// Name labels the mix in reports.
	Name string
	// Kinds holds the weighted transaction templates.
	Kinds []TxKind
}

// pick draws a kind according to the weights.
func (m Mix) pick(rng *rand.Rand) TxKind {
	total := 0
	for _, k := range m.Kinds {
		total += k.Weight
	}
	n := rng.Intn(total)
	for _, k := range m.Kinds {
		if n < k.Weight {
			return k
		}
		n -= k.Weight
	}
	return m.Kinds[len(m.Kinds)-1]
}

// BankMix is the canonical serving-layer mix over the account relation:
// read-only analytics scans, read-write transfers between uniformly random
// accounts, and conflict-heavy transfers confined to a small hot set.  The
// weights are percentages of the transaction stream.
func BankMix(accounts, hotAccounts, analyticsPct, transferPct, hotspotPct int) Mix {
	if accounts < 4 {
		accounts = 4
	}
	if hotAccounts < 2 {
		hotAccounts = 2
	}
	if hotAccounts > accounts {
		hotAccounts = accounts
	}
	transfer := func(rng *rand.Rand, span int) []string {
		from := rng.Intn(span)
		to := rng.Intn(span - 1)
		if to >= from {
			to++
		}
		amt := float64(1+rng.Intn(500)) / 100
		return []string{
			fmt.Sprintf("update account set balance = balance - %.2f where id = %d;", amt, from),
			fmt.Sprintf("update account set balance = balance + %.2f where id = %d;", amt, to),
		}
	}
	return Mix{
		Name: "bank",
		Kinds: []TxKind{
			{
				Name:     "analytics",
				Weight:   analyticsPct,
				ReadOnly: true,
				Make: func(rng *rand.Rand) []string {
					floor := rng.Intn(900)
					return []string{fmt.Sprintf(
						"select count(*), sum(balance) from account where balance > %d;", floor)}
				},
			},
			{
				Name:   "transfer",
				Weight: transferPct,
				Make:   func(rng *rand.Rand) []string { return transfer(rng, accounts) },
			},
			{
				Name:   "hotspot",
				Weight: hotspotPct,
				Make:   func(rng *rand.Rand) []string { return transfer(rng, hotAccounts) },
			},
		},
	}
}

// OpenLoopConfig tunes a load-generation run against a serving address.
type OpenLoopConfig struct {
	// Addr is the xraserve TCP address.
	Addr string
	// Clients is the number of concurrent sessions.  Zero means 8.
	Clients int
	// Think is the mean per-client pause between transactions (uniform in
	// [0.5, 1.5] × Think).  Zero means no think time (saturation mode).
	Think time.Duration
	// Duration bounds the run.  Zero means 2 seconds.
	Duration time.Duration
	// Seed makes client random streams reproducible.
	Seed int64
	// MaxRetries bounds conflict retries per transaction.  Zero means 10.
	MaxRetries int
	// Timeout bounds each request/response round trip.  Zero means 30s.
	Timeout time.Duration
	// Mix is the weighted transaction mix; required.
	Mix Mix
}

// withDefaults fills in zero fields.
func (c OpenLoopConfig) withDefaults() OpenLoopConfig {
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 10
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// KindStats aggregates one transaction kind's outcomes across all clients.
type KindStats struct {
	// Attempts counts transaction executions including conflict retries.
	Attempts uint64 `json:"attempts"`
	// Commits counts successfully committed transactions.
	Commits uint64 `json:"commits"`
	// Conflicts counts first-committer-wins aborts (each followed by a
	// retry while attempts remain).
	Conflicts uint64 `json:"conflicts"`
	// Errors counts non-conflict failures.
	Errors uint64 `json:"errors"`
	// ConflictsPerCommit is Conflicts/Commits — the retry burn rate of this
	// kind, the number key-granular conflict validation is judged by.  Zero
	// when the kind never committed.
	ConflictsPerCommit float64 `json:"conflicts_per_commit"`
}

// Report summarises one load-generation run.
type Report struct {
	// Mix names the transaction mix.
	Mix string `json:"mix"`
	// Clients is the number of concurrent sessions used.
	Clients int `json:"clients"`
	// ElapsedMS is the measured wall-clock run time in milliseconds.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Committed counts committed transactions across all kinds.
	Committed uint64 `json:"committed"`
	// Conflicts counts first-committer-wins aborts across all kinds.
	Conflicts uint64 `json:"conflicts"`
	// Errors counts non-conflict failures across all kinds.
	Errors uint64 `json:"errors"`
	// ConflictsPerCommit is Conflicts/Commits across all kinds (zero when
	// nothing committed); the per-kind breakdown lives in Kinds.
	ConflictsPerCommit float64 `json:"conflicts_per_commit"`
	// TPS is committed transactions per second.
	TPS float64 `json:"tps"`
	// P50US, P95US and P99US are commit-latency percentiles in microseconds,
	// measured from a transaction's first statement to its commit response
	// (retries included).
	P50US int64 `json:"p50_us"`
	P95US int64 `json:"p95_us"`
	P99US int64 `json:"p99_us"`
	// Kinds breaks the outcomes down per transaction kind.
	Kinds map[string]KindStats `json:"kinds"`
}

// RunOpenLoop drives the configured transaction mix against a running server
// from cfg.Clients concurrent sessions, pausing each client for a think time
// between transactions, retrying conflicted transactions, and reporting
// throughput and latency percentiles.
func RunOpenLoop(cfg OpenLoopConfig) (Report, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Mix.Kinds) == 0 {
		return Report{}, errors.New("workload: open-loop config needs a transaction mix")
	}

	type clientResult struct {
		latencies []time.Duration
		kinds     map[string]*KindStats
		err       error
	}
	results := make([]clientResult, cfg.Clients)
	start := time.Now()
	deadline := start.Add(cfg.Duration)

	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := &results[i]
			res.kinds = make(map[string]*KindStats)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			cl, err := server.Dial(cfg.Addr, cfg.Timeout)
			if err != nil {
				res.err = err
				return
			}
			defer cl.Close()
			for time.Now().Before(deadline) {
				kind := cfg.Mix.pick(rng)
				stats := res.kinds[kind.Name]
				if stats == nil {
					stats = &KindStats{}
					res.kinds[kind.Name] = stats
				}
				lines := kind.Make(rng)
				lat, err := runTx(cl, lines, kind.ReadOnly, cfg.MaxRetries, stats)
				if err != nil {
					res.err = err
					return
				}
				if lat > 0 {
					res.latencies = append(res.latencies, lat)
				}
				if cfg.Think > 0 {
					jitter := 0.5 + rng.Float64()
					time.Sleep(time.Duration(float64(cfg.Think) * jitter))
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := Report{
		Mix:       cfg.Mix.Name,
		Clients:   cfg.Clients,
		ElapsedMS: elapsed.Milliseconds(),
		Kinds:     make(map[string]KindStats),
	}
	var all []time.Duration
	for i := range results {
		if results[i].err != nil {
			return report, fmt.Errorf("workload: client %d: %w", i, results[i].err)
		}
		all = append(all, results[i].latencies...)
		for name, ks := range results[i].kinds {
			agg := report.Kinds[name]
			agg.Attempts += ks.Attempts
			agg.Commits += ks.Commits
			agg.Conflicts += ks.Conflicts
			agg.Errors += ks.Errors
			report.Kinds[name] = agg
		}
	}
	for name, ks := range report.Kinds {
		if ks.Commits > 0 {
			ks.ConflictsPerCommit = float64(ks.Conflicts) / float64(ks.Commits)
			report.Kinds[name] = ks
		}
		report.Committed += ks.Commits
		report.Conflicts += ks.Conflicts
		report.Errors += ks.Errors
	}
	if report.Committed > 0 {
		report.ConflictsPerCommit = float64(report.Conflicts) / float64(report.Committed)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		report.TPS = float64(report.Committed) / secs
	}
	report.P50US, report.P95US, report.P99US = percentiles(all)
	return report, nil
}

// runTx executes one transaction's lines on the client, retrying on conflict,
// and returns the successful attempt's latency (0 when the transaction never
// committed).  Transport errors are fatal; statement errors are counted and
// swallowed so the run continues.
func runTx(cl *server.Client, lines []string, readOnly bool, maxRetries int, stats *KindStats) (time.Duration, error) {
	explicit := len(lines) > 1
	for attempt := 0; ; attempt++ {
		stats.Attempts++
		start := time.Now()
		resp, conflict, err := execTx(cl, lines, explicit)
		if err != nil {
			return 0, err
		}
		if resp.OK {
			stats.Commits++
			return time.Since(start), nil
		}
		if conflict && !readOnly && attempt < maxRetries {
			stats.Conflicts++
			continue
		}
		if conflict {
			stats.Conflicts++
		} else {
			stats.Errors++
		}
		return 0, nil
	}
}

// execTx runs one attempt: autocommit for a single line, an explicit
// begin/commit bracket otherwise.  It reports whether the failure was a
// retryable conflict.
func execTx(cl *server.Client, lines []string, explicit bool) (server.Response, bool, error) {
	if !explicit {
		resp, err := cl.Do(lines[0])
		return resp, resp.Conflict, err
	}
	if resp, err := cl.Begin(); err != nil || !resp.OK {
		return resp, false, err
	}
	for _, line := range lines {
		resp, err := cl.Do(line)
		if err != nil {
			return resp, false, err
		}
		if !resp.OK {
			// A failed statement aborted the transaction server-side; the
			// session needs a rollback to leave the aborted state.
			if resp.State == server.StateAborted {
				if _, err := cl.Rollback(); err != nil {
					return resp, false, err
				}
			}
			return resp, resp.Conflict, nil
		}
	}
	resp, err := cl.Commit()
	return resp, resp.Conflict, err
}

// percentiles returns the 50th, 95th and 99th percentile of the samples in
// microseconds (zeros when there are no samples).
func percentiles(samples []time.Duration) (p50, p95, p99 int64) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(f float64) int64 {
		idx := int(f * float64(len(samples)-1))
		return samples[idx].Microseconds()
	}
	return at(0.50), at(0.95), at(0.99)
}

// ParseReplay parses a pgcheetah-style replay script: one command per line,
// '#' comments and blank lines ignored, begin/commit (or end) lines
// bracketing multi-statement transactions, and bare statements outside
// brackets standing alone as auto-committed transactions.  The parsed
// transactions can be fed back through ReplayMix.
func ParseReplay(text string) ([][]string, error) {
	var (
		txs     [][]string
		current []string
		inTx    bool
	)
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch strings.ToLower(strings.TrimRight(line, "; \t")) {
		case "begin":
			if inTx {
				return nil, fmt.Errorf("workload: replay line %d: nested begin", i+1)
			}
			inTx = true
			current = nil
		case "commit", "end":
			if !inTx {
				return nil, fmt.Errorf("workload: replay line %d: commit outside a transaction", i+1)
			}
			if len(current) > 0 {
				txs = append(txs, current)
			}
			inTx = false
		case "rollback", "abort":
			if !inTx {
				return nil, fmt.Errorf("workload: replay line %d: rollback outside a transaction", i+1)
			}
			inTx = false
		default:
			if inTx {
				current = append(current, line)
			} else {
				txs = append(txs, []string{line})
			}
		}
	}
	if inTx {
		return nil, errors.New("workload: replay script ends inside an open transaction")
	}
	if len(txs) == 0 {
		return nil, errors.New("workload: replay script holds no transactions")
	}
	return txs, nil
}

// ReplayMix wraps parsed replay transactions as an equally weighted mix, so
// captured workloads run through the same open-loop driver as synthetic ones.
func ReplayMix(name string, txs [][]string) Mix {
	kinds := make([]TxKind, len(txs))
	for i, tx := range txs {
		tx := tx
		kinds[i] = TxKind{
			Name:   fmt.Sprintf("tx%02d", i),
			Weight: 1,
			Make:   func(*rand.Rand) []string { return tx },
		}
	}
	return Mix{Name: name, Kinds: kinds}
}
