package scalar

import (
	"strings"
	"testing"
	"testing/quick"

	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

func testSchema() schema.Relation {
	return schema.NewRelation("beer",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "brewery", Type: value.KindString},
		schema.Attribute{Name: "alcperc", Type: value.KindFloat},
	)
}

func beerTuple() tuple.Tuple {
	return tuple.New(value.NewString("pils"), value.NewString("guineken"), value.NewFloat(5.0))
}

func TestConst(t *testing.T) {
	c := NewConst(value.NewInt(7))
	v, err := c.Eval(tuple.New())
	if err != nil || v.Int() != 7 {
		t.Errorf("Eval = %v, %v", v, err)
	}
	k, err := c.Type(testSchema())
	if err != nil || k != value.KindInt {
		t.Errorf("Type = %v, %v", k, err)
	}
	if len(c.Refs(nil)) != 0 {
		t.Error("constant has no refs")
	}
	r, err := c.Rebase(map[int]int{})
	if err != nil || r.String() != "7" {
		t.Errorf("Rebase = %v, %v", r, err)
	}
}

func TestAttr(t *testing.T) {
	a := NewAttr(2)
	v, err := a.Eval(beerTuple())
	if err != nil || v.Float() != 5.0 {
		t.Errorf("Eval = %v, %v", v, err)
	}
	if _, err := NewAttr(5).Eval(beerTuple()); err == nil {
		t.Error("out-of-range attribute must fail at eval")
	}
	k, err := a.Type(testSchema())
	if err != nil || k != value.KindFloat {
		t.Errorf("Type = %v, %v", k, err)
	}
	if _, err := NewAttr(5).Type(testSchema()); err == nil {
		t.Error("out-of-range attribute must fail typing")
	}
	if refs := a.Refs(nil); len(refs) != 1 || refs[0] != 2 {
		t.Errorf("Refs = %v", refs)
	}
	if a.String() != "%3" {
		t.Errorf("String = %q (attribute numbers are 1-based)", a.String())
	}
	rb, err := a.Rebase(map[int]int{2: 0})
	if err != nil || rb.(Attr).Index != 0 {
		t.Errorf("Rebase = %v, %v", rb, err)
	}
	if _, err := a.Rebase(map[int]int{0: 1}); err == nil {
		t.Error("rebase without image must fail")
	}
}

func TestArith(t *testing.T) {
	// alcperc * 1.1 (the paper's Example 4.1 update expression).
	e := NewArith(value.OpMul, NewAttr(2), NewConst(value.NewFloat(1.1)))
	v, err := e.Eval(beerTuple())
	if err != nil || v.Float() < 5.49 || v.Float() > 5.51 {
		t.Errorf("Eval = %v, %v", v, err)
	}
	k, err := e.Type(testSchema())
	if err != nil || k != value.KindFloat {
		t.Errorf("Type = %v, %v", k, err)
	}
	if refs := e.Refs(nil); len(refs) != 1 || refs[0] != 2 {
		t.Errorf("Refs = %v", refs)
	}
	if !strings.Contains(e.String(), "%3 * 1.1") {
		t.Errorf("String = %q", e.String())
	}
	// Type error: string * float.
	bad := NewArith(value.OpMul, NewAttr(0), NewConst(value.NewFloat(2)))
	if _, err := bad.Type(testSchema()); err == nil {
		t.Error("string * float must not type-check")
	}
	if _, err := bad.Eval(beerTuple()); err == nil {
		t.Error("string * float must not evaluate")
	}
	// Error propagation from operands.
	brokenLeft := NewArith(value.OpAdd, NewAttr(9), NewConst(value.NewInt(1)))
	if _, err := brokenLeft.Eval(beerTuple()); err == nil {
		t.Error("left operand errors must propagate")
	}
	if _, err := brokenLeft.Type(testSchema()); err == nil {
		t.Error("left operand type errors must propagate")
	}
	brokenRight := NewArith(value.OpAdd, NewConst(value.NewInt(1)), NewAttr(9))
	if _, err := brokenRight.Eval(beerTuple()); err == nil {
		t.Error("right operand errors must propagate")
	}
	if _, err := brokenRight.Type(testSchema()); err == nil {
		t.Error("right operand type errors must propagate")
	}
	// Rebase maps both sides.
	rb, err := e.Rebase(map[int]int{2: 0})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := rb.Eval(tuple.New(value.NewFloat(10)))
	if err != nil || v2.Float() < 10.9 || v2.Float() > 11.1 {
		t.Errorf("rebased Eval = %v, %v", v2, err)
	}
	if _, err := e.Rebase(map[int]int{0: 0}); err == nil {
		t.Error("rebase with missing image must fail")
	}
}

func TestNeg(t *testing.T) {
	n := Neg{Operand: NewConst(value.NewInt(4))}
	v, err := n.Eval(tuple.New())
	if err != nil || v.Int() != -4 {
		t.Errorf("Neg eval = %v, %v", v, err)
	}
	k, err := n.Type(testSchema())
	if err != nil || k != value.KindInt {
		t.Errorf("Neg type = %v, %v", k, err)
	}
	nf := Neg{Operand: NewAttr(2)}
	k, err = nf.Type(testSchema())
	if err != nil || k != value.KindFloat {
		t.Errorf("Neg float type = %v, %v", k, err)
	}
	if refs := nf.Refs(nil); len(refs) != 1 || refs[0] != 2 {
		t.Errorf("Neg refs = %v", refs)
	}
	if !strings.Contains(nf.String(), "-%3") {
		t.Errorf("Neg string = %q", nf.String())
	}
	bad := Neg{Operand: NewAttr(0)}
	if _, err := bad.Type(testSchema()); err == nil {
		t.Error("negating a string must not type-check")
	}
	if _, err := (Neg{Operand: NewAttr(9)}).Eval(beerTuple()); err == nil {
		t.Error("operand eval errors must propagate")
	}
	rb, err := nf.Rebase(map[int]int{2: 1})
	if err != nil || rb.Refs(nil)[0] != 1 {
		t.Errorf("Neg rebase = %v, %v", rb, err)
	}
	if _, err := nf.Rebase(map[int]int{}); err == nil {
		t.Error("Neg rebase with missing image must fail")
	}
}

func TestTrueFalse(t *testing.T) {
	tr, fl := True{}, False{}
	if v, _ := tr.Holds(beerTuple()); !v {
		t.Error("True must hold")
	}
	if v, _ := fl.Holds(beerTuple()); v {
		t.Error("False must not hold")
	}
	if tr.Validate(testSchema()) != nil || fl.Validate(testSchema()) != nil {
		t.Error("constants always validate")
	}
	if len(tr.Refs(nil)) != 0 || len(fl.Refs(nil)) != 0 {
		t.Error("constants have no refs")
	}
	if tr.String() != "true" || fl.String() != "false" {
		t.Error("constant strings")
	}
	if p, err := tr.Rebase(nil); err != nil || p.String() != "true" {
		t.Error("True rebase")
	}
	if p, err := fl.Rebase(nil); err != nil || p.String() != "false" {
		t.Error("False rebase")
	}
}

func TestCompare(t *testing.T) {
	// brewery = 'guineken'
	c := NewCompare(value.CmpEq, NewAttr(1), NewConst(value.NewString("guineken")))
	ok, err := c.Holds(beerTuple())
	if err != nil || !ok {
		t.Errorf("Holds = %v, %v", ok, err)
	}
	c2 := NewCompare(value.CmpGt, NewAttr(2), NewConst(value.NewFloat(6)))
	ok, err = c2.Holds(beerTuple())
	if err != nil || ok {
		t.Errorf("alcperc > 6 should not hold: %v, %v", ok, err)
	}
	if err := c.Validate(testSchema()); err != nil {
		t.Errorf("Validate: %v", err)
	}
	bad := NewCompare(value.CmpEq, NewAttr(0), NewConst(value.NewInt(3)))
	if err := bad.Validate(testSchema()); err == nil {
		t.Error("string = int must not validate")
	}
	if err := NewCompare(value.CmpEq, NewAttr(9), NewConst(value.NewInt(3))).Validate(testSchema()); err == nil {
		t.Error("left typing errors propagate")
	}
	if err := NewCompare(value.CmpEq, NewConst(value.NewInt(3)), NewAttr(9)).Validate(testSchema()); err == nil {
		t.Error("right typing errors propagate")
	}
	nullOK := NewCompare(value.CmpEq, NewAttr(0), NewConst(value.Null))
	if err := nullOK.Validate(testSchema()); err != nil {
		t.Errorf("comparisons against null are allowed: %v", err)
	}
	if _, err := NewCompare(value.CmpEq, NewAttr(9), NewConst(value.NewInt(1))).Holds(beerTuple()); err == nil {
		t.Error("left eval errors propagate")
	}
	if _, err := NewCompare(value.CmpEq, NewConst(value.NewInt(1)), NewAttr(9)).Holds(beerTuple()); err == nil {
		t.Error("right eval errors propagate")
	}
	if refs := c.Refs(nil); len(refs) != 1 || refs[0] != 1 {
		t.Errorf("Refs = %v", refs)
	}
	if got := c.String(); !strings.Contains(got, "%2 = 'guineken'") {
		t.Errorf("String = %q", got)
	}
	// Eq helper.
	join := Eq(0, 4)
	if join.Op != value.CmpEq || join.Left.(Attr).Index != 0 || join.Right.(Attr).Index != 4 {
		t.Errorf("Eq = %+v", join)
	}
	rb, err := c.Rebase(map[int]int{1: 0})
	if err != nil {
		t.Fatal(err)
	}
	ok, err = rb.Holds(tuple.New(value.NewString("guineken")))
	if err != nil || !ok {
		t.Errorf("rebased Holds = %v, %v", ok, err)
	}
	if _, err := c.Rebase(map[int]int{}); err == nil {
		t.Error("rebase with missing image must fail")
	}
	if _, err := Eq(0, 1).Rebase(map[int]int{0: 0}); err == nil {
		t.Error("rebase failure on the right operand must propagate")
	}
}

func TestAndOrNot(t *testing.T) {
	isGuineken := NewCompare(value.CmpEq, NewAttr(1), NewConst(value.NewString("guineken")))
	strong := NewCompare(value.CmpGe, NewAttr(2), NewConst(value.NewFloat(6)))
	weak := NewCompare(value.CmpLt, NewAttr(2), NewConst(value.NewFloat(6)))

	and := And{Left: isGuineken, Right: weak}
	ok, err := and.Holds(beerTuple())
	if err != nil || !ok {
		t.Errorf("And = %v, %v", ok, err)
	}
	and2 := And{Left: isGuineken, Right: strong}
	if ok, _ := and2.Holds(beerTuple()); ok {
		t.Error("And with a false conjunct must not hold")
	}
	// Short-circuit: right side would error but left is false.
	sc := And{Left: False{}, Right: NewCompare(value.CmpEq, NewAttr(9), NewConst(value.NewInt(1)))}
	if ok, err := sc.Holds(beerTuple()); err != nil || ok {
		t.Errorf("And must short-circuit: %v, %v", ok, err)
	}
	if _, err := (And{Left: NewCompare(value.CmpEq, NewAttr(9), NewConst(value.NewInt(1))), Right: True{}}).Holds(beerTuple()); err == nil {
		t.Error("And left errors propagate")
	}

	or := Or{Left: strong, Right: weak}
	if ok, err := or.Holds(beerTuple()); err != nil || !ok {
		t.Errorf("Or = %v, %v", ok, err)
	}
	orShort := Or{Left: isGuineken, Right: NewCompare(value.CmpEq, NewAttr(9), NewConst(value.NewInt(1)))}
	if ok, err := orShort.Holds(beerTuple()); err != nil || !ok {
		t.Errorf("Or must short-circuit: %v, %v", ok, err)
	}
	if _, err := (Or{Left: NewCompare(value.CmpEq, NewAttr(9), NewConst(value.NewInt(1))), Right: True{}}).Holds(beerTuple()); err == nil {
		t.Error("Or left errors propagate")
	}

	not := Not{Operand: strong}
	if ok, err := not.Holds(beerTuple()); err != nil || !ok {
		t.Errorf("Not = %v, %v", ok, err)
	}
	if _, err := (Not{Operand: NewCompare(value.CmpEq, NewAttr(9), NewConst(value.NewInt(1)))}).Holds(beerTuple()); err == nil {
		t.Error("Not errors propagate")
	}

	// Validation propagation.
	badCmp := NewCompare(value.CmpEq, NewAttr(0), NewConst(value.NewInt(3)))
	if err := (And{Left: badCmp, Right: True{}}).Validate(testSchema()); err == nil {
		t.Error("And left validation")
	}
	if err := (And{Left: True{}, Right: badCmp}).Validate(testSchema()); err == nil {
		t.Error("And right validation")
	}
	if err := (Or{Left: badCmp, Right: True{}}).Validate(testSchema()); err == nil {
		t.Error("Or left validation")
	}
	if err := (Or{Left: True{}, Right: badCmp}).Validate(testSchema()); err == nil {
		t.Error("Or right validation")
	}
	if err := (Not{Operand: badCmp}).Validate(testSchema()); err == nil {
		t.Error("Not validation")
	}
	if err := (And{Left: isGuineken, Right: strong}).Validate(testSchema()); err != nil {
		t.Errorf("valid And rejected: %v", err)
	}
	if err := (Or{Left: isGuineken, Right: strong}).Validate(testSchema()); err != nil {
		t.Errorf("valid Or rejected: %v", err)
	}

	// Refs and strings.
	if refs := and.Refs(nil); len(refs) != 2 {
		t.Errorf("And refs = %v", refs)
	}
	if refs := or.Refs(nil); len(refs) != 2 {
		t.Errorf("Or refs = %v", refs)
	}
	if refs := not.Refs(nil); len(refs) != 1 {
		t.Errorf("Not refs = %v", refs)
	}
	if s := and.String(); !strings.Contains(s, "and") {
		t.Errorf("And string = %q", s)
	}
	if s := or.String(); !strings.Contains(s, "or") {
		t.Errorf("Or string = %q", s)
	}
	if s := not.String(); !strings.HasPrefix(s, "not") {
		t.Errorf("Not string = %q", s)
	}

	// Rebase.
	m := map[int]int{1: 0, 2: 1}
	if _, err := and.Rebase(m); err != nil {
		t.Errorf("And rebase: %v", err)
	}
	if _, err := or.Rebase(m); err != nil {
		t.Errorf("Or rebase: %v", err)
	}
	if _, err := not.Rebase(m); err != nil {
		t.Errorf("Not rebase: %v", err)
	}
	if _, err := and.Rebase(map[int]int{1: 0}); err == nil {
		t.Error("And rebase failure propagates")
	}
	if _, err := (And{Left: strong, Right: isGuineken}).Rebase(map[int]int{1: 0}); err == nil {
		t.Error("And rebase left failure propagates")
	}
	if _, err := or.Rebase(map[int]int{1: 0}); err == nil {
		t.Error("Or rebase failure propagates")
	}
	if _, err := (Or{Left: strong, Right: isGuineken}).Rebase(map[int]int{1: 0}); err == nil {
		t.Error("Or rebase left failure propagates")
	}
	if _, err := not.Rebase(map[int]int{1: 0}); err == nil {
		t.Error("Not rebase failure propagates")
	}
}

func TestNewAndAndConjuncts(t *testing.T) {
	if _, ok := NewAnd().(True); !ok {
		t.Error("empty conjunction is True")
	}
	single := NewCompare(value.CmpEq, NewAttr(0), NewConst(value.NewString("x")))
	if p := NewAnd(single); p.String() != single.String() {
		t.Error("singleton conjunction is the predicate itself")
	}
	p1 := NewCompare(value.CmpGt, NewAttr(2), NewConst(value.NewFloat(1)))
	p2 := NewCompare(value.CmpLt, NewAttr(2), NewConst(value.NewFloat(9)))
	p3 := NewCompare(value.CmpEq, NewAttr(1), NewConst(value.NewString("g")))
	conj := NewAnd(p1, p2, p3)
	cs := Conjuncts(conj)
	if len(cs) != 3 {
		t.Errorf("Conjuncts = %d, want 3", len(cs))
	}
	if len(Conjuncts(True{})) != 0 {
		t.Error("Conjuncts of True is empty")
	}
	if len(Conjuncts(p1)) != 1 {
		t.Error("Conjuncts of an atom is itself")
	}
}

func TestMaxMinRef(t *testing.T) {
	p := NewAnd(Eq(1, 4), NewCompare(value.CmpGt, NewAttr(2), NewConst(value.NewInt(0))))
	if MaxRef(p) != 4 {
		t.Errorf("MaxRef = %d", MaxRef(p))
	}
	if MinRef(p) != 1 {
		t.Errorf("MinRef = %d", MinRef(p))
	}
	if MaxRef(True{}) != -1 || MinRef(True{}) != -1 {
		t.Error("refs of True")
	}
}

func TestComparePropertyNegateFlip(t *testing.T) {
	// For all int pairs, p(a,b) == !negate(p)(a,b) and p(a,b) == flip(p)(b,a).
	ops := []value.CompareOp{value.CmpEq, value.CmpNe, value.CmpLt, value.CmpLe, value.CmpGt, value.CmpGe}
	f := func(a, b int64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		ta := tuple.Ints(a, b)
		p := NewCompare(op, NewAttr(0), NewAttr(1))
		neg := NewCompare(op.Negate(), NewAttr(0), NewAttr(1))
		flip := NewCompare(op.Flip(), NewAttr(1), NewAttr(0))
		v1, _ := p.Holds(ta)
		v2, _ := neg.Holds(ta)
		v3, _ := flip.Holds(ta)
		return v1 == !v2 && v1 == v3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
