package scalar

import (
	"fmt"

	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// Predicate is a selection condition φ: a function from dom(𝓔) into the
// boolean domain (Definition 3.1).
type Predicate interface {
	// Holds evaluates the condition on a tuple.
	Holds(t tuple.Tuple) (bool, error)
	// Validate type-checks the condition against a schema.
	Validate(s schema.Relation) error
	// Refs appends the 0-based attribute positions the condition reads.
	Refs(dst []int) []int
	// Rebase rewrites attribute references through a position mapping.
	Rebase(mapping map[int]int) (Predicate, error)
	// String renders the condition in XRA surface syntax.
	String() string
}

// True is the always-true condition.
type True struct{}

// Holds implements Predicate.
func (True) Holds(tuple.Tuple) (bool, error) { return true, nil }

// Validate implements Predicate.
func (True) Validate(schema.Relation) error { return nil }

// Refs implements Predicate.
func (True) Refs(dst []int) []int { return dst }

// Rebase implements Predicate.
func (True) Rebase(map[int]int) (Predicate, error) { return True{}, nil }

// String implements Predicate.
func (True) String() string { return "true" }

// False is the always-false condition.
type False struct{}

// Holds implements Predicate.
func (False) Holds(tuple.Tuple) (bool, error) { return false, nil }

// Validate implements Predicate.
func (False) Validate(schema.Relation) error { return nil }

// Refs implements Predicate.
func (False) Refs(dst []int) []int { return dst }

// Rebase implements Predicate.
func (False) Rebase(map[int]int) (Predicate, error) { return False{}, nil }

// String implements Predicate.
func (False) String() string { return "false" }

// Compare is the atomic comparison condition "left op right" on scalar
// expressions.
type Compare struct {
	Op          value.CompareOp
	Left, Right Expr
}

// NewCompare builds a comparison condition.
func NewCompare(op value.CompareOp, left, right Expr) Compare {
	return Compare{Op: op, Left: left, Right: right}
}

// Eq builds the equality condition %l = %r on two attribute positions; it is
// the common shape of join conditions.
func Eq(left, right int) Compare {
	return Compare{Op: value.CmpEq, Left: NewAttr(left), Right: NewAttr(right)}
}

// Holds implements Predicate.
func (c Compare) Holds(t tuple.Tuple) (bool, error) {
	l, err := c.Left.Eval(t)
	if err != nil {
		return false, err
	}
	r, err := c.Right.Eval(t)
	if err != nil {
		return false, err
	}
	return c.Op.Apply(l, r)
}

// Validate implements Predicate.
func (c Compare) Validate(s schema.Relation) error {
	lk, err := c.Left.Type(s)
	if err != nil {
		return err
	}
	rk, err := c.Right.Type(s)
	if err != nil {
		return err
	}
	if lk == value.KindNull || rk == value.KindNull {
		return nil
	}
	if lk == rk || (lk.Numeric() && rk.Numeric()) {
		return nil
	}
	return fmt.Errorf("%w: cannot compare %s with %s in %s", ErrEval, lk, rk, c)
}

// Refs implements Predicate.
func (c Compare) Refs(dst []int) []int { return c.Right.Refs(c.Left.Refs(dst)) }

// Rebase implements Predicate.
func (c Compare) Rebase(mapping map[int]int) (Predicate, error) {
	l, err := c.Left.Rebase(mapping)
	if err != nil {
		return nil, err
	}
	r, err := c.Right.Rebase(mapping)
	if err != nil {
		return nil, err
	}
	return Compare{Op: c.Op, Left: l, Right: r}, nil
}

// String implements Predicate.
func (c Compare) String() string {
	return fmt.Sprintf("%s %s %s", c.Left.String(), c.Op, c.Right.String())
}

// And is the conjunction of two conditions.
type And struct {
	Left, Right Predicate
}

// NewAnd builds the conjunction of conditions, folding the slice left to
// right; the empty conjunction is True.
func NewAnd(preds ...Predicate) Predicate {
	switch len(preds) {
	case 0:
		return True{}
	case 1:
		return preds[0]
	}
	cur := preds[0]
	for _, p := range preds[1:] {
		cur = And{Left: cur, Right: p}
	}
	return cur
}

// Holds implements Predicate.
func (a And) Holds(t tuple.Tuple) (bool, error) {
	l, err := a.Left.Holds(t)
	if err != nil {
		return false, err
	}
	if !l {
		return false, nil
	}
	return a.Right.Holds(t)
}

// Validate implements Predicate.
func (a And) Validate(s schema.Relation) error {
	if err := a.Left.Validate(s); err != nil {
		return err
	}
	return a.Right.Validate(s)
}

// Refs implements Predicate.
func (a And) Refs(dst []int) []int { return a.Right.Refs(a.Left.Refs(dst)) }

// Rebase implements Predicate.
func (a And) Rebase(mapping map[int]int) (Predicate, error) {
	l, err := a.Left.Rebase(mapping)
	if err != nil {
		return nil, err
	}
	r, err := a.Right.Rebase(mapping)
	if err != nil {
		return nil, err
	}
	return And{Left: l, Right: r}, nil
}

// String implements Predicate.
func (a And) String() string {
	return fmt.Sprintf("(%s and %s)", a.Left.String(), a.Right.String())
}

// Or is the disjunction of two conditions.
type Or struct {
	Left, Right Predicate
}

// Holds implements Predicate.
func (o Or) Holds(t tuple.Tuple) (bool, error) {
	l, err := o.Left.Holds(t)
	if err != nil {
		return false, err
	}
	if l {
		return true, nil
	}
	return o.Right.Holds(t)
}

// Validate implements Predicate.
func (o Or) Validate(s schema.Relation) error {
	if err := o.Left.Validate(s); err != nil {
		return err
	}
	return o.Right.Validate(s)
}

// Refs implements Predicate.
func (o Or) Refs(dst []int) []int { return o.Right.Refs(o.Left.Refs(dst)) }

// Rebase implements Predicate.
func (o Or) Rebase(mapping map[int]int) (Predicate, error) {
	l, err := o.Left.Rebase(mapping)
	if err != nil {
		return nil, err
	}
	r, err := o.Right.Rebase(mapping)
	if err != nil {
		return nil, err
	}
	return Or{Left: l, Right: r}, nil
}

// String implements Predicate.
func (o Or) String() string {
	return fmt.Sprintf("(%s or %s)", o.Left.String(), o.Right.String())
}

// Not is the negation of a condition.
type Not struct {
	Operand Predicate
}

// Holds implements Predicate.
func (n Not) Holds(t tuple.Tuple) (bool, error) {
	v, err := n.Operand.Holds(t)
	if err != nil {
		return false, err
	}
	return !v, nil
}

// Validate implements Predicate.
func (n Not) Validate(s schema.Relation) error { return n.Operand.Validate(s) }

// Refs implements Predicate.
func (n Not) Refs(dst []int) []int { return n.Operand.Refs(dst) }

// Rebase implements Predicate.
func (n Not) Rebase(mapping map[int]int) (Predicate, error) {
	o, err := n.Operand.Rebase(mapping)
	if err != nil {
		return nil, err
	}
	return Not{Operand: o}, nil
}

// String implements Predicate.
func (n Not) String() string { return "not (" + n.Operand.String() + ")" }

// Conjuncts flattens a condition into its top-level conjuncts.  The rewrite
// engine uses it to push individual conjuncts of a selection condition to the
// operator sides that can evaluate them.
func Conjuncts(p Predicate) []Predicate {
	if a, ok := p.(And); ok {
		return append(Conjuncts(a.Left), Conjuncts(a.Right)...)
	}
	if _, ok := p.(True); ok {
		return nil
	}
	return []Predicate{p}
}

// MaxRef returns the largest 0-based attribute position referenced by the
// predicate, or -1 if it references none.
func MaxRef(p Predicate) int {
	max := -1
	for _, r := range p.Refs(nil) {
		if r > max {
			max = r
		}
	}
	return max
}

// MinRef returns the smallest referenced position, or -1 if none.
func MinRef(p Predicate) int {
	min := -1
	for _, r := range p.Refs(nil) {
		if min == -1 || r < min {
			min = r
		}
	}
	return min
}
