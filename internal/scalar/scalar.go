// Package scalar implements the scalar expression language used inside the
// multi-set extended relational algebra: the selection conditions φ of σ and
// ⋈ (functions from dom(𝓔) into the boolean domain) and the arithmetic
// expressions of the extended projection π (functions from dom(𝓔) into a
// basic domain) — Definitions 3.1 and 3.4 of Grefen & de By, ICDE 1994.
//
// Expressions reference attributes positionally (%1, %2, ...), matching the
// paper's prefixed-attribute-number convention; the front-end packages resolve
// attribute names to positions before constructing scalar expressions.
package scalar

import (
	"errors"
	"fmt"

	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// ErrEval is the sentinel wrapped by scalar evaluation and typing errors.
var ErrEval = errors.New("scalar error")

// Expr is a scalar expression evaluated against a single tuple.
type Expr interface {
	// Eval computes the expression's value on the given tuple.
	Eval(t tuple.Tuple) (value.Value, error)
	// Type infers the expression's result domain against a schema, validating
	// attribute references and operand domains along the way.
	Type(s schema.Relation) (value.Kind, error)
	// Refs appends the 0-based attribute positions the expression reads to
	// dst and returns the extended slice.
	Refs(dst []int) []int
	// Rebase returns a copy of the expression with every attribute reference i
	// replaced by mapping[i].  It is used by the rewrite engine when pushing
	// expressions through projections and products.  It returns an error if a
	// referenced attribute has no image in the mapping.
	Rebase(mapping map[int]int) (Expr, error)
	// String renders the expression in XRA surface syntax.
	String() string
}

// Const is a constant scalar expression.
type Const struct {
	// Value is the constant's value.
	Value value.Value
}

// NewConst returns a constant expression.
func NewConst(v value.Value) Const { return Const{Value: v} }

// Eval implements Expr.
func (c Const) Eval(tuple.Tuple) (value.Value, error) { return c.Value, nil }

// Type implements Expr.
func (c Const) Type(schema.Relation) (value.Kind, error) { return c.Value.Kind(), nil }

// Refs implements Expr.
func (c Const) Refs(dst []int) []int { return dst }

// Rebase implements Expr.
func (c Const) Rebase(map[int]int) (Expr, error) { return c, nil }

// String implements Expr.
func (c Const) String() string { return c.Value.String() }

// Attr references the i-th attribute of the input tuple (0-based internally;
// rendered 1-based as %i per the paper's convention).
type Attr struct {
	// Index is the 0-based attribute position.
	Index int
}

// NewAttr returns an attribute reference for the 0-based position i.
func NewAttr(i int) Attr { return Attr{Index: i} }

// Eval implements Expr.
func (a Attr) Eval(t tuple.Tuple) (value.Value, error) {
	if a.Index < 0 || a.Index >= t.Arity() {
		return value.Null, fmt.Errorf("%w: attribute %%%d out of range for arity %d", ErrEval, a.Index+1, t.Arity())
	}
	return t.At(a.Index), nil
}

// Type implements Expr.
func (a Attr) Type(s schema.Relation) (value.Kind, error) {
	if a.Index < 0 || a.Index >= s.Arity() {
		return value.KindNull, fmt.Errorf("%w: attribute %%%d out of range for schema %s", ErrEval, a.Index+1, s)
	}
	return s.Attribute(a.Index).Type, nil
}

// Refs implements Expr.
func (a Attr) Refs(dst []int) []int { return append(dst, a.Index) }

// Rebase implements Expr.
func (a Attr) Rebase(mapping map[int]int) (Expr, error) {
	ni, ok := mapping[a.Index]
	if !ok {
		return nil, fmt.Errorf("%w: attribute %%%d has no image under the rebase mapping", ErrEval, a.Index+1)
	}
	return Attr{Index: ni}, nil
}

// String implements Expr.
func (a Attr) String() string { return fmt.Sprintf("%%%d", a.Index+1) }

// Arith applies a binary arithmetic operator to two scalar sub-expressions.
type Arith struct {
	Op          value.BinaryOp
	Left, Right Expr
}

// NewArith returns an arithmetic expression.
func NewArith(op value.BinaryOp, left, right Expr) Arith {
	return Arith{Op: op, Left: left, Right: right}
}

// Eval implements Expr.
func (a Arith) Eval(t tuple.Tuple) (value.Value, error) {
	l, err := a.Left.Eval(t)
	if err != nil {
		return value.Null, err
	}
	r, err := a.Right.Eval(t)
	if err != nil {
		return value.Null, err
	}
	return a.Op.Apply(l, r)
}

// Type implements Expr.
func (a Arith) Type(s schema.Relation) (value.Kind, error) {
	l, err := a.Left.Type(s)
	if err != nil {
		return value.KindNull, err
	}
	r, err := a.Right.Type(s)
	if err != nil {
		return value.KindNull, err
	}
	return a.Op.ResultKind(l, r)
}

// Refs implements Expr.
func (a Arith) Refs(dst []int) []int { return a.Right.Refs(a.Left.Refs(dst)) }

// Rebase implements Expr.
func (a Arith) Rebase(mapping map[int]int) (Expr, error) {
	l, err := a.Left.Rebase(mapping)
	if err != nil {
		return nil, err
	}
	r, err := a.Right.Rebase(mapping)
	if err != nil {
		return nil, err
	}
	return Arith{Op: a.Op, Left: l, Right: r}, nil
}

// String implements Expr.
func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.Left.String(), a.Op, a.Right.String())
}

// Neg is arithmetic negation of a scalar sub-expression.
type Neg struct {
	Operand Expr
}

// Eval implements Expr.
func (n Neg) Eval(t tuple.Tuple) (value.Value, error) {
	v, err := n.Operand.Eval(t)
	if err != nil {
		return value.Null, err
	}
	return value.OpSub.Apply(value.NewInt(0), v)
}

// Type implements Expr.
func (n Neg) Type(s schema.Relation) (value.Kind, error) {
	k, err := n.Operand.Type(s)
	if err != nil {
		return value.KindNull, err
	}
	return value.OpSub.ResultKind(value.KindInt, k)
}

// Refs implements Expr.
func (n Neg) Refs(dst []int) []int { return n.Operand.Refs(dst) }

// Rebase implements Expr.
func (n Neg) Rebase(mapping map[int]int) (Expr, error) {
	o, err := n.Operand.Rebase(mapping)
	if err != nil {
		return nil, err
	}
	return Neg{Operand: o}, nil
}

// String implements Expr.
func (n Neg) String() string { return "(-" + n.Operand.String() + ")" }
