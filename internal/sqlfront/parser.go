package sqlfront

import (
	"strconv"
	"strings"

	"mra/internal/value"
)

// This file defines the SQL abstract syntax tree and the recursive-descent
// parser producing it.  Translation to the multi-set algebra lives in
// translate.go.

// sqlExpr is a scalar or boolean SQL expression.
type sqlExpr interface{ sqlExpr() }

// colRef is a possibly qualified column reference (brewery.name).
type colRef struct {
	qualifier string
	name      string
	pos       int
}

// litExpr is a constant literal.
type litExpr struct {
	val value.Value
}

// binExpr is an arithmetic expression left op right with op in + - * / %.
type binExpr struct {
	op          string
	left, right sqlExpr
}

// cmpExpr is a comparison left op right with op in = <> < <= > >=.
type cmpExpr struct {
	op          string
	left, right sqlExpr
	pos         int
}

// logicExpr is AND / OR of two boolean expressions.
type logicExpr struct {
	op          string // "and" | "or"
	left, right sqlExpr
}

// notExpr negates a boolean expression.
type notExpr struct {
	operand sqlExpr
}

// aggExpr is an aggregate call: AVG(alcperc), COUNT(*), ...
type aggExpr struct {
	fn   string
	arg  sqlExpr // nil for COUNT(*)
	star bool
	pos  int
}

func (colRef) sqlExpr()    {}
func (litExpr) sqlExpr()   {}
func (binExpr) sqlExpr()   {}
func (cmpExpr) sqlExpr()   {}
func (logicExpr) sqlExpr() {}
func (notExpr) sqlExpr()   {}
func (aggExpr) sqlExpr()   {}

// selectItem is one entry of a SELECT list.
type selectItem struct {
	expr  sqlExpr
	alias string
}

// tableRef is a FROM-clause table with an optional alias and an optional join
// condition (for explicit JOIN ... ON syntax; nil for comma-separated tables).
type tableRef struct {
	name  string
	alias string
	on    sqlExpr
	pos   int
}

// orderItem is one ORDER BY entry: a scalar expression (an output column
// name, or an arbitrary expression over the FROM columns) or a 1-based output
// position, with direction.
type orderItem struct {
	expr sqlExpr
	pos  int // 1-based output position when > 0; expr is used otherwise
	desc bool
	at   int // source position for error messages
}

// selectQuery is a parsed SELECT statement.
type selectQuery struct {
	distinct bool
	star     bool
	items    []selectItem
	from     []tableRef
	where    sqlExpr
	groupBy  []colRef
	having   sqlExpr
	orderBy  []orderItem
	limit    uint64
	hasLimit bool
	offset   uint64
}

// insertStmt is a parsed INSERT INTO ... VALUES statement.
type insertStmt struct {
	table string
	rows  [][]value.Value
	pos   int
}

// deleteStmt is a parsed DELETE FROM statement.
type deleteStmt struct {
	table string
	where sqlExpr
}

// analyzeStmt is a parsed ANALYZE [table] statement; an empty table name
// means every relation.
type analyzeStmt struct {
	table string
}

// updateStmt is a parsed UPDATE ... SET statement.
type updateStmt struct {
	table string
	sets  []setClause
	where sqlExpr
}

// setClause is one col = expr assignment of an UPDATE statement.
type setClause struct {
	column colRef
	expr   sqlExpr
}

// parser is a recursive-descent parser over SQL tokens.
type parser struct {
	toks []tok
	idx  int
}

func newParser(src string) (*parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) peek() tok { return p.toks[p.idx] }

func (p *parser) next() tok {
	t := p.toks[p.idx]
	if t.kind != tEOF {
		p.idx++
	}
	return t
}

func (p *parser) expectKeyword(word string) (tok, error) {
	t := p.next()
	if !t.isKeyword(word) {
		return t, errf(t.pos, "expected %s, found %s", strings.ToUpper(word), t)
	}
	return t, nil
}

func (p *parser) expectPunct(s string) (tok, error) {
	t := p.next()
	if t.kind != tPunct || t.text != s {
		return t, errf(t.pos, "expected %q, found %s", s, t)
	}
	return t, nil
}

func (p *parser) acceptKeyword(word string) bool {
	if p.peek().isKeyword(word) {
		p.next()
		return true
	}
	return false
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == tPunct && t.text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectEnd() error {
	// Allow a single trailing semicolon.
	p.acceptPunct(";")
	if t := p.peek(); t.kind != tEOF {
		return errf(t.pos, "unexpected %s after end of statement", t)
	}
	return nil
}

// parseStatement parses any supported SQL statement into its AST.
func (p *parser) parseStatement() (any, error) {
	t := p.peek()
	switch {
	case t.isKeyword("select"):
		return p.parseSelect()
	case t.isKeyword("insert"):
		return p.parseInsert()
	case t.isKeyword("delete"):
		return p.parseDelete()
	case t.isKeyword("update"):
		return p.parseUpdate()
	case t.isKeyword("analyze"):
		return p.parseAnalyze()
	default:
		return nil, errf(t.pos, "expected SELECT, INSERT, DELETE, UPDATE or ANALYZE, found %s", t)
	}
}

func (p *parser) parseAnalyze() (*analyzeStmt, error) {
	p.next() // ANALYZE
	an := &analyzeStmt{}
	if t := p.peek(); t.kind == tIdent {
		an.table = p.next().text
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return an, nil
}

func (p *parser) parseSelect() (*selectQuery, error) {
	if _, err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &selectQuery{}
	if p.acceptKeyword("distinct") {
		q.distinct = true
	}
	if p.acceptPunct("*") {
		q.star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			q.items = append(q.items, item)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if _, err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef(false)
		if err != nil {
			return nil, err
		}
		q.from = append(q.from, ref)
		// Explicit joins: [INNER] JOIN table ON cond.
		for p.peek().isKeyword("join") || p.peek().isKeyword("inner") {
			p.acceptKeyword("inner")
			if _, err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			joined, err := p.parseTableRef(true)
			if err != nil {
				return nil, err
			}
			q.from = append(q.from, joined)
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		cond, err := p.parseBool()
		if err != nil {
			return nil, err
		}
		q.where = cond
	}
	if p.acceptKeyword("group") {
		if _, err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			q.groupBy = append(q.groupBy, c)
			if !p.acceptPunct(",") {
				break
			}
		}
		if p.acceptKeyword("having") {
			cond, err := p.parseBool()
			if err != nil {
				return nil, err
			}
			q.having = cond
		}
	}
	if p.acceptKeyword("order") {
		if _, err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			item, err := p.parseOrderItem()
			if err != nil {
				return nil, err
			}
			q.orderBy = append(q.orderBy, item)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	hasOffset := false
	for {
		switch {
		case !q.hasLimit && p.acceptKeyword("limit"):
			n, err := p.parseCount("LIMIT")
			if err != nil {
				return nil, err
			}
			q.limit, q.hasLimit = n, true
			continue
		case !hasOffset && p.acceptKeyword("offset"):
			m, err := p.parseCount("OFFSET")
			if err != nil {
				return nil, err
			}
			q.offset, hasOffset = m, true
			continue
		}
		break
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return q, nil
}

// parseOrderItem parses one ORDER BY entry: `expr [ASC|DESC]` or a 1-based
// SELECT-list position `n [ASC|DESC]`.  An expression key may be an output
// column name or any scalar expression over the FROM columns; the translator
// decides which.
func (p *parser) parseOrderItem() (orderItem, error) {
	t := p.peek()
	item := orderItem{at: t.pos}
	if t.kind == tNumber {
		p.next()
		v := parseNumberValue(t.text)
		if v.Kind() != value.KindInt || v.Int() < 1 {
			return orderItem{}, errf(t.pos, "ORDER BY position must be a positive integer, found %q", t.text)
		}
		item.pos = int(v.Int())
	} else {
		e, err := p.parseScalar()
		if err != nil {
			return orderItem{}, err
		}
		item.expr = e
	}
	if p.acceptKeyword("desc") {
		item.desc = true
	} else {
		p.acceptKeyword("asc")
	}
	return item, nil
}

// parseCount parses the non-negative integer operand of LIMIT or OFFSET.
func (p *parser) parseCount(clause string) (uint64, error) {
	t := p.next()
	if t.kind != tNumber {
		return 0, errf(t.pos, "expected a number after %s, found %s", clause, t)
	}
	v := parseNumberValue(t.text)
	if v.Kind() != value.KindInt || v.Int() < 0 {
		return 0, errf(t.pos, "%s must be a non-negative integer, found %q", clause, t.text)
	}
	return uint64(v.Int()), nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	e, err := p.parseScalar()
	if err != nil {
		return selectItem{}, err
	}
	item := selectItem{expr: e}
	if p.acceptKeyword("as") {
		t := p.next()
		if t.kind != tIdent {
			return selectItem{}, errf(t.pos, "expected an alias after AS, found %s", t)
		}
		item.alias = t.text
	}
	return item, nil
}

func (p *parser) parseTableRef(requireOn bool) (tableRef, error) {
	t := p.next()
	if t.kind != tIdent {
		return tableRef{}, errf(t.pos, "expected a table name, found %s", t)
	}
	ref := tableRef{name: t.text, alias: t.text, pos: t.pos}
	// Optional alias: `beer b` or `beer AS b`.
	if p.acceptKeyword("as") {
		a := p.next()
		if a.kind != tIdent {
			return tableRef{}, errf(a.pos, "expected an alias after AS, found %s", a)
		}
		ref.alias = a.text
	} else if nxt := p.peek(); nxt.kind == tIdent &&
		!nxt.isKeyword("where") && !nxt.isKeyword("group") && !nxt.isKeyword("join") &&
		!nxt.isKeyword("inner") && !nxt.isKeyword("on") && !nxt.isKeyword("having") &&
		!nxt.isKeyword("order") && !nxt.isKeyword("limit") && !nxt.isKeyword("offset") {
		ref.alias = p.next().text
	}
	if requireOn {
		if _, err := p.expectKeyword("on"); err != nil {
			return tableRef{}, err
		}
		cond, err := p.parseBool()
		if err != nil {
			return tableRef{}, err
		}
		ref.on = cond
	}
	return ref, nil
}

func (p *parser) parseColRef() (colRef, error) {
	t := p.next()
	if t.kind != tIdent {
		return colRef{}, errf(t.pos, "expected a column name, found %s", t)
	}
	ref := colRef{name: t.text, pos: t.pos}
	if p.acceptPunct(".") {
		n := p.next()
		if n.kind != tIdent {
			return colRef{}, errf(n.pos, "expected a column name after %q., found %s", t.text, n)
		}
		ref.qualifier = t.text
		ref.name = n.text
	}
	return ref, nil
}

// parseBool parses OR-separated conjunctions.
func (p *parser) parseBool() (sqlExpr, error) {
	left, err := p.parseBoolAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseBoolAnd()
		if err != nil {
			return nil, err
		}
		left = logicExpr{op: "or", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseBoolAnd() (sqlExpr, error) {
	left, err := p.parseBoolNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parseBoolNot()
		if err != nil {
			return nil, err
		}
		left = logicExpr{op: "and", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseBoolNot() (sqlExpr, error) {
	if p.acceptKeyword("not") {
		inner, err := p.parseBoolNot()
		if err != nil {
			return nil, err
		}
		return notExpr{operand: inner}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (sqlExpr, error) {
	// Parenthesised boolean expression.
	if p.peek().kind == tPunct && p.peek().text == "(" {
		save := p.idx
		p.next()
		inner, err := p.parseBool()
		if err == nil {
			if _, isBool := inner.(logicExpr); !isBool {
				if _, isCmp := inner.(cmpExpr); !isCmp {
					if _, isNot := inner.(notExpr); !isNot {
						err = errf(p.peek().pos, "not a boolean expression")
					}
				}
			}
		}
		if err == nil && p.acceptPunct(")") {
			return inner, nil
		}
		p.idx = save
	}
	left, err := p.parseScalar()
	if err != nil {
		return nil, err
	}
	// A standalone boolean literal (WHERE TRUE / WHERE FALSE) is a condition
	// by itself.
	if lit, ok := left.(litExpr); ok && lit.val.Kind() == value.KindBool && p.peek().kind != tOp {
		return lit, nil
	}
	t := p.next()
	if t.kind != tOp {
		return nil, errf(t.pos, "expected a comparison operator, found %s", t)
	}
	switch t.text {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
	default:
		return nil, errf(t.pos, "expected a comparison operator, found %q", t.text)
	}
	right, err := p.parseScalar()
	if err != nil {
		return nil, err
	}
	return cmpExpr{op: t.text, left: left, right: right, pos: t.pos}, nil
}

// parseScalar parses an additive arithmetic expression.
func (p *parser) parseScalar() (sqlExpr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tOp && (t.text == "+" || t.text == "-") {
			p.next()
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = binExpr{op: t.text, left: left, right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseTerm() (sqlExpr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		isMul := (t.kind == tPunct && t.text == "*") || (t.kind == tOp && (t.text == "/" || t.text == "%"))
		if isMul {
			p.next()
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = binExpr{op: t.text, left: left, right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseFactor() (sqlExpr, error) {
	t := p.peek()
	switch {
	case t.kind == tNumber:
		p.next()
		return litExpr{val: parseNumberValue(t.text)}, nil
	case t.kind == tString:
		p.next()
		return litExpr{val: value.NewString(t.text)}, nil
	case t.kind == tOp && t.text == "-":
		p.next()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return binExpr{op: "-", left: litExpr{val: value.NewInt(0)}, right: inner}, nil
	case t.kind == tPunct && t.text == "(":
		p.next()
		inner, err := p.parseScalar()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tIdent:
		// TRUE/FALSE/NULL literals.
		if t.isKeyword("true") {
			p.next()
			return litExpr{val: value.NewBool(true)}, nil
		}
		if t.isKeyword("false") {
			p.next()
			return litExpr{val: value.NewBool(false)}, nil
		}
		if t.isKeyword("null") {
			p.next()
			return litExpr{val: value.Null}, nil
		}
		// Aggregate call?
		if isAggregateName(t.text) && p.toks[p.idx+1].kind == tPunct && p.toks[p.idx+1].text == "(" {
			p.next()
			p.next() // '('
			agg := aggExpr{fn: strings.ToUpper(t.text), pos: t.pos}
			if p.acceptPunct("*") {
				agg.star = true
			} else {
				arg, err := p.parseScalar()
				if err != nil {
					return nil, err
				}
				agg.arg = arg
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return agg, nil
		}
		return p.parseColRef()
	default:
		return nil, errf(t.pos, "expected a value, column or expression, found %s", t)
	}
}

func isAggregateName(s string) bool {
	switch strings.ToUpper(s) {
	case "COUNT", "CNT", "SUM", "AVG", "MIN", "MAX":
		return true
	default:
		return false
	}
}

func parseNumberValue(text string) value.Value {
	if strings.Contains(text, ".") {
		f, _ := strconv.ParseFloat(text, 64)
		return value.NewFloat(f)
	}
	i, _ := strconv.ParseInt(text, 10, 64)
	return value.NewInt(i)
}

func (p *parser) parseInsert() (*insertStmt, error) {
	start := p.next() // INSERT
	if _, err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tIdent {
		return nil, errf(t.pos, "expected a table name, found %s", t)
	}
	if _, err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	ins := &insertStmt{table: t.text, pos: start.pos}
	for {
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []value.Value
		for {
			v, err := p.parseLiteralValue()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.acceptPunct(",") {
				break
			}
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		ins.rows = append(ins.rows, row)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return ins, nil
}

func (p *parser) parseLiteralValue() (value.Value, error) {
	t := p.next()
	switch {
	case t.kind == tNumber:
		return parseNumberValue(t.text), nil
	case t.kind == tString:
		return value.NewString(t.text), nil
	case t.isKeyword("true"):
		return value.NewBool(true), nil
	case t.isKeyword("false"):
		return value.NewBool(false), nil
	case t.isKeyword("null"):
		return value.Null, nil
	case t.kind == tOp && t.text == "-":
		n := p.next()
		if n.kind != tNumber {
			return value.Null, errf(n.pos, "expected a number after '-', found %s", n)
		}
		v := parseNumberValue(n.text)
		if v.Kind() == value.KindInt {
			return value.NewInt(-v.Int()), nil
		}
		return value.NewFloat(-v.Float()), nil
	default:
		return value.Null, errf(t.pos, "expected a literal value, found %s", t)
	}
}

func (p *parser) parseDelete() (*deleteStmt, error) {
	p.next() // DELETE
	if _, err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tIdent {
		return nil, errf(t.pos, "expected a table name, found %s", t)
	}
	del := &deleteStmt{table: t.text}
	if p.acceptKeyword("where") {
		cond, err := p.parseBool()
		if err != nil {
			return nil, err
		}
		del.where = cond
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return del, nil
}

func (p *parser) parseUpdate() (*updateStmt, error) {
	p.next() // UPDATE
	t := p.next()
	if t.kind != tIdent {
		return nil, errf(t.pos, "expected a table name, found %s", t)
	}
	if _, err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	up := &updateStmt{table: t.text}
	for {
		col, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		eq := p.next()
		if eq.kind != tOp || eq.text != "=" {
			return nil, errf(eq.pos, "expected '=', found %s", eq)
		}
		expr, err := p.parseScalar()
		if err != nil {
			return nil, err
		}
		up.sets = append(up.sets, setClause{column: col, expr: expr})
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		cond, err := p.parseBool()
		if err != nil {
			return nil, err
		}
		up.where = cond
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return up, nil
}
