package sqlfront

import (
	"fmt"
	"strings"

	"mra/internal/algebra"
	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/stmt"
	"mra/internal/value"
)

// OrderKey is one resolved ORDER BY key: a 0-based position in the query's
// output schema and a direction.
type OrderKey struct {
	// Col is the 0-based output column.
	Col int
	// Desc orders descending when set.
	Desc bool
}

// Modifiers are the presentation-level ORDER BY / LIMIT / OFFSET clauses of a
// SELECT.  The multi-set algebra is unordered, so they have no expression
// counterpart; they are applied to the materialised result by the facade.
type Modifiers struct {
	// Order lists the sort keys, outermost first.
	Order []OrderKey
	// Offset skips the first Offset rows of the (ordered) result.
	Offset uint64
	// Limit caps the number of returned rows when HasLimit is set.
	Limit    uint64
	HasLimit bool
	// Hidden is the number of trailing hidden sort columns the translator
	// appended to the query's projection so ORDER BY could reference
	// expressions that are not output columns.  The facade sorts on them and
	// strips them before the result is presented.
	Hidden int
}

// Active reports whether the modifiers change the result presentation.
func (m Modifiers) Active() bool {
	return len(m.Order) > 0 || m.HasLimit || m.Offset > 0
}

// Query is a compiled SELECT: the algebra expression plus its presentation
// modifiers.
type Query struct {
	// Expr is the translated multi-set algebra expression.
	Expr algebra.Expr
	// Mods are the ORDER BY / LIMIT / OFFSET clauses.
	Mods Modifiers
}

// CompileQuery parses a SELECT statement and translates it into a multi-set
// algebra expression (plus presentation modifiers) over the given catalog.
func CompileQuery(sql string, cat algebra.Catalog) (Query, error) {
	p, err := newParser(sql)
	if err != nil {
		return Query{}, err
	}
	q, err := p.parseSelect()
	if err != nil {
		return Query{}, err
	}
	return translateQuery(q, cat)
}

// CompileStatement parses any supported SQL statement.  Queries are wrapped in
// a query statement (?E); INSERT, DELETE and UPDATE become the corresponding
// extended relational algebra statements of Definition 4.1.  A SELECT with
// ORDER BY or LIMIT is rejected here: statement outputs are bare multi-sets,
// so the presentation modifiers would be lost — use CompileQuery or
// CompileScript, whose callers apply them to the materialised results.
func CompileStatement(sql string, cat algebra.Catalog) (stmt.Statement, error) {
	s, mods, err := compileStatement(sql, cat)
	if err != nil {
		return nil, err
	}
	if mods.Active() {
		return nil, errf(0, "ORDER BY/LIMIT are only supported on queries whose results are returned to the caller")
	}
	return s, nil
}

// compileStatement compiles one statement, carrying any SELECT presentation
// modifiers alongside.
func compileStatement(sql string, cat algebra.Catalog) (stmt.Statement, Modifiers, error) {
	p, err := newParser(sql)
	if err != nil {
		return nil, Modifiers{}, err
	}
	node, err := p.parseStatement()
	if err != nil {
		return nil, Modifiers{}, err
	}
	switch n := node.(type) {
	case *selectQuery:
		q, err := translateQuery(n, cat)
		if err != nil {
			return nil, Modifiers{}, err
		}
		return stmt.Query{Source: q.Expr}, q.Mods, nil
	case *insertStmt:
		s, err := translateInsert(n, cat)
		return s, Modifiers{}, err
	case *deleteStmt:
		s, err := translateDelete(n, cat)
		return s, Modifiers{}, err
	case *updateStmt:
		s, err := translateUpdate(n, cat)
		return s, Modifiers{}, err
	case *analyzeStmt:
		if n.table != "" {
			if _, ok := cat.RelationSchema(n.table); !ok {
				return nil, Modifiers{}, errf(0, "unknown table %q", n.table)
			}
		}
		return stmt.Analyze{Target: n.table}, Modifiers{}, nil
	default:
		return nil, Modifiers{}, errf(0, "unsupported statement %T", node)
	}
}

// CompileScript compiles a semicolon-separated sequence of SQL statements into
// one extended relational algebra program.  The second return value holds, for
// each query statement of the program in execution order, its presentation
// modifiers (the zero value when none), to be applied to the corresponding
// output.
func CompileScript(sql string, cat algebra.Catalog) (stmt.Program, []Modifiers, error) {
	var prog stmt.Program
	var mods []Modifiers
	for _, piece := range splitStatements(sql) {
		s, m, err := compileStatement(piece, cat)
		if err != nil {
			return nil, nil, fmt.Errorf("in %q: %w", strings.TrimSpace(piece), err)
		}
		prog = append(prog, s)
		if _, isQuery := s.(stmt.Query); isQuery {
			mods = append(mods, m)
		}
	}
	return prog, mods, nil
}

// splitStatements splits a script on semicolons that are outside string
// literals, dropping empty pieces.
func splitStatements(sql string) []string {
	var out []string
	var b strings.Builder
	inString := false
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		if c == '\'' {
			inString = !inString
		}
		if c == ';' && !inString {
			if strings.TrimSpace(b.String()) != "" {
				out = append(out, b.String())
			}
			b.Reset()
			continue
		}
		b.WriteByte(c)
	}
	if strings.TrimSpace(b.String()) != "" {
		out = append(out, b.String())
	}
	return out
}

// ---------------------------------------------------------------------------
// Name resolution environment
// ---------------------------------------------------------------------------

// binding is one FROM-clause table: its alias, schema and attribute offset in
// the concatenated schema.
type binding struct {
	alias  string
	rel    schema.Relation
	offset int
}

// env is the name-resolution environment of a query.
type env struct {
	bindings []binding
	arity    int
}

// resolve maps a column reference to its 0-based position in the concatenated
// schema.
func (e *env) resolve(c colRef) (int, error) {
	matches := 0
	pos := -1
	for _, b := range e.bindings {
		if c.qualifier != "" && !strings.EqualFold(c.qualifier, b.alias) {
			continue
		}
		if i := b.rel.IndexOf(c.name); i >= 0 {
			matches++
			pos = b.offset + i
		}
	}
	switch matches {
	case 0:
		return 0, errf(c.pos, "unknown column %q", c.display())
	case 1:
		return pos, nil
	default:
		return 0, errf(c.pos, "ambiguous column %q", c.display())
	}
}

// schemaOf returns the concatenated schema of all bindings.
func (e *env) schemaOf() schema.Relation {
	out := schema.Anonymous()
	for _, b := range e.bindings {
		out = out.Concat(b.rel)
	}
	return out
}

func (c colRef) display() string {
	if c.qualifier != "" {
		return c.qualifier + "." + c.name
	}
	return c.name
}

// buildFrom resolves the FROM clause into an environment and the algebra
// expression producing the concatenated relation (products for comma joins,
// condition joins for explicit JOIN ... ON).
func buildFrom(refs []tableRef, cat algebra.Catalog) (*env, algebra.Expr, error) {
	if len(refs) == 0 {
		return nil, nil, errf(0, "FROM clause is empty")
	}
	e := &env{}
	var expr algebra.Expr
	for _, ref := range refs {
		rel, ok := cat.RelationSchema(ref.name)
		if !ok {
			return nil, nil, errf(ref.pos, "unknown table %q", ref.name)
		}
		// Alias resolution uses the alias name in place of the relation name.
		aliased := rel.Rename(ref.alias)
		e.bindings = append(e.bindings, binding{alias: ref.alias, rel: aliased, offset: e.arity})
		e.arity += rel.Arity()
		next := algebra.Expr(algebra.NewRel(ref.name))
		if expr == nil {
			expr = next
			if ref.on != nil {
				return nil, nil, errf(ref.pos, "the first table of a FROM clause cannot carry an ON condition")
			}
			continue
		}
		if ref.on != nil {
			cond, err := translateBool(ref.on, e)
			if err != nil {
				return nil, nil, err
			}
			expr = algebra.NewJoin(cond, expr, next)
		} else {
			expr = algebra.NewProduct(expr, next)
		}
	}
	return e, expr, nil
}

// ---------------------------------------------------------------------------
// Expression translation
// ---------------------------------------------------------------------------

// translateScalar converts a SQL scalar expression (no aggregates) into a
// scalar.Expr over the environment's concatenated schema.
func translateScalar(e sqlExpr, env *env) (scalar.Expr, error) {
	switch n := e.(type) {
	case colRef:
		pos, err := env.resolve(n)
		if err != nil {
			return nil, err
		}
		return scalar.NewAttr(pos), nil
	case litExpr:
		return scalar.NewConst(n.val), nil
	case binExpr:
		l, err := translateScalar(n.left, env)
		if err != nil {
			return nil, err
		}
		r, err := translateScalar(n.right, env)
		if err != nil {
			return nil, err
		}
		op, err := value.ParseBinaryOp(n.op)
		if err != nil {
			return nil, err
		}
		return scalar.NewArith(op, l, r), nil
	case aggExpr:
		return nil, errf(n.pos, "aggregate %s is only allowed in the SELECT list of a grouped query", n.fn)
	case cmpExpr, logicExpr, notExpr:
		return nil, errf(0, "boolean expression used where a value is required")
	default:
		return nil, errf(0, "unsupported scalar expression %T", e)
	}
}

// translateBool converts a SQL boolean expression into a predicate over the
// environment's concatenated schema.
func translateBool(e sqlExpr, env *env) (scalar.Predicate, error) {
	switch n := e.(type) {
	case cmpExpr:
		l, err := translateScalar(n.left, env)
		if err != nil {
			return nil, err
		}
		r, err := translateScalar(n.right, env)
		if err != nil {
			return nil, err
		}
		op, err := value.ParseCompareOp(n.op)
		if err != nil {
			return nil, errf(n.pos, "%v", err)
		}
		return scalar.NewCompare(op, l, r), nil
	case logicExpr:
		l, err := translateBool(n.left, env)
		if err != nil {
			return nil, err
		}
		r, err := translateBool(n.right, env)
		if err != nil {
			return nil, err
		}
		if n.op == "and" {
			return scalar.And{Left: l, Right: r}, nil
		}
		return scalar.Or{Left: l, Right: r}, nil
	case notExpr:
		inner, err := translateBool(n.operand, env)
		if err != nil {
			return nil, err
		}
		return scalar.Not{Operand: inner}, nil
	case litExpr:
		if n.val.Kind() == value.KindBool {
			if n.val.Bool() {
				return scalar.True{}, nil
			}
			return scalar.False{}, nil
		}
		return nil, errf(0, "non-boolean literal used as a condition")
	default:
		return nil, errf(0, "unsupported condition %T", e)
	}
}

// ---------------------------------------------------------------------------
// SELECT translation
// ---------------------------------------------------------------------------

// translateQuery translates the SELECT body and resolves its ORDER BY /
// LIMIT / OFFSET clauses.  Keys that name an output column (or a 1-based
// position) sort the result as-is; any other key expression is computed as a
// hidden trailing projection column — the facade sorts on it through the
// physical Sort operator and strips it before presentation.  On a plain
// SELECT a hidden key may be any scalar expression over the FROM schema; on a
// grouped query it must be an aggregate call or a grouping column, carried as
// a hidden trailing aggregate (or grouping) column of the Γ translation.
// DISTINCT queries still require output-column keys — extra sort columns
// would change what DISTINCT deduplicates — but an ORDER BY aggregate that
// repeats a SELECT-list aggregate resolves to that output column and needs no
// hidden column at all.
func translateQuery(q *selectQuery, cat algebra.Catalog) (Query, error) {
	expr, err := translateSelect(q, cat, nil)
	if err != nil {
		return Query{}, err
	}
	out := Query{Expr: expr, Mods: Modifiers{Offset: q.offset, Limit: q.limit, HasLimit: q.hasLimit}}
	if len(q.orderBy) == 0 {
		return out, nil
	}
	outSchema, err := expr.Schema(cat)
	if err != nil {
		return Query{}, err
	}
	grouped := len(q.groupBy) > 0 || hasAggregates(q)
	var hidden []sqlExpr
	for _, item := range q.orderBy {
		col := item.pos - 1
		switch {
		case item.pos > 0:
			if item.pos > outSchema.Arity() {
				return Query{}, errf(item.at, "ORDER BY position %d out of range for %d output columns", item.pos, outSchema.Arity())
			}
		case isOutputColumn(item.expr, outSchema):
			col = outSchema.IndexOf(item.expr.(colRef).name)
		default:
			// A key repeating a SELECT-list aggregate sorts on that output
			// column directly.
			if pos := matchSelectAgg(q, item.expr); grouped && pos >= 0 {
				col = pos
				break
			}
			// The key is not an output column: compute it as a hidden trailing
			// column when the query shape allows.
			if q.distinct {
				return Query{}, errf(item.at, "ORDER BY with DISTINCT must use an output column or position")
			}
			col = outSchema.Arity() + len(hidden)
			hidden = append(hidden, item.expr)
		}
		out.Mods.Order = append(out.Mods.Order, OrderKey{Col: col, Desc: item.desc})
	}
	if len(hidden) > 0 {
		// Re-translate with the hidden key columns appended to the projection.
		expr, err = translateSelect(q, cat, hidden)
		if err != nil {
			return Query{}, err
		}
		out.Expr = expr
		out.Mods.Hidden = len(hidden)
	}
	return out, nil
}

// matchSelectAgg returns the output position of a SELECT-list aggregate the
// expression repeats (COUNT(x) matches any COUNT — the attribute parameter is
// a dummy), or -1.  Grouped output columns correspond to SELECT items
// one-to-one, so the item index is the output position.
func matchSelectAgg(q *selectQuery, e sqlExpr) int {
	key, ok := e.(aggExpr)
	if !ok {
		return -1
	}
	kfn, err := algebra.ParseAggregate(key.fn)
	if err != nil {
		return -1
	}
	for i, item := range q.items {
		have, ok := item.expr.(aggExpr)
		if !ok {
			continue
		}
		hfn, err := algebra.ParseAggregate(have.fn)
		if err != nil || hfn != kfn {
			continue
		}
		if kfn == algebra.AggCount {
			return i
		}
		if have.star != key.star {
			continue
		}
		a, aok := have.arg.(colRef)
		b, bok := key.arg.(colRef)
		if aok && bok && strings.EqualFold(a.qualifier, b.qualifier) && strings.EqualFold(a.name, b.name) {
			return i
		}
	}
	return -1
}

// isOutputColumn reports whether an ORDER BY key expression is a bare
// unqualified column name of the output schema (output columns are anonymous
// after projection, so qualified references never match).
func isOutputColumn(e sqlExpr, out schema.Relation) bool {
	c, ok := e.(colRef)
	return ok && c.qualifier == "" && out.IndexOf(c.name) >= 0
}

// hasAggregates reports whether the SELECT list contains an aggregate call.
func hasAggregates(q *selectQuery) bool {
	for _, item := range q.items {
		if _, ok := item.expr.(aggExpr); ok {
			return true
		}
	}
	return false
}

// translateSelect translates the SELECT body.  hidden, when non-empty, lists
// ORDER BY key expressions to append as unnamed trailing projection columns:
// arbitrary scalar expressions over the FROM schema on a plain SELECT,
// aggregate calls or grouping columns on a grouped one.  The caller
// guarantees the query is not DISTINCT when hidden columns are requested.
func translateSelect(q *selectQuery, cat algebra.Catalog, hidden []sqlExpr) (algebra.Expr, error) {
	env, expr, err := buildFrom(q.from, cat)
	if err != nil {
		return nil, err
	}
	if q.where != nil {
		cond, err := translateBool(q.where, env)
		if err != nil {
			return nil, err
		}
		expr = algebra.NewSelect(cond, expr)
	}

	switch {
	case len(q.groupBy) > 0 || hasAggregates(q):
		expr, err = translateGrouped(q, env, expr, hidden)
		if err != nil {
			return nil, err
		}
	case q.star && len(hidden) == 0:
		// SELECT *: the concatenated relation as-is.
	default:
		items := make([]scalar.Expr, 0, len(q.items)+len(hidden))
		names := make([]string, 0, len(q.items)+len(hidden))
		if q.star {
			// SELECT * with hidden sort keys: an identity projection of every
			// FROM column, so the keys can ride along as extra columns.
			s := env.schemaOf()
			for i := 0; i < s.Arity(); i++ {
				items = append(items, scalar.NewAttr(i))
				names = append(names, s.Attribute(i).Name)
			}
		} else {
			for _, item := range q.items {
				se, err := translateScalar(item.expr, env)
				if err != nil {
					return nil, err
				}
				items = append(items, se)
				names = append(names, outputName(item, env))
			}
		}
		for _, h := range hidden {
			se, err := translateScalar(h, env)
			if err != nil {
				return nil, err
			}
			items = append(items, se)
			names = append(names, "")
		}
		expr = algebra.NewExtProject(items, names, expr)
	}

	if q.distinct {
		expr = algebra.NewUnique(expr)
	}
	return expr, nil
}

// outputName picks the output attribute name of a select item: the alias if
// given, the column name for plain references, empty otherwise.
func outputName(item selectItem, env *env) string {
	if item.alias != "" {
		return item.alias
	}
	if c, ok := item.expr.(colRef); ok {
		if pos, err := env.resolve(c); err == nil {
			return env.schemaOf().Attribute(pos).Name
		}
	}
	return ""
}

// translateGrouped handles GROUP BY queries and global aggregates.  The SELECT
// list may mix grouping columns and any number of aggregate calls, in any
// order — the multi-aggregate groupby operator computes them all in one pass.
// HAVING aggregates and hidden ORDER BY aggregate keys that do not repeat a
// SELECT aggregate ride as extra trailing aggregate columns: HAVING-only ones
// are stripped by the final projection, ORDER BY ones stay trailing so the
// facade can sort on them and strip them at presentation.  A GROUP BY whose
// query uses no aggregate at all translates to a distinct projection
// δ(π_α(E)) — one output row per group, as SQL prescribes.
func translateGrouped(q *selectQuery, env *env, input algebra.Expr, hidden []sqlExpr) (algebra.Expr, error) {
	if q.star {
		return nil, errf(0, "SELECT * cannot be combined with GROUP BY or aggregates")
	}
	// Resolve grouping columns.
	groupCols := make([]int, 0, len(q.groupBy))
	for _, c := range q.groupBy {
		pos, err := env.resolve(c)
		if err != nil {
			return nil, err
		}
		groupCols = append(groupCols, pos)
	}

	var aggs []algebra.AggSpec
	// resolveAggSpec resolves one aggregate call to its (function, attribute)
	// pair over the FROM schema.
	resolveAggSpec := func(n aggExpr) (algebra.AggSpec, error) {
		fn, err := algebra.ParseAggregate(n.fn)
		if err != nil {
			return algebra.AggSpec{}, errf(n.pos, "%v", err)
		}
		col := 0
		if !n.star {
			c, ok := n.arg.(colRef)
			if !ok {
				return algebra.AggSpec{}, errf(n.pos, "aggregate arguments must be plain columns")
			}
			col, err = env.resolve(c)
			if err != nil {
				return algebra.AggSpec{}, err
			}
		} else if fn != algebra.AggCount {
			return algebra.AggSpec{}, errf(n.pos, "only COUNT may take * as its argument")
		}
		return algebra.AggSpec{Fn: fn, Col: col}, nil
	}
	// findAgg returns the index of an equivalent already-collected aggregate
	// (COUNT's attribute is a dummy, so any COUNT matches any other), or -1.
	findAgg := func(sp algebra.AggSpec) int {
		for i, have := range aggs {
			if have.Fn != sp.Fn {
				continue
			}
			if sp.Fn == algebra.AggCount || have.Col == sp.Col {
				return i
			}
		}
		return -1
	}
	groupIndex := func(pos int) int {
		for gi, g := range groupCols {
			if g == pos {
				return gi
			}
		}
		return -1
	}

	// Classify the SELECT list.  outRef records, per output column, whether it
	// is a grouping column (group ≥ 0) or an aggregate (agg ≥ 0).
	type outRef struct{ group, agg int }
	outs := make([]outRef, 0, len(q.items))
	used := make(map[string]bool, len(groupCols)+len(q.items))
	fromSchema := env.schemaOf()
	for _, g := range groupCols {
		if n := fromSchema.Attribute(g).Name; n != "" {
			used[strings.ToLower(n)] = true
		}
	}
	for _, item := range q.items {
		switch n := item.expr.(type) {
		case aggExpr:
			sp, err := resolveAggSpec(n)
			if err != nil {
				return nil, err
			}
			name := item.alias
			if name == "" {
				// Defaulted names that would collide with an earlier output
				// column stay anonymous instead of failing schema validation.
				name = strings.ToLower(sp.Fn.String())
				if used[name] {
					name = ""
				}
			}
			if name != "" {
				used[strings.ToLower(name)] = true
			}
			sp.Name = name
			aggs = append(aggs, sp)
			outs = append(outs, outRef{group: -1, agg: len(aggs) - 1})
		case colRef:
			pos, err := env.resolve(n)
			if err != nil {
				return nil, err
			}
			gi := groupIndex(pos)
			if gi == -1 {
				return nil, errf(n.pos, "column %q must appear in the GROUP BY clause", n.display())
			}
			outs = append(outs, outRef{group: gi, agg: -1})
		default:
			return nil, errf(0, "grouped queries may select grouping columns and aggregate calls only")
		}
	}

	// HAVING resolves against the groupby output schema; aggregates it uses
	// that are not in the SELECT list append hidden specs.
	var havingCond scalar.Predicate
	if q.having != nil {
		henv := &havingEnv{groupCols: groupCols, src: env, aggs: &aggs, resolve: resolveAggSpec, find: findAgg}
		cond, err := henv.translateBool(q.having)
		if err != nil {
			return nil, err
		}
		havingCond = cond
	}

	// Hidden ORDER BY keys: aggregate calls (appended as trailing specs when
	// they do not repeat a SELECT aggregate) or grouping columns.
	hiddenRefs := make([]outRef, 0, len(hidden))
	for _, h := range hidden {
		switch n := h.(type) {
		case aggExpr:
			sp, err := resolveAggSpec(n)
			if err != nil {
				return nil, err
			}
			ai := findAgg(sp)
			if ai == -1 {
				aggs = append(aggs, sp) // anonymous hidden column
				ai = len(aggs) - 1
			}
			hiddenRefs = append(hiddenRefs, outRef{group: -1, agg: ai})
		case colRef:
			pos, err := env.resolve(n)
			if err != nil {
				return nil, err
			}
			gi := groupIndex(pos)
			if gi == -1 {
				return nil, errf(n.pos, "ORDER BY on a grouped query must use an output column, a grouping column, or an aggregate")
			}
			hiddenRefs = append(hiddenRefs, outRef{group: gi, agg: -1})
		default:
			return nil, errf(0, "ORDER BY on a grouped query must use an output column, a grouping column, or an aggregate")
		}
	}

	if len(aggs) == 0 {
		// GROUP BY with no aggregate anywhere: one output row per group is a
		// distinct projection.  Positions in δ(π_α(E)) coincide with the
		// havingEnv numbering (grouping columns first), so the HAVING
		// condition applies unchanged.
		var result algebra.Expr = algebra.NewUnique(algebra.NewProject(groupCols, input))
		if havingCond != nil {
			result = algebra.NewSelect(havingCond, result)
		}
		finalCols := make([]int, 0, len(outs)+len(hiddenRefs))
		for _, o := range append(outs, hiddenRefs...) {
			finalCols = append(finalCols, o.group)
		}
		if isIdentityCols(finalCols, len(groupCols)) {
			return result, nil
		}
		return algebra.NewProject(finalCols, result), nil
	}

	grouped := algebra.GroupBy{GroupCols: groupCols, Aggs: aggs, Input: input}
	var result algebra.Expr = grouped
	if havingCond != nil {
		result = algebra.NewSelect(havingCond, result)
	}

	// Project the groupby output (grouping columns first, aggregates after,
	// both in operator order) into SELECT order, with hidden ORDER BY columns
	// trailing; HAVING-only aggregate columns are dropped here.
	finalCols := make([]int, 0, len(outs)+len(hiddenRefs))
	for _, o := range append(outs, hiddenRefs...) {
		if o.agg >= 0 {
			finalCols = append(finalCols, len(groupCols)+o.agg)
		} else {
			finalCols = append(finalCols, o.group)
		}
	}
	if isIdentityCols(finalCols, len(groupCols)+len(aggs)) {
		return result, nil
	}
	return algebra.NewProject(finalCols, result), nil
}

// isIdentityCols reports whether cols is exactly 0..arity-1, i.e. a
// projection that would keep every column in place.
func isIdentityCols(cols []int, arity int) bool {
	if len(cols) != arity {
		return false
	}
	for i, c := range cols {
		if c != i {
			return false
		}
	}
	return true
}

// havingEnv resolves HAVING-clause references against the output schema of a
// group-by: grouping columns keep their names (numbered first, in GROUP BY
// order), aggregate columns are addressed by their alias, their defaulted
// name, or by repeating the aggregate call — which appends a hidden trailing
// aggregate when the call is not already computed.
type havingEnv struct {
	groupCols []int
	src       *env
	aggs      *[]algebra.AggSpec
	resolve   func(aggExpr) (algebra.AggSpec, error)
	find      func(algebra.AggSpec) int
}

func (h *havingEnv) resolveCol(c colRef) (int, error) {
	if c.qualifier == "" {
		for i, sp := range *h.aggs {
			if sp.Name != "" && strings.EqualFold(c.name, sp.Name) {
				return len(h.groupCols) + i, nil
			}
		}
	}
	pos, err := h.src.resolve(c)
	if err != nil {
		return 0, err
	}
	for gi, g := range h.groupCols {
		if g == pos {
			return gi, nil
		}
	}
	return 0, errf(c.pos, "HAVING column %q is neither a grouping column nor an aggregate", c.display())
}

// resolveAgg maps an aggregate call in HAVING to its groupby output column,
// appending a hidden trailing aggregate spec when the call is new.
func (h *havingEnv) resolveAgg(n aggExpr) (int, error) {
	sp, err := h.resolve(n)
	if err != nil {
		return 0, err
	}
	if i := h.find(sp); i >= 0 {
		return len(h.groupCols) + i, nil
	}
	*h.aggs = append(*h.aggs, sp) // anonymous hidden column
	return len(h.groupCols) + len(*h.aggs) - 1, nil
}

func (h *havingEnv) translateScalar(e sqlExpr) (scalar.Expr, error) {
	switch n := e.(type) {
	case colRef:
		pos, err := h.resolveCol(n)
		if err != nil {
			return nil, err
		}
		return scalar.NewAttr(pos), nil
	case litExpr:
		return scalar.NewConst(n.val), nil
	case binExpr:
		l, err := h.translateScalar(n.left)
		if err != nil {
			return nil, err
		}
		r, err := h.translateScalar(n.right)
		if err != nil {
			return nil, err
		}
		op, err := value.ParseBinaryOp(n.op)
		if err != nil {
			return nil, err
		}
		return scalar.NewArith(op, l, r), nil
	case aggExpr:
		pos, err := h.resolveAgg(n)
		if err != nil {
			return nil, err
		}
		return scalar.NewAttr(pos), nil
	default:
		return nil, errf(0, "unsupported HAVING expression %T", e)
	}
}

func (h *havingEnv) translateBool(e sqlExpr) (scalar.Predicate, error) {
	switch n := e.(type) {
	case cmpExpr:
		l, err := h.translateScalar(n.left)
		if err != nil {
			return nil, err
		}
		r, err := h.translateScalar(n.right)
		if err != nil {
			return nil, err
		}
		op, err := value.ParseCompareOp(n.op)
		if err != nil {
			return nil, errf(n.pos, "%v", err)
		}
		return scalar.NewCompare(op, l, r), nil
	case logicExpr:
		l, err := h.translateBool(n.left)
		if err != nil {
			return nil, err
		}
		r, err := h.translateBool(n.right)
		if err != nil {
			return nil, err
		}
		if n.op == "and" {
			return scalar.And{Left: l, Right: r}, nil
		}
		return scalar.Or{Left: l, Right: r}, nil
	case notExpr:
		inner, err := h.translateBool(n.operand)
		if err != nil {
			return nil, err
		}
		return scalar.Not{Operand: inner}, nil
	default:
		return nil, errf(0, "unsupported HAVING condition %T", e)
	}
}

// ---------------------------------------------------------------------------
// DML translation
// ---------------------------------------------------------------------------

func translateInsert(n *insertStmt, cat algebra.Catalog) (stmt.Statement, error) {
	rel, ok := cat.RelationSchema(n.table)
	if !ok {
		return nil, errf(n.pos, "unknown table %q", n.table)
	}
	for i, row := range n.rows {
		if len(row) != rel.Arity() {
			return nil, errf(n.pos, "row %d has %d values, table %q has %d columns",
				i+1, len(row), n.table, rel.Arity())
		}
	}
	lit := algebra.Literal{Rel: rel.Rename(""), Rows: n.rows}
	return stmt.Insert{Target: n.table, Source: lit}, nil
}

func translateDelete(n *deleteStmt, cat algebra.Catalog) (stmt.Statement, error) {
	rel, ok := cat.RelationSchema(n.table)
	if !ok {
		return nil, errf(0, "unknown table %q", n.table)
	}
	src := algebra.Expr(algebra.NewRel(n.table))
	if n.where != nil {
		e := &env{bindings: []binding{{alias: n.table, rel: rel, offset: 0}}, arity: rel.Arity()}
		cond, err := translateBool(n.where, e)
		if err != nil {
			return nil, err
		}
		src = algebra.NewSelect(cond, src)
	}
	return stmt.Delete{Target: n.table, Source: src}, nil
}

func translateUpdate(n *updateStmt, cat algebra.Catalog) (stmt.Statement, error) {
	rel, ok := cat.RelationSchema(n.table)
	if !ok {
		return nil, errf(0, "unknown table %q", n.table)
	}
	e := &env{bindings: []binding{{alias: n.table, rel: rel, offset: 0}}, arity: rel.Arity()}

	// Start with the identity item list (%1, ..., %n) and overwrite the SET
	// columns — update is a structure-preserving extended projection
	// (Definition 4.1).
	items := make([]scalar.Expr, rel.Arity())
	for i := range items {
		items[i] = scalar.NewAttr(i)
	}
	for _, set := range n.sets {
		pos, err := e.resolve(set.column)
		if err != nil {
			return nil, err
		}
		se, err := translateScalar(set.expr, e)
		if err != nil {
			return nil, err
		}
		items[pos] = se
	}

	sel := algebra.Expr(algebra.NewRel(n.table))
	if n.where != nil {
		cond, err := translateBool(n.where, e)
		if err != nil {
			return nil, err
		}
		sel = algebra.NewSelect(cond, sel)
	}
	return stmt.Update{Target: n.table, Selection: sel, Items: items}, nil
}
