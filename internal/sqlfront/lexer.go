// Package sqlfront implements a front-end for a subset of SQL on top of the
// multi-set extended relational algebra, demonstrating the paper's claim that
// the algebra "can be used as a formal background for other multi-set
// languages like SQL" (Section 1 and Example 3.2 of Grefen & de By,
// ICDE 1994).
//
// Supported statements:
//
//	SELECT [DISTINCT] <items> FROM <tables> [JOIN ... ON ...]
//	       [WHERE <cond>] [GROUP BY <cols> [HAVING <cond>]]
//	INSERT INTO <table> VALUES (...), (...)
//	DELETE FROM <table> [WHERE <cond>]
//	UPDATE <table> SET col = expr, ... [WHERE <cond>]
//
// Queries compile to algebra expressions; DML compiles to extended relational
// algebra statements (package stmt), exactly as the paper pairs its Example
// 3.2 and 4.1 with their SQL equivalents.
package sqlfront

import (
	"fmt"
	"strings"
	"unicode"
)

// Error reports a SQL lexing, parsing or translation error.
type Error struct {
	// Pos is the 1-based character offset of the error (0 when unknown).
	Pos int
	// Msg describes the problem.
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Pos > 0 {
		return fmt.Sprintf("sql: position %d: %s", e.Pos, e.Msg)
	}
	return "sql: " + e.Msg
}

func errf(pos int, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// tokKind classifies SQL tokens.
type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tPunct // ( ) , ; . *
	tOp    // = <> < <= > >= + - / %
)

// tok is one SQL token.
type tok struct {
	kind tokKind
	text string
	pos  int // 1-based character offset
}

func (t tok) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// isKeyword reports whether the token is the given keyword (case-insensitive).
func (t tok) isKeyword(word string) bool {
	return t.kind == tIdent && strings.EqualFold(t.text, word)
}

// lex tokenises a SQL string.
func lex(src string) ([]tok, error) {
	var toks []tok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			toks = append(toks, tok{kind: tIdent, text: src[start:i], pos: start + 1})
		case unicode.IsDigit(rune(c)):
			start := i
			seenDot := false
			for i < len(src) {
				if src[i] == '.' && !seenDot && i+1 < len(src) && unicode.IsDigit(rune(src[i+1])) {
					seenDot = true
					i++
					continue
				}
				if !unicode.IsDigit(rune(src[i])) {
					break
				}
				i++
			}
			toks = append(toks, tok{kind: tNumber, text: src[start:i], pos: start + 1})
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, errf(start+1, "unterminated string literal")
			}
			toks = append(toks, tok{kind: tString, text: b.String(), pos: start + 1})
		case strings.ContainsRune("(),;.*", rune(c)):
			toks = append(toks, tok{kind: tPunct, text: string(c), pos: i + 1})
			i++
		case strings.ContainsRune("=<>!+-/%", rune(c)):
			start := i
			text := string(c)
			i++
			if i < len(src) {
				two := text + string(src[i])
				switch two {
				case "<=", ">=", "<>", "!=":
					text = two
					i++
				}
			}
			if text == "!" {
				return nil, errf(start+1, "unexpected character '!'")
			}
			toks = append(toks, tok{kind: tOp, text: text, pos: start + 1})
		default:
			return nil, errf(i+1, "unexpected character %q", c)
		}
	}
	toks = append(toks, tok{kind: tEOF, pos: len(src) + 1})
	return toks, nil
}
