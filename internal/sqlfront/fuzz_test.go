package sqlfront

import (
	"testing"

	"mra/internal/algebra"
)

// FuzzParse drives the SQL front-end — lexer, parser, and translator — with
// arbitrary input over a fixed catalog: malformed SQL must come back as a
// compile error, never as a panic, because the -sql shell feeds user input
// straight into these functions.  The seed corpus is the golden statements of
// the SQL tests plus broken fragments near known tricky spots (quoting,
// nesting, dangling clauses).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT name FROM beer",
		"SELECT * FROM beer",
		"SELECT DISTINCT brewery FROM beer",
		"SELECT name, alcperc * 2 FROM beer WHERE alcperc >= 5.0",
		"SELECT b.name, br.city FROM beer b, brewery br WHERE b.brewery = br.name",
		"SELECT brewery, COUNT(*), MAX(alcperc) FROM beer GROUP BY brewery",
		"SELECT country, AVG(alcperc) FROM beer, brewery WHERE beer.brewery = brewery.name GROUP BY country",
		"SELECT name FROM beer ORDER BY alcperc DESC, name",
		"SELECT name FROM beer UNION SELECT name FROM brewery",
		"INSERT INTO beer VALUES ('radler', 'brolsch', 2.0)",
		"DELETE FROM beer WHERE brewery = 'guinness'",
		"UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'guineken'",
		"BEGIN; SELECT name FROM beer; COMMIT;",
		// Malformed fragments.
		"SELECT",
		"SELECT FROM beer",
		"SELECT name FROM",
		"SELECT name FROM beer WHERE",
		"SELECT 'unterminated FROM beer",
		"SELECT ((name) FROM beer",
		"INSERT INTO beer VALUES (",
		"GROUP BY",
		";;;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cat := testCatalog()
	f.Fuzz(func(t *testing.T, sql string) {
		// Errors are expected on malformed input; panics are the bug class
		// under test, and the harness converts them into failures.
		_, _ = CompileQuery(sql, cat)
		_, _ = CompileStatement(sql, cat)
		_, _, _ = CompileScript(sql, cat)
	})
}

// testCatalog is the beer/brewery schema of the running example, detached
// from any data — fuzzing only needs name resolution.
func testCatalog() algebra.Catalog {
	return beerSource().Catalog()
}
