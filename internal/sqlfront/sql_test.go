package sqlfront

import (
	"strings"
	"testing"

	"mra/internal/algebra"
	"mra/internal/eval"
	"mra/internal/multiset"
	"mra/internal/scalar"
	"mra/internal/schema"
	"mra/internal/stmt"
	"mra/internal/tuple"
	"mra/internal/value"
)

// beerSource builds the paper's running example with a known data set.
func beerSource() eval.MapSource {
	beer := multiset.New(schema.NewRelation("beer",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "brewery", Type: value.KindString},
		schema.Attribute{Name: "alcperc", Type: value.KindFloat},
	))
	add := func(r *multiset.Relation, vals ...value.Value) { r.Add(tuple.New(vals...), 1) }
	add(beer, value.NewString("pils"), value.NewString("guineken"), value.NewFloat(5.0))
	add(beer, value.NewString("pils"), value.NewString("brolsch"), value.NewFloat(5.2))
	add(beer, value.NewString("bock"), value.NewString("guineken"), value.NewFloat(6.5))
	add(beer, value.NewString("stout"), value.NewString("guinness"), value.NewFloat(4.2))

	brewery := multiset.New(schema.NewRelation("brewery",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "city", Type: value.KindString},
		schema.Attribute{Name: "country", Type: value.KindString},
	))
	add(brewery, value.NewString("guineken"), value.NewString("amsterdam"), value.NewString("netherlands"))
	add(brewery, value.NewString("brolsch"), value.NewString("enschede"), value.NewString("netherlands"))
	add(brewery, value.NewString("guinness"), value.NewString("dublin"), value.NewString("ireland"))
	return eval.MapSource{"beer": beer, "brewery": brewery}
}

// runSQL compiles and evaluates a SELECT statement against the beer source.
func runSQL(t *testing.T, sql string) *multiset.Relation {
	t.Helper()
	src := beerSource()
	q, err := CompileQuery(sql, src.Catalog())
	if err != nil {
		t.Fatalf("compile %q: %v", sql, err)
	}
	if err := algebra.Validate(q.Expr, src.Catalog()); err != nil {
		t.Fatalf("validate %q (%s): %v", sql, q.Expr, err)
	}
	r, err := (&eval.Engine{}).Eval(q.Expr, src)
	if err != nil {
		t.Fatalf("eval %q: %v", sql, err)
	}
	return r
}

func TestSelectBasics(t *testing.T) {
	cases := map[string]uint64{
		"SELECT * FROM beer":                                                                4,
		"SELECT name FROM beer":                                                             4,
		"SELECT DISTINCT name FROM beer":                                                    3,
		"SELECT name, alcperc FROM beer WHERE alcperc > 5":                                  2,
		"SELECT name FROM beer WHERE brewery = 'guineken'":                                  2,
		"SELECT name FROM beer WHERE alcperc > 5 AND alcperc < 6":                           1,
		"SELECT name FROM beer WHERE alcperc < 5 OR alcperc > 6":                            2,
		"SELECT name FROM beer WHERE NOT brewery = 'guineken'":                              2,
		"SELECT name FROM beer WHERE alcperc <> 5.0":                                        3,
		"SELECT name, alcperc * 2 AS double_alc FROM beer":                                  4,
		"SELECT * FROM beer, brewery":                                                       12,
		"SELECT * FROM beer, brewery WHERE beer.brewery = brewery.name":                     4,
		"SELECT * FROM beer JOIN brewery ON beer.brewery = brewery.name":                    4,
		"SELECT b1.name FROM beer b1, beer b2 WHERE b1.alcperc > b2.alcperc":                6,
		"SELECT name FROM beer WHERE alcperc >= 4.2 AND alcperc <= 5.2":                     3,
		"SELECT DISTINCT country FROM brewery":                                              2,
		"SELECT name FROM beer WHERE false":                                                 0,
		"SELECT name FROM beer WHERE (alcperc > 6 OR alcperc < 5) AND brewery = 'guineken'": 1,
	}
	for sql, want := range cases {
		r := runSQL(t, sql)
		if r.Cardinality() != want {
			t.Errorf("%s: cardinality = %d, want %d", sql, r.Cardinality(), want)
		}
	}
}

func TestSelectStarSchemaAndProjectionNames(t *testing.T) {
	r := runSQL(t, "SELECT name AS beer_name, alcperc FROM beer")
	if r.Schema().Attribute(0).Name != "beer_name" || r.Schema().Attribute(1).Name != "alcperc" {
		t.Errorf("output schema = %s", r.Schema())
	}
	all := runSQL(t, "SELECT * FROM beer JOIN brewery ON beer.brewery = brewery.name")
	if all.Schema().Arity() != 6 {
		t.Errorf("SELECT * over a join has arity %d", all.Schema().Arity())
	}
}

// TestExample31SQL runs the SQL equivalent of the paper's Example 3.1 and
// checks duplicates are preserved.
func TestExample31SQL(t *testing.T) {
	r := runSQL(t, `SELECT beer.name FROM beer, brewery
		WHERE beer.brewery = brewery.name AND brewery.country = 'netherlands'`)
	if r.Cardinality() != 3 {
		t.Fatalf("cardinality = %d, want 3", r.Cardinality())
	}
	if r.Multiplicity(tuple.New(value.NewString("pils"))) != 2 {
		t.Error("bag semantics must preserve the duplicate beer name")
	}
}

// TestExample32SQL runs the exact SQL statement printed in the paper's
// Example 3.2 and cross-checks it against the hand-built algebra expression.
func TestExample32SQL(t *testing.T) {
	src := beerSource()
	sql := `SELECT country, AVG(alcperc)
	        FROM beer, brewery
	        WHERE beer.brewery = brewery.name
	        GROUP BY country`
	q, err := CompileQuery(sql, src.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&eval.Engine{}).Eval(q.Expr, src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&eval.Engine{}).Eval(
		algebra.NewGroupBy([]int{5}, algebra.AggAvg, 2,
			algebra.NewJoin(scalar.Eq(1, 3), algebra.NewRel("beer"), algebra.NewRel("brewery"))), src)
	if err != nil {
		t.Fatal(err)
	}
	// The SQL result carries the aggregate column name "avg"; compare contents
	// positionally.
	if got.Cardinality() != want.Cardinality() || got.Cardinality() != 2 {
		t.Fatalf("expected 2 groups, got %d vs %d", got.Cardinality(), want.Cardinality())
	}
	if !got.Equal(want) {
		t.Errorf("SQL and algebra results differ:\n%s\n%s", got, want)
	}
}

func TestGroupByVariantsSQL(t *testing.T) {
	counts := runSQL(t, "SELECT brewery, COUNT(*) AS n FROM beer GROUP BY brewery")
	if counts.Cardinality() != 3 {
		t.Errorf("groups = %d", counts.Cardinality())
	}
	if counts.Multiplicity(tuple.New(value.NewString("guineken"), value.NewInt(2))) != 1 {
		t.Errorf("guineken count wrong: %s", counts)
	}
	// Aggregate first in the SELECT list forces a reordering projection.
	flipped := runSQL(t, "SELECT COUNT(*) AS n, brewery FROM beer GROUP BY brewery")
	if flipped.Multiplicity(tuple.New(value.NewInt(2), value.NewString("guineken"))) != 1 {
		t.Errorf("reordered output wrong: %s", flipped)
	}
	// Global aggregate without GROUP BY.
	total := runSQL(t, "SELECT COUNT(*) FROM beer")
	if !total.Contains(tuple.New(value.NewInt(4))) {
		t.Errorf("global count = %s", total)
	}
	maxAlc := runSQL(t, "SELECT MAX(alcperc) FROM beer WHERE brewery = 'guineken'")
	if !maxAlc.Contains(tuple.New(value.NewFloat(6.5))) {
		t.Errorf("global max = %s", maxAlc)
	}
	sum := runSQL(t, "SELECT brewery, SUM(alcperc) AS total FROM beer GROUP BY brewery HAVING total > 10")
	if sum.Cardinality() != 1 {
		t.Errorf("HAVING filter = %s", sum)
	}
	having2 := runSQL(t, "SELECT brewery, COUNT(*) FROM beer GROUP BY brewery HAVING COUNT(*) >= 2")
	if having2.Cardinality() != 1 {
		t.Errorf("HAVING with aggregate call = %s", having2)
	}
	having3 := runSQL(t, "SELECT brewery, COUNT(*) FROM beer GROUP BY brewery HAVING brewery <> 'guineken' AND COUNT(*) >= 1")
	if having3.Cardinality() != 2 {
		t.Errorf("HAVING on grouping column = %s", having3)
	}
	minName := runSQL(t, "SELECT MIN(name) FROM beer")
	if !minName.Contains(tuple.New(value.NewString("bock"))) {
		t.Errorf("MIN over strings = %s", minName)
	}
}

// TestMultiAggregateSQL exercises the lifted one-aggregate-per-query
// restriction: several aggregates plan as one groupby pass, mixed freely with
// grouping columns and reordered to SELECT order.
func TestMultiAggregateSQL(t *testing.T) {
	multi := runSQL(t, "SELECT brewery, COUNT(*) AS n, SUM(alcperc) AS total, MAX(alcperc) FROM beer GROUP BY brewery")
	if multi.Cardinality() != 3 {
		t.Fatalf("groups = %d, want 3", multi.Cardinality())
	}
	if multi.Multiplicity(tuple.New(
		value.NewString("guineken"), value.NewInt(2), value.NewFloat(11.5), value.NewFloat(6.5))) != 1 {
		t.Errorf("guineken row wrong: %s", multi)
	}
	// Aggregates interleaved with the grouping column reorder correctly.
	flipped := runSQL(t, "SELECT MIN(alcperc), brewery, COUNT(*) FROM beer GROUP BY brewery")
	if flipped.Multiplicity(tuple.New(
		value.NewFloat(5.0), value.NewString("guineken"), value.NewInt(2))) != 1 {
		t.Errorf("interleaved output wrong: %s", flipped)
	}
	// Global multi-aggregate without GROUP BY.
	global := runSQL(t, "SELECT COUNT(*), MIN(alcperc), MAX(alcperc) FROM beer")
	if global.Cardinality() != 1 || !global.Contains(tuple.New(
		value.NewInt(4), value.NewFloat(4.2), value.NewFloat(6.5))) {
		t.Errorf("global multi-aggregate = %s", global)
	}
	// Two unnamed COUNTs coexist (the second column is anonymous).
	double := runSQL(t, "SELECT COUNT(*), COUNT(name) FROM beer")
	if !double.Contains(tuple.New(value.NewInt(4), value.NewInt(4))) {
		t.Errorf("double count = %s", double)
	}
	// HAVING may use an aggregate that is not in the SELECT list: it rides as
	// a hidden trailing column and is stripped from the output.
	having := runSQL(t, "SELECT brewery, SUM(alcperc) FROM beer GROUP BY brewery HAVING COUNT(*) >= 2")
	if having.Cardinality() != 1 || !having.Contains(tuple.New(value.NewString("guineken"), value.NewFloat(11.5))) {
		t.Errorf("HAVING with hidden aggregate = %s", having)
	}
}

// TestGroupByWithoutAggregateSQL checks GROUP BY with no aggregate translates
// to a distinct projection (π + δ): one output row per group.
func TestGroupByWithoutAggregateSQL(t *testing.T) {
	r := runSQL(t, "SELECT brewery FROM beer GROUP BY brewery")
	if r.Cardinality() != 3 || r.DistinctCount() != 3 {
		t.Errorf("GROUP BY without aggregate = %s, want 3 distinct rows", r)
	}
	if !r.Contains(tuple.New(value.NewString("guineken"))) {
		t.Errorf("missing group: %s", r)
	}
	// Projecting a subset of the grouping columns keeps one row per group
	// (duplicates across groups allowed, as SQL prescribes).
	sub := runSQL(t, "SELECT name FROM beer GROUP BY name, brewery")
	if sub.Cardinality() != 4 {
		t.Errorf("subset projection = %s, want one row per (name, brewery) group", sub)
	}
	// HAVING on grouping columns still applies.
	hav := runSQL(t, "SELECT brewery FROM beer GROUP BY brewery HAVING brewery <> 'guineken'")
	if hav.Cardinality() != 2 {
		t.Errorf("HAVING on aggregate-free grouping = %s", hav)
	}
	// HAVING with an aggregate over an aggregate-free SELECT uses the groupby
	// path and strips the hidden column.
	havAgg := runSQL(t, "SELECT brewery FROM beer GROUP BY brewery HAVING COUNT(*) >= 2")
	if havAgg.Cardinality() != 1 || !havAgg.Contains(tuple.New(value.NewString("guineken"))) {
		t.Errorf("HAVING aggregate over aggregate-free SELECT = %s", havAgg)
	}
}

func TestInsertDeleteUpdateSQL(t *testing.T) {
	src := beerSource()
	cat := src.Catalog()

	ins, err := CompileStatement("INSERT INTO beer VALUES ('radler', 'brolsch', 2.0), ('radler', 'brolsch', 2.0)", cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ins.(stmt.Insert); !ok {
		t.Fatalf("expected Insert, got %T", ins)
	}

	del, err := CompileStatement("DELETE FROM beer WHERE brewery = 'guinness'", cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := del.(stmt.Delete); !ok {
		t.Fatalf("expected Delete, got %T", del)
	}
	delAll, err := CompileStatement("DELETE FROM beer", cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := delAll.(stmt.Delete); !ok {
		t.Fatalf("expected Delete, got %T", delAll)
	}

	// The paper's Example 4.1 in its SQL form.
	up, err := CompileStatement("UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'guineken'", cat)
	if err != nil {
		t.Fatal(err)
	}
	update, ok := up.(stmt.Update)
	if !ok {
		t.Fatalf("expected Update, got %T", up)
	}
	if len(update.Items) != 3 {
		t.Fatalf("update items = %d", len(update.Items))
	}

	// Execute the whole script against a fake context and verify the effects.
	ctx := newFakeContext(src)
	prog, _, err := CompileScript(`
		INSERT INTO beer VALUES ('radler', 'brolsch', 2.0);
		DELETE FROM beer WHERE brewery = 'guinness';
		UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'guineken';
		SELECT brewery, COUNT(*) FROM beer GROUP BY brewery;
	`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 4 {
		t.Fatalf("program length = %d", len(prog))
	}
	if err := prog.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	beer, _ := ctx.src.Relation("beer")
	if beer.Cardinality() != 4 {
		t.Errorf("|beer| after script = %d, want 4", beer.Cardinality())
	}
	var updated bool
	beer.Each(func(tp tuple.Tuple, _ uint64) bool {
		if tp.At(0).Str() == "bock" {
			alc := tp.At(2).Float()
			updated = alc > 7.14 && alc < 7.16
		}
		return true
	})
	if !updated {
		t.Error("UPDATE must raise bock's alcperc to 7.15")
	}
	if len(ctx.outputs) != 1 || ctx.outputs[0].Cardinality() != 2 {
		t.Errorf("script query output = %v", ctx.outputs)
	}
}

func TestQueryAsStatement(t *testing.T) {
	src := beerSource()
	s, err := CompileStatement("SELECT name FROM beer", src.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(stmt.Query); !ok {
		t.Fatalf("expected Query, got %T", s)
	}
}

func TestCompileErrors(t *testing.T) {
	cat := beerSource().Catalog()
	bad := []string{
		"",
		"SELEC name FROM beer",
		"SELECT FROM beer",
		"SELECT name beer",
		"SELECT name FROM",
		"SELECT name FROM wine",
		"SELECT nosuch FROM beer",
		"SELECT name FROM beer WHERE",
		"SELECT name FROM beer WHERE name >",
		"SELECT name FROM beer WHERE name = 'x' extra",
		"SELECT name FROM beer GROUP BY",
		"SELECT name, AVG(alcperc) FROM beer GROUP BY brewery",                      // name not grouped
		"SELECT AVG(*) FROM beer",                                                   // * only for COUNT
		"SELECT AVG(alcperc + 1) FROM beer",                                         // aggregate args must be columns
		"SELECT * FROM beer GROUP BY brewery",                                       // star with grouping
		"SELECT name FROM beer, brewery WHERE name = 'x'",                           // ambiguous column
		"SELECT brewery.alcperc FROM beer, brewery",                                 // wrong qualifier
		"SELECT name FROM beer WHERE AVG(alcperc) > 5",                              // aggregate in WHERE
		"SELECT brewery, SUM(alcperc) FROM beer GROUP BY brewery HAVING city = 'x'", // bad HAVING column
		"INSERT INTO wine VALUES (1)",
		"INSERT INTO beer VALUES ('x', 'y')", // arity mismatch
		"INSERT INTO beer VALUES",
		"INSERT beer VALUES ('x', 'y', 1)",
		"DELETE FROM wine",
		"DELETE beer",
		"UPDATE wine SET x = 1",
		"UPDATE beer SET nosuch = 1",
		"UPDATE beer SET alcperc 5",
		"UPDATE beer SET alcperc = AVG(alcperc)",
		"DROP TABLE beer",
		"SELECT name FROM beer JOIN brewery",        // JOIN requires ON
		"SELECT name FROM beer WHERE 'x'",           // non-boolean condition
		"SELECT name FROM beer WHERE 5 = 'x' AND #", // lexer error
	}
	for _, sql := range bad {
		if _, err := CompileStatement(sql, cat); err == nil {
			t.Errorf("statement %q should fail to compile", sql)
		}
	}
	// CompileQuery rejects non-SELECT statements.
	if _, err := CompileQuery("DELETE FROM beer", cat); err == nil {
		t.Error("CompileQuery must reject DML")
	}
	// Errors carry positions and the sql: prefix.
	_, err := CompileQuery("SELECT nosuch FROM beer", cat)
	if err == nil || !strings.HasPrefix(err.Error(), "sql:") {
		t.Errorf("error format: %v", err)
	}
	// CompileScript reports which statement failed.
	_, _, err = CompileScript("SELECT name FROM beer; SELECT nosuch FROM beer", cat)
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("script error should identify the failing statement: %v", err)
	}
}

func TestSplitStatements(t *testing.T) {
	pieces := splitStatements("SELECT 'a;b' FROM t; DELETE FROM t;;")
	if len(pieces) != 2 {
		t.Fatalf("pieces = %d: %q", len(pieces), pieces)
	}
	if !strings.Contains(pieces[0], "a;b") {
		t.Error("semicolons inside string literals must not split")
	}
	if len(splitStatements("  ")) != 0 {
		t.Error("blank scripts have no statements")
	}
}

// fakeContext is a minimal stmt.Context over a MapSource.
type fakeContext struct {
	src     eval.MapSource
	outputs []*multiset.Relation
}

func newFakeContext(src eval.MapSource) *fakeContext { return &fakeContext{src: src} }

func (f *fakeContext) Catalog() algebra.Catalog { return f.src.Catalog() }

func (f *fakeContext) Evaluate(e algebra.Expr) (*multiset.Relation, error) {
	return (&eval.Engine{}).Eval(e, f.src)
}

func (f *fakeContext) Current(name string) (*multiset.Relation, bool) { return f.src.Relation(name) }

func (f *fakeContext) Replace(name string, r *multiset.Relation) error {
	f.src[strings.ToLower(name)] = r
	return nil
}

func (f *fakeContext) Assign(name string, r *multiset.Relation) error {
	f.src[strings.ToLower(name)] = r
	return nil
}

func (f *fakeContext) Output(r *multiset.Relation) { f.outputs = append(f.outputs, r) }

// TestOrderByLimitCompile checks the resolution of ORDER BY / LIMIT / OFFSET
// into presentation modifiers against the output schema.
func TestOrderByLimitCompile(t *testing.T) {
	cat := beerSource().Catalog()

	q, err := CompileQuery("SELECT name, alcperc FROM beer ORDER BY alcperc DESC, name LIMIT 3 OFFSET 1", cat)
	if err != nil {
		t.Fatal(err)
	}
	want := Modifiers{Order: []OrderKey{{Col: 1, Desc: true}, {Col: 0}}, Limit: 3, HasLimit: true, Offset: 1}
	if len(q.Mods.Order) != 2 || q.Mods.Order[0] != want.Order[0] || q.Mods.Order[1] != want.Order[1] ||
		q.Mods.Limit != want.Limit || !q.Mods.HasLimit || q.Mods.Offset != want.Offset {
		t.Errorf("modifiers = %+v, want %+v", q.Mods, want)
	}

	// 1-based SELECT-list positions resolve too.
	q, err = CompileQuery("SELECT name, alcperc FROM beer ORDER BY 2 DESC", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Mods.Order) != 1 || q.Mods.Order[0] != (OrderKey{Col: 1, Desc: true}) {
		t.Errorf("positional order = %+v", q.Mods.Order)
	}

	// ORDER BY resolves against the *output* schema, aliases included.
	q, err = CompileQuery("SELECT name AS n FROM beer ORDER BY n", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Mods.Order) != 1 || q.Mods.Order[0].Col != 0 {
		t.Errorf("alias order = %+v", q.Mods.Order)
	}

	// Grouped queries order by grouping columns or the aggregate.
	q, err = CompileQuery("SELECT brewery, COUNT(*) AS beers FROM beer GROUP BY brewery ORDER BY beers DESC LIMIT 2", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Mods.Order) != 1 || q.Mods.Order[0] != (OrderKey{Col: 1, Desc: true}) || q.Mods.Limit != 2 {
		t.Errorf("grouped order = %+v", q.Mods)
	}

	bad := []string{
		"SELECT name FROM beer ORDER BY 2",            // position out of range
		"SELECT name FROM beer ORDER BY 0",            // positions are 1-based
		"SELECT name FROM beer LIMIT -1",              // negative limit
		"SELECT name FROM beer LIMIT 2 OFFSET -3",     // negative offset
		"SELECT name FROM beer ORDER BY name LIMIT x", // non-numeric limit
		"SELECT name FROM beer OFFSET 0 OFFSET 3",     // duplicate OFFSET
		"SELECT name FROM beer LIMIT 1 LIMIT 2",       // duplicate LIMIT
		// Unresolvable key expressions still fail.
		"SELECT b.name FROM beer b ORDER BY nosuch.name",
		// Grouping collapses the FROM columns, so only output columns and
		// positions can order grouped queries.
		"SELECT brewery, COUNT(*) FROM beer GROUP BY brewery ORDER BY alcperc",
		// Hidden sort columns would change what DISTINCT deduplicates.
		"SELECT DISTINCT name FROM beer ORDER BY alcperc",
	}
	for _, sql := range bad {
		if _, err := CompileQuery(sql, cat); err == nil {
			t.Errorf("%q should fail to compile", sql)
		}
	}

	// Statement-level compilation rejects the presentation modifiers: a bare
	// statement output is an unordered multi-set.
	if _, err := CompileStatement("SELECT name FROM beer ORDER BY name", cat); err == nil {
		t.Error("CompileStatement must reject ORDER BY")
	}
	// ...but CompileScript carries them through per query statement.
	prog, mods, err := CompileScript(
		"INSERT INTO beer VALUES ('x', 'y', 1.0); SELECT name FROM beer LIMIT 2; SELECT name FROM beer", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 3 || len(mods) != 2 {
		t.Fatalf("program %d statements, %d query modifiers", len(prog), len(mods))
	}
	if !mods[0].HasLimit || mods[0].Limit != 2 || mods[1].Active() {
		t.Errorf("script modifiers = %+v", mods)
	}

	// A table alias is still allowed right before the new clauses.
	if _, err := CompileQuery("SELECT b.name FROM beer b ORDER BY name", cat); err != nil {
		t.Errorf("alias before ORDER BY: %v", err)
	}
}

// TestOrderByExpressionKeys checks ORDER BY keys that are not output columns
// compile onto hidden trailing sort columns over the FROM schema.
func TestOrderByExpressionKeys(t *testing.T) {
	src := beerSource()
	cat := src.Catalog()

	// A non-selected column becomes one hidden trailing key column.
	q, err := CompileQuery("SELECT name FROM beer ORDER BY alcperc DESC", cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mods.Hidden != 1 || len(q.Mods.Order) != 1 || q.Mods.Order[0] != (OrderKey{Col: 1, Desc: true}) {
		t.Fatalf("modifiers = %+v", q.Mods)
	}
	s, err := q.Expr.Schema(cat)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 2 || s.Attribute(0).Name != "name" || s.Attribute(1).Name != "" {
		t.Errorf("extended schema = %s", s)
	}
	out, err := (&eval.Engine{}).Eval(q.Expr, src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() != 4 {
		t.Errorf("result = %s", out)
	}

	// Mixed output-column and expression keys: the unqualified output name
	// sorts in place, the arithmetic expression rides as a hidden column.
	q, err = CompileQuery("SELECT name FROM beer b ORDER BY name, b.alcperc * -1", cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mods.Hidden != 1 || len(q.Mods.Order) != 2 ||
		q.Mods.Order[0] != (OrderKey{Col: 0}) || q.Mods.Order[1] != (OrderKey{Col: 1}) {
		t.Errorf("mixed modifiers = %+v", q.Mods)
	}

	// Qualified references are never output columns (qualifiers are gone
	// after projection), so they resolve over FROM as hidden keys.
	q, err = CompileQuery("SELECT b.name FROM beer b ORDER BY b.name", cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mods.Hidden != 1 || len(q.Mods.Order) != 1 || q.Mods.Order[0] != (OrderKey{Col: 1}) {
		t.Errorf("qualified modifiers = %+v", q.Mods)
	}

	// SELECT * grows an identity projection for the hidden key.
	q, err = CompileQuery("SELECT * FROM beer ORDER BY alcperc + 1 DESC", cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mods.Hidden != 1 || q.Mods.Order[0] != (OrderKey{Col: 3, Desc: true}) {
		t.Fatalf("star modifiers = %+v", q.Mods)
	}
	s, err = q.Expr.Schema(cat)
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 4 || s.Attribute(0).Name != "name" || s.Attribute(2).Name != "alcperc" {
		t.Errorf("star extended schema = %s", s)
	}
}
