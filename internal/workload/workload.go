// Package workload provides the data and workload generators used by the
// examples and the benchmark harness: the paper's beer/brewery running
// example at configurable scale, synthetic relations with a controlled
// duplication factor, Zipf-skewed join workloads, and graph relations for the
// transitive-closure extension.
//
// All generators are deterministic for a given seed so experiment runs are
// reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"mra/internal/multiset"
	"mra/internal/schema"
	"mra/internal/tuple"
	"mra/internal/value"
)

// BeerSchema returns the schema of the paper's beer relation:
// beer(name, brewery, alcperc).
func BeerSchema() schema.Relation {
	return schema.NewRelation("beer",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "brewery", Type: value.KindString},
		schema.Attribute{Name: "alcperc", Type: value.KindFloat},
	)
}

// BrewerySchema returns the schema of the paper's brewery relation:
// brewery(name, city, country).
func BrewerySchema() schema.Relation {
	return schema.NewRelation("brewery",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "city", Type: value.KindString},
		schema.Attribute{Name: "country", Type: value.KindString},
	)
}

// BeerConfig controls the scale of the generated beer database.
type BeerConfig struct {
	// Breweries is the number of breweries (default 16).
	Breweries int
	// BeersPerBrewery is the number of beers each brewery brews (default 8).
	BeersPerBrewery int
	// DuplicateNames makes distinct breweries reuse beer names, so projections
	// on the name attribute produce duplicates (the paper's Example 3.1).
	DuplicateNames bool
	// DiscreteAlcohol restricts alcohol percentages to a small grid
	// (4.0, 4.5, ..., 9.5) so that distinct beers share percentages and the
	// set-vs-bag aggregation difference of Example 3.2 becomes observable.
	DiscreteAlcohol bool
	// Seed drives the pseudo-random alcohol percentages.
	Seed int64
}

// withDefaults fills in zero fields.
func (c BeerConfig) withDefaults() BeerConfig {
	if c.Breweries == 0 {
		c.Breweries = 16
	}
	if c.BeersPerBrewery == 0 {
		c.BeersPerBrewery = 8
	}
	return c
}

// countries is the country pool breweries are spread over.
var countries = []string{"netherlands", "belgium", "germany", "ireland", "czechia"}

// Beers generates a beer database (beer and brewery relation instances) of the
// configured size.
func Beers(cfg BeerConfig) (beer, brewery *multiset.Relation) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	beer = multiset.New(BeerSchema())
	brewery = multiset.New(BrewerySchema())
	for b := 0; b < cfg.Breweries; b++ {
		bname := fmt.Sprintf("brewery%03d", b)
		country := countries[b%len(countries)]
		city := fmt.Sprintf("city%03d", b)
		brewery.Add(tuple.New(value.NewString(bname), value.NewString(city), value.NewString(country)), 1)
		for i := 0; i < cfg.BeersPerBrewery; i++ {
			var name string
			if cfg.DuplicateNames {
				// Reuse names across breweries so π_name produces duplicates.
				name = fmt.Sprintf("beer%03d", i)
			} else {
				name = fmt.Sprintf("beer%03d_%03d", b, i)
			}
			alc := 4.0 + rng.Float64()*6.0
			if cfg.DiscreteAlcohol {
				alc = 4.0 + 0.5*float64(rng.Intn(12))
			}
			beer.Add(tuple.New(value.NewString(name), value.NewString(bname), value.NewFloat(alc)), 1)
		}
	}
	return beer, brewery
}

// DuplicationConfig controls the synthetic duplication workload used by the
// duplicate-removal cost experiment (E7).
type DuplicationConfig struct {
	// DistinctTuples is the number of distinct tuples (default 1000).
	DistinctTuples int
	// DuplicationFactor is the multiplicity given to every distinct tuple
	// (default 1, i.e. a set).
	DuplicationFactor int
	// Attributes is the tuple width (default 2).
	Attributes int
	// Seed drives the pseudo-random attribute values.
	Seed int64
}

func (c DuplicationConfig) withDefaults() DuplicationConfig {
	if c.DistinctTuples == 0 {
		c.DistinctTuples = 1000
	}
	if c.DuplicationFactor == 0 {
		c.DuplicationFactor = 1
	}
	if c.Attributes == 0 {
		c.Attributes = 2
	}
	return c
}

// Duplicated generates a relation with the configured number of distinct
// tuples, each repeated DuplicationFactor times.
func Duplicated(cfg DuplicationConfig) *multiset.Relation {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	attrs := make([]schema.Attribute, cfg.Attributes)
	for i := range attrs {
		attrs[i] = schema.Attribute{Name: fmt.Sprintf("a%d", i+1), Type: value.KindInt}
	}
	r := multiset.New(schema.NewRelation("dup", attrs...))
	for i := 0; i < cfg.DistinctTuples; i++ {
		vals := make([]value.Value, cfg.Attributes)
		vals[0] = value.NewInt(int64(i))
		for j := 1; j < cfg.Attributes; j++ {
			vals[j] = value.NewInt(int64(rng.Intn(1 << 16)))
		}
		r.Add(tuple.New(vals...), uint64(cfg.DuplicationFactor))
	}
	return r
}

// JoinConfig controls the synthetic two-relation equi-join workload used by
// the optimizer and join benchmarks (E3, E9).
type JoinConfig struct {
	// LeftTuples and RightTuples are the relation sizes (defaults 2000, 200).
	LeftTuples, RightTuples int
	// KeyRange is the number of distinct join-key values (default RightTuples).
	KeyRange int
	// Skew, when positive, draws left-side keys from a Zipf-like distribution
	// with the given exponent instead of uniformly.
	Skew float64
	// Seed drives the random draws.
	Seed int64
}

func (c JoinConfig) withDefaults() JoinConfig {
	if c.LeftTuples == 0 {
		c.LeftTuples = 2000
	}
	if c.RightTuples == 0 {
		c.RightTuples = 200
	}
	if c.KeyRange == 0 {
		c.KeyRange = c.RightTuples
	}
	return c
}

// JoinPair generates a fact relation fact(key, payload) and a dimension
// relation dim(key, attr) for equi-join workloads.
func JoinPair(cfg JoinConfig) (fact, dim *multiset.Relation) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	fact = multiset.New(schema.NewRelation("fact",
		schema.Attribute{Name: "key", Type: value.KindInt},
		schema.Attribute{Name: "payload", Type: value.KindInt},
	))
	dim = multiset.New(schema.NewRelation("dim",
		schema.Attribute{Name: "key", Type: value.KindInt},
		schema.Attribute{Name: "attr", Type: value.KindInt},
	))
	var zipf *rand.Zipf
	if cfg.Skew > 1 {
		zipf = rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.KeyRange-1))
	}
	for i := 0; i < cfg.LeftTuples; i++ {
		var key int64
		if zipf != nil {
			key = int64(zipf.Uint64())
		} else {
			key = int64(rng.Intn(cfg.KeyRange))
		}
		fact.Add(tuple.Ints(key, int64(rng.Intn(1<<16))), 1)
	}
	for k := 0; k < cfg.RightTuples; k++ {
		dim.Add(tuple.Ints(int64(k%cfg.KeyRange), int64(k)), 1)
	}
	return fact, dim
}

// GraphConfig controls the random-graph generator for the transitive-closure
// experiment (E10).
type GraphConfig struct {
	// Nodes is the number of graph nodes (default 64).
	Nodes int
	// OutDegree is the average number of outgoing edges per node (default 2).
	OutDegree int
	// Seed drives the random draws.
	Seed int64
}

func (c GraphConfig) withDefaults() GraphConfig {
	if c.Nodes == 0 {
		c.Nodes = 64
	}
	if c.OutDegree == 0 {
		c.OutDegree = 2
	}
	return c
}

// Graph generates a binary edge relation edge(src, dst) over the configured
// random graph.
func Graph(cfg GraphConfig) *multiset.Relation {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := multiset.New(schema.NewRelation("edge",
		schema.Attribute{Name: "src", Type: value.KindInt},
		schema.Attribute{Name: "dst", Type: value.KindInt},
	))
	for src := 0; src < cfg.Nodes; src++ {
		for e := 0; e < cfg.OutDegree; e++ {
			dst := rng.Intn(cfg.Nodes)
			r.Add(tuple.Ints(int64(src), int64(dst)), 1)
		}
	}
	return r
}

// AccountsSchema returns the schema of the banking example's accounts
// relation: account(id, owner, balance).
func AccountsSchema() schema.Relation {
	return schema.NewRelation("account",
		schema.Attribute{Name: "id", Type: value.KindInt},
		schema.Attribute{Name: "owner", Type: value.KindString},
		schema.Attribute{Name: "balance", Type: value.KindFloat},
	)
}

// AccountRows generates the same accounts as Accounts but as plain Go rows
// for mra.DB.InsertValues, for callers seeding a database through the public
// API rather than the storage layer.
func AccountRows(n int, seed int64) [][]any {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{int64(i), fmt.Sprintf("owner%04d", i), float64(rng.Intn(100000)) / 100}
	}
	return rows
}

// Accounts generates n bank accounts with pseudo-random balances.
func Accounts(n int, seed int64) *multiset.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := multiset.New(AccountsSchema())
	for i := 0; i < n; i++ {
		r.Add(tuple.New(
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("owner%04d", i)),
			value.NewFloat(float64(rng.Intn(100000))/100),
		), 1)
	}
	return r
}

// StarConfig controls the star-schema generator for the multi-join
// enumerator experiment (E13).
type StarConfig struct {
	// FactTuples is the fact relation size (default 20000).
	FactTuples int
	// Dims is the number of dimension relations (default 3).
	Dims int
	// DimTuples is the size of each dimension, which is also its key range
	// (default 60).
	DimTuples int
	// Seed drives the random draws.
	Seed int64
}

func (c StarConfig) withDefaults() StarConfig {
	if c.FactTuples == 0 {
		c.FactTuples = 20000
	}
	if c.Dims == 0 {
		c.Dims = 3
	}
	if c.DimTuples == 0 {
		c.DimTuples = 60
	}
	return c
}

// Star generates a star schema for multi-join workloads: a fact relation
// fact(k1, …, kD, payload) whose key columns are drawn uniformly from each
// dimension's key range, and D dimension relations dim(key, attr) with keys
// 0..DimTuples-1.  Written dimensions-first, the star query cross-multiplies
// the dimensions; a cost-based join order starts from the fact table and
// keeps every intermediate at fact size.
func Star(cfg StarConfig) (fact *multiset.Relation, dims []*multiset.Relation) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	attrs := make([]schema.Attribute, 0, cfg.Dims+1)
	for i := 0; i < cfg.Dims; i++ {
		attrs = append(attrs, schema.Attribute{Name: fmt.Sprintf("k%d", i+1), Type: value.KindInt})
	}
	attrs = append(attrs, schema.Attribute{Name: "payload", Type: value.KindInt})
	fact = multiset.New(schema.NewRelation("fact", attrs...))
	row := make([]int64, cfg.Dims+1)
	for i := 0; i < cfg.FactTuples; i++ {
		for d := 0; d < cfg.Dims; d++ {
			row[d] = int64(rng.Intn(cfg.DimTuples))
		}
		row[cfg.Dims] = int64(i)
		fact.Add(tuple.Ints(row...), 1)
	}
	dims = make([]*multiset.Relation, cfg.Dims)
	for d := range dims {
		r := multiset.New(schema.NewRelation(fmt.Sprintf("d%d", d+1),
			schema.Attribute{Name: "key", Type: value.KindInt},
			schema.Attribute{Name: "attr", Type: value.KindInt}))
		for k := 0; k < cfg.DimTuples; k++ {
			r.Add(tuple.Ints(int64(k), int64(rng.Intn(1<<16))), 1)
		}
		dims[d] = r
	}
	return fact, dims
}

// ChainConfig controls the chain-join generator for the multi-join
// enumerator experiment (E13).
type ChainConfig struct {
	// HeadTuples is the head relation size (default 20000).
	HeadTuples int
	// Links is the number of link relations after the head (default 3).
	Links int
	// Domain is the head relation's key range (default 1000).
	Domain int
	// Fan is link1's per-key fan-out: each head key expands to Fan link1
	// rows (default 5).
	Fan int
	// Shrink is the selectivity divisor of every link after the first: each
	// keeps one in-value in Shrink and shrinks its output domain accordingly
	// (default 25).
	Shrink int
	// Seed drives the random draws.
	Seed int64
}

func (c ChainConfig) withDefaults() ChainConfig {
	if c.HeadTuples == 0 {
		c.HeadTuples = 20000
	}
	if c.Links == 0 {
		c.Links = 3
	}
	if c.Domain == 0 {
		c.Domain = 1000
	}
	if c.Fan == 0 {
		c.Fan = 5
	}
	if c.Shrink == 0 {
		c.Shrink = 25
	}
	return c
}

// Chain generates a chain-join workload: head(key, payload) with keys drawn
// from 0..Domain-1; link1(in, out) a one-to-Fan expansion of the key domain
// (Domain·Fan rows, all outs distinct); and each later link_i(in, out) a
// selection keeping one in-value in Shrink (so its size shrinks geometrically:
// Domain·Fan/Shrink, then /Shrink² …).  Joined head-first the expansion runs
// first and the intermediates peak at HeadTuples·Fan rows before the
// selective tail prunes them; joined from the small tail every intermediate
// stays link-sized until the single final probe of head.
func Chain(cfg ChainConfig) []*multiset.Relation {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	head := multiset.New(schema.NewRelation("head",
		schema.Attribute{Name: "key", Type: value.KindInt},
		schema.Attribute{Name: "payload", Type: value.KindInt}))
	for i := 0; i < cfg.HeadTuples; i++ {
		head.Add(tuple.Ints(int64(rng.Intn(cfg.Domain)), int64(i)), 1)
	}
	link1 := multiset.New(schema.NewRelation("link1",
		schema.Attribute{Name: "in", Type: value.KindInt},
		schema.Attribute{Name: "out", Type: value.KindInt}))
	for in := 0; in < cfg.Domain; in++ {
		for f := 0; f < cfg.Fan; f++ {
			link1.Add(tuple.Ints(int64(in), int64(in*cfg.Fan+f)), 1)
		}
	}
	rels := []*multiset.Relation{head, link1}
	domain := cfg.Domain * cfg.Fan
	for l := 2; l <= cfg.Links; l++ {
		r := multiset.New(schema.NewRelation(fmt.Sprintf("link%d", l),
			schema.Attribute{Name: "in", Type: value.KindInt},
			schema.Attribute{Name: "out", Type: value.KindInt}))
		for j := 0; j*cfg.Shrink < domain; j++ {
			r.Add(tuple.Ints(int64(j*cfg.Shrink), int64(j)), 1)
		}
		rels = append(rels, r)
		domain /= cfg.Shrink
		if domain < 1 {
			domain = 1
		}
	}
	return rels
}
