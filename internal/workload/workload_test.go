package workload

import (
	"testing"

	"mra/internal/tuple"
)

func TestBeersDefaultsAndScale(t *testing.T) {
	beer, brewery := Beers(BeerConfig{})
	if brewery.Cardinality() != 16 {
		t.Errorf("default breweries = %d", brewery.Cardinality())
	}
	if beer.Cardinality() != 16*8 {
		t.Errorf("default beers = %d", beer.Cardinality())
	}
	if beer.Schema().Name() != "beer" || brewery.Schema().Name() != "brewery" {
		t.Error("schemas must carry the paper's relation names")
	}
	big, _ := Beers(BeerConfig{Breweries: 3, BeersPerBrewery: 5})
	if big.Cardinality() != 15 {
		t.Errorf("scaled beers = %d", big.Cardinality())
	}
}

func TestBeersDeterminism(t *testing.T) {
	a1, b1 := Beers(BeerConfig{Seed: 7, Breweries: 4, BeersPerBrewery: 3})
	a2, b2 := Beers(BeerConfig{Seed: 7, Breweries: 4, BeersPerBrewery: 3})
	if !a1.Equal(a2) || !b1.Equal(b2) {
		t.Error("same seed must generate the same database")
	}
	a3, _ := Beers(BeerConfig{Seed: 8, Breweries: 4, BeersPerBrewery: 3})
	if a1.Equal(a3) {
		t.Error("different seeds should generate different alcohol percentages")
	}
}

func TestBeersDuplicateNames(t *testing.T) {
	dup, _ := Beers(BeerConfig{Breweries: 4, BeersPerBrewery: 3, DuplicateNames: true})
	uniq, _ := Beers(BeerConfig{Breweries: 4, BeersPerBrewery: 3})
	countNames := func(r interface {
		Each(func(tuple.Tuple, uint64) bool)
	}) map[string]int {
		names := map[string]int{}
		r.Each(func(tp tuple.Tuple, c uint64) bool {
			names[tp.At(0).Str()] += int(c)
			return true
		})
		return names
	}
	if len(countNames(dup)) != 3 {
		t.Errorf("duplicate-name mode should reuse 3 names, got %d", len(countNames(dup)))
	}
	if len(countNames(uniq)) != 12 {
		t.Errorf("unique-name mode should have 12 names, got %d", len(countNames(uniq)))
	}
}

func TestDuplicated(t *testing.T) {
	r := Duplicated(DuplicationConfig{})
	if r.DistinctCount() != 1000 || r.Cardinality() != 1000 {
		t.Errorf("defaults: distinct=%d total=%d", r.DistinctCount(), r.Cardinality())
	}
	r8 := Duplicated(DuplicationConfig{DistinctTuples: 100, DuplicationFactor: 8, Attributes: 3})
	if r8.DistinctCount() != 100 || r8.Cardinality() != 800 {
		t.Errorf("dup factor 8: distinct=%d total=%d", r8.DistinctCount(), r8.Cardinality())
	}
	if r8.Schema().Arity() != 3 {
		t.Errorf("attributes = %d", r8.Schema().Arity())
	}
	// Every distinct tuple carries exactly the duplication factor.
	r8.Each(func(_ tuple.Tuple, c uint64) bool {
		if c != 8 {
			t.Errorf("multiplicity = %d, want 8", c)
		}
		return true
	})
	if !Duplicated(DuplicationConfig{Seed: 3}).Equal(Duplicated(DuplicationConfig{Seed: 3})) {
		t.Error("determinism")
	}
}

func TestJoinPair(t *testing.T) {
	fact, dim := JoinPair(JoinConfig{})
	if fact.Cardinality() != 2000 || dim.Cardinality() != 200 {
		t.Errorf("defaults: fact=%d dim=%d", fact.Cardinality(), dim.Cardinality())
	}
	// Every fact key falls inside the dimension key range, so the equi-join is
	// total.
	keys := map[int64]bool{}
	dim.Each(func(tp tuple.Tuple, _ uint64) bool {
		keys[tp.At(0).Int()] = true
		return true
	})
	fact.Each(func(tp tuple.Tuple, _ uint64) bool {
		if !keys[tp.At(0).Int()] {
			t.Errorf("fact key %d has no dimension row", tp.At(0).Int())
			return false
		}
		return true
	})
	skewed, _ := JoinPair(JoinConfig{LeftTuples: 500, RightTuples: 50, Skew: 1.5, Seed: 2})
	if skewed.Cardinality() != 500 {
		t.Errorf("skewed size = %d", skewed.Cardinality())
	}
	f1, d1 := JoinPair(JoinConfig{Seed: 11})
	f2, d2 := JoinPair(JoinConfig{Seed: 11})
	if !f1.Equal(f2) || !d1.Equal(d2) {
		t.Error("determinism")
	}
}

func TestGraphAndAccounts(t *testing.T) {
	g := Graph(GraphConfig{})
	if g.Cardinality() != 64*2 {
		t.Errorf("default graph edges = %d", g.Cardinality())
	}
	g2 := Graph(GraphConfig{Nodes: 10, OutDegree: 3, Seed: 5})
	if g2.Cardinality() != 30 {
		t.Errorf("scaled graph edges = %d", g2.Cardinality())
	}
	if !Graph(GraphConfig{Seed: 1}).Equal(Graph(GraphConfig{Seed: 1})) {
		t.Error("graph determinism")
	}
	a := Accounts(100, 3)
	if a.Cardinality() != 100 || a.Schema().Name() != "account" {
		t.Errorf("accounts = %v", a.Cardinality())
	}
	if !Accounts(10, 9).Equal(Accounts(10, 9)) {
		t.Error("accounts determinism")
	}
}
