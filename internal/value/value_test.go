package value

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "null",
		KindInt:    "int",
		KindFloat:  "float",
		KindString: "string",
		KindBool:   "bool",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestKindNumeric(t *testing.T) {
	if !KindInt.Numeric() || !KindFloat.Numeric() {
		t.Error("int and float must be numeric")
	}
	if KindString.Numeric() || KindBool.Numeric() || KindNull.Numeric() {
		t.Error("string, bool and null must not be numeric")
	}
}

func TestParseKind(t *testing.T) {
	good := map[string]Kind{
		"int": KindInt, "INTEGER": KindInt,
		"float": KindFloat, "real": KindFloat, "Double": KindFloat,
		"string": KindString, "text": KindString, "VARCHAR": KindString, "char": KindString,
		"bool": KindBool, "BOOLEAN": KindBool,
		"null":    KindNull,
		"  int  ": KindInt,
	}
	for in, want := range good {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("money"); err == nil {
		t.Error("ParseKind should reject unknown domains")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.Kind() != KindInt || v.Int() != 42 {
		t.Errorf("NewInt: got %v", v)
	}
	if v := NewFloat(2.5); v.Kind() != KindFloat || v.Float() != 2.5 {
		t.Errorf("NewFloat: got %v", v)
	}
	if v := NewString("hi"); v.Kind() != KindString || v.Str() != "hi" {
		t.Errorf("NewString: got %v", v)
	}
	if v := NewBool(true); v.Kind() != KindBool || !v.Bool() {
		t.Errorf("NewBool: got %v", v)
	}
	if !Null.IsNull() || NewInt(1).IsNull() {
		t.Error("IsNull misbehaves")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on string", func() { NewString("x").Int() })
	mustPanic("Float on int", func() { NewInt(1).Float() })
	mustPanic("Str on bool", func() { NewBool(true).Str() })
	mustPanic("Bool on float", func() { NewFloat(1).Bool() })
}

func TestAsIntAsFloat(t *testing.T) {
	if n, ok := NewInt(7).AsInt(); !ok || n != 7 {
		t.Error("AsInt on int")
	}
	if n, ok := NewFloat(7.9).AsInt(); !ok || n != 7 {
		t.Error("AsInt on float should truncate")
	}
	if n, ok := NewBool(true).AsInt(); !ok || n != 1 {
		t.Error("AsInt on bool true")
	}
	if n, ok := NewBool(false).AsInt(); !ok || n != 0 {
		t.Error("AsInt on bool false")
	}
	if _, ok := NewString("x").AsInt(); ok {
		t.Error("AsInt on string must fail")
	}
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3.0 {
		t.Error("AsFloat on int")
	}
	if f, ok := NewFloat(3.5).AsFloat(); !ok || f != 3.5 {
		t.Error("AsFloat on float")
	}
	if _, ok := NewBool(true).AsFloat(); ok {
		t.Error("AsFloat on bool must fail")
	}
}

func TestStringAndDisplay(t *testing.T) {
	cases := []struct {
		v    Value
		str  string
		disp string
	}{
		{NewInt(5), "5", "5"},
		{NewFloat(2.5), "2.5", "2.5"},
		{NewString("ale"), "'ale'", "ale"},
		{NewString("o'brien"), "'o''brien'", "o'brien"},
		{NewBool(true), "true", "true"},
		{Null, "null", "null"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.str {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.str)
		}
		if got := c.v.Display(); got != c.disp {
			t.Errorf("Display(%v) = %q, want %q", c.v, got, c.disp)
		}
	}
}

func TestEqual(t *testing.T) {
	if !NewInt(3).Equal(NewInt(3)) || NewInt(3).Equal(NewInt(4)) {
		t.Error("int equality")
	}
	if !NewInt(3).Equal(NewFloat(3.0)) || !NewFloat(3.0).Equal(NewInt(3)) {
		t.Error("cross-numeric equality must hold")
	}
	if NewInt(3).Equal(NewString("3")) {
		t.Error("int must not equal string")
	}
	if !NewString("a").Equal(NewString("a")) || NewString("a").Equal(NewString("b")) {
		t.Error("string equality")
	}
	if !NewBool(true).Equal(NewBool(true)) || NewBool(true).Equal(NewBool(false)) {
		t.Error("bool equality")
	}
	if !Null.Equal(Null) || Null.Equal(NewInt(0)) {
		t.Error("null equality")
	}
}

func TestCompare(t *testing.T) {
	if NewInt(1).Compare(NewInt(2)) >= 0 || NewInt(2).Compare(NewInt(1)) <= 0 {
		t.Error("int ordering")
	}
	if NewInt(2).Compare(NewFloat(2.5)) >= 0 {
		t.Error("cross-numeric ordering")
	}
	if NewString("a").Compare(NewString("b")) >= 0 {
		t.Error("string ordering")
	}
	if NewBool(false).Compare(NewBool(true)) >= 0 || NewBool(true).Compare(NewBool(false)) <= 0 {
		t.Error("bool ordering")
	}
	if NewBool(true).Compare(NewBool(true)) != 0 {
		t.Error("bool equal ordering")
	}
	if Null.Compare(Null) != 0 {
		t.Error("null self comparison")
	}
	if Null.Compare(NewInt(5)) >= 0 {
		t.Error("null sorts before int")
	}
	if !NewInt(1).Less(NewInt(2)) || NewInt(2).Less(NewInt(1)) {
		t.Error("Less")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(3), NewFloat(3.0)},
		{NewFloat(0), NewFloat(math.Copysign(0, -1))},
		{NewString("x"), NewString("x")},
		{NewBool(true), NewBool(true)},
		{Null, Null},
	}
	for _, p := range pairs {
		if !p[0].Equal(p[1]) {
			t.Fatalf("test pair %v not equal", p)
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values %v and %v hash differently", p[0], p[1])
		}
	}
	if NewInt(1).Hash() == NewInt(2).Hash() {
		t.Error("suspicious: 1 and 2 hash to the same code")
	}
	if NewString("a").Hash() == NewString("b").Hash() {
		t.Error("suspicious: 'a' and 'b' hash to the same code")
	}
}

func TestHashDistinguishesValues(t *testing.T) {
	if NewInt(3).Hash() != NewFloat(3.0).Hash() {
		t.Error("3 and 3.0 must share a hash")
	}
	if NewInt(3).Hash() == NewInt(4).Hash() {
		t.Error("3 and 4 must not share a hash")
	}
	if NewString("3").Hash() == NewInt(3).Hash() {
		t.Error("string '3' and int 3 must not share a hash")
	}
	if NewBool(true).Hash() == NewBool(false).Hash() {
		t.Error("booleans must not share a hash")
	}
	if NewFloat(2.5).Hash() == NewFloat(3.5).Hash() {
		t.Error("distinct non-integral floats must not share a hash")
	}
}

func TestHashImpliedByEqualProperty(t *testing.T) {
	// Equal ⇒ same hash.  The converse holds only modulo collisions, so the
	// properties check the implication direction.
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return !va.Equal(vb) || va.Hash() == vb.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		va, vb := NewFloat(a), NewFloat(b)
		return !va.Equal(vb) || va.Hash() == vb.Hash()
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	h := func(a, b string) bool {
		va, vb := NewString(a), NewString(b)
		return !va.Equal(vb) || va.Hash() == vb.Hash()
	}
	if err := quick.Check(h, nil); err != nil {
		t.Error(err)
	}
}

func TestHashEqualityProperty(t *testing.T) {
	f := func(a int64) bool {
		return NewInt(a).Hash() == NewFloat(float64(a)).Hash() == NewInt(a).Equal(NewFloat(float64(a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
