package value

// Vec is a column vector: the values one attribute takes across the rows of a
// batch, laid out contiguously so column-at-a-time operator kernels (filters,
// join probes, aggregate updates) stream through memory instead of chasing
// per-tuple indirections.  A Vec is a plain slice — index it, reslice it,
// share it; the values inside are immutable as always.
type Vec []Value

// Int64s appends the vector's values to dst as int64s and reports whether
// every value was an integer.  On a false report the returned slice holds the
// prefix up to the first non-integer value; kernels use the report to fall
// back to the generic mixed-kind path.
func (v Vec) Int64s(dst []int64) ([]int64, bool) {
	for _, x := range v {
		if x.kind != KindInt {
			return dst, false
		}
		dst = append(dst, x.i)
	}
	return dst, true
}

// Float64s appends the vector's values to dst as float64s — integers through
// their exact float image — and reports whether every value was numeric.  On
// a false report the returned slice holds the prefix up to the first
// non-numeric value.
func (v Vec) Float64s(dst []float64) ([]float64, bool) {
	for _, x := range v {
		switch x.kind {
		case KindFloat:
			dst = append(dst, x.f)
		case KindInt:
			dst = append(dst, float64(x.i))
		default:
			return dst, false
		}
	}
	return dst, true
}
