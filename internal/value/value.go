// Package value implements the atomic value system of the multi-set extended
// relational algebra (Definition 2.1 of Grefen & de By, ICDE 1994).
//
// A domain is a set of atomic values; values are indivisible as far as the
// operators of the relational data model are concerned.  The package provides
// the concrete domains used throughout the library (integers, reals, booleans,
// strings and the null value), together with the comparison, hashing and
// arithmetic primitives the algebra layers build on.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the domain an atomic value belongs to.
type Kind uint8

// The supported atomic domains.
const (
	// KindNull is the domain of the single null value.  It is not part of the
	// paper's formal model but is required by the SQL front-end and by partial
	// aggregate functions (AVG/MIN/MAX on empty multi-sets).
	KindNull Kind = iota
	// KindInt is the domain of 64-bit signed integers.
	KindInt
	// KindFloat is the domain of 64-bit IEEE-754 reals.
	KindFloat
	// KindString is the domain of character strings.
	KindString
	// KindBool is the boolean domain.
	KindBool
)

// String returns the conventional lower-case name of the domain.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Numeric reports whether values of the domain support arithmetic.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// ParseKind converts a textual domain name into a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "int", "integer":
		return KindInt, nil
	case "float", "real", "double":
		return KindFloat, nil
	case "string", "text", "varchar", "char":
		return KindString, nil
	case "bool", "boolean":
		return KindBool, nil
	case "null":
		return KindNull, nil
	default:
		return KindNull, fmt.Errorf("value: unknown domain %q", s)
	}
}

// Value is an atomic value of one of the supported domains.  Values are
// immutable; all operations return new values.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null is the single value of the null domain.
var Null = Value{kind: KindNull}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a real value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind returns the domain of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload.  It panics if the value is not an integer;
// use AsInt for a checked conversion.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the real payload.  It panics if the value is not a float; use
// AsFloat for a checked conversion.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("value: Float() on %s value", v.kind))
	}
	return v.f
}

// Str returns the string payload.  It panics if the value is not a string.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: Str() on %s value", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload.  It panics if the value is not a boolean.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: Bool() on %s value", v.kind))
	}
	return v.b
}

// AsInt converts the value to an integer if its domain permits it.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	case KindBool:
		if v.b {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// AsFloat converts the value to a real if its domain permits it.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// String renders the value in the textual form used by the XRA front-end and
// the result printers: integers and reals as decimal literals, strings quoted
// with single quotes, booleans as true/false, null as null.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return fmt.Sprintf("value(%d)", uint8(v.kind))
	}
}

// Display renders the value for tabular output (strings unquoted).
func (v Value) Display() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// Equal reports whether two values are equal.  Values of different domains are
// never equal, with the exception that integer and real values compare
// numerically (3 == 3.0), mirroring SQL's cross-numeric comparison rules.
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		switch v.kind {
		case KindNull:
			return true
		case KindInt:
			return v.i == o.i
		case KindFloat:
			return v.f == o.f
		case KindString:
			return v.s == o.s
		case KindBool:
			return v.b == o.b
		}
	}
	if v.kind.Numeric() && o.kind.Numeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	return false
}

// Compare orders two values.  It returns a negative number, zero or a positive
// number when v sorts before, equal to, or after o.  Values of incomparable
// domains are ordered by domain kind so that Compare induces a total order
// usable for canonicalisation; Null sorts before every other value.
func (v Value) Compare(o Value) int {
	if v.kind.Numeric() && o.kind.Numeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		return int(v.kind) - int(o.kind)
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

// Less reports whether v sorts strictly before o.
func (v Value) Less(o Value) bool { return v.Compare(o) < 0 }

// Hash returns a 64-bit hash of the value, consistent with Equal: values that
// compare equal (including cross-numeric equality such as 3 and 3.0) hash to
// the same code.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h ^= uint64(b); h *= prime64 }
	switch v.kind {
	case KindNull:
		mix(0x00)
	case KindInt, KindFloat:
		// Hash all numerics through their float64 image so Equal ⇒ same hash.
		f, _ := v.AsFloat()
		bits := math.Float64bits(f)
		if f == 0 {
			bits = 0 // normalise -0.0 and +0.0
		}
		mix(0x01)
		for i := 0; i < 8; i++ {
			mix(byte(bits >> (8 * i)))
		}
	case KindString:
		mix(0x02)
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	case KindBool:
		mix(0x03)
		if v.b {
			mix(1)
		} else {
			mix(0)
		}
	}
	return h
}

