package value

import (
	"errors"
	"fmt"
)

// Arithmetic and logical evaluation errors.
var (
	// ErrType is returned when an operation is applied to values of an
	// unsupported domain (e.g. adding a string to a boolean).
	ErrType = errors.New("value: type error")
	// ErrDivideByZero is returned on integer or real division by zero.
	ErrDivideByZero = errors.New("value: division by zero")
)

// BinaryOp identifies a scalar binary operator supported on atomic values.
type BinaryOp uint8

// The supported binary operators.
const (
	OpAdd    BinaryOp = iota // +
	OpSub                    // -
	OpMul                    // *
	OpDiv                    // /
	OpMod                    // %
	OpConcat                 // || (string concatenation)
)

// String returns the operator's surface syntax.
func (op BinaryOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpConcat:
		return "||"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// ResultKind returns the domain of op applied to operands of the given
// domains, or an error if the combination is not typeable.
func (op BinaryOp) ResultKind(a, b Kind) (Kind, error) {
	if a == KindNull || b == KindNull {
		return KindNull, nil
	}
	switch op {
	case OpConcat:
		if a == KindString && b == KindString {
			return KindString, nil
		}
		return KindNull, fmt.Errorf("%w: %s %s %s", ErrType, a, op, b)
	case OpMod:
		if a == KindInt && b == KindInt {
			return KindInt, nil
		}
		return KindNull, fmt.Errorf("%w: %s %s %s", ErrType, a, op, b)
	default:
		if !a.Numeric() || !b.Numeric() {
			return KindNull, fmt.Errorf("%w: %s %s %s", ErrType, a, op, b)
		}
		if a == KindFloat || b == KindFloat || op == OpDiv {
			return KindFloat, nil
		}
		return KindInt, nil
	}
}

// Apply evaluates the binary operator on two values.  Null operands propagate
// (any operation involving null yields null), mirroring SQL semantics required
// by the SQL front-end.
func (op BinaryOp) Apply(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch op {
	case OpConcat:
		if a.kind == KindString && b.kind == KindString {
			return NewString(a.s + b.s), nil
		}
		return Null, fmt.Errorf("%w: %s %s %s", ErrType, a.kind, op, b.kind)
	case OpMod:
		if a.kind == KindInt && b.kind == KindInt {
			if b.i == 0 {
				return Null, ErrDivideByZero
			}
			return NewInt(a.i % b.i), nil
		}
		return Null, fmt.Errorf("%w: %s %s %s", ErrType, a.kind, op, b.kind)
	}
	if !a.kind.Numeric() || !b.kind.Numeric() {
		return Null, fmt.Errorf("%w: %s %s %s", ErrType, a.kind, op, b.kind)
	}
	// Integer arithmetic stays in the integer domain except for division,
	// which always produces a real (the paper's AVG definition divides SUM by
	// CNT and must not truncate).
	if a.kind == KindInt && b.kind == KindInt && op != OpDiv {
		switch op {
		case OpAdd:
			return NewInt(a.i + b.i), nil
		case OpSub:
			return NewInt(a.i - b.i), nil
		case OpMul:
			return NewInt(a.i * b.i), nil
		}
	}
	x, _ := a.AsFloat()
	y, _ := b.AsFloat()
	switch op {
	case OpAdd:
		return NewFloat(x + y), nil
	case OpSub:
		return NewFloat(x - y), nil
	case OpMul:
		return NewFloat(x * y), nil
	case OpDiv:
		if y == 0 {
			return Null, ErrDivideByZero
		}
		return NewFloat(x / y), nil
	default:
		return Null, fmt.Errorf("%w: unsupported operator %s", ErrType, op)
	}
}

// CompareOp identifies a comparison predicate on atomic values.
type CompareOp uint8

// The supported comparison operators.
const (
	CmpEq CompareOp = iota // =
	CmpNe                  // <>
	CmpLt                  // <
	CmpLe                  // <=
	CmpGt                  // >
	CmpGe                  // >=
)

// String returns the comparison operator's surface syntax.
func (op CompareOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return fmt.Sprintf("cmp(%d)", uint8(op))
	}
}

// Negate returns the complementary comparison (= ↔ <>, < ↔ >=, ...).
func (op CompareOp) Negate() CompareOp {
	switch op {
	case CmpEq:
		return CmpNe
	case CmpNe:
		return CmpEq
	case CmpLt:
		return CmpGe
	case CmpLe:
		return CmpGt
	case CmpGt:
		return CmpLe
	case CmpGe:
		return CmpLt
	default:
		return op
	}
}

// Flip returns the comparison with its operands swapped (< ↔ >, <= ↔ >=).
func (op CompareOp) Flip() CompareOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	default:
		return op
	}
}

// Apply evaluates the comparison on two values.  Comparisons involving null
// evaluate to false (the selection operator keeps only tuples for which the
// condition definitely holds), except that null = null and null <> x follow
// value identity so the algebra's tuple-equality remains reflexive.
func (op CompareOp) Apply(a, b Value) (bool, error) {
	if a.IsNull() || b.IsNull() {
		switch op {
		case CmpEq:
			return a.IsNull() && b.IsNull(), nil
		case CmpNe:
			return a.IsNull() != b.IsNull(), nil
		default:
			return false, nil
		}
	}
	comparable := a.kind == b.kind || (a.kind.Numeric() && b.kind.Numeric())
	if !comparable {
		return false, fmt.Errorf("%w: cannot compare %s with %s", ErrType, a.kind, b.kind)
	}
	c := a.Compare(b)
	switch op {
	case CmpEq:
		return c == 0, nil
	case CmpNe:
		return c != 0, nil
	case CmpLt:
		return c < 0, nil
	case CmpLe:
		return c <= 0, nil
	case CmpGt:
		return c > 0, nil
	case CmpGe:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("%w: unsupported comparison %s", ErrType, op)
	}
}

// ParseCompareOp parses the surface syntax of a comparison operator.
func ParseCompareOp(s string) (CompareOp, error) {
	switch s {
	case "=", "==":
		return CmpEq, nil
	case "<>", "!=":
		return CmpNe, nil
	case "<":
		return CmpLt, nil
	case "<=":
		return CmpLe, nil
	case ">":
		return CmpGt, nil
	case ">=":
		return CmpGe, nil
	default:
		return CmpEq, fmt.Errorf("value: unknown comparison operator %q", s)
	}
}

// ParseBinaryOp parses the surface syntax of an arithmetic operator.
func ParseBinaryOp(s string) (BinaryOp, error) {
	switch s {
	case "+":
		return OpAdd, nil
	case "-":
		return OpSub, nil
	case "*":
		return OpMul, nil
	case "/":
		return OpDiv, nil
	case "%":
		return OpMod, nil
	case "||":
		return OpConcat, nil
	default:
		return OpAdd, fmt.Errorf("value: unknown arithmetic operator %q", s)
	}
}
