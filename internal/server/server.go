// Package server is the concurrent serving layer of the engine: a network
// front-end that speaks a line/JSON protocol over TCP (and the same request
// shape over HTTP for curl-ability), with one MVCC snapshot-isolation
// transaction session per connection.
//
// Each connection gets its own session goroutine and its own transaction
// state machine (idle → txn → aborted); sessions never share mutable engine
// state, so N sessions drive N truly concurrent transactions — readers
// proceed against their Begin-time snapshots while writers commit, and
// conflicting writers surface first-committer-wins aborts the client retries.
//
// Lifecycle: Shutdown stops accepting, closes idle connections (aborting
// their open transactions), and drains statements already executing — each
// runs to completion and delivers its response before the session closes.
// When the drain context expires first, in-flight statements are cancelled
// through the per-statement lifecycle context instead of being abandoned.
// Slow or stuck clients are bounded by per-read and per-write deadlines, so
// one wedged connection can neither hold a session slot forever nor block the
// accept loop.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mra"
)

// Config tunes a Server.  The zero value serves SQL with library defaults.
type Config struct {
	// MaxSessions caps concurrently connected TCP sessions; further
	// connections are refused with an error response.  Zero means 64.
	MaxSessions int
	// IdleTimeout bounds how long a session may sit between commands before
	// the server closes it (and aborts its open transaction).  Zero means 5
	// minutes.
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write, so a client that stops reading
	// cannot wedge its session goroutine forever.  Zero means 30 seconds.
	WriteTimeout time.Duration
	// StatementTimeout is the initial per-statement deadline of new sessions
	// (each session may override it with \set timeout).  Zero disables.
	StatementTimeout time.Duration
	// MemoryLimit is the initial per-query memory budget of new sessions in
	// bytes (overridable with \set memlimit).  Zero disables.
	MemoryLimit int64
	// Workers is the initial per-session parallelism degree (overridable with
	// \set workers).  Zero or one means serial.
	Workers int
	// XRA makes new sessions interpret statements as XRA instead of SQL
	// (overridable per session with \lang).
	XRA bool
}

// withDefaults fills in zero fields.
func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	return c
}

// ErrServerClosed is returned by Serve after Shutdown completes.
var ErrServerClosed = errors.New("server: closed")

// Server accepts connections and runs one transaction session per
// connection.  All methods are safe for concurrent use.
type Server struct {
	db  *mra.DB
	cfg Config

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	sessions  map[*session]struct{}
	draining  bool

	wg         sync.WaitGroup
	nextID     atomic.Uint64
	statements atomic.Uint64
	refused    atomic.Uint64
}

// New returns a server over the given database.
func New(db *mra.DB, cfg Config) *Server {
	return &Server{
		db:        db,
		cfg:       cfg.withDefaults(),
		listeners: make(map[net.Listener]struct{}),
		sessions:  make(map[*session]struct{}),
	}
}

// DB returns the served database.
func (s *Server) DB() *mra.DB { return s.db }

// ActiveSessions returns the number of connected TCP sessions.
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Statements returns the number of command lines served so far.
func (s *Server) Statements() uint64 { return s.statements.Load() }

// Refused returns the number of connections refused at the session limit.
func (s *Server) Refused() uint64 { return s.refused.Load() }

// ListenAndServe listens on the TCP address and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve accepts connections on the listener until Shutdown, spawning one
// session goroutine per connection.  It returns ErrServerClosed after a
// shutdown, or the first non-temporary accept error otherwise.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
		l.Close()
	}()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			return err
		}
		s.startSession(conn)
	}
}

// startSession registers and launches a session for the connection, or
// refuses it when the server is draining or at the session limit.  The
// refusal is a normal protocol response followed by a close, so clients see
// why instead of a bare RST.
func (s *Server) startSession(conn net.Conn) {
	s.mu.Lock()
	if s.draining || len(s.sessions) >= s.cfg.MaxSessions {
		draining := s.draining
		s.mu.Unlock()
		s.refused.Add(1)
		msg := "server is shutting down"
		if !draining {
			msg = fmt.Sprintf("server at session limit (%d)", s.cfg.MaxSessions)
		}
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		enc := json.NewEncoder(conn)
		enc.Encode(Response{OK: false, State: StateIdle, Error: msg})
		conn.Close()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	sess := &session{
		id:      s.nextID.Add(1),
		srv:     s,
		conn:    conn,
		ctx:     ctx,
		cancel:  cancel,
		sql:     !s.cfg.XRA,
		timeout: s.cfg.StatementTimeout,
		opts:    mraTxOptions(s.cfg),
	}
	s.sessions[sess] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()

	go func() {
		defer s.wg.Done()
		defer s.dropSession(sess)
		sess.serve()
	}()
}

// mraTxOptions builds a fresh session's transaction options from the server
// configuration.
func mraTxOptions(cfg Config) mra.TxOptions {
	return mra.TxOptions{
		Workers:     cfg.Workers,
		MemoryLimit: cfg.MemoryLimit,
	}
}

// dropSession unregisters a finished session.
func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
}

// Shutdown gracefully stops the server: it stops accepting, closes idle
// sessions (aborting their open transactions), and waits for sessions
// currently executing a statement to finish the statement and deliver its
// response.  When ctx expires before the drain completes, the remaining
// in-flight statements are cancelled through their lifecycle contexts and
// their connections closed; Shutdown then still waits for the session
// goroutines to unwind.  It returns ctx.Err() when the drain was cut short.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	// Close idle sessions now; busy ones finish their statement first and
	// exit on the draining flag.  A session flipping from busy to idle after
	// this pass exits on the same flag before its next read.
	for sess := range s.sessions {
		sess.closeIfIdle()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Drain deadline passed: cancel in-flight statements and tear down.
	s.mu.Lock()
	for sess := range s.sessions {
		sess.cancel()
		sess.conn.Close()
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}
