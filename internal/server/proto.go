package server

// The xraserve wire protocol is deliberately minimal: the client sends one
// command per line of plain text, the server answers each line with exactly
// one JSON object on a single line.  Commands are either transaction-control
// words (begin / commit / rollback), backslash meta-commands mirroring the
// shell's knobs (\set workers N, \set timeout 500ms, \set memlimit 1048576,
// \set serializable on, \lang sql|xra, \q), or statements in the session's
// language.  A line may carry several ';'-separated statements; they execute
// in order inside one transaction bracket.
//
// The same Response shape is served over HTTP by POST /query, which runs its
// payload as one auto-committed transaction — curl-able without any client.

// SessionState names the per-session transaction state machine's states.
type SessionState string

// The session states: outside any transaction, inside an open transaction,
// and inside a transaction that failed and must be rolled back before the
// session accepts statements again.
const (
	StateIdle    SessionState = "idle"
	StateTxn     SessionState = "txn"
	StateAborted SessionState = "aborted"
)

// Response is the server's answer to one command line (or one HTTP query).
type Response struct {
	// OK reports whether the command succeeded.
	OK bool `json:"ok"`
	// State is the session's transaction state after the command.
	State SessionState `json:"state"`
	// Error holds the failure message when OK is false.
	Error string `json:"error,omitempty"`
	// Conflict is set when the failure was a first-committer-wins write
	// conflict — the canonical retry signal for clients.
	Conflict bool `json:"conflict,omitempty"`
	// Results carries one result set per query statement of the command.
	Results []ResultSet `json:"results,omitempty"`
	// ElapsedUS is the server-side execution time in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
}

// ResultSet is one query statement's materialised output.
type ResultSet struct {
	// Columns names the result columns.
	Columns []string `json:"columns"`
	// Rows holds the result rows in presentation order (ORDER BY order when
	// the query gave one); values are JSON numbers, strings, booleans or
	// null.
	Rows [][]any `json:"rows"`
	// RowCount is len(Rows), duplicated for clients that discard Rows.
	RowCount int `json:"row_count"`
}
