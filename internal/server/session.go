package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"mra"
	"mra/internal/txn"
)

// session is one TCP connection's serving state: a transaction state machine
// plus the session-local engine settings.  All fields after mu are owned by
// the session goroutine; mu only guards the busy flag the shutdown path
// inspects.
type session struct {
	id     uint64
	srv    *Server
	conn   net.Conn
	ctx    context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	busy bool

	// sql selects the statement language (true = SQL, false = XRA).
	sql bool
	// timeout is the per-statement deadline; zero disables.
	timeout time.Duration
	// opts are the session's per-transaction engine settings — they ride on
	// every BeginTx, so one session's \set never touches another session or
	// the database defaults.
	opts mra.TxOptions
	// tx is the open explicit transaction, nil when idle or aborted.
	tx *mra.Tx
	// aborted marks the failed-transaction state: a statement inside the
	// explicit transaction errored, so the session refuses further statements
	// until rollback (or commit, which rolls back) resets it.
	aborted bool
}

// state derives the protocol-visible session state.
func (s *session) state() SessionState {
	switch {
	case s.aborted:
		return StateAborted
	case s.tx != nil:
		return StateTxn
	default:
		return StateIdle
	}
}

// setBusy flips the in-flight flag the shutdown path inspects.
func (s *session) setBusy(b bool) {
	s.mu.Lock()
	s.busy = b
	s.mu.Unlock()
}

// closeIfIdle closes the connection unless a statement is in flight; the
// shutdown path uses it so idle sessions (including idle-in-transaction ones)
// are cut immediately while busy sessions drain.
func (s *session) closeIfIdle() {
	s.mu.Lock()
	idle := !s.busy
	s.mu.Unlock()
	if idle {
		s.conn.Close()
	}
}

// serve runs the session loop: read one command line, execute it, answer
// with one JSON line.  The loop ends on client EOF, \q, a read deadline
// (idle timeout), a write deadline (client stopped reading), or server
// shutdown; any open transaction is aborted on the way out.
func (s *session) serve() {
	defer func() {
		if s.tx != nil {
			s.tx.Abort()
			s.tx = nil
		}
		s.cancel()
		s.conn.Close()
	}()

	scanner := bufio.NewScanner(s.conn)
	scanner.Buffer(make([]byte, 64*1024), 1<<20)
	enc := json.NewEncoder(s.conn)
	for {
		if s.srv.isDraining() {
			return
		}
		s.conn.SetReadDeadline(time.Now().Add(s.srv.cfg.IdleTimeout))
		if !scanner.Scan() {
			return
		}
		line := scanner.Text()
		// Stay "busy" until the response is on the wire: a graceful shutdown
		// must not cut a session between finishing a statement and delivering
		// its result.
		s.setBusy(true)
		resp, quit := s.dispatch(line)
		s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteTimeout))
		err := enc.Encode(resp)
		s.setBusy(false)
		if err != nil || quit {
			return
		}
	}
}

// dispatch executes one command line and builds its response; the second
// return value requests session close (\q).
func (s *session) dispatch(line string) (Response, bool) {
	s.srv.statements.Add(1)
	start := time.Now()
	trimmed := strings.TrimSpace(line)
	keyword := strings.ToLower(strings.TrimRight(trimmed, "; \t"))

	var resp Response
	quit := false
	switch {
	case trimmed == "":
		resp = Response{OK: true, State: s.state()}
	case keyword == `\q` || keyword == `\quit`:
		resp, quit = Response{OK: true, State: s.state()}, true
	case strings.HasPrefix(trimmed, `\`):
		resp = s.meta(trimmed)
	case keyword == "begin":
		resp = s.begin()
	case keyword == "commit" || keyword == "end":
		resp = s.commit()
	case keyword == "rollback" || keyword == "abort":
		resp = s.rollback()
	default:
		resp = s.runStatements(trimmed)
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	return resp, quit
}

// begin opens the session's explicit transaction bracket.
func (s *session) begin() Response {
	if s.aborted || s.tx != nil {
		return Response{OK: false, State: s.state(), Error: "already in a transaction"}
	}
	s.tx = s.srv.db.BeginTx(s.opts)
	return Response{OK: true, State: s.state()}
}

// commit closes the explicit transaction bracket.  Committing the aborted
// state rolls back, like the end bracket of a failed transaction: T(D) = D.
func (s *session) commit() Response {
	if s.aborted {
		s.aborted = false
		return Response{OK: false, State: s.state(), Error: "transaction aborted by an earlier error; rolled back"}
	}
	if s.tx == nil {
		return Response{OK: false, State: s.state(), Error: "no transaction in progress"}
	}
	err := s.tx.Commit()
	s.tx = nil
	if err != nil {
		return s.failure(err)
	}
	return Response{OK: true, State: s.state()}
}

// rollback abandons the explicit transaction (idempotent when idle).
func (s *session) rollback() Response {
	s.aborted = false
	if s.tx != nil {
		s.tx.Abort()
		s.tx = nil
	}
	return Response{OK: true, State: s.state()}
}

// runStatements executes a ';'-separated statement line: inside the explicit
// transaction when one is open, as its own auto-committed transaction
// otherwise.  Every execution runs under the session's lifecycle context
// stacked with the per-statement timeout.
func (s *session) runStatements(script string) Response {
	if s.aborted {
		return Response{OK: false, State: s.state(),
			Error: "current transaction is aborted; statements ignored until rollback"}
	}
	ctx := s.ctx
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	if s.tx != nil {
		s.tx.WithContext(ctx)
		results, err := execScript(s.tx, script, s.sql)
		if err != nil {
			// The failed transaction cannot commit anyway: abort it now so its
			// snapshot is released, and hold the session in the aborted state
			// until the client acknowledges with rollback.
			s.tx.Abort()
			s.tx = nil
			s.aborted = true
			return s.failure(err)
		}
		return Response{OK: true, State: s.state(), Results: resultSets(results)}
	}
	resp := s.srv.autocommit(ctx, script, s.sql, s.opts)
	resp.State = s.state()
	return resp
}

// failure builds an error response, flagging first-committer-wins conflicts
// so clients know the statement is retryable.
func (s *session) failure(err error) Response {
	return Response{
		OK:       false,
		State:    s.state(),
		Error:    err.Error(),
		Conflict: errors.Is(err, txn.ErrConflict),
	}
}

// meta handles backslash commands: the session-local engine knobs and \q.
func (s *session) meta(cmd string) Response {
	fields := strings.Fields(strings.TrimRight(cmd, "; \t"))
	fail := func(format string, args ...any) Response {
		return Response{OK: false, State: s.state(), Error: fmt.Sprintf(format, args...)}
	}
	switch fields[0] {
	case `\set`:
		if len(fields) != 3 {
			return fail(`usage: \set workers N | \set timeout <dur> | \set memlimit <bytes> | \set serializable on|off`)
		}
		switch fields[1] {
		case "workers":
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return fail("workers must be a non-negative integer, got %q", fields[2])
			}
			s.opts.Workers = n
		case "timeout":
			d, err := time.ParseDuration(fields[2])
			if err != nil || d < 0 {
				return fail("timeout must be a duration like 500ms or 2s (0 disables), got %q", fields[2])
			}
			s.timeout = d
		case "memlimit":
			n, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || n < 0 {
				return fail("memlimit must be a byte count (0 disables), got %q", fields[2])
			}
			if n == 0 {
				n = -1 // explicit off overrides the server default
			}
			s.opts.MemoryLimit = n
		case "serializable":
			switch fields[2] {
			case "on":
				s.opts.Serializable = true
			case "off":
				s.opts.Serializable = false
			default:
				return fail(`serializable must be "on" or "off", got %q`, fields[2])
			}
		default:
			return fail(`unknown setting %q`, fields[1])
		}
		return Response{OK: true, State: s.state()}
	case `\lang`:
		if len(fields) != 2 || (fields[1] != "sql" && fields[1] != "xra") {
			return fail(`usage: \lang sql|xra`)
		}
		s.sql = fields[1] == "sql"
		return Response{OK: true, State: s.state()}
	case `\state`:
		return Response{OK: true, State: s.state()}
	default:
		return fail("unknown meta-command %s", fields[0])
	}
}

// autocommit runs a statement line as one transaction: evaluate, then commit,
// aborting on any failure.  Shared by TCP autocommit statements and HTTP
// queries.
func (s *Server) autocommit(ctx context.Context, script string, sql bool, opts mra.TxOptions) Response {
	tx := s.db.BeginTx(opts).WithContext(ctx)
	results, err := execScript(tx, script, sql)
	if err == nil {
		err = tx.Commit()
	} else {
		tx.Abort()
	}
	if err != nil {
		return Response{OK: false, Error: err.Error(), Conflict: errors.Is(err, txn.ErrConflict)}
	}
	return Response{OK: true, Results: resultSets(results)}
}

// execScript runs a statement line in the session's language inside tx.
func execScript(tx *mra.Tx, script string, sql bool) ([]*mra.Result, error) {
	if sql {
		return tx.ExecSQLScript(script)
	}
	return tx.ExecXRAScript(script)
}

// resultSets converts query results into wire result sets.
func resultSets(results []*mra.Result) []ResultSet {
	if len(results) == 0 {
		return nil
	}
	out := make([]ResultSet, len(results))
	for i, r := range results {
		rows := r.Rows()
		out[i] = ResultSet{Columns: r.Columns(), Rows: rows, RowCount: len(rows)}
	}
	return out
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
