package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Client is a minimal synchronous client for the TCP line/JSON protocol: one
// Do call sends one command line and reads back its one-line JSON response.
// A Client is a single session and is not safe for concurrent use — the load
// generator opens one per simulated connection.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	timeout time.Duration
}

// Dial connects to an xraserve TCP address.  timeout bounds the dial and
// every subsequent request/response round trip; zero disables.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn:    conn,
		r:       bufio.NewReaderSize(conn, 1<<20),
		timeout: timeout,
	}, nil
}

// Do sends one command line and returns the server's response.
func (c *Client) Do(line string) (Response, error) {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		return Response{}, err
	}
	raw, err := c.r.ReadBytes('\n')
	if err != nil {
		return Response{}, err
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return Response{}, fmt.Errorf("decoding response %q: %w", raw, err)
	}
	return resp, nil
}

// Begin opens an explicit transaction on the session.
func (c *Client) Begin() (Response, error) { return c.Do("begin") }

// Commit commits the session's open transaction.
func (c *Client) Commit() (Response, error) { return c.Do("commit") }

// Rollback abandons the session's open transaction.
func (c *Client) Rollback() (Response, error) { return c.Do("rollback") }

// Close ends the session (best-effort \q) and closes the connection.
func (c *Client) Close() error {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	fmt.Fprintln(c.conn, `\q`)
	return c.conn.Close()
}
